GO ?= go

.PHONY: ci build test vet lint fmt-check race bench bench-smoke bench-json bench-guard fuzz-smoke telemetry-smoke analyze-smoke serve-smoke adaptive-smoke

# ci is the repository's verify command (see ROADMAP.md): formatting, vet,
# the project-invariant linter, build, the full test suite under the race
# detector, a single-iteration pass of the hot-path benchmarks so they
# cannot rot between perf-focused PRs, the allocation guard on the campaign
# sweep, a static analysis of every shipped spec, a live scrape of the
# telemetry endpoints through the real CLI, an end-to-end exercise of
# the measurement service (submit, shared cache, metrics, drain), and a
# fixed-vs-adaptive study comparison guarding the planner's savings and
# ranking-preservation contract.
ci: fmt-check vet lint build race bench-smoke bench-guard analyze-smoke telemetry-smoke serve-smoke adaptive-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repository-invariant analyzer (see cmd/microlint for the
# rule catalog: determinism, no stray printing, balanced trace spans, error
# string conventions).
lint:
	$(GO) run ./cmd/microlint .

# race also shuffles test order so inter-test state dependencies surface.
race:
	$(GO) test -race -shuffle=on ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# bench covers the paper-figure benchmarks plus BenchmarkCampaign's
# cold-vs-warm cache comparison (root bench_test.go).
bench:
	$(GO) test -bench . -benchmem .

# HOT_BENCHES are the simulator hot-path benchmarks whose numbers this repo
# tracks in BENCH_sim.json (see README): one repetition, the full launcher
# protocol with telemetry off and on (the pair bounds instrumentation
# overhead), and the campaign sweep serial plus across worker counts.
HOT_BENCHES = ^(BenchmarkRunOne|BenchmarkVariantMaterialize|BenchmarkLauncherProtocol|BenchmarkLauncherProtocolTelemetry|BenchmarkCampaignSweep|BenchmarkCampaignSweepAdaptive|BenchmarkCampaignSweepWorkers|BenchmarkAnalyze|BenchmarkScreenStatic)$$

# bench-smoke compiles and runs each hot-path benchmark exactly once — a CI
# guard that they keep working, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench '$(HOT_BENCHES)' -benchtime=1x -benchmem .

# bench-json measures the hot-path benchmarks and merges the numbers into
# BENCH_sim.json under LABEL (default: local).
LABEL ?= local
bench-json:
	$(GO) test -run='^$$' -bench '$(HOT_BENCHES)' -benchmem . \
		| $(GO) run ./cmd/benchjson -label '$(LABEL)' -o BENCH_sim.json

# bench-guard runs the campaign sweep benchmark once and fails if its
# allocs/op exceed the committed ceiling in bench_guard_allocs.txt —
# wall-clock noise cannot trip it, allocation regressions in the variant
# pipeline always do. Raise the ceiling only with a justification in the
# same commit.
bench-guard:
	@limit="$$(cat bench_guard_allocs.txt)"; \
	out="$$($(GO) test -run='^$$' -bench '^BenchmarkCampaignSweep$$' -benchtime=1x -benchmem . | tee /dev/stderr)"; \
	allocs="$$(echo "$$out" | awk '/^BenchmarkCampaignSweep/ {for (i=1; i<=NF; i++) if ($$i == "allocs/op") print $$(i-1)}')"; \
	if [ -z "$$allocs" ]; then echo "bench-guard: could not parse allocs/op"; exit 1; fi; \
	if [ "$$allocs" -gt "$$limit" ]; then \
		echo "bench-guard: BenchmarkCampaignSweep allocated $$allocs objs/op, ceiling is $$limit"; \
		exit 1; \
	fi; \
	echo "bench-guard: $$allocs allocs/op <= $$limit"

# telemetry-smoke starts a real study with -telemetry-addr on an ephemeral
# port, scrapes /metrics and /debug/campaigns mid-run, and asserts the
# expected metric families are exposed (scripts/telemetry_smoke.sh).
telemetry-smoke:
	GO='$(GO)' sh scripts/telemetry_smoke.sh

# serve-smoke builds microserved, submits the same spec as two tenants via
# `microtools submit`, asserts the second run is fully cache-warm with a
# byte-identical campaign payload, scrapes the service metrics, and drains
# the daemon with SIGTERM (scripts/serve_smoke.sh).
serve-smoke:
	GO='$(GO)' sh scripts/serve_smoke.sh

# adaptive-smoke runs the same study twice through the real CLI — once with
# the fixed repetition budget, once with -adaptive — and asserts the
# planner's contract: at least 25% of repetitions saved, no variant missing
# the RCIW target, and a byte-identical ranking (scripts/adaptive_smoke.sh).
adaptive-smoke:
	GO='$(GO)' sh scripts/adaptive_smoke.sh

# fuzz-smoke gives each fuzz target a short budget — enough to catch a
# regression in the parsers' error paths without stalling CI.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/xmlspec
	$(GO) test -run='^$$' -fuzz=FuzzParseRoundTrip -fuzztime=10s ./internal/asm
	$(GO) test -run='^$$' -fuzz=FuzzValidate -fuzztime=10s ./internal/launcher
	$(GO) test -run='^$$' -fuzz=FuzzAnalyze -fuzztime=10s ./internal/dataflow

# analyze-smoke runs the static dataflow analysis over every variant of every
# shipped spec on both machine models; `microtools analyze` exits non-zero on
# any defect finding (a dead register write, V009, or a self-move, V010), so
# a spec regression fails CI without launching a single measurement.
analyze-smoke:
	$(GO) run ./cmd/microtools analyze -machine nehalem-dual specs/*.xml > /dev/null
	$(GO) run ./cmd/microtools analyze -machine sandybridge specs/*.xml > /dev/null
