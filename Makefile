GO ?= go

.PHONY: ci build test vet lint fmt-check race bench

# ci is the repository's verify command (see ROADMAP.md): formatting, vet,
# the project-invariant linter, build and the full test suite under the race
# detector.
ci: fmt-check vet lint build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repository-invariant analyzer (see cmd/microlint for the
# rule catalog: determinism, no stray printing, balanced trace spans, error
# string conventions).
lint:
	$(GO) run ./cmd/microlint .

race:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

bench:
	$(GO) test -bench . -benchmem .
