GO ?= go

.PHONY: ci build test vet lint fmt-check race bench fuzz-smoke

# ci is the repository's verify command (see ROADMAP.md): formatting, vet,
# the project-invariant linter, build and the full test suite under the race
# detector.
ci: fmt-check vet lint build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repository-invariant analyzer (see cmd/microlint for the
# rule catalog: determinism, no stray printing, balanced trace spans, error
# string conventions).
lint:
	$(GO) run ./cmd/microlint .

# race also shuffles test order so inter-test state dependencies surface.
race:
	$(GO) test -race -shuffle=on ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

# bench covers the paper-figure benchmarks plus BenchmarkCampaign's
# cold-vs-warm cache comparison (root bench_test.go).
bench:
	$(GO) test -bench . -benchmem .

# fuzz-smoke gives each fuzz target a short budget — enough to catch a
# regression in the parsers' error paths without stalling CI.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/xmlspec
	$(GO) test -run='^$$' -fuzz=FuzzParseRoundTrip -fuzztime=10s ./internal/asm
	$(GO) test -run='^$$' -fuzz=FuzzValidate -fuzztime=10s ./internal/launcher
