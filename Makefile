GO ?= go

.PHONY: ci build test vet fmt-check race bench

# ci is the repository's verify command (see ROADMAP.md): formatting, vet,
# build and the full test suite under the race detector.
ci: fmt-check vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

bench:
	$(GO) test -bench . -benchmem .
