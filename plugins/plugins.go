// Package plugins ships ready-made MicroCreator plugins — the user-facing
// side of the paper's §3.3 plugin system ("The user can easily add, remove,
// or modify a pass without recompiling the system"). Import this package
// for its side effects to register all of them, or register individual
// plugins with microtools.RegisterPlugin:
//
//	import _ "microtools/plugins"
//	progs, err := microtools.Generate(r, microtools.GenerateOptions{
//	    Plugins: []string{"enable-schedule", "cap-variants-64"},
//	})
package plugins

import (
	"fmt"

	"microtools/internal/ir"
	"microtools/internal/passes"
	"microtools/internal/plugin"
)

// EnableSchedule turns on the optional load/store interleaving pass, which
// ships gated off (§3.3: "Most internal passes are performed because their
// gates always return true. A user may modify it so as not to always
// execute the pass").
var EnableSchedule = plugin.Func{
	PluginName: "enable-schedule",
	Init: func(m *passes.Manager) error {
		return m.SetGate("schedule", passes.AlwaysGate)
	},
}

// DisableSwaps removes both operand-swap passes, generating only the
// literal kernels the spec describes.
var DisableSwaps = plugin.Func{
	PluginName: "disable-swaps",
	Init: func(m *passes.Manager) error {
		if err := m.SetGate("swap-before-unroll", passes.NeverGate); err != nil {
			return err
		}
		return m.SetGate("swap-after-unroll", passes.NeverGate)
	},
}

// CapVariants builds a plugin that inserts a hard variant cap after the
// last fan-out pass, regardless of what the spec requests ("The user can
// limit the number of benchmark programs if it is superfluous", §3.2).
func CapVariants(n int) plugin.Func {
	return plugin.Func{
		PluginName: fmt.Sprintf("cap-variants-%d", n),
		Init: func(m *passes.Manager) error {
			return m.InsertAfter("swap-after-unroll", &passes.Pass{
				Name: fmt.Sprintf("cap-%d", n),
				Doc:  fmt.Sprintf("truncate the variant set to %d kernels", n),
				Run: func(_ *passes.Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
					if len(ks) > n {
						ks = ks[:n]
					}
					return ks, nil
				},
			})
		},
	}
}

// TagMachine builds a plugin that stamps every variant with a free-form tag
// (e.g. the target machine), carried into the generated program names and
// the launcher's CSV — a minimal example of a user-written pass.
func TagMachine(tag string) plugin.Func {
	return plugin.Func{
		PluginName: "tag-" + tag,
		Init: func(m *passes.Manager) error {
			return m.InsertBefore("prologue-epilogue", &passes.Pass{
				Name: "tag-" + tag,
				Doc:  "stamp variants with a user tag",
				Run: func(_ *passes.Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
					for _, k := range ks {
						k.Tag("m", tag)
					}
					return ks, nil
				},
			})
		},
	}
}

// OnlyMaxUnroll keeps only each family's largest-unroll variants — the
// usual choice once a study has shown where the curve saturates.
var OnlyMaxUnroll = plugin.Func{
	PluginName: "only-max-unroll",
	Init: func(m *passes.Manager) error {
		return m.InsertAfter("unroll", &passes.Pass{
			Name: "only-max-unroll",
			Doc:  "drop all but the largest unroll factor per family",
			Run: func(_ *passes.Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
				maxU := map[string]int{}
				for _, k := range ks {
					if k.Unroll > maxU[k.BaseName] {
						maxU[k.BaseName] = k.Unroll
					}
				}
				var out []*ir.Kernel
				for _, k := range ks {
					if k.Unroll == maxU[k.BaseName] {
						out = append(out, k)
					}
				}
				return out, nil
			},
		})
	},
}

func init() {
	plugin.MustRegister(EnableSchedule)
	plugin.MustRegister(DisableSwaps)
	plugin.MustRegister(CapVariants(64))
	plugin.MustRegister(OnlyMaxUnroll)
}
