package plugins

import (
	"context"
	"strings"
	"testing"

	"microtools/internal/core"
	"microtools/internal/plugin"
)

const spec = `
<kernel name="p">
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>4</max></unrolling>
  <induction><register><name>r1</name></register><increment>16</increment><offset>16</offset></induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`

func TestRegisteredByInit(t *testing.T) {
	for _, name := range []string{"enable-schedule", "disable-swaps", "cap-variants-64", "only-max-unroll"} {
		if _, ok := plugin.Lookup(name); !ok {
			t.Errorf("plugin %q not registered", name)
		}
	}
}

func TestDisableSwaps(t *testing.T) {
	base, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// sum(2^u, u=1..4) = 30 with swaps.
	if len(base) != 30 {
		t.Fatalf("baseline variants = %d, want 30", len(base))
	}
	noSwap, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{Plugins: []string{"disable-swaps"}})
	if err != nil {
		t.Fatal(err)
	}
	// One per unroll factor without the swap fan-out.
	if len(noSwap) != 4 {
		t.Fatalf("no-swap variants = %d, want 4", len(noSwap))
	}
	for _, p := range noSwap {
		if strings.Contains(p.Name, "S") && strings.Contains(strings.SplitN(p.Name, "_", 3)[2], "S") {
			t.Errorf("swap survived: %s", p.Name)
		}
	}
}

func TestCapVariants(t *testing.T) {
	capped, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{Plugins: []string{"cap-variants-64"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) > 64 {
		t.Errorf("cap violated: %d variants", len(capped))
	}
	// Register a tighter cap programmatically.
	tight := CapVariants(5)
	if err := plugin.Register(tight); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plugin.Unregister(tight.PluginName) })
	few, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{Plugins: []string{"cap-variants-5"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 5 {
		t.Errorf("cap-5 produced %d variants", len(few))
	}
}

func TestOnlyMaxUnroll(t *testing.T) {
	progs, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{Plugins: []string{"only-max-unroll"}})
	if err != nil {
		t.Fatal(err)
	}
	// Only u=4 variants remain: 2^4 swap patterns.
	if len(progs) != 16 {
		t.Fatalf("variants = %d, want 16", len(progs))
	}
	for _, p := range progs {
		if !strings.Contains(p.Name, "_u4_") {
			t.Errorf("non-max unroll survived: %s", p.Name)
		}
	}
}

func TestTagMachine(t *testing.T) {
	tag := TagMachine("snb")
	if err := plugin.Register(tag); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plugin.Unregister(tag.PluginName) })
	progs, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{Plugins: []string{"tag-snb"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		if !strings.Contains(p.Name, "msnb") {
			t.Errorf("tag missing from %s", p.Name)
		}
	}
}

func TestEnableSchedule(t *testing.T) {
	// The schedule pass must not break generation when enabled.
	progs, err := core.GenerateString(context.Background(), spec, core.GenerateOptions{Plugins: []string{"enable-schedule"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 30 {
		t.Errorf("variants = %d, want 30", len(progs))
	}
	for _, p := range progs {
		asmText, err := p.Assembly()
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if _, err := core.LoadKernel(asmText, ""); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}
