// Package api defines the v1 wire contract of the microtools measurement
// service: the JSON request, status, event, and result shapes exchanged
// between microserved, the serviceclient package, and any third-party
// client speaking plain HTTP.
//
// The package is deliberately leaf-level: it imports nothing from
// internal/ (enforced by microlint L012), every exported struct field
// carries an explicit json tag, and every payload embeds SchemaVersion.
// Within v1 the contract evolves additively only — new optional fields
// may appear, existing fields never change name, type, or meaning.
// Breaking changes get a new package (api/v2) and a new URL prefix.
package api

import (
	"encoding/json"
	"math"
)

// SchemaVersion identifies this revision of the v1 wire contract. Servers
// reject requests carrying a different non-empty version; clients treat a
// different version in responses as "newer fields may be present".
const SchemaVersion = "v1"

// Error codes returned in the Error.Code field. Machine-readable: clients
// branch on the code, humans read the message.
const (
	// CodeBadRequest rejects a malformed or unparseable submission.
	CodeBadRequest = "bad_request"
	// CodeOverQuota rejects a submission exceeding the tenant's
	// concurrent-job quota (HTTP 429; safe to retry after backoff).
	CodeOverQuota = "over_quota"
	// CodeNotFound reports an unknown job id.
	CodeNotFound = "not_found"
	// CodeDraining rejects a submission while the server shuts down
	// (HTTP 503; safe to retry against a replacement server).
	CodeDraining = "draining"
	// CodeInternal reports a server-side failure outside the campaign.
	CodeInternal = "internal"
	// CodeCampaignFailed reports a job whose campaign run failed; the
	// message carries the campaign error text.
	CodeCampaignFailed = "campaign_failed"
)

// Error is the wire shape of every non-2xx response body.
type Error struct {
	SchemaVersion string `json:"schema_version"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
}

// Error makes the wire shape usable as a Go error on the client side.
func (e *Error) Error() string { return "service: " + e.Code + ": " + e.Message }

// JobRequest is the POST /v1/jobs submission body. Spec is the XML kernel
// description verbatim; the remaining fields select generation and
// campaign options. Zero values mean "server default".
type JobRequest struct {
	SchemaVersion string `json:"schema_version"`
	// Tenant scopes admission control; empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Name labels the job in telemetry; empty derives one from the id.
	Name string `json:"name,omitempty"`
	// Spec is the XML kernel description to generate and measure.
	Spec string `json:"spec"`
	// Seed selects the deterministic generation seed.
	Seed int64 `json:"seed,omitempty"`
	// Machine names the simulated machine model (e.g. "nehalem-dual/8").
	Machine string `json:"machine,omitempty"`
	// ArrayBytes sizes each backing array (0 = server default).
	ArrayBytes int `json:"array_bytes,omitempty"`
	// OuterReps and InnerReps select the measurement repetition counts.
	OuterReps int `json:"outer_reps,omitempty"`
	InnerReps int `json:"inner_reps,omitempty"`
	// Workers sizes the campaign launch pool (0 = server default).
	Workers int `json:"workers,omitempty"`
	// FailFast cancels the campaign on the first variant failure.
	FailFast bool `json:"fail_fast,omitempty"`
	// Retries is the per-variant attempt budget for transient faults.
	Retries int `json:"retries,omitempty"`
	// RetryBackoffMS is the base backoff between attempts in milliseconds.
	RetryBackoffMS int64 `json:"retry_backoff_ms,omitempty"`
	// VariantDeadlineMS bounds each variant's total measurement time.
	VariantDeadlineMS int64 `json:"variant_deadline_ms,omitempty"`
	// Quarantine stops retrying a variant after n consecutive failures.
	Quarantine int `json:"quarantine,omitempty"`
	// CheckBounds asserts the static-bound oracle on every measurement.
	CheckBounds bool `json:"check_bounds,omitempty"`
	// Adaptive, when non-nil, arms adaptive repetition planning: stable
	// variants stop early and the saved budget tops up noisy ones.
	Adaptive *AdaptivePlan `json:"adaptive,omitempty"`
}

// AdaptivePlan selects adaptive repetition planning for a job. Zero
// fields take server defaults (min 2 reps, max = the fixed outer budget,
// target RCIW 0.05, stable run length 1).
type AdaptivePlan struct {
	// MinReps is the repetition floor before the stop rule may fire
	// (never below 2 — one repetition carries no stability signal).
	MinReps int `json:"min_reps,omitempty"`
	// MaxReps is the per-variant repetition ceiling (0 = the fixed
	// outer-repetition budget).
	MaxReps int `json:"max_reps,omitempty"`
	// TargetRCIW is the relative 95% CI width at which mean/median runs
	// stop (0 = server default 0.05).
	TargetRCIW float64 `json:"target_rciw,omitempty"`
	// StableRuns is the no-improvement run length at which min/max runs
	// stop (0 = server default 1).
	StableRuns int `json:"stable_runs,omitempty"`
}

// Job states reported in JobStatus.State.
const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued = "queued"
	// StateRunning: the campaign is executing.
	StateRunning = "running"
	// StateDone: finished successfully; the result is available.
	StateDone = "done"
	// StateFailed: finished with a campaign error; partial results may
	// be available.
	StateFailed = "failed"
	// StateRejected: removed from the queue without running (drain).
	StateRejected = "rejected"
	// StateInterrupted: stopped mid-run by a drain; resumes (cache-warm)
	// when the server restarts over the same job store.
	StateInterrupted = "interrupted"
)

// JobStatus describes one job's position in its lifecycle. It is returned
// on submission (202), embedded in JobResult, and carried by every
// VariantEvent.
type JobStatus struct {
	SchemaVersion string `json:"schema_version"`
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// Tenant is the admission-control scope the job was accepted under.
	Tenant string `json:"tenant"`
	// Name is the telemetry label.
	Name string `json:"name"`
	// State is one of the State* constants.
	State string `json:"state"`
	// SubmittedUnixMS/StartedUnixMS/FinishedUnixMS stamp the lifecycle
	// transitions (0 = not reached).
	SubmittedUnixMS int64 `json:"submitted_unix_ms"`
	StartedUnixMS   int64 `json:"started_unix_ms,omitempty"`
	FinishedUnixMS  int64 `json:"finished_unix_ms,omitempty"`
	// Progress is the latest campaign progress snapshot.
	Progress Progress `json:"progress"`
	// Error carries the failure for StateFailed/StateRejected.
	Error *Error `json:"error,omitempty"`
}

// Progress is the live campaign progress snapshot inside JobStatus and
// VariantEvent.
type Progress struct {
	// Done counts variants with a final result (hits + launches + fails).
	Done int `json:"done"`
	// Emitted counts variants produced by the generator so far.
	Emitted int `json:"emitted"`
	// Generating reports whether the generator is still producing.
	Generating bool `json:"generating"`
	// CacheHits, Failed, Launches, Retries break down Done.
	CacheHits int `json:"cache_hits"`
	Failed    int `json:"failed"`
	Launches  int `json:"launches"`
	Retries   int `json:"retries"`
}

// Event types carried in VariantEvent.Type (also the SSE event name).
const (
	// EventQueued opens every job stream.
	EventQueued = "queued"
	// EventStarted marks the campaign launch.
	EventStarted = "started"
	// EventProgress reports a variant completing.
	EventProgress = "progress"
	// EventEnd closes the stream with the terminal JobStatus.
	EventEnd = "end"
)

// VariantEvent is one frame of the GET /v1/jobs/{id}/events SSE stream.
// Seq starts at 1 and increases strictly; a client reconnecting with
// Last-Event-ID (or ?after=) resumes from the first unseen frame.
type VariantEvent struct {
	SchemaVersion string `json:"schema_version"`
	// JobID names the job the event belongs to.
	JobID string `json:"job_id"`
	// Seq is the strictly increasing event id (also the SSE id line).
	Seq int64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Status is the job status at the time of the event.
	Status JobStatus `json:"status"`
}

// Stability summarizes a variant's measurement noise (mirrors the
// repository's stability statistics: sample count, mean, coefficient of
// variation, relative 95% CI width with Student-t small-sample critical
// values). A degenerate RCIW — fewer than two repetitions, or a zero
// mean — is +Inf in Go and null on the wire (see MarshalJSON); it was
// reported as 0 by servers predating the small-sample statistics fix.
type Stability struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	CV   float64 `json:"cv"`
	RCIW float64 `json:"rciw"`
	// TargetRCIW echoes the adaptive plan's stop threshold (0 unless the
	// job ran adaptively).
	TargetRCIW float64 `json:"target_rciw,omitempty"`
	// MissedTarget reports that RCIW still exceeded TargetRCIW after the
	// adaptive top-up pass (absent unless the job ran adaptively).
	MissedTarget bool `json:"missed_target,omitempty"`
	// Reps is the realized adaptive repetition count (0 unless the job
	// ran adaptively; equals N for fresh measurements).
	Reps int `json:"reps,omitempty"`
	// StopReason is the adaptive stop rule that ended the run ("target",
	// "stable", "budget"; absent unless the job ran adaptively).
	StopReason string `json:"stop_reason,omitempty"`
}

// stabilityWire is Stability's JSON shape: rciw rides a pointer so the
// degenerate +Inf (rejected by encoding/json) crosses the wire as null
// while finite values keep their exact historical encoding.
type stabilityWire struct {
	N            int      `json:"n"`
	Mean         float64  `json:"mean"`
	CV           float64  `json:"cv"`
	RCIW         *float64 `json:"rciw"`
	TargetRCIW   float64  `json:"target_rciw,omitempty"`
	MissedTarget bool     `json:"missed_target,omitempty"`
	Reps         int      `json:"reps,omitempty"`
	StopReason   string   `json:"stop_reason,omitempty"`
}

// MarshalJSON encodes a non-finite RCIW as null; finite values encode
// exactly as the plain struct always did.
func (s Stability) MarshalJSON() ([]byte, error) {
	w := stabilityWire{
		N: s.N, Mean: s.Mean, CV: s.CV,
		TargetRCIW: s.TargetRCIW, MissedTarget: s.MissedTarget,
		Reps: s.Reps, StopReason: s.StopReason,
	}
	if !math.IsInf(s.RCIW, 0) && !math.IsNaN(s.RCIW) {
		r := s.RCIW
		w.RCIW = &r
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a null (or absent) rciw back to +Inf.
func (s *Stability) UnmarshalJSON(b []byte) error {
	var w stabilityWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	s.N, s.Mean, s.CV = w.N, w.Mean, w.CV
	s.TargetRCIW, s.MissedTarget = w.TargetRCIW, w.MissedTarget
	s.Reps, s.StopReason = w.Reps, w.StopReason
	if w.RCIW != nil {
		s.RCIW = *w.RCIW
	} else {
		s.RCIW = math.Inf(1)
	}
	return nil
}

// VariantResult is one measured variant inside CampaignResult. It is a
// pure function of the spec and the options: serving facts that vary
// between a cold and a cache-warm run (hit/miss, attempt counts) live in
// ServingStats instead, so the variant payload stays bit-identical across
// tenants and re-runs.
type VariantResult struct {
	// Index is the generation-order position.
	Index int `json:"index"`
	// Name is the variant's kernel name.
	Name string `json:"name"`
	// Value and Unit carry the headline measurement (e.g. cycles).
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// ValuePerElement normalizes Value by elements processed.
	ValuePerElement float64 `json:"value_per_element"`
	// Iterations is the measured loop trip count.
	Iterations int64 `json:"iterations"`
	// StaticBoundValue is the dataflow lower bound for the headline
	// value (0 = not computed).
	StaticBoundValue float64 `json:"static_bound_value,omitempty"`
	// Stability summarizes measurement noise.
	Stability Stability `json:"stability"`
	// Error carries the per-variant failure text ("" = success).
	Error string `json:"error,omitempty"`
}

// CampaignResult is the measurement outcome of a finished job — free of
// job identity (id, tenant, timestamps) and of serving accounting
// (cache hits, retries), so two jobs over the same spec and options
// serialize to identical bytes regardless of who submitted them, when,
// or how warm the cache was.
type CampaignResult struct {
	// Emitted counts generated variants.
	Emitted int `json:"emitted"`
	// Variants lists the per-variant results in generation order.
	Variants []VariantResult `json:"variants"`
}

// ServingStats is the per-job serving accounting: how the shared cache,
// retries, and quarantine behaved for this particular run. Unlike
// CampaignResult it is expected to differ between a cold and a warm run
// of the same spec.
type ServingStats struct {
	// Launches counts real measurements (cache misses).
	Launches int `json:"launches"`
	// CacheHits counts variants served from the shared cache.
	CacheHits int `json:"cache_hits"`
	// CacheHitRatio is CacheHits over emitted variants (1.0 = fully
	// cache-warm).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Failures, Retries, Quarantined, KeyErrors mirror the campaign
	// resilience counters.
	Failures    int `json:"failures"`
	Retries     int `json:"retries"`
	Quarantined int `json:"quarantined"`
	KeyErrors   int `json:"key_errors"`
	// RepsSaved, RepsTopUp and RepsExecuted mirror the campaign's
	// adaptive-repetition accounting (absent unless the job ran
	// adaptively): budget left unspent by early stops, repetitions
	// granted back to noisy variants, and repetitions this run's real
	// launches executed.
	RepsSaved    int `json:"reps_saved,omitempty"`
	RepsTopUp    int `json:"reps_topup,omitempty"`
	RepsExecuted int `json:"reps_executed,omitempty"`
}

// JobResult is the GET /v1/jobs/{id} response: the job's lifecycle
// status, the run's serving accounting, and — once finished — the
// campaign outcome. Campaign is identity- and accounting-free so clients
// can compare result payloads across jobs byte for byte.
type JobResult struct {
	SchemaVersion string `json:"schema_version"`
	// Job is the lifecycle status (includes identity and timestamps).
	Job JobStatus `json:"job"`
	// Serving is this run's cache/retry accounting (nil until finished).
	Serving *ServingStats `json:"serving,omitempty"`
	// Campaign is the measurement outcome (nil until the job finishes).
	Campaign *CampaignResult `json:"campaign,omitempty"`
}
