package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type,
// and asserts deep equality — the wire contract loses nothing.
func roundTrip(t *testing.T, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v)).Interface()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	got := reflect.ValueOf(out).Elem().Interface()
	if !reflect.DeepEqual(got, v) {
		t.Errorf("round trip changed %T:\n in: %+v\nout: %+v\nwire: %s", v, v, got, data)
	}
}

func sampleStatus() JobStatus {
	return JobStatus{
		SchemaVersion:   SchemaVersion,
		ID:              "j-7",
		Tenant:          "team-a",
		Name:            "team-a/j-7",
		State:           StateRunning,
		SubmittedUnixMS: 1700000000000,
		StartedUnixMS:   1700000000100,
		Progress:        Progress{Done: 2, Emitted: 4, Generating: true, CacheHits: 1, Launches: 1},
	}
}

func TestWireShapesRoundTrip(t *testing.T) {
	roundTrip(t, Error{SchemaVersion: SchemaVersion, Code: CodeOverQuota, Message: "tenant team-a has 4 jobs in flight"})
	roundTrip(t, JobRequest{
		SchemaVersion: SchemaVersion, Tenant: "team-a", Name: "sweep", Spec: "<kernel/>",
		Seed: 42, Machine: "nehalem-dual/8", ArrayBytes: 1 << 12, OuterReps: 3, InnerReps: 2,
		Workers: 4, FailFast: true, Retries: 2, RetryBackoffMS: 10,
		VariantDeadlineMS: 5000, Quarantine: 3, CheckBounds: true,
	})
	roundTrip(t, sampleStatus())
	roundTrip(t, VariantEvent{SchemaVersion: SchemaVersion, JobID: "j-7", Seq: 3, Type: EventProgress, Status: sampleStatus()})
	roundTrip(t, JobResult{
		SchemaVersion: SchemaVersion,
		Job:           sampleStatus(),
		Serving:       &ServingStats{Launches: 1, CacheHits: 1, CacheHitRatio: 0.5, Retries: 1},
		Campaign: &CampaignResult{
			Emitted: 2,
			Variants: []VariantResult{
				{Index: 0, Name: "k_u1", Value: 12.5, Unit: "cyc", ValuePerElement: 0.78,
					Iterations: 1024, StaticBoundValue: 8,
					Stability: Stability{N: 3, Mean: 12.5, CV: 0.01, RCIW: 0.02}},
				{Index: 1, Name: "k_u2", Error: "launch: injected fault"},
			},
		},
	})
}

// TestErrorBodyIsAGoError pins the client-side error contract: the wire
// Error implements error with the code visible in the text.
func TestErrorBodyIsAGoError(t *testing.T) {
	var err error = &Error{SchemaVersion: SchemaVersion, Code: CodeDraining, Message: "server is shutting down"}
	if !strings.Contains(err.Error(), CodeDraining) {
		t.Errorf("error text %q lacks the machine code", err.Error())
	}
}

// TestIdentityFreeCampaignResult pins the bit-identical-results guarantee:
// two JobResults for the same campaign outcome but different jobs carry
// byte-identical Campaign sections.
func TestIdentityFreeCampaignResult(t *testing.T) {
	campaign := CampaignResult{Emitted: 1,
		Variants: []VariantResult{{Name: "k", Value: 3, Unit: "cyc"}}}
	a, err := json.Marshal(campaign)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(campaign)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("campaign marshaling is not deterministic:\n%s\n%s", a, b)
	}
	// Identity lives in JobStatus and serving accounting in ServingStats;
	// the campaign payload must embed neither (field walk over both the
	// result and its variants).
	banned := map[string]bool{
		"ID": true, "Tenant": true, "SubmittedUnixMS": true, "StartedUnixMS": true,
		"FinishedUnixMS": true, "CacheHit": true, "CacheHits": true, "Launches": true,
		"Attempts": true, "CacheHitRatio": true, "Retries": true,
	}
	for _, typ := range []reflect.Type{reflect.TypeOf(CampaignResult{}), reflect.TypeOf(VariantResult{})} {
		for _, f := range reflect.VisibleFields(typ) {
			if banned[f.Name] {
				t.Errorf("%s carries identity or serving field %s", typ.Name(), f.Name)
			}
		}
	}
}

// TestExplicitTagsEverywhere walks every wire struct and asserts each
// exported field carries an explicit json tag (the L012 invariant, pinned
// here against refactors that bypass the linter).
func TestExplicitTagsEverywhere(t *testing.T) {
	for _, v := range []any{Error{}, JobRequest{}, JobStatus{}, Progress{}, VariantEvent{}, Stability{}, VariantResult{}, CampaignResult{}, ServingStats{}, JobResult{}} {
		rt := reflect.TypeOf(v)
		for _, f := range reflect.VisibleFields(rt) {
			if f.Tag.Get("json") == "" {
				t.Errorf("%s.%s lacks an explicit json tag", rt.Name(), f.Name)
			}
		}
	}
}
