package microtools

// One benchmark per paper table/figure (deliverable (d)): each regenerates
// its experiment through the full MicroCreator -> MicroLauncher -> simulator
// stack in Quick mode and reports the figure's headline values as custom
// metrics, so `go test -bench . -benchmem` reproduces the whole evaluation.
// The Ablation* benchmarks quantify the design choices DESIGN.md calls out.

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"microtools/internal/analytic"
	"microtools/internal/asm"
	"microtools/internal/codegen"
	"microtools/internal/core"
	"microtools/internal/cpu"
	"microtools/internal/dataflow"
	"microtools/internal/experiments"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/sim"
	"microtools/internal/stats"
	"microtools/internal/telemetry"
	"microtools/internal/verify"
)

// runExperiment executes one registered experiment per benchmark iteration
// and returns the last table.
func runExperiment(b *testing.B, id string) *stats.Table {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab, err = e.Run(context.Background(), experiments.Config{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

func reportAt(b *testing.B, tab *stats.Table, series string, x float64, metric string) {
	b.Helper()
	s := tab.Get(series)
	if s == nil {
		b.Fatalf("missing series %q", series)
	}
	v, err := s.YAt(x)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, metric)
}

// BenchmarkFig03MatmulSizeSweep regenerates Fig. 3 (matmul cycles/iteration
// vs matrix size) and reports the plateau and the post-knee cost.
func BenchmarkFig03MatmulSizeSweep(b *testing.B) {
	tab := runExperiment(b, "fig03")
	s := tab.Series[0]
	b.ReportMetric(s.MinY(), "plateau-cyc/iter")
	b.ReportMetric(s.Points[len(s.Points)-1].Y, "post-knee-cyc/iter")
}

// BenchmarkFig04MatmulAlignment regenerates Fig. 4 and reports the relative
// spread across alignment configurations (paper: <3%).
func BenchmarkFig04MatmulAlignment(b *testing.B) {
	tab := runExperiment(b, "fig04")
	s := tab.Series[0]
	b.ReportMetric(100*(s.MaxY()-s.MinY())/s.MinY(), "spread-%")
}

// BenchmarkFig05MatmulUnroll regenerates Fig. 5 and reports the unroll gain
// of the real kernel and of its generated microbenchmark equivalent.
func BenchmarkFig05MatmulUnroll(b *testing.B) {
	tab := runExperiment(b, "fig05")
	for _, name := range []string{"actual code", "microbenchmark"} {
		s := tab.Get(name)
		y1, _ := s.YAt(1)
		y8, _ := s.YAt(8)
		metric := "actual-gain-%"
		if name == "microbenchmark" {
			metric = "micro-gain-%"
		}
		b.ReportMetric(100*(y1-y8)/y1, metric)
	}
}

// BenchmarkFig11MovapsUnroll regenerates Fig. 11 (510-variant family).
func BenchmarkFig11MovapsUnroll(b *testing.B) {
	tab := runExperiment(b, "fig11")
	reportAt(b, tab, "L1", 8, "L1-cyc/inst")
	reportAt(b, tab, "RAM", 8, "RAM-cyc/inst")
}

// BenchmarkFig12MovssUnroll regenerates Fig. 12.
func BenchmarkFig12MovssUnroll(b *testing.B) {
	tab := runExperiment(b, "fig12")
	reportAt(b, tab, "L1", 8, "L1-cyc/inst")
	reportAt(b, tab, "RAM", 8, "RAM-cyc/inst")
}

// BenchmarkFig13FrequencySweep regenerates Fig. 13 and reports the
// core-clock sensitivity of L1 vs RAM in TSC cycles.
func BenchmarkFig13FrequencySweep(b *testing.B) {
	tab := runExperiment(b, "fig13")
	for _, name := range []string{"L1", "RAM"} {
		s := tab.Get(name)
		lo := s.Points[0].Y
		hi := s.Points[len(s.Points)-1].Y
		b.ReportMetric(lo/hi, name+"-slowdown-x")
	}
}

// BenchmarkFig14ForkSaturation regenerates Fig. 14 and reports the
// saturation factor (12-core vs 1-core cycles/iteration).
func BenchmarkFig14ForkSaturation(b *testing.B) {
	tab := runExperiment(b, "fig14")
	s := tab.Get("movaps")
	one, _ := s.YAt(1)
	twelve, _ := s.YAt(12)
	b.ReportMetric(twelve/one, "saturation-x")
}

// BenchmarkFig15Alignment8Core regenerates Fig. 15 and reports the
// cycles/iteration band across alignment configurations.
func BenchmarkFig15Alignment8Core(b *testing.B) {
	tab := runExperiment(b, "fig15")
	s := tab.Series[0]
	b.ReportMetric(s.MinY(), "min-cyc/iter")
	b.ReportMetric(s.MaxY(), "max-cyc/iter")
}

// BenchmarkFig16Alignment32Core regenerates Fig. 16.
func BenchmarkFig16Alignment32Core(b *testing.B) {
	tab := runExperiment(b, "fig16")
	s := tab.Series[0]
	b.ReportMetric(s.MinY(), "min-cyc/iter")
	b.ReportMetric(s.MaxY(), "max-cyc/iter")
}

// BenchmarkFig17OpenMP128k regenerates Fig. 17 and reports the OpenMP gain
// on the cache-resident array.
func BenchmarkFig17OpenMP128k(b *testing.B) {
	tab := runExperiment(b, "fig17")
	s, _ := tab.Get("sequential").YAt(8)
	o, _ := tab.Get("openmp").YAt(8)
	b.ReportMetric(s/o, "omp-gain-x")
}

// BenchmarkFig18OpenMP6M regenerates Fig. 18 (RAM-resident array).
func BenchmarkFig18OpenMP6M(b *testing.B) {
	tab := runExperiment(b, "fig18")
	s, _ := tab.Get("sequential").YAt(8)
	o, _ := tab.Get("openmp").YAt(8)
	b.ReportMetric(s/o, "omp-gain-x")
}

// BenchmarkTab02OpenMPWallclock regenerates Table 2 and reports the
// seconds-scale entries' structure: sequential u1 vs u8, and OpenMP u1.
func BenchmarkTab02OpenMPWallclock(b *testing.B) {
	tab := runExperiment(b, "tab02")
	s1, _ := tab.Get("sequential (s)").YAt(1)
	s8, _ := tab.Get("sequential (s)").YAt(8)
	o1, _ := tab.Get("openmp (s)").YAt(1)
	b.ReportMetric(s1, "seq-u1-s")
	b.ReportMetric(s8, "seq-u8-s")
	b.ReportMetric(o1, "omp-u1-s")
}

// BenchmarkStabilityProtocol regenerates the §4.7 stability study and
// reports the run-to-run CV with and without the launcher's protocol.
func BenchmarkStabilityProtocol(b *testing.B) {
	tab := runExperiment(b, "stability")
	b.ReportMetric(tab.Get("full protocol").Points[0].Y, "protocol-CV-%")
	b.ReportMetric(tab.Get("noise, naive").Points[0].Y, "naive-CV-%")
}

// ---- ablations -------------------------------------------------------------

func buildLoadKernel(b *testing.B, u int) *isa.Program {
	b.Helper()
	var sb strings.Builder
	sb.WriteString(".L0:\n")
	for c := 0; c < u; c++ {
		fmt.Fprintf(&sb, "movaps %d(%%rsi), %%xmm%d\n", 16*c, c%8)
	}
	fmt.Fprintf(&sb, "add $%d, %%rsi\n", 16*u)
	sb.WriteString("add $1, %eax\n")
	fmt.Fprintf(&sb, "sub $%d, %%rdi\n", 4*u)
	sb.WriteString("jge .L0\nret\n")
	p, err := asm.ParseOne(sb.String(), fmt.Sprintf("bench_u%d", u))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkAblationAnalyticVsEventDriven compares the fast analytic
// steady-state model against the event-driven core on an L1-resident
// kernel: it reports both estimates and the analytic model's speedup.
func BenchmarkAblationAnalyticVsEventDriven(b *testing.B) {
	arch := isa.Nehalem()
	prog := buildLoadKernel(b, 8)
	mem := fixedLatencyMem{lat: 4}

	iters := int64(2000)
	var eventCyc float64
	for i := 0; i < b.N; i++ {
		var rf isa.RegFile
		rf.Set(isa.RDI, uint64(32*iters-1))
		rf.Set(isa.RSI, 0x100000)
		core := cpu.NewCore(0, arch, mem)
		if err := core.Reset(prog, &rf, 0, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Step(math.MaxInt64); err != nil {
			b.Fatal(err)
		}
		eventCyc = float64(core.Result().Cycles) / float64(iters)
	}
	est, err := analytic.EstimateLoop(prog, arch, analytic.L1(arch))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(eventCyc, "event-cyc/iter")
	b.ReportMetric(est.CyclesPerIter, "analytic-cyc/iter")
	b.ReportMetric(est.CyclesPerIter/eventCyc, "ratio")
}

type fixedLatencyMem struct{ lat int64 }

func (m fixedLatencyMem) Load(_ int, _ uint64, _ int, issue int64) int64 {
	return issue + m.lat
}
func (m fixedLatencyMem) Store(_ int, _ uint64, _ int, issue int64) int64 {
	return issue + 1
}

// launchOnMachine measures a kernel on an explicitly configured machine.
func launchOnMachine(b *testing.B, desc *machine.Machine, prog *isa.Program, arrayBytes int64) float64 {
	b.Helper()
	mach, err := sim.New(desc)
	if err != nil {
		b.Fatal(err)
	}
	opts := launcher.DefaultOptions()
	opts.MachineName = desc.Name
	opts.ArrayBytes = arrayBytes
	opts.InnerReps = 1
	opts.OuterReps = 1
	opts.MaxInstructions = 60_000
	m, err := launcher.LaunchOn(context.Background(), mach, prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	return m.Value
}

// BenchmarkAblationPrefetcher measures the next-line prefetcher's effect on
// a latency-bound sequential stream (one outstanding access at a time, the
// worst case the prefetcher exists for). A many-MSHR unrolled stream is
// bandwidth-bound either way — that architectural fact is itself part of
// the result, so both regimes are reported.
func BenchmarkAblationPrefetcher(b *testing.B) {
	base, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		b.Fatal(err)
	}
	size := base.Hierarchy.L3.Size * 2
	serialized := func(pf bool) float64 {
		desc := *base
		desc.Hierarchy.NextLinePrefetch = pf
		sys, err := desc.NewSystem()
		if err != nil {
			b.Fatal(err)
		}
		cycle := int64(1)
		n := int64(0)
		for off := int64(0); off < size; off += 64 {
			cycle = sys.Load(0, uint64(0x1000000+off), 8, cycle)
			n++
		}
		return float64(cycle) / float64(n)
	}
	overlapped := func(pf bool) float64 {
		desc := *base
		desc.Hierarchy.NextLinePrefetch = pf
		return launchOnMachine(b, &desc, buildLoadKernel(b, 8), size)
	}
	var serOn, serOff, ovlOn, ovlOff float64
	for i := 0; i < b.N; i++ {
		serOn, serOff = serialized(true), serialized(false)
		ovlOn, ovlOff = overlapped(true), overlapped(false)
	}
	b.ReportMetric(serOff/serOn, "latency-bound-speedup-x")
	b.ReportMetric(ovlOff/ovlOn, "bw-bound-speedup-x")
	b.ReportMetric(serOn, "serialized-pf-cyc/line")
	b.ReportMetric(serOff, "serialized-nopf-cyc/line")
}

// BenchmarkAblationRegisterRotation quantifies §3.1's claim that rotating
// XMM registers "reduces register dependency": an unrolled read-modify
// multiply chain on one register vs rotated registers.
func BenchmarkAblationRegisterRotation(b *testing.B) {
	build := func(rotate bool) *isa.Program {
		var sb strings.Builder
		sb.WriteString(".L0:\n")
		for c := 0; c < 8; c++ {
			reg := 2
			if rotate {
				reg = 2 + c%6
			}
			fmt.Fprintf(&sb, "mulsd %d(%%rsi), %%xmm%d\n", 8*c, reg)
		}
		sb.WriteString("add $64, %rsi\nadd $1, %eax\nsub $8, %rdi\njge .L0\nret\n")
		p, err := asm.ParseOne(sb.String(), "rot")
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	arch := isa.Nehalem()
	run := func(p *isa.Program) float64 {
		var rf isa.RegFile
		rf.Set(isa.RDI, 8*2000-1)
		rf.Set(isa.RSI, 0x100000)
		core := cpu.NewCore(0, arch, fixedLatencyMem{lat: 4})
		if err := core.Reset(p, &rf, 0, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Step(math.MaxInt64); err != nil {
			b.Fatal(err)
		}
		return float64(core.Result().Cycles) / 2000
	}
	var fixed, rotated float64
	for i := 0; i < b.N; i++ {
		fixed = run(build(false))
		rotated = run(build(true))
	}
	b.ReportMetric(fixed, "fixed-reg-cyc/iter")
	b.ReportMetric(rotated, "rotated-cyc/iter")
	b.ReportMetric(fixed/rotated, "speedup-x")
}

// BenchmarkSimulatorThroughput measures the event-driven core's simulation
// speed in dynamic instructions per second — the practical budget every
// experiment sweep spends from.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog := buildLoadKernel(b, 8)
	arch := isa.Nehalem()
	var insts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rf isa.RegFile
		rf.Set(isa.RDI, 32*5000-1)
		rf.Set(isa.RSI, 0x100000)
		core := cpu.NewCore(0, arch, fixedLatencyMem{lat: 4})
		if err := core.Reset(prog, &rf, 0, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Step(math.MaxInt64); err != nil {
			b.Fatal(err)
		}
		insts += core.Result().Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkGenerate510Variants measures MicroCreator's generation speed on
// the paper's 510-variant input.
func BenchmarkGenerate510Variants(b *testing.B) {
	spec := fig6Spec()
	for i := 0; i < b.N; i++ {
		progs, err := GenerateString(context.Background(), spec, GenerateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(progs) != 510 {
			b.Fatalf("generated %d variants, want 510", len(progs))
		}
	}
}

// BenchmarkVerifyVariants measures the static verifier's overhead on a
// ~1k-variant expansion. Both arms produce launch-ready (decoded) programs —
// with verification off the launcher decodes each variant itself, with
// verification on the verify-variants pass decodes and caches p.Parsed — so
// the delta is the cost of the verification rules proper, not of moving the
// decode step around. The verify-overhead-% metric is that delta relative to
// generation wall-clock: full two-level (IR + asm) verification costs a few
// microseconds per variant, around a tenth of generation time and well under
// a percent of any campaign that actually launches what it generates.
func BenchmarkVerifyVariants(b *testing.B) {
	spec := strings.Replace(fig6Spec(),
		"<unrolling><min>1</min><max>8</max></unrolling>",
		"<unrolling><min>1</min><max>9</max></unrolling>", 1)
	// generate runs MicroCreator and leaves every program decoded, exactly
	// as a launch campaign would consume it.
	generate := func(opts GenerateOptions) int {
		progs, err := GenerateString(context.Background(), spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		for i := range progs {
			if progs[i].Parsed != nil {
				continue
			}
			if _, err := progs[i].Lowered(); err != nil {
				b.Fatal(err)
			}
		}
		return len(progs)
	}
	if n := generate(GenerateOptions{}); n != 1022 {
		b.Fatalf("generated %d variants, want 1022 (unroll 1..9)", n)
	}

	b.Run("no-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			generate(GenerateOptions{Verify: VerifyOff})
		}
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			generate(GenerateOptions{})
		}
	})

	// Paired interleaved runs for the headline relative-overhead metric;
	// medians damp the GC noise either arm can catch on a busy machine.
	b.Run("overhead", func(b *testing.B) {
		offs := make([]time.Duration, 0, b.N)
		ons := make([]time.Duration, 0, b.N)
		for i := 0; i < b.N; i++ {
			start := time.Now()
			generate(GenerateOptions{Verify: VerifyOff})
			offs = append(offs, time.Since(start))
			start = time.Now()
			generate(GenerateOptions{})
			ons = append(ons, time.Since(start))
		}
		median := func(ds []time.Duration) time.Duration {
			sorted := append([]time.Duration(nil), ds...)
			slices.Sort(sorted)
			return sorted[len(sorted)/2]
		}
		if off := median(offs); off > 0 {
			on := median(ons)
			b.ReportMetric(100*(float64(on)-float64(off))/float64(off), "verify-overhead-%")
		}
	})
}

// BenchmarkAnalyze measures the static dataflow analysis (internal/dataflow)
// over the paper's 510-variant §5.1 family: parse + reaching definitions +
// dependence DAG + bound computation per variant. The per-variant metric is
// what the campaign pays to attach a static bound to every measurement and
// what ScreenTopKStatic pays per candidate.
func BenchmarkAnalyze(b *testing.B) {
	progs, err := GenerateString(context.Background(), fig6Spec(), GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	arch := isa.Nehalem()
	kernels := make([]*Kernel, len(progs))
	for i := range progs {
		k, err := progs[i].Lowered()
		if err != nil {
			b.Fatal(err)
		}
		kernels[i] = k
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			rep, err := dataflow.Analyze(k, arch)
			if err != nil {
				b.Fatal(err)
			}
			if rep.CyclesLowerBound <= 0 {
				b.Fatalf("%s: no bound", k.Name)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(kernels)), "ns/variant")
}

// BenchmarkScreenStatic measures the dataflow-bound screen over the same
// 510-variant family (keep 32) and reports the speedup a campaign gains by
// measuring only the survivors: (cost of simulating all variants) versus
// (screen + simulate the kept fraction), with the per-variant simulation
// cost taken from one real launch.
func BenchmarkScreenStatic(b *testing.B) {
	progs, err := GenerateString(context.Background(), fig6Spec(), GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const keep = 32
	var screenTime time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		kept, err := core.ScreenTopKStatic(context.Background(), progs, "nehalem-dual/8", 4, keep)
		if err != nil {
			b.Fatal(err)
		}
		screenTime += time.Since(start)
		if len(kept) != keep {
			b.Fatalf("kept %d, want %d", len(kept), keep)
		}
	}
	b.StopTimer()
	// One real launch calibrates the simulation cost the screen avoids.
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 4 << 10
	opts.InnerReps = 1
	opts.OuterReps = 2
	kernel, err := progs[0].Lowered()
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	if _, err := launcher.Launch(context.Background(), kernel, opts); err != nil {
		b.Fatal(err)
	}
	perLaunch := time.Since(start)
	screenPer := screenTime / time.Duration(b.N)
	all := perLaunch * time.Duration(len(progs))
	screened := screenPer + perLaunch*keep
	if screened > 0 {
		b.ReportMetric(float64(all)/float64(screened), "campaign-speedup-x")
	}
	b.ReportMetric(float64(screenPer.Nanoseconds())/float64(len(progs)), "screen-ns/variant")
}

func fig6Spec() string {
	return `
<kernel name="loadstore">
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>.L6</label><test>jge</test></branch_information>
</kernel>`
}

// ---- observability overhead ---------------------------------------------------

// obsKernel is the minimal streaming kernel the tracing-overhead benchmarks
// launch: small enough that per-launch protocol overhead dominates, which is
// exactly where tracing overhead would show.
const obsKernel = `
.L0:
movaps (%rsi), %xmm0
add $16, %rsi
add $1, %eax
sub $4, %rdi
jge .L0
ret`

func obsLaunchOptions() LaunchOptions {
	opts := DefaultLaunchOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 2 << 10
	opts.InnerReps = 2
	opts.OuterReps = 2
	return opts
}

// BenchmarkLaunchUntraced is the baseline: the instrumented launcher with
// the default nil tracer. The no-op tracing path must cost nothing — compare
// against BenchmarkLaunchTraced to see the price of turning tracing on.
func BenchmarkLaunchUntraced(b *testing.B) {
	prog, err := asm.ParseOne(obsKernel, "k")
	if err != nil {
		b.Fatal(err)
	}
	opts := obsLaunchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Launch(context.Background(), prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchTraced launches with an active tracer recording the full
// span tree (launch > phases > reps > sim runs).
func BenchmarkLaunchTraced(b *testing.B) {
	prog, err := asm.ParseOne(obsKernel, "k")
	if err != nil {
		b.Fatal(err)
	}
	opts := obsLaunchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Tracer = NewTracer()
		if _, err := Launch(context.Background(), prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchCounters launches with simulated-PMU counter collection.
func BenchmarkLaunchCounters(b *testing.B) {
	prog, err := asm.ParseOne(obsKernel, "k")
	if err != nil {
		b.Fatal(err)
	}
	opts := obsLaunchOptions()
	opts.CollectCounters = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Launch(context.Background(), prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- hot-path simulator benchmarks (the BENCH_sim.json trajectory) ---------
//
// These three benchmarks are the repository's performance gate for the
// measurement loop itself (make bench-json): the single-repetition simulator
// path, the full launcher protocol, and a whole campaign sweep. They are
// pprof-friendly (one op = one unit of real work, no per-op setup) and run
// with -benchmem so allocation regressions fail review.

// BenchmarkRunOne measures the simulate-one-repetition path: the same kernel
// re-launched on the same machine, which is exactly the unit of work the
// launcher's inner/outer repetition loops spend. After the first launch the
// decode cache and core pool are warm, so repeat launches must be 0
// allocs/op.
func BenchmarkRunOne(b *testing.B) {
	desc, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		b.Fatal(err)
	}
	mach, err := sim.New(desc)
	if err != nil {
		b.Fatal(err)
	}
	prog := buildLoadKernel(b, 4)
	var rf isa.RegFile
	rf.Set(isa.RDI, 16*64-1)
	rf.Set(isa.RSI, 0x100000)
	job := sim.Job{Core: 0, Prog: prog, Regs: rf}
	// Warm launch: decode the program and populate the core pool.
	if _, err := mach.RunOne(job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		r, err := mach.RunOne(job)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkLauncherProtocol measures one full launch protocol (warm-up,
// calibration, outer×inner repetitions) of a small streaming kernel on a
// reused machine. The trip count is deliberately tiny so per-repetition
// overhead — not simulated kernel work — dominates: this is the fixed cost
// every variant of a sweep pays.
func BenchmarkLauncherProtocol(b *testing.B) {
	desc, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		b.Fatal(err)
	}
	mach, err := sim.New(desc)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.ParseOne(obsKernel, "k")
	if err != nil {
		b.Fatal(err)
	}
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 1 << 10
	opts.TripElements = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := launcher.LaunchOn(context.Background(), mach, prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVariantMaterialize measures the per-variant materialization
// path the IR-first pipeline pays between generation and launch: lower the
// kernel IR to its decoded program, run the per-program verifier rules on
// it, and decode it for the baseline microarchitecture. This is the fixed
// static cost of every variant in a sweep before any simulation happens —
// the number that regresses when text rendering or string building sneaks
// back into the hot path.
func BenchmarkVariantMaterialize(b *testing.B) {
	progs, err := core.Generate(context.Background(), strings.NewReader(fig6Spec()), core.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// A mid-family variant: unrolled enough that the body dominates the
	// prologue, small enough to stay representative of the whole family.
	k := progs[len(progs)/2].Kernel
	arch := isa.Nehalem()
	opt := verify.Options{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, err := codegen.Lower(k)
		if err != nil {
			b.Fatal(err)
		}
		if ds := verify.Program(parsed, parsed.Name, opt); len(ds) > 0 {
			b.Fatalf("verify: %v", ds)
		}
		if _, err := parsed.Decoded(arch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSweep measures a full cold sweep of the paper's
// 510-variant family: generate, verify and measure every variant, no cache.
// This is the end-to-end number a campaign's wall-clock scales from.
func BenchmarkCampaignSweep(b *testing.B) {
	spec := fig6Spec()
	launch := DefaultLaunchOptions()
	launch.MachineName = "nehalem-dual/8"
	launch.ArrayBytes = 1 << 12
	launch.InnerReps = 1
	launch.OuterReps = 1
	launch.MaxInstructions = 2_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunCampaign(context.Background(), strings.NewReader(spec), GenerateOptions{},
			CampaignOptions{Launch: launch, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.Launches != 510 {
			b.Fatalf("sweep launched %d variants, want 510", res.Launches)
		}
	}
}

// BenchmarkCampaignSweepAdaptive is BenchmarkCampaignSweep with a real
// 4-rep outer budget and the adaptive planner armed: same 510 variants,
// every one stopping at the 2-rep floor, then a top-up pass re-launching
// the variants whose collapsed interval still misses the target. Compare
// against a fixed OuterReps=4 run to read the planner's wall-clock win.
func BenchmarkCampaignSweepAdaptive(b *testing.B) {
	spec := fig6Spec()
	launch := DefaultLaunchOptions()
	launch.MachineName = "nehalem-dual/8"
	launch.ArrayBytes = 1 << 12
	launch.InnerReps = 1
	launch.OuterReps = 4
	launch.MaxInstructions = 2_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunCampaign(context.Background(), strings.NewReader(spec), GenerateOptions{},
			CampaignOptions{Launch: launch, Workers: 4, Adaptive: &AdaptivePlan{}})
		if err != nil {
			b.Fatal(err)
		}
		if res.Emitted != 510 {
			b.Fatalf("sweep emitted %d variants, want 510", res.Emitted)
		}
		if res.RepsSaved == 0 {
			b.Fatal("adaptive sweep saved no repetitions")
		}
	}
}

// BenchmarkCampaignSweepWorkers runs the same 510-variant cold sweep at
// 1/2/4/8 workers — the parallel-scaling curve of the campaign engine. The
// results are bit-identical across worker counts (every variant runs on its
// own simulated machine), so the sub-benchmark ratios are pure scheduling
// efficiency.
func BenchmarkCampaignSweepWorkers(b *testing.B) {
	spec := fig6Spec()
	launch := DefaultLaunchOptions()
	launch.MachineName = "nehalem-dual/8"
	launch.ArrayBytes = 1 << 12
	launch.InnerReps = 1
	launch.OuterReps = 1
	launch.MaxInstructions = 2_000
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunCampaign(context.Background(), strings.NewReader(spec), GenerateOptions{},
					CampaignOptions{Launch: launch, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Launches != 510 {
					b.Fatalf("sweep launched %d variants, want 510", res.Launches)
				}
			}
		})
	}
}

// BenchmarkLauncherProtocolTelemetry is BenchmarkLauncherProtocol with a live
// metrics registry armed: every repetition feeds the rep-latency histogram
// and the sim flushes its counters at launch end. Compare against the plain
// benchmark — the acceptance budget for enabled telemetry is <2% on this
// protocol-dominated path.
func BenchmarkLauncherProtocolTelemetry(b *testing.B) {
	desc, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		b.Fatal(err)
	}
	mach, err := sim.New(desc)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.ParseOne(obsKernel, "k")
	if err != nil {
		b.Fatal(err)
	}
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 1 << 10
	opts.TripElements = 16
	opts.Metrics = telemetry.NewMetrics(telemetry.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := launcher.LaunchOn(context.Background(), mach, prog, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := opts.Metrics.Registry.Snapshot()
	if s.Counters["sim.insts.retired"] == 0 {
		b.Fatal("telemetry was armed but sim.insts.retired stayed 0")
	}
}

// BenchmarkCampaign compares a cold campaign (every variant generated,
// launched and cached) against a cache-warm re-run of the identical
// campaign (every variant served from the content-addressed store, zero
// launches). The gap is the measurement cost the cache amortizes across
// repeated or resumed sweeps.
func BenchmarkCampaign(b *testing.B) {
	spec := fig6Spec()
	gen := GenerateOptions{}
	launch := DefaultLaunchOptions()
	launch.MachineName = "nehalem-dual/8"
	launch.ArrayBytes = 1 << 12
	launch.InnerReps = 1
	launch.OuterReps = 1
	launch.MaxInstructions = 2_000

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache, err := OpenMeasurementCache(filepath.Join(b.TempDir(), "m.jsonl"))
			if err != nil {
				b.Fatal(err)
			}
			res, err := RunCampaign(context.Background(), strings.NewReader(spec), gen,
				CampaignOptions{Launch: launch, Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.Launches != res.Emitted || res.CacheHits != 0 {
				b.Fatalf("cold run: %d launches, %d hits over %d variants",
					res.Launches, res.CacheHits, res.Emitted)
			}
			cache.Close()
		}
	})
	b.Run("warm", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "m.jsonl")
		cache, err := OpenMeasurementCache(path)
		if err != nil {
			b.Fatal(err)
		}
		defer cache.Close()
		if _, err := RunCampaign(context.Background(), strings.NewReader(spec), gen,
			CampaignOptions{Launch: launch, Cache: cache}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := RunCampaign(context.Background(), strings.NewReader(spec), gen,
				CampaignOptions{Launch: launch, Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if res.Launches != 0 || res.CacheHits != res.Emitted {
				b.Fatalf("warm run: %d launches, %d hits over %d variants",
					res.Launches, res.CacheHits, res.Emitted)
			}
		}
	})
}
