package telemetry

import (
	"sort"
	"sync"
	"time"
)

// retainFinished bounds how many completed campaigns a tracker keeps for
// /debug/campaigns after they end.
const retainFinished = 16

// CampaignUpdate is one progress delta from the campaign engine — the
// engine's Progress snapshot plus the resilience accounting.
type CampaignUpdate struct {
	Done        int
	Emitted     int
	Generating  bool
	CacheHits   int
	Failed      int
	Launches    int
	Retries     int
	Quarantined int
	KeyErrors   int
}

// CampaignSnapshot is the JSON face of one tracked campaign, served by
// /debug/campaigns and embedded in /events payloads.
type CampaignSnapshot struct {
	ID          int64  `json:"id"`
	Name        string `json:"name"`
	Done        int    `json:"done"`
	Emitted     int    `json:"emitted"`
	Generating  bool   `json:"generating"`
	CacheHits   int    `json:"cache_hits"`
	Failed      int    `json:"failed"`
	Launches    int    `json:"launches"`
	Retries     int    `json:"retries"`
	Quarantined int    `json:"quarantined"`
	// KeyErrors counts variants measured without a derivable cache key
	// (they bypass the cache; a warm re-run repeats their launches).
	KeyErrors int `json:"key_errors"`
	// CacheHitRatio is CacheHits/Done (0 before the first completion).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// ElapsedSeconds is wall time since Begin; ETASeconds extrapolates
	// the remaining variants from the completion rate so far (0 until
	// the first variant completes, and a floor while Generating is true
	// because the final total is still unknown).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds"`
	Finished       bool    `json:"finished"`
	Err            string  `json:"error,omitempty"`
}

// Event is one campaign lifecycle event on the /events stream. Seq is a
// tracker-wide monotonic sequence number: subscribers observe strictly
// increasing values, and a gap means the subscriber's buffer overflowed
// and events were dropped.
type Event struct {
	Seq      int64            `json:"seq"`
	Type     string           `json:"type"` // "begin" | "progress" | "end"
	Campaign CampaignSnapshot `json:"campaign"`
}

// Tracker registers in-flight campaigns and fans their progress out to
// subscribers. A nil *Tracker is the disabled default: Begin returns a
// nil *Campaign whose methods all no-op.
type Tracker struct {
	mu       sync.Mutex
	nextID   int64
	nextSeq  int64
	nextSub  int64
	live     map[int64]*Campaign
	finished []*Campaign
	subs     map[int64]chan Event
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{live: map[int64]*Campaign{}, subs: map[int64]chan Event{}}
}

// Campaign is one tracked campaign run. All mutable state is guarded by
// the owning tracker's lock, which also orders the emitted events.
type Campaign struct {
	t       *Tracker
	id      int64
	name    string
	started time.Time

	upd      CampaignUpdate
	finished bool
	errMsg   string
}

// Begin registers a new campaign and emits its "begin" event. On a nil
// tracker it returns nil, which Update and End accept.
func (t *Tracker) Begin(name string) *Campaign {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	c := &Campaign{t: t, id: t.nextID, name: name, started: time.Now()}
	t.live[c.id] = c
	t.emitLocked("begin", c)
	return c
}

// Update records a progress delta and emits a "progress" event.
func (c *Campaign) Update(u CampaignUpdate) {
	if c == nil {
		return
	}
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if c.finished {
		return
	}
	c.upd = u
	c.t.emitLocked("progress", c)
}

// End marks the campaign finished (err may be nil) and emits its "end"
// event. Later Update/End calls are ignored.
func (c *Campaign) End(err error) {
	if c == nil {
		return
	}
	c.t.mu.Lock()
	defer c.t.mu.Unlock()
	if c.finished {
		return
	}
	c.finished = true
	if err != nil {
		c.errMsg = err.Error()
	}
	delete(c.t.live, c.id)
	c.t.finished = append(c.t.finished, c)
	if len(c.t.finished) > retainFinished {
		c.t.finished = c.t.finished[len(c.t.finished)-retainFinished:]
	}
	c.t.emitLocked("end", c)
}

// snapshotLocked renders the campaign's current state; the caller holds
// the tracker lock.
func (c *Campaign) snapshotLocked(now time.Time) CampaignSnapshot {
	s := CampaignSnapshot{
		ID:          c.id,
		Name:        c.name,
		Done:        c.upd.Done,
		Emitted:     c.upd.Emitted,
		Generating:  c.upd.Generating,
		CacheHits:   c.upd.CacheHits,
		Failed:      c.upd.Failed,
		Launches:    c.upd.Launches,
		Retries:     c.upd.Retries,
		Quarantined: c.upd.Quarantined,
		KeyErrors:   c.upd.KeyErrors,
		Finished:    c.finished,
		Err:         c.errMsg,
	}
	s.ElapsedSeconds = now.Sub(c.started).Seconds()
	if s.Done > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(s.Done)
		if !s.Finished && s.Emitted > s.Done {
			s.ETASeconds = s.ElapsedSeconds / float64(s.Done) * float64(s.Emitted-s.Done)
		}
	}
	return s
}

// emitLocked fans one event out to every subscriber; the caller holds the
// tracker lock. Sends never block: a subscriber whose buffer is full
// loses the event (visible to it as a Seq gap).
func (t *Tracker) emitLocked(kind string, c *Campaign) {
	if len(t.subs) == 0 {
		return
	}
	t.nextSeq++
	ev := Event{Seq: t.nextSeq, Type: kind, Campaign: c.snapshotLocked(time.Now())}
	for _, ch := range t.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe registers an event channel with the given buffer size (min 1)
// and returns it with a cancel function. Cancel closes the channel after
// unregistering it; pending buffered events remain readable.
func (t *Tracker) Subscribe(buffer int) (<-chan Event, func()) {
	if t == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Event, buffer)
	t.mu.Lock()
	t.nextSub++
	id := t.nextSub
	t.subs[id] = ch
	t.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			t.mu.Lock()
			delete(t.subs, id)
			t.mu.Unlock()
			close(ch)
		})
	}
}

// Snapshots returns every live campaign plus the retained finished ones,
// ordered by campaign id. On a nil tracker it returns nil.
func (t *Tracker) Snapshots() []CampaignSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	out := make([]CampaignSnapshot, 0, len(t.live)+len(t.finished))
	for _, c := range t.live {
		out = append(out, c.snapshotLocked(now))
	}
	for _, c := range t.finished {
		out = append(out, c.snapshotLocked(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
