package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilHandlesNoOp(t *testing.T) {
	var r *Registry
	// Every accessor on a nil registry returns a nil (disabled) handle,
	// and every method on a nil handle is a no-op.
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("x").Set(7)
	r.Gauge("x").Add(1)
	r.Histogram("x", nil).Observe(1)
	r.Count("x", 5)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d, want 0", got)
	}
	if got := r.Gauge("x").Value(); got != 0 {
		t.Errorf("nil gauge value = %d, want 0", got)
	}
	if got := r.Histogram("x", nil).Count(); got != 0 {
		t.Errorf("nil histogram count = %d, want 0", got)
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry exposition not empty: %q", b.String())
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if r.Counter("hits") != c {
		t.Error("Counter did not return the same handle on second lookup")
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	// The CounterSink contract routes named deltas to the same counter.
	r.Count("hits", 4)
	if got := c.Value(); got != 7 {
		t.Errorf("counter after Count = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) semantics: an
// observation exactly equal to a bound lands in that bound's bucket, one
// just above it in the next, and anything beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{1, 1.5, 2, 5, 7} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(s.Histograms))
	}
	hs := s.Histograms[0]
	// v=1 -> le=1; v=1.5 and v=2 -> le=2; v=5 -> le=5; v=7 -> +Inf.
	want := []int64{1, 2, 1, 1}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(hs.Buckets), len(want))
	}
	for i, n := range want {
		if hs.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d (buckets %v)", i, hs.Buckets[i], n, hs.Buckets)
		}
	}
	if hs.Count != 5 {
		t.Errorf("count = %d, want 5", hs.Count)
	}
	if hs.Sum != 1+1.5+2+5+7 {
		t.Errorf("sum = %g, want 16.5", hs.Sum)
	}
}

func TestHistogramBoundsSortedAndFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{5, 1, 2}) // unsorted on purpose
	h.Observe(1.5)
	again := r.Histogram("lat", []float64{100, 200})
	if again != h {
		t.Fatal("second registration returned a different histogram")
	}
	hs := r.Snapshot().Histograms[0]
	if len(hs.Bounds) != 3 || hs.Bounds[0] != 1 || hs.Bounds[1] != 2 || hs.Bounds[2] != 5 {
		t.Errorf("bounds = %v, want sorted [1 2 5]", hs.Bounds)
	}
	if hs.Buckets[1] != 1 {
		t.Errorf("1.5 landed in buckets %v, want le=2", hs.Buckets)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", nil)
	h.Observe(0.5e-3) // 500µs -> le=1e-3
	hs := r.Snapshot().Histograms[0]
	if len(hs.Bounds) != len(DurationBuckets) {
		t.Fatalf("default bounds = %v", hs.Bounds)
	}
	if hs.Buckets[3] != 1 { // 1e-6, 1e-5, 1e-4, 1e-3
		t.Errorf("500µs landed in buckets %v, want index 3 (le=1e-3)", hs.Buckets)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op", nil)
	tm := h.Start()
	tm.Stop()
	if got := h.Count(); got != 1 {
		t.Errorf("count after Start/Stop = %d, want 1", got)
	}
	// A timer from a nil histogram is inert.
	var nh *Histogram
	nt := nh.Start()
	nt.Stop()
}

func TestTickChainsLaps(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("a", nil)
	b := r.Histogram("b", nil)
	var tick Tick
	if tick.Started() {
		t.Fatal("zero Tick reports Started")
	}
	// A Lap without a baseline only establishes one.
	tick.Lap(a)
	if got := a.Count(); got != 0 {
		t.Errorf("baseline Lap observed %d samples, want 0", got)
	}
	if !tick.Started() {
		t.Fatal("Tick has no baseline after Lap")
	}
	tick.Lap(a) // observes a
	tick.Lap(b) // observes b, chained from a's end
	if got := a.Count(); got != 1 {
		t.Errorf("a count = %d, want 1", got)
	}
	if got := b.Count(); got != 1 {
		t.Errorf("b count = %d, want 1", got)
	}
	// LapN splits one lap across n observations summing to the lap.
	tick.Reset()
	time.Sleep(time.Millisecond)
	tick.LapN(a, 4)
	if got := a.Count(); got != 5 {
		t.Errorf("a count after LapN = %d, want 5", got)
	}
	if sum := a.Sum(); sum <= 0 {
		t.Errorf("a sum = %g, want > 0", sum)
	}
	tick.LapN(a, 0) // n<=0 only moves the baseline
	if got := a.Count(); got != 5 {
		t.Errorf("a count after LapN(0) = %d, want 5", got)
	}
}

// TestConcurrentObserveAndCollect drives observers and collectors in
// parallel; under -race (make race) this is the registry's thread-safety
// gate.
func TestConcurrentObserveAndCollect(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", nil).Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestMetricsNilRegistry(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %+v, want nil", m)
	}
	m := NewMetrics(NewRegistry())
	if m.VariantSeconds == nil || m.RepSeconds == nil || m.SimInstsRetired == nil {
		t.Fatal("NewMetrics left handles nil")
	}
	m.SimInstsRetired.Add(42)
	if got := m.Registry.Snapshot().Counters[MetricSimInstsRetired]; got != 42 {
		t.Errorf("%s = %d, want 42", MetricSimInstsRetired, got)
	}
}
