package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a dotted internal metric name ("campaign.cache.hits")
// into a Prometheus series name ("microtools_campaign_cache_hits"): every
// rune outside [a-zA-Z0-9_] becomes '_', and the module prefix namespaces
// the series.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("microtools_") + len(name))
	b.WriteString("microtools_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way the Prometheus text format expects:
// shortest round-trip decimal, with +Inf spelled out.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), hand-rolled on the standard library. Series are
// sorted by name so the output is deterministic, and histograms emit the
// conventional cumulative _bucket{le=...} / _sum / _count triplet.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms { // already name-sorted by Snapshot
		pn := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Buckets[len(h.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
