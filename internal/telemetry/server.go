package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// ServerOptions configures the embeddable telemetry server.
type ServerOptions struct {
	// Registry backs /metrics (nil serves an empty exposition).
	Registry *Registry
	// Tracker backs /debug/campaigns and /events (nil serves empty
	// snapshots and a stream that only heartbeats).
	Tracker *Tracker
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles reveal program structure, so the operator opts
	// in per process.
	EnablePprof bool
}

// Server serves the live telemetry endpoints:
//
//	/metrics          Prometheus text exposition of the registry
//	/debug/campaigns  JSON snapshot of in-flight and recent campaigns
//	/events           SSE stream of campaign progress events
//	/debug/pprof/     net/http/pprof (only with EnablePprof)
type Server struct {
	opts ServerOptions

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// NewServer builds a server over the given sources; Start brings it up.
func NewServer(opts ServerOptions) *Server {
	return &Server{opts: opts}
}

// Handler returns the telemetry routing mux — what Start serves, exposed
// so tests (and embedding daemons) can mount it without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveIndex)
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/campaigns", s.serveCampaigns)
	mux.HandleFunc("/events", s.serveEvents)
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Start listens on addr (host:port; an ephemeral ":0" works) and serves
// in a background goroutine. It returns the bound address, so callers
// that asked for port 0 learn the real one.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.http = srv
	s.mu.Unlock()
	go func() {
		// ErrServerClosed is the normal Close path; anything else has
		// nowhere to go but the next scrape noticing the endpoint gone.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and interrupts in-flight handlers (SSE
// streams included). It is a no-op before Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "microtools telemetry\n\n/metrics\n/debug/campaigns\n/events\n")
	if s.opts.EnablePprof {
		fmt.Fprintf(w, "/debug/pprof/\n")
	}
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.opts.Registry.WritePrometheus(w); err != nil {
		// The connection died mid-write; there is no response left to
		// fail. Nothing to do.
		return
	}
}

// campaignsPage is the /debug/campaigns JSON envelope.
type campaignsPage struct {
	Campaigns []CampaignSnapshot `json:"campaigns"`
}

func (s *Server) serveCampaigns(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	page := campaignsPage{Campaigns: s.opts.Tracker.Snapshots()}
	if page.Campaigns == nil {
		page.Campaigns = []CampaignSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(page)
}

// serveEvents streams campaign events as Server-Sent Events. Each event
// carries its tracker sequence number as the SSE id, the event type
// (begin/progress/end) as the SSE event name, and the campaign snapshot
// as JSON data. On connect the current snapshots are replayed as
// "snapshot" events so a late subscriber starts from a consistent view.
func (s *Server) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "telemetry: streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe before replaying the snapshots: an event racing the
	// replay is then duplicated (same campaign state twice), never lost.
	ch, cancel := s.opts.Tracker.Subscribe(256)
	defer cancel()
	for _, snap := range s.opts.Tracker.Snapshots() {
		if err := WriteSSE(w, "snapshot", 0, snap); err != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := WriteSSE(w, ev.Type, ev.Seq, ev.Campaign); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// WriteSSE frames one event in the text/event-stream format: an optional
// numeric id line (seq > 0), the event name, and the JSON-encoded payload
// as the data line. It is the single SSE framing implementation shared by
// the telemetry /events stream and the service job-event streams, so
// every stream in the system reconnects with the same Last-Event-ID
// semantics.
func WriteSSE(w io.Writer, kind string, seq int64, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if seq > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", seq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
	return err
}
