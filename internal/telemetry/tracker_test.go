package telemetry

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	c := tr.Begin("x")
	if c != nil {
		t.Fatal("nil tracker Begin returned a campaign")
	}
	c.Update(CampaignUpdate{Done: 1}) // must not panic
	c.End(errors.New("boom"))
	if s := tr.Snapshots(); s != nil {
		t.Errorf("nil tracker Snapshots = %v, want nil", s)
	}
	ch, cancel := tr.Subscribe(4)
	defer cancel()
	if _, ok := <-ch; ok {
		t.Error("nil tracker subscription channel not closed")
	}
}

func TestTrackerEventOrdering(t *testing.T) {
	tr := NewTracker()
	ch, cancel := tr.Subscribe(64)
	defer cancel()

	c := tr.Begin("sweep")
	c.Update(CampaignUpdate{Done: 1, Emitted: 4, Generating: true})
	c.Update(CampaignUpdate{Done: 4, Emitted: 4, CacheHits: 2})
	c.End(nil)
	// Post-End traffic is ignored.
	c.Update(CampaignUpdate{Done: 99})
	c.End(errors.New("late"))
	cancel()

	var types []string
	lastSeq := int64(0)
	for ev := range ch {
		if ev.Seq <= lastSeq {
			t.Errorf("seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types = append(types, ev.Type)
	}
	want := []string{"begin", "progress", "progress", "end"}
	if fmt.Sprint(types) != fmt.Sprint(want) {
		t.Errorf("event types = %v, want %v", types, want)
	}

	snaps := tr.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1 retained finished campaign", len(snaps))
	}
	s := snaps[0]
	if !s.Finished || s.Err != "" || s.Done != 4 || s.CacheHits != 2 {
		t.Errorf("final snapshot %+v: want finished, no error, done=4, cache_hits=2", s)
	}
	if s.CacheHitRatio != 0.5 {
		t.Errorf("cache hit ratio = %g, want 0.5", s.CacheHitRatio)
	}
}

func TestTrackerEndWithError(t *testing.T) {
	tr := NewTracker()
	c := tr.Begin("doomed")
	c.End(errors.New("context canceled"))
	s := tr.Snapshots()
	if len(s) != 1 || s[0].Err != "context canceled" || !s[0].Finished {
		t.Errorf("snapshots = %+v, want one finished campaign with error", s)
	}
}

func TestTrackerDropOnFullBuffer(t *testing.T) {
	tr := NewTracker()
	ch, cancel := tr.Subscribe(1)
	defer cancel()
	c := tr.Begin("noisy") // fills the 1-slot buffer
	for i := 0; i < 10; i++ {
		c.Update(CampaignUpdate{Done: i})
	}
	c.End(nil)
	cancel()
	n := 0
	for range ch {
		n++
	}
	if n != 1 {
		t.Errorf("received %d events on a full buffer, want 1 (rest dropped)", n)
	}
	// Seq advanced past the drops, so a reconnecting subscriber sees the gap.
	ch2, cancel2 := tr.Subscribe(4)
	defer cancel2()
	c2 := tr.Begin("second")
	c2.End(nil)
	ev := <-ch2
	if ev.Seq <= 1 {
		t.Errorf("seq = %d after dropped events, want > 1", ev.Seq)
	}
}

func TestTrackerCancelIdempotent(t *testing.T) {
	tr := NewTracker()
	_, cancel := tr.Subscribe(1)
	cancel()
	cancel() // second close must not panic
}

func TestTrackerRetainsBoundedFinished(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < retainFinished+5; i++ {
		tr.Begin(fmt.Sprintf("c%d", i)).End(nil)
	}
	snaps := tr.Snapshots()
	if len(snaps) != retainFinished {
		t.Fatalf("retained %d finished campaigns, want %d", len(snaps), retainFinished)
	}
	// The oldest were pruned: retained ids start after the overflow.
	if snaps[0].ID != 6 {
		t.Errorf("oldest retained id = %d, want 6", snaps[0].ID)
	}
}
