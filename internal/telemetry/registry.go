// Package telemetry is the live observability layer: a process-wide
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// whose Observe is allocation-free), an in-flight campaign tracker with a
// subscriber event stream, and an embeddable HTTP server exposing
// /metrics (Prometheus text format), /debug/campaigns (JSON snapshots)
// and /events (SSE progress stream).
//
// The package complements internal/obs: obs records post-hoc artifacts
// (span traces, counter snapshots written after a run), telemetry serves
// the same signals while the run is still going — the operational
// requirement of the ROADMAP's campaign-daemon direction. It deliberately
// imports nothing from the rest of the module so every layer (sim,
// launcher, campaign, obs) can feed it without cycles.
//
// Every handle type follows the repository's nil-off convention: a nil
// *Registry, *Counter, *Gauge, *Histogram, *Tracker or *Campaign is the
// disabled default, and every method on one returns immediately — wiring
// telemetry in costs nothing until a caller actually provides it.
//
// Telemetry is, with internal/obs, one of the two packages allowed to
// read the wall clock (microlint L001): live metrics are about observed
// wall time by definition, while the simulation itself stays
// deterministic.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (no-op on a nil counter).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depths, pool sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value (no-op on a nil gauge).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observe is allocation-free —
// a linear scan over the (small, immutable) bound slice plus two atomic
// operations — so it can sit inside the launcher's per-repetition hot
// loop. The observation count is not tracked separately: it is the sum of
// the bucket counts, derived at snapshot time. Bucket semantics follow
// Prometheus: bucket i counts observations v <= bounds[i]; the last
// implicit bucket is +Inf.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sumBits atomic.Uint64  // float64 bits, CAS-accumulated
}

// DurationBuckets is the default bucket layout for wall-time histograms:
// decades from 1µs to 10s plus a 60s catch-all below +Inf.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 60}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample (no-op on a nil histogram).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations: the sum of the bucket counts
// (every observation lands in exactly one bucket).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Timer is an in-flight wall-clock sample headed for a histogram. The
// zero Timer (from a nil histogram) is inert, so callers can always write
//
//	t := hist.Start()
//	defer t.Stop()
//
// without a nil check. Timer is a value type: starting and stopping one
// allocates nothing.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Now is the sanctioned wall-clock read for packages outside the
// telemetry/obs boundary (repo rule L001 confines time.Now to those two
// packages). Long-running components that need real timestamps — the
// service daemon stamping job submission and completion times — route
// their clock reads through here so the boundary stays auditable.
func Now() time.Time { return time.Now() }

// Start begins timing an operation against the histogram.
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop observes the elapsed wall time in seconds.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(time.Since(t.start).Seconds())
}

// Tick chains wall-clock laps into histograms: every Lap costs a single
// clock read and observes the time since the previous Lap (or Reset).
// Back-to-back timed sections — calibration, then each repetition — share
// their boundary timestamps instead of reading the clock twice per
// section, which is what keeps enabled telemetry inside its overhead
// budget on the launch hot path. The zero Tick has no baseline; its first
// Lap only establishes one.
type Tick struct {
	last time.Time
}

// Reset establishes a new baseline: the next Lap measures from here.
func (t *Tick) Reset() { t.last = time.Now() }

// Started reports whether a baseline exists.
func (t *Tick) Started() bool { return !t.last.IsZero() }

// Lap observes the seconds since the previous Lap/Reset into h (nil-safe)
// and moves the baseline to now. Without a baseline it only establishes
// one, observing nothing.
func (t *Tick) Lap(h *Histogram) {
	now := time.Now()
	if !t.last.IsZero() {
		h.Observe(now.Sub(t.last).Seconds())
	}
	t.last = now
}

// LapN splits the lap evenly across n observations into h — for n
// back-to-back repetitions timed as a single lap, trading within-lap
// variance (each repetition is recorded at the lap mean) for n-1 fewer
// clock reads on the hot path. Without a baseline or with n <= 0 it only
// moves the baseline.
func (t *Tick) LapN(h *Histogram, n int) {
	now := time.Now()
	if !t.last.IsZero() && n > 0 {
		v := now.Sub(t.last).Seconds() / float64(n)
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	t.last = now
}

// HistogramSnapshot is one histogram's state at a point in time. Buckets
// holds per-bucket (non-cumulative) counts; the last entry is the +Inf
// bucket.
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in a registry, the
// unit of work of the Exporter interface. Maps and slices are owned by
// the caller.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Registry is a concurrency-safe registry of named metrics. Metric
// handles are created on first use and stable thereafter: instrumented
// code resolves its handles once and then touches only atomics.
//
// A *Registry is also an obs.CounterSink (structurally, via Count), so an
// obs.CounterSet can tee its campaign counters into live exposition
// without obs importing this package.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (disabled) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls ignore bounds — the
// first registration wins). A nil or empty bounds slice selects
// DurationBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Count routes a named counter delta into the registry — the
// obs.CounterSink contract, letting a CounterSet tee campaign counters
// into live exposition.
func (r *Registry) Count(name string, delta int64) {
	r.Counter(name).Add(delta)
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hs := HistogramSnapshot{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]int64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}
