package telemetry

// Metric names shared by the instrumented layers and the smoke tests.
// Dotted internal names; /metrics exposes them with promName applied
// (microtools_ prefix, dots to underscores).
const (
	// Campaign engine counters also flow through obs.CounterSet — the
	// set tees into the registry, so the names below match the
	// campaign.Options.Counters documentation.
	MetricVariantSeconds   = "campaign.variant.seconds"
	MetricQueueDepth       = "campaign.queue.depth"
	MetricRepSeconds       = "launcher.rep.seconds"
	MetricCalibrateSeconds = "launcher.calibrate.seconds"
	MetricSimInstsRetired  = "sim.insts.retired"
	MetricSimPoolHits      = "sim.pool.hits"
	MetricSimPoolMisses    = "sim.pool.misses"
)

// Metrics bundles the pre-resolved instrument handles the measurement
// stack records into: the campaign worker pool (per-variant duration,
// queue depth), the launcher protocol (per-repetition latency,
// calibration time) and the simulator (instructions retired, core-pool
// hit rate). Resolving the handles once up front keeps the hot paths
// free of registry lookups.
//
// A nil *Metrics disables instrumentation; holders must nil-check the
// struct pointer before reading its fields (the fields themselves are
// nil-safe handles, so copying them out of a non-nil Metrics and using
// them unconditionally is the intended pattern).
type Metrics struct {
	// Registry is the backing registry, exposed so campaign counters can
	// be teed into it and tests can assert on exposition.
	Registry *Registry

	// VariantSeconds is the campaign's per-variant wall-time histogram
	// (cache hits and failures included — it times the worker, not the
	// simulator).
	VariantSeconds *Histogram
	// QueueDepth tracks the generator→worker variant queue occupancy.
	QueueDepth *Gauge

	// RepSeconds is the launcher's per-outer-repetition wall-time
	// histogram; CalibrateSeconds times the §4.5 empty-kernel
	// calibration.
	RepSeconds       *Histogram
	CalibrateSeconds *Histogram

	// SimInstsRetired counts simulated instructions retired across all
	// runs; SimPoolHits/SimPoolMisses track the machine's core-pool
	// reuse (a miss allocates a fresh cpu.Core, a hit resets a pooled
	// one — the RunOne fast-path economics).
	SimInstsRetired *Counter
	SimPoolHits     *Counter
	SimPoolMisses   *Counter
}

// NewMetrics resolves the standard instrument set against a registry.
// A nil registry yields nil (instrumentation off).
func NewMetrics(r *Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Registry:         r,
		VariantSeconds:   r.Histogram(MetricVariantSeconds, nil),
		QueueDepth:       r.Gauge(MetricQueueDepth),
		RepSeconds:       r.Histogram(MetricRepSeconds, nil),
		CalibrateSeconds: r.Histogram(MetricCalibrateSeconds, nil),
		SimInstsRetired:  r.Counter(MetricSimInstsRetired),
		SimPoolHits:      r.Counter(MetricSimPoolHits),
		SimPoolMisses:    r.Counter(MetricSimPoolMisses),
	}
}
