package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestWritePrometheusGolden locks the full exposition format — name
// sanitisation, TYPE lines, cumulative buckets, +Inf, _sum/_count — against
// a golden file. Regenerate with: go test ./internal/telemetry -run Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.launches").Add(510)
	r.Counter("campaign.cache.hits").Add(170)
	r.Gauge("campaign.queue.depth").Set(3)
	h := r.Histogram("launcher.rep.seconds", []float64{1e-3, 1e-2, 1e-1})
	for _, v := range []float64{5e-4, 5e-4, 3e-3, 0.25} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register in an order that differs from the sorted output.
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.middle").Set(1)
	r.Histogram("b.h", []float64{1}).Observe(0.5)

	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, b.String())
		}
	}
	ai := strings.Index(first, "microtools_a_first")
	zi := strings.Index(first, "microtools_z_last")
	if ai < 0 || zi < 0 || ai > zi {
		t.Errorf("counters not sorted or not prefixed:\n%s", first)
	}
}
