package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, opts ServerOptions) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	NewMetrics(r) // registers the standard instrument set
	r.Counter("campaign.launches").Add(7)
	ts := newTestServer(t, ServerOptions{Registry: r})

	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	for _, name := range []string{
		"microtools_campaign_launches 7",
		"microtools_sim_insts_retired 0",
		"microtools_launcher_rep_seconds_count 0",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %q:\n%s", name, body)
		}
	}
}

func TestServerCampaignsEndpoint(t *testing.T) {
	tr := NewTracker()
	c := tr.Begin("live-sweep")
	c.Update(CampaignUpdate{Done: 2, Emitted: 8, Generating: true})
	ts := newTestServer(t, ServerOptions{Tracker: tr})

	code, body, hdr := get(t, ts.URL+"/debug/campaigns")
	if code != http.StatusOK {
		t.Fatalf("/debug/campaigns status = %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Errorf("content type = %q", hdr.Get("Content-Type"))
	}
	var page struct {
		Campaigns []CampaignSnapshot `json:"campaigns"`
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(page.Campaigns) != 1 || page.Campaigns[0].Name != "live-sweep" || page.Campaigns[0].Done != 2 {
		t.Errorf("campaigns = %+v", page.Campaigns)
	}
}

func TestServerCampaignsEmptyIsNotNull(t *testing.T) {
	ts := newTestServer(t, ServerOptions{}) // nil tracker
	_, body, _ := get(t, ts.URL+"/debug/campaigns")
	if !strings.Contains(body, `"campaigns": []`) {
		t.Errorf("empty campaign list should marshal as [], got:\n%s", body)
	}
}

func TestServerPprofGating(t *testing.T) {
	off := newTestServer(t, ServerOptions{})
	if code, _, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof disabled: status = %d, want 404", code)
	}
	on := newTestServer(t, ServerOptions{EnablePprof: true})
	if code, _, _ := get(t, on.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof enabled: status = %d, want 200", code)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(ServerOptions{Registry: NewRegistry()})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", s.Addr(), addr)
	}
	if code, _, _ := get(t, "http://"+addr+"/metrics"); code != http.StatusOK {
		t.Errorf("scrape over real listener: status = %d", code)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("scrape succeeded after Close")
	}
}

// TestServerEventsStream exercises the SSE framing end to end: snapshot
// replay for a late subscriber, then live begin/progress/end events with
// increasing ids.
func TestServerEventsStream(t *testing.T) {
	tr := NewTracker()
	pre := tr.Begin("already-running")
	pre.Update(CampaignUpdate{Done: 1, Emitted: 3})
	ts := newTestServer(t, ServerOptions{Tracker: tr})

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	rd := bufio.NewReader(resp.Body)

	type sse struct {
		id    string
		event string
		data  string
	}
	readEvent := func() sse {
		t.Helper()
		var ev sse
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				t.Fatalf("stream ended early: %v (got %+v)", err, ev)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				return ev
			case strings.HasPrefix(line, "id: "):
				ev.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				ev.event = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				ev.data = line[len("data: "):]
			}
		}
	}

	// Replay first: the in-flight campaign arrives as a "snapshot".
	snap := readEvent()
	if snap.event != "snapshot" || snap.id != "" {
		t.Fatalf("first event = %+v, want un-id'd snapshot", snap)
	}
	var cs CampaignSnapshot
	if err := json.Unmarshal([]byte(snap.data), &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Name != "already-running" || cs.Done != 1 {
		t.Errorf("snapshot = %+v", cs)
	}

	// Then live events, ids strictly increasing.
	pre.Update(CampaignUpdate{Done: 3, Emitted: 3})
	pre.End(nil)
	lastID := 0
	for _, wantType := range []string{"progress", "end"} {
		ev := readEvent()
		if ev.event != wantType {
			t.Fatalf("event = %+v, want type %q", ev, wantType)
		}
		id, err := strconv.Atoi(ev.id)
		if err != nil || id <= lastID {
			t.Errorf("event id %q not strictly increasing after %d", ev.id, lastID)
		}
		lastID = id
		if err := json.Unmarshal([]byte(ev.data), &cs); err != nil {
			t.Fatal(err)
		}
	}
	if !cs.Finished {
		t.Error("final end event snapshot not marked finished")
	}
}
