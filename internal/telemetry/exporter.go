package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Exporter consumes registry snapshots. The in-process exposition server
// is one exporter (it snapshots on every /metrics scrape); JSONLExporter
// writes snapshots to a stream for offline analysis; a remote push
// exporter would implement the same contract. obs.CounterSet feeds the
// registry (via Tee), and everything downstream of the registry goes
// through this interface — registry in the middle, sinks on both sides.
type Exporter interface {
	// Export records one snapshot. Implementations must treat the
	// snapshot as immutable.
	Export(s Snapshot) error
}

// Export snapshots the registry into the exporter — a convenience for
// periodic or end-of-run dumps. A nil registry exports an empty snapshot.
func (r *Registry) Export(e Exporter) error {
	return e.Export(r.Snapshot())
}

// JSONLExporter writes each exported snapshot as one JSON object per
// line, the same append-only framing the span tracer and measurement
// cache use. It serializes concurrent Export calls.
type JSONLExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLExporter returns an exporter writing to w.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{enc: json.NewEncoder(w)}
}

// Export writes the snapshot as one JSON line.
func (e *JSONLExporter) Export(s Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(s)
}
