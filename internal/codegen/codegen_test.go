package codegen

import (
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/ir"
	"microtools/internal/isa"
)

// loweredKernel builds a fully-lowered two-instruction kernel (one load,
// one store) with inductions materialized, as the pipeline would produce.
func loweredKernel() *ir.Kernel {
	base := &ir.Register{Logical: "r1", Phys: isa.RSI}
	counter := &ir.Register{Logical: "r0", Phys: isa.RDI}
	eax := &ir.Register{Phys: isa.RAX, Pinned: true, Pinned32: true}
	xmm0 := &ir.Register{RotBase: "%xmm", RotRange: ir.Range{Min: 0, Max: 8}, RotIdx: 0}
	xmm1 := &ir.Register{RotBase: "%xmm", RotRange: ir.Range{Min: 0, Max: 8}, RotIdx: 1}
	return &ir.Kernel{
		BaseName: "k", Name: "k_u2_LS",
		Description: "golden test kernel",
		Unroll:      2,
		CodeAlign:   16,
		Body: []ir.Instruction{
			{Op: "movaps", Operands: []ir.Operand{
				{Kind: ir.MemOperand, Reg: base, Offset: 0},
				{Kind: ir.RegOperand, Reg: xmm0},
			}},
			{Op: "movaps", Operands: []ir.Operand{
				{Kind: ir.RegOperand, Reg: xmm1},
				{Kind: ir.MemOperand, Reg: base, Offset: 16},
			}},
			{Op: "add", Operands: []ir.Operand{
				{Kind: ir.ImmOperand, Imm: 32},
				{Kind: ir.RegOperand, Reg: base},
			}},
			{Op: "add", Operands: []ir.Operand{
				{Kind: ir.ImmOperand, Imm: 1},
				{Kind: ir.RegOperand, Reg: eax},
			}},
			{Op: "sub", Operands: []ir.Operand{
				{Kind: ir.ImmOperand, Imm: 8},
				{Kind: ir.RegOperand, Reg: counter},
			}},
		},
		Inductions: []ir.Induction{
			{Reg: base, Increment: 32, Offset: 16},
			{Reg: eax, Increment: 1, NotAffectedUnroll: true},
			{Reg: counter, Increment: -8, Last: true},
		},
		ZeroAtEntry: []*ir.Register{eax},
		Branch:      ir.Branch{Label: ".L6", Test: "jge"},
		Tags:        map[string]string{"u": "2"},
	}
}

func TestAssemblyGolden(t *testing.T) {
	out, err := Assembly(loweredKernel())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		".text",
		".align 16",
		".globl k_u2_LS",
		".type k_u2_LS, @function",
		"k_u2_LS:",
		"xor %eax, %eax",
		".L6:",
		"movaps (%rsi), %xmm0",
		"movaps %xmm1, 16(%rsi)",
		"add $32, %rsi",
		"add $1, %eax",
		"sub $8, %rdi",
		"jge .L6",
		"ret",
		".size k_u2_LS, .-k_u2_LS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("assembly missing %q:\n%s", want, out)
		}
	}
}

func TestAssemblyRoundTripsThroughParser(t *testing.T) {
	out, err := Assembly(loweredKernel())
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.ParseOne(out, "x")
	if err != nil {
		t.Fatalf("generated assembly does not re-parse: %v\n%s", err, out)
	}
	if p.Name != "k_u2_LS" {
		t.Errorf("round-trip name = %q", p.Name)
	}
	st := p.StaticStats()
	if st.Loads != 1 || st.Stores != 1 || st.Branches != 1 {
		t.Errorf("round-trip stats = %+v", st)
	}
}

func TestCSourceShape(t *testing.T) {
	c, err := CSource(loweredKernel())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"int k_u2_LS(int n, void *v0);",
		"__asm__(",
		`movaps (%rsi), %xmm0`,
	} {
		if !strings.Contains(c, want) {
			t.Errorf("C source missing %q:\n%s", want, c)
		}
	}
}

func TestNumArrays(t *testing.T) {
	if got := NumArrays(loweredKernel()); got != 1 {
		t.Errorf("NumArrays = %d, want 1 (only %%rsi is a data pointer)", got)
	}
}

func TestAbstractKernelRejected(t *testing.T) {
	k := loweredKernel()
	k.Body[0].Op = ""
	k.Body[0].Move = &ir.MoveSemantics{Bytes: 16}
	if _, err := Assembly(k); err == nil {
		t.Error("abstract instruction accepted by code generation")
	}
}

func TestUnallocatedRegisterRejected(t *testing.T) {
	k := loweredKernel()
	k.Body[0].Operands[0].Reg = ir.NewLogical("r9") // never allocated
	if _, err := Assembly(k); err == nil {
		t.Error("unallocated register accepted")
	}
}

func TestUnexpandedImmediateRejected(t *testing.T) {
	k := loweredKernel()
	k.Body[2].Operands[0].ImmChoices = []int64{1, 2}
	if _, err := Assembly(k); err == nil {
		t.Error("unexpanded immediate choices accepted")
	}
}

func TestMissingBranchLabelRejected(t *testing.T) {
	k := loweredKernel()
	k.Branch.Label = ""
	if _, err := Assembly(k); err == nil {
		t.Error("missing branch label accepted")
	}
}
