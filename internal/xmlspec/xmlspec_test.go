package xmlspec

import (
	"strings"
	"testing"

	"microtools/internal/ir"
	"microtools/internal/isa"
)

// Fig6 is the paper's Figure 6 kernel description — the (Load|Store)+
// definition that §5.1 expands into 510 benchmark programs — wrapped in the
// kernel element and completed with Figure 9's iteration counter.
const Fig6 = `
<kernel name="loadstore">
  <description>(Load|Store)+ movaps kernel, paper Figs. 6 and 9</description>
  <instruction>
    <operation>movaps</operation>
    <memory>
      <register><name>r1</name></register>
      <offset>0</offset>
    </memory>
    <register>
      <phyName>%xmm</phyName>
      <min>0</min>
      <max>8</max>
    </register>
    <swap_after_unroll/>
  </instruction>
  <unrolling>
    <min>1</min>
    <max>8</max>
  </unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked>
      <register><name>r1</name></register>
    </linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information>
    <label>.L6</label>
    <test>jge</test>
  </branch_information>
</kernel>
`

func TestParseFig6(t *testing.T) {
	k, err := ParseOne(Fig6)
	if err != nil {
		t.Fatal(err)
	}
	if k.BaseName != "loadstore" {
		t.Errorf("name = %q", k.BaseName)
	}
	if len(k.Body) != 1 {
		t.Fatalf("body = %d instructions, want 1", len(k.Body))
	}
	in := k.Body[0]
	if in.Op != "movaps" || !in.SwapAfterUnroll || in.SwapBeforeUnroll {
		t.Errorf("instruction = %+v", in)
	}
	if len(in.Operands) != 2 {
		t.Fatalf("operands = %d, want 2", len(in.Operands))
	}
	// Memory first, register second: a load in AT&T order.
	if in.Operands[0].Kind != ir.MemOperand || in.Operands[1].Kind != ir.RegOperand {
		t.Errorf("operand order wrong: %v", in)
	}
	if in.Operands[0].Reg.Logical != "r1" {
		t.Errorf("memory base = %v", in.Operands[0].Reg)
	}
	rot := in.Operands[1].Reg
	if !rot.IsRotating() || rot.RotBase != "%xmm" || rot.RotRange != (ir.Range{Min: 0, Max: 8}) {
		t.Errorf("rotating register = %+v", rot)
	}
	if k.UnrollRange != (ir.Range{Min: 1, Max: 8}) {
		t.Errorf("unroll = %+v", k.UnrollRange)
	}
	if len(k.Inductions) != 3 {
		t.Fatalf("inductions = %d, want 3", len(k.Inductions))
	}
	// Register identity: the r1 induction must reference the same
	// *ir.Register as the memory operand base.
	if k.Inductions[0].Reg != in.Operands[0].Reg {
		t.Error("induction r1 and memory base r1 must be the same register object")
	}
	if k.Inductions[1].LinkedTo != in.Operands[0].Reg {
		t.Error("linked register must resolve to the same r1 object")
	}
	if !k.Inductions[1].Last || k.Inductions[1].Increment != -1 {
		t.Errorf("r0 induction = %+v", k.Inductions[1])
	}
	eax := k.Inductions[2]
	if eax.Reg.Phys != isa.RAX || !eax.Reg.Pinned32 || !eax.NotAffectedUnroll {
		t.Errorf("%%eax induction = %+v reg=%+v", eax, eax.Reg)
	}
	if k.Branch.Label != ".L6" || k.Branch.Test != "jge" {
		t.Errorf("branch = %+v", k.Branch)
	}
}

func TestParseMoveSemantics(t *testing.T) {
	src := `
<kernel name="m">
  <instruction>
    <move_semantics><bytes>16</bytes><precision>single</precision><aligned>both</aligned></move_semantics>
    <memory><register><name>r1</name></register></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>4</max></register>
  </instruction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <last_induction/>
  </induction>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`
	k, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	mv := k.Body[0].Move
	if mv == nil || mv.Bytes != 16 || mv.Precision != "single" || mv.Aligned != "both" {
		t.Errorf("move semantics = %+v", mv)
	}
}

func TestParseImmediateAndStrideChoices(t *testing.T) {
	src := `
<kernel name="c">
  <instruction>
    <operation>add</operation>
    <immediate><value>4</value><value>8</value></immediate>
    <register><name>r1</name></register>
  </instruction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <last_induction/>
  </induction>
  <induction>
    <register><name>r1</name></register>
    <stride><value>4</value><value>16</value><value>64</value></stride>
    <offset>4</offset>
  </induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`
	k, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	imm := k.Body[0].Operands[0]
	if imm.Kind != ir.ImmOperand || len(imm.ImmChoices) != 2 {
		t.Errorf("immediate = %+v", imm)
	}
	if got := k.Inductions[1].IncrementChoices; len(got) != 3 || got[2] != 64 {
		t.Errorf("stride choices = %v", got)
	}
}

func TestParseStoreOperandOrder(t *testing.T) {
	// Register first, memory second: a store.
	src := `
<kernel name="s">
  <instruction>
    <operation>movaps</operation>
    <register><phyName>%xmm0</phyName></register>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
  </instruction>
  <induction><register><name>r1</name></register><increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`
	k, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := k.Body[0].Operands
	if ops[0].Kind != ir.RegOperand || ops[1].Kind != ir.MemOperand {
		t.Errorf("store operand order not preserved: %v", k.Body[0])
	}
}

func TestParseMultipleKernels(t *testing.T) {
	src := `<microcreator>` + Fig6 + strings.ReplaceAll(Fig6, "loadstore", "loadstore2") + `</microcreator>`
	ks, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0].BaseName != "loadstore" || ks[1].BaseName != "loadstore2" {
		t.Fatalf("kernels = %d", len(ks))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", `<microcreator></microcreator>`},
		{"unknown top element", `<bogus/>`},
		{"no instructions", `<kernel name="k"><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
		{"operation and move", `<kernel name="k"><instruction><operation>movss</operation><move_semantics><bytes>4</bytes></move_semantics><register><name>r1</name></register></instruction><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
		{"register name and phyName", `<kernel name="k"><instruction><operation>movss</operation><register><name>r1</name><phyName>%rax</phyName></register></instruction><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
		{"bad rotating range", `<kernel name="k"><instruction><operation>movss</operation><register><phyName>%xmm</phyName><min>8</min><max>2</max></register></instruction><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
		{"bad integer", `<kernel name="k"><instruction><operation>movss</operation><memory><register><name>r1</name></register><offset>xyz</offset></memory><register><phyName>%xmm0</phyName></register></instruction><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
		{"bad branch test", `<kernel name="k"><instruction><operation>movss</operation><memory><register><name>r1</name></register></memory><register><phyName>%xmm0</phyName></register></instruction><induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction><branch_information><label>.L</label><test>mov</test></branch_information></kernel>`},
		{"missing branch", `<kernel name="k"><instruction><operation>movss</operation><memory><register><name>r1</name></register></memory><register><phyName>%xmm0</phyName></register></instruction></kernel>`},
		{"empty immediate", `<kernel name="k"><instruction><operation>add</operation><immediate></immediate><register><name>r1</name></register></instruction><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
		{"unknown kernel child", `<kernel name="k"><frobnicate/></kernel>`},
		{"zero increment induction", `<kernel name="k"><instruction><operation>movss</operation><memory><register><name>r1</name></register></memory><register><phyName>%xmm0</phyName></register></instruction><induction><register><name>r0</name></register><last_induction/></induction><branch_information><label>.L</label><test>jge</test></branch_information></kernel>`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestKernelCloneRegisterIdentity(t *testing.T) {
	k, err := ParseOne(Fig6)
	if err != nil {
		t.Fatal(err)
	}
	c := k.Clone()
	if c.Inductions[0].Reg != c.Body[0].Operands[0].Reg {
		t.Error("clone broke register identity")
	}
	if c.Inductions[0].Reg == k.Inductions[0].Reg {
		t.Error("clone shares registers with the original")
	}
	// Mutating the clone must not affect the original.
	c.Inductions[0].Reg.Phys = isa.RSI
	if k.Inductions[0].Reg.Phys == isa.RSI {
		t.Error("clone mutation leaked into original")
	}
}

func TestKernelRegistersEnumeration(t *testing.T) {
	k, err := ParseOne(Fig6)
	if err != nil {
		t.Fatal(err)
	}
	regs := k.Registers()
	// r1, the rotating %xmm class, r0, %eax.
	if len(regs) != 4 {
		t.Fatalf("registers = %d (%v), want 4", len(regs), regs)
	}
}

func TestRangeDefaults(t *testing.T) {
	src := `
<kernel name="k">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register></memory>
    <register><phyName>%xmm0</phyName></register>
  </instruction>
  <induction><register><name>r1</name></register><increment>4</increment><offset>4</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`
	k, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.UnrollRange != (ir.Range{Min: 1, Max: 1}) {
		t.Errorf("default unroll = %+v", k.UnrollRange)
	}
	if k.ElementSize != 4 {
		t.Errorf("default element size = %d", k.ElementSize)
	}
}
