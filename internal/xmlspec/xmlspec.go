// Package xmlspec parses MicroCreator's XML kernel-description dialect
// (paper §3.1, Figs. 6 and 9) into ir.Kernels.
//
// The dialect is order-sensitive inside <instruction>: "A memory operand
// followed by a register operand represents a load instruction. A store
// instruction is the opposite" — i.e. children appear in AT&T operand order.
// The decoder therefore walks XML tokens rather than relying on struct
// unmarshalling.
//
// Grammar (— marks optional):
//
//	<microcreator>            — root; a bare <kernel> root is also accepted
//	  <kernel name="...">
//	    <description>…</description>                       —
//	    <element_size>4</element_size>                     —
//	    <max_variants>500</max_variants>                   —
//	    <random_selection><count/><seed/></random_selection> —
//	    <instruction>…</instruction>                       +
//	    <unrolling><min/><max/></unrolling>                —
//	    <induction>…</induction>                           *
//	    <branch_information><label/><test/></branch_information>
//	  </kernel>
//	</microcreator>
//
//	<instruction>
//	  <operation>movaps</operation>           (xor) <move_semantics>…
//	  <memory><register/><offset>0</offset></memory>     operands,
//	  <register><phyName>%xmm</phyName><min/><max/></register>   in order
//	  <immediate><value>…</value>+</immediate>
//	  <swap_before_unroll/> <swap_after_unroll/> <repetition><min/><max/>
//	</instruction>
package xmlspec

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/obs"
)

// Parse decodes one or more kernel descriptions.
func Parse(r io.Reader) ([]*ir.Kernel, error) {
	dec := xml.NewDecoder(r)
	var kernels []*ir.Kernel
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlspec: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch se.Name.Local {
		case "microcreator":
			// Container: keep scanning inside it.
		case "kernel":
			k, err := parseKernel(dec, se)
			if err != nil {
				return nil, err
			}
			kernels = append(kernels, k)
		default:
			return nil, fmt.Errorf("xmlspec: unexpected top-level element <%s>", se.Name.Local)
		}
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("xmlspec: no <kernel> elements found")
	}
	for _, k := range kernels {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("xmlspec: %w", err)
		}
	}
	return kernels, nil
}

// ParseTraced is Parse recorded as an "xmlspec.parse" span under parent,
// annotated with the kernel count (or the error). The zero Span makes it
// identical to Parse.
func ParseTraced(r io.Reader, parent obs.Span) ([]*ir.Kernel, error) {
	sp := parent.Child("xmlspec.parse")
	ks, err := Parse(r)
	if err != nil {
		sp.Str("error", err.Error()).End()
		return nil, err
	}
	sp.Int("kernels", int64(len(ks))).End()
	return ks, nil
}

// ParseString is Parse over a string.
func ParseString(src string) ([]*ir.Kernel, error) {
	return Parse(strings.NewReader(src))
}

// ParseOne parses a spec expected to hold exactly one kernel.
func ParseOne(src string) (*ir.Kernel, error) {
	ks, err := ParseString(src)
	if err != nil {
		return nil, err
	}
	if len(ks) != 1 {
		return nil, fmt.Errorf("xmlspec: expected one kernel, found %d", len(ks))
	}
	return ks[0], nil
}

// parser carries per-kernel state: the logical/physical register identity
// map (same name ⇒ same *ir.Register).
type parser struct {
	dec  *xml.Decoder
	regs map[string]*ir.Register
}

func parseKernel(dec *xml.Decoder, start xml.StartElement) (*ir.Kernel, error) {
	p := &parser{dec: dec, regs: map[string]*ir.Register{}}
	k := &ir.Kernel{
		UnrollRange: ir.Range{Min: 1, Max: 1},
		ElementSize: 4,
	}
	for _, attr := range start.Attr {
		if attr.Name.Local == "name" {
			k.BaseName = attr.Value
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlspec: in <kernel>: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == "kernel" {
				k.Name = k.BaseName
				return k, nil
			}
		case xml.StartElement:
			switch t.Name.Local {
			case "description":
				s, err := p.text(t)
				if err != nil {
					return nil, err
				}
				k.Description = s
			case "element_size":
				v, err := p.intText(t)
				if err != nil {
					return nil, err
				}
				k.ElementSize = int(v)
			case "max_variants":
				v, err := p.intText(t)
				if err != nil {
					return nil, err
				}
				k.MaxVariants = int(v)
			case "random_selection":
				if err := p.parseRandom(t, k); err != nil {
					return nil, err
				}
			case "instruction":
				in, err := p.parseInstruction(t)
				if err != nil {
					return nil, err
				}
				k.Body = append(k.Body, *in)
			case "unrolling":
				r, err := p.parseRange(t)
				if err != nil {
					return nil, err
				}
				k.UnrollRange = r
			case "induction":
				ind, err := p.parseInduction(t)
				if err != nil {
					return nil, err
				}
				k.Inductions = append(k.Inductions, *ind)
			case "branch_information":
				if err := p.parseBranch(t, k); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("xmlspec: unexpected element <%s> in <kernel>", t.Name.Local)
			}
		}
	}
}

// register returns the canonical *ir.Register for a logical name or a fixed
// physical name, creating it on first use.
func (p *parser) register(key string, mk func() (*ir.Register, error)) (*ir.Register, error) {
	if r, ok := p.regs[key]; ok {
		return r, nil
	}
	r, err := mk()
	if err != nil {
		return nil, err
	}
	p.regs[key] = r
	return r, nil
}

func (p *parser) parseInstruction(start xml.StartElement) (*ir.Instruction, error) {
	in := &ir.Instruction{Repeat: ir.Range{Min: 1, Max: 1}}
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlspec: in <instruction>: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == start.Name.Local {
				return in, nil
			}
		case xml.StartElement:
			switch t.Name.Local {
			case "operation":
				s, err := p.text(t)
				if err != nil {
					return nil, err
				}
				if in.Move != nil {
					return nil, fmt.Errorf("xmlspec: <operation> and <move_semantics> are mutually exclusive")
				}
				in.Op = strings.TrimSpace(s)
			case "move_semantics":
				if in.Op != "" {
					return nil, fmt.Errorf("xmlspec: <operation> and <move_semantics> are mutually exclusive")
				}
				mv, err := p.parseMove(t)
				if err != nil {
					return nil, err
				}
				in.Move = mv
			case "memory":
				op, err := p.parseMemoryOperand(t)
				if err != nil {
					return nil, err
				}
				in.Operands = append(in.Operands, *op)
			case "register":
				reg, err := p.parseRegister(t)
				if err != nil {
					return nil, err
				}
				in.Operands = append(in.Operands, ir.Operand{Kind: ir.RegOperand, Reg: reg})
			case "immediate":
				op, err := p.parseImmediate(t)
				if err != nil {
					return nil, err
				}
				in.Operands = append(in.Operands, *op)
			case "swap_before_unroll":
				in.SwapBeforeUnroll = true
				if err := p.skip(t); err != nil {
					return nil, err
				}
			case "swap_after_unroll":
				in.SwapAfterUnroll = true
				if err := p.skip(t); err != nil {
					return nil, err
				}
			case "repetition":
				r, err := p.parseRange(t)
				if err != nil {
					return nil, err
				}
				in.Repeat = r
			default:
				return nil, fmt.Errorf("xmlspec: unexpected element <%s> in <instruction>", t.Name.Local)
			}
		}
	}
}

func (p *parser) parseMove(start xml.StartElement) (*ir.MoveSemantics, error) {
	mv := &ir.MoveSemantics{Aligned: "both"}
	err := p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "bytes":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			mv.Bytes = int(v)
		case "precision":
			s, err := p.text(t)
			if err != nil {
				return err
			}
			mv.Precision = strings.TrimSpace(s)
		case "aligned":
			s, err := p.text(t)
			if err != nil {
				return err
			}
			mv.Aligned = strings.TrimSpace(s)
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <move_semantics>", t.Name.Local)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if mv.Bytes == 0 {
		return nil, fmt.Errorf("xmlspec: <move_semantics> requires <bytes>")
	}
	switch mv.Aligned {
	case "aligned", "unaligned", "both":
	default:
		return nil, fmt.Errorf("xmlspec: <aligned> must be aligned|unaligned|both, got %q", mv.Aligned)
	}
	switch mv.Precision {
	case "", "single", "double":
	default:
		return nil, fmt.Errorf("xmlspec: <precision> must be single|double, got %q", mv.Precision)
	}
	return mv, nil
}

func (p *parser) parseMemoryOperand(start xml.StartElement) (*ir.Operand, error) {
	op := &ir.Operand{Kind: ir.MemOperand}
	err := p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "register":
			reg, err := p.parseRegister(t)
			if err != nil {
				return err
			}
			op.Reg = reg
		case "offset":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			op.Offset = v
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <memory>", t.Name.Local)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if op.Reg == nil {
		return nil, fmt.Errorf("xmlspec: <memory> requires a <register>")
	}
	return op, nil
}

func (p *parser) parseImmediate(start xml.StartElement) (*ir.Operand, error) {
	op := &ir.Operand{Kind: ir.ImmOperand}
	err := p.each(start, func(t xml.StartElement) error {
		if t.Name.Local != "value" {
			return fmt.Errorf("xmlspec: unexpected element <%s> in <immediate>", t.Name.Local)
		}
		v, err := p.intText(t)
		if err != nil {
			return err
		}
		op.ImmChoices = append(op.ImmChoices, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	switch len(op.ImmChoices) {
	case 0:
		return nil, fmt.Errorf("xmlspec: <immediate> requires at least one <value>")
	case 1:
		op.Imm = op.ImmChoices[0]
		op.ImmChoices = nil
	}
	return op, nil
}

// parseRegister handles both forms: <name>r1</name> (logical) and
// <phyName>%xmm</phyName><min>0</min><max>8</max> (rotating class) or
// <phyName>%eax</phyName> (pinned physical).
func (p *parser) parseRegister(start xml.StartElement) (*ir.Register, error) {
	var name, phyName string
	var rot ir.Range
	hasRot := false
	err := p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "name":
			s, err := p.text(t)
			if err != nil {
				return err
			}
			name = strings.TrimSpace(s)
		case "phyName":
			s, err := p.text(t)
			if err != nil {
				return err
			}
			phyName = strings.TrimSpace(s)
		case "min":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			rot.Min = int(v)
			hasRot = true
		case "max":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			rot.Max = int(v)
			hasRot = true
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <register>", t.Name.Local)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	switch {
	case name != "" && phyName != "":
		return nil, fmt.Errorf("xmlspec: register has both <name> and <phyName>")
	case name != "":
		return p.register("name:"+name, func() (*ir.Register, error) {
			return ir.NewLogical(name), nil
		})
	case phyName != "" && hasRot:
		if rot.Max <= rot.Min || rot.Min < 0 || rot.Max > 16 {
			return nil, fmt.Errorf("xmlspec: rotating register range [%d,%d) invalid", rot.Min, rot.Max)
		}
		// Rotating registers are never shared: each operand rotates
		// independently per unroll copy.
		return ir.NewRotating(phyName, rot), nil
	case phyName != "":
		return p.register("phy:"+phyName, func() (*ir.Register, error) {
			reg, err := isa.ParseReg(phyName)
			if err != nil {
				return nil, fmt.Errorf("xmlspec: %w", err)
			}
			return ir.NewPinned(reg, isa.Is32BitName(phyName)), nil
		})
	default:
		return nil, fmt.Errorf("xmlspec: register requires <name> or <phyName>")
	}
}

func (p *parser) parseInduction(start xml.StartElement) (*ir.Induction, error) {
	ind := &ir.Induction{}
	err := p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "register":
			reg, err := p.parseRegister(t)
			if err != nil {
				return err
			}
			ind.Reg = reg
		case "increment":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			ind.Increment = v
		case "stride":
			err := p.each(t, func(u xml.StartElement) error {
				if u.Name.Local != "value" {
					return fmt.Errorf("xmlspec: unexpected element <%s> in <stride>", u.Name.Local)
				}
				v, err := p.intText(u)
				if err != nil {
					return err
				}
				ind.IncrementChoices = append(ind.IncrementChoices, v)
				return nil
			})
			if err != nil {
				return err
			}
		case "offset":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			ind.Offset = v
		case "linked":
			err := p.each(t, func(u xml.StartElement) error {
				if u.Name.Local != "register" {
					return fmt.Errorf("xmlspec: unexpected element <%s> in <linked>", u.Name.Local)
				}
				reg, err := p.parseRegister(u)
				if err != nil {
					return err
				}
				ind.LinkedTo = reg
				return nil
			})
			if err != nil {
				return err
			}
		case "last_induction":
			ind.Last = true
			return p.skip(t)
		case "not_affected_unroll":
			ind.NotAffectedUnroll = true
			return p.skip(t)
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <induction>", t.Name.Local)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ind.Reg == nil {
		return nil, fmt.Errorf("xmlspec: <induction> requires a <register>")
	}
	return ind, nil
}

func (p *parser) parseBranch(start xml.StartElement, k *ir.Kernel) error {
	return p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "label":
			s, err := p.text(t)
			if err != nil {
				return err
			}
			k.Branch.Label = strings.TrimSpace(s)
		case "test":
			s, err := p.text(t)
			if err != nil {
				return err
			}
			k.Branch.Test = strings.TrimSpace(s)
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <branch_information>", t.Name.Local)
		}
		return nil
	})
}

func (p *parser) parseRandom(start xml.StartElement, k *ir.Kernel) error {
	return p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "count":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			k.RandomCount = int(v)
		case "seed":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			k.RandomSeed = v
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <random_selection>", t.Name.Local)
		}
		return nil
	})
}

func (p *parser) parseRange(start xml.StartElement) (ir.Range, error) {
	r := ir.Range{Min: 1, Max: 1}
	sawMin, sawMax := false, false
	err := p.each(start, func(t xml.StartElement) error {
		switch t.Name.Local {
		case "min":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			r.Min = int(v)
			sawMin = true
		case "max":
			v, err := p.intText(t)
			if err != nil {
				return err
			}
			r.Max = int(v)
			sawMax = true
		default:
			return fmt.Errorf("xmlspec: unexpected element <%s> in <%s>", t.Name.Local, start.Name.Local)
		}
		return nil
	})
	if err != nil {
		return r, err
	}
	if sawMin && !sawMax {
		r.Max = r.Min
	}
	if sawMax && !sawMin {
		r.Min = 1
	}
	return r, nil
}

// each iterates over the direct child start-elements of start until its
// matching end element.
func (p *parser) each(start xml.StartElement, f func(xml.StartElement) error) error {
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return fmt.Errorf("xmlspec: in <%s>: %w", start.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == start.Name.Local {
				return nil
			}
		case xml.StartElement:
			if err := f(t); err != nil {
				return err
			}
		}
	}
}

// text consumes the element's character data up to its end tag.
func (p *parser) text(start xml.StartElement) (string, error) {
	var b strings.Builder
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return "", fmt.Errorf("xmlspec: in <%s>: %w", start.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			b.Write(t)
		case xml.EndElement:
			if t.Name.Local == start.Name.Local {
				return b.String(), nil
			}
		case xml.StartElement:
			return "", fmt.Errorf("xmlspec: <%s> must contain only text, found <%s>", start.Name.Local, t.Name.Local)
		}
	}
}

func (p *parser) intText(start xml.StartElement) (int64, error) {
	s, err := p.text(start)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("xmlspec: <%s>: bad integer %q", start.Name.Local, strings.TrimSpace(s))
	}
	return v, nil
}

// skip consumes an element (and any children) entirely.
func (p *parser) skip(start xml.StartElement) error {
	return p.each(start, func(t xml.StartElement) error { return p.skip(t) })
}
