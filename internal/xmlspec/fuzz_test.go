package xmlspec

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts the parser's contract over arbitrary input: it never
// panics, every kernel it accepts passes spec-level validation (Parse
// validates internally, so a kernel that fails to re-validate means the
// parser mutated state after the check), and parsing is deterministic.
func FuzzParse(f *testing.F) {
	specs, _ := filepath.Glob(filepath.Join("..", "..", "specs", "*.xml"))
	for _, spec := range specs {
		if data, err := os.ReadFile(spec); err == nil {
			f.Add(string(data))
		}
	}
	f.Add(`<kernel name="k">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>4</max></register>
  </instruction>
  <induction><register><name>r1</name></register><increment>4</increment></induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`)
	f.Add(`<kernels></kernels>`)
	f.Add(`not xml at all`)
	f.Fuzz(func(t *testing.T, src string) {
		ks, err := ParseString(src)
		if err != nil {
			return
		}
		for _, k := range ks {
			if k.BaseName == "" {
				t.Fatalf("accepted kernel without a name: %+v", k)
			}
			if err := k.Validate(); err != nil {
				t.Fatalf("accepted kernel fails re-validation: %v", err)
			}
		}
		ks2, err2 := ParseString(src)
		if err2 != nil {
			t.Fatalf("second parse of accepted input failed: %v", err2)
		}
		if len(ks2) != len(ks) {
			t.Fatalf("parse is nondeterministic: %d then %d kernels", len(ks), len(ks2))
		}
	})
}
