// Package stats provides the summary statistics, stability metrics and CSV
// rendering used by MicroLauncher to report measurement results (§4.3 of the
// paper: "The output of the launcher is a generic CSV file providing the
// execution time of the benchmark program which is by default the number of
// cycles per iteration").
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary condenses a set of repeated measurements (the outer experiment
// loop of MicroLauncher, §4.5) into the statistics the paper reports:
// the minimum is used for figure series ("For each unroll group, the minimum
// value was taken though the variance was minimal", §5.1) and the
// coefficient of variation quantifies run-to-run stability (§4.7).
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	// StdDev is the population standard deviation (÷n), the historical
	// CSV/report-facing dispersion figure (CV derives from it).
	StdDev float64
	// SampleStdDev is the sample standard deviation (÷(n−1)), the
	// estimator confidence-interval math requires: RCIW plugs it into the
	// Student-t interval. Zero when n < 2 (the estimator is undefined;
	// RCIW reports the degenerate case explicitly instead).
	SampleStdDev float64
}

// Summarize computes a Summary over samples. It panics on an empty input:
// the launcher never reports an experiment with zero repetitions.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		panic("stats: Summarize on empty sample set") //microlint:disable L010 -- documented precondition, not an error path
	}
	s := Summary{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range samples {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(samples))
	var sq float64
	for _, v := range samples {
		d := v - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(samples)))
	if len(samples) > 1 {
		s.SampleStdDev = math.Sqrt(sq / float64(len(samples)-1))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CV returns the coefficient of variation (stddev/mean), the launcher's
// stability metric. It returns 0 for a zero mean.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// tCrit95 holds the two-sided 95% Student-t critical values t(0.975, df)
// for df = 1..29. Above df 29 the normal approximation is within 0.5% and
// TCrit95 falls back to z = 1.96.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom: the tabulated quantile for df < 30, the normal
// z = 1.96 beyond, and +Inf for df < 1 (no interval exists from a single
// observation).
func TCrit95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// RCIW returns the relative 95% confidence-interval width of the mean —
// 2·t(0.975, n−1)·(s/√n)/|mean| with the sample stddev s — the stability
// signal μOpTime's adaptive repetition budgeting keys on: a run whose
// RCIW is still wide needs more repetitions, not a tighter statistic.
//
// Degenerate summaries return +Inf, the documented "no confidence"
// sentinel: fewer than two repetitions admit no interval estimate, and a
// zero mean admits no relative one. +Inf orders correctly against any
// finite target (never "stable enough") and the JSON boundaries render it
// null (jsonFloat in reports, the Stability codec in caches and the API).
func (s Summary) RCIW() float64 {
	if s.N < 2 || s.Mean == 0 {
		return math.Inf(1)
	}
	half := TCrit95(s.N-1) * s.SampleStdDev / math.Sqrt(float64(s.N))
	return 2 * half / math.Abs(s.Mean)
}

// Stability bundles the per-measurement stability statistics carried by
// campaign results and the measurement cache: the repetition count, the
// mean, and the two relative dispersion signals (CV, RCIW) downstream
// consumers — result ranking, adaptive budget planners — read to decide
// how much to trust the value.
type Stability struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	CV   float64 `json:"cv"`
	RCIW float64 `json:"rciw"`
}

// StabilityOf derives the stability statistics from a summary. It is a
// pure function of the summary, so recomputing it (e.g. for a cache
// entry written before the field existed) reproduces the stored value
// bit for bit.
func StabilityOf(s Summary) Stability {
	return Stability{N: s.N, Mean: s.Mean, CV: s.CV(), RCIW: s.RCIW()}
}

// LegacyStabilityOf derives the stability statistics with the pre-fix
// formulas: population stddev, fixed z = 1.96 regardless of n, and 0 for a
// zero mean or empty summary. It exists for one purpose — versioned
// backfill of cache entries written before the launcher stored the
// Stability field, whose readers historically saw exactly these values
// (see campaign.stabilityFor). New measurements always use StabilityOf.
func LegacyStabilityOf(s Summary) Stability {
	st := Stability{N: s.N, Mean: s.Mean, CV: s.CV()}
	if s.Mean != 0 && s.N != 0 {
		half := 1.96 * s.StdDev / math.Sqrt(float64(s.N))
		st.RCIW = 2 * half / s.Mean
	}
	return st
}

// stabilityWire is Stability's JSON shape: RCIW rides a pointer so the
// degenerate +Inf (which encoding/json rejects) round-trips as null while
// finite values keep their exact historical encoding — cache entries and
// API payloads written before the codec existed decode bit-identically.
type stabilityWire struct {
	N    int      `json:"n"`
	Mean float64  `json:"mean"`
	CV   float64  `json:"cv"`
	RCIW *float64 `json:"rciw"`
}

// MarshalJSON encodes a non-finite RCIW as null; finite values encode
// exactly as the plain struct always did.
func (s Stability) MarshalJSON() ([]byte, error) {
	w := stabilityWire{N: s.N, Mean: s.Mean, CV: s.CV}
	if !math.IsInf(s.RCIW, 0) && !math.IsNaN(s.RCIW) {
		r := s.RCIW
		w.RCIW = &r
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes null (and a missing field) back to the +Inf
// sentinel only when the summary is non-degenerate on its face; a wholly
// absent Stability object never reaches this method, so pre-field cache
// entries keep their zero value and the backfill path.
func (s *Stability) UnmarshalJSON(b []byte) error {
	var w stabilityWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	s.N, s.Mean, s.CV = w.N, w.Mean, w.CV
	if w.RCIW != nil {
		s.RCIW = *w.RCIW
	} else {
		s.RCIW = math.Inf(1)
	}
	return nil
}

// Spread returns (max-min)/min, the relative spread across repetitions.
// The paper's §2 alignment study uses exactly this ("The variation is less
// than 3% for any alignment configuration").
func (s Summary) Spread() float64 {
	if s.Min == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Min
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f med=%.3f mean=%.3f max=%.3f sd=%.3f",
		s.N, s.Min, s.Median, s.Mean, s.Max, s.StdDev)
}

// Statistic selects which summary statistic a launcher run reports.
type Statistic int

const (
	// StatMin reports the minimum over repetitions (paper default for
	// figure series).
	StatMin Statistic = iota
	// StatMedian reports the median.
	StatMedian
	// StatMean reports the arithmetic mean.
	StatMean
	// StatMax reports the maximum (useful for worst-case alignment
	// studies such as Figs. 15-16).
	StatMax
)

// normalize maps an out-of-range Statistic to StatMean, the documented
// fallback. Every method of the type routes through it so Of and String
// agree on what an invalid value means.
func (st Statistic) normalize() Statistic {
	if st < StatMin || st > StatMax {
		return StatMean
	}
	return st
}

// String returns the CSV-facing name of the statistic. Out-of-range values
// render as the fallback statistic actually applied by Of ("mean").
func (st Statistic) String() string {
	switch st.normalize() {
	case StatMin:
		return "min"
	case StatMedian:
		return "median"
	case StatMax:
		return "max"
	default:
		return "mean"
	}
}

// ParseStatistic parses a statistic name as accepted by the
// microlauncher -statistic option.
func ParseStatistic(name string) (Statistic, error) {
	switch name {
	case "min":
		return StatMin, nil
	case "median":
		return StatMedian, nil
	case "mean":
		return StatMean, nil
	case "max":
		return StatMax, nil
	}
	return 0, fmt.Errorf("stats: unknown statistic %q (want min|median|mean|max)", name)
}

// Of applies the statistic to a summary. Out-of-range values fall back to
// the mean, matching what String reports for them.
func (st Statistic) Of(s Summary) float64 {
	switch st.normalize() {
	case StatMin:
		return s.Min
	case StatMedian:
		return s.Median
	case StatMax:
		return s.Max
	default:
		return s.Mean
	}
}
