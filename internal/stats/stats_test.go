package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 2, 8, 6})
	if s.N != 4 || s.Min != 2 || s.Max != 8 || s.Mean != 5 || s.Median != 5 {
		t.Errorf("summary = %+v", s)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
	single := Summarize([]float64{7})
	if single.Min != 7 || single.Max != 7 || single.StdDev != 0 || single.CV() != 0 {
		t.Errorf("single summary = %+v", single)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestSpreadAndCV(t *testing.T) {
	s := Summarize([]float64{10, 12})
	if got := s.Spread(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("spread = %v, want 0.2", got)
	}
	if s.CV() <= 0 {
		t.Error("CV must be positive for varying samples")
	}
	z := Summary{}
	if z.CV() != 0 || z.Spread() != 0 {
		t.Error("zero summary must not divide by zero")
	}
}

// Property: min <= median <= max, mean within [min,max], invariant under
// permutation.
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := Summarize(vals)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		perm := append([]float64(nil), vals...)
		sort.Float64s(perm)
		s2 := Summarize(perm)
		return s.Min == s2.Min && s.Max == s2.Max && s.Median == s2.Median &&
			math.Abs(s.Mean-s2.Mean) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatisticParsingAndSelection(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	cases := []struct {
		name string
		want float64
	}{
		{"min", 1}, {"median", 2.5}, {"mean", 2.5}, {"max", 4},
	}
	for _, c := range cases {
		st, err := ParseStatistic(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := st.Of(s); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
		if st.String() != c.name {
			t.Errorf("String() = %q, want %q", st.String(), c.name)
		}
	}
	if _, err := ParseStatistic("mode"); err == nil {
		t.Error("unknown statistic accepted")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "t", XLabel: "x", YLabel: "y"}
	a := tab.AddSeries("a")
	b := tab.AddSeries("b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 100) // b has no point at x=2
	csv := tab.CSVString()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10,100" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20," {
		t.Errorf("row 2 (missing point) = %q", lines[2])
	}
}

func TestTableSeriesHelpers(t *testing.T) {
	tab := &Table{}
	s := tab.AddSeries("s")
	s.Add(1, 5)
	s.Add(2, 3)
	s.Add(3, 9)
	if s.MinY() != 3 || s.MaxY() != 9 {
		t.Errorf("min/max = %v/%v", s.MinY(), s.MaxY())
	}
	if v, err := s.YAt(2); err != nil || v != 3 {
		t.Errorf("YAt(2) = %v, %v", v, err)
	}
	if _, err := s.YAt(42); err == nil {
		t.Error("YAt on a missing point must error")
	}
	if tab.Get("s") != s || tab.Get("nope") != nil {
		t.Error("Get lookup wrong")
	}
	var empty Series
	if empty.MinY() != 0 || empty.MaxY() != 0 {
		t.Error("empty series min/max must be 0")
	}
}

func TestASCIIChart(t *testing.T) {
	tab := &Table{Title: "Chart", XLabel: "x", YLabel: "y"}
	s := tab.AddSeries("line")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	art := tab.ASCII(40, 10)
	if !strings.Contains(art, "Chart") || !strings.Contains(art, "*=line") {
		t.Errorf("chart missing title/legend:\n%s", art)
	}
	if !strings.Contains(art, "*") {
		t.Error("chart has no markers")
	}
	// Log scale must not crash and must mention it.
	tab.LogY = true
	if !strings.Contains(tab.ASCII(40, 10), "log Y") {
		t.Error("log scale not indicated")
	}
	// Degenerate tables render without panicking.
	empty := &Table{Title: "e"}
	if !strings.Contains(empty.ASCII(40, 10), "(empty)") {
		t.Error("empty table should render a placeholder")
	}
	flat := &Table{Title: "f"}
	fs := flat.AddSeries("f")
	fs.Add(1, 5)
	_ = flat.ASCII(2, 2) // clamps to minimum size
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(42); got != "42" {
		t.Errorf("formatFloat(42) = %q", got)
	}
	if got := formatFloat(2.5); got != "2.5" {
		t.Errorf("formatFloat(2.5) = %q", got)
	}
}

// TestStatisticOfAndStringAgree pins the contract that Of and String use the
// same mapping, including the out-of-range fallback: an invalid Statistic
// both reports and renders as the mean, rather than applying the mean while
// printing a Statistic(%d) placeholder.
func TestStatisticOfAndStringAgree(t *testing.T) {
	s := Summarize([]float64{1, 2, 4, 9})
	cases := []struct {
		st   Statistic
		name string
		want float64
	}{
		{StatMin, "min", s.Min},
		{StatMedian, "median", s.Median},
		{StatMean, "mean", s.Mean},
		{StatMax, "max", s.Max},
		{Statistic(-1), "mean", s.Mean},
		{Statistic(99), "mean", s.Mean},
	}
	for _, c := range cases {
		if got := c.st.String(); got != c.name {
			t.Errorf("Statistic(%d).String() = %q, want %q", int(c.st), got, c.name)
		}
		if got := c.st.Of(s); got != c.want {
			t.Errorf("Statistic(%d).Of = %v, want %v (%s)", int(c.st), got, c.want, c.name)
		}
	}
	// Round trip: every parseable name maps back to itself through String.
	for _, name := range []string{"min", "median", "mean", "max"} {
		st, err := ParseStatistic(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.String() != name {
			t.Errorf("ParseStatistic(%q).String() = %q", name, st.String())
		}
	}
}
