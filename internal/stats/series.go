package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is one (x, y) measurement of a series, e.g. (unroll factor,
// cycles/iteration).
type Point struct {
	X float64
	Y float64
}

// Series is one plot line of a paper figure, e.g. the "L2" line of Fig. 11.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// MinY returns the smallest Y of the series (0 if empty).
func (s *Series) MinY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, p := range s.Points {
		if p.Y < m {
			m = p.Y
		}
	}
	return m
}

// MaxY returns the largest Y of the series (0 if empty).
func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// YAt returns the Y value at x, or an error if the series has no such point.
func (s *Series) YAt(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("stats: series %q has no point at x=%v", s.Name, x)
}

// Table is the result of one experiment: a set of series over a shared
// X axis. It renders to CSV (MicroLauncher's output format, §4.3) and to a
// terminal-friendly ASCII chart.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	// LogY mirrors the paper's log-scale figures (14, 17, 18).
	LogY   bool
	Series []*Series
}

// AddSeries creates, registers and returns a named series.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (t *Table) Get(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// xValues returns the sorted union of X values across all series.
func (t *Table) xValues() []float64 {
	set := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			set[p.X] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// WriteCSV renders the table as CSV: a header row with the X label and one
// column per series, then one row per X value. Missing points render empty.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, func() []string {
		names := make([]string, len(t.Series))
		for i, s := range t.Series {
			names[i] = s.Name
		}
		return names
	}()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range t.xValues() {
		row := make([]string, 0, len(t.Series)+1)
		row = append(row, formatFloat(x))
		for _, s := range t.Series {
			y, err := s.YAt(x)
			if err != nil {
				row = append(row, "")
				continue
			}
			row = append(row, formatFloat(y))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVString renders the table to a CSV string.
func (t *Table) CSVString() string {
	var b strings.Builder
	if err := t.WriteCSV(&b); err != nil {
		// strings.Builder writes cannot fail; csv only fails on writer error.
		panic(err) //microlint:disable L010 -- unreachable by construction
	}
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// ASCII renders an ASCII-art chart of the table with the given plot area
// size. Each series is drawn with its own marker character.
func (t *Table) ASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xs := t.xValues()
	if len(xs) == 0 {
		return t.Title + "\n(empty)\n"
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, p := range s.Points {
			y := p.Y
			if t.LogY && y > 0 {
				y = math.Log10(y)
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if minY == maxY {
		maxY = minY + 1
	}
	if minX == maxX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	for si, s := range t.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			y := p.Y
			if t.LogY && y > 0 {
				y = math.Log10(y)
			}
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s vs %s", t.Title, t.YLabel, t.XLabel)
	if t.LogY {
		b.WriteString(", log Y")
	}
	b.WriteString(")\n")
	for i, line := range grid {
		var label float64
		if t.LogY {
			label = math.Pow(10, maxY-(maxY-minY)*float64(i)/float64(height-1))
		} else {
			label = maxY - (maxY-minY)*float64(i)/float64(height-1)
		}
		fmt.Fprintf(&b, "%10.2f |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	var legend []string
	for si, s := range t.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	b.WriteString("            " + strings.Join(legend, "  ") + "\n")
	return b.String()
}
