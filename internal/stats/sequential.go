package stats

import "math"

// Sequential accumulates summary statistics one observation at a time
// using Welford's algorithm — the per-repetition form the launcher's
// adaptive planner consults after every outer repetition without
// re-scanning the sample slice. It tracks the running mean, the sample
// variance, and the extrema; the final reported Summary is still computed
// by the two-pass Summarize over the full sample set (the authoritative
// numbers), and the two agree to floating-point accumulation order.
type Sequential struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Push folds one observation into the accumulator.
func (q *Sequential) Push(v float64) {
	q.n++
	if q.n == 1 {
		q.min, q.max = v, v
	} else {
		if v < q.min {
			q.min = v
		}
		if v > q.max {
			q.max = v
		}
	}
	d := v - q.mean
	q.mean += d / float64(q.n)
	q.m2 += d * (v - q.mean)
}

// N returns the observation count.
func (q *Sequential) N() int { return q.n }

// Mean returns the running mean (0 before the first observation).
func (q *Sequential) Mean() float64 { return q.mean }

// Min returns the minimum observed so far (0 before the first
// observation).
func (q *Sequential) Min() float64 { return q.min }

// Max returns the maximum observed so far (0 before the first
// observation).
func (q *Sequential) Max() float64 { return q.max }

// SampleStdDev returns the sample standard deviation (÷(n−1)), 0 when
// fewer than two observations exist — mirroring Summary.SampleStdDev.
func (q *Sequential) SampleStdDev() float64 {
	if q.n < 2 {
		return 0
	}
	// Guard against a tiny negative m2 from cancellation on
	// near-constant streams.
	if q.m2 <= 0 {
		return 0
	}
	return math.Sqrt(q.m2 / float64(q.n-1))
}

// RCIW returns the relative 95% Student-t confidence-interval width of
// the running mean, with the same degenerate semantics as Summary.RCIW:
// +Inf for n < 2 or a zero mean.
func (q *Sequential) RCIW() float64 {
	if q.n < 2 || q.mean == 0 {
		return math.Inf(1)
	}
	half := TCrit95(q.n-1) * q.SampleStdDev() / math.Sqrt(float64(q.n))
	return 2 * half / math.Abs(q.mean)
}
