package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestTCrit95Table checks the tabulated Student-t quantiles against known
// values of t(0.975, df) and the documented edges: +Inf below one degree
// of freedom, the normal z beyond the table.
func TestTCrit95Table(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
		{10, 2.228}, {20, 2.086}, {29, 2.045},
		{30, 1.96}, {100, 1.96}, {1 << 20, 1.96},
	}
	for _, c := range cases {
		if got := TCrit95(c.df); got != c.want {
			t.Errorf("TCrit95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if got := TCrit95(0); !math.IsInf(got, 1) {
		t.Errorf("TCrit95(0) = %v, want +Inf", got)
	}
	if got := TCrit95(-3); !math.IsInf(got, 1) {
		t.Errorf("TCrit95(-3) = %v, want +Inf", got)
	}
}

// TestSampleVsPopulationStdDev pins the two estimators apart: StdDev stays
// the population (÷n) figure the CSV always reported, SampleStdDev is the
// ÷(n−1) estimator the confidence interval needs.
func TestSampleVsPopulationStdDev(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if want := math.Sqrt(1.25); !approxEq(s.StdDev, want) {
		t.Errorf("StdDev = %v, want population %v", s.StdDev, want)
	}
	if want := math.Sqrt(5.0 / 3.0); !approxEq(s.SampleStdDev, want) {
		t.Errorf("SampleStdDev = %v, want sample %v", s.SampleStdDev, want)
	}
	single := Summarize([]float64{7})
	if single.SampleStdDev != 0 {
		t.Errorf("single-sample SampleStdDev = %v, want 0", single.SampleStdDev)
	}
}

// TestRCIWStudentT hand-computes the relative CI width for a small sample:
// 2·t(0.975,3)·s/√4/|mean| with the SAMPLE stddev — the bug this test
// guards against was the population estimator (and a fixed z) leaking in.
func TestRCIWStudentT(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := 2 * 3.182 * math.Sqrt(5.0/3.0) / math.Sqrt(4) / 2.5
	if got := s.RCIW(); !approxEq(got, want) {
		t.Errorf("RCIW = %v, want %v", got, want)
	}
	// A 40-sample summary is past the t table: the z fallback applies.
	big := make([]float64, 40)
	for i := range big {
		big[i] = float64(i%2) + 10 // alternating 10, 11
	}
	sb := Summarize(big)
	wantBig := 2 * 1.96 * sb.SampleStdDev / math.Sqrt(40) / sb.Mean
	if got := sb.RCIW(); !approxEq(got, wantBig) {
		t.Errorf("RCIW(n=40) = %v, want %v", got, wantBig)
	}
}

// TestRCIWDegenerate pins the +Inf sentinel: a single repetition and a
// zero mean admit no (relative) interval estimate.
func TestRCIWDegenerate(t *testing.T) {
	if got := Summarize([]float64{7}).RCIW(); !math.IsInf(got, 1) {
		t.Errorf("RCIW(n=1) = %v, want +Inf", got)
	}
	if got := Summarize([]float64{-1, 1}).RCIW(); !math.IsInf(got, 1) {
		t.Errorf("RCIW(mean=0) = %v, want +Inf", got)
	}
	var q Sequential
	if got := q.RCIW(); !math.IsInf(got, 1) {
		t.Errorf("Sequential.RCIW(n=0) = %v, want +Inf", got)
	}
	q.Push(3)
	if got := q.RCIW(); !math.IsInf(got, 1) {
		t.Errorf("Sequential.RCIW(n=1) = %v, want +Inf", got)
	}
}

// Property: the Welford accumulator agrees with the two-pass Summarize on
// every statistic the planner consults.
func TestSequentialMatchesSummarize(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		var q Sequential
		for i, v := range raw {
			vals[i] = float64(v)
			q.Push(vals[i])
		}
		s := Summarize(vals)
		if q.N() != s.N || q.Min() != s.Min || q.Max() != s.Max {
			return false
		}
		if !approxEq(q.Mean(), s.Mean) {
			return false
		}
		if math.Abs(q.SampleStdDev()-s.SampleStdDev) > 1e-6*(1+s.SampleStdDev) {
			return false
		}
		qr, sr := q.RCIW(), s.RCIW()
		if math.IsInf(sr, 1) {
			return math.IsInf(qr, 1)
		}
		return math.Abs(qr-sr) < 1e-6*(1+sr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLegacyStabilityOf pins the pre-fix formula generation the versioned
// cache backfill replays: population stddev, fixed z, zero for the
// degenerate cases the current formula maps to +Inf.
func TestLegacyStabilityOf(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	legacy := LegacyStabilityOf(s)
	want := 2 * 1.96 * s.StdDev / math.Sqrt(4) / s.Mean
	if !approxEq(legacy.RCIW, want) {
		t.Errorf("legacy RCIW = %v, want %v", legacy.RCIW, want)
	}
	if legacy.N != 4 || legacy.Mean != s.Mean || legacy.CV != s.CV() {
		t.Errorf("legacy stability = %+v", legacy)
	}
	if got := LegacyStabilityOf(Summarize([]float64{9})).RCIW; got != 0 {
		t.Errorf("legacy RCIW(n=1) = %v, want 0", got)
	}
	if got := LegacyStabilityOf(Summarize([]float64{-1, 1})).RCIW; got != 0 {
		t.Errorf("legacy RCIW(mean=0) = %v, want 0", got)
	}
}

// TestStabilityJSONRoundTrip exercises the codec across both regimes:
// finite RCIW values keep the exact historical encoding (cache warm-ness),
// the +Inf sentinel rides as null and comes back as +Inf.
func TestStabilityJSONRoundTrip(t *testing.T) {
	finite := Stability{N: 4, Mean: 2.5, CV: 0.4472, RCIW: 1.6432}
	b, err := json.Marshal(finite)
	if err != nil {
		t.Fatal(err)
	}
	// The historical encoding: the plain struct without the codec.
	legacy, err := json.Marshal(struct {
		N    int     `json:"n"`
		Mean float64 `json:"mean"`
		CV   float64 `json:"cv"`
		RCIW float64 `json:"rciw"`
	}{finite.N, finite.Mean, finite.CV, finite.RCIW})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(legacy) {
		t.Errorf("finite encoding %s diverged from the historical %s: caches would go cold", b, legacy)
	}
	var back Stability
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != finite {
		t.Errorf("round trip %+v != %+v", back, finite)
	}

	inf := Stability{N: 1, Mean: 3, RCIW: math.Inf(1)}
	b, err = json.Marshal(inf)
	if err != nil {
		t.Fatalf("marshaling +Inf RCIW: %v", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["rciw"] != nil {
		t.Errorf("+Inf RCIW encoded as %v, want null", raw["rciw"])
	}
	var backInf Stability
	if err := json.Unmarshal(b, &backInf); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(backInf.RCIW, 1) || backInf.N != 1 || backInf.Mean != 3 {
		t.Errorf("null rciw decoded to %+v, want the +Inf sentinel", backInf)
	}
}

// TestStabilityOfRecomputes pins StabilityOf as a pure function of the
// summary — the cache backfill invariant.
func TestStabilityOfRecomputes(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	a, b := StabilityOf(s), StabilityOf(s)
	if a != b {
		t.Errorf("StabilityOf not deterministic: %+v vs %+v", a, b)
	}
	if a.N != 3 || a.Mean != 4 || a.CV != s.CV() || a.RCIW != s.RCIW() {
		t.Errorf("StabilityOf = %+v", a)
	}
}
