package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	api "microtools/api/v1"
	"microtools/internal/campaign"
	"microtools/internal/launcher"
	"microtools/serviceclient"
)

// sweepSpec generates four measurable variants (unroll 1..4), mirroring
// the campaign package's test spec.
const sweepSpec = `
<kernel name="service_k">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>4</max></register>
  </instruction>
  <unrolling><min>1</min><max>4</max></unrolling>
  <induction><register><name>r1</name></register><increment>4</increment><offset>4</offset></induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction><register><phyName>%eax</phyName></register><increment>1</increment><not_affected_unroll/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`

// wideSpec is sweepSpec with a 16-wide unroll range — enough work that a
// drain lands mid-campaign.
var wideSpec = strings.Replace(sweepSpec, "<max>4</max></unrolling>", "<max>16</max></unrolling>", 1)

func quickLaunch() launcher.Options {
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 1 << 12
	opts.InnerReps = 1
	opts.OuterReps = 1
	opts.MaxInstructions = 5_000
	return opts
}

// startDaemon brings up a daemon on an ephemeral port and returns it with
// a client pointed at it.
func startDaemon(t *testing.T, opts Options) (*Daemon, *serviceclient.Client) {
	t.Helper()
	if opts.Launch.MachineName == "" {
		opts.Launch = quickLaunch()
	}
	d, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = d.CloseHTTP()
		_ = d.Close()
	})
	return d, &serviceclient.Client{Base: "http://" + addr}
}

func submitWait(t *testing.T, c *serviceclient.Client, req api.JobRequest) api.JobResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	status, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := c.WaitResult(ctx, status.ID)
	if err != nil {
		t.Fatalf("wait %s: %v", status.ID, err)
	}
	return res
}

// TestTwoTenantsBitIdenticalResults is the tentpole acceptance test: the
// same spec from two tenants completes with byte-identical campaign
// payloads, and the second submission performs zero launches.
func TestTwoTenantsBitIdenticalResults(t *testing.T) {
	_, client := startDaemon(t, Options{Cache: campaign.NewMemoryCache()})

	cold := submitWait(t, client, api.JobRequest{Tenant: "team-a", Spec: sweepSpec})
	warm := submitWait(t, client, api.JobRequest{Tenant: "team-b", Spec: sweepSpec})

	if cold.Job.State != api.StateDone || warm.Job.State != api.StateDone {
		t.Fatalf("states %s/%s, want done/done", cold.Job.State, warm.Job.State)
	}
	if cold.Serving.Launches != 4 || cold.Serving.CacheHits != 0 {
		t.Errorf("cold run launches=%d hits=%d, want 4/0", cold.Serving.Launches, cold.Serving.CacheHits)
	}
	if warm.Serving.Launches != 0 || warm.Serving.CacheHits != 4 || warm.Serving.CacheHitRatio != 1 {
		t.Errorf("warm run launches=%d hits=%d ratio=%v, want 0/4/1",
			warm.Serving.Launches, warm.Serving.CacheHits, warm.Serving.CacheHitRatio)
	}
	a, err := json.Marshal(cold.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(warm.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("campaign payloads differ across tenants:\ncold: %s\nwarm: %s", a, b)
	}
	if len(cold.Campaign.Variants) != 4 || cold.Campaign.Variants[0].Value <= 0 {
		t.Errorf("campaign payload incomplete: %s", a)
	}
}

// TestSSEIdsStrictlyIncreaseAcrossReconnect drops the event stream
// mid-job and reconnects with Last-Event-ID: the combined sequence must
// be gapless and strictly increasing.
func TestSSEIdsStrictlyIncreaseAcrossReconnect(t *testing.T) {
	_, client := startDaemon(t, Options{Cache: campaign.NewMemoryCache()})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	status, err := client.Submit(ctx, api.JobRequest{Tenant: "team-a", Spec: sweepSpec})
	if err != nil {
		t.Fatal(err)
	}

	// First connection: read until the stream has produced at least two
	// events, then sever it by canceling the request context.
	firstCtx, firstCancel := context.WithCancel(ctx)
	var seqs []int64
	errSevered := errors.New("severed")
	err = client.Stream(firstCtx, status.ID, func(ev api.VariantEvent) error {
		seqs = append(seqs, ev.Seq)
		if len(seqs) >= 2 {
			return errSevered
		}
		return nil
	})
	firstCancel()
	if err != nil && !errors.Is(err, errSevered) {
		t.Fatalf("first stream: %v", err)
	}
	if len(seqs) < 2 {
		t.Fatalf("first stream saw %d events, want >= 2", len(seqs))
	}

	// Reconnect from the last seen id (a fresh client forgets nothing:
	// resume state is carried by the protocol, not the client).
	resume := &serviceclient.Client{Base: client.Base}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		client.Base+"/v1/jobs/"+status.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", seqs[len(seqs)-1]))
	_ = resume // the raw request exercises the wire-level resume path
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Parse SSE frames by hand: every data line must continue the
	// sequence with no repeats and no gaps.
	var events []api.VariantEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var ev api.VariantEvent
			if json.Unmarshal([]byte(data), &ev) == nil {
				events = append(events, ev)
			}
		}
	}
	if len(events) == 0 {
		t.Fatal("reconnect replayed no events")
	}
	all := append(append([]int64{}, seqs...), seqsOf(events)...)
	for i := 1; i < len(all); i++ {
		if all[i] != all[i-1]+1 {
			t.Fatalf("event ids not gapless across reconnect: %v", all)
		}
	}
	last := events[len(events)-1]
	if last.Type != api.EventEnd || last.Status.State != api.StateDone {
		t.Errorf("stream did not close with a done end event: %+v", last)
	}
}

func seqsOf(evs []api.VariantEvent) []int64 {
	out := make([]int64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}

// TestTenantQuota pins admission control: the tenant limit rejects with
// over_quota (HTTP 429 via the handler) while other tenants stay
// admissible, and slots free up when jobs finish.
func TestTenantQuota(t *testing.T) {
	d, client := startDaemon(t, Options{Cache: campaign.NewMemoryCache(), MaxJobsPerTenant: 1, MaxConcurrentJobs: 1})
	// Hold every campaign until released, so admission state is
	// deterministic regardless of engine speed.
	release := make(chan struct{})
	d.runFn = func(ctx context.Context, _ *job) (*campaign.Result, error) {
		select {
		case <-release:
			return &campaign.Result{Emitted: 1}, nil
		case <-ctx.Done():
			return &campaign.Result{}, ctx.Err()
		}
	}

	first, aerr := d.Submit(api.JobRequest{Tenant: "team-a", Spec: sweepSpec})
	if aerr != nil {
		t.Fatalf("first submit rejected: %v", aerr)
	}
	if _, aerr = d.Submit(api.JobRequest{Tenant: "team-a", Spec: sweepSpec}); aerr == nil || aerr.Code != api.CodeOverQuota {
		t.Fatalf("second submit error %+v, want over_quota", aerr)
	}
	if _, aerr = d.Submit(api.JobRequest{Tenant: "team-b", Spec: sweepSpec}); aerr != nil {
		t.Fatalf("other tenant rejected: %v", aerr)
	}

	// Over HTTP the same rejection must be a 429 with the wire error.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := client.Submit(ctx, api.JobRequest{Tenant: "team-b", Spec: sweepSpec})
	var wire *api.Error
	if !errors.As(err, &wire) || wire.Code != api.CodeOverQuota {
		t.Fatalf("HTTP submit error %v, want wire over_quota", err)
	}

	// Draining the quota: once team-a's job finishes, the slot frees.
	close(release)
	if _, err := client.WaitResult(ctx, first.ID); err != nil {
		t.Fatalf("wait first: %v", err)
	}
	if _, aerr = d.Submit(api.JobRequest{Tenant: "team-a", Spec: sweepSpec}); aerr != nil {
		t.Fatalf("slot did not free after completion: %v", aerr)
	}
}

// TestBadRequests pins the bad_request admission failures.
func TestBadRequests(t *testing.T) {
	d, _ := startDaemon(t, Options{Cache: campaign.NewMemoryCache()})
	if _, aerr := d.Submit(api.JobRequest{Tenant: "t", Spec: "  "}); aerr == nil || aerr.Code != api.CodeBadRequest {
		t.Errorf("empty spec: %+v, want bad_request", aerr)
	}
	if _, aerr := d.Submit(api.JobRequest{SchemaVersion: "v9", Tenant: "t", Spec: "<x/>"}); aerr == nil || aerr.Code != api.CodeBadRequest {
		t.Errorf("wrong schema version: %+v, want bad_request", aerr)
	}
	// A spec that fails generation runs and fails with bad_request in the
	// job error (the spec is the client's fault, not the server's).
	status, aerr := d.Submit(api.JobRequest{Tenant: "t", Spec: "<notes/>"})
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	client := &serviceclient.Client{Base: "http://" + d.Addr()}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := client.Wait(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateFailed || final.Error == nil || final.Error.Code != api.CodeBadRequest {
		t.Errorf("generation failure surfaced as %+v, want failed/bad_request", final)
	}
}

// TestDrainRejectsQueuedAndInterruptsRunning exercises the SIGTERM
// protocol live: with one worker, a heavy running job is interrupted
// (checkpointed, no terminal ledger record) and the queued job behind it
// is rejected (terminal, ledgered). A fresh daemon over the same store
// and cache resumes the interrupted job and completes it cache-warm.
func TestDrainRejectsQueuedAndInterruptsRunning(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "jobs.jsonl")
	cachePath := filepath.Join(dir, "cache.jsonl")
	cache, err := campaign.OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy repetitions make each variant take tens of milliseconds, so
	// the drain reliably lands mid-campaign; the restarted daemon must
	// use the same options or the cache keys would not match.
	launch := quickLaunch()
	launch.OuterReps = 600
	d, client := startDaemon(t, Options{Cache: cache, StorePath: storePath, MaxConcurrentJobs: 1, Launch: launch})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	running, err := client.Submit(ctx, api.JobRequest{Tenant: "team-a", Spec: wideSpec, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Submit(ctx, api.JobRequest{Tenant: "team-b", Spec: sweepSpec})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the first job has completed (and cached) at least one
	// variant: the first progress event marks the checkpoint.
	started := errors.New("started")
	err = client.Stream(ctx, running.ID, func(ev api.VariantEvent) error {
		if ev.Type == api.EventProgress && ev.Status.Progress.Done >= 1 {
			return started
		}
		return nil
	})
	if !errors.Is(err, started) {
		t.Fatalf("stream before drain: %v", err)
	}

	if err := d.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	runStatus, _ := d.Job(running.ID)
	queuedStatus, _ := d.Job(queued.ID)
	if queuedStatus.State != api.StateRejected {
		t.Errorf("queued job state %s, want rejected", queuedStatus.State)
	}
	if runStatus.State != api.StateInterrupted {
		t.Fatalf("running job state %s, want interrupted (drain landed too late?)", runStatus.State)
	}
	if _, aerr := d.Submit(api.JobRequest{Tenant: "team-c", Spec: sweepSpec}); aerr == nil || aerr.Code != api.CodeDraining {
		t.Errorf("post-drain submit %+v, want draining", aerr)
	}
	_ = d.CloseHTTP()
	_ = d.Close()

	// Restart over the same ledger and cache: the interrupted job is
	// re-enqueued and completes; already-measured variants come from the
	// cache checkpoint.
	d2, client2 := startDaemon(t, Options{Cache: cache, StorePath: storePath, MaxConcurrentJobs: 1, Launch: launch})
	res, err := client2.WaitResult(ctx, running.ID)
	if err != nil {
		t.Fatalf("resumed job: %v", err)
	}
	if res.Job.State != api.StateDone {
		t.Fatalf("resumed job state %s, want done", res.Job.State)
	}
	if res.Serving.CacheHits == 0 {
		t.Errorf("resume used no cache checkpoint: %+v", res.Serving)
	}
	if res.Job.ID != running.ID {
		t.Errorf("resumed job id %s, want %s", res.Job.ID, running.ID)
	}
	// The rejected job stays rejected across the restart.
	rejStatus, ok := d2.Job(queued.ID)
	if !ok || rejStatus.State != api.StateRejected {
		t.Errorf("rejected job after restart: %+v (ok=%v), want rejected", rejStatus, ok)
	}
}

// TestStoreCorruptLineDegradesToMiss pins the ledger's durability
// contract: a corrupt line is skipped, the records around it survive.
func TestStoreCorruptLineDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	good := storeRecord{Kind: "submit", Job: api.JobStatus{SchemaVersion: api.SchemaVersion, ID: "j-3", Tenant: "t", State: api.StateQueued},
		Request: &api.JobRequest{Spec: "<kernel/>"}}
	line, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	blob := "{\"kind\":\"submit\",\"job\":{\"id\":\n" + string(line) + "\n{not json}\n"
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	finished, pending, corrupt, err := replayStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 2 {
		t.Errorf("corrupt=%d, want 2", corrupt)
	}
	if len(finished) != 0 || len(pending) != 1 || pending[0].Job.ID != "j-3" {
		t.Errorf("replay finished=%v pending=%v, want the one good submit", finished, pending)
	}
}

// TestMetricsExposition asserts the service counters reach /metrics under
// their Prometheus names.
func TestMetricsExposition(t *testing.T) {
	_, client := startDaemon(t, Options{Cache: campaign.NewMemoryCache()})
	submitWait(t, client, api.JobRequest{Tenant: "team-a", Spec: sweepSpec})
	resp, err := http.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"microtools_service_jobs_total 1",
		"microtools_service_jobs_completed 1",
		"microtools_service_jobs_running 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestAdaptiveJobSurfacesConfidence submits an adaptive job over the v1
// contract: the per-variant stability block must carry the planner's
// outcome (reps, stop reason, target) and the serving stats the budget
// accounting — and a warm resubmission must replay it launch-free.
func TestAdaptiveJobSurfacesConfidence(t *testing.T) {
	_, client := startDaemon(t, Options{Cache: campaign.NewMemoryCache()})
	req := api.JobRequest{
		Tenant:    "team-a",
		Spec:      sweepSpec,
		OuterReps: 4,
		Adaptive:  &api.AdaptivePlan{TargetRCIW: 0.05},
	}
	cold := submitWait(t, client, req)
	if cold.Job.State != api.StateDone {
		t.Fatalf("state %s: %v", cold.Job.State, cold.Job.Error)
	}
	// Deterministic sim, min statistic: every variant stops at the floor
	// of 2 of 4 reps — half the budget saved, no misses.
	if cold.Serving.RepsSaved != 8 || cold.Serving.RepsExecuted != 8 || cold.Serving.RepsTopUp != 0 {
		t.Errorf("serving reps saved=%d executed=%d topup=%d, want 8/8/0",
			cold.Serving.RepsSaved, cold.Serving.RepsExecuted, cold.Serving.RepsTopUp)
	}
	for _, v := range cold.Campaign.Variants {
		st := v.Stability
		if st.Reps != 2 || st.StopReason != "stable" {
			t.Errorf("variant %s: reps=%d stop=%q, want 2/stable", v.Name, st.Reps, st.StopReason)
		}
		if st.TargetRCIW != 0.05 || st.MissedTarget {
			t.Errorf("variant %s: target=%v missed=%v, want 0.05/false", v.Name, st.TargetRCIW, st.MissedTarget)
		}
		if st.N != 2 {
			t.Errorf("variant %s: stability n=%d, want the realized 2", v.Name, st.N)
		}
	}

	warm := submitWait(t, client, req)
	if warm.Serving.Launches != 0 || warm.Serving.CacheHits != 4 {
		t.Errorf("warm adaptive run launches=%d hits=%d, want 0/4", warm.Serving.Launches, warm.Serving.CacheHits)
	}
	a, _ := json.Marshal(cold.Campaign)
	b, _ := json.Marshal(warm.Campaign)
	if string(a) != string(b) {
		t.Errorf("adaptive campaign payloads diverged across cache temperature:\ncold: %s\nwarm: %s", a, b)
	}
	// A fixed-budget job on the same spec keeps its own cache lane: the
	// adaptive entries must not have claimed its keys.
	fixed := submitWait(t, client, api.JobRequest{Tenant: "team-a", Spec: sweepSpec, OuterReps: 4})
	if fixed.Serving.Launches != 4 {
		t.Errorf("fixed-budget job launches=%d, want 4 (adaptive cache entries leaked)", fixed.Serving.Launches)
	}
	if fixed.Campaign.Variants[0].Stability.StopReason != "" {
		t.Error("fixed-budget variant carries an adaptive stop reason")
	}
}
