package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	api "microtools/api/v1"
)

// storeRecord is one line of the append-only job store. Kind "submit"
// records an accepted job with its request; Kind "end" records a terminal
// state. A submit without a matching end is a job the previous process
// never finished — the daemon re-enqueues it on startup, which is how a
// drained-in-flight job resumes (cache-warm) after a restart.
type storeRecord struct {
	Kind    string          `json:"kind"`
	Job     api.JobStatus   `json:"job"`
	Request *api.JobRequest `json:"request,omitempty"`
	Result  *api.JobResult  `json:"result,omitempty"`
}

// store persists the job ledger as append-only JSONL, mirroring the
// measurement cache's durability contract: every accepted record is one
// fsync-free line, a torn or corrupt line degrades to a miss (the records
// before it survive, the tail is ignored), and two processes never share
// a store.
type store struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	path string
}

// openStore opens (creating if needed) the JSONL ledger at path. A nil
// store (path "") is valid and drops every append — memory-only serving.
func openStore(path string) (*store, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open job store: %w", err)
	}
	return &store{f: f, enc: json.NewEncoder(f), path: path}, nil
}

// append writes one record. Errors are returned for the caller to count;
// the daemon serves on regardless (the store is a ledger, not a gate).
func (s *store) append(rec storeRecord) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(rec); err != nil {
		return fmt.Errorf("service: append job store: %w", err)
	}
	return nil
}

// close releases the ledger file.
func (s *store) close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// replayStore reads the ledger at path and reconstructs the job table:
// finished is every job with a terminal record, pending is every accepted
// job without one (in submission order, ready to re-enqueue). Corrupt
// lines are skipped and counted, never fatal — the ledger degrades to
// partial knowledge exactly like a corrupt cache line degrades to a miss.
func replayStore(path string) (finished []storeRecord, pending []storeRecord, corrupt int, err error) {
	if path == "" {
		return nil, nil, 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, 0, nil
		}
		return nil, nil, 0, fmt.Errorf("service: replay job store: %w", err)
	}
	defer f.Close()

	submits := map[string]storeRecord{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec storeRecord
		if json.Unmarshal(line, &rec) != nil || rec.Job.ID == "" {
			corrupt++
			continue
		}
		switch rec.Kind {
		case "submit":
			if _, dup := submits[rec.Job.ID]; !dup {
				order = append(order, rec.Job.ID)
			}
			submits[rec.Job.ID] = rec
		case "end":
			delete(submits, rec.Job.ID)
			finished = append(finished, rec)
		default:
			corrupt++
		}
	}
	if err := sc.Err(); err != nil {
		// A truncated tail loses the records after it, nothing more.
		corrupt++
	}
	for _, id := range order {
		if rec, ok := submits[id]; ok {
			pending = append(pending, rec)
		}
	}
	return finished, pending, corrupt, nil
}
