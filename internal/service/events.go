package service

import (
	"sync"

	api "microtools/api/v1"
)

// eventLog is one job's append-only SSE event history. Every event keeps
// its strictly increasing sequence id (index+1), so a client reconnecting
// with Last-Event-ID replays exactly the frames it missed and then tails
// live appends — the same subscribe-before-replay discipline as the
// telemetry /events stream, with the log itself standing in for the
// subscription buffer (a log replay can never lose a racing append: the
// append lands at a higher seq and the next wait observes it).
type eventLog struct {
	mu     sync.Mutex
	events []api.VariantEvent
	notify chan struct{} // closed and replaced on every append
	done   bool
}

func newEventLog() *eventLog {
	return &eventLog{notify: make(chan struct{})}
}

// append records one event, stamping its sequence id, and wakes waiters.
func (l *eventLog) append(kind string, status api.JobStatus) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	ev := api.VariantEvent{
		SchemaVersion: api.SchemaVersion,
		JobID:         status.ID,
		Seq:           int64(len(l.events) + 1),
		Type:          kind,
		Status:        status,
	}
	l.events = append(l.events, ev)
	close(l.notify)
	l.notify = make(chan struct{})
}

// close marks the log terminal: no more appends, and waiters drain what
// remains and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.notify)
	l.notify = make(chan struct{})
}

// after returns the events with Seq > after, a channel that closes on the
// next append, and whether the log is terminal. A streaming handler loops:
// write the batch, and when the log is terminal stop; otherwise wait on
// the channel (or the client's context) and call after again with the
// last written seq.
func (l *eventLog) after(after int64) ([]api.VariantEvent, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []api.VariantEvent
	if after >= 0 && after < int64(len(l.events)) {
		out = append(out, l.events[after:]...)
	}
	return out, l.notify, l.done
}
