package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	api "microtools/api/v1"
	"microtools/internal/telemetry"
)

// maxRequestBytes bounds a submission body; specs are small XML files.
const maxRequestBytes = 4 << 20

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/jobs             submit a spec, 202 + JobStatus
//	GET  /v1/jobs/{id}        JobResult (status + result once finished)
//	GET  /v1/jobs/{id}/events per-job SSE stream (Last-Event-ID resume)
//	/metrics, /debug/campaigns, /events, [/debug/pprof/]
//	                          the embedded telemetry server
func (d *Daemon) Handler() http.Handler {
	telem := telemetry.NewServer(telemetry.ServerOptions{
		Registry:    d.reg,
		Tracker:     d.tracker,
		EnablePprof: d.opts.EnablePprof,
	}).Handler()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.Handle("/metrics", telem)
	mux.Handle("/debug/", telem)
	mux.Handle("/events", telem)
	mux.HandleFunc("/", d.handleIndex)
	return mux
}

func (d *Daemon) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeNotFound,
			Message: "unknown path " + r.URL.Path})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "microserved %s\n\nPOST /v1/jobs\nGET  /v1/jobs/{id}\nGET  /v1/jobs/{id}/events\n\n/metrics\n/debug/campaigns\n/events\n", api.SchemaVersion)
}

// statusFor maps wire error codes onto HTTP statuses.
func statusFor(code string) int {
	switch code {
	case api.CodeBadRequest:
		return http.StatusBadRequest
	case api.CodeOverQuota:
		return http.StatusTooManyRequests
	case api.CodeNotFound:
		return http.StatusNotFound
	case api.CodeDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, e *api.Error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(statusFor(e.Code))
	_ = json.NewEncoder(w).Encode(e)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// Compact (non-indented) encoding keeps result documents byte-stable
	// for cross-job comparison.
	_ = json.NewEncoder(w).Encode(v)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeBadRequest,
			Message: "malformed request body: " + err.Error()})
		return
	}
	status, aerr := d.Submit(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+status.ID)
	writeJSON(w, http.StatusAccepted, status)
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, ok := d.Result(id)
	if !ok {
		writeError(w, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeNotFound,
			Message: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleEvents streams the job's event log as SSE. The client resumes
// after a reconnect via the standard Last-Event-ID header (or an ?after=
// query parameter for curl-level debugging); ids restart from the exact
// next frame and keep strictly increasing.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		writeError(w, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeNotFound,
			Message: "unknown job " + id})
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeInternal,
			Message: "streaming unsupported by this connection"})
		return
	}
	after := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	for {
		batch, wait, done := j.events.after(after)
		for _, ev := range batch {
			if err := telemetry.WriteSSE(w, ev.Type, ev.Seq, ev); err != nil {
				return
			}
			after = ev.Seq
		}
		fl.Flush()
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-d.baseCtx.Done():
			return
		case <-wait:
		}
	}
}

// Start listens on addr (":0" works) and serves the daemon in a
// background goroutine, returning the bound address.
func (d *Daemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: d.Handler(), ReadHeaderTimeout: 10 * time.Second}
	d.mu.Lock()
	d.ln = ln
	d.http = srv
	d.mu.Unlock()
	go func() {
		// ErrServerClosed is the normal CloseHTTP path.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// CloseHTTP stops the listener and interrupts in-flight handlers (SSE
// streams included). It is a no-op before Start.
func (d *Daemon) CloseHTTP() error {
	d.mu.Lock()
	srv := d.http
	d.http = nil
	d.ln = nil
	d.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
