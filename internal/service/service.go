// Package service is the measurement-as-a-service daemon behind
// cmd/microserved: clients POST XML kernel specs to /v1/jobs, the daemon
// runs them through the campaign engine on a bounded worker pool with
// per-tenant admission control, and every job shares one content-addressed
// measurement cache — a second tenant submitting an identical spec
// completes with zero relaunches. Job lifecycle is persisted to an
// append-only JSONL ledger so a drained daemon resumes interrupted jobs
// (cache-warm) on restart, and per-job progress streams over SSE with
// strictly increasing, reconnect-safe event ids.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	api "microtools/api/v1"
	"microtools/internal/campaign"
	"microtools/internal/core"
	"microtools/internal/launcher"
	"microtools/internal/telemetry"
)

// Options configures the daemon.
type Options struct {
	// MaxConcurrentJobs sizes the server-side campaign worker pool
	// (<= 0 means 2). Each running job additionally fans out over its
	// own campaign launch pool, so keep this small.
	MaxConcurrentJobs int
	// MaxJobsPerTenant bounds one tenant's queued+running jobs; a
	// submission beyond it is rejected with over_quota / HTTP 429
	// (<= 0 means 4).
	MaxJobsPerTenant int
	// Cache is the measurement cache shared by every job (nil runs
	// uncached — every submission relaunches).
	Cache *campaign.Cache
	// StorePath is the append-only JSONL job ledger ("" = memory only:
	// no restart resume).
	StorePath string
	// Launch is the base measurement configuration; per-request fields
	// (machine, array size, repetitions) override it. The zero value
	// means launcher.DefaultOptions().
	Launch launcher.Options
	// Registry, Tracker back the mounted telemetry endpoints and the
	// service metrics (nil creates private ones).
	Registry *telemetry.Registry
	Tracker  *telemetry.Tracker
	// EnablePprof mounts net/http/pprof on the daemon mux.
	EnablePprof bool
}

// job is one submission's full server-side state.
type job struct {
	req    api.JobRequest
	events *eventLog

	mu     sync.Mutex
	status api.JobStatus
	result *api.JobResult
	cancel context.CancelFunc
}

// setStatus mutates the job status under the lock and returns a copy.
func (j *job) setStatus(mut func(*api.JobStatus)) api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	mut(&j.status)
	return j.status
}

// snapshot returns the current status copy.
func (j *job) snapshot() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Daemon is the measurement service: admission control, the job queue and
// worker pool, the shared cache, the ledger, and the HTTP surface.
type Daemon struct {
	opts    Options
	reg     *telemetry.Registry
	tracker *telemetry.Tracker
	metrics *telemetry.Metrics
	store   *store
	baseCtx context.Context

	// Service instruments (exposed at /metrics as
	// microtools_service_jobs_total and friends).
	jobsTotal     *telemetry.Counter
	jobsCompleted *telemetry.Counter
	jobsFailed    *telemetry.Counter
	jobsRejected  *telemetry.Counter
	jobsRunning   *telemetry.Gauge
	jobsQueued    *telemetry.Gauge
	storeErrors   *telemetry.Counter

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	jobs     map[string]*job
	tenants  map[string]int
	nextID   int64
	draining bool
	closed   bool
	wg       sync.WaitGroup

	// HTTP listener state (Start/Addr/CloseHTTP in http.go).
	ln   net.Listener
	http *http.Server

	// runFn substitutes the campaign invocation in tests (must return a
	// non-nil Result, like campaign.Run). nil means the real engine.
	runFn func(context.Context, *job) (*campaign.Result, error)
}

// New builds the daemon, replays the job ledger (finished jobs become
// queryable again, unfinished ones re-enqueue and re-run cache-warm), and
// starts the worker pool. ctx bounds the daemon's lifetime: cancellation
// aborts running campaigns without the drain protocol's bookkeeping —
// prefer Drain for orderly shutdown.
func New(ctx context.Context, opts Options) (*Daemon, error) {
	if opts.MaxConcurrentJobs <= 0 {
		opts.MaxConcurrentJobs = 2
	}
	if opts.MaxJobsPerTenant <= 0 {
		opts.MaxJobsPerTenant = 4
	}
	if opts.Launch.MachineName == "" {
		opts.Launch = launcher.DefaultOptions()
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tracker := opts.Tracker
	if tracker == nil {
		tracker = telemetry.NewTracker()
	}
	d := &Daemon{
		opts:    opts,
		reg:     reg,
		tracker: tracker,
		metrics: telemetry.NewMetrics(reg),
		baseCtx: ctx,
		jobs:    map[string]*job{},
		tenants: map[string]int{},

		jobsTotal:     reg.Counter("service.jobs.total"),
		jobsCompleted: reg.Counter("service.jobs.completed"),
		jobsFailed:    reg.Counter("service.jobs.failed"),
		jobsRejected:  reg.Counter("service.jobs.rejected"),
		jobsRunning:   reg.Gauge("service.jobs.running"),
		jobsQueued:    reg.Gauge("service.jobs.queued"),
		storeErrors:   reg.Counter("service.store.errors"),
	}
	d.cond = sync.NewCond(&d.mu)

	finished, pending, corrupt, err := replayStore(opts.StorePath)
	if err != nil {
		return nil, err
	}
	d.storeErrors.Add(int64(corrupt))
	for _, rec := range finished {
		j := &job{req: requestOf(rec), status: rec.Job, events: newEventLog()}
		if rec.Result != nil {
			j.result = rec.Result
		}
		// The stream of a finished job replays its terminal frame only.
		j.events.append(api.EventEnd, rec.Job)
		j.events.close()
		d.jobs[rec.Job.ID] = j
		d.noteID(rec.Job.ID)
	}
	d.store, err = openStore(opts.StorePath)
	if err != nil {
		return nil, err
	}
	for _, rec := range pending {
		j := &job{req: requestOf(rec), status: rec.Job, events: newEventLog()}
		j.status.State = api.StateQueued
		j.status.Progress = api.Progress{}
		d.jobs[rec.Job.ID] = j
		d.noteID(rec.Job.ID)
		d.tenants[j.status.Tenant]++
		d.queue = append(d.queue, j)
		j.events.append(api.EventQueued, j.status)
	}
	d.jobsQueued.Set(int64(len(d.queue)))

	for i := 0; i < opts.MaxConcurrentJobs; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// requestOf recovers the stored request (older ledgers may lack it).
func requestOf(rec storeRecord) api.JobRequest {
	if rec.Request != nil {
		return *rec.Request
	}
	return api.JobRequest{}
}

// noteID advances the id counter past a replayed job id, so restarted
// daemons never reissue an id the ledger already used.
func (d *Daemon) noteID(id string) {
	if n, err := strconv.ParseInt(strings.TrimPrefix(id, "j-"), 10, 64); err == nil && n > d.nextID {
		d.nextID = n
	}
}

// Submit runs admission control and enqueues the job. The returned
// api.Error is nil on acceptance; otherwise its Code selects the HTTP
// status (bad_request, over_quota, draining).
func (d *Daemon) Submit(req api.JobRequest) (api.JobStatus, *api.Error) {
	if req.SchemaVersion != "" && req.SchemaVersion != api.SchemaVersion {
		return api.JobStatus{}, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeBadRequest,
			Message: fmt.Sprintf("unsupported schema_version %q (server speaks %s)", req.SchemaVersion, api.SchemaVersion)}
	}
	if strings.TrimSpace(req.Spec) == "" {
		return api.JobStatus{}, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeBadRequest,
			Message: "empty spec: submit the XML kernel description in the spec field"}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	d.mu.Lock()
	if d.draining || d.closed {
		d.mu.Unlock()
		return api.JobStatus{}, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeDraining,
			Message: "server is draining; resubmit to a live replica"}
	}
	if d.tenants[tenant] >= d.opts.MaxJobsPerTenant {
		d.mu.Unlock()
		d.jobsRejected.Inc()
		return api.JobStatus{}, &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeOverQuota,
			Message: fmt.Sprintf("tenant %q has %d jobs in flight (limit %d)", tenant, d.opts.MaxJobsPerTenant, d.opts.MaxJobsPerTenant)}
	}
	d.nextID++
	id := fmt.Sprintf("j-%d", d.nextID)
	name := req.Name
	if name == "" {
		name = tenant + "/" + id
	}
	j := &job{
		req:    req,
		events: newEventLog(),
		status: api.JobStatus{
			SchemaVersion:   api.SchemaVersion,
			ID:              id,
			Tenant:          tenant,
			Name:            name,
			State:           api.StateQueued,
			SubmittedUnixMS: telemetry.Now().UnixMilli(),
		},
	}
	d.jobs[id] = j
	d.tenants[tenant]++
	d.queue = append(d.queue, j)
	d.jobsQueued.Set(int64(len(d.queue)))
	status := j.status
	d.cond.Signal()
	d.mu.Unlock()

	d.jobsTotal.Inc()
	j.events.append(api.EventQueued, status)
	if err := d.store.append(storeRecord{Kind: "submit", Job: status, Request: &req}); err != nil {
		d.storeErrors.Inc()
	}
	return status, nil
}

// Job returns a submitted job's current status.
func (d *Daemon) Job(id string) (api.JobStatus, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return api.JobStatus{}, false
	}
	return j.snapshot(), true
}

// Result returns the job's result document: status always, serving stats
// and campaign payload once finished.
func (d *Daemon) Result(id string) (api.JobResult, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return api.JobResult{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result != nil {
		res := *j.result
		res.Job = j.status
		return res, true
	}
	return api.JobResult{SchemaVersion: api.SchemaVersion, Job: j.status}, true
}

// worker is one slot of the campaign pool.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.draining && !d.closed {
			d.cond.Wait()
		}
		if d.closed || d.draining {
			d.mu.Unlock()
			return
		}
		j := d.queue[0]
		d.queue = d.queue[1:]
		d.jobsQueued.Set(int64(len(d.queue)))
		d.jobsRunning.Add(1)
		d.mu.Unlock()

		d.runJob(j)

		d.mu.Lock()
		d.jobsRunning.Add(-1)
		d.mu.Unlock()
	}
}

// runJob executes one job's campaign and records its terminal state.
func (d *Daemon) runJob(j *job) {
	ctx, cancel := context.WithCancel(d.baseCtx)
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	status := j.setStatus(func(s *api.JobStatus) {
		s.State = api.StateRunning
		s.StartedUnixMS = telemetry.Now().UnixMilli()
	})
	j.events.append(api.EventStarted, status)

	run := d.runFn
	if run == nil {
		run = func(ctx context.Context, j *job) (*campaign.Result, error) {
			return campaign.Run(ctx, strings.NewReader(j.req.Spec),
				core.GenerateOptions{Seed: j.req.Seed}, d.campaignOptions(j))
		}
	}
	res, err := run(ctx, j)

	j.mu.Lock()
	j.cancel = nil
	j.mu.Unlock()

	if err != nil && errors.Is(err, context.Canceled) {
		// Drain (or daemon-context cancellation) interrupted the run.
		// Completed variants are already checkpointed in the shared
		// cache; no terminal ledger record is written, so the next
		// daemon over this store re-enqueues the job and the re-run is
		// cache-warm. Tenant accounting is NOT released: the job is
		// still this tenant's until a terminal state.
		status = j.setStatus(func(s *api.JobStatus) { s.State = api.StateInterrupted })
		j.events.append(api.EventEnd, status)
		j.events.close()
		return
	}

	result := buildResult(res, err)
	status = j.setStatus(func(s *api.JobStatus) {
		s.FinishedUnixMS = telemetry.Now().UnixMilli()
		s.Progress = finalProgress(res)
		if err != nil {
			s.State = api.StateFailed
			s.Error = apiError(err)
		} else {
			s.State = api.StateDone
		}
	})
	result.Job = status
	j.mu.Lock()
	j.result = &result
	j.mu.Unlock()

	if err != nil {
		d.jobsFailed.Inc()
	} else {
		d.jobsCompleted.Inc()
	}
	d.release(status.Tenant)
	if serr := d.store.append(storeRecord{Kind: "end", Job: status, Result: &result}); serr != nil {
		d.storeErrors.Inc()
	}
	j.events.append(api.EventEnd, status)
	j.events.close()
}

// release returns one tenant admission slot.
func (d *Daemon) release(tenant string) {
	d.mu.Lock()
	if d.tenants[tenant] > 0 {
		d.tenants[tenant]--
	}
	d.mu.Unlock()
}

// campaignOptions maps the wire request onto engine options: the shared
// cache, job-scoped telemetry naming, and a progress hook that feeds the
// job's SSE stream.
func (d *Daemon) campaignOptions(j *job) campaign.Options {
	status := j.snapshot()
	req := j.req
	launch := d.opts.Launch
	if req.Machine != "" {
		launch.MachineName = req.Machine
	}
	if req.ArrayBytes > 0 {
		launch.ArrayBytes = int64(req.ArrayBytes)
	}
	if req.OuterReps > 0 {
		launch.OuterReps = req.OuterReps
	}
	if req.InnerReps > 0 {
		launch.InnerReps = req.InnerReps
	}
	setters := []campaign.Option{
		campaign.WithLaunch(launch),
		campaign.WithWorkers(req.Workers),
		campaign.WithFailFast(req.FailFast),
		campaign.WithCache(d.opts.Cache),
		campaign.WithName(status.Name),
		campaign.WithMetrics(d.metrics),
		campaign.WithTracker(d.tracker),
		campaign.WithQuarantine(req.Quarantine),
		campaign.WithCheckBounds(req.CheckBounds),
		campaign.WithProgress(func(p campaign.Progress) {
			st := j.setStatus(func(s *api.JobStatus) { s.Progress = apiProgress(p) })
			j.events.append(api.EventProgress, st)
		}),
	}
	if req.Retries > 0 {
		setters = append(setters, campaign.WithRetryPolicy(campaign.RetryPolicy{
			MaxAttempts: req.Retries + 1,
			Backoff:     time.Duration(req.RetryBackoffMS) * time.Millisecond,
			Seed:        req.Seed,
		}))
	}
	if req.VariantDeadlineMS > 0 {
		setters = append(setters, campaign.WithVariantDeadline(time.Duration(req.VariantDeadlineMS)*time.Millisecond))
	}
	if req.Adaptive != nil {
		setters = append(setters, campaign.WithAdaptive(launcher.Plan{
			MinReps:    req.Adaptive.MinReps,
			MaxReps:    req.Adaptive.MaxReps,
			TargetRCIW: req.Adaptive.TargetRCIW,
			StableRuns: req.Adaptive.StableRuns,
		}))
	}
	return campaign.NewOptions(setters...)
}

// apiProgress maps the engine's progress snapshot onto the wire shape.
func apiProgress(p campaign.Progress) api.Progress {
	return api.Progress{
		Done:       p.Done,
		Emitted:    p.Emitted,
		Generating: p.Generating,
		CacheHits:  p.CacheHits,
		Failed:     p.Failed,
		Launches:   p.Done - p.CacheHits,
	}
}

// finalProgress derives the settled progress block from the result.
func finalProgress(res *campaign.Result) api.Progress {
	return api.Progress{
		Done:      len(res.Results),
		Emitted:   res.Emitted,
		CacheHits: res.CacheHits,
		Failed:    res.Failures,
		Launches:  res.Launches,
		Retries:   res.Retries,
	}
}

// apiError maps a campaign error onto the wire taxonomy: setup failures
// and empty sweeps are the client's spec problem, everything else is a
// campaign failure.
func apiError(err error) *api.Error {
	code := api.CodeCampaignFailed
	var se *campaign.SetupError
	if errors.As(err, &se) || errors.Is(err, campaign.ErrNoVariants) {
		code = api.CodeBadRequest
	}
	return &api.Error{SchemaVersion: api.SchemaVersion, Code: code, Message: err.Error()}
}

// buildResult maps the engine result onto the wire document. The Campaign
// section is a pure function of spec and options (serving facts stay in
// Serving), which is what makes identical submissions byte-comparable.
func buildResult(res *campaign.Result, err error) api.JobResult {
	emitted := res.Emitted
	out := api.JobResult{
		SchemaVersion: api.SchemaVersion,
		Serving: &api.ServingStats{
			Launches:     res.Launches,
			CacheHits:    res.CacheHits,
			Failures:     res.Failures,
			Retries:      res.Retries,
			Quarantined:  res.Quarantined,
			KeyErrors:    res.KeyErrors,
			RepsSaved:    res.RepsSaved,
			RepsTopUp:    res.RepsTopUp,
			RepsExecuted: res.RepsExecuted,
		},
		Campaign: &api.CampaignResult{Emitted: emitted, Variants: []api.VariantResult{}},
	}
	if emitted > 0 {
		out.Serving.CacheHitRatio = float64(res.CacheHits) / float64(emitted)
	}
	if err != nil && res.Launches == 0 && res.CacheHits == 0 && len(res.Results) == 0 {
		// Setup failures have no campaign payload worth comparing.
		out.Campaign = nil
	}
	if out.Campaign == nil {
		return out
	}
	for _, vr := range res.Results {
		v := api.VariantResult{
			Index:            vr.Index,
			Name:             vr.Name,
			StaticBoundValue: vr.StaticBound,
			Stability: api.Stability{
				N: vr.Stability.N, Mean: vr.Stability.Mean,
				CV: vr.Stability.CV, RCIW: vr.Stability.RCIW,
			},
		}
		if vr.Measurement != nil {
			v.Value = vr.Measurement.Value
			v.Unit = vr.Measurement.Unit.String()
			v.ValuePerElement = vr.Measurement.ValuePerElement
			v.Iterations = int64(vr.Measurement.Iterations)
			if a := vr.Measurement.Adaptive; a != nil {
				v.Stability.TargetRCIW = a.Plan.TargetRCIW
				v.Stability.MissedTarget = a.RCIW > a.Plan.TargetRCIW
				v.Stability.Reps = a.Reps
				v.Stability.StopReason = a.StopReason
			}
		}
		if vr.Err != nil {
			v.Error = vr.Err.Error()
		}
		out.Campaign.Variants = append(out.Campaign.Variants, v)
	}
	return out
}

// Drain performs the SIGTERM protocol: stop admitting, reject every
// queued job (terminal, ledgered), cancel running jobs (interrupted, NOT
// ledgered as terminal — they resume cache-warm on restart), and wait for
// the worker pool to exit. ctx bounds the wait.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	rejected := d.queue
	d.queue = nil
	d.jobsQueued.Set(0)
	var cancels []context.CancelFunc
	for _, j := range d.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	d.cond.Broadcast()
	d.mu.Unlock()

	for _, j := range rejected {
		status := j.setStatus(func(s *api.JobStatus) {
			s.State = api.StateRejected
			s.FinishedUnixMS = telemetry.Now().UnixMilli()
			s.Error = &api.Error{SchemaVersion: api.SchemaVersion, Code: api.CodeDraining,
				Message: "server drained before the job started; resubmit"}
		})
		d.jobsRejected.Inc()
		d.release(status.Tenant)
		if err := d.store.append(storeRecord{Kind: "end", Job: status}); err != nil {
			d.storeErrors.Inc()
		}
		j.events.append(api.EventEnd, status)
		j.events.close()
	}
	for _, cancel := range cancels {
		cancel()
	}

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// Close releases the ledger and stops idle workers. Call Drain first for
// orderly shutdown; Close alone abandons the queue in memory.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
	return d.store.close()
}
