package analytic

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/cpu"
	"microtools/internal/isa"
	"microtools/internal/machine"
)

type fixedMem struct{ lat int64 }

func (m fixedMem) Load(_ int, _ uint64, _ int, issue int64) int64  { return issue + m.lat }
func (m fixedMem) Store(_ int, _ uint64, _ int, issue int64) int64 { return issue + 1 }

func loadKernel(u int) string {
	var b strings.Builder
	b.WriteString(".L0:\n")
	for c := 0; c < u; c++ {
		fmt.Fprintf(&b, "movaps %d(%%rsi), %%xmm%d\n", 16*c, c%8)
	}
	fmt.Fprintf(&b, "add $%d, %%rsi\n", 16*u)
	fmt.Fprintf(&b, "sub $%d, %%rdi\n", 4*u)
	b.WriteString("jge .L0\nret\n")
	return b.String()
}

func chainKernel(n int) string {
	var b strings.Builder
	b.WriteString(".L0:\n")
	for i := 0; i < n; i++ {
		b.WriteString("addsd %xmm1, %xmm1\n")
	}
	b.WriteString("sub $1, %rdi\njge .L0\nret\n")
	return b.String()
}

func measure(t *testing.T, arch *isa.Arch, src string, iters int64, elemsPerIter int) float64 {
	t.Helper()
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	var rf isa.RegFile
	rf.Set(isa.RDI, uint64(iters*int64(elemsPerIter))-1)
	rf.Set(isa.RSI, 0x100000)
	core := cpu.NewCore(0, arch, fixedMem{lat: 4})
	if err := core.Reset(p, &rf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Step(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	return float64(core.Result().Cycles) / float64(iters)
}

func estimate(t *testing.T, arch *isa.Arch, src string) Estimate {
	t.Helper()
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	e, err := EstimateLoop(p, arch, L1(arch))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAnalyticMatchesEventDriven cross-validates the two models on
// L1-resident kernels: within 35% across kernel shapes.
func TestAnalyticMatchesEventDriven(t *testing.T) {
	arch := isa.Nehalem()
	cases := []struct {
		name         string
		src          string
		elemsPerIter int
	}{
		{"load-u1", loadKernel(1), 4},
		{"load-u4", loadKernel(4), 16},
		{"load-u8", loadKernel(8), 32},
		{"chain-4", chainKernel(4), 1},
		{"chain-8", chainKernel(8), 1},
	}
	for _, c := range cases {
		measured := measure(t, arch, c.src, 2000, c.elemsPerIter)
		est := estimate(t, arch, c.src)
		ratio := est.CyclesPerIter / measured
		if ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s: analytic %.2f vs event-driven %.2f (ratio %.2f)",
				c.name, est.CyclesPerIter, measured, ratio)
		}
	}
}

func TestBottleneckClassification(t *testing.T) {
	arch := isa.Nehalem()
	// Dependent FP chain: recurrence-bound.
	chain := estimate(t, arch, chainKernel(8))
	if chain.Bottleneck() != "recurrence" {
		t.Errorf("chain kernel bottleneck = %s (%+v)", chain.Bottleneck(), chain)
	}
	if chain.Recurrence != float64(8*arch.FPAddLat) {
		t.Errorf("chain recurrence = %.1f, want %d", chain.Recurrence, 8*arch.FPAddLat)
	}
	// 8 loads: memory/port bound at 1 load per cycle.
	loads := estimate(t, arch, loadKernel(8))
	if loads.CyclesPerIter < 7.5 || loads.CyclesPerIter > 9.5 {
		t.Errorf("8-load kernel = %.2f cycles/iter, want ~8 (port bound)", loads.CyclesPerIter)
	}
}

func TestSandyBridgeDoubleLoadBound(t *testing.T) {
	nhm := estimate(t, isa.Nehalem(), loadKernel(8))
	snb := estimate(t, isa.SandyBridge(), loadKernel(8))
	if snb.CyclesPerIter >= nhm.CyclesPerIter {
		t.Errorf("SNB estimate %.2f not below NHM %.2f", snb.CyclesPerIter, nhm.CyclesPerIter)
	}
}

func TestNoLoopError(t *testing.T) {
	p, err := asm.ParseOne("nop\nret", "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateLoop(p, isa.Nehalem(), L1(isa.Nehalem())); err == nil {
		t.Error("expected error for loop-free program")
	}
}

// TestMemoryBoundDominates: with a low sustainable load rate (RAM-like),
// the memory bound takes over.
func TestMemoryBoundDominates(t *testing.T) {
	p, err := asm.ParseOne(loadKernel(8), "k")
	if err != nil {
		t.Fatal(err)
	}
	ram := MemParams{LoadLatency: 150, LoadsPerCycle: 0.2, StoresPerCycle: 0.2}
	e, err := EstimateLoop(p, isa.Nehalem(), ram)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bottleneck() != "memory" || e.CyclesPerIter != 40 {
		t.Errorf("RAM estimate = %+v", e)
	}
}

// TestForLevelOrdering: derived per-level parameters slow down
// monotonically down the hierarchy and roughly predict the event-driven
// RAM behaviour.
func TestForLevelOrdering(t *testing.T) {
	m, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.ParseOne(loadKernel(8), "k")
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, level := range []string{"L1", "L2", "L3", "RAM"} {
		mp, err := ForLevel(m, level, 16)
		if err != nil {
			t.Fatal(err)
		}
		e, err := EstimateLoop(prog, m.Arch, mp)
		if err != nil {
			t.Fatal(err)
		}
		if e.CyclesPerIter < prev {
			t.Errorf("%s estimate %.2f below the previous level's %.2f", level, e.CyclesPerIter, prev)
		}
		prev = e.CyclesPerIter
	}
	// RAM estimate in the right decade: the measured full-stack value is
	// ~5.5 cycles/instruction x 8 = ~44 cycles/iteration.
	ram, _ := ForLevel(m, "RAM", 16)
	e, _ := EstimateLoop(prog, m.Arch, ram)
	if e.CyclesPerIter < 15 || e.CyclesPerIter > 90 {
		t.Errorf("RAM estimate %.1f cycles/iter outside the plausible band", e.CyclesPerIter)
	}
	if _, err := ForLevel(m, "L4", 16); err == nil {
		t.Error("unknown level accepted")
	}
}
