// Package analytic estimates the steady-state cost of a kernel loop
// without event-driven simulation, in the style of static pipeline
// analyzers: cycles per iteration is the maximum of four bounds —
// frontend issue bandwidth, per-port pressure, the longest loop-carried
// dependence recurrence, and memory throughput.
//
// The estimator serves two purposes in the reproduction: a fast screening
// mode for large variant sets (MicroCreator can generate thousands), and an
// ablation baseline quantifying what the event-driven model adds
// (DESIGN.md, BenchmarkAblationAnalyticVsEventDriven).
package analytic

import (
	"fmt"
	"math"

	"microtools/internal/isa"
	"microtools/internal/machine"
)

// MemParams abstracts the memory level the kernel's working set resides in.
type MemParams struct {
	// LoadLatency is the effective load-to-use latency in core cycles.
	LoadLatency int
	// LoadsPerCycle / StoresPerCycle are sustainable throughputs at this
	// level (already accounting for line-fill bandwidth).
	LoadsPerCycle  float64
	StoresPerCycle float64
}

// L1 returns the parameters of an L1-resident working set.
func L1(arch *isa.Arch) MemParams {
	loads := 1.0
	if arch.TwoLoadPorts {
		loads = 2.0
	}
	return MemParams{LoadLatency: 4, LoadsPerCycle: loads, StoresPerCycle: 1.0}
}

// ForLevel derives MemParams for a working set resident at the named level
// ("L1", "L2", "L3", "RAM") of a machine model: the effective load latency
// is the level's hit latency (converted to core cycles for uncore levels),
// and the sustainable throughputs come from the level's service bandwidth
// divided across accessWidth-byte accesses — assuming the streaming access
// patterns MicroCreator generates (prefetch-covered, line-granular
// bandwidth).
func ForLevel(m *machine.Machine, level string, accessWidth int) (MemParams, error) {
	if accessWidth <= 0 {
		accessWidth = 4
	}
	h := m.Hierarchy
	ratio := h.CoreClockRatio
	line := float64(h.L1.LineSize)
	perLine := line / float64(accessWidth)
	base := L1(m.Arch)
	switch level {
	case "L1":
		base.LoadLatency = h.L1.Latency
		return base, nil
	case "L2":
		tp := float64(h.L2.ThroughputCycles)
		if tp <= 0 {
			tp = 1
		}
		return MemParams{
			LoadLatency:    h.L2.Latency,
			LoadsPerCycle:  math.Min(base.LoadsPerCycle, perLine/tp),
			StoresPerCycle: math.Min(base.StoresPerCycle, perLine/tp),
		}, nil
	case "L3":
		tp := float64(h.L3.ThroughputCycles) * ratio
		if tp <= 0 {
			tp = 1
		}
		return MemParams{
			LoadLatency:    int(math.Ceil(float64(h.L3.Latency) * ratio)),
			LoadsPerCycle:  math.Min(base.LoadsPerCycle, perLine/tp),
			StoresPerCycle: math.Min(base.StoresPerCycle, perLine/tp),
		}, nil
	case "RAM":
		lat := math.Ceil(float64(h.Mem.Latency) * ratio)
		svc := line / h.Mem.ChannelBytesPerCycle * ratio
		// A single core is bounded by its outstanding fills over the
		// round trip, or the channel service rate, whichever is tighter.
		rate := perLine / svc * float64(h.Mem.Channels)
		if o := h.PrefetchOutstanding; o > 0 {
			if r := float64(o) / (lat + svc) * perLine; r < rate {
				rate = r
			}
		}
		return MemParams{
			LoadLatency:    int(lat),
			LoadsPerCycle:  math.Min(base.LoadsPerCycle, rate),
			StoresPerCycle: math.Min(base.StoresPerCycle, rate/2), // RFO doubles traffic
		}, nil
	}
	return MemParams{}, fmt.Errorf("analytic: unknown level %q (want L1|L2|L3|RAM)", level)
}

// Estimate is the analytic result.
type Estimate struct {
	CyclesPerIter float64
	// Bounds breakdown (the maximum is CyclesPerIter).
	Frontend   float64
	Ports      float64
	Recurrence float64
	Memory     float64
	// Loop is the [start, end] instruction index range analyzed.
	LoopStart, LoopEnd int
}

// Bottleneck names the binding bound.
func (e Estimate) Bottleneck() string {
	switch e.CyclesPerIter {
	case e.Memory:
		return "memory"
	case e.Recurrence:
		return "recurrence"
	case e.Ports:
		return "ports"
	default:
		return "frontend"
	}
}

// findLoop locates the dominant loop: the last backward conditional branch
// and its target.
func findLoop(p *isa.Program) (start, end int, err error) {
	for i := len(p.Insts) - 1; i >= 0; i-- {
		in := &p.Insts[i]
		if in.Op.IsCondBranch() && in.Target >= 0 && in.Target <= i {
			return in.Target, i, nil
		}
	}
	return 0, 0, fmt.Errorf("analytic: program %q has no backward loop", p.Name)
}

// EstimateLoop analyzes the dominant loop of the program.
func EstimateLoop(p *isa.Program, arch *isa.Arch, mem MemParams) (Estimate, error) {
	start, end, err := findLoop(p)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{LoopStart: start, LoopEnd: end}

	// --- frontend bound -------------------------------------------------
	slots := 0
	var uopsBuf []isa.Uop
	var flexUops []isa.PortMask
	portPressure := [isa.NumPorts]float64{}
	loads, stores := 0, 0
	for i := start; i <= end; i++ {
		in := &p.Insts[i]
		uopsBuf, err = arch.Decode(in, uopsBuf[:0])
		if err != nil {
			return Estimate{}, err
		}
		if in.IsLoad() {
			loads++
		}
		if in.IsStore() {
			stores++
		}
		for _, u := range uopsBuf {
			if !u.Fused {
				slots++
			}
			if u.Ports.Count() == 0 {
				return Estimate{}, fmt.Errorf("analytic: µop with no ports in %s", in)
			}
			flexUops = append(flexUops, u.Ports)
		}
	}
	// Port pressure by water-filling: single-port µops first, then each
	// flexible µop poured onto its least-loaded allowed ports (the limit
	// of an ideally balanced scheduler).
	sortByChoices(flexUops)
	for _, mask := range flexUops {
		waterFill(&portPressure, mask, 1.0)
	}
	est.Frontend = float64(slots) / float64(arch.IssueWidth)
	if slots > arch.LSDSize {
		est.Frontend += 1 + float64(arch.TakenBranchBubble)
	}

	// --- port bound --------------------------------------------------------
	for _, pr := range portPressure {
		if pr > est.Ports {
			est.Ports = pr
		}
	}

	// --- recurrence bound ----------------------------------------------------
	// One symbolic pass: dist[r] is the completion time of the latest write
	// to r relative to iteration start. After the pass, dist[r] for a
	// register that is loop-carried (read before written, including
	// read-modify destinations) is the per-iteration increment of its chain.
	var dist [isa.NumRegs]float64
	var written [isa.NumRegs]bool
	var carried [isa.NumRegs]bool
	flagDist := 0.0
	for i := start; i <= end; i++ {
		in := &p.Insts[i]
		uopsBuf, _ = arch.Decode(in, uopsBuf[:0])
		ready := 0.0
		consider := func(r isa.Reg) {
			if r == isa.NoReg {
				return
			}
			if !written[r] {
				carried[r] = true
			}
			if dist[r] > ready {
				ready = dist[r]
			}
		}
		if m, _, ok := in.MemOperand(); ok {
			consider(m.Base)
			consider(m.Index)
		}
		for oi := 0; oi < in.NOps; oi++ {
			o := in.Operand(oi)
			if o.Kind != isa.RegOperand {
				continue
			}
			if oi == in.NOps-1 && in.Op.IsMove() {
				continue
			}
			consider(o.Reg)
		}
		if in.Op.ReadsFlags() && flagDist > ready {
			ready = flagDist
		}
		lat := 0
		for _, u := range uopsBuf {
			if u.Role == isa.RoleLoad {
				lat += mem.LoadLatency
			} else {
				lat += u.Lat
			}
		}
		done := ready + float64(lat)
		if dst := in.Dst(); in.NOps > 0 && dst.Kind == isa.RegOperand {
			dist[dst.Reg] = done
			written[dst.Reg] = true
		}
		if in.Op.WritesFlags() {
			flagDist = done
		}
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if carried[r] && written[r] && dist[r] > est.Recurrence {
			est.Recurrence = dist[r]
		}
	}

	// --- memory bound -----------------------------------------------------------
	if mem.LoadsPerCycle > 0 && loads > 0 {
		if b := float64(loads) / mem.LoadsPerCycle; b > est.Memory {
			est.Memory = b
		}
	}
	if mem.StoresPerCycle > 0 && stores > 0 {
		if b := float64(stores) / mem.StoresPerCycle; b > est.Memory {
			est.Memory = b
		}
	}

	est.CyclesPerIter = est.Frontend
	for _, b := range []float64{est.Ports, est.Recurrence, est.Memory} {
		if b > est.CyclesPerIter {
			est.CyclesPerIter = b
		}
	}
	return est, nil
}

// sortByChoices orders masks by ascending port-choice count (insertion
// sort; loop bodies are small).
func sortByChoices(ms []isa.PortMask) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Count() < ms[j-1].Count(); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// waterFill distributes amount of work over the allowed ports so the
// maximum level rises as little as possible: it repeatedly tops up the
// least-loaded allowed ports to the next level.
func waterFill(load *[isa.NumPorts]float64, mask isa.PortMask, amount float64) {
	var ports []isa.Port
	for p := isa.Port(0); p < isa.NumPorts; p++ {
		if mask.Has(p) {
			ports = append(ports, p)
		}
	}
	for amount > 1e-12 {
		// Find the minimum level and the next-higher level among allowed
		// ports.
		minLevel := load[ports[0]]
		for _, p := range ports[1:] {
			if load[p] < minLevel {
				minLevel = load[p]
			}
		}
		var atMin []isa.Port
		next := -1.0
		for _, p := range ports {
			if load[p] <= minLevel+1e-12 {
				atMin = append(atMin, p)
			} else if next < 0 || load[p] < next {
				next = load[p]
			}
		}
		var step float64
		if next < 0 {
			step = amount / float64(len(atMin))
		} else {
			step = next - minLevel
			if need := amount / float64(len(atMin)); need < step {
				step = need
			}
		}
		for _, p := range atMin {
			load[p] += step
		}
		amount -= step * float64(len(atMin))
	}
}
