// Package verify is MicroTools' static verification layer: it checks every
// generated benchmark variant — both the lowered IR kernel after the pass
// pipeline and the emitted assembly — against a catalog of well-formedness
// rules, and reports structured, JSON-encodable diagnostics instead of
// silently measuring garbage programs.
//
// The rule catalog:
//
//	V000  parse        the input could not be decoded at all
//	V001  operand-form ISA operand-form legality (count and kind per opcode,
//	                   cross-checked against internal/isa's executable subset)
//	V002  def-use      register read (or memory base used) before any write
//	V003  reg-conflict physical-register conflicts after rotation/allocation
//	V004  alignment    aligned packed accesses with misaligned offsets or
//	                   strides
//	V005  induction    induction-variable consistency across unrolled copies
//	V006  loop         branch-target validity, induction-update presence and
//	                   RET termination in emitted asm
//	V007  pressure     register pressure against the 16+16 register file
//	V008  expansion    variant count vs. the product of the spec's choice
//	                   lists
//	V009  dead-write   register writes no instruction can read (liveness,
//	                   via internal/dataflow; memory-accessing producers
//	                   are exempt — the access is the workload)
//	V010  self-move    register-to-register moves onto the same register
//	V011  recurrence   info-level report of loop-carried dependence
//	                   cycles and their lengths (Options.Recurrences)
//
// Entry points: Kernel verifies a lowered ir.Kernel, Asm / Program verify
// emitted assembly, ExpectedVariants + Expansion implement the expansion
// accounting. The pass pipeline runs all of them as its final
// verify-variants pass; `microtools vet` and `microcreator -verify` expose
// them from the command line.
package verify

import (
	"encoding/json"
	"fmt"
	"io"
)

// Rule identifiers, stable across releases (suppression and golden tests
// key on them).
const (
	RuleParse            = "V000"
	RuleOperandForm      = "V001"
	RuleUseBeforeDef     = "V002"
	RuleRegisterConflict = "V003"
	RuleAlignment        = "V004"
	RuleInduction        = "V005"
	RuleLoop             = "V006"
	RulePressure         = "V007"
	RuleExpansion        = "V008"
	RuleDeadWrite        = "V009"
	RuleSelfMove         = "V010"
	RuleRecurrence       = "V011"
)

// Severity grades a diagnostic.
type Severity int

const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SeverityInfo
	case "warning":
		*s = SeverityWarning
	case "error":
		*s = SeverityError
	default:
		return fmt.Errorf("verify: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one verifier finding.
type Diagnostic struct {
	// Rule is the catalog identifier (V001, ...).
	Rule string `json:"rule"`
	// Severity grades the finding; only errors fail enforcement.
	Severity Severity `json:"severity"`
	// Kernel names the variant (or function) the finding is about.
	Kernel string `json:"kernel,omitempty"`
	// Instr is the instruction index within the kernel body or program
	// (-1 for kernel-level findings).
	Instr int `json:"instr"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// String renders the diagnostic as one line.
func (d Diagnostic) String() string {
	where := d.Kernel
	if d.Instr >= 0 {
		where = fmt.Sprintf("%s#%d", d.Kernel, d.Instr)
	}
	return fmt.Sprintf("%s %s %s: %s", d.Rule, d.Severity, where, d.Message)
}

// Diagnostics is an ordered finding list.
type Diagnostics []Diagnostic

// Errors returns only the error-severity findings.
func (ds Diagnostics) Errors() Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any finding is error-severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Summary renders a one-line count, e.g. "2 errors, 1 warning".
func (ds Diagnostics) Summary() string {
	var errs, warns, infos int
	for _, d := range ds {
		switch d.Severity {
		case SeverityError:
			errs++
		case SeverityWarning:
			warns++
		default:
			infos++
		}
	}
	plural := func(n int, what string) string {
		if n == 1 {
			return fmt.Sprintf("%d %s", n, what)
		}
		return fmt.Sprintf("%d %ss", n, what)
	}
	out := plural(errs, "error") + ", " + plural(warns, "warning")
	if infos > 0 {
		out += ", " + plural(infos, "info")
	}
	return out
}

// Err returns nil when no error-severity findings exist, and otherwise an
// error quoting the first one plus the overall counts.
func (ds Diagnostics) Err() error {
	errs := ds.Errors()
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %s (first: %s)", ds.Summary(), errs[0])
}

// WriteText writes one line per diagnostic.
func (ds Diagnostics) WriteText(w io.Writer) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the findings as an indented JSON array.
func (ds Diagnostics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if ds == nil {
		ds = Diagnostics{}
	}
	return enc.Encode(ds)
}

// Mode selects how the pipeline's verify-variants pass treats findings.
type Mode int

const (
	// ModeEnforce (the default) fails the pipeline when any error-severity
	// diagnostic is found.
	ModeEnforce Mode = iota
	// ModeCollect records diagnostics without failing (vet mode).
	ModeCollect
	// ModeOff skips verification entirely (the opt-out gate).
	ModeOff
)

// Options tunes a verification run.
type Options struct {
	// Suppress lists rule IDs (e.g. "V004") whose findings are dropped.
	Suppress []string
	// GPRFile / XMMFile bound the register-pressure rule; 0 means the
	// x86-64 defaults of 16 each.
	GPRFile int
	XMMFile int
	// Recurrences additionally emits the V011 info findings describing
	// each loop-carried dependence cycle (off by default: every healthy
	// loop kernel has at least its induction recurrence, so the findings
	// are informative rather than actionable).
	Recurrences bool
}

func (o Options) suppressed(rule string) bool {
	for _, r := range o.Suppress {
		if r == rule {
			return true
		}
	}
	return false
}

func (o Options) gprFile() int {
	if o.GPRFile > 0 {
		return o.GPRFile
	}
	return 16
}

func (o Options) xmmFile() int {
	if o.XMMFile > 0 {
		return o.XMMFile
	}
	return 16
}

// addFunc accumulates diagnostics inside the rule implementations.
type addFunc func(rule string, sev Severity, instr int, format string, args ...any)

// collector builds the shared add closure for a variant name.
func collector(name string, opt Options, ds *Diagnostics) addFunc {
	return func(rule string, sev Severity, instr int, format string, args ...any) {
		if opt.suppressed(rule) {
			return
		}
		*ds = append(*ds, Diagnostic{
			Rule:     rule,
			Severity: sev,
			Kernel:   name,
			Instr:    instr,
			Message:  fmt.Sprintf(format, args...),
		})
	}
}

// mod returns the non-negative remainder of a by m.
func mod(a, m int64) int64 {
	if m <= 0 {
		return 0
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
