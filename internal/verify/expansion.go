package verify

import (
	"fmt"

	"microtools/internal/ir"
)

// expansionCap bounds the arithmetic of ExpectedVariants; a spec whose
// statically-predicted variant count exceeds it is reported as unknown
// (the pipeline's own expansionLimit rejects such specs anyway).
const expansionCap = int64(1) << 40

// maxRepeatCombos bounds the repeat-range enumeration.
const maxRepeatCombos = 1 << 16

// ExpectedVariants computes the number of variants the pass pipeline should
// produce from a spec-level kernel: the product of every choice list the
// expansion passes consume, summed over the repeat and unroll ranges.
// moveCount maps abstract move semantics to their concrete candidate count
// (the select-instructions pass's own expansion; pass nil when unavailable).
// The second result is false when the count is not statically predictable:
// random selection, a MaxVariants cap, an already-lowered kernel, or
// arithmetic beyond the cap.
//
// Derivation, following pipeline order: each instruction i contributes a
// per-copy factor f_i = moveCandidates × Π immediate-choice lengths ×
// 2^[swap-before applicable]; a repeat count c_i raises it to f_i^c_i. The
// unroll pass multiplies the set by one variant per factor u, and the
// swap-after pass doubles per unrolled copy of each swappable instruction:
// 2^(u·c_i). Stride choice lists multiply the whole sum.
func ExpectedVariants(k *ir.Kernel, moveCount func(*ir.MoveSemantics) (int, error)) (int64, bool) {
	if k.RandomCount > 0 || k.MaxVariants > 0 || k.Unroll != 0 {
		return 0, false
	}
	if k.UnrollRange.Count() == 0 {
		return 0, false
	}
	type instInfo struct {
		f         int64
		swapAfter bool
		rep       ir.Range
	}
	infos := make([]instInfo, 0, len(k.Body))
	combos := int64(1)
	for i := range k.Body {
		in := &k.Body[i]
		f := int64(1)
		if in.Move != nil {
			if moveCount == nil {
				return 0, false
			}
			n, err := moveCount(in.Move)
			if err != nil || n <= 0 {
				return 0, false
			}
			f = int64(n)
		}
		for _, o := range in.Operands {
			if o.Kind == ir.ImmOperand && len(o.ImmChoices) > 0 {
				f *= int64(len(o.ImmChoices))
			}
		}
		swappable := len(in.Operands) == 2 &&
			((in.Operands[0].Kind == ir.MemOperand && in.Operands[1].Kind == ir.RegOperand) ||
				(in.Operands[0].Kind == ir.RegOperand && in.Operands[1].Kind == ir.MemOperand))
		if in.SwapBeforeUnroll && swappable {
			f *= 2
		}
		rep := in.Repeat
		if rep.Min < 1 {
			rep = ir.Range{Min: 1, Max: 1}
		}
		if rep.Count() == 0 {
			return 0, false
		}
		combos *= int64(rep.Count())
		if combos > maxRepeatCombos {
			return 0, false
		}
		infos = append(infos, instInfo{f: f, swapAfter: in.SwapAfterUnroll && swappable, rep: rep})
	}
	stride := int64(1)
	for _, ind := range k.Inductions {
		if n := len(ind.IncrementChoices); n > 0 {
			stride *= int64(n)
		}
	}

	total := int64(0)
	counts := make([]int, len(infos))
	for i := range infos {
		counts[i] = infos[i].rep.Min
	}
	for {
		fac := int64(1)
		ok := true
		for i := range infos {
			fac, ok = mulCap(fac, powCap(infos[i].f, counts[i]))
			if !ok {
				return 0, false
			}
		}
		sum := int64(0)
		for u := k.UnrollRange.Min; u <= k.UnrollRange.Max; u++ {
			t := int64(1)
			for i := range infos {
				if !infos[i].swapAfter {
					continue
				}
				t, ok = mulCap(t, powCap(2, u*counts[i]))
				if !ok {
					return 0, false
				}
			}
			sum += t
			if sum > expansionCap {
				return 0, false
			}
		}
		part, ok := mulCap(fac, sum)
		if !ok {
			return 0, false
		}
		total += part
		if total > expansionCap {
			return 0, false
		}
		// Advance the repeat-count odometer.
		i := 0
		for ; i < len(counts); i++ {
			counts[i]++
			if counts[i] <= infos[i].rep.Max {
				break
			}
			counts[i] = infos[i].rep.Min
		}
		if i == len(counts) {
			break
		}
	}
	return mustMul(total, stride)
}

// Expansion is rule V008: compare the produced variant count for one kernel
// family against the statically-expected one. More variants than the choice
// lists allow (or none at all) is an error; fewer is a warning, because the
// prologue pass legitimately prunes content-identical variants.
func Expansion(base string, got int, want int64, opt Options) Diagnostics {
	if opt.suppressed(RuleExpansion) {
		return nil
	}
	d := Diagnostic{Rule: RuleExpansion, Kernel: base, Instr: -1}
	switch {
	case int64(got) == want:
		return nil
	case got == 0:
		d.Severity = SeverityError
		d.Message = fmt.Sprintf("produced no variants; the choice lists predict %d", want)
	case int64(got) > want:
		d.Severity = SeverityError
		d.Message = fmt.Sprintf("produced %d variants, more than the %d the choice lists allow", got, want)
	default:
		d.Severity = SeverityWarning
		d.Message = fmt.Sprintf("produced %d of %d predicted variants (duplicates pruned or variants dropped)", got, want)
	}
	return Diagnostics{d}
}

func mulCap(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || p < 0 || p > expansionCap {
		return 0, false
	}
	return p, true
}

func mustMul(a, b int64) (int64, bool) {
	return mulCap(a, b)
}

// powCap returns base^exp capped; a capped result poisons the caller's
// mulCap chain by exceeding expansionCap.
func powCap(base int64, exp int) int64 {
	out := int64(1)
	for i := 0; i < exp; i++ {
		var ok bool
		out, ok = mulCap(out, base)
		if !ok {
			return expansionCap + 1
		}
	}
	return out
}
