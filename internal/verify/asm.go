package verify

import (
	"strings"

	"microtools/internal/asm"
	"microtools/internal/isa"
)

// Asm parses emitted assembly text and verifies every function it defines.
// Parse failures become diagnostics rather than errors: an undefined or
// unresolved branch label is a V006 loop-structure finding, anything else a
// V000 parse finding.
func Asm(src, name string, opt Options) Diagnostics {
	_, ds := AsmProgram(src, name, opt)
	return ds
}

// AsmProgram is Asm, additionally returning the decoded program (nil when
// parsing failed or the source defines several functions) so callers can
// reuse the decode work — the launcher accepts the same decoded form.
func AsmProgram(src, name string, opt Options) (*isa.Program, Diagnostics) {
	progs, err := asm.ParseString(src, name)
	if err != nil {
		rule := RuleParse
		msg := err.Error()
		if strings.Contains(msg, "undefined label") || strings.Contains(msg, "unresolved branch") ||
			strings.Contains(msg, "no ret") {
			rule = RuleLoop
		}
		if opt.suppressed(rule) {
			return nil, nil
		}
		return nil, Diagnostics{{Rule: rule, Severity: SeverityError, Kernel: name, Instr: -1, Message: msg}}
	}
	var ds Diagnostics
	for _, p := range progs {
		ds = append(ds, Program(p, p.Name, opt)...)
	}
	if len(progs) == 1 {
		return progs[0], ds
	}
	return nil, ds
}

// Program runs the asm-level rules over a decoded program: operand-form
// legality (V001), memory bases defined before use (V002), alignment of
// packed accesses and their strides (V004), loop structure — resolved
// branch targets, a flag-setting induction update inside every loop, and a
// RET terminator (V006) — plus, on structurally sound programs, the
// dataflow-backed rules: dead register writes (V009), redundant self moves
// (V010) and the optional loop-carried recurrence report (V011).
func Program(p *isa.Program, name string, opt Options) Diagnostics {
	if name == "" {
		name = p.Name
	}
	var ds Diagnostics
	add := collector(name, opt, &ds)
	if len(p.Insts) == 0 {
		add(RuleParse, SeverityError, -1, "program is empty")
		return ds
	}
	// Fixed-size register sets, not maps: this function runs once per
	// generated variant and per-variant map allocations dominate otherwise.
	var written [isa.NumRegs]bool
	written[isa.RSP], written[isa.RBP] = true, true
	for _, r := range isa.ArgRegs {
		written[r] = true
	}
	// alignedBases collects base registers of alignment-requiring accesses
	// (without index registers) for the stride check below; 0 = unused.
	var alignedBases [isa.NumRegs]int64
	hasRet := false
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op == isa.RET {
			hasRet = true
		}
		checkForm(in.Op, asmSignature(in), asmSignatureKnown(in), i, add)
		for j := 0; j < in.NOps; j++ {
			o := in.Operand(j)
			if o.Kind != isa.MemOperand {
				continue
			}
			for _, r := range [2]isa.Reg{o.Mem.Base, o.Mem.Index} {
				if r != isa.NoReg && r.IsGPR() && !written[r] {
					add(RuleUseBeforeDef, SeverityError, i,
						"memory operand %s uses %s before any write", o.Mem, r)
					written[r] = true // report once
				}
			}
		}
		if in.Op.RequiresAlignment() {
			if mem, _, ok := in.MemOperand(); ok {
				w := int64(in.Op.MemWidth())
				if mod(mem.Disp, w) != 0 {
					add(RuleAlignment, SeverityError, i,
						"%s accesses displacement %d, not %d-byte aligned", in.Op, mem.Disp, w)
				}
				if mem.Index == isa.NoReg && mem.Base != isa.NoReg {
					alignedBases[mem.Base] = w
				}
			}
		}
		if in.Op.IsBranch() {
			checkBranch(p, i, add)
		}
		if in.NOps > 0 {
			if d := in.Dst(); d.Kind == isa.RegOperand && d.Reg < isa.NumRegs {
				written[d.Reg] = true
			}
		}
	}
	if !hasRet {
		add(RuleLoop, SeverityError, -1, "program has no ret")
	}
	// Stride alignment: an induction update on the base of an aligned
	// access must step by a multiple of the access width, or the second
	// iteration faults on real hardware.
	for i := range p.Insts {
		in := &p.Insts[i]
		if (in.Op != isa.ADD && in.Op != isa.SUB) || in.NOps != 2 ||
			in.A.Kind != isa.ImmOperand || in.B.Kind != isa.RegOperand {
			continue
		}
		if w := alignedBases[in.B.Reg]; w != 0 && mod(in.A.Imm, w) != 0 {
			add(RuleAlignment, SeverityError, i,
				"induction update %s $%d, %s misaligns the %d-byte aligned accesses through it",
				in.Op, in.A.Imm, in.B.Reg, w)
		}
	}
	// The dataflow-backed rules need a decodable program; a structurally
	// broken one is already explained by the findings above.
	if !ds.HasErrors() {
		dataflowRules(p, opt, add)
	}
	return ds
}

// checkBranch is rule V006 for one branch instruction: the target must be
// resolved and in range, and a conditional branch needs a flag producer —
// both immediately upstream (the flags it tests) and inside the loop body it
// closes (the induction update that eventually terminates the loop).
func checkBranch(p *isa.Program, i int, add addFunc) {
	in := &p.Insts[i]
	if in.Target < 0 || in.Target >= len(p.Insts) {
		add(RuleLoop, SeverityError, i, "%s has an unresolved or out-of-range target", in.Op)
		return
	}
	if !in.Op.IsCondBranch() {
		return
	}
	flagIdx := -1
	for j := i - 1; j >= 0; j-- {
		if p.Insts[j].Op.WritesFlags() {
			flagIdx = j
			break
		}
		if p.Insts[j].Op.IsBranch() {
			break
		}
	}
	if flagIdx < 0 {
		add(RuleLoop, SeverityError, i,
			"conditional %s has no preceding flag-setting instruction", in.Op)
	}
	if in.Target <= i {
		updated := false
		for j := in.Target; j <= i; j++ {
			if p.Insts[j].Op.WritesFlags() {
				updated = true
				break
			}
		}
		if !updated {
			add(RuleLoop, SeverityError, i,
				"loop over instructions %d..%d has no induction update (no flag-writing instruction)",
				in.Target, i)
		}
	}
}

// asmSignature maps a decoded instruction's operands to a form signature.
func asmSignature(in *isa.Inst) string {
	sig := make([]byte, 0, in.NOps)
	for j := 0; j < in.NOps; j++ {
		switch o := in.Operand(j); o.Kind {
		case isa.ImmOperand:
			sig = append(sig, 'i')
		case isa.MemOperand:
			sig = append(sig, 'm')
		case isa.LabelOperand:
			sig = append(sig, 'l')
		case isa.RegOperand:
			switch {
			case o.Reg.IsXMM():
				sig = append(sig, 'x')
			case o.Reg.IsGPR():
				sig = append(sig, 'r')
			default:
				sig = append(sig, '?')
			}
		default:
			sig = append(sig, '?')
		}
	}
	return string(sig)
}

func asmSignatureKnown(in *isa.Inst) bool {
	return !strings.Contains(asmSignature(in), "?")
}
