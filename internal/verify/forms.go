package verify

import (
	"strings"
	"sync"

	"microtools/internal/isa"
)

// Operand classes, one byte per operand in AT&T order:
//
//	i  immediate
//	r  general-purpose register
//	x  XMM register
//	m  memory reference
//	l  label (branch target, asm level only)
//
// A signature string concatenates the classes, so "mx" is load-into-XMM and
// "ir" is immediate-into-GPR.

// opForms returns the legal operand signatures for op, derived from the
// executable subset in internal/isa (exec.go evaluates exactly these forms;
// isa.Program.Validate rejects some of the rest only at launch time). A nil
// return means the opcode is unknown to the table. Results are memoised:
// the check runs once per instruction of every generated variant.
func opForms(op isa.Op) []string {
	formsMu.Lock()
	forms, ok := formsCache[op]
	if !ok {
		forms = computeOpForms(op)
		formsCache[op] = forms
	}
	formsMu.Unlock()
	return forms
}

var (
	formsMu    sync.Mutex
	formsCache = map[isa.Op][]string{}
)

func computeOpForms(op isa.Op) []string {
	switch {
	case op == isa.XORPS:
		return []string{"xx", "mx"}
	case op.IsSSE() && op.IsMove():
		return []string{"mx", "xm", "xx"}
	case op.IsSSE():
		// SSE arithmetic reads memory or a register, accumulates into XMM.
		return []string{"mx", "xx"}
	case op.IsBranch():
		return []string{"l"}
	}
	switch op {
	case isa.MOV:
		// mem->GPR is deliberately absent: the timing model tracks integer
		// state in registers only (see isa.Program.Validate).
		return []string{"ir", "rr", "rm", "im"}
	case isa.LEA:
		return []string{"mr"}
	case isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.SHL, isa.CMP, isa.TEST:
		return []string{"ir", "rr"}
	case isa.IMUL:
		return []string{"ir", "rr", "irr"}
	case isa.INC, isa.DEC:
		return []string{"r"}
	case isa.NOP, isa.RET:
		return []string{""}
	}
	return nil
}

// classNames spells a signature out for messages ("mem,xmm").
func classNames(sig string) string {
	if sig == "" {
		return "no operands"
	}
	names := make([]string, len(sig))
	for i := 0; i < len(sig); i++ {
		switch sig[i] {
		case 'i':
			names[i] = "imm"
		case 'r':
			names[i] = "gpr"
		case 'x':
			names[i] = "xmm"
		case 'm':
			names[i] = "mem"
		case 'l':
			names[i] = "label"
		default:
			names[i] = "?"
		}
	}
	return strings.Join(names, ",")
}

// legalForms renders the allowed signatures for messages.
func legalForms(forms []string) string {
	out := make([]string, len(forms))
	for i, f := range forms {
		out[i] = classNames(f)
	}
	return strings.Join(out, " | ")
}

// checkForm reports a V001 diagnostic when sig is not among the legal forms
// of op.
func checkForm(op isa.Op, sig string, known bool, i int, add addFunc) {
	forms := opForms(op)
	if forms == nil {
		add(RuleOperandForm, SeverityError, i, "opcode %s has no legal operand forms in the subset", op)
		return
	}
	if !known {
		add(RuleOperandForm, SeverityError, i, "%s has an operand of unknown class", op)
		return
	}
	for _, f := range forms {
		if f == sig {
			return
		}
	}
	add(RuleOperandForm, SeverityError, i, "%s does not accept operand form (%s); legal: %s",
		op, classNames(sig), legalForms(forms))
}
