package verify_test

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"microtools/internal/core"
	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/verify"
)

// lowered builds a minimal fully-lowered, verifier-clean kernel: a movss
// load through %rsi into a rotating XMM register, with the §4.4 loop shape.
// Tests mutate the result to seed specific defects.
func lowered() *ir.Kernel {
	base := &ir.Register{Logical: "r1", Phys: isa.RSI}
	counter := &ir.Register{Logical: "r0", Phys: isa.RDI}
	return &ir.Kernel{
		BaseName: "golden", Name: "golden",
		Body: []ir.Instruction{{
			Op: "movss",
			Operands: []ir.Operand{
				{Kind: ir.MemOperand, Reg: base},
				{Kind: ir.RegOperand, Reg: &ir.Register{RotBase: "%xmm", RotRange: ir.Range{Min: 0, Max: 4}}},
			},
		}},
		Inductions: []ir.Induction{
			{Reg: base, Increment: 4, Offset: 4},
			{Reg: counter, Increment: -1, Last: true},
		},
		Branch: ir.Branch{Label: ".L0", Test: "jge"},
		Unroll: 1,
	}
}

func rules(ds verify.Diagnostics) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Rule)
	}
	return out
}

func TestCleanKernelHasNoDiagnostics(t *testing.T) {
	if ds := verify.Kernel(lowered(), verify.Options{}); len(ds) != 0 {
		t.Fatalf("clean kernel produced diagnostics: %v", ds)
	}
}

func TestUseBeforeDefMemoryBase(t *testing.T) {
	k := lowered()
	// Rebase the load onto a scratch register nothing initializes: the
	// launcher only provides the SysV argument registers.
	k.Body[0].Operands[0].Reg = &ir.Register{Logical: "r9", Phys: isa.R10}
	ds := verify.Kernel(k, verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleUseBeforeDef || ds[0].Severity != verify.SeverityError {
		t.Fatalf("want one %s error, got %v", verify.RuleUseBeforeDef, ds)
	}
	if ds[0].Instr != 0 || !strings.Contains(ds[0].Message, "memory base") {
		t.Errorf("diagnostic misplaced: %+v", ds[0])
	}
}

func TestUseBeforeDefScratchReadIsWarning(t *testing.T) {
	k := lowered()
	// add $1, %r10 without a prior write: defined in simulation (the
	// launcher zero-fills the register file) but suspect — warning only.
	k.Body = append(k.Body, ir.Instruction{
		Op: "add",
		Operands: []ir.Operand{
			{Kind: ir.ImmOperand, Imm: 1},
			{Kind: ir.RegOperand, Reg: &ir.Register{Logical: "r9", Phys: isa.R10}},
		},
	})
	ds := verify.Kernel(k, verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleUseBeforeDef || ds[0].Severity != verify.SeverityWarning {
		t.Fatalf("want one %s warning, got %v", verify.RuleUseBeforeDef, ds)
	}
	if ds.HasErrors() {
		t.Error("warning counted as error")
	}
}

func TestIllegalOperandForm(t *testing.T) {
	k := lowered()
	// mov mem -> GPR is outside the executable subset (no memory-to-GPR
	// loads; the launcher protocol never needs them).
	k.Body[0].Op = "mov"
	k.Body[0].Operands[1] = ir.Operand{Kind: ir.RegOperand, Reg: &ir.Register{Logical: "r9", Phys: isa.R10}}
	ds := verify.Kernel(k, verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleOperandForm || ds[0].Severity != verify.SeverityError {
		t.Fatalf("want one %s error, got %v", verify.RuleOperandForm, ds)
	}
}

func TestUnknownOpcodeIsOperandFormError(t *testing.T) {
	k := lowered()
	k.Body[0].Op = "vfmadd231ps"
	ds := verify.Kernel(k, verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleOperandForm {
		t.Fatalf("want one %s finding, got %v", verify.RuleOperandForm, ds)
	}
}

func TestRegisterConflict(t *testing.T) {
	k := lowered()
	// Two distinct register objects landing on the same physical XMM.
	a := &ir.Register{Logical: "x0", Phys: isa.XMM2}
	b := &ir.Register{Logical: "x1", Phys: isa.XMM2}
	k.Body = []ir.Instruction{{
		Op: "addps",
		Operands: []ir.Operand{
			{Kind: ir.RegOperand, Reg: a},
			{Kind: ir.RegOperand, Reg: b},
		},
	}}
	ds := verify.Kernel(k, verify.Options{})
	if got := rules(ds); len(got) != 1 || got[0] != verify.RuleRegisterConflict {
		t.Fatalf("want [%s], got %v", verify.RuleRegisterConflict, ds)
	}
}

func TestRotatingPoolOverlapsPinned(t *testing.T) {
	k := lowered()
	// Pin an XMM inside the rotating pool's sweep range.
	k.Body = append(k.Body, ir.Instruction{
		Op: "addps",
		Operands: []ir.Operand{
			{Kind: ir.RegOperand, Reg: &ir.Register{Logical: "acc", Phys: isa.XMM2}},
			{Kind: ir.RegOperand, Reg: &ir.Register{Logical: "acc2", Phys: isa.XMM8}},
		},
	})
	ds := verify.Kernel(k, verify.Options{})
	found := false
	for _, d := range ds {
		if d.Rule == verify.RuleRegisterConflict && strings.Contains(d.Message, "rotating pool") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rotating-pool conflict reported: %v", ds)
	}
}

func TestMisalignedAccess(t *testing.T) {
	k := lowered()
	k.Body[0].Op = "movaps"
	k.Body[0].Operands[0].Offset = 6
	k.Inductions[0].Increment = 16
	ds := verify.Kernel(k, verify.Options{})
	if got := rules(ds); len(got) != 1 || got[0] != verify.RuleAlignment {
		t.Fatalf("want [%s], got %v", verify.RuleAlignment, ds)
	}
}

func TestMisalignedStride(t *testing.T) {
	k := lowered()
	k.Body[0].Op = "movaps"
	k.Inductions[0].Increment = 12 // offset 0 is aligned, but iteration 2 faults
	ds := verify.Kernel(k, verify.Options{})
	if got := rules(ds); len(got) != 1 || got[0] != verify.RuleAlignment {
		t.Fatalf("want [%s], got %v", verify.RuleAlignment, ds)
	}
	if !strings.Contains(ds[0].Message, "stride") {
		t.Errorf("message should name the stride: %s", ds[0].Message)
	}
}

func TestInductionInconsistencyAcrossCopies(t *testing.T) {
	k := lowered()
	k.Unroll = 2
	base := k.Body[0].Operands[0].Reg
	copy1 := ir.Instruction{
		Op: "movss",
		Operands: []ir.Operand{
			{Kind: ir.MemOperand, Reg: base, Offset: 999}, // should be 4 (the per-copy offset)
			{Kind: ir.RegOperand, Reg: &ir.Register{RotBase: "%xmm", RotRange: ir.Range{Min: 0, Max: 4}, RotIdx: 1}},
		},
		Copy: 1,
	}
	k.Body = append(k.Body, copy1)
	ds := verify.Kernel(k, verify.Options{})
	if got := rules(ds); len(got) != 1 || got[0] != verify.RuleInduction {
		t.Fatalf("want [%s], got %v", verify.RuleInduction, ds)
	}
}

func TestRotationRangeExceedsFile(t *testing.T) {
	k := lowered()
	k.Body[0].Operands[1].Reg.RotRange = ir.Range{Min: 0, Max: 20}
	ds := verify.Kernel(k, verify.Options{})
	found := false
	for _, d := range ds {
		if d.Rule == verify.RulePressure {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s finding for a 20-wide rotation range: %v", verify.RulePressure, ds)
	}
}

func TestSuppressionSilencesRule(t *testing.T) {
	k := lowered()
	k.Body[0].Op = "movaps"
	k.Body[0].Operands[0].Offset = 6
	k.Inductions[0].Increment = 16
	ds := verify.Kernel(k, verify.Options{Suppress: []string{verify.RuleAlignment}})
	if len(ds) != 0 {
		t.Fatalf("suppressed rule still reported: %v", ds)
	}
}

// --- asm-level golden cases ------------------------------------------------

const goodAsm = `
    .text
    .globl golden
golden:
.L0:
    movss (%rsi), %xmm0
    add $4, %rsi
    sub $1, %rdi
    jge .L0
    ret
`

func TestAsmCleanProgram(t *testing.T) {
	if ds := verify.Asm(goodAsm, "golden", verify.Options{}); len(ds) != 0 {
		t.Fatalf("clean asm produced diagnostics: %v", ds)
	}
}

func TestAsmDanglingBranchTarget(t *testing.T) {
	src := strings.Replace(goodAsm, "jge .L0", "jge .L9", 1)
	ds := verify.Asm(src, "golden", verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleLoop || ds[0].Severity != verify.SeverityError {
		t.Fatalf("want one %s error for the dangling target, got %v", verify.RuleLoop, ds)
	}
}

func TestAsmMissingRet(t *testing.T) {
	src := strings.Replace(goodAsm, "    ret\n", "", 1)
	ds := verify.Asm(src, "golden", verify.Options{})
	found := false
	for _, d := range ds {
		if d.Rule == verify.RuleLoop && strings.Contains(d.Message, "ret") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing ret not reported: %v", ds)
	}
}

func TestAsmLoopWithoutInductionUpdate(t *testing.T) {
	src := `
golden:
.L0:
    movss (%rsi), %xmm0
    jge .L0
    ret
`
	ds := verify.Asm(src, "golden", verify.Options{})
	found := false
	for _, d := range ds {
		if d.Rule == verify.RuleLoop {
			found = true
		}
	}
	if !found {
		t.Fatalf("flagless loop not reported: %v", ds)
	}
}

func TestAsmMisalignedInductionStride(t *testing.T) {
	src := `
golden:
.L0:
    movaps (%rsi), %xmm0
    add $12, %rsi
    sub $1, %rdi
    jge .L0
    ret
`
	ds := verify.Asm(src, "golden", verify.Options{})
	if got := rules(ds); len(got) != 1 || got[0] != verify.RuleAlignment {
		t.Fatalf("want [%s], got %v", verify.RuleAlignment, ds)
	}
}

func TestAsmProgramReturnsDecodedProgram(t *testing.T) {
	p, ds := verify.AsmProgram(goodAsm, "golden", verify.Options{})
	if len(ds) != 0 {
		t.Fatalf("diagnostics on clean asm: %v", ds)
	}
	if p == nil || len(p.Insts) == 0 {
		t.Fatal("no decoded program returned")
	}
}

// --- expansion accounting ---------------------------------------------------

func TestExpansionAccounting(t *testing.T) {
	if ds := verify.Expansion("k", 10, 10, verify.Options{}); len(ds) != 0 {
		t.Errorf("exact match reported: %v", ds)
	}
	ds := verify.Expansion("k", 8, 10, verify.Options{})
	if len(ds) != 1 || ds[0].Severity != verify.SeverityWarning || ds[0].Rule != verify.RuleExpansion {
		t.Errorf("shortfall should be a %s warning (prologue dedup): %v", verify.RuleExpansion, ds)
	}
	ds = verify.Expansion("k", 12, 10, verify.Options{})
	if len(ds) != 1 || ds[0].Severity != verify.SeverityError {
		t.Errorf("surplus should be an error: %v", ds)
	}
	ds = verify.Expansion("k", 0, 10, verify.Options{})
	if len(ds) != 1 || ds[0].Severity != verify.SeverityError {
		t.Errorf("zero variants should be an error: %v", ds)
	}
}

func TestExpectedVariantsUnpredictable(t *testing.T) {
	k := lowered()
	k.UnrollRange = ir.Range{Min: 1, Max: 1}
	k.Unroll = 0
	k.RandomCount = 3
	if _, ok := verify.ExpectedVariants(k, nil); ok {
		t.Error("random selection should be unpredictable")
	}
	k.RandomCount = 0
	k.MaxVariants = 5
	if _, ok := verify.ExpectedVariants(k, nil); ok {
		t.Error("capped kernels should be unpredictable")
	}
}

func TestExpectedVariantsSimple(t *testing.T) {
	k := lowered()
	k.Unroll = 0
	k.UnrollRange = ir.Range{Min: 1, Max: 2}
	k.Body[0].Operands = append(k.Body[0].Operands[:1], k.Body[0].Operands[1:]...)
	n, ok := verify.ExpectedVariants(k, nil)
	if !ok || n != 2 {
		t.Fatalf("ExpectedVariants = %d, %v; want 2 (one per unroll)", n, ok)
	}
	// An immediate choice list multiplies the count.
	k.Body = append(k.Body, ir.Instruction{
		Op: "add",
		Operands: []ir.Operand{
			{Kind: ir.ImmOperand, ImmChoices: []int64{1, 2, 3}},
			{Kind: ir.RegOperand, Reg: &ir.Register{Logical: "r9", Phys: isa.R10}},
		},
	})
	n, ok = verify.ExpectedVariants(k, nil)
	if !ok || n != 6 {
		t.Fatalf("ExpectedVariants = %d, %v; want 6 (2 unrolls x 3 immediates)", n, ok)
	}
}

// --- diagnostics plumbing ---------------------------------------------------

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []verify.Severity{verify.SeverityInfo, verify.SeverityWarning, verify.SeverityError} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back verify.Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("severity %v round-tripped to %v", s, back)
		}
	}
}

func TestDiagnosticsJSONAndSummary(t *testing.T) {
	ds := verify.Diagnostics{
		{Rule: verify.RuleAlignment, Severity: verify.SeverityError, Kernel: "k", Instr: 2, Message: "boom"},
		{Rule: verify.RuleExpansion, Severity: verify.SeverityWarning, Kernel: "k", Instr: -1, Message: "short"},
	}
	if got := ds.Summary(); got != "1 error, 1 warning" {
		t.Errorf("Summary = %q", got)
	}
	if err := ds.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Err = %v", err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back verify.Diagnostics
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != ds[0] || back[1] != ds[1] {
		t.Errorf("JSON round trip lost data: %v", back)
	}
}

// TestSeedSpecsVerifyClean is the property the repository promises: every
// shipped spec expands into variants the verifier fully accepts — no
// errors, no warnings.
func TestSeedSpecsVerifyClean(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no seed specs found")
	}
	for _, spec := range specs {
		ds, progs, err := core.VetFile(context.Background(), spec, core.GenerateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(progs) == 0 {
			t.Errorf("%s: produced no programs", spec)
		}
		for _, d := range ds {
			t.Errorf("%s: %s", spec, d)
		}
	}
}

// --- dataflow-backed rules (V009-V011) --------------------------------------

func TestAsmDeadWriteWarning(t *testing.T) {
	src := `
golden:
.L0:
    mov $7, %rcx
    movss (%rsi), %xmm0
    add $4, %rsi
    sub $1, %rdi
    jge .L0
    ret
`
	ds := verify.Asm(src, "golden", verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleDeadWrite || ds[0].Severity != verify.SeverityWarning {
		t.Fatalf("want one %s warning for the unread %%rcx write, got %v", verify.RuleDeadWrite, ds)
	}
	if ds[0].Instr != 0 {
		t.Errorf("dead write reported at %d, want instruction 0", ds[0].Instr)
	}
	// The load's unread %xmm0 must stay exempt: the access is the
	// workload.
	if strings.Contains(ds[0].Message, "xmm0") {
		t.Errorf("load destination flagged as dead: %v", ds[0])
	}
}

func TestAsmSelfMoveWarning(t *testing.T) {
	src := strings.Replace(goodAsm, "    add $4, %rsi\n", "    add $4, %rsi\n    mov %rdx, %rdx\n", 1)
	ds := verify.Asm(src, "golden", verify.Options{})
	if len(ds) != 1 || ds[0].Rule != verify.RuleSelfMove || ds[0].Severity != verify.SeverityWarning {
		t.Fatalf("want one %s warning for mov %%rdx, %%rdx, got %v", verify.RuleSelfMove, ds)
	}
}

func TestAsmRecurrenceInfoOptIn(t *testing.T) {
	// Off by default: the clean kernel stays finding-free.
	if ds := verify.Asm(goodAsm, "golden", verify.Options{}); len(ds) != 0 {
		t.Fatalf("V011 leaked without opt-in: %v", ds)
	}
	ds := verify.Asm(goodAsm, "golden", verify.Options{Recurrences: true})
	if len(ds) == 0 {
		t.Fatal("no V011 findings with Recurrences on")
	}
	for _, d := range ds {
		if d.Rule != verify.RuleRecurrence || d.Severity != verify.SeverityInfo {
			t.Errorf("unexpected finding: %v", d)
		}
	}
	if ds.HasErrors() {
		t.Errorf("info findings must not fail enforcement: %v", ds)
	}
	// The induction registers recur: expect %rsi (and %rdi) among them.
	found := false
	for _, d := range ds {
		if strings.Contains(d.Message, "%rsi") {
			found = true
		}
	}
	if !found {
		t.Errorf("no recurrence through %%rsi reported: %v", ds)
	}
}
