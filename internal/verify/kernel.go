package verify

import (
	"fmt"
	"slices"

	"microtools/internal/ir"
	"microtools/internal/isa"
)

// Kernel runs the IR-level rules over a lowered kernel variant — the state
// the pass pipeline leaves a kernel in after emit: concrete opcodes,
// resolved registers, materialized induction updates. Instruction indices in
// the diagnostics refer to k.Body; kernel-level findings use index -1.
func Kernel(k *ir.Kernel, opt Options) Diagnostics {
	name := k.Name
	if name == "" {
		name = k.BaseName
	}
	var ds Diagnostics
	add := collector(name, opt, &ds)
	// Shared across rules: building the register list walks the body, and
	// opcode parsing is per instruction — doing either once per rule shows
	// up when verifying thousand-variant families.
	regs := k.Registers()
	ops := parseOps(k)
	checkKernelForms(k, ops, add)
	checkKernelDefUse(k, ops, add)
	checkKernelConflicts(k, regs, add)
	checkKernelAlignment(k, ops, add)
	checkKernelInductions(k, regs, add)
	checkKernelPressure(k, regs, opt, add)
	return ds
}

// unknownOp marks a body instruction whose mnemonic is outside the subset.
const unknownOp = isa.Op(0xFF)

// parseOps decodes every body mnemonic once; unknown opcodes map to
// unknownOp (reported by the forms rule, skipped by the others).
func parseOps(k *ir.Kernel) []isa.Op {
	ops := make([]isa.Op, len(k.Body))
	for i := range k.Body {
		op, err := isa.ParseOp(k.Body[i].Op)
		if err != nil {
			op = unknownOp
		}
		ops[i] = op
	}
	return ops
}

// irOperandClass maps an IR operand to its form class byte.
func irOperandClass(o ir.Operand) (byte, bool) {
	switch o.Kind {
	case ir.ImmOperand:
		return 'i', true
	case ir.MemOperand:
		return 'm', true
	case ir.RegOperand:
		r, err := o.Reg.Resolved()
		if err != nil {
			return 0, false
		}
		switch {
		case r.IsXMM():
			return 'x', true
		case r.IsGPR():
			return 'r', true
		}
	}
	return 0, false
}

// checkKernelForms is rule V001 at the IR level.
func checkKernelForms(k *ir.Kernel, ops []isa.Op, add addFunc) {
	var sig [4]byte
	for i := range k.Body {
		in := &k.Body[i]
		op := ops[i]
		if op == unknownOp {
			// The pipeline's own post-pass check rejects unknown opcodes
			// with a hard error; report and move on for direct callers.
			add(RuleOperandForm, SeverityError, i, "unknown opcode %q", in.Op)
			continue
		}
		n := 0
		known := true
		for _, o := range in.Operands {
			c, ok := irOperandClass(o)
			if !ok || n == len(sig) {
				known = false
				break
			}
			sig[n] = c
			n++
		}
		checkForm(op, string(sig[:n]), known, i, add)
	}
}

// regName labels a register for messages, preferring the spec-level name.
func regName(r *ir.Register) string {
	if r == nil {
		return "<nil>"
	}
	if r.Logical != "" {
		if p, err := r.Resolved(); err == nil {
			return fmt.Sprintf("%s(%s)", r.Logical, p)
		}
		return r.Logical
	}
	return r.String()
}

// checkKernelDefUse is rule V002 at the IR level: general-purpose registers
// must be written (or provided by the launcher's calling convention — the
// SysV argument registers, the stack registers, and the prologue-zeroed
// set) before they are read. Reading an undefined register as a memory base
// is an error (the access faults on real hardware); reading one as an
// arithmetic source or read-modify-write destination is only a warning,
// because the launcher zero-fills the register file so the value is defined
// in simulation — merely suspect. XMM registers are exempt: store-only
// variants produced by the operand-swap passes legitimately store whatever
// the register holds, which is exactly the paper's bandwidth-probe idiom.
func checkKernelDefUse(k *ir.Kernel, ops []isa.Op, add addFunc) {
	// Fixed-size register set, not a map: this rule runs once per generated
	// variant. Resolved GPRs are always < NumRegs.
	var written [isa.NumRegs]bool
	written[isa.RSP], written[isa.RBP] = true, true
	for _, r := range isa.ArgRegs {
		written[r] = true
	}
	for _, r := range k.ZeroAtEntry {
		if p, err := r.Resolved(); err == nil && p < isa.NumRegs {
			written[p] = true
		}
	}
	for i := range k.Body {
		in := &k.Body[i]
		op := ops[i]
		if op == unknownOp {
			continue
		}
		n := len(in.Operands)
		var writes [4]isa.Reg
		nw := 0
		for j, o := range in.Operands {
			if o.Kind == ir.MemOperand {
				if r, rerr := o.Reg.Resolved(); rerr == nil && r.IsGPR() && !written[r] {
					add(RuleUseBeforeDef, SeverityError, i,
						"memory base %s is read before any write", regName(o.Reg))
					written[r] = true // report once per register
				}
				continue
			}
			if o.Kind != ir.RegOperand {
				continue
			}
			r, rerr := o.Reg.Resolved()
			if rerr != nil || !r.IsGPR() {
				continue
			}
			isDst := j == n-1
			switch {
			case isDst && (op.IsMove() || op == isa.LEA):
				writes[nw], nw = r, nw+1 // pure write
			case isDst && op == isa.XOR && n == 2 && sameResolvedReg(in.Operands[0], r):
				writes[nw], nw = r, nw+1 // xor r,r zeroing idiom defines r
			case isDst:
				// Read-modify-write (add/sub/inc/...).
				if !written[r] {
					add(RuleUseBeforeDef, SeverityWarning, i,
						"%s destination %s is read before any write", in.Op, regName(o.Reg))
				}
				writes[nw], nw = r, nw+1
			default:
				if !written[r] {
					add(RuleUseBeforeDef, SeverityWarning, i,
						"%s source %s is read before any write", in.Op, regName(o.Reg))
					written[r] = true
				}
			}
			if nw == len(writes) {
				break // defensive: operands are capped at the writes capacity
			}
		}
		for _, r := range writes[:nw] {
			written[r] = true
		}
	}
}

func sameResolvedReg(o ir.Operand, r isa.Reg) bool {
	if o.Kind != ir.RegOperand {
		return false
	}
	p, err := o.Reg.Resolved()
	return err == nil && p == r
}

// checkKernelConflicts is rule V003: after allocation and rotation, two
// distinct register objects must not land on the same physical register,
// and a rotating pool must not sweep over a physical register some other
// operand was pinned or allocated to.
func checkKernelConflicts(k *ir.Kernel, regs []*ir.Register, add addFunc) {
	// Fixed-size ownership table, not a map: the rule runs per variant.
	var owner [isa.NumRegs]*ir.Register
	for _, r := range regs {
		if r.IsRotating() || r.Phys == isa.NoReg || r.Phys >= isa.NumRegs {
			continue
		}
		if prev := owner[r.Phys]; prev != nil && prev != r {
			add(RuleRegisterConflict, SeverityError, -1,
				"registers %s and %s are both allocated to %s", regName(prev), regName(r), r.Phys)
			continue
		}
		owner[r.Phys] = r
	}
	// Rotating pools: clones of one spec-level pool share the same range,
	// so report each distinct range at most once.
	var seenRange map[ir.Range]bool
	for _, r := range regs {
		if !r.IsRotating() || seenRange[r.RotRange] {
			continue
		}
		if seenRange == nil {
			seenRange = map[ir.Range]bool{}
		}
		seenRange[r.RotRange] = true
		for idx := r.RotRange.Min; idx < r.RotRange.Max; idx++ {
			if idx < 0 || idx > 15 {
				continue // the pressure rule reports out-of-file ranges
			}
			phys := isa.XMM0 + isa.Reg(idx)
			if o := owner[phys]; o != nil {
				add(RuleRegisterConflict, SeverityError, -1,
					"rotating pool %s[%d,%d) overlaps %s, which is pinned to %s",
					r.RotBase, r.RotRange.Min, r.RotRange.Max, regName(o), phys)
			}
		}
	}
}

// checkKernelAlignment is rule V004 at the IR level: alignment-requiring
// packed accesses must use offsets and induction strides that are multiples
// of the access width.
func checkKernelAlignment(k *ir.Kernel, ops []isa.Op, add addFunc) {
	var reportedStride map[*ir.Register]bool
	for i := range k.Body {
		in := &k.Body[i]
		op := ops[i]
		if op == unknownOp || !op.RequiresAlignment() {
			continue
		}
		w := int64(op.MemWidth())
		for _, o := range in.Operands {
			if o.Kind != ir.MemOperand {
				continue
			}
			if mod(o.Offset, w) != 0 {
				add(RuleAlignment, SeverityError, i,
					"%s accesses offset %d, not %d-byte aligned", in.Op, o.Offset, w)
			}
			ind := k.InductionFor(o.Reg)
			if ind != nil && !reportedStride[o.Reg] && mod(ind.Increment, w) != 0 {
				if reportedStride == nil {
					reportedStride = map[*ir.Register]bool{}
				}
				reportedStride[o.Reg] = true
				add(RuleAlignment, SeverityError, i,
					"induction stride %d on %s misaligns successive iterations of the %d-byte aligned %s",
					ind.Increment, regName(o.Reg), w, in.Op)
			}
		}
	}
}

// checkKernelInductions is rule V005: across the unrolled copies of the
// body, the memory accesses through each induction register must be
// consistent — copy c must access exactly the copy-0 offsets shifted by
// c times the induction's per-copy offset. A copy with dropped or skewed
// accesses means unrolling and induction linking disagree, which the
// launcher cannot detect (the program still runs; it just measures the
// wrong access pattern).
func checkKernelInductions(k *ir.Kernel, regs []*ir.Register, add addFunc) {
	if k.Unroll < 2 {
		return
	}
	if _, scheduled := k.Tags["sched"]; scheduled {
		// The schedule pass reorders copies; per-copy reconstruction from
		// Copy indices still holds, but keep the rule conservative.
		return
	}
	maxCopy := 0
	for i := range k.Body {
		if k.Body[i].Copy > maxCopy {
			maxCopy = k.Body[i].Copy
		}
	}
	if (maxCopy+1)%k.Unroll != 0 {
		return // copy indices were customized; cannot reconstruct copies
	}
	width := (maxCopy + 1) / k.Unroll
	// Per induction base, offsets grouped by unrolled-copy index. A short
	// linear-scanned slice, not nested maps: the rule runs per variant and
	// kernels touch only a handful of base registers.
	type copyOffsets struct {
		base   *ir.Register
		byCopy [][]int64
	}
	var bos []copyOffsets
	for i := range k.Body {
		for _, o := range k.Body[i].Operands {
			if o.Kind != ir.MemOperand {
				continue
			}
			ind := k.InductionFor(o.Reg)
			if ind == nil {
				continue
			}
			uc := k.Body[i].Copy / width
			var co *copyOffsets
			for j := range bos {
				if bos[j].base == o.Reg {
					co = &bos[j]
					break
				}
			}
			if co == nil {
				bos = append(bos, copyOffsets{base: o.Reg, byCopy: make([][]int64, k.Unroll)})
				co = &bos[len(bos)-1]
			}
			co.byCopy[uc] = append(co.byCopy[uc], o.Offset-int64(uc)*ind.Offset)
		}
	}
	for _, base := range regs { // deterministic first-use order
		var co *copyOffsets
		for j := range bos {
			if bos[j].base == base {
				co = &bos[j]
				break
			}
		}
		if co == nil {
			continue
		}
		// Compare every copy that has accesses against the first such copy;
		// copies are naturally in increasing index order here.
		refUC := -1
		var ref []int64
		for uc, offs := range co.byCopy {
			if len(offs) == 0 {
				continue
			}
			slices.Sort(offs)
			if refUC < 0 {
				refUC, ref = uc, offs
				continue
			}
			if !int64SlicesEqual(ref, offs) {
				add(RuleInduction, SeverityError, -1,
					"accesses through %s are inconsistent across unrolled copies: copy %d covers offsets %v, copy %d covers %v (normalized by the per-copy offset)",
					regName(base), refUC, ref, uc, offs)
				break
			}
		}
	}
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkKernelPressure is rule V007: rotation ranges must fit the XMM file
// and the distinct physical registers a variant touches must fit the
// register files.
func checkKernelPressure(k *ir.Kernel, regs []*ir.Register, opt Options, add addFunc) {
	var used [isa.NumRegs]bool // fixed-size set: the rule runs per variant
	var seenRange map[ir.Range]bool
	for _, r := range regs {
		if r.IsRotating() {
			if !seenRange[r.RotRange] {
				if seenRange == nil {
					seenRange = map[ir.Range]bool{}
				}
				seenRange[r.RotRange] = true
				if r.RotRange.Min < 0 || r.RotRange.Max > opt.xmmFile() {
					add(RulePressure, SeverityError, -1,
						"rotation range %s[%d,%d) exceeds the %d-register XMM file",
						r.RotBase, r.RotRange.Min, r.RotRange.Max, opt.xmmFile())
				}
			}
			for idx := r.RotRange.Min; idx < r.RotRange.Max && idx < 16; idx++ {
				if idx >= 0 {
					used[isa.XMM0+isa.Reg(idx)] = true
				}
			}
			continue
		}
		if r.Phys == isa.NoReg {
			continue
		}
		if r.Phys.IsGPR() || r.Phys.IsXMM() {
			used[r.Phys] = true
		}
	}
	gprs, xmms := 0, 0
	for p := isa.Reg(0); p < isa.NumRegs; p++ {
		if used[p] {
			if p.IsGPR() {
				gprs++
			} else {
				xmms++
			}
		}
	}
	if gprs > opt.gprFile() {
		add(RulePressure, SeverityError, -1,
			"%d distinct general-purpose registers exceed the %d-register file", gprs, opt.gprFile())
	}
	if xmms > opt.xmmFile() {
		add(RulePressure, SeverityError, -1,
			"%d distinct XMM registers exceed the %d-register file", xmms, opt.xmmFile())
	}
}
