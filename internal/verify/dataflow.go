package verify

import (
	"microtools/internal/dataflow"
	"microtools/internal/isa"
)

// dataflowRules runs the analysis-backed rules over a decoded program:
// dead register writes (V009), redundant self moves (V010) and — when
// opt.Recurrences asks for them — the loop-carried recurrence report
// (V011, info).
//
// V009 and V010 are liveness facts and hold on every microarchitecture;
// V011's cycle lengths are weighted with µop latencies, so it pins the
// baseline Nehalem tables to stay deterministic (use `microtools analyze
// -machine` for the per-machine view).
func dataflowRules(p *isa.Program, opt Options, add addFunc) {
	// V009/V010 are pure liveness facts; the full analysis (dependence DAG,
	// latency, port pressure) is only needed when the caller asked for the
	// recurrence report, so the common path runs the liveness-only scope.
	analyze := dataflow.AnalyzeLiveness
	if opt.Recurrences {
		analyze = dataflow.Analyze
	}
	rep, err := analyze(p, isa.Nehalem())
	if err != nil {
		// The program did not decode; the structural rules (V000/V001/
		// V006) already explain why.
		return
	}
	for _, d := range rep.DeadWrites {
		if d.HasMem {
			// The access itself is the workload (a bandwidth probe's
			// load); the unread destination is incidental, mirroring
			// V002's exemption for SSE target registers.
			continue
		}
		add(RuleDeadWrite, SeverityWarning, d.Index,
			"%s writes %s but no instruction can read the value", d.Inst, d.Resource)
	}
	for _, i := range rep.SelfMoves {
		add(RuleSelfMove, SeverityWarning, i,
			"%s moves a register onto itself", p.Insts[i].String())
	}
	if opt.Recurrences {
		for _, c := range rep.LoopCarried {
			if c.Length <= 0 {
				continue
			}
			add(RuleRecurrence, SeverityInfo, -1,
				"loop-carried recurrence through %s: %.2f cycles/iteration (latency bound %.2f)",
				c.Resource, c.Length, rep.LatencyBound)
		}
	}
}
