package power

import (
	"testing"
	"testing/quick"

	"microtools/internal/cpu"
	"microtools/internal/memsim"
)

func TestEstimateBasics(t *testing.T) {
	m := DefaultServerModel(2.67)
	mix := cpu.Mix{Loads: 1000, Stores: 500, IntALU: 2000, Branches: 1000}
	mem := memsim.Stats{L2Hits: 100, MemAccesses: 10, Writebacks: 5}
	e, err := m.Estimate(mix, mem, 4500, 1e-6, 2.67)
	if err != nil {
		t.Fatal(err)
	}
	if e.DynamicJoules <= 0 || e.StaticJoules <= 0 {
		t.Errorf("estimate = %+v", e)
	}
	if e.TotalJoules != e.DynamicJoules+e.StaticJoules {
		t.Error("total != dynamic + static")
	}
	if e.AvgWatts <= m.StaticWatts {
		t.Errorf("average watts %.2f must exceed static %.2f", e.AvgWatts, m.StaticWatts)
	}
	if e.EnergyDelayProduct != e.TotalJoules*1e-6 {
		t.Error("EDP wrong")
	}
}

func TestEstimateRejectsNonPositiveTime(t *testing.T) {
	m := DefaultServerModel(2.67)
	if _, err := m.Estimate(cpu.Mix{}, memsim.Stats{}, 0, 0, 2.67); err == nil {
		t.Error("zero time accepted")
	}
}

// TestFrequencyScaling: at a lower frequency the same work costs less
// dynamic energy per event (V² scaling) but runs longer, so static energy
// grows — the classic race-to-idle trade-off the §7 power studies probe.
func TestFrequencyScaling(t *testing.T) {
	m := DefaultServerModel(2.67)
	mix := cpu.Mix{Loads: 100000, IntALU: 100000}
	fast, err := m.Estimate(mix, memsim.Stats{}, 200000, 100e-6, 2.67)
	if err != nil {
		t.Fatal(err)
	}
	// Same work at half frequency takes twice as long.
	slow, err := m.Estimate(mix, memsim.Stats{}, 200000, 200e-6, 1.335)
	if err != nil {
		t.Fatal(err)
	}
	if slow.DynamicJoules >= fast.DynamicJoules {
		t.Errorf("dynamic energy did not drop at lower voltage: %.3g vs %.3g",
			slow.DynamicJoules, fast.DynamicJoules)
	}
	if slow.StaticJoules <= fast.StaticJoules {
		t.Errorf("static energy did not grow with time: %.3g vs %.3g",
			slow.StaticJoules, fast.StaticJoules)
	}
	if slow.AvgWatts >= fast.AvgWatts {
		t.Error("average power did not drop at lower frequency")
	}
}

// Property: energy is monotone in every event count.
func TestPropertyMonotoneInEvents(t *testing.T) {
	m := DefaultServerModel(2.67)
	f := func(loads, l3 uint16) bool {
		base, err := m.Estimate(cpu.Mix{Loads: int64(loads)},
			memsim.Stats{L3Hits: int64(l3)}, int64(loads), 1e-6, 2.67)
		if err != nil {
			return false
		}
		more, err := m.Estimate(cpu.Mix{Loads: int64(loads) + 1},
			memsim.Stats{L3Hits: int64(l3) + 1}, int64(loads)+1, 1e-6, 2.67)
		if err != nil {
			return false
		}
		return more.TotalJoules > base.TotalJoules
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
