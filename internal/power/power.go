// Package power is the §7 extension of the reproduction: the paper states
// that MicroCreator's variations exist "to evaluate variations in
// performance or power utilization", and the conclusion repeats that the
// tools "give an input on the performance and power utilization of a given
// architecture". This package supplies the power side: an event-based
// energy model over the simulator's observable activity.
//
// The model is the standard architectural decomposition
//
//	E = Σ (event_count × event_energy) + P_static × t
//
// with per-event energies for the instruction classes the core counts and
// the memory events the hierarchy counts, and dynamic-power scaling with
// the square of the supply voltage (approximated as linear in frequency
// around the nominal point, giving the familiar ~f³ dynamic-power law).
// Absolute joules are model estimates — like the simulator's cycles, they
// support comparisons between variants, not wattmeter readings.
package power

import (
	"fmt"

	"microtools/internal/cpu"
	"microtools/internal/memsim"
)

// Model holds per-event energies (nanojoules) and static power (watts).
type Model struct {
	Name string

	// Core event energies at nominal frequency, in nanojoules.
	BaseInst  float64 // fetch/decode/retire cost of any instruction
	IntALU    float64
	SSEArith  float64
	LoadL1    float64 // L1 access part of any load
	StoreL1   float64
	Branch    float64
	L2Access  float64
	L3Access  float64
	DRAMLine  float64 // per line transferred from memory
	Writeback float64

	// StaticWatts is the leakage + uncore baseline for the whole package.
	StaticWatts float64
	// NominalGHz anchors the frequency scaling.
	NominalGHz float64
}

// DefaultServerModel returns per-event energies in the range published for
// Nehalem/Sandy Bridge-class parts (fractions of a nanojoule per operation,
// tens of nanojoules per DRAM line).
func DefaultServerModel(nominalGHz float64) Model {
	return Model{
		Name:        "server-class",
		BaseInst:    0.3,
		IntALU:      0.1,
		SSEArith:    0.4,
		LoadL1:      0.35,
		StoreL1:     0.45,
		Branch:      0.15,
		L2Access:    1.2,
		L3Access:    4.0,
		DRAMLine:    20.0,
		Writeback:   2.0,
		StaticWatts: 18.0,
		NominalGHz:  nominalGHz,
	}
}

// Estimate is the energy breakdown of one run.
type Estimate struct {
	// DynamicJoules / StaticJoules sum to TotalJoules.
	DynamicJoules float64
	StaticJoules  float64
	TotalJoules   float64
	// AvgWatts is TotalJoules over the run's wall-clock time.
	AvgWatts float64
	// EnergyDelayProduct is TotalJoules × seconds, the tuning metric that
	// balances the §7 "performance or power" trade-off.
	EnergyDelayProduct float64
}

// Estimate computes the energy of a run from the core's dynamic instruction
// mix, the memory system's event counts, the run length and the operating
// frequency.
func (m Model) Estimate(mix cpu.Mix, mem memsim.Stats, insts int64, seconds float64, coreGHz float64) (Estimate, error) {
	if seconds <= 0 {
		return Estimate{}, fmt.Errorf("power: non-positive run time %v", seconds)
	}
	if coreGHz <= 0 {
		coreGHz = m.NominalGHz
	}
	// Voltage tracks frequency around the nominal point; dynamic energy
	// per event scales with V² ≈ (f/f0)².
	vScale := coreGHz / m.NominalGHz
	perEvent := vScale * vScale

	nj := m.BaseInst * float64(insts)
	nj += m.IntALU * float64(mix.IntALU)
	nj += m.SSEArith * float64(mix.SSEArith)
	nj += m.LoadL1 * float64(mix.Loads)
	nj += m.StoreL1 * float64(mix.Stores)
	nj += m.Branch * float64(mix.Branches)
	nj *= perEvent

	// Uncore events do not scale with the core voltage.
	memNJ := m.L2Access * float64(mem.L2Hits+mem.L2Misses)
	memNJ += m.L3Access * float64(mem.L3Hits+mem.L3Misses)
	memNJ += m.DRAMLine * float64(mem.MemAccesses)
	memNJ += m.Writeback * float64(mem.Writebacks)

	e := Estimate{}
	e.DynamicJoules = (nj + memNJ) * 1e-9
	e.StaticJoules = m.StaticWatts * seconds
	e.TotalJoules = e.DynamicJoules + e.StaticJoules
	e.AvgWatts = e.TotalJoules / seconds
	e.EnergyDelayProduct = e.TotalJoules * seconds
	return e, nil
}
