package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microtools/internal/codegen"
	"microtools/internal/launcher"
	"microtools/internal/passes"
)

const smallSpec = `
<kernel name="core_k">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>4</max></register>
  </instruction>
  <unrolling><min>1</min><max>2</max></unrolling>
  <induction><register><name>r1</name></register><increment>4</increment><offset>4</offset></induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction><register><phyName>%eax</phyName></register><increment>1</increment><not_affected_unroll/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`

func TestGenerateString(t *testing.T) {
	progs, err := GenerateString(context.Background(), smallSpec, GenerateOptions{EmitC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("generated %d programs, want 2", len(progs))
	}
	for _, p := range progs {
		if !p.EmitAssembly || !p.EmitC {
			t.Errorf("%s: missing output format", p.Name)
			continue
		}
		if asmText, err := p.Assembly(); err != nil || asmText == "" {
			t.Errorf("%s: assembly render: %q, %v", p.Name, asmText, err)
		}
		if cSrc, err := p.CSource(); err != nil || cSrc == "" {
			t.Errorf("%s: C render: %q, %v", p.Name, cSrc, err)
		}
	}
}

func TestGenerateCustomize(t *testing.T) {
	var sawPasses int
	_, err := GenerateString(context.Background(), smallSpec, GenerateOptions{
		Customize: func(m *passes.Manager) error {
			sawPasses = len(m.Passes())
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawPasses != 20 {
		t.Errorf("customize saw %d passes, want 20", sawPasses)
	}
}

func TestGenerateUnknownPlugin(t *testing.T) {
	if _, err := GenerateString(context.Background(), smallSpec, GenerateOptions{Plugins: []string{"ghost"}}); err == nil {
		t.Error("unknown plugin accepted")
	}
}

func TestGenerateFileAndWritePrograms(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	if err := os.WriteFile(specPath, []byte(smallSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	progs, err := GenerateFile(context.Background(), specPath, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "gen")
	paths, err := WritePrograms(progs, outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(progs) {
		t.Errorf("wrote %d files for %d programs", len(paths), len(progs))
	}
	// Written files reload through the launcher input path.
	prog, err := LoadKernelFile(paths[0], "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(prog.Name, "core_k") {
		t.Errorf("reloaded name = %q", prog.Name)
	}
}

func TestLoadKernelFunctionSelection(t *testing.T) {
	src := `
.globl f1
.globl f2
f1:
	add $1, %rax
	ret
f2:
	sub $1, %rax
	ret`
	if _, err := LoadKernel(src, ""); err == nil {
		t.Error("ambiguous input accepted without a function name")
	}
	p, err := LoadKernel(src, "f2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "f2" {
		t.Errorf("selected %q", p.Name)
	}
	if _, err := LoadKernel(src, "f3"); err == nil {
		t.Error("missing function accepted")
	}
}

func TestGenerateLaunchAllEndToEnd(t *testing.T) {
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 4 << 10
	opts.InnerReps = 1
	opts.OuterReps = 2
	progs, err := Generate(context.Background(), strings.NewReader(smallSpec), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := LaunchAll(context.Background(), progs, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measured %d variants, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Value <= 0 || m.Iterations == 0 {
			t.Errorf("%s: measurement = %+v", m.Kernel, m)
		}
	}
}

// TestLoadKernelFromCSource: the launcher accepts MicroCreator's C output
// (§4.1), extracting the kernel from its inline-assembly block.
func TestLoadKernelFromCSource(t *testing.T) {
	progs, err := GenerateString(context.Background(), smallSpec, GenerateOptions{EmitC: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		asmText, err := p.Assembly()
		if err != nil {
			t.Fatal(err)
		}
		cSrc, err := p.CSource()
		if err != nil {
			t.Fatal(err)
		}
		fromAsm, err := LoadKernel(asmText, "")
		if err != nil {
			t.Fatal(err)
		}
		fromC, err := LoadKernel(cSrc, "")
		if err != nil {
			t.Fatalf("%s: C input rejected: %v\n%s", p.Name, err, cSrc)
		}
		if fromC.Name != fromAsm.Name || len(fromC.Insts) != len(fromAsm.Insts) {
			t.Errorf("%s: C and assembly inputs diverge (%d vs %d insts)",
				p.Name, len(fromC.Insts), len(fromAsm.Insts))
		}
		for i := range fromAsm.Insts {
			if fromAsm.Insts[i].String() != fromC.Insts[i].String() {
				t.Errorf("%s inst %d: %q != %q", p.Name, i,
					fromC.Insts[i].String(), fromAsm.Insts[i].String())
			}
		}
	}
}

func TestExtractInlineAsmErrors(t *testing.T) {
	if _, err := LoadKernel("/* Generated by MicroCreator */ int f(void);", ""); err == nil {
		t.Error("C without __asm__ accepted")
	}
	if _, err := LoadKernel(`__asm__("unterminated`, ""); err == nil {
		t.Error("unterminated block accepted")
	}
}

// TestLaunchAllParallelMatchesSerial: the worker-pool fan-out is
// bit-identical to the serial run (each variant owns its machine).
func TestLaunchAllParallelMatchesSerial(t *testing.T) {
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 4 << 10
	opts.InnerReps = 1
	opts.OuterReps = 2
	progs, err := Generate(context.Background(), strings.NewReader(smallSpec), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := LaunchAll(context.Background(), progs, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LaunchAll(context.Background(), progs, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Kernel != parallel[i].Kernel || serial[i].Value != parallel[i].Value {
			t.Errorf("variant %d differs: %s=%v vs %s=%v",
				i, serial[i].Kernel, serial[i].Value, parallel[i].Kernel, parallel[i].Value)
		}
	}
}

// TestScreenTopKKeepsContenders: analytic screening of the Fig. 6 family
// keeps variants whose measured per-element cost is close to the true
// optimum — the screen discards the clearly inferior shapes, not the
// winners.
func TestScreenTopKKeepsContenders(t *testing.T) {
	data, err := os.ReadFile("../../specs/loadstore_movaps.xml")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := GenerateString(context.Background(), string(data), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const machineName = "nehalem-dual/8"
	const size = 4 << 10
	kept, err := ScreenTopK(context.Background(), progs, machineName, size, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 32 {
		t.Fatalf("screened to %d, want 32", len(kept))
	}
	opts := launcher.DefaultOptions()
	opts.MachineName = machineName
	opts.ArrayBytes = size
	opts.InnerReps = 1
	opts.OuterReps = 2
	ms, err := LaunchAll(context.Background(), kept, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	bestScreened := ms[0].ValuePerElement
	for _, m := range ms {
		if m.ValuePerElement > 0 && m.ValuePerElement < bestScreened {
			bestScreened = m.ValuePerElement
		}
	}
	// Measure the known-optimal shape (u8 balanced) directly for the
	// ground truth.
	var truth float64
	for i := range progs {
		if progs[i].Name == "loadstore_u8_LSLSLSLS" {
			m, err := launchOne(context.Background(), &progs[i], opts)
			if err != nil {
				t.Fatal(err)
			}
			truth = m.ValuePerElement
		}
	}
	if truth == 0 {
		t.Fatal("ground-truth variant not found")
	}
	if bestScreened > truth*1.1 {
		t.Errorf("screening lost the contenders: best screened %.4f vs ground truth %.4f",
			bestScreened, truth)
	}
	// Degenerate parameters.
	if all, _ := ScreenTopK(context.Background(), progs, machineName, size, 4, 0); len(all) != len(progs) {
		t.Error("k=0 must keep everything")
	}
	if _, err := ScreenTopK(context.Background(), progs, "z80", size, 4, 8); err == nil {
		t.Error("unknown machine accepted")
	}
}

// TestScreenTopKStaticRanksByBound: the static screen orders variants by
// the dataflow lower bound per element, so among L1-resident streaming
// variants the densest unrolls (fewest loop-overhead cycles per element)
// must survive the cut.
func TestScreenTopKStaticRanksByBound(t *testing.T) {
	data, err := os.ReadFile("../../specs/loadstore_movaps.xml")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := GenerateString(context.Background(), string(data), GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const machineName = "nehalem-dual/8"
	kept, err := ScreenTopKStatic(context.Background(), progs, machineName, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 32 {
		t.Fatalf("screened to %d, want 32", len(kept))
	}
	// Every survivor must out-rank (or tie) every discarded variant on the
	// screen's own metric; in particular no u1 shape (one 16-byte access
	// per loop-overhead set) may beat the u8 shapes the screen kept.
	for _, p := range kept {
		if strings.HasPrefix(p.Name, "loadstore_u1_") {
			t.Errorf("static screen kept low-density variant %s over denser unrolls", p.Name)
		}
	}
	if all, _ := ScreenTopKStatic(context.Background(), progs, machineName, 4, 0); len(all) != len(progs) {
		t.Error("k=0 must keep everything")
	}
	if _, err := ScreenTopKStatic(context.Background(), progs, "z80", 4, 8); err == nil {
		t.Error("unknown machine accepted")
	}
}

// TestLaunchAllIsolatesVariantFaults: a broken variant must not discard the
// campaign — every healthy variant still gets measured, the broken one
// leaves a nil slot, and the aggregated error names it.
func TestLaunchAllIsolatesVariantFaults(t *testing.T) {
	progs, err := GenerateString(context.Background(), smallSpec, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// No kernel and no parsed form: Lowered fails at launch time, the
	// modern shape of a variant that used to carry unparsable assembly.
	broken := codegen.Program{Name: "broken_variant"}
	progs = append([]codegen.Program{progs[0], broken}, progs[1:]...)
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 1 << 12
	opts.InnerReps = 1
	opts.OuterReps = 1
	opts.MaxInstructions = 5_000
	ms, err := LaunchAllProgress(context.Background(), progs, opts, 2, nil)
	if err == nil {
		t.Fatal("broken variant did not surface an error")
	}
	var agg *LaunchErrors
	if !errors.As(err, &agg) {
		t.Fatalf("error %T is not *LaunchErrors: %v", err, err)
	}
	if len(agg.Failed) != 1 || agg.Failed[0].Name != "broken_variant" || agg.Failed[0].Index != 1 {
		t.Fatalf("aggregate %v does not pinpoint the broken variant", err)
	}
	var ve *VariantError
	if !errors.As(err, &ve) {
		t.Error("aggregate does not unwrap to a *VariantError")
	}
	if len(ms) != len(progs) {
		t.Fatalf("got %d slots, want %d", len(ms), len(progs))
	}
	for i, m := range ms {
		if i == 1 {
			if m != nil {
				t.Error("broken variant produced a measurement")
			}
			continue
		}
		if m == nil {
			t.Errorf("healthy variant %d lost its measurement to the broken one", i)
		}
	}
}

// TestLaunchAllCancellation: canceling mid-campaign stops the pool within
// one variant and returns the partial measurements with ctx.Err().
func TestLaunchAllCancellation(t *testing.T) {
	progs, err := GenerateString(context.Background(), smallSpec, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Quadruple the family so there is something left to cancel.
	var many []codegen.Program
	for i := 0; i < 4; i++ {
		many = append(many, progs...)
	}
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 1 << 12
	opts.InnerReps = 1
	opts.OuterReps = 1
	opts.MaxInstructions = 5_000
	ctx, cancel := context.WithCancel(context.Background())
	ms, err := LaunchAllProgress(ctx, many, opts, 1, func(done, total int) {
		if done == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var got int
	for _, m := range ms {
		if m != nil {
			got++
		}
	}
	if got < 2 || got >= len(many) {
		t.Errorf("canceled campaign measured %d of %d variants, want a prompt partial stop", got, len(many))
	}
}
