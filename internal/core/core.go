// Package core orchestrates the two MicroTools: it drives MicroCreator
// (XML → pass pipeline → benchmark programs) and MicroLauncher (program →
// stable measurement) end to end, the way the paper's workflow chains them
// ("MicroCreator's current work focuses on automatically generating
// programs on new architectures and launching them with MicroLauncher",
// §3.5).
package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"microtools/internal/analytic"
	"microtools/internal/asm"
	"microtools/internal/codegen"
	"microtools/internal/dataflow"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/obs"
	"microtools/internal/passes"
	"microtools/internal/plugin"
	"microtools/internal/verify"
	"microtools/internal/xmlspec"
)

// GenerateOptions configures a MicroCreator run.
type GenerateOptions struct {
	// Seed seeds the random-select pass.
	Seed int64
	// DisableAssembly suppresses the assembly output (emitted by
	// default); EmitC additionally emits C source.
	DisableAssembly bool
	EmitC           bool
	// Plugins names registered plugins to apply to the pass manager
	// before running (§3.3).
	Plugins []string
	// Customize, if non-nil, receives the pass manager for programmatic
	// modification (the library-embedding equivalent of pluginInit).
	Customize func(*passes.Manager) error
	// Verbose receives per-pass progress.
	Verbose io.Writer
	// Tracer, when non-nil, records the generation pipeline as a span tree:
	// "generate" > "xmlspec.parse" + "passes" > one span per pass.
	Tracer *obs.Tracer
	// Verify selects how the pipeline's verify-variants pass treats its
	// findings: verify.ModeEnforce (the zero value) fails generation on
	// error-severity diagnostics, verify.ModeCollect records them without
	// failing, verify.ModeOff disables verification.
	Verify verify.Mode
	// VerifySuppress lists verifier rule IDs to ignore (e.g. "V004").
	VerifySuppress []string
	// Diagnostics, when non-nil, receives the verifier findings of the run
	// (useful with ModeCollect; under ModeEnforce only warnings survive).
	Diagnostics *verify.Diagnostics
}

// Generate runs MicroCreator over an XML kernel description. The context
// cancels the pipeline between passes (and between variants inside the
// emit pass); a canceled run returns ctx.Err().
func Generate(ctx context.Context, r io.Reader, opts GenerateOptions) ([]codegen.Program, error) {
	pctx, err := generate(ctx, r, opts, nil)
	if err != nil {
		return nil, err
	}
	return pctx.Programs, nil
}

// GenerateStream runs MicroCreator in streaming mode: each program is
// handed to sink as soon as it is rendered (and verified, honouring
// opts.Verify) instead of being materialized in a slice, so an N-variant
// family never holds all rendered programs at once. It returns the number
// of programs emitted. A sink error aborts the pipeline and is returned
// verbatim.
func GenerateStream(ctx context.Context, r io.Reader, opts GenerateOptions, sink func(codegen.Program) error) (int, error) {
	n := 0
	counted := func(p codegen.Program) error {
		n++
		return sink(p)
	}
	_, err := generate(ctx, r, opts, counted)
	return n, err
}

// generate is the shared MicroCreator driver behind Generate and
// GenerateStream; sink selects streaming mode.
func generate(ctx context.Context, r io.Reader, opts GenerateOptions, sink func(codegen.Program) error) (*passes.Context, error) {
	root := opts.Tracer.Start("generate")
	defer root.End()
	kernels, err := xmlspec.ParseTraced(r, root)
	if err != nil {
		return nil, err
	}
	m := passes.NewManager()
	if err := plugin.Apply(m, opts.Plugins...); err != nil {
		return nil, err
	}
	if opts.Customize != nil {
		if err := opts.Customize(m); err != nil {
			return nil, fmt.Errorf("core: customize: %w", err)
		}
	}
	pctx := &passes.Context{
		Ctx:            ctx,
		Seed:           opts.Seed,
		EmitAssembly:   !opts.DisableAssembly,
		EmitC:          opts.EmitC,
		Verbose:        opts.Verbose,
		Trace:          root,
		VerifyMode:     opts.Verify,
		VerifySuppress: opts.VerifySuppress,
		Sink:           sink,
	}
	_, err = m.Run(pctx, kernels)
	if opts.Diagnostics != nil {
		*opts.Diagnostics = pctx.Diagnostics
	}
	if err != nil {
		return nil, err
	}
	root.Int("programs", int64(len(pctx.Programs)))
	return pctx, nil
}

// Vet runs MicroCreator in collect-only verification mode: the full pipeline
// executes, but verifier findings are returned as diagnostics instead of
// failing generation. Pipeline errors upstream of the verifier (XML parse
// failures, pass errors) are folded into the diagnostics as V000 findings, so
// a vet run always yields a report; err is reserved for I/O-level failures.
func Vet(ctx context.Context, r io.Reader, opts GenerateOptions) (verify.Diagnostics, []codegen.Program, error) {
	opts.Verify = verify.ModeCollect
	var ds verify.Diagnostics
	opts.Diagnostics = &ds
	progs, err := Generate(ctx, r, opts)
	if err != nil {
		ds = append(ds, verify.Diagnostic{
			Rule:     verify.RuleParse,
			Severity: verify.SeverityError,
			Instr:    -1,
			Message:  err.Error(),
		})
	}
	return ds, progs, nil
}

// VetFile is Vet over a file.
func VetFile(ctx context.Context, path string, opts GenerateOptions) (verify.Diagnostics, []codegen.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Vet(ctx, f, opts)
}

// GenerateString is Generate over a string.
func GenerateString(ctx context.Context, xml string, opts GenerateOptions) ([]codegen.Program, error) {
	return Generate(ctx, strings.NewReader(xml), opts)
}

// GenerateFile is Generate over a file.
func GenerateFile(ctx context.Context, path string, opts GenerateOptions) ([]codegen.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Generate(ctx, f, opts)
}

// WritePrograms writes generated programs into a directory, one .s (and
// optionally .c) file per variant, returning the file paths.
func WritePrograms(progs []codegen.Program, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, p := range progs {
		if p.EmitAssembly {
			asmText, err := p.Assembly()
			if err != nil {
				return nil, err
			}
			path := fmt.Sprintf("%s/%s.s", dir, p.Name)
			if err := os.WriteFile(path, []byte(asmText), 0o644); err != nil {
				return nil, err
			}
			paths = append(paths, path)
		}
		if p.EmitC {
			cSrc, err := p.CSource()
			if err != nil {
				return nil, err
			}
			path := fmt.Sprintf("%s/%s.c", dir, p.Name)
			if err := os.WriteFile(path, []byte(cSrc), 0o644); err != nil {
				return nil, err
			}
			paths = append(paths, path)
		}
	}
	return paths, nil
}

// LoadKernel parses a kernel source and selects the kernel function: the
// launcher's input path ("As input, the launcher accepts any assembly,
// source code (C or Fortran), object file, or even a dynamic library",
// §4.1). Assembly is parsed directly; C sources in MicroCreator's output
// format carry the kernel as a GNU inline-assembly block, which is
// extracted and parsed. An empty functionName requires exactly one
// function.
func LoadKernel(src, functionName string) (*isa.Program, error) {
	if looksLikeC(src) {
		extracted, err := extractInlineAsm(src)
		if err != nil {
			return nil, err
		}
		src = extracted
	}
	progs, err := asm.ParseString(src, "kernel")
	if err != nil {
		return nil, err
	}
	if functionName == "" {
		if len(progs) != 1 {
			var names []string
			for _, p := range progs {
				names = append(names, p.Name)
			}
			return nil, fmt.Errorf("core: input holds %d functions (%s); select one with the function name option",
				len(progs), strings.Join(names, ", "))
		}
		return progs[0], nil
	}
	for _, p := range progs {
		if p.Name == functionName {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: no function %q in input", functionName)
}

// LoadKernels parses a kernel source and returns every function it holds,
// in source order — the multi-function path of the launcher's input
// handling (a generated family often lands in one file; microlauncher
// -workers measures all of them over a pool).
func LoadKernels(src string) ([]*isa.Program, error) {
	if looksLikeC(src) {
		extracted, err := extractInlineAsm(src)
		if err != nil {
			return nil, err
		}
		src = extracted
	}
	return asm.ParseString(src, "kernel")
}

// LoadKernelFile is LoadKernel over a file.
func LoadKernelFile(path, functionName string) (*isa.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadKernel(string(data), functionName)
}

// Launch measures a kernel program with MicroLauncher.
func Launch(ctx context.Context, prog *isa.Program, opts launcher.Options) (*launcher.Measurement, error) {
	return launcher.Launch(ctx, prog, opts)
}

// VariantError records one variant's launch failure inside a campaign.
type VariantError struct {
	// Index is the variant's position in generation order.
	Index int
	// Name is the variant's kernel name.
	Name string
	// Err is the underlying launch error.
	Err error
}

func (e *VariantError) Error() string {
	return fmt.Sprintf("variant %s (#%d): %v", e.Name, e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *VariantError) Unwrap() error { return e.Err }

// LaunchErrors aggregates every per-variant failure of a campaign: a
// single failing variant no longer discards the completed measurements —
// callers receive the partial result set plus one error naming every
// failed variant.
type LaunchErrors struct {
	// Failed lists the failed variants in generation order.
	Failed []*VariantError
	// Total is the campaign's variant count.
	Total int
}

func (e *LaunchErrors) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d of %d variants failed:", len(e.Failed), e.Total)
	for _, f := range e.Failed {
		fmt.Fprintf(&b, "\n  %s: %v", f.Name, f.Err)
	}
	return b.String()
}

// Unwrap exposes the per-variant errors to errors.Is/As.
func (e *LaunchErrors) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}

// LaunchAll measures every generated program over a worker pool, returning
// measurements in program order. Every variant runs on its own simulated
// machine, so the measurements are independent and bit-identical to a
// serial run; only wall-clock time changes. workers <= 0 uses GOMAXPROCS.
//
// The generate-then-launch chaining that used to live here moved up to
// the campaign engine: internal/campaign.Run is the single end-to-end
// entry point, and the microtools facade's Run wraps it.
func LaunchAll(ctx context.Context, progs []codegen.Program, launch launcher.Options, workers int) ([]*launcher.Measurement, error) {
	return LaunchAllProgress(ctx, progs, launch, workers, nil)
}

// LaunchAllProgress is LaunchAll with a campaign-progress callback:
// onDone(done, total) fires after each variant finishes (from whichever
// worker goroutine finished it; done counts completions, not program
// order). nil disables the callback.
//
// Faults are isolated per variant: a failing variant leaves a nil slot in
// the returned slice while every other variant still gets measured, and
// the error aggregates all failures as a *LaunchErrors. Canceling the
// context stops the pool within one variant and returns the partial
// measurements alongside ctx.Err().
func LaunchAllProgress(ctx context.Context, progs []codegen.Program, launch launcher.Options, workers int, onDone func(done, total int)) ([]*launcher.Measurement, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: no programs to launch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(progs) {
		workers = len(progs)
	}
	total := len(progs)
	var done int64
	report := func() {
		if onDone != nil {
			onDone(int(atomic.AddInt64(&done, 1)), total)
		}
	}
	canceled := func() bool {
		if ctx == nil {
			return false
		}
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	out := make([]*launcher.Measurement, len(progs))
	errs := make([]error, len(progs))
	if workers <= 1 {
		for i := range progs {
			if canceled() {
				break
			}
			out[i], errs[i] = launchOne(ctx, &progs[i], launch)
			report()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if canceled() {
						continue
					}
					out[i], errs[i] = launchOne(ctx, &progs[i], launch)
					report()
				}
			}()
		}
	feed:
		for i := range progs {
			select {
			case next <- i:
			case <-ctxDone(ctx):
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	if ctx != nil && ctx.Err() != nil {
		return out, ctx.Err()
	}
	agg := &LaunchErrors{Total: total}
	for i, err := range errs {
		if err != nil {
			agg.Failed = append(agg.Failed, &VariantError{Index: i, Name: progs[i].Name, Err: err})
		}
	}
	if len(agg.Failed) > 0 {
		return out, agg
	}
	return out, nil
}

// ctxDone returns ctx's done channel, or a never-closing one for a nil ctx.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

func launchOne(ctx context.Context, p *codegen.Program, opts launcher.Options) (*launcher.Measurement, error) {
	// The emit pass lowers pipeline programs; Lowered only falls back to
	// lowering the kernel for hand-built programs.
	kernel, err := p.Lowered()
	if err != nil {
		return nil, err
	}
	return launcher.Launch(ctx, kernel, opts)
}

// GeneratedProgram aliases the generator output type for CLI consumers.
type GeneratedProgram = codegen.Program

// looksLikeC detects MicroCreator's C output format.
func looksLikeC(src string) bool {
	return strings.Contains(src, "__asm__(") ||
		strings.Contains(src, "/* Generated by MicroCreator")
}

// extractInlineAsm pulls the assembly text out of the __asm__("..."); block
// of a MicroCreator-generated C translation unit.
func extractInlineAsm(src string) (string, error) {
	i := strings.Index(src, "__asm__(")
	if i < 0 {
		return "", fmt.Errorf("core: C input without an __asm__ block")
	}
	rest := src[i:]
	end := strings.Index(rest, ");")
	if end < 0 {
		return "", fmt.Errorf("core: unterminated __asm__ block")
	}
	block := rest[:end]
	var b strings.Builder
	for {
		q := strings.IndexByte(block, '"')
		if q < 0 {
			break
		}
		block = block[q+1:]
		// Find the closing quote, honouring escapes.
		j := 0
		for j < len(block) {
			if block[j] == '\\' {
				j += 2
				continue
			}
			if block[j] == '"' {
				break
			}
			j++
		}
		if j >= len(block) {
			return "", fmt.Errorf("core: unterminated string in __asm__ block")
		}
		lit := block[:j]
		block = block[j+1:]
		unq, err := strconv.Unquote(`"` + lit + `"`)
		if err != nil {
			return "", fmt.Errorf("core: bad string literal in __asm__ block: %w", err)
		}
		b.WriteString(unq)
	}
	if b.Len() == 0 {
		return "", fmt.Errorf("core: empty __asm__ block")
	}
	return b.String(), nil
}

// residencyLevel classifies a per-array footprint against a machine's
// hierarchy (the §5.1 protocol's placement logic).
func residencyLevel(m *machine.Machine, arrayBytes int64) string {
	h := m.Hierarchy
	switch {
	case arrayBytes <= h.L1.Size:
		return "L1"
	case arrayBytes <= h.L2.Size:
		return "L2"
	case arrayBytes <= h.L3.Size:
		return "L3"
	}
	return "RAM"
}

// ScreenTopK pre-ranks generated variants with the analytic steady-state
// model (internal/analytic) and returns the k statically most promising
// ones, by estimated cycles per element. MicroCreator can generate
// thousands of variants; screening keeps full event-driven measurement
// budgets for the contenders. accessWidth is the kernel's element width in
// bytes (used for bandwidth bounds). The context cancels the screening
// loop between variants.
func ScreenTopK(ctx context.Context, progs []codegen.Program, machineName string, arrayBytes int64, accessWidth, k int) ([]codegen.Program, error) {
	if k <= 0 || k >= len(progs) {
		return progs, nil
	}
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	mp, err := analytic.ForLevel(m, residencyLevel(m, arrayBytes), accessWidth)
	if err != nil {
		return nil, err
	}
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, 0, len(progs))
	for i := range progs {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p, err := progs[i].Lowered()
		if err != nil {
			return nil, fmt.Errorf("core: screening %s: %w", progs[i].Name, err)
		}
		est, err := analytic.EstimateLoop(p, m.Arch, mp)
		if err != nil {
			return nil, fmt.Errorf("core: screening %s: %w", progs[i].Name, err)
		}
		// Normalize per element: elements per iteration from the loop's
		// memory traffic.
		loopElems := 0.0
		for j := est.LoopStart; j <= est.LoopEnd; j++ {
			in := &p.Insts[j]
			if w := in.Op.MemWidth(); in.IsLoad() || in.IsStore() {
				loopElems += float64(w) / float64(accessWidth)
			}
		}
		if loopElems == 0 {
			loopElems = 1
		}
		scores = append(scores, scored{idx: i, score: est.CyclesPerIter / loopElems})
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
	out := make([]codegen.Program, 0, k)
	for _, s := range scores[:k] {
		out = append(out, progs[s.idx])
	}
	return out, nil
}

// ScreenTopKStatic pre-ranks generated variants with the dataflow lower
// bound (internal/dataflow) instead of the analytic steady-state model, and
// returns the k statically most promising ones by CyclesLowerBound per
// element. Unlike ScreenTopK it ignores the memory hierarchy entirely — the
// bound only sees dependences, latencies and port pressure — which makes it
// the right screen for cache-resident studies where the core, not the
// memory system, separates the variants. Variants the analysis cannot bound
// (no loop, no recognisable counter) rank last rather than failing the
// screen.
func ScreenTopKStatic(ctx context.Context, progs []codegen.Program, machineName string, accessWidth, k int) ([]codegen.Program, error) {
	if k <= 0 || k >= len(progs) {
		return progs, nil
	}
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, 0, len(progs))
	for i := range progs {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p, err := progs[i].Lowered()
		if err != nil {
			return nil, fmt.Errorf("core: screening %s: %w", progs[i].Name, err)
		}
		score := math.Inf(1)
		if rep, err := dataflow.Analyze(p, m.Arch); err == nil {
			loopElems := 0.0
			for j := rep.LoopStart; j <= rep.LoopEnd; j++ {
				in := &p.Insts[j]
				if w := in.Op.MemWidth(); in.IsLoad() || in.IsStore() {
					loopElems += float64(w) / float64(accessWidth)
				}
			}
			if loopElems == 0 {
				loopElems = 1
			}
			score = rep.CyclesLowerBound / loopElems
		}
		scores = append(scores, scored{idx: i, score: score})
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
	out := make([]codegen.Program, 0, k)
	for _, s := range scores[:k] {
		out = append(out, progs[s.idx])
	}
	return out, nil
}
