// Package cpu is the core timing model of the MicroTools reproduction: a
// trace-driven out-of-order pipeline that executes decoded isa.Programs
// functionally (integer state, control flow, address generation) while
// scheduling their µops against frontend width, ROB capacity, execution
// ports, load/store buffers and the memory hierarchy.
//
// The scheduling discipline is greedy per dynamic µop (the approach of
// steady-state pipeline analyzers): each µop dispatches at the earliest
// cycle permitted by the frontend, ROB space, source-operand readiness and
// port availability. This reproduces the phenomena the paper's experiments
// probe — port pressure (one load port on Nehalem, two on Sandy Bridge),
// dependence chains (XMM register rotation), loop-overhead amortization
// under unrolling, and memory-bound behaviour via internal/memsim.
package cpu

import (
	"fmt"

	"microtools/internal/isa"
)

// MemSystem is the memory hierarchy interface the core issues accesses to
// (implemented by memsim.System).
type MemSystem interface {
	Load(core int, addr uint64, size int, issue int64) int64
	Store(core int, addr uint64, size int, issue int64) int64
}

// Mix counts dynamic instructions by class (the input to the §7 power
// model and to verbose reporting).
type Mix struct {
	Loads, Stores, SSEArith, IntALU, Branches int64
}

// Add accumulates another mix.
func (m *Mix) Add(o Mix) {
	m.Loads += o.Loads
	m.Stores += o.Stores
	m.SSEArith += o.SSEArith
	m.IntALU += o.IntALU
	m.Branches += o.Branches
}

// Result summarizes one finished kernel invocation.
type Result struct {
	// Cycles is the total core-cycle cost of the invocation.
	Cycles int64
	// Insts is the number of dynamic instructions executed.
	Insts int64
	// Mix is the dynamic instruction class breakdown.
	Mix Mix
	// Mispredicts counts conditional branches resolved against the
	// predictor's direction.
	Mispredicts int64
	// FrontendStalls accumulates cycles the frontend spent refilling:
	// ROB-full backpressure, mispredict redirects and taken-branch fetch
	// bubbles (the simulated-PMU frontend-stall counter).
	FrontendStalls int64
	// IRQStalls accumulates cycles stolen by injected interrupts (§4.7
	// noise); zero on quiet runs.
	IRQStalls int64
	// Truncated reports that execution stopped at the instruction budget
	// rather than at RET.
	Truncated bool
}

// Core is one simulated out-of-order core. It is resumable: Step advances
// until a cycle limit so a multi-core machine can interleave cores in
// bounded quanta.
type Core struct {
	id   int
	arch *isa.Arch
	mem  MemSystem

	prog    *isa.Program
	decoded *isa.DecodedProgram
	regs    isa.RegFile

	pc   int
	done bool

	// Frontend state.
	frontCycle int64
	frontSlots int

	// Dataflow readiness.
	regReady  [isa.NumRegs]int64
	flagReady int64

	// Backend resources.
	portFree [isa.NumPorts]int64
	rob      []int64
	robHead  int
	robCount int
	loadBuf  []int64
	loadIdx  int
	storeBuf []int64
	storeIdx int

	// Branch predictor: 2-bit saturating counter per static branch
	// (taken if >= 2), so a loop's exit costs one mispredict without a
	// second one at re-entry.
	predCtr []uint8
	// slotsSinceTaken counts issue slots since the last taken branch;
	// loops within Arch.LSDSize stream without the fetch bubble.
	slotsSinceTaken int

	maxCompletion int64
	dynInsts      int64
	mix           Mix
	maxInsts      int64
	truncated     bool

	// Simulated-PMU pipeline counters (exported through Result).
	mispredicts    int64
	frontendStalls int64
	irqStalls      int64

	startCycle int64
}

// NewCore creates a core bound to a memory system.
func NewCore(id int, arch *isa.Arch, mem MemSystem) *Core {
	return &Core{id: id, arch: arch, mem: mem}
}

// ID returns the core's index in the machine.
func (c *Core) ID() int { return c.id }

// Reset loads a program and initial register state, starting the pipeline
// at startCycle. maxInsts bounds dynamic instructions (0 = unlimited).
//
// Validation and µop decode go through the program's decode cache
// (isa.Program.Decoded), so repeat launches of the same kernel — the
// launcher's repetition loops, a campaign's retries — pay them exactly once.
// Reset itself is allocation-free once the core's buffers fit the program.
func (c *Core) Reset(prog *isa.Program, regs *isa.RegFile, startCycle int64, maxInsts int64) error {
	dp, err := prog.Decoded(c.arch)
	if err != nil {
		return fmt.Errorf("cpu: %w", err)
	}
	c.prog = prog
	c.decoded = dp
	c.regs = *regs
	c.pc = 0
	c.done = false
	c.frontCycle = startCycle
	c.frontSlots = 0
	for i := range c.regReady {
		c.regReady[i] = startCycle
	}
	c.flagReady = startCycle
	for i := range c.portFree {
		c.portFree[i] = startCycle
	}
	if c.rob == nil || len(c.rob) != c.arch.ROBSize {
		c.rob = make([]int64, c.arch.ROBSize)
	}
	c.robHead, c.robCount = 0, 0
	if c.loadBuf == nil || len(c.loadBuf) != c.arch.LoadBuffers {
		c.loadBuf = make([]int64, c.arch.LoadBuffers)
	}
	if c.storeBuf == nil || len(c.storeBuf) != c.arch.StoreBuffers {
		c.storeBuf = make([]int64, c.arch.StoreBuffers)
	}
	for i := range c.loadBuf {
		c.loadBuf[i] = startCycle
	}
	for i := range c.storeBuf {
		c.storeBuf[i] = startCycle
	}
	c.loadIdx, c.storeIdx = 0, 0
	if cap(c.predCtr) < len(prog.Insts) {
		c.predCtr = make([]uint8, len(prog.Insts))
	}
	c.predCtr = c.predCtr[:len(prog.Insts)]
	copy(c.predCtr, dp.PredInit)
	c.slotsSinceTaken = 0
	c.maxCompletion = startCycle
	c.dynInsts = 0
	c.mix = Mix{}
	c.maxInsts = maxInsts
	c.truncated = false
	c.mispredicts = 0
	c.frontendStalls = 0
	c.irqStalls = 0
	c.startCycle = startCycle
	return nil
}

// Done reports whether the program has finished (RET or budget).
func (c *Core) Done() bool { return c.done }

// Cycle returns the pipeline frontier (the frontend's current cycle).
func (c *Core) Cycle() int64 { return c.frontCycle }

// Reg returns an architectural register value (e.g. %eax after the run, per
// the §4.4 launcher protocol).
func (c *Core) Reg(r isa.Reg) uint64 { return c.regs.Get(r) }

// Result returns the invocation summary; valid once Done.
func (c *Core) Result() Result {
	return Result{
		Cycles:         c.maxCompletion - c.startCycle,
		Insts:          c.dynInsts,
		Mix:            c.mix,
		Mispredicts:    c.mispredicts,
		FrontendStalls: c.frontendStalls,
		IRQStalls:      c.irqStalls,
		Truncated:      c.truncated,
	}
}

// Stall pushes the frontend forward (interrupt / noise injection).
func (c *Core) Stall(cycles int64) {
	if cycles > 0 {
		c.frontCycle += cycles
		c.frontSlots = 0
		c.irqStalls += cycles
	}
}

// Step advances execution until the pipeline frontier reaches limit or the
// program finishes. Run a whole program with Step(math.MaxInt64).
func (c *Core) Step(limit int64) (bool, error) {
	if c.prog == nil {
		return false, fmt.Errorf("cpu: core %d has no program", c.id)
	}
	for !c.done && c.frontCycle < limit {
		if err := c.stepInst(); err != nil {
			return false, err
		}
	}
	return c.done, nil
}

// issueSlot reserves one frontend issue slot and returns its cycle.
func (c *Core) issueSlot(fused bool) int64 {
	if fused {
		return c.frontCycle
	}
	if c.frontSlots >= c.arch.IssueWidth {
		c.frontCycle++
		c.frontSlots = 0
	}
	c.frontSlots++
	c.slotsSinceTaken++
	return c.frontCycle
}

// robSlot reserves ROB space, returning the earliest dispatch cycle.
func (c *Core) robSlot(dispatch int64, completion int64) int64 {
	if c.robCount == len(c.rob) {
		// Wait for the oldest entry to retire.
		oldest := c.rob[c.robHead]
		if oldest > dispatch {
			dispatch = oldest
		}
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
	}
	tail := (c.robHead + c.robCount) % len(c.rob)
	c.rob[tail] = completion
	c.robCount++
	return dispatch
}

// portPreference orders port candidates for multi-port µops: generic ALU
// traffic prefers P5 and P0 before P1 (the FP-add home port), so
// accumulation chains are not delayed by integer loop overhead — the
// behaviour an age-ordered hardware scheduler converges to.
var portPreference = [...]isa.Port{isa.P5, isa.P0, isa.P1, isa.P2, isa.P3, isa.P4}

// pickPort chooses the earliest-free allowed port (preference order breaks
// ties), reserving it from start.
func (c *Core) pickPort(mask isa.PortMask, earliest int64) (int64, error) {
	best := isa.Port(255)
	var bestFree int64
	for _, p := range portPreference {
		if !mask.Has(p) {
			continue
		}
		if best == 255 || c.portFree[p] < bestFree {
			best = p
			bestFree = c.portFree[p]
		}
	}
	if best == 255 {
		return 0, fmt.Errorf("cpu: µop with empty port mask")
	}
	start := earliest
	if bestFree > start {
		start = bestFree
	}
	c.portFree[best] = start + 1
	return start, nil
}

func (c *Core) note(completion int64) {
	if completion > c.maxCompletion {
		c.maxCompletion = completion
	}
}

// addrReady returns the cycle the address-generation sources are available.
func (c *Core) addrReady(info *isa.InstInfo) int64 {
	ready := int64(0)
	for _, r := range info.AddrRegs {
		if r != isa.NoReg && c.regReady[r] > ready {
			ready = c.regReady[r]
		}
	}
	return ready
}

// srcReady returns the cycle all source operands are available: address
// registers, data-source registers and (for flag readers) the flags.
func (c *Core) srcReady(info *isa.InstInfo) int64 {
	ready := c.addrReady(info)
	for _, r := range info.SrcRegs[:info.NSrc] {
		if c.regReady[r] > ready {
			ready = c.regReady[r]
		}
	}
	if info.ReadsFlags && c.flagReady > ready {
		ready = c.flagReady
	}
	return ready
}

// stepInst schedules and functionally executes one dynamic instruction. The
// static facts about the instruction (memory operand, sources, class) come
// precomputed from the decode cache; this loop only does per-dynamic work.
func (c *Core) stepInst() error {
	inst := &c.prog.Insts[c.pc]
	uops := c.decoded.Uops[c.pc]
	info := &c.decoded.Info[c.pc]

	var addr uint64
	var width int
	if info.HasMem {
		addr = info.Mem.EffectiveAddress(&c.regs)
		width = info.MemWidth
	}

	var loadReady int64 // when loaded data is available
	var lastCompletion int64

	for ui := range uops {
		u := &uops[ui]
		slot := c.issueSlot(u.Fused)
		var ready int64
		switch u.Role {
		case isa.RoleLoad, isa.RoleStoreAddr:
			ready = c.addrReady(info)
		case isa.RoleStoreData:
			// Needs the stored register value.
			if r := info.StoreDataReg; r != isa.NoReg && c.regReady[r] > ready {
				ready = c.regReady[r]
			}
		case isa.RoleCompute:
			ready = c.srcReady(info)
			if u.Fused && loadReady > ready {
				// Micro-fused load+op: compute waits for the load.
				ready = loadReady
			}
		case isa.RoleBranch:
			ready = c.srcReady(info)
		}
		if slot > ready {
			ready = slot
		}
		start, err := c.pickPort(u.Ports, ready)
		if err != nil {
			return err
		}
		completion := start + int64(u.Lat)
		switch u.Role {
		case isa.RoleLoad:
			// Load buffer occupancy.
			if lb := c.loadBuf[c.loadIdx]; lb > start {
				start = lb
			}
			completion = c.mem.Load(c.id, addr, width, start)
			c.loadBuf[c.loadIdx] = completion
			c.loadIdx = (c.loadIdx + 1) % len(c.loadBuf)
			loadReady = completion
		case isa.RoleStoreData:
			// Store buffer: the store retires into L1 asynchronously;
			// occupancy throttles store streams at memory bandwidth.
			if sb := c.storeBuf[c.storeIdx]; sb > start {
				start = sb
				completion = start + int64(u.Lat)
			}
			drain := c.mem.Store(c.id, addr, width, start)
			c.storeBuf[c.storeIdx] = drain
			c.storeIdx = (c.storeIdx + 1) % len(c.storeBuf)
		}
		dispatch := c.robSlot(slot, completion)
		if dispatch > c.frontCycle {
			// ROB full: the frontend stalls.
			c.frontendStalls += dispatch - c.frontCycle
			c.frontCycle = dispatch
			c.frontSlots = 0
		}
		c.note(completion)
		if completion > lastCompletion {
			lastCompletion = completion
		}
	}

	// Writeback: destination readiness.
	if info.DstReg != isa.NoReg {
		when := lastCompletion
		if info.Load && loadReady > 0 && len(uops) == 1 {
			when = loadReady
		}
		c.regReady[info.DstReg] = when
	}
	if info.WritesFlags {
		c.flagReady = lastCompletion
	}

	// Functional execution and branch resolution.
	next, taken, err := isa.Exec(inst, c.pc, &c.regs)
	if err != nil {
		return err
	}
	c.dynInsts++
	switch {
	case info.Load:
		c.mix.Loads++
	case info.Store:
		c.mix.Stores++
	}
	switch info.Class {
	case isa.ClassBranch:
		c.mix.Branches++
	case isa.ClassSSE:
		c.mix.SSEArith++
	case isa.ClassALU:
		c.mix.IntALU++
	}
	if info.CondBranch {
		predicted := c.predCtr[c.pc] >= 2
		if taken != predicted {
			// Mispredict: refill after resolution.
			c.mispredicts++
			resolve := lastCompletion + int64(c.arch.BranchMissPenalty)
			if resolve > c.frontCycle {
				c.frontendStalls += resolve - c.frontCycle
				c.frontCycle = resolve
				c.frontSlots = 0
			}
			c.note(resolve)
		}
		if taken {
			if c.predCtr[c.pc] < 3 {
				c.predCtr[c.pc]++
			}
		} else if c.predCtr[c.pc] > 0 {
			c.predCtr[c.pc]--
		}
	}
	if taken && info.Branch {
		// Loops small enough for the loop-stream detector replay
		// seamlessly: the frontend keeps issuing across the back edge.
		// Larger bodies end the issue group and pay the fetch redirect.
		if c.slotsSinceTaken > c.arch.LSDSize {
			c.frontCycle += 1 + int64(c.arch.TakenBranchBubble)
			c.frontendStalls += 1 + int64(c.arch.TakenBranchBubble)
			c.frontSlots = 0
		}
		c.slotsSinceTaken = 0
	}
	if next < 0 {
		c.done = true
		return nil
	}
	c.pc = next
	if c.maxInsts > 0 && c.dynInsts >= c.maxInsts {
		c.done = true
		c.truncated = true
	}
	return nil
}
