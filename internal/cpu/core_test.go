package cpu

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/isa"
	"microtools/internal/memsim"
)

// fixedMem is a constant-latency memory stub for pure pipeline tests.
type fixedMem struct {
	lat int64
}

func (m fixedMem) Load(_ int, _ uint64, _ int, issue int64) int64  { return issue + m.lat }
func (m fixedMem) Store(_ int, _ uint64, _ int, issue int64) int64 { return issue + 1 }

func memConfig() memsim.HierarchyConfig {
	return memsim.HierarchyConfig{
		L1: memsim.CacheConfig{Name: "L1", Size: 4 << 10, LineSize: 64, Assoc: 8,
			Latency: 4, ThroughputCycles: 1, MSHRs: 10, Banks: 8},
		L2: memsim.CacheConfig{Name: "L2", Size: 32 << 10, LineSize: 64, Assoc: 8,
			Latency: 10, ThroughputCycles: 2},
		L3: memsim.CacheConfig{Name: "L3", Size: 256 << 10, LineSize: 64, Assoc: 16,
			Latency: 30, ThroughputCycles: 2},
		Mem:              memsim.MemConfig{Latency: 150, Channels: 3, ChannelBytesPerCycle: 4},
		CoresPerSocket:   4,
		CoreClockRatio:   1.0,
		NextLinePrefetch: true,
		AliasPenalty:     5,
		AliasWindow:      30,
		SplitPenalty:     3,
	}
}

// loadKernel builds a u-unrolled movaps load loop in assembly.
func loadKernel(u int) string {
	var b strings.Builder
	b.WriteString(".L0:\n")
	for c := 0; c < u; c++ {
		fmt.Fprintf(&b, "movaps %d(%%rsi), %%xmm%d\n", 16*c, c%8)
	}
	fmt.Fprintf(&b, "add $%d, %%rsi\n", 16*u)
	fmt.Fprintf(&b, "sub $%d, %%rdi\n", 4*u)
	b.WriteString("jge .L0\nret\n")
	return b.String()
}

// runKernel executes src until RET and returns (cycles, loop iterations).
func runKernel(t *testing.T, arch *isa.Arch, mem MemSystem, src string, n uint64, base uint64) (int64, int64) {
	t.Helper()
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	var rf isa.RegFile
	rf.Set(isa.RDI, n)
	rf.Set(isa.RSI, base)
	core := NewCore(0, arch, mem)
	if err := core.Reset(p, &rf, 0, 0); err != nil {
		t.Fatal(err)
	}
	done, err := core.Step(math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("program did not finish")
	}
	res := core.Result()
	return res.Cycles, res.Insts
}

// cyclesPerIter measures steady-state cycles per loop iteration for a
// u-unrolled load kernel against a fixed-latency memory.
func cyclesPerIter(t *testing.T, arch *isa.Arch, u int) float64 {
	t.Helper()
	iters := int64(2000)
	n := uint64(4 * u * int(iters))
	cycles, _ := runKernel(t, arch, fixedMem{lat: 4}, loadKernel(u), n-1, 0x100000)
	return float64(cycles) / float64(iters)
}

// mixedKernel builds a u-unrolled kernel alternating loads and stores.
func mixedKernel(u int) string {
	var b strings.Builder
	b.WriteString(".L0:\n")
	for c := 0; c < u; c++ {
		if c%2 == 0 {
			fmt.Fprintf(&b, "movaps %d(%%rsi), %%xmm%d\n", 16*c, c%8)
		} else {
			fmt.Fprintf(&b, "movaps %%xmm%d, %d(%%rsi)\n", c%8, 16*c)
		}
	}
	fmt.Fprintf(&b, "add $%d, %%rsi\n", 16*u)
	fmt.Fprintf(&b, "sub $%d, %%rdi\n", 4*u)
	b.WriteString("jge .L0\nret\n")
	return b.String()
}

// TestUnrollAmortizesLoopOverhead reproduces the Fig. 11 methodology on the
// core side. The paper takes, per unroll group, the minimum over the
// generated load/store patterns (§5.1); unrolling pays off because a longer
// body can pair loads with stores across the separate load and store ports,
// while the u=1 kernel is pinned at its single port's 1 op/cycle bound.
func TestUnrollAmortizesLoopOverhead(t *testing.T) {
	arch := isa.Nehalem()
	iters := int64(2000)

	// u=1 pure-load kernel: 1 load/cycle bound.
	perOp1 := cyclesPerIter(t, arch, 1)
	if perOp1 < 0.95 || perOp1 > 1.6 {
		t.Errorf("u=1 cycles/load = %.2f, want near the 1/cycle port bound", perOp1)
	}

	// u=8 best pattern (alternating L/S): loads and stores pair up.
	n := uint64(4*8*int(iters)) - 1
	cycles, _ := runKernel(t, arch, fixedMem{lat: 4}, mixedKernel(8), n, 0x100000)
	perOp8 := float64(cycles) / float64(iters) / 8
	if perOp8 >= perOp1*0.8 {
		t.Errorf("unrolled mixed pattern did not pair ports: u1=%.2f u8=%.2f cycles/op", perOp1, perOp8)
	}
	if perOp8 < 0.5 {
		t.Errorf("u=8 cycles/op = %.2f below the paired two-port bound", perOp8)
	}
}

// TestSandyBridgeLoadThroughput: two load ports allow < 1 cycle/load.
func TestSandyBridgeLoadThroughput(t *testing.T) {
	nhm := cyclesPerIter(t, isa.Nehalem(), 8) / 8
	snb := cyclesPerIter(t, isa.SandyBridge(), 8) / 8
	if snb >= nhm {
		t.Errorf("SNB cycles/load %.2f not below NHM %.2f", snb, nhm)
	}
	if snb > 0.9 {
		t.Errorf("SNB cycles/load %.2f, want < 0.9 with two load ports", snb)
	}
}

// TestFPLatencyChain: a dependent addsd chain runs at the FP add latency
// per instruction.
func TestFPLatencyChain(t *testing.T) {
	arch := isa.Nehalem()
	var b strings.Builder
	b.WriteString(".L0:\n")
	for i := 0; i < 8; i++ {
		b.WriteString("addsd %xmm1, %xmm1\n")
	}
	b.WriteString("sub $1, %rdi\njge .L0\nret\n")
	iters := int64(500)
	cycles, _ := runKernel(t, arch, fixedMem{lat: 4}, b.String(), uint64(iters-1), 0)
	perIter := float64(cycles) / float64(iters)
	want := float64(8 * arch.FPAddLat)
	if perIter < want-1 || perIter > want+4 {
		t.Errorf("dependent add chain: %.2f cycles/iter, want ~%v", perIter, want)
	}
}

// TestIndependentFPAddsThroughputBound: independent addsd on distinct
// registers are throughput-bound (1/cycle on P1), far below latency-bound.
func TestIndependentFPAddsThroughputBound(t *testing.T) {
	arch := isa.Nehalem()
	var b strings.Builder
	b.WriteString(".L0:\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "addsd %%xmm%d, %%xmm%d\n", i, i)
	}
	b.WriteString("sub $1, %rdi\njge .L0\nret\n")
	iters := int64(500)
	cycles, _ := runKernel(t, arch, fixedMem{lat: 4}, b.String(), uint64(iters-1), 0)
	perIter := float64(cycles) / float64(iters)
	// 8 independent adds on one port: ~8 cycles, not 24.
	if perIter > 12 {
		t.Errorf("independent adds: %.2f cycles/iter, want ~8 (port bound)", perIter)
	}
}

// TestStepDeterminismUnderQuanta: stepping in small quanta produces the
// exact same result as one-shot execution (required for lock-step
// multi-core simulation).
func TestStepDeterminismUnderQuanta(t *testing.T) {
	src := loadKernel(4)
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	run := func(quantum int64) Result {
		var rf isa.RegFile
		rf.Set(isa.RDI, 16*400)
		rf.Set(isa.RSI, 0x100000)
		sys, err := memsim.NewSystem(memConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		core := NewCore(0, arch(), sys)
		if err := core.Reset(p, &rf, 0, 0); err != nil {
			t.Fatal(err)
		}
		for {
			done, err := core.Step(core.Cycle() + quantum)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		return core.Result()
	}
	oneShot := run(math.MaxInt64 / 2)
	quanta := run(64)
	if oneShot != quanta {
		t.Errorf("quantum stepping diverged: %+v vs %+v", quanta, oneShot)
	}
}

func arch() *isa.Arch { return isa.Nehalem() }

// TestMemoryHierarchyIntegration: the same kernel over a RAM-sized array is
// slower per iteration than over an L1-sized array.
func TestMemoryHierarchyIntegration(t *testing.T) {
	cfg := memConfig()
	run := func(bytes int64) float64 {
		sys, err := memsim.NewSystem(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		elems := uint64(bytes / 4)
		// Several passes: warm, then measure the steady state.
		var warmCycles int64
		for pass := 0; pass < 4; pass++ {
			p, err := asm.ParseOne(loadKernel(8), "k")
			if err != nil {
				t.Fatal(err)
			}
			var rf isa.RegFile
			rf.Set(isa.RDI, elems-1)
			rf.Set(isa.RSI, 0x1000000)
			core := NewCore(0, arch(), sys)
			if err := core.Reset(p, &rf, 0, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := core.Step(math.MaxInt64); err != nil {
				t.Fatal(err)
			}
			warmCycles = core.Result().Cycles
		}
		iters := float64(elems) / 32
		return float64(warmCycles) / iters
	}
	l1 := run(cfg.L1.Size / 2)
	ram := run(cfg.L3.Size * 4)
	if ram <= l1*1.5 {
		t.Errorf("RAM-resident %.2f cycles/iter not clearly above L1-resident %.2f", ram, l1)
	}
}

// TestEaxIterationProtocol: the Fig. 9 counter is readable after the run.
func TestEaxIterationProtocol(t *testing.T) {
	src := `
.L0:
movaps (%rsi), %xmm0
add $16, %rsi
add $1, %eax
sub $4, %rdi
jge .L0
ret`
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	var rf isa.RegFile
	rf.Set(isa.RDI, 399)
	rf.Set(isa.RSI, 0x100000)
	core := NewCore(0, arch(), fixedMem{lat: 4})
	if err := core.Reset(p, &rf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Step(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	if got := core.Reg(isa.RAX); got != 100 {
		t.Errorf("eax = %d loop iterations, want 100", got)
	}
}

// TestMaxInstsTruncation: the instruction budget stops long kernels.
func TestMaxInstsTruncation(t *testing.T) {
	p, err := asm.ParseOne(loadKernel(1), "k")
	if err != nil {
		t.Fatal(err)
	}
	var rf isa.RegFile
	rf.Set(isa.RDI, 1<<40) // effectively endless
	rf.Set(isa.RSI, 0x100000)
	core := NewCore(0, arch(), fixedMem{lat: 4})
	if err := core.Reset(p, &rf, 0, 1000); err != nil {
		t.Fatal(err)
	}
	done, err := core.Step(math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("budgeted run did not report done")
	}
	res := core.Result()
	if !res.Truncated || res.Insts != 1000 {
		t.Errorf("result = %+v, want truncated at 1000 insts", res)
	}
}

// TestBranchMispredictChargedOnExit: a loop's final not-taken branch pays
// the misprediction penalty exactly once.
func TestBranchMispredictChargedOnExit(t *testing.T) {
	archN := isa.Nehalem()
	shortLoop := func(iters uint64) int64 {
		cycles, _ := runKernel(t, archN, fixedMem{lat: 4}, loadKernel(1), iters*4-1, 0x100000)
		return cycles
	}
	c10 := shortLoop(10)
	c11 := shortLoop(11)
	perIter := c11 - c10
	if perIter > int64(archN.BranchMissPenalty) {
		t.Errorf("marginal iteration cost %d exceeds mispredict penalty; exit penalty likely charged per iteration", perIter)
	}
	if c10 < int64(archN.BranchMissPenalty) {
		t.Errorf("total cycles %d too low to include the exit mispredict", c10)
	}
}

// TestStallInjectsCycles: noise injection pushes completion time.
func TestStallInjectsCycles(t *testing.T) {
	p, err := asm.ParseOne(loadKernel(1), "k")
	if err != nil {
		t.Fatal(err)
	}
	run := func(stall int64) int64 {
		var rf isa.RegFile
		rf.Set(isa.RDI, 4*100-1)
		rf.Set(isa.RSI, 0x100000)
		core := NewCore(0, arch(), fixedMem{lat: 4})
		if err := core.Reset(p, &rf, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := core.Step(50); err != nil {
			t.Fatal(err)
		}
		core.Stall(stall)
		if _, err := core.Step(math.MaxInt64); err != nil {
			t.Fatal(err)
		}
		return core.Result().Cycles
	}
	base := run(0)
	stalled := run(500)
	if stalled < base+400 {
		t.Errorf("stall not reflected: base %d stalled %d", base, stalled)
	}
}

// TestResetRequiresValidProgram: a program with unresolved branches fails.
func TestResetRequiresValidProgram(t *testing.T) {
	p := &isa.Program{Name: "bad", Insts: []isa.Inst{{Op: isa.NOP}}, Labels: map[string]int{}}
	core := NewCore(0, arch(), fixedMem{})
	var rf isa.RegFile
	if err := core.Reset(p, &rf, 0, 0); err == nil {
		t.Error("Reset accepted a program with no ret")
	}
}

// TestMixCounting: the dynamic instruction mix matches the kernel shape.
func TestMixCounting(t *testing.T) {
	src := `
.L0:
movaps (%rsi), %xmm0
addps %xmm1, %xmm2
movaps %xmm0, 16(%rsi)
add $32, %rsi
sub $8, %rdi
jge .L0
ret`
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	var rf isa.RegFile
	iters := uint64(100)
	rf.Set(isa.RDI, iters*8-1)
	rf.Set(isa.RSI, 0x100000)
	core := NewCore(0, arch(), fixedMem{lat: 4})
	if err := core.Reset(p, &rf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Step(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	m := core.Result().Mix
	if m.Loads != int64(iters) || m.Stores != int64(iters) {
		t.Errorf("loads/stores = %d/%d, want %d each", m.Loads, m.Stores, iters)
	}
	if m.SSEArith != int64(iters) {
		t.Errorf("sse arith = %d, want %d", m.SSEArith, iters)
	}
	if m.Branches != int64(iters) {
		t.Errorf("branches = %d, want %d", m.Branches, iters)
	}
	if m.IntALU != int64(2*iters) {
		t.Errorf("int alu = %d, want %d", m.IntALU, 2*iters)
	}
}

// TestSNBStoreAddrSharesLoadPorts: on Sandy Bridge, store-address µops
// compete with loads on P2/P3, so a saturating load+store mix cannot beat
// the shared-port bound.
func TestSNBStoreAddrSharesLoadPorts(t *testing.T) {
	iters := int64(2000)
	n := uint64(4*8*int(iters)) - 1
	cycles, _ := runKernel(t, isa.SandyBridge(), fixedMem{lat: 4}, mixedKernel(8), n, 0x100000)
	perIter := float64(cycles) / float64(iters)
	// 4 loads + 4 store-addr on 2 ports = 4 cycles minimum per iteration.
	if perIter < 3.9 {
		t.Errorf("SNB mixed kernel %.2f cycles/iter beats the shared-AGU bound (4)", perIter)
	}
}

// TestROBBoundsRunAhead: with a long-latency load feeding nothing, the ROB
// caps how far execution runs ahead; a tiny ROB makes the loop
// latency-bound while a big one hides it.
func TestROBBoundsRunAhead(t *testing.T) {
	run := func(robSize int) float64 {
		a := *isa.Nehalem()
		a.ROBSize = robSize
		iters := int64(400)
		cycles, _ := runKernel(t, &a, fixedMem{lat: 300}, loadKernel(1), uint64(4*iters)-1, 0x100000)
		return float64(cycles) / float64(iters)
	}
	small := run(8)
	big := run(256)
	if big >= small/2 {
		t.Errorf("big ROB (%.1f cyc/iter) did not hide latency vs small ROB (%.1f)", big, small)
	}
}

// TestStoreBufferThrottlesStores: a store stream against a slow drain is
// bounded by the store buffer, not by issue width.
func TestStoreBufferThrottlesStores(t *testing.T) {
	slow := slowDrainMem{drain: 50}
	src := `
.L0:
movaps %xmm0, (%rsi)
add $16, %rsi
sub $4, %rdi
jge .L0
ret`
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	iters := int64(2000)
	var rf isa.RegFile
	rf.Set(isa.RDI, uint64(4*iters)-1)
	rf.Set(isa.RSI, 0x100000)
	a := *isa.Nehalem()
	a.StoreBuffers = 4
	core := NewCore(0, &a, slow)
	if err := core.Reset(p, &rf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Step(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	perIter := float64(core.Result().Cycles) / float64(iters)
	// 4 buffers draining one store per 50 cycles: steady state 12.5/iter.
	if perIter < 10 {
		t.Errorf("store stream %.1f cycles/iter not throttled by the store buffer (want ~12.5)", perIter)
	}
}

type slowDrainMem struct{ drain int64 }

func (m slowDrainMem) Load(_ int, _ uint64, _ int, issue int64) int64 { return issue + 4 }
func (m slowDrainMem) Store(_ int, _ uint64, _ int, issue int64) int64 {
	return issue + m.drain
}

// TestResetReuseMatchesFreshCore is the pooling invariant: a core that
// already ran other programs and is Reset for a new one must report exactly
// the result a brand-new core produces. sim.Machine keeps one core per
// hardware core id alive across launches and relies on this.
func TestResetReuseMatchesFreshCore(t *testing.T) {
	arch := isa.Nehalem()
	mem := fixedMem{lat: 4}
	parse := func(src, name string) *isa.Program {
		p, err := asm.ParseOne(src, name)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	runOn := func(c *Core, p *isa.Program, n uint64, start int64) Result {
		var rf isa.RegFile
		rf.Set(isa.RDI, n)
		rf.Set(isa.RSI, 0x100000)
		if err := c.Reset(p, &rf, start, 0); err != nil {
			t.Fatal(err)
		}
		done, err := c.Step(math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatal("program did not finish")
		}
		return c.Result()
	}

	target := parse(loadKernel(4), "target")
	warm := parse(mixedKernel(8), "warm")

	fresh := runOn(NewCore(0, arch, mem), target, 16*500-1, 0)

	reused := NewCore(0, arch, mem)
	// Dirty every piece of pooled state: a different program (different
	// size, different branch history), twice, at nonzero start cycles.
	runOn(reused, warm, 32*300-1, 1000)
	runOn(reused, warm, 32*10-1, 1<<20)
	if got := runOn(reused, target, 16*500-1, 0); got != fresh {
		t.Errorf("reused core result %+v differs from fresh core %+v", got, fresh)
	}
}

// TestResetSurfacesDecodeErrors: Reset now validates and decodes through the
// program's cache; broken programs must still fail at Reset time.
func TestResetSurfacesDecodeErrors(t *testing.T) {
	c := NewCore(0, isa.Nehalem(), fixedMem{lat: 4})
	var rf isa.RegFile
	bad := &isa.Program{Name: "empty", Labels: map[string]int{}}
	if err := c.Reset(bad, &rf, 0, 0); err == nil {
		t.Error("Reset accepted an invalid program")
	}
}
