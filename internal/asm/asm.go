// Package asm parses the AT&T-syntax x86-64 assembly subset that
// MicroCreator emits (and that the paper's listings use) into decoded
// isa.Programs for MicroLauncher. It is the reproduction of the launcher's
// "compiles the kernel code, if necessary, into a dynamic library loaded at
// run-time" step (§4.1): here the loadable form is the decoded program.
package asm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"microtools/internal/isa"
)

// ParseError reports a syntax error with its source line.
type ParseError struct {
	Line int
	Text string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d (%q): %v", e.Line, e.Text, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads one or more functions from AT&T assembly source. Each
// ".globl"-declared label starts a function; a file without directives is a
// single function named by defaultName. Branch targets are resolved and each
// program validated.
func Parse(r io.Reader, defaultName string) ([]*isa.Program, error) {
	return parse(r, defaultName, 0)
}

// parse is Parse with an optional instruction-count hint (0 = unknown) that
// pre-sizes the first program's instruction slice: append growth on the
// large isa.Inst element type is the dominant allocation when parsing one
// program per generated variant.
func parse(r io.Reader, defaultName string, hint int) ([]*isa.Program, error) {
	sc := bufio.NewScanner(r)
	// Small initial buffer (the scanner grows it on demand): Parse runs once
	// per variant, and a large up-front allocation here dominates whole-family
	// verification time.
	sc.Buffer(make([]byte, 0, 4096), 16*1024*1024)

	var progs []*isa.Program
	// The current program is allocated lazily on its first label or
	// instruction: Parse runs once per generated variant, and eager
	// allocation (especially of the post-flush program that EOF discards)
	// shows up in whole-family verification time.
	var cur *isa.Program
	prog := func() *isa.Program {
		if cur == nil {
			cur = &isa.Program{Name: defaultName, Labels: make(map[string]int, 2)}
			if hint > 0 {
				cur.Insts = make([]isa.Inst, 0, hint)
				hint = 0 // the hint covers the whole source; first program only
			}
		}
		return cur
	}
	var globals map[string]bool
	lineNo := 0

	flush := func() {
		if cur != nil && len(cur.Insts) > 0 {
			progs = append(progs, cur)
		}
		cur = nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasSuffix(line, ":"):
			label := strings.TrimSuffix(line, ":")
			if globals[label] {
				// New function begins.
				flush()
				prog().Name = label
			} else {
				p := prog()
				if _, dup := p.Labels[label]; dup {
					return nil, &ParseError{lineNo, line, fmt.Errorf("duplicate label %q", label)}
				}
				p.Labels[label] = len(p.Insts)
			}
		case strings.HasPrefix(line, "."):
			// Directive. Track .globl names so we can split functions;
			// ignore the rest (.text, .align, .type, .size, ...).
			if strings.HasPrefix(line, ".globl") || strings.HasPrefix(line, ".global") {
				fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
				if len(fields) != 2 {
					return nil, &ParseError{lineNo, line, fmt.Errorf("malformed %s", fields[0])}
				}
				if globals == nil {
					globals = map[string]bool{}
				}
				globals[fields[1]] = true
			}
		default:
			inst, err := parseInst(line)
			if err != nil {
				return nil, &ParseError{lineNo, line, err}
			}
			p := prog()
			p.Insts = append(p.Insts, inst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if len(progs) == 0 {
		return nil, fmt.Errorf("asm: no instructions found")
	}
	for _, p := range progs {
		if err := p.Resolve(); err != nil {
			return nil, err
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return progs, nil
}

// ParseString is Parse over a string.
func ParseString(src, defaultName string) ([]*isa.Program, error) {
	// Line count bounds the instruction count; cap the hint so adversarial
	// newline-heavy input cannot force a huge allocation.
	hint := strings.Count(src, "\n") + 1
	if hint > 1024 {
		hint = 1024
	}
	return parse(strings.NewReader(src), defaultName, hint)
}

// ParseOne parses a source expected to contain exactly one function.
func ParseOne(src, defaultName string) (*isa.Program, error) {
	progs, err := ParseString(src, defaultName)
	if err != nil {
		return nil, err
	}
	if len(progs) != 1 {
		return nil, fmt.Errorf("asm: expected one function, found %d", len(progs))
	}
	return progs[0], nil
}

func parseInst(line string) (isa.Inst, error) {
	var inst isa.Inst
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, err := isa.ParseOp(mnemonic)
	if err != nil {
		return inst, err
	}
	inst.Op = op
	if rest == "" {
		if op.IsBranch() {
			return inst, fmt.Errorf("branch %s without target", op)
		}
		return inst, nil
	}
	operands, n, err := splitOperands(rest)
	if err != nil {
		return inst, err
	}
	for i := 0; i < n; i++ {
		o, err := parseOperand(operands[i], op)
		if err != nil {
			return inst, err
		}
		switch i {
		case 0:
			inst.A = o
		case 1:
			inst.B = o
		case 2:
			inst.C = o
		}
		inst.NOps++
	}
	return inst, nil
}

// splitOperands splits on commas that are not inside a memory reference's
// parentheses. The fixed-size result avoids a per-instruction allocation
// (Parse runs once per generated variant).
func splitOperands(s string) ([3]string, int, error) {
	var out [3]string
	n := 0
	depth := 0
	start := 0
	add := func(part string) error {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("empty operand")
		}
		if n == len(out) {
			return fmt.Errorf("too many operands (%d)", n+1)
		}
		out[n] = part
		n++
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return out, 0, fmt.Errorf("unbalanced parenthesis")
			}
		case ',':
			if depth == 0 {
				if err := add(s[start:i]); err != nil {
					return out, 0, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return out, 0, fmt.Errorf("unbalanced parenthesis")
	}
	if err := add(s[start:]); err != nil {
		return out, 0, err
	}
	return out, n, nil
}

func parseOperand(text string, op isa.Op) (isa.Operand, error) {
	switch {
	case strings.HasPrefix(text, "$"):
		v, err := parseInt(text[1:])
		if err != nil {
			return isa.Operand{}, fmt.Errorf("bad immediate %q: %w", text, err)
		}
		return isa.NewImm(v), nil
	case strings.HasPrefix(text, "%"):
		r, err := isa.ParseReg(text)
		if err != nil {
			return isa.Operand{}, err
		}
		return isa.NewReg(r), nil
	case strings.Contains(text, "("):
		m, err := parseMem(text)
		if err != nil {
			return isa.Operand{}, err
		}
		return isa.NewMem(m), nil
	default:
		if op.IsBranch() {
			return isa.NewLabel(text), nil
		}
		// A bare integer (rare, e.g. "16(%rsi)" handled above); treat a
		// bare symbol on a non-branch as an error.
		return isa.Operand{}, fmt.Errorf("unsupported operand %q for %s", text, op)
	}
}

// parseMem parses disp(base,index,scale) with every component optional
// except the parentheses.
func parseMem(text string) (isa.MemRef, error) {
	m := isa.MemRef{Base: isa.NoReg, Index: isa.NoReg}
	open := strings.IndexByte(text, '(')
	closeIdx := strings.LastIndexByte(text, ')')
	if open < 0 || closeIdx < open {
		return m, fmt.Errorf("bad memory operand %q", text)
	}
	if closeIdx != len(text)-1 {
		return m, fmt.Errorf("trailing characters after memory operand %q", text)
	}
	if disp := strings.TrimSpace(text[:open]); disp != "" {
		v, err := parseInt(disp)
		if err != nil {
			return m, fmt.Errorf("bad displacement %q: %w", disp, err)
		}
		m.Disp = v
	}
	inner := text[open+1 : closeIdx]
	parts := strings.Split(inner, ",")
	if len(parts) > 3 {
		return m, fmt.Errorf("bad memory operand %q", text)
	}
	if base := strings.TrimSpace(parts[0]); base != "" {
		r, err := isa.ParseReg(base)
		if err != nil {
			return m, err
		}
		m.Base = r
	}
	if len(parts) >= 2 {
		if idx := strings.TrimSpace(parts[1]); idx != "" {
			r, err := isa.ParseReg(idx)
			if err != nil {
				return m, err
			}
			m.Index = r
			m.Scale = 1
		}
	}
	if len(parts) == 3 {
		s := strings.TrimSpace(parts[2])
		v, err := parseInt(s)
		if err != nil {
			return m, fmt.Errorf("bad scale %q: %w", s, err)
		}
		if m.Index == isa.NoReg {
			return m, fmt.Errorf("scale without index in %q", text)
		}
		m.Scale = v
	}
	return m, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		return strconv.ParseInt(s, 0, 64)
	}
	return strconv.ParseInt(s, 10, 64)
}
