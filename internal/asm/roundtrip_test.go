package asm

import (
	"math/rand"
	"strings"
	"testing"

	"microtools/internal/isa"
)

// randomProgram builds a random valid program in the subset: SSE moves and
// arithmetic over memory and registers, integer updates, and a trailing
// loop branch.
func randomProgram(rng *rand.Rand) *isa.Program {
	p := &isa.Program{Name: "rt", Labels: map[string]int{".Lrt": 0}}
	bases := []isa.Reg{isa.RSI, isa.RDX, isa.RCX}
	n := 1 + rng.Intn(10)
	for i := 0; i < n; i++ {
		mem := isa.MemRef{
			Base:  bases[rng.Intn(len(bases))],
			Index: isa.NoReg,
			Disp:  int64(rng.Intn(8)) * 16,
		}
		if rng.Intn(3) == 0 {
			mem.Index = isa.RAX
			mem.Scale = []int64{1, 2, 4, 8}[rng.Intn(4)]
		}
		xmm := isa.XMM0 + isa.Reg(rng.Intn(16))
		switch rng.Intn(5) {
		case 0: // load
			op := []isa.Op{isa.MOVSS, isa.MOVSD, isa.MOVAPS, isa.MOVUPS}[rng.Intn(4)]
			p.Insts = append(p.Insts, isa.Inst{Op: op, A: isa.NewMem(mem), B: isa.NewReg(xmm), NOps: 2})
		case 1: // store
			op := []isa.Op{isa.MOVSS, isa.MOVSD, isa.MOVAPS}[rng.Intn(3)]
			p.Insts = append(p.Insts, isa.Inst{Op: op, A: isa.NewReg(xmm), B: isa.NewMem(mem), NOps: 2})
		case 2: // fp arith with memory source
			op := []isa.Op{isa.ADDSD, isa.MULSD, isa.ADDPS}[rng.Intn(3)]
			p.Insts = append(p.Insts, isa.Inst{Op: op, A: isa.NewMem(mem), B: isa.NewReg(xmm), NOps: 2})
		case 3: // fp arith reg-reg
			other := isa.XMM0 + isa.Reg(rng.Intn(16))
			p.Insts = append(p.Insts, isa.Inst{Op: isa.ADDSD, A: isa.NewReg(xmm), B: isa.NewReg(other), NOps: 2})
		case 4: // integer update
			gpr := bases[rng.Intn(len(bases))]
			p.Insts = append(p.Insts, isa.Inst{Op: isa.ADD, A: isa.NewImm(int64(1 + rng.Intn(64))), B: isa.NewReg(gpr), NOps: 2})
		}
	}
	p.Insts = append(p.Insts,
		isa.Inst{Op: isa.SUB, A: isa.NewImm(1), B: isa.NewReg(isa.RDI), NOps: 2},
		isa.Inst{Op: isa.JGE, A: isa.NewLabel(".Lrt"), NOps: 1},
		isa.Inst{Op: isa.RET},
	)
	if err := p.Resolve(); err != nil {
		panic(err)
	}
	return p
}

// TestPropertyPrintParseRoundTrip: Program.Print output re-parses to the
// same instruction stream.
func TestPropertyPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		orig := randomProgram(rng)
		text := orig.Print()
		back, err := ParseOne(text, "x")
		if err != nil {
			t.Fatalf("trial %d: re-parse failed: %v\n%s", trial, err, text)
		}
		if back.Name != orig.Name {
			t.Fatalf("trial %d: name %q != %q", trial, back.Name, orig.Name)
		}
		if len(back.Insts) != len(orig.Insts) {
			t.Fatalf("trial %d: %d insts != %d\n%s", trial, len(back.Insts), len(orig.Insts), text)
		}
		for i := range orig.Insts {
			a, b := orig.Insts[i], back.Insts[i]
			if a.String() != b.String() || a.Target != b.Target {
				t.Fatalf("trial %d inst %d: %q (target %d) != %q (target %d)",
					trial, i, a.String(), a.Target, b.String(), b.Target)
			}
		}
	}
}

// TestPrintReadable spot-checks the rendering.
func TestPrintReadable(t *testing.T) {
	p, err := ParseOne(fig8, "k")
	if err != nil {
		t.Fatal(err)
	}
	out := p.Print()
	for _, want := range []string{".globl kernel", ".L6:", "movaps %xmm0, (%rsi)", "jge .L6"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print missing %q:\n%s", want, out)
		}
	}
	// And it round-trips.
	if _, err := ParseOne(out, "k"); err != nil {
		t.Errorf("printed fig8 does not re-parse: %v", err)
	}
}
