package asm

import (
	"strings"
	"testing"

	"microtools/internal/isa"
)

// fig8 is the paper's Figure 8 output kernel, verbatim (plus the function
// wrapper MicroCreator's prologue/epilogue pass adds).
const fig8 = `
    .text
    .globl kernel
    .type kernel, @function
kernel:
.L6:
# Unrolling iterations
    movaps %xmm0, 0(%rsi)
    movaps 16(%rsi), %xmm1
    movaps %xmm2, 32(%rsi)
# Induction variables
    add $48, %rsi
    sub $12, %rdi
    jge .L6
    ret
`

func TestParseFig8(t *testing.T) {
	p, err := ParseOne(fig8, "k")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "kernel" {
		t.Errorf("name = %q, want kernel", p.Name)
	}
	if len(p.Insts) != 7 {
		t.Fatalf("got %d instructions, want 7", len(p.Insts))
	}
	if p.Labels[".L6"] != 0 {
		t.Errorf(".L6 = %d, want 0", p.Labels[".L6"])
	}
	st := p.StaticStats()
	if st.Loads != 1 || st.Stores != 2 || st.Branches != 1 {
		t.Errorf("stats = %+v", st)
	}
	jge := p.Insts[5]
	if jge.Op != isa.JGE || jge.Target != 0 {
		t.Errorf("jge = %+v", jge)
	}
}

// fig2 is the paper's Figure 2: the GCC -O3 inner loop of the naive matrix
// multiply.
const fig2 = `
.L3:
	movsd (%rdx,%rax,8), %xmm0
	addq $1, %rax
	mulsd (%r8), %xmm0
	addq %r11, %r8
	cmpl %eax, %edi
	addsd %xmm0, %xmm1
	movsd %xmm1, (%r10,%r9)
	jg .L3
	ret
`

func TestParseFig2(t *testing.T) {
	p, err := ParseOne(fig2, "mm")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mm" {
		t.Errorf("name = %q (default expected)", p.Name)
	}
	in := p.Insts[0]
	if in.Op != isa.MOVSD || !in.IsLoad() {
		t.Fatalf("inst 0 = %v", in.String())
	}
	if in.A.Mem.Base != isa.RDX || in.A.Mem.Index != isa.RAX || in.A.Mem.Scale != 8 {
		t.Errorf("mem ref = %+v", in.A.Mem)
	}
	cmp := p.Insts[4]
	if cmp.Op != isa.CMP || cmp.A.Reg != isa.RAX || cmp.B.Reg != isa.RDI {
		t.Errorf("cmpl parsed wrong: %s", cmp.String())
	}
	store := p.Insts[6]
	if !store.IsStore() || store.B.Mem.Index != isa.R9 || store.B.Mem.Scale != 1 {
		t.Errorf("store parsed wrong: %s", store.String())
	}
}

func TestParseMultipleFunctions(t *testing.T) {
	src := `
	.globl f1
	.globl f2
f1:
	add $1, %rax
	ret
f2:
	sub $1, %rax
	ret
`
	progs, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name != "f1" || progs[1].Name != "f2" {
		t.Fatalf("got %d programs", len(progs))
	}
}

func TestParseMemForms(t *testing.T) {
	cases := []struct {
		src  string
		want isa.MemRef
	}{
		{"movss (%rsi), %xmm0", isa.MemRef{Base: isa.RSI, Index: isa.NoReg}},
		{"movss 8(%rsi), %xmm0", isa.MemRef{Base: isa.RSI, Index: isa.NoReg, Disp: 8}},
		{"movss -16(%rsi), %xmm0", isa.MemRef{Base: isa.RSI, Index: isa.NoReg, Disp: -16}},
		{"movss (%rsi,%rax,4), %xmm0", isa.MemRef{Base: isa.RSI, Index: isa.RAX, Scale: 4}},
		{"movss (%rsi,%rax), %xmm0", isa.MemRef{Base: isa.RSI, Index: isa.RAX, Scale: 1}},
		{"movss 0x20(,%rax,8), %xmm0", isa.MemRef{Base: isa.NoReg, Index: isa.RAX, Scale: 8, Disp: 32}},
	}
	for _, c := range cases {
		p, err := ParseOne(c.src+"\n ret", "k")
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got := p.Insts[0].A.Mem
		if got != c.want {
			t.Errorf("%q: mem = %+v, want %+v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate %rax, %rbx\nret",       // unknown mnemonic
		"jge\nret",                         // branch without target
		"add $1, %zmm3\nret",               // unknown register
		"movss (%rsi, %xmm0",               // unbalanced paren
		"jge .nowhere\nret",                // undefined label
		"add $1, $2, $3, $4\nret",          // too many operands
		"movss 4(%rsi,%rax,3), %xmm0\nret", // invalid scale
		"mov (%rsi), %rax\nret",            // GPR load (outside subset)
		".globl\nret",                      // malformed directive
		"",                                 // empty file
	}
	for _, src := range bad {
		if _, err := ParseString(src, "k"); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestParseErrorHasLineInfo(t *testing.T) {
	_, err := ParseString("nop\nbogus_op %rax\nret", "k")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Line != 2 || !strings.Contains(pe.Text, "bogus_op") {
		t.Errorf("ParseError = %+v", pe)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# full line comment

	nop  # trailing comment
	ret
`
	p, err := ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Insts))
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	src := ".L1:\nnop\n.L1:\nret"
	if _, err := ParseString(src, "k"); err == nil {
		t.Error("duplicate label must fail")
	}
}
