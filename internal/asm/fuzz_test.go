package asm

import (
	"testing"
)

// FuzzParseRoundTrip asserts the parser/printer pair is closed: any source
// the parser accepts must print back to assembly the parser accepts again,
// decoding to the same instruction stream. (The launcher and the verifier
// both rely on Print being a faithful rendering of the decoded program.)
func FuzzParseRoundTrip(f *testing.F) {
	f.Add(`
    .text
    .globl k
k:
.L0:
    movss (%rsi), %xmm0
    movaps 16(%rsi), %xmm1
    add $4, %rsi
    sub $1, %rdi
    jge .L0
    ret
`)
	f.Add(`
k:
.L0:
    xor %eax, %eax
    movsd %xmm2, 8(%rdx)
    lea 4(%rsi), %r10
    add $1, %eax
    sub $1, %rdi
    jge .L0
    ret
`)
	f.Add("k:\nret\n")
	f.Add("garbage $$$\n")
	f.Fuzz(func(t *testing.T, src string) {
		progs, err := ParseString(src, "fuzz")
		if err != nil {
			return
		}
		for _, p := range progs {
			printed := p.Print()
			back, err := ParseOne(printed, p.Name)
			if err != nil {
				t.Fatalf("re-parse of printed program failed: %v\nprinted:\n%s", err, printed)
			}
			if len(back.Insts) != len(p.Insts) {
				t.Fatalf("round trip changed instruction count: %d -> %d\nprinted:\n%s",
					len(p.Insts), len(back.Insts), printed)
			}
			for i := range p.Insts {
				if back.Insts[i].Op != p.Insts[i].Op {
					t.Fatalf("round trip changed inst %d: %v -> %v", i, p.Insts[i], back.Insts[i])
				}
				if back.Insts[i].NOps != p.Insts[i].NOps {
					t.Fatalf("round trip changed operand count at %d: %v -> %v", i, p.Insts[i], back.Insts[i])
				}
			}
		}
	})
}
