package launcher

import (
	"reflect"
	"testing"

	"microtools/internal/stats"
)

func TestNewOptionsDefaults(t *testing.T) {
	if got, want := NewOptions(), DefaultOptions(); !reflect.DeepEqual(got, want) {
		t.Errorf("NewOptions() = %+v, want DefaultOptions() = %+v", got, want)
	}
}

func TestNewOptionsAppliesSetters(t *testing.T) {
	tr := int64(1 << 10)
	o := NewOptions(
		WithMachine("nehalem-dual/8"),
		WithMode(Fork),
		WithCores(4),
		WithArrayBytes(tr),
		WithAlignments(0, 64),
		WithReps(8, 2),
		WithStatistic(stats.StatMedian),
		WithTimeUnit(UnitCoreCycles),
		WithExactTrip(),
		WithWarmup(false),
		nil, // nil setters are skipped
	)
	if o.MachineName != "nehalem-dual/8" || o.Mode != Fork || o.Cores != 4 {
		t.Errorf("machine/mode/cores not applied: %+v", o)
	}
	if o.ArrayBytes != tr || len(o.Alignments) != 2 || o.Alignments[1] != 64 {
		t.Errorf("array options not applied: %+v", o)
	}
	if o.OuterReps != 8 || o.InnerReps != 2 || o.Statistic != stats.StatMedian {
		t.Errorf("protocol options not applied: %+v", o)
	}
	if o.TimeUnit != UnitCoreCycles || !o.TripExact || o.Warmup {
		t.Errorf("unit/trip/warmup options not applied: %+v", o)
	}
	// Untouched fields keep their defaults.
	if !o.Calibrate || !o.DisableInterrupts || o.AlignWindow != 4096 {
		t.Errorf("defaults lost: %+v", o)
	}
}

func TestWithAlignmentsCopiesInput(t *testing.T) {
	src := []int64{0, 128}
	o := NewOptions(WithAlignments(src...))
	src[1] = 999
	if o.Alignments[1] != 128 {
		t.Error("WithAlignments aliases the caller's slice")
	}
}

// FuzzValidate checks that Validate never panics, that a validated Options
// is a fixpoint (validating twice changes nothing), and that acceptance is
// consistent with the documented invariants.
func FuzzValidate(f *testing.F) {
	f.Add("nehalem-dual", int64(1<<16), int64(4096), int64(0), int64(4), 4, 4, 1, 0)
	f.Add("", int64(0), int64(0), int64(-1), int64(0), 0, 0, 0, -1)
	f.Add("m", int64(1), int64(3), int64(2), int64(1), -5, 1<<20, 3, 7)
	f.Fuzz(func(t *testing.T, machine string, arrayBytes, alignWindow, align0, elemBytes int64,
		inner, outer, cores, nbVectors int) {
		o := Options{
			MachineName:  machine,
			ArrayBytes:   arrayBytes,
			AlignWindow:  alignWindow,
			Alignments:   []int64{align0},
			ElementBytes: elemBytes,
			InnerReps:    inner,
			OuterReps:    outer,
			Cores:        cores,
			NBVectors:    nbVectors,
		}
		err := o.Validate()
		if err != nil {
			return
		}
		// Post-conditions of a successful validation.
		if o.MachineName == "" || o.ArrayBytes <= 0 {
			t.Fatalf("accepted invalid machine/array: %+v", o)
		}
		if o.AlignWindow <= 0 || o.AlignWindow&(o.AlignWindow-1) != 0 {
			t.Fatalf("accepted bad alignment window: %+v", o)
		}
		for i, a := range o.Alignments {
			if a < 0 || a >= o.AlignWindow {
				t.Fatalf("accepted alignment[%d]=%d outside window %d", i, a, o.AlignWindow)
			}
		}
		if o.ElementBytes <= 0 || o.InnerReps <= 0 || o.OuterReps <= 0 || o.Cores <= 0 || o.NBVectors < 0 {
			t.Fatalf("normalization missed a field: %+v", o)
		}
		// Validate is idempotent: a second pass is a no-op.
		before := o
		if err := o.Validate(); err != nil {
			t.Fatalf("revalidation failed: %v", err)
		}
		if o.AlignWindow != before.AlignWindow || o.ElementBytes != before.ElementBytes ||
			o.InnerReps != before.InnerReps || o.OuterReps != before.OuterReps || o.Cores != before.Cores {
			t.Fatalf("Validate is not a fixpoint: %+v -> %+v", before, o)
		}
	})
}
