package launcher

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"microtools/internal/obs"
)

// ReportFormat selects the launcher's result encoding.
type ReportFormat int

const (
	// ReportCSV is the paper's generic CSV table (§4.3), the default.
	ReportCSV ReportFormat = iota
	// ReportJSON is the structured report: full summary statistics plus
	// the optional simulated-PMU counters and derived metrics.
	ReportJSON
)

func (f ReportFormat) String() string {
	switch f {
	case ReportCSV:
		return "csv"
	case ReportJSON:
		return "json"
	}
	return fmt.Sprintf("ReportFormat(%d)", int(f))
}

// ParseReportFormat parses the -report option.
func ParseReportFormat(s string) (ReportFormat, error) {
	switch s {
	case "csv":
		return ReportCSV, nil
	case "json":
		return ReportJSON, nil
	}
	return 0, fmt.Errorf("launcher: unknown report format %q (want csv|json)", s)
}

// jsonFloat marshals NaN/Inf as null (encoding/json rejects them) so a
// report never fails to encode on a degenerate statistic like cv of an
// all-zero sample set.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// reportSummary is the distribution block of one report entry. RCIW is
// the relative 95% confidence-interval width of the mean — with CV, the
// stability signal downstream consumers read to decide how much to trust
// the value (see stats.Stability).
type reportSummary struct {
	N      int       `json:"n"`
	Min    jsonFloat `json:"min"`
	Median jsonFloat `json:"median"`
	Mean   jsonFloat `json:"mean"`
	Max    jsonFloat `json:"max"`
	StdDev jsonFloat `json:"stddev"`
	// SampleStdDev is the ÷(n−1) estimator RCIW is built on; StdDev stays
	// the historical population (÷n) figure.
	SampleStdDev jsonFloat `json:"sample_stddev"`
	CV           jsonFloat `json:"cv"`
	RCIW         jsonFloat `json:"rciw"`
}

// reportAdaptive is the adaptive-planner block of one report entry,
// present only when the measurement ran under a Plan.
type reportAdaptive struct {
	MinReps      int       `json:"min_reps"`
	MaxReps      int       `json:"max_reps"`
	TargetRCIW   jsonFloat `json:"target_rciw"`
	StableRuns   int       `json:"stable_runs"`
	Reps         int       `json:"reps"`
	AchievedRCIW jsonFloat `json:"achieved_rciw"`
	StopReason   string    `json:"stop_reason"`
}

// reportDerived is the derived-metric block computed from a counter
// snapshot (the explanatory metrics performance engineers reach for
// first).
type reportDerived struct {
	CPI            jsonFloat `json:"cycles_per_inst"`
	IPC            jsonFloat `json:"insts_per_cycle"`
	L1HitRate      jsonFloat `json:"l1_hit_rate"`
	L1MPKI         jsonFloat `json:"l1_mpki"`
	L2MPKI         jsonFloat `json:"l2_mpki"`
	L3MPKI         jsonFloat `json:"l3_mpki"`
	MispredictRate jsonFloat `json:"mispredict_rate"`
}

// reportCounters pairs the raw snapshot with its derived metrics.
type reportCounters struct {
	*obs.Counters
	Derived reportDerived `json:"derived"`
}

// reportEnergy is the §7 power-model block.
type reportEnergy struct {
	TotalJoules jsonFloat `json:"total_joules"`
	AvgWatts    jsonFloat `json:"avg_watts"`
}

// reportEntry is one measurement in the JSON report.
type reportEntry struct {
	Kernel          string          `json:"kernel"`
	Mode            string          `json:"mode"`
	Cores           int             `json:"cores"`
	Unit            string          `json:"unit"`
	Value           jsonFloat       `json:"value"`
	ValuePerElement jsonFloat       `json:"value_per_element,omitempty"`
	Summary         reportSummary   `json:"summary"`
	Iterations      uint64          `json:"iterations"`
	OverheadCycles  jsonFloat       `json:"overhead_cycles"`
	StaticBound     jsonFloat       `json:"static_bound,omitempty"`
	Truncated       bool            `json:"truncated"`
	Arrays          []uint64        `json:"arrays,omitempty"`
	Adaptive        *reportAdaptive `json:"adaptive,omitempty"`
	Counters        *reportCounters `json:"counters,omitempty"`
	Energy          *reportEnergy   `json:"energy,omitempty"`
}

// jsonReport is the whole document: a versioned envelope so downstream
// consumers can evolve with the schema.
type jsonReport struct {
	Version      int           `json:"version"`
	Measurements []reportEntry `json:"measurements"`
}

// WriteJSON renders measurements as the launcher's JSON report: everything
// the CSV carries, plus the full summary distribution, the simulated-PMU
// counters (when collected) and their derived metrics. Counter semantics:
// deltas over the measured region only (see Options.CollectCounters).
func WriteJSON(w io.Writer, ms []*Measurement) error {
	doc := jsonReport{Version: 1, Measurements: make([]reportEntry, 0, len(ms))}
	for _, m := range ms {
		e := reportEntry{
			Kernel:          m.Kernel,
			Mode:            m.Mode.String(),
			Cores:           m.Cores,
			Unit:            m.Unit.String(),
			Value:           jsonFloat(m.Value),
			ValuePerElement: jsonFloat(m.ValuePerElement),
			Summary: reportSummary{
				N:            m.Summary.N,
				Min:          jsonFloat(m.Summary.Min),
				Median:       jsonFloat(m.Summary.Median),
				Mean:         jsonFloat(m.Summary.Mean),
				Max:          jsonFloat(m.Summary.Max),
				StdDev:       jsonFloat(m.Summary.StdDev),
				SampleStdDev: jsonFloat(m.Summary.SampleStdDev),
				CV:           jsonFloat(m.Summary.CV()),
				RCIW:         jsonFloat(m.Summary.RCIW()),
			},
			Iterations:     m.Iterations,
			OverheadCycles: jsonFloat(m.OverheadCycles),
			StaticBound:    jsonFloat(m.StaticBound),
			Truncated:      m.Truncated,
			Arrays:         m.Arrays,
		}
		if m.Adaptive != nil {
			a := m.Adaptive
			e.Adaptive = &reportAdaptive{
				MinReps:      a.Plan.MinReps,
				MaxReps:      a.Plan.MaxReps,
				TargetRCIW:   jsonFloat(a.Plan.TargetRCIW),
				StableRuns:   a.Plan.StableRuns,
				Reps:         a.Reps,
				AchievedRCIW: jsonFloat(a.RCIW),
				StopReason:   a.StopReason,
			}
		}
		if m.Counters != nil {
			c := m.Counters
			e.Counters = &reportCounters{
				Counters: c,
				Derived: reportDerived{
					CPI:            jsonFloat(c.CPI()),
					IPC:            jsonFloat(c.IPC()),
					L1HitRate:      jsonFloat(c.L1HitRate()),
					L1MPKI:         jsonFloat(c.L1MPKI()),
					L2MPKI:         jsonFloat(c.L2MPKI()),
					L3MPKI:         jsonFloat(c.L3MPKI()),
					MispredictRate: jsonFloat(c.MispredictRate()),
				},
			}
		}
		if m.Energy != nil {
			e.Energy = &reportEnergy{
				TotalJoules: jsonFloat(m.Energy.TotalJoules),
				AvgWatts:    jsonFloat(m.Energy.AvgWatts),
			}
		}
		doc.Measurements = append(doc.Measurements, e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteReport dispatches on the format.
func WriteReport(w io.Writer, format ReportFormat, ms []*Measurement) error {
	switch format {
	case ReportJSON:
		return WriteJSON(w, ms)
	default:
		return WriteCSV(w, ms)
	}
}
