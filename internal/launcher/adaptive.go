package launcher

import (
	"microtools/internal/stats"
)

// Stop reasons recorded on AdaptiveOutcome.StopReason.
const (
	// StopTarget: the running RCIW reached the plan's target (mean/median
	// statistics).
	StopTarget = "target"
	// StopStable: the reported extremum stopped improving for the plan's
	// run length (min/max statistics).
	StopStable = "stable"
	// StopBudget: the plan's repetition ceiling was exhausted without the
	// stop rule firing.
	StopBudget = "budget"
)

// Plan is the μOpTime-style adaptive measurement plan: instead of running
// a fixed OuterReps budget, the launcher evaluates a statistic-aware stop
// rule after every outer repetition and stops as soon as the reported
// statistic has stabilized.
//
// The stop rule depends on Options.Statistic. Mean and median runs stop
// once the running relative 95% confidence-interval width (Student-t,
// sample stddev — see stats.Sequential) drops to TargetRCIW. Min and max
// runs stop once the extremum has not improved for StableRuns consecutive
// repetitions — an extremum has no useful CI, it only ratchets.
//
// Cache-key policy: the *planned* budget (this struct, after Resolve) is a
// cache-key dimension; the realized repetition count never is. Fixed-budget
// runs carry a nil plan and keep their exact pre-adaptive keys, and an
// adaptive re-run with the same plan replays the same deterministic stop
// decisions, so both cache populations stay warm and bit-stable.
type Plan struct {
	// MinReps is the floor before the stop rule may fire. Resolve clamps
	// it to >= 2: a single repetition has CV = 0 and RCIW = +Inf by
	// construction, so no planner may stop on that degenerate signal.
	MinReps int
	// MaxReps is the repetition ceiling (<= 0 inherits the fixed
	// OuterReps budget, so an adaptive run never exceeds the fixed one).
	MaxReps int
	// TargetRCIW is the stop threshold for mean/median runs (<= 0
	// defaults to 0.05, i.e. a ±2.5% interval around the mean).
	TargetRCIW float64
	// StableRuns is the no-improvement run length that stops min/max runs
	// (<= 0 defaults to 1).
	StableRuns int
}

// Resolve normalizes the plan against the fixed outer-repetition budget,
// returning the effective plan the launcher executes and the keyer hashes.
// It is pure: campaign workers share one Plan pointer, so normalization
// must never mutate in place.
func (p Plan) Resolve(outerReps int) Plan {
	if p.MinReps < 2 {
		p.MinReps = 2
	}
	if p.TargetRCIW <= 0 {
		p.TargetRCIW = 0.05
	}
	if p.StableRuns <= 0 {
		p.StableRuns = 1
	}
	if p.MaxReps <= 0 {
		if outerReps > 0 {
			p.MaxReps = outerReps
		} else {
			p.MaxReps = p.MinReps
		}
	}
	if p.MaxReps < p.MinReps {
		p.MaxReps = p.MinReps
	}
	return p
}

// AdaptiveOutcome records what the planner actually did for one
// measurement: the resolved plan it ran under, the realized repetition
// count, the achieved RCIW (from the final two-pass summary), and which
// rule stopped the run. It is carried on the Measurement (and through the
// cache) so campaign budget reallocation and API consumers can see
// per-variant confidence without re-deriving it.
type AdaptiveOutcome struct {
	// Plan is the resolved plan in force (the cache-key dimension).
	Plan Plan
	// Reps is the realized outer-repetition count (== Summary.N).
	Reps int
	// RCIW is the achieved relative CI width at stop, computed from the
	// final summary (Student-t, sample stddev). +Inf encodes "no
	// confidence" and is JSON-null on the wire.
	RCIW float64
	// StopReason is one of StopTarget, StopStable, StopBudget.
	StopReason string
}

// adaptiveState is the per-launch stop-rule evaluator.
type adaptiveState struct {
	plan      Plan
	seq       stats.Sequential
	statistic stats.Statistic
	stableFor int
}

// observe folds one repetition's value in and reports the stop reason, or
// "" to keep measuring.
func (a *adaptiveState) observe(v float64) string {
	first := a.seq.N() == 0
	prevMin, prevMax := a.seq.Min(), a.seq.Max()
	a.seq.Push(v)
	switch a.statistic {
	case stats.StatMin:
		if first || v < prevMin {
			a.stableFor = 0
		} else {
			a.stableFor++
		}
	case stats.StatMax:
		if first || v > prevMax {
			a.stableFor = 0
		} else {
			a.stableFor++
		}
	}
	if a.seq.N() < a.plan.MinReps {
		return ""
	}
	switch a.statistic {
	case stats.StatMin, stats.StatMax:
		if a.stableFor >= a.plan.StableRuns {
			return StopStable
		}
	default:
		if a.seq.RCIW() <= a.plan.TargetRCIW {
			return StopTarget
		}
	}
	return ""
}
