package launcher

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microtools/internal/memsim"
	"microtools/internal/obs"
	"microtools/internal/power"
	"microtools/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenMeasurements is a deterministic fixture covering both the
// Energy/Counters-attached and the bare paths, plus a degenerate all-zero
// summary whose cv is NaN.
func goldenMeasurements() []*Measurement {
	full := &Measurement{
		Kernel:          "movaps_u4",
		Mode:            Sequential,
		Cores:           1,
		Value:           1.25,
		Unit:            UnitTSC,
		Summary:         stats.Summarize([]float64{1.25, 1.5, 1.75, 1.25}),
		Iterations:      4096,
		ValuePerElement: 0.3125,
		OverheadCycles:  30,
		Arrays:          []uint64{0x7f0000000000},
		MemStats: memsim.Stats{
			Loads: 16384, L1Hits: 16320, L1Misses: 64,
			L2Hits: 32, L2Misses: 32, L3Hits: 24, L3Misses: 8,
			MemAccesses: 8, BytesFromMemory: 512,
		},
		Counters: &obs.Counters{
			Mem: memsim.Stats{
				Loads: 16384, L1Hits: 16320, L1Misses: 64,
				L2Hits: 32, L2Misses: 32, L3Hits: 24, L3Misses: 8,
				MemAccesses: 8, BytesFromMemory: 512,
			},
			RetiredInsts:        81920,
			Branches:            16384,
			BranchMispredicts:   16,
			FrontendStallCycles: 512,
			CoreCycles:          20480,
		},
		Energy: &power.Estimate{TotalJoules: 0.0125, AvgWatts: 62.5},
	}
	bare := &Measurement{
		Kernel:  "calibration_like",
		Mode:    Fork,
		Cores:   2,
		Value:   0,
		Unit:    UnitCoreCycles,
		Summary: stats.Summarize([]float64{0, 0, 0}),
	}
	return []*Measurement{full, bare}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test -run Golden -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestJSONReportGolden pins the JSON report schema.
func TestJSONReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenMeasurements()); err != nil {
		t.Fatal(err)
	}
	// The report must always be valid JSON, NaN statistics included.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	checkGolden(t, "report_golden.json", buf.Bytes())
}

// TestCSVGolden pins the CSV output for both the Energy != nil and nil
// paths (previously only exercised indirectly via energy_test.go).
func TestCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenMeasurements()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "csv_golden.csv", buf.Bytes())
}

// TestCSVNaNRendering: NaN/Inf statistics must render as empty cells, not
// "NaN", which breaks downstream parsers. Summary.CV guards the zero-mean
// case itself, so the fixture injects non-finite values directly — the
// formatter must be robust no matter which statistic degenerates.
func TestCSVNaNRendering(t *testing.T) {
	m := &Measurement{
		Kernel: "zeros",
		Mode:   Sequential,
		Cores:  1,
		Unit:   UnitTSC,
		Value:  math.NaN(),
		Summary: stats.Summary{
			N: 2, Min: math.Inf(-1), Max: math.Inf(1),
			Mean: math.NaN(), Median: 0, StdDev: math.NaN(),
		},
	}
	if cv := m.Summary.CV(); cv == cv { // NaN != NaN
		t.Fatalf("fixture cv = %f, expected NaN", cv)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Measurement{m}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("CSV output contains %q:\n%s", bad, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d CSV lines, want 2", len(lines))
	}
	fields := strings.Split(lines[1], ",")
	header := strings.Split(lines[0], ",")
	if len(fields) != len(header) {
		t.Fatalf("row has %d fields, header %d", len(fields), len(header))
	}
	cvIdx := -1
	for i, h := range header {
		if h == "cv" {
			cvIdx = i
		}
	}
	if cvIdx < 0 || fields[cvIdx] != "" {
		t.Errorf("cv cell = %q, want empty", fields[cvIdx])
	}
}

// TestReportFormatParsing covers the -report flag surface.
func TestReportFormatParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ReportFormat
	}{{"csv", ReportCSV}, {"json", ReportJSON}} {
		got, err := ParseReportFormat(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseReportFormat(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseReportFormat("xml"); err == nil {
		t.Error("ParseReportFormat accepted xml")
	}
}

// TestWriteReportDispatch: WriteReport routes to the right encoder.
func TestWriteReportDispatch(t *testing.T) {
	ms := goldenMeasurements()
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteReport(&csvBuf, ReportCSV, ms); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&jsonBuf, ReportJSON, ms); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "kernel,") {
		t.Errorf("csv dispatch output = %q", csvBuf.String()[:40])
	}
	if !strings.Contains(jsonBuf.String(), `"measurements"`) {
		t.Error("json dispatch output missing measurements")
	}
}
