package launcher

import (
	"context"
	"fmt"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/machine"
	"microtools/internal/obs"
)

// counterKernel is a simple streaming load kernel: one movaps (16 bytes)
// per iteration, %eax counts iterations.
const counterKernel = `
.L0:
movaps (%rsi), %xmm0
add $16, %rsi
add $1, %eax
sub $4, %rdi
jge .L0
ret`

// counterStoreKernel mixes a load and a store stream.
const counterStoreKernel = `
.L0:
movaps (%rsi), %xmm0
movaps %xmm0, (%rdx)
add $16, %rsi
add $16, %rdx
add $1, %eax
sub $4, %rdi
jge .L0
ret`

func launchCounters(t *testing.T, src string, mutate func(*Options)) *Measurement {
	t.Helper()
	prog, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 2 << 10
	opts.InnerReps = 2
	opts.OuterReps = 2
	opts.CollectCounters = true
	if mutate != nil {
		mutate(&opts)
	}
	m, err := Launch(context.Background(), prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters == nil {
		t.Fatal("CollectCounters set but Counters nil")
	}
	return m
}

// lineSizeOf returns the machine's L1 line size for invariant checks.
func lineSizeOf(t *testing.T, name string) int64 {
	t.Helper()
	desc, err := machine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return desc.Hierarchy.L1.LineSize
}

// TestCountersDeltaCapture: counters are captured as a delta around the
// measured region only, so toggling warm-up changes cache temperature but
// never the measured access counts — warm-up's own touch traffic must not
// appear (the nanoBench counter-read placement, simulated).
func TestCountersDeltaCapture(t *testing.T) {
	warm := launchCounters(t, counterKernel, func(o *Options) { o.Warmup = true })
	cold := launchCounters(t, counterKernel, func(o *Options) { o.Warmup = false })

	if warm.Counters.Mem.Loads != cold.Counters.Mem.Loads {
		t.Errorf("measured loads differ with warmup on/off: %d vs %d — warm-up traffic leaked into the counters",
			warm.Counters.Mem.Loads, cold.Counters.Mem.Loads)
	}
	// One movaps per iteration, InnerReps×OuterReps calls in the measured
	// region: the load count is fully determined.
	wantLoads := int64(warm.Iterations) * 2 * 2
	if warm.Counters.Mem.Loads != wantLoads {
		t.Errorf("measured loads = %d, want %d (iterations %d x 4 calls)",
			warm.Counters.Mem.Loads, wantLoads, warm.Iterations)
	}
	// An L1-resident warmed run hits nearly always; a cold run pays the
	// compulsory misses inside the measured region.
	if warm.Counters.Mem.L1Hits == 0 {
		t.Error("warmed L1-resident run reports zero L1 hits")
	}
	if warm.Counters.Mem.L1Misses >= cold.Counters.Mem.L1Misses {
		t.Errorf("warmed run L1 misses (%d) not below cold run (%d)",
			warm.Counters.Mem.L1Misses, cold.Counters.Mem.L1Misses)
	}
	if hr := warm.Counters.L1HitRate(); hr < 0.95 {
		t.Errorf("warmed L1-resident hit rate = %.3f, want >= 0.95", hr)
	}
	// Quiet runs must not report interrupt stalls.
	if warm.Counters.InterruptStallCycles != 0 {
		t.Errorf("interrupt stalls %d on an interrupt-disabled run", warm.Counters.InterruptStallCycles)
	}
	if warm.Counters.RetiredInsts == 0 || warm.Counters.CoreCycles == 0 {
		t.Errorf("pipeline counters empty: %+v", warm.Counters)
	}
}

// TestCountersInvariantsProperty: for any kernel/machine/mode/size/noise
// combination, the exported measured-region delta must satisfy the memory
// hierarchy's structural identities (see obs.Counters.CheckInvariants).
func TestCountersInvariantsProperty(t *testing.T) {
	kernels := map[string]string{"load": counterKernel, "loadstore": counterStoreKernel}
	machines := []string{"nehalem-dual/8", "nehalem-quad/8", "sandybridge/8"}
	sizes := []int64{2 << 10, 64 << 10, 1 << 20}
	for kname, src := range kernels {
		for _, mname := range machines {
			for _, size := range sizes {
				for _, noisy := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/%d/noisy=%t", kname, mname, size, noisy)
					t.Run(name, func(t *testing.T) {
						m := launchCounters(t, src, func(o *Options) {
							o.MachineName = mname
							o.ArrayBytes = size
							if noisy {
								o.DisableInterrupts = false
								o.NoiseSeed = 42
							}
						})
						if err := m.Counters.CheckInvariants(lineSizeOf(t, mname)); err != nil {
							t.Errorf("invariants violated: %v", err)
						}
						if m.Counters.Branches == 0 {
							t.Error("loop kernel retired zero branches")
						}
					})
				}
			}
		}
	}
}

// TestCountersInvariantsAcrossModes: fork and OpenMP measured regions
// satisfy the same identities, and the aggregate covers every core.
func TestCountersInvariantsAcrossModes(t *testing.T) {
	seq := launchCounters(t, counterKernel, nil)
	fork := launchCounters(t, counterKernel, func(o *Options) { o.Mode = Fork; o.Cores = 2 })
	omp := launchCounters(t, counterKernel, func(o *Options) { o.Mode = OpenMP; o.Cores = 2 })
	line := lineSizeOf(t, "nehalem-dual/8")
	for name, m := range map[string]*Measurement{"seq": seq, "fork": fork, "omp": omp} {
		if err := m.Counters.CheckInvariants(line); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Fork runs the same kernel on 2 cores: twice the retired instructions.
	if fork.Counters.RetiredInsts != 2*seq.Counters.RetiredInsts {
		t.Errorf("fork retired %d insts, want 2x sequential %d",
			fork.Counters.RetiredInsts, seq.Counters.RetiredInsts)
	}
}

// TestNoiseCountersAndStalls: enabling interrupts surfaces in the
// interrupt-stall counter and nowhere else structural.
func TestNoiseCountersAndStalls(t *testing.T) {
	noisy := launchCounters(t, counterKernel, func(o *Options) {
		o.DisableInterrupts = false
		o.NoiseSeed = 7
		// The default noise interval is tens of thousands of cycles; a
		// RAM-resident stream with several reps is long enough to be hit.
		o.ArrayBytes = 1 << 20
		o.InnerReps = 4
		o.OuterReps = 4
	})
	if noisy.Counters.InterruptStallCycles == 0 {
		t.Error("noisy run recorded zero interrupt-stall cycles")
	}
	if err := noisy.Counters.CheckInvariants(lineSizeOf(t, "nehalem-dual/8")); err != nil {
		t.Errorf("noisy run breaks invariants: %v", err)
	}
}

// TestLaunchTraceSpans: a traced launch produces the span hierarchy the
// Chrome exporter renders — launch > warmup/calibrate/measure > rep >
// sim.run — with simulated-cycle bounds attached.
func TestLaunchTraceSpans(t *testing.T) {
	tr := obs.New()
	launchCounters(t, counterKernel, func(o *Options) {
		o.Tracer = tr
		o.OuterReps = 3
	})

	launch, err := tr.Find("launch")
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"warmup", "calibrate", "measure"} {
		r, err := tr.Find(phase)
		if err != nil {
			t.Fatal(err)
		}
		if r.ParentID != launch.ID {
			t.Errorf("%s parent = %d, want launch %d", phase, r.ParentID, launch.ID)
		}
		if !r.HasCycles || r.CycleEnd < r.CycleStart {
			t.Errorf("%s has no valid cycle bounds: %+v", phase, r)
		}
		if r.End.IsZero() {
			t.Errorf("%s span never ended", phase)
		}
	}
	measure, _ := tr.Find("measure")
	reps := tr.FindAll("rep")
	if len(reps) != 3 {
		t.Fatalf("got %d rep spans, want 3", len(reps))
	}
	for _, r := range reps {
		if r.ParentID != measure.ID {
			t.Errorf("rep parent = %d, want measure %d", r.ParentID, measure.ID)
		}
	}
	runs := tr.FindAll("sim.run")
	if len(runs) == 0 {
		t.Fatal("no sim.run spans recorded")
	}
	repIDs := map[int]bool{}
	for _, r := range reps {
		repIDs[r.ID] = true
	}
	calibrate, _ := tr.Find("calibrate")
	for _, r := range runs {
		if !repIDs[r.ParentID] && r.ParentID != calibrate.ID {
			t.Errorf("sim.run parent %d is neither a rep nor calibrate", r.ParentID)
		}
	}
}

// TestUntracedMachineLeavesNoSpans: after a traced launch, reusing the
// machine without a tracer must not record anything (the launcher resets
// the machine's trace span on exit).
func TestUntracedMachineLeavesNoSpans(t *testing.T) {
	prog, err := asm.ParseOne(counterKernel, "k")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	opts := DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 2 << 10
	opts.InnerReps = 1
	opts.OuterReps = 1
	opts.Tracer = tr
	if _, err := Launch(context.Background(), prog, opts); err != nil {
		t.Fatal(err)
	}
	n := len(tr.Records())
	// Second launch on the same tracer-less options must add nothing.
	opts.Tracer = nil
	if _, err := Launch(context.Background(), prog, opts); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Records()); got != n {
		t.Errorf("untraced launch added %d spans", got-n)
	}
}
