package launcher

import (
	"context"
	"testing"

	"microtools/internal/asm"
)

// TestLauncherEnergyIntegration: the launcher attaches an estimate when
// asked, and a RAM-resident run costs more energy per iteration than an
// L1-resident one (DRAM line energy dominates).
func TestLauncherEnergyIntegration(t *testing.T) {
	src := `
.L0:
movaps (%rsi), %xmm0
add $16, %rsi
add $1, %eax
sub $4, %rdi
jge .L0
ret`
	prog, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	run := func(bytes int64) *Measurement {
		opts := DefaultOptions()
		opts.MachineName = "nehalem-dual/8"
		opts.ArrayBytes = bytes
		opts.InnerReps = 1
		opts.OuterReps = 2
		opts.ReportEnergy = true
		m, err := Launch(context.Background(), prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Energy == nil {
			t.Fatal("energy not attached")
		}
		return m
	}
	l1 := run(2 << 10)
	ram := run(3 << 20)
	perIterL1 := l1.Energy.TotalJoules / float64(l1.Iterations)
	perIterRAM := ram.Energy.TotalJoules / float64(ram.Iterations)
	if perIterRAM <= perIterL1 {
		t.Errorf("RAM energy/iter (%.3g J) not above L1 (%.3g J)", perIterRAM, perIterL1)
	}
}
