package launcher

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/isa"
	"microtools/internal/stats"
)

// kernelSrc builds a u-unrolled load kernel with the Fig. 9 %eax counter.
func kernelSrc(u int, op string, width int) string {
	var b strings.Builder
	b.WriteString(".L0:\n")
	reg := "%%xmm%d"
	for c := 0; c < u; c++ {
		fmt.Fprintf(&b, op+" %d(%%rsi), "+reg+"\n", width*c, c%8)
	}
	fmt.Fprintf(&b, "add $%d, %%rsi\n", width*u)
	b.WriteString("add $1, %eax\n")
	fmt.Fprintf(&b, "sub $%d, %%rdi\n", (width/4)*u)
	b.WriteString("jge .L0\nret\n")
	return b.String()
}

func parse(t *testing.T, src, name string) *isa.Program {
	t.Helper()
	p, err := asm.ParseOne(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func defaultTestOptions() Options {
	o := DefaultOptions()
	o.MachineName = "nehalem-dual/8"
	o.ArrayBytes = 16 << 10
	o.InnerReps = 2
	o.OuterReps = 3
	return o
}

func TestSequentialMeasurement(t *testing.T) {
	p := parse(t, kernelSrc(8, "movaps", 16), "k8")
	m, err := Launch(context.Background(), p, defaultTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Kernel != "k8" || m.Mode != Sequential || m.Cores != 1 {
		t.Errorf("measurement meta = %+v", m)
	}
	// 16KB of floats = 4096 elements, 32 consumed per iteration.
	if m.Iterations != 128 {
		t.Errorf("iterations = %d, want 128", m.Iterations)
	}
	// L2-resident (16KB array vs 4KB L1): between ~1 and ~12 TSC
	// cycles/iter-per-load×8 — sanity band.
	if m.Value < 5 || m.Value > 120 {
		t.Errorf("cycles/iter = %.2f outside sanity band", m.Value)
	}
	if m.OverheadCycles <= 0 {
		t.Error("calibration did not run")
	}
}

// TestStabilityOfProtocol is the §4.7 acceptance check: with the full
// protocol (warmup, pinning, interrupts off) the CV across repetitions is
// tiny; with noise enabled and no warmup it grows.
func TestStabilityOfProtocol(t *testing.T) {
	p := parse(t, kernelSrc(4, "movaps", 16), "k")
	stable := defaultTestOptions()
	stable.OuterReps = 5
	m1, err := Launch(context.Background(), p, stable)
	if err != nil {
		t.Fatal(err)
	}
	if cv := m1.Summary.CV(); cv > 0.02 {
		t.Errorf("protocol run CV = %.4f, want < 2%%", cv)
	}
	noisy := stable
	noisy.DisableInterrupts = false
	noisy.Warmup = false
	noisy.NoiseSeed = 99
	m2, err := Launch(context.Background(), p, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Summary.CV() <= m1.Summary.CV() {
		t.Errorf("noisy CV %.4f not above protocol CV %.4f", m2.Summary.CV(), m1.Summary.CV())
	}
}

// TestUnrollSweepShape reproduces the Fig. 11 single-level shape through
// the full launcher stack: cycles/load decreases with unroll in L1.
func TestUnrollSweepShape(t *testing.T) {
	opts := defaultTestOptions()
	opts.ArrayBytes = 2 << 10 // half of the scaled 4KB L1
	perLoad := map[int]float64{}
	for _, u := range []int{1, 8} {
		p := parse(t, kernelSrc(u, "movaps", 16), fmt.Sprintf("k%d", u))
		m, err := Launch(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		perLoad[u] = m.Value / float64(u)
	}
	if perLoad[8] >= perLoad[1] {
		t.Errorf("unroll did not help: u1=%.2f u8=%.2f cycles/load", perLoad[1], perLoad[8])
	}
}

func TestForkModeScalesAndContends(t *testing.T) {
	opts := defaultTestOptions()
	opts.Mode = Fork
	opts.ArrayBytes = 256 << 10 // beyond the scaled 1.5MB/8=... L3? keep RAM-ish per core
	opts.InnerReps = 1
	opts.OuterReps = 2
	run := func(cores int) float64 {
		opts.Cores = cores
		p := parse(t, kernelSrc(8, "movaps", 16), "k")
		m, err := Launch(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cores != cores {
			t.Errorf("cores = %d, want %d", m.Cores, cores)
		}
		return m.Value
	}
	one := run(1)
	twelve := run(12)
	if twelve <= one {
		t.Errorf("12-way fork (%.2f) not slower per iteration than 1-way (%.2f)", twelve, one)
	}
}

func TestOpenMPModeBeatsSequentialOnLargeArrays(t *testing.T) {
	opts := defaultTestOptions()
	opts.ArrayBytes = 512 << 10
	opts.MaxInstructions = 2_000_000
	opts.PerIteration = false
	opts.InnerReps = 1
	opts.OuterReps = 2
	p := parse(t, kernelSrc(4, "movss", 4), "k")
	seq, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	omp := opts
	omp.Mode = OpenMP
	omp.Cores = 4
	pm, err := Launch(context.Background(), p, omp)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Value >= seq.Value {
		t.Errorf("OpenMP whole-call time %.0f not below sequential %.0f", pm.Value, seq.Value)
	}
}

func TestAlignmentChangesAllocation(t *testing.T) {
	opts := defaultTestOptions()
	opts.Alignments = []int64{64}
	p := parse(t, kernelSrc(1, "movss", 4), "k")
	m, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Arrays) != 1 || m.Arrays[0]%4096 != 64 {
		t.Errorf("array base %#x not at alignment offset 64", m.Arrays)
	}
}

func TestPerIterationRequiresEaxCounter(t *testing.T) {
	// A kernel without the Fig. 9 counter cannot report cycles/iteration.
	src := ".L0:\nmovss (%rsi), %xmm0\nadd $4, %rsi\nsub $1, %rdi\njge .L0\nret\n"
	p := parse(t, src, "nocounter")
	opts := defaultTestOptions()
	if _, err := Launch(context.Background(), p, opts); err == nil {
		t.Error("expected an error for a kernel without the eax protocol")
	}
	opts.PerIteration = false
	if _, err := Launch(context.Background(), p, opts); err != nil {
		t.Errorf("whole-call mode should work without the counter: %v", err)
	}
}

func TestNumArraysOf(t *testing.T) {
	two := ".L0:\nmovss (%rsi), %xmm0\nmovss (%rdx), %xmm1\nadd $4, %rsi\nadd $4, %rdx\nadd $1, %eax\nsub $1, %rdi\njge .L0\nret\n"
	p := parse(t, two, "two")
	if got := NumArraysOf(p); got != 2 {
		t.Errorf("NumArraysOf = %d, want 2", got)
	}
}

func TestTimeUnits(t *testing.T) {
	p := parse(t, kernelSrc(2, "movaps", 16), "k")
	opts := defaultTestOptions()
	opts.TimeUnit = UnitCoreCycles
	core, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.TimeUnit = UnitSeconds
	secs, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantSecs := core.Value / (2.67 * 1e9)
	if secs.Value < wantSecs*0.99 || secs.Value > wantSecs*1.01 {
		t.Errorf("seconds %.3g inconsistent with core cycles %.3g", secs.Value, core.Value)
	}
	opts.TimeUnit = UnitTSC
	opts.CoreFrequencyGHz = 1.335 // half nominal: TSC = 2x core cycles
	tsc, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tsc.Value < core.Value {
		t.Errorf("TSC at half frequency (%.2f) should exceed nominal core cycles (%.2f)", tsc.Value, core.Value)
	}
}

func TestOptionValidation(t *testing.T) {
	p := parse(t, kernelSrc(1, "movss", 4), "k")
	bad := defaultTestOptions()
	bad.Alignments = []int64{5000}
	if _, err := Launch(context.Background(), p, bad); err == nil {
		t.Error("alignment beyond window accepted")
	}
	bad2 := defaultTestOptions()
	bad2.MachineName = "z80"
	if _, err := Launch(context.Background(), p, bad2); err == nil {
		t.Error("unknown machine accepted")
	}
	bad3 := defaultTestOptions()
	bad3.Mode = Fork
	bad3.Cores = 1000
	if _, err := Launch(context.Background(), p, bad3); err == nil {
		t.Error("1000-core fork on a 12-core machine accepted")
	}
	bad4 := defaultTestOptions()
	bad4.PinCore = 64
	if _, err := Launch(context.Background(), p, bad4); err == nil {
		t.Error("pin to nonexistent core accepted")
	}
}

func TestParsersAndStrings(t *testing.T) {
	if m, err := ParseMode("fork"); err != nil || m != Fork {
		t.Error("ParseMode fork failed")
	}
	if _, err := ParseMode("threads"); err == nil {
		t.Error("bad mode accepted")
	}
	if u, err := ParseTimeUnit("seconds"); err != nil || u != UnitSeconds {
		t.Error("ParseTimeUnit seconds failed")
	}
	if _, err := ParseTimeUnit("ms"); err == nil {
		t.Error("bad unit accepted")
	}
	if Sequential.String() != "sequential" || UnitTSC.String() != "tsc-cycles" {
		t.Error("String() values wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	p := parse(t, kernelSrc(2, "movaps", 16), "k")
	m, err := Launch(context.Background(), p, defaultTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Measurement{m}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kernel,mode,cores,unit,value") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "k,sequential,1,tsc-cycles,") {
		t.Errorf("CSV row missing: %s", out)
	}
}

func TestStatisticSelection(t *testing.T) {
	p := parse(t, kernelSrc(2, "movaps", 16), "k")
	opts := defaultTestOptions()
	opts.Statistic = stats.StatMax
	mMax, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mMax.Value != mMax.Summary.Max {
		t.Errorf("StatMax not honored: %v vs %v", mMax.Value, mMax.Summary.Max)
	}
}

// TestTruncatedMeasurement: instruction-budgeted runs report steady-state
// cycles/iteration close to the full run.
func TestTruncatedMeasurement(t *testing.T) {
	p := parse(t, kernelSrc(8, "movaps", 16), "k")
	full := defaultTestOptions()
	fullM, err := Launch(context.Background(), p, full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := full
	trunc.MaxInstructions = 500
	truncM, err := Launch(context.Background(), p, trunc)
	if err != nil {
		t.Fatal(err)
	}
	if !truncM.Truncated {
		t.Error("truncation not reported")
	}
	ratio := truncM.Value / fullM.Value
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("truncated estimate %.2f too far from full %.2f", truncM.Value, fullM.Value)
	}
}

// TestOpenMPDynamicSchedule: the launcher's schedule(dynamic) path runs and
// covers the trip like static.
func TestOpenMPDynamicSchedule(t *testing.T) {
	p := parse(t, kernelSrc(2, "movss", 4), "k")
	opts := defaultTestOptions()
	opts.Mode = OpenMP
	opts.Cores = 4
	opts.MachineName = "sandybridge/8"
	opts.ArrayBytes = 64 << 10
	opts.InnerReps = 1
	opts.OuterReps = 2
	static, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.OMPDynamic = true
	opts.OMPChunkElements = 1024
	dynamic, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.Iterations != static.Iterations {
		t.Errorf("dynamic covered %d iterations, static %d", dynamic.Iterations, static.Iterations)
	}
	// On a quiet machine dynamic pays only dispatch overhead.
	if dynamic.Value > static.Value*1.6 {
		t.Errorf("dynamic %.3f far above static %.3f on balanced work", dynamic.Value, static.Value)
	}
}

// TestCSVEnergyColumns: energy columns render when requested.
func TestCSVEnergyColumns(t *testing.T) {
	p := parse(t, kernelSrc(2, "movaps", 16), "k")
	opts := defaultTestOptions()
	opts.ReportEnergy = true
	m, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Measurement{m}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], "energy_j,avg_watts") {
		t.Errorf("header missing energy columns: %s", lines[0])
	}
	fields := strings.Split(lines[1], ",")
	if fields[len(fields)-1] == "" || fields[len(fields)-2] == "" {
		t.Errorf("energy fields empty: %s", lines[1])
	}
}
