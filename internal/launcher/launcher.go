package launcher

import (
	"context"
	"fmt"
	"sync"

	"microtools/internal/cpu"
	"microtools/internal/faults"
	"microtools/internal/isa"
	"microtools/internal/machine"
	"microtools/internal/memsim"
	"microtools/internal/obs"
	"microtools/internal/openmp"
	"microtools/internal/power"
	"microtools/internal/sim"
	"microtools/internal/stats"
	"microtools/internal/telemetry"
)

// Measurement is the launcher's result for one kernel under one
// configuration — one row of the §4.3 CSV output.
type Measurement struct {
	Kernel string
	Mode   Mode
	Cores  int
	// Value is the reported number: time per iteration (or per call) in
	// the configured unit, after the configured statistic across outer
	// repetitions.
	Value float64
	Unit  TimeUnit
	// Summary holds the distribution across outer repetitions.
	Summary stats.Summary
	// Stability condenses Summary into the per-variant confidence
	// signals (mean, CV, RCIW) campaign results and the measurement
	// cache carry. It is a pure function of Summary (stats.StabilityOf),
	// so entries cached before the field existed reproduce it exactly.
	Stability stats.Stability
	// Iterations is the per-call loop iteration count the kernel returned
	// in %eax (§4.4).
	Iterations uint64
	// ValuePerElement is Value normalized by the elements each loop
	// iteration consumes (trip/iterations), the fair metric when ranking
	// variants with different unroll factors. Zero when unavailable
	// (truncated runs or whole-call reporting).
	ValuePerElement float64
	// OverheadCycles is the calibrated per-call measurement overhead that
	// was subtracted (§4.5).
	OverheadCycles float64
	// StaticBound is internal/dataflow's lower bound for the kernel in
	// Value's unit and per-iteration basis (0 when unavailable). The
	// launcher itself leaves it zero; internal/campaign fills it and
	// asserts the oracle invariant against it behind Options.CheckBounds.
	StaticBound float64
	// Truncated reports that calls stopped at the instruction budget.
	Truncated bool
	// Arrays records the allocated base addresses (for reporting).
	Arrays []uint64
	// MemStats snapshots the memory system counters over the measured
	// portion.
	MemStats memsim.Stats
	// Adaptive records what the adaptive repetition planner did (nil
	// unless Options.Adaptive armed it): the resolved plan, realized
	// repetitions, achieved RCIW and stop reason. omitempty keeps the
	// cache encoding of fixed-budget measurements byte-identical to
	// builds that predate the field.
	Adaptive *AdaptiveOutcome `json:",omitempty"`
	// Counters is the simulated-PMU snapshot over the measured region
	// (nil unless Options.CollectCounters).
	Counters *obs.Counters
	// Energy is the §7 power-model estimate (nil unless requested).
	Energy *power.Estimate
}

// NumArraysOf derives how many launcher-provided arrays a kernel consumes:
// the distinct SysV argument registers (beyond %rdi) it uses as memory
// bases. This implements the automatic default for the paper's --nbvectors.
func NumArraysOf(p *isa.Program) int {
	used := map[isa.Reg]bool{}
	for i := range p.Insts {
		if mem, _, ok := p.Insts[i].MemOperand(); ok {
			if mem.Base != isa.NoReg {
				used[mem.Base] = true
			}
			if mem.Index != isa.NoReg {
				used[mem.Index] = true
			}
		}
	}
	n := 0
	for _, r := range isa.ArgRegs[1:] {
		if used[r] {
			n++
		}
	}
	return n
}

// calibrationProgram returns the "empty benchmark" used to measure call
// overhead. One shared instance serves every launch so its µop decode is
// cached once per decode signature rather than redone per Launch call.
var calibrationProgram = sync.OnceValue(func() *isa.Program {
	return mustResolve(&isa.Program{
		Name: "__calibrate",
		Insts: []isa.Inst{
			{Op: isa.XOR, A: isa.NewReg(isa.RAX), B: isa.NewReg(isa.RAX), NOps: 2},
			{Op: isa.RET},
		},
		Labels: map[string]int{},
	})
})

// mustResolve resolves a statically-known program; the inputs are compile-
// time constants, so a resolution failure is a programming error.
func mustResolve(p *isa.Program) *isa.Program {
	if err := p.Resolve(); err != nil {
		panic(err)
	}
	return p
}

// pinOrder returns the core ids fork processes are pinned to. With socket
// spreading, processes round-robin across sockets (the typical HPC layout
// the §5.2.1 saturation study assumes).
func pinOrder(m *machine.Machine, n int, spread bool) ([]int, error) {
	if n > m.Cores {
		return nil, fmt.Errorf("launcher: %d processes on a %d-core machine", n, m.Cores)
	}
	out := make([]int, n)
	if !spread || m.Sockets <= 1 {
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	perSock := m.Cores / m.Sockets
	for i := range out {
		out[i] = (i%m.Sockets)*perSock + i/m.Sockets
	}
	return out, nil
}

// ctxErr reports ctx's cancellation state; a nil ctx never cancels (the
// non-cancellable legacy path — library callers should thread a real one).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Launch measures one kernel program under the given options. The context
// cancels the protocol between repetitions: a canceled launch returns
// ctx.Err() without a measurement.
func Launch(ctx context.Context, prog *isa.Program, opts Options) (*Measurement, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	desc, err := machine.ByName(opts.MachineName)
	if err != nil {
		return nil, err
	}
	mach, err := sim.New(desc)
	if err != nil {
		return nil, err
	}
	if opts.CoreFrequencyGHz > 0 {
		if err := mach.SetCoreFrequency(opts.CoreFrequencyGHz); err != nil {
			return nil, err
		}
	}
	if !opts.DisableInterrupts {
		if err := mach.SetNoise(sim.DefaultNoise(opts.NoiseSeed)); err != nil {
			return nil, err
		}
	}
	return launchOn(ctx, mach, prog, opts)
}

// launchOn runs the protocol against an existing machine instance (exposed
// for the experiment harness, which reuses machines across sweeps).
func launchOn(ctx context.Context, mach *sim.Machine, prog *isa.Program, opts Options) (*Measurement, error) {
	desc := mach.Desc
	logf := func(format string, args ...any) {
		if opts.Verbose != nil {
			fmt.Fprintf(opts.Verbose, format+"\n", args...)
		}
	}

	root := opts.Tracer.Start("launch").
		Str("kernel", prog.Name).
		Str("mode", opts.Mode.String()).
		Str("machine", opts.MachineName)
	defer root.End()
	defer mach.SetTraceSpan(obs.Span{})
	// Live telemetry: resolve the histogram handles once (nil handles
	// no-op) and arm the machine's simulator counters for the duration of
	// this launch — disarming flushes its locally accumulated counts.
	// Durations are timed by chaining laps (one clock read per
	// observation, not two): the end of one timed section is the start of
	// the next, which keeps enabled telemetry inside its <2% overhead
	// budget on the protocol-dominated launch path.
	var repHist, calHist *telemetry.Histogram
	var tick telemetry.Tick
	if opts.Metrics != nil {
		repHist = opts.Metrics.RepSeconds
		calHist = opts.Metrics.CalibrateSeconds
		mach.SetMetrics(opts.Metrics)
		defer mach.SetMetrics(nil)
	}
	if opts.Faults != nil {
		mach.SetFaults(opts.Faults, prog.Name)
		defer mach.SetFaults(nil, "")
	}

	nArrays := opts.NBVectors
	if nArrays == 0 {
		nArrays = NumArraysOf(prog)
	}
	if nArrays > len(isa.ArgRegs)-1 {
		return nil, fmt.Errorf("launcher: kernel needs %d arrays, max %d", nArrays, len(isa.ArgRegs)-1)
	}

	nCores := 1
	var pins []int
	var err error
	switch opts.Mode {
	case Sequential:
		if opts.PinCore < 0 || opts.PinCore >= desc.Cores {
			return nil, fmt.Errorf("launcher: pin core %d outside machine (%d cores)", opts.PinCore, desc.Cores)
		}
		pins = []int{opts.PinCore}
	case Fork, OpenMP:
		nCores = opts.Cores
		pins, err = pinOrder(desc, nCores, opts.SpreadSockets)
		if err != nil {
			return nil, err
		}
	}

	// Allocate the data arrays: per process for Fork (independent
	// processes), shared for Sequential/OpenMP.
	space := memsim.NewAddressSpace()
	allocSet := func() ([]uint64, error) {
		bases := make([]uint64, nArrays)
		for i := range bases {
			var off int64
			if i < len(opts.Alignments) {
				off = opts.Alignments[i]
			}
			b, err := space.Alloc(opts.ArrayBytes, opts.AlignWindow, off)
			if err != nil {
				return nil, err
			}
			bases[i] = b
		}
		return bases, nil
	}

	procArrays := make([][]uint64, nCores)
	if opts.Mode == Fork {
		for i := range procArrays {
			if procArrays[i], err = allocSet(); err != nil {
				return nil, err
			}
		}
	} else {
		shared, err := allocSet()
		if err != nil {
			return nil, err
		}
		for i := range procArrays {
			procArrays[i] = shared
		}
	}

	trip := opts.TripElements
	if trip == 0 {
		trip = opts.ArrayBytes / opts.ElementBytes
	}
	if trip <= 0 {
		return nil, fmt.Errorf("launcher: non-positive trip count")
	}

	regsFor := func(bases []uint64, n int64, baseShift uint64) isa.RegFile {
		var rf isa.RegFile
		if opts.TripExact {
			rf.Set(isa.RDI, uint64(n))
		} else {
			rf.Set(isa.RDI, uint64(n-1))
		}
		for i, b := range bases {
			rf.Set(isa.ArgRegs[1+i], b+baseShift)
		}
		return rf
	}

	// Warm-up (§4.5): touch every array's footprint on its core.
	if opts.Warmup {
		wsp := root.Child("warmup")
		wstart := mach.Now()
		for i, core := range pins {
			for _, b := range procArrays[i] {
				mach.Touch(core, b, opts.ArrayBytes)
			}
		}
		wsp.Cycles(wstart, mach.Now()).End()
		logf("warmup done at machine cycle %d", mach.Now())
	}

	// Calibration (§4.5): time the empty kernel.
	overhead := 0.0
	if opts.Calibrate {
		if calHist != nil {
			tick.Reset()
		}
		csp := root.Child("calibrate")
		cstart := mach.Now()
		mach.SetTraceSpan(csp)
		cal := calibrationProgram()
		var rf isa.RegFile
		res, err := mach.RunOne(sim.Job{Core: pins[0], Prog: cal, Regs: rf})
		if err != nil {
			return nil, err
		}
		overhead = float64(res.Cycles)
		csp.Float("overhead_cycles", overhead).Cycles(cstart, mach.Now()).End()
		if calHist != nil {
			tick.Lap(calHist)
		}
		logf("calibrated overhead: %.0f cycles/call", overhead)
	}

	meas := &Measurement{
		Kernel:         prog.Name,
		Mode:           opts.Mode,
		Cores:          nCores,
		Unit:           opts.TimeUnit,
		OverheadCycles: overhead,
	}
	for _, bases := range procArrays[:1] {
		meas.Arrays = append(meas.Arrays, bases...)
	}

	// Measured region: counters are captured as a delta around the loop
	// below, so warm-up and calibration traffic never pollute them (the
	// simulated analogue of nanoBench's counter-read placement).
	memBefore := mach.Sys.Stats()
	// The adaptive plan (when armed) replaces the fixed budget with a
	// [MinReps, MaxReps] window and a per-rep stop rule. Resolving here
	// keeps the shared Options value untouched — campaign workers alias
	// one Plan pointer across goroutines.
	var adaptive *adaptiveState
	maxReps := opts.OuterReps
	if opts.Adaptive != nil {
		plan := opts.Adaptive.Resolve(opts.OuterReps)
		adaptive = &adaptiveState{plan: plan, statistic: opts.Statistic}
		maxReps = plan.MaxReps
	}
	msp := root.Child("measure").
		Int("outer_reps", int64(maxReps)).
		Int("inner_reps", int64(opts.InnerReps))
	measStart := mach.Now()
	samples := make([]float64, 0, maxReps)
	var iterations uint64
	var totalMix cpu.Mix
	var totalInsts int64
	var totalCycles float64
	var pipe obs.Counters // pipeline-counter aggregate over measured jobs

	// One job batch and result scratch per launch, refilled every inner
	// repetition: the measured loop itself allocates nothing per call.
	jobs := make([]sim.Job, len(pins))
	resScratch := make([]sim.JobResult, 0, 1)

	if repHist != nil && !tick.Started() {
		tick.Reset() // calibration was off; base the lap chain here
	}
	stopReason := ""
	for rep := 0; rep < maxReps; rep++ {
		if err := ctxErr(ctx); err != nil {
			msp.Str("error", err.Error()).End()
			return nil, err
		}
		if err := opts.Faults.Check(faults.PointLauncherRep, fmt.Sprintf("%s/rep%d", prog.Name, rep)); err != nil {
			msp.Str("error", err.Error()).End()
			return nil, fmt.Errorf("launcher: rep %d: %w", rep, err)
		}
		rsp := msp.Child("rep").Int("rep", int64(rep))
		repStart := mach.Now()
		mach.SetTraceSpan(rsp)
		var perCallCycles float64
		var repIters uint64
		switch opts.Mode {
		case Sequential, Fork:
			var total float64
			for inner := 0; inner < opts.InnerReps; inner++ {
				if err := ctxErr(ctx); err != nil {
					return nil, err
				}
				for i, core := range pins {
					jobs[i] = sim.Job{
						Core:     core,
						Prog:     prog,
						Regs:     regsFor(procArrays[i], trip, 0),
						MaxInsts: opts.MaxInstructions,
					}
				}
				var rs []sim.JobResult
				if len(pins) == 1 {
					// Single-core repetitions ride the machine's
					// allocation-free RunOne fast path.
					r, err := mach.RunOne(jobs[0])
					if err != nil {
						return nil, err
					}
					rs = append(resScratch[:0], r)
				} else {
					var err error
					rs, err = mach.Run(jobs)
					if err != nil {
						return nil, err
					}
				}
				// Average across processes (Fig. 14 reports average
				// cycles per iteration across the forked cores).
				var sum float64
				for _, r := range rs {
					sum += float64(r.Cycles)
					totalMix.Add(r.Mix)
					totalInsts += r.Insts
					pipe.CoreCycles += r.Cycles
					pipe.BranchMispredicts += r.Mispredicts
					pipe.FrontendStallCycles += r.FrontendStalls
					pipe.InterruptStallCycles += r.IRQStalls
					if r.Truncated {
						meas.Truncated = true
					}
					repIters = rs[0].EAX
				}
				total += sum / float64(len(rs))
			}
			perCallCycles = total/float64(opts.InnerReps) - overhead
		case OpenMP:
			cfg := openmp.DefaultConfig(nCores)
			if s := opts.OMPOverheadScale; s > 0 && s != 1 {
				cfg.ForkCycles = int64(float64(cfg.ForkCycles) * s)
				cfg.WakeupPerThread = int64(float64(cfg.WakeupPerThread) * s)
				cfg.JoinCycles = int64(float64(cfg.JoinCycles) * s)
				cfg.JoinPerThread = int64(float64(cfg.JoinPerThread) * s)
				cfg.DispatchCycles = int64(float64(cfg.DispatchCycles) * s)
			}
			if opts.OMPDynamic {
				cfg.StaticChunking = false
				if opts.OMPChunkElements > 0 {
					cfg.ChunkElements = opts.OMPChunkElements
				}
			}
			var total float64
			for inner := 0; inner < opts.InnerReps; inner++ {
				if err := ctxErr(ctx); err != nil {
					return nil, err
				}
				sub := cfg
				if inner > 0 {
					// The thread team persists across repetitions (as
					// libgomp's pool does): later regions skip the fork
					// and pay only the barrier.
					sub.ForkCycles = 0
					sub.WakeupPerThread = 0
				}
				res, err := openmp.ParallelFor(mach, sub, pins, trip,
					func(thread int, chunkStart, chunkLen int64) (sim.Job, error) {
						shift := uint64(chunkStart * opts.ElementBytes)
						return sim.Job{
							Core:     pins[thread],
							Prog:     prog,
							Regs:     regsFor(procArrays[thread], chunkLen, shift),
							MaxInsts: opts.MaxInstructions,
						}, nil
					})
				if err != nil {
					return nil, err
				}
				total += float64(res.RegionCycles)
				repIters += res.Iterations
				totalMix.Add(res.Mix)
				totalInsts += res.Insts
				pipe.CoreCycles += res.Cycles
				pipe.BranchMispredicts += res.Mispredicts
				pipe.FrontendStallCycles += res.FrontendStalls
				pipe.InterruptStallCycles += res.IRQStalls
				if res.Truncated {
					meas.Truncated = true
				}
			}
			repIters /= uint64(opts.InnerReps)
			perCallCycles = total/float64(opts.InnerReps) - overhead
		}
		if perCallCycles < 0 {
			perCallCycles = 0
		}
		totalCycles += perCallCycles * float64(opts.InnerReps)
		iterations = repIters
		value := perCallCycles
		if opts.PerIteration {
			if repIters == 0 {
				return nil, fmt.Errorf("launcher: kernel %q returned 0 iterations in %%eax; add the Fig. 9 counter or set PerIteration=false", prog.Name)
			}
			value /= float64(repIters)
		}
		// Unit conversion.
		switch opts.TimeUnit {
		case UnitTSC:
			value *= desc.RefGHz / mach.CoreFrequency()
		case UnitSeconds:
			value /= mach.CoreFrequency() * 1e9
		}
		samples = append(samples, value)
		rsp.Float("value", value).Cycles(repStart, mach.Now()).End()
		logf("rep %d: %.4f %s", rep, value, opts.TimeUnit)
		if adaptive != nil {
			if stopReason = adaptive.observe(value); stopReason != "" {
				logf("adaptive stop after rep %d: %s", rep, stopReason)
				break
			}
		}
	}
	mach.SetTraceSpan(obs.Span{})
	if adaptive != nil {
		if stopReason == "" {
			stopReason = StopBudget
		}
		msp.Int("adaptive_reps", int64(len(samples))).Str("adaptive_stop", stopReason)
	}
	msp.Cycles(measStart, mach.Now()).End()
	if repHist != nil {
		// The whole repetition phase is one lap, recorded as one
		// observation per repetition at the phase mean: a second clock
		// read per rep would cost more than the budget allows, and the
		// cross-variant latency distribution is what the histogram is for.
		tick.LapN(repHist, len(samples))
	}

	meas.Iterations = iterations
	meas.Summary = stats.Summarize(samples)
	meas.Stability = stats.StabilityOf(meas.Summary)
	meas.Value = opts.Statistic.Of(meas.Summary)
	if adaptive != nil {
		meas.Adaptive = &AdaptiveOutcome{
			Plan:       adaptive.plan,
			Reps:       len(samples),
			RCIW:       meas.Stability.RCIW,
			StopReason: stopReason,
		}
	}
	meas.MemStats = mach.Sys.Stats().Sub(memBefore)
	if opts.CollectCounters {
		c := pipe
		c.Mem = meas.MemStats
		c.RetiredInsts = totalInsts
		c.Branches = totalMix.Branches
		meas.Counters = &c
	}
	if opts.PerIteration && !meas.Truncated && iterations > 0 {
		if perIter := float64(trip) / float64(iterations); perIter > 0 {
			meas.ValuePerElement = meas.Value / perIter
		}
	}
	if opts.ReportEnergy {
		model := power.DefaultServerModel(desc.CoreGHz)
		seconds := totalCycles / (mach.CoreFrequency() * 1e9)
		est, err := model.Estimate(totalMix, meas.MemStats, totalInsts, seconds, mach.CoreFrequency())
		if err != nil {
			return nil, err
		}
		meas.Energy = &est
	}
	return meas, nil
}

// LaunchOn runs the protocol on a caller-provided machine (for sweeps that
// must share or control machine state). The machine's noise/frequency
// settings are respected; opts.MachineName is ignored.
func LaunchOn(ctx context.Context, mach *sim.Machine, prog *isa.Program, opts Options) (*Measurement, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return launchOn(ctx, mach, prog, opts)
}
