package launcher

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// CSVHeader is the column set of MicroLauncher's generic CSV output (§4.3).
var CSVHeader = []string{
	"kernel", "mode", "cores", "unit", "value",
	"min", "median", "mean", "max", "cv",
	"iterations", "overhead_cycles", "static_bound", "truncated",
	"energy_j", "avg_watts",
}

// WriteCSV renders measurements as the launcher's CSV output.
func WriteCSV(w io.Writer, ms []*Measurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	// NaN/Inf (e.g. cv of an all-zero sample set) render as empty cells:
	// literal "NaN" breaks downstream CSV consumers that parse numerics.
	// Precision -1 emits the shortest representation that round-trips, so
	// rows neither lose digits nor carry float noise.
	f := func(v float64) string {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, m := range ms {
		row := []string{
			m.Kernel,
			m.Mode.String(),
			strconv.Itoa(m.Cores),
			m.Unit.String(),
			f(m.Value),
			f(m.Summary.Min),
			f(m.Summary.Median),
			f(m.Summary.Mean),
			f(m.Summary.Max),
			f(m.Summary.CV()),
			strconv.FormatUint(m.Iterations, 10),
			f(m.OverheadCycles),
			staticBoundCell(m.StaticBound),
			fmt.Sprintf("%t", m.Truncated),
		}
		if m.Energy != nil {
			row = append(row, f(m.Energy.TotalJoules), f(m.Energy.AvgWatts))
		} else {
			row = append(row, "", "")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// staticBoundCell renders the static lower bound, empty when no bound
// applies (whole-call reporting, unknown counter step, or a report written
// outside a campaign).
func staticBoundCell(v float64) string {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
