package launcher

import (
	"context"
	"math"
	"testing"

	"microtools/internal/stats"
)

func TestPlanResolveNormalization(t *testing.T) {
	cases := []struct {
		name  string
		in    Plan
		outer int
		want  Plan
	}{
		{"zero value inherits fixed budget",
			Plan{}, 6, Plan{MinReps: 2, MaxReps: 6, TargetRCIW: 0.05, StableRuns: 1}},
		{"MinReps clamped to two",
			Plan{MinReps: 1, MaxReps: 8}, 4, Plan{MinReps: 2, MaxReps: 8, TargetRCIW: 0.05, StableRuns: 1}},
		{"ceiling never below floor",
			Plan{MinReps: 5, MaxReps: 3}, 4, Plan{MinReps: 5, MaxReps: 5, TargetRCIW: 0.05, StableRuns: 1}},
		{"no outer budget falls back to the floor",
			Plan{}, 0, Plan{MinReps: 2, MaxReps: 2, TargetRCIW: 0.05, StableRuns: 1}},
		{"explicit knobs pass through",
			Plan{MinReps: 3, MaxReps: 9, TargetRCIW: 0.01, StableRuns: 4}, 4,
			Plan{MinReps: 3, MaxReps: 9, TargetRCIW: 0.01, StableRuns: 4}},
	}
	for _, c := range cases {
		if got := c.in.Resolve(c.outer); got != c.want {
			t.Errorf("%s: Resolve(%+v, %d) = %+v, want %+v", c.name, c.in, c.outer, got, c.want)
		}
	}
	// Resolve is pure: the receiver is untouched (workers share a pointer).
	p := Plan{MinReps: 1}
	p.Resolve(4)
	if p.MinReps != 1 {
		t.Error("Resolve mutated its receiver")
	}
}

func TestAdaptiveObserveStopRules(t *testing.T) {
	// Mean statistic: identical observations collapse the interval to zero
	// width; stops the moment the floor allows.
	a := adaptiveState{plan: Plan{MinReps: 3, MaxReps: 8, TargetRCIW: 0.05, StableRuns: 1}, statistic: stats.StatMean}
	for i, want := range []string{"", "", StopTarget} {
		if got := a.observe(10); got != want {
			t.Fatalf("mean rep %d: observe = %q, want %q", i+1, got, want)
		}
	}
	// Min statistic: an improving minimum resets the run length; stop after
	// StableRuns reps without improvement.
	b := adaptiveState{plan: Plan{MinReps: 2, MaxReps: 8, TargetRCIW: 0.05, StableRuns: 2}, statistic: stats.StatMin}
	steps := []struct {
		v    float64
		want string
	}{
		{10, ""}, {9, ""}, {9.5, ""}, {8, ""}, {8.2, ""}, {8.1, StopStable},
	}
	for i, s := range steps {
		if got := b.observe(s.v); got != s.want {
			t.Fatalf("min rep %d (v=%v): observe = %q, want %q", i+1, s.v, got, s.want)
		}
	}
	// A wide-interval stream never stops on the target rule.
	c := adaptiveState{plan: Plan{MinReps: 2, MaxReps: 8, TargetRCIW: 1e-12, StableRuns: 1}, statistic: stats.StatMean}
	for i, v := range []float64{10, 20, 5, 40, 3} {
		if got := c.observe(v); got != "" {
			t.Fatalf("noisy rep %d: observe = %q, want keep measuring", i+1, got)
		}
	}
}

// TestAdaptiveEarlyStopDeterministicSim drives the full launch protocol:
// with interrupts disabled the simulator repeats samples exactly, so the
// planner stops at the floor and records the outcome.
func TestAdaptiveEarlyStopDeterministicSim(t *testing.T) {
	p := parse(t, kernelSrc(4, "movaps", 16), "k")
	for _, c := range []struct {
		stat   stats.Statistic
		reason string
	}{
		{stats.StatMin, StopStable},
		{stats.StatMean, StopTarget},
	} {
		opts := defaultTestOptions()
		opts.OuterReps = 6
		opts.Statistic = c.stat
		opts.Adaptive = &Plan{}
		m, err := Launch(context.Background(), p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Adaptive == nil {
			t.Fatalf("%v: adaptive launch recorded no outcome", c.stat)
		}
		if m.Adaptive.Reps != 2 || m.Summary.N != 2 {
			t.Errorf("%v: stopped after %d reps (summary n=%d), want the floor 2",
				c.stat, m.Adaptive.Reps, m.Summary.N)
		}
		if m.Adaptive.StopReason != c.reason {
			t.Errorf("%v: stop reason %q, want %q", c.stat, m.Adaptive.StopReason, c.reason)
		}
		if m.Adaptive.Plan != (Plan{MinReps: 2, MaxReps: 6, TargetRCIW: 0.05, StableRuns: 1}) {
			t.Errorf("%v: outcome carries plan %+v, not the resolved one", c.stat, m.Adaptive.Plan)
		}
		if m.Adaptive.RCIW != m.Summary.RCIW() {
			t.Errorf("%v: outcome RCIW %v != summary RCIW %v", c.stat, m.Adaptive.RCIW, m.Summary.RCIW())
		}
	}
}

// TestAdaptiveMatchesFixedValue pins the headline invariant: early
// stopping changes the repetition count, never the min-statistic value the
// deterministic simulator reports.
func TestAdaptiveMatchesFixedValue(t *testing.T) {
	p := parse(t, kernelSrc(4, "movaps", 16), "k")
	fixed := defaultTestOptions()
	fixed.OuterReps = 6
	mf, err := Launch(context.Background(), p, fixed)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := fixed
	adaptive.Adaptive = &Plan{}
	ma, err := Launch(context.Background(), p, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Value != mf.Value {
		t.Errorf("adaptive value %v != fixed value %v", ma.Value, mf.Value)
	}
	if mf.Adaptive != nil {
		t.Error("fixed-budget launch grew an adaptive outcome")
	}
	if ma.Summary.N >= mf.Summary.N {
		t.Errorf("adaptive ran %d reps, fixed %d: no savings", ma.Summary.N, mf.Summary.N)
	}
}

// TestAdaptiveBudgetExhaustionUnderNoise arms an unreachable target under
// simulated interrupt noise: the planner must run the full ceiling and say
// so.
func TestAdaptiveBudgetExhaustionUnderNoise(t *testing.T) {
	p := parse(t, kernelSrc(4, "movaps", 16), "k")
	opts := defaultTestOptions()
	opts.OuterReps = 5
	opts.Statistic = stats.StatMean
	opts.DisableInterrupts = false
	opts.NoiseSeed = 42
	opts.Warmup = false
	opts.Adaptive = &Plan{TargetRCIW: 1e-12}
	m, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Adaptive == nil || m.Adaptive.StopReason != StopBudget {
		t.Fatalf("outcome = %+v, want budget exhaustion", m.Adaptive)
	}
	if m.Adaptive.Reps != 5 || m.Summary.N != 5 {
		t.Errorf("budget run did %d reps (summary n=%d), want the full 5", m.Adaptive.Reps, m.Summary.N)
	}
	if math.IsInf(m.Adaptive.RCIW, 0) || m.Adaptive.RCIW <= 0 {
		t.Errorf("noisy RCIW = %v, want finite positive", m.Adaptive.RCIW)
	}
}

// TestAdaptiveDeterministicRerun re-launches the same adaptive plan under
// the same noise seed: the stop decision and every reported number must
// replay exactly (the cache-warmness contract).
func TestAdaptiveDeterministicRerun(t *testing.T) {
	p := parse(t, kernelSrc(4, "movaps", 16), "k")
	opts := defaultTestOptions()
	opts.OuterReps = 6
	opts.Statistic = stats.StatMean
	opts.DisableInterrupts = false
	opts.NoiseSeed = 7
	opts.Adaptive = &Plan{TargetRCIW: 0.2}
	a, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Launch(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Summary != b.Summary || *a.Adaptive != *b.Adaptive {
		t.Errorf("adaptive rerun diverged:\n%+v %+v\nvs\n%+v %+v", a.Summary, a.Adaptive, b.Summary, b.Adaptive)
	}
}

func TestAdaptiveValidateNegativeTarget(t *testing.T) {
	p := parse(t, kernelSrc(1, "movaps", 16), "k")
	opts := defaultTestOptions()
	opts.Adaptive = &Plan{TargetRCIW: -0.5}
	if _, err := Launch(context.Background(), p, opts); err == nil {
		t.Error("negative adaptive RCIW target accepted")
	}
	// Validate never mutates the shared plan.
	if opts.Adaptive.TargetRCIW != -0.5 {
		t.Error("validation mutated the shared plan")
	}
}
