// Package launcher is MicroLauncher (§4): it executes benchmark programs in
// a stable, controlled environment and reports cycles per iteration.
//
// The execution protocol follows Fig. 10's pseudo-code:
//
//  1. allocate the kernel's data arrays (with the requested alignments);
//  2. warm the caches by running the kernel once (§4.5);
//  3. calibrate the measurement overhead with an empty kernel;
//  4. run outer repetitions, each timing an inner loop of kernel calls;
//  5. divide by repetitions and the %eax iteration count (§4.4) to report
//     cycles per iteration.
//
// Multi-core execution (§4.6, §5.2.1) forks the same kernel onto several
// pinned cores; alignment studies (§5.2.2) sweep per-array offsets.
package launcher

import (
	"fmt"
	"io"

	"microtools/internal/faults"
	"microtools/internal/obs"
	"microtools/internal/stats"
	"microtools/internal/telemetry"
)

// Mode selects the execution strategy.
type Mode int

const (
	// Sequential runs the kernel on one pinned core (§5.1).
	Sequential Mode = iota
	// Fork runs identical copies on N pinned cores with a synchronized
	// start (§4.6, §5.2.1).
	Fork
	// OpenMP splits the trip count across N cores with a parallel-region
	// runtime model (§5.2.3); see internal/openmp.
	OpenMP
)

func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Fork:
		return "fork"
	case OpenMP:
		return "openmp"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the -mode option.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "sequential", "seq":
		return Sequential, nil
	case "fork":
		return Fork, nil
	case "openmp", "omp":
		return OpenMP, nil
	}
	return 0, fmt.Errorf("launcher: unknown mode %q (want sequential|fork|openmp)", s)
}

// Options is MicroLauncher's behaviour-tweaking surface. The paper notes
// "there are currently more than thirty options in the MicroLauncher tool";
// this struct is the library form, and cmd/microlauncher exposes each as a
// flag.
type Options struct {
	// --- input selection -------------------------------------------------

	// FunctionName selects the kernel function when the input holds
	// several ("A command-line parameter provides the function name",
	// §4.1). Empty = single function expected.
	FunctionName string

	// Mode selects sequential, fork or OpenMP execution.
	Mode Mode

	// --- machine / environment -------------------------------------------

	// MachineName picks the simulated platform (Table 1), optionally
	// scaled, e.g. "nehalem-dual/8".
	MachineName string
	// CoreFrequencyGHz overrides the DVFS point (0 = nominal).
	CoreFrequencyGHz float64
	// PinCore is the core a sequential run is pinned to ("the program is
	// pinned on a given default core or chosen by the user", §4).
	PinCore int
	// Cores is the core count for Fork/OpenMP modes.
	Cores int
	// SpreadSockets round-robins fork processes across sockets (default
	// true, the typical HPC placement).
	SpreadSockets bool
	// DisableInterrupts suppresses environmental noise during measured
	// runs (§4.7). Default true; turning it off demonstrates why the
	// launcher exists.
	DisableInterrupts bool
	// NoiseSeed seeds the noise generator when interrupts are enabled.
	NoiseSeed int64

	// --- data arrays -------------------------------------------------------

	// NBVectors is the number of dynamically allocated arrays the kernel
	// expects (the paper's --nbvectors). 0 = derive from the kernel.
	NBVectors int
	// ArrayBytes is the size of each array in bytes.
	ArrayBytes int64
	// Alignments gives each array's byte offset within its alignment
	// window (missing entries default to 0).
	Alignments []int64
	// AlignWindow is the alignment modulus (default 4096, one page).
	AlignWindow int64

	// --- measurement protocol ----------------------------------------------

	// TripElements is the element count passed as the kernel's first
	// argument (%rdi). 0 = derive from ArrayBytes and ElementBytes.
	TripElements int64
	// ElementBytes is the logical element size (default 4).
	ElementBytes int64
	// TripExact passes TripElements to %rdi unmodified. Count-up kernels
	// (e.g. the §2 matrix multiply, cmp/jl against an exact bound) need
	// the exact value; the default subtracts one, which makes
	// MicroCreator's count-down jge loops cover the arrays exactly.
	TripExact bool
	// InnerReps is how many kernel calls one timed experiment contains.
	InnerReps int
	// OuterReps is the number of repeated experiments (§4.5's
	// "repetitions"); the statistic summarizes across them.
	OuterReps int
	// Warmup runs the kernel once untimed to heat the caches (§4.5).
	Warmup bool
	// Calibrate measures and subtracts the empty-function overhead
	// (§4.5's "overhead calculation removes the function call cost").
	Calibrate bool
	// Statistic selects the reported summary (paper figures use min).
	Statistic stats.Statistic
	// MaxInstructions bounds each kernel call's dynamic instructions
	// (0 = unlimited); long-running kernels report steady-state
	// cycles/iteration from the truncated run.
	MaxInstructions int64
	// OMPOverheadScale scales the OpenMP runtime model's fork/join costs
	// (default 1.0). Experiments on cache-scaled machines set it to the
	// same scale factor so region overhead shrinks with the work.
	OMPOverheadScale float64
	// OMPDynamic selects schedule(dynamic) with OMPChunkElements-sized
	// chunks instead of the default schedule(static).
	OMPDynamic       bool
	OMPChunkElements int64
	// Adaptive, when non-nil, arms the μOpTime-style adaptive repetition
	// plan: the outer-rep loop evaluates the plan's statistic-aware stop
	// rule after every repetition and stops early once the statistic has
	// stabilized, recording the outcome on Measurement.Adaptive. Nil (the
	// default) keeps the fixed OuterReps protocol — and, via omitempty,
	// keeps the cache key of fixed-budget runs byte-identical to builds
	// that predate the field. See Plan for the stop rules and the
	// cache-key policy (planned budget in, realized reps out).
	Adaptive *Plan `json:",omitempty"`

	// --- output ------------------------------------------------------------

	// TimeUnit selects the reported unit: core cycles, TSC reference
	// cycles (the rdtsc default), or seconds.
	TimeUnit TimeUnit
	// ReportEnergy attaches the §7 power-model estimate to the
	// measurement (energy, average watts, energy-delay product).
	ReportEnergy bool
	// PerIteration divides by the kernel-reported iteration count
	// (default true; §4.3 "by default the number of cycles per
	// iteration"). When false, whole-call time is reported ("the tool may
	// output the full kernel function's execution").
	PerIteration bool
	// Verbose, when non-nil, receives protocol progress lines.
	Verbose io.Writer

	// --- observability -----------------------------------------------------

	// Tracer, when non-nil, records hierarchical spans over the whole
	// protocol (warm-up, calibration, each measurement repetition, and the
	// simulator runs underneath). Nil is the zero-overhead default.
	Tracer *obs.Tracer
	// CollectCounters attaches a simulated-PMU Counters snapshot to the
	// measurement, captured as a delta over the measured region only (so
	// warm-up and calibration traffic never pollute the counts).
	CollectCounters bool
	// Metrics, when non-nil, records live telemetry for the launch: the
	// per-repetition latency and calibration-time histograms, plus the
	// simulator's instructions-retired and core-pool counters for the
	// machine's duration. Nil is the zero-overhead default. Excluded
	// from cache keys: live instrumentation observes the run, it does
	// not change the measured value.
	Metrics *telemetry.Metrics `json:"-"`

	// --- resilience --------------------------------------------------------

	// Faults, when non-nil, arms deterministic fault injection at the
	// launch protocol's boundaries (faults.PointLauncherRep at every outer
	// repetition, faults.PointSimStep under the simulator). Nil is the
	// fault-free default. Campaign.Run propagates its own injector here
	// when the launch options carry none. Excluded from cache keys: the
	// fault plan perturbs execution, not the measured value a healthy run
	// produces.
	Faults *faults.Injector `json:"-"`
}

// TimeUnit is the launcher's reporting unit.
type TimeUnit int

const (
	// UnitTSC reports constant-rate TSC reference cycles (the paper's
	// rdtsc default, §4.2).
	UnitTSC TimeUnit = iota
	// UnitCoreCycles reports raw core cycles.
	UnitCoreCycles
	// UnitSeconds reports wall-clock seconds (Table 2).
	UnitSeconds
)

func (u TimeUnit) String() string {
	switch u {
	case UnitTSC:
		return "tsc-cycles"
	case UnitCoreCycles:
		return "core-cycles"
	case UnitSeconds:
		return "seconds"
	}
	return fmt.Sprintf("TimeUnit(%d)", int(u))
}

// ParseTimeUnit parses the -unit option.
func ParseTimeUnit(s string) (TimeUnit, error) {
	switch s {
	case "tsc", "tsc-cycles", "rdtsc":
		return UnitTSC, nil
	case "cycles", "core-cycles":
		return UnitCoreCycles, nil
	case "seconds", "s":
		return UnitSeconds, nil
	}
	return 0, fmt.Errorf("launcher: unknown time unit %q (want tsc|cycles|seconds)", s)
}

// DefaultOptions returns the paper-faithful defaults: Nehalem dual-socket,
// warmed caches, calibrated overhead, interrupts disabled, min statistic,
// TSC cycles per iteration.
func DefaultOptions() Options {
	return Options{
		MachineName:       "nehalem-dual",
		PinCore:           0,
		Cores:             1,
		SpreadSockets:     true,
		DisableInterrupts: true,
		ArrayBytes:        1 << 16,
		AlignWindow:       4096,
		ElementBytes:      4,
		InnerReps:         4,
		OuterReps:         4,
		Warmup:            true,
		Calibrate:         true,
		Statistic:         stats.StatMin,
		TimeUnit:          UnitTSC,
		PerIteration:      true,
	}
}

// Option is a functional setter for Options, applied by NewOptions. The
// setters below are grouped exactly like the Options struct sections, so a
// call site reads in the same order as the documentation.
type Option func(*Options)

// NewOptions builds an Options value by applying functional setters on top
// of DefaultOptions. It is the recommended constructor: call sites name
// only what they change and inherit the paper-faithful defaults for the
// rest. The struct remains exported — flag-driven tools and tests that
// fill every field may keep using it directly.
//
//	opts := launcher.NewOptions(
//	    launcher.WithMachine("nehalem-dual"),
//	    launcher.WithReps(8, 4),
//	    launcher.WithTracer(tr),
//	)
func NewOptions(setters ...Option) Options {
	o := DefaultOptions()
	for _, set := range setters {
		if set != nil {
			set(&o)
		}
	}
	return o
}

// --- input selection -------------------------------------------------------

// WithFunction selects the kernel function by name when the input holds
// several.
func WithFunction(name string) Option { return func(o *Options) { o.FunctionName = name } }

// WithMode selects sequential, fork or OpenMP execution.
func WithMode(m Mode) Option { return func(o *Options) { o.Mode = m } }

// --- machine / environment ---------------------------------------------------

// WithMachine picks the simulated platform by name (e.g. "nehalem-dual",
// optionally scaled: "nehalem-dual/8").
func WithMachine(name string) Option { return func(o *Options) { o.MachineName = name } }

// WithCoreFrequency overrides the DVFS point in GHz (0 = nominal).
func WithCoreFrequency(ghz float64) Option { return func(o *Options) { o.CoreFrequencyGHz = ghz } }

// WithPinCore pins a sequential run to the given core.
func WithPinCore(core int) Option { return func(o *Options) { o.PinCore = core } }

// WithCores sets the core count for Fork/OpenMP modes.
func WithCores(n int) Option { return func(o *Options) { o.Cores = n } }

// WithSpreadSockets toggles round-robin placement across sockets.
func WithSpreadSockets(spread bool) Option { return func(o *Options) { o.SpreadSockets = spread } }

// WithInterruptNoise re-enables the environmental noise the launcher
// normally suppresses (§4.7), seeding its generator — the configuration
// that demonstrates why the launcher exists.
func WithInterruptNoise(seed int64) Option {
	return func(o *Options) {
		o.DisableInterrupts = false
		o.NoiseSeed = seed
	}
}

// --- data arrays -------------------------------------------------------------

// WithVectors fixes the number of allocated arrays (0 = derive from the
// kernel).
func WithVectors(n int) Option { return func(o *Options) { o.NBVectors = n } }

// WithArrayBytes sets each array's size in bytes.
func WithArrayBytes(n int64) Option { return func(o *Options) { o.ArrayBytes = n } }

// WithAlignments sets each array's byte offset within the alignment
// window.
func WithAlignments(offsets ...int64) Option {
	return func(o *Options) { o.Alignments = append([]int64(nil), offsets...) }
}

// WithAlignWindow sets the alignment modulus (a power of two).
func WithAlignWindow(w int64) Option { return func(o *Options) { o.AlignWindow = w } }

// --- measurement protocol ----------------------------------------------------

// WithTrip fixes the element count passed as the kernel's first argument
// (0 = derive from the array size).
func WithTrip(elements int64) Option { return func(o *Options) { o.TripElements = elements } }

// WithExactTrip passes the trip count to %rdi unmodified (count-up
// kernels).
func WithExactTrip() Option { return func(o *Options) { o.TripExact = true } }

// WithElementBytes sets the logical element size.
func WithElementBytes(n int64) Option { return func(o *Options) { o.ElementBytes = n } }

// WithReps sets the repetition protocol: outer timed experiments and
// kernel calls per experiment.
func WithReps(outer, inner int) Option {
	return func(o *Options) {
		o.OuterReps = outer
		o.InnerReps = inner
	}
}

// WithWarmup toggles the untimed cache-warming call (§4.5).
func WithWarmup(on bool) Option { return func(o *Options) { o.Warmup = on } }

// WithCalibration toggles empty-kernel overhead subtraction (§4.5).
func WithCalibration(on bool) Option { return func(o *Options) { o.Calibrate = on } }

// WithStatistic selects the reported summary statistic.
func WithStatistic(s stats.Statistic) Option { return func(o *Options) { o.Statistic = s } }

// WithMaxInstructions bounds each kernel call's dynamic instructions
// (0 = unlimited).
func WithMaxInstructions(n int64) Option { return func(o *Options) { o.MaxInstructions = n } }

// WithOMPOverheadScale scales the OpenMP runtime model's fork/join costs.
func WithOMPOverheadScale(s float64) Option { return func(o *Options) { o.OMPOverheadScale = s } }

// WithOMPDynamic selects schedule(dynamic) with the given chunk size in
// elements (0 = the runtime default).
func WithOMPDynamic(chunkElements int64) Option {
	return func(o *Options) {
		o.OMPDynamic = true
		o.OMPChunkElements = chunkElements
	}
}

// WithAdaptive arms the adaptive repetition plan (see Plan). The plan is
// copied, so the caller's value cannot alias the options.
func WithAdaptive(p Plan) Option {
	return func(o *Options) {
		pp := p
		o.Adaptive = &pp
	}
}

// WithAdaptiveTarget arms adaptive repetition with the given RCIW stop
// threshold and defaults for everything else — the one-knob form of
// WithAdaptive.
func WithAdaptiveTarget(rciw float64) Option {
	return func(o *Options) {
		o.Adaptive = &Plan{TargetRCIW: rciw}
	}
}

// --- output ------------------------------------------------------------------

// WithTimeUnit selects the reported unit.
func WithTimeUnit(u TimeUnit) Option { return func(o *Options) { o.TimeUnit = u } }

// WithEnergy attaches the §7 power-model estimate to the measurement.
func WithEnergy() Option { return func(o *Options) { o.ReportEnergy = true } }

// WithWholeCall reports whole-call time instead of dividing by the
// kernel's iteration count.
func WithWholeCall() Option { return func(o *Options) { o.PerIteration = false } }

// WithVerbose streams protocol progress lines to w.
func WithVerbose(w io.Writer) Option { return func(o *Options) { o.Verbose = w } }

// --- observability -----------------------------------------------------------

// WithTracer records hierarchical spans over the whole protocol.
func WithTracer(t *obs.Tracer) Option { return func(o *Options) { o.Tracer = t } }

// WithCounters attaches a simulated-PMU snapshot to the measurement.
func WithCounters() Option { return func(o *Options) { o.CollectCounters = true } }

// WithMetrics arms live telemetry recording for the launch.
func WithMetrics(m *telemetry.Metrics) Option { return func(o *Options) { o.Metrics = m } }

// --- resilience --------------------------------------------------------------

// WithFaults arms deterministic fault injection at the launch protocol's
// boundaries.
func WithFaults(in *faults.Injector) Option { return func(o *Options) { o.Faults = in } }

// Validate normalizes and checks the options.
func (o *Options) Validate() error {
	if o.MachineName == "" {
		return fmt.Errorf("launcher: no machine selected")
	}
	if o.ArrayBytes <= 0 {
		return fmt.Errorf("launcher: array size must be positive")
	}
	if o.AlignWindow <= 0 {
		o.AlignWindow = 4096
	}
	if o.AlignWindow&(o.AlignWindow-1) != 0 {
		return fmt.Errorf("launcher: alignment window %d not a power of two", o.AlignWindow)
	}
	for i, a := range o.Alignments {
		if a < 0 || a >= o.AlignWindow {
			return fmt.Errorf("launcher: alignment[%d]=%d outside [0,%d)", i, a, o.AlignWindow)
		}
	}
	if o.ElementBytes <= 0 {
		o.ElementBytes = 4
	}
	if o.InnerReps <= 0 {
		o.InnerReps = 1
	}
	if o.OuterReps <= 0 {
		o.OuterReps = 1
	}
	if o.Cores <= 0 {
		o.Cores = 1
	}
	if o.NBVectors < 0 {
		return fmt.Errorf("launcher: negative nbvectors")
	}
	if o.Adaptive != nil && o.Adaptive.TargetRCIW < 0 {
		return fmt.Errorf("launcher: negative adaptive RCIW target %g", o.Adaptive.TargetRCIW)
	}
	return nil
}
