package obs

import (
	"sort"
	"sync"
)

// CounterSet is a concurrency-safe registry of named monotonic event
// counters — the campaign-level companion of the per-measurement Counters
// snapshot. The campaign engine records "campaign.launches",
// "campaign.cache.hits", "campaign.cache.misses", "campaign.variants" and
// "campaign.failures" through one, so tests (and operators) can assert
// properties like "a warm-cache rerun performs zero launches" without
// instrumenting the launcher itself.
//
// A nil *CounterSet is the disabled default: every method nil-checks and
// returns immediately, mirroring the nil-*Tracer convention.
//
// A CounterSet is one CounterSink among several: Tee fans every Add out
// to further sinks (the live telemetry registry, another set), making the
// post-hoc snapshot and the live exposition two views of one counter
// stream.
type CounterSet struct {
	mu     sync.Mutex
	counts map[string]int64
	sinks  []CounterSink
}

// CounterSink receives named counter deltas. *CounterSet implements it,
// as does telemetry.Registry (structurally — obs deliberately does not
// import telemetry), so counter streams compose without either package
// knowing the other.
type CounterSink interface {
	Count(name string, delta int64)
}

// NewCounterSet returns an empty, enabled counter registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: map[string]int64{}}
}

// Add increments the named counter by delta and forwards the delta to
// every teed sink.
func (s *CounterSet) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counts[name] += delta
	for _, sink := range s.sinks {
		sink.Count(name, delta)
	}
	s.mu.Unlock()
}

// Inc increments the named counter by one.
func (s *CounterSet) Inc(name string) { s.Add(name, 1) }

// Count is Add under the CounterSink contract, so one CounterSet can tee
// into another.
func (s *CounterSet) Count(name string, delta int64) { s.Add(name, delta) }

// Tee registers a sink that receives every future Add delta (existing
// totals are not replayed). Registering the same sink twice, the set
// itself, or a nil sink is a no-op, so campaign wiring can tee
// unconditionally.
func (s *CounterSet) Tee(sink CounterSink) {
	if s == nil || sink == nil || sink == CounterSink(s) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.sinks {
		if have == sink {
			return
		}
	}
	s.sinks = append(s.sinks, sink)
}

// Get returns the named counter's current value (0 when never incremented
// or on a nil set).
func (s *CounterSet) Get(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// Snapshot returns a copy of every counter.
func (s *CounterSet) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (s *CounterSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
