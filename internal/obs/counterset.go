package obs

import (
	"sort"
	"sync"
)

// CounterSet is a concurrency-safe registry of named monotonic event
// counters — the campaign-level companion of the per-measurement Counters
// snapshot. The campaign engine records "campaign.launches",
// "campaign.cache.hits", "campaign.cache.misses", "campaign.variants" and
// "campaign.failures" through one, so tests (and operators) can assert
// properties like "a warm-cache rerun performs zero launches" without
// instrumenting the launcher itself.
//
// A nil *CounterSet is the disabled default: every method nil-checks and
// returns immediately, mirroring the nil-*Tracer convention.
type CounterSet struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounterSet returns an empty, enabled counter registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: map[string]int64{}}
}

// Add increments the named counter by delta.
func (s *CounterSet) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counts[name] += delta
	s.mu.Unlock()
}

// Inc increments the named counter by one.
func (s *CounterSet) Inc(name string) { s.Add(name, 1) }

// Get returns the named counter's current value (0 when never incremented
// or on a nil set).
func (s *CounterSet) Get(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[name]
}

// Snapshot returns a copy of every counter.
func (s *CounterSet) Snapshot() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (s *CounterSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.counts))
	for k := range s.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
