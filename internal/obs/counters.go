package obs

import (
	"fmt"

	"microtools/internal/memsim"
)

// Counters is a simulated-PMU snapshot: the memory-system event counts
// plus the per-core pipeline counters, captured as a delta over the
// measured region only (warm-up and calibration traffic excluded — the
// simulated analogue of reading hardware counters immediately around the
// benchmarked code, as nanoBench does).
type Counters struct {
	// Mem aggregates the memory-hierarchy events (L1/L2/L3 hits and
	// misses, MSHR merges, alias stalls, prefetches, row misses, memory
	// accesses) over the measured region.
	Mem memsim.Stats `json:"mem"`
	// RetiredInsts is the dynamic instruction count across all measured
	// kernel invocations (all cores).
	RetiredInsts int64 `json:"retired_insts"`
	// Branches is the retired branch count.
	Branches int64 `json:"branches"`
	// BranchMispredicts counts conditional branches resolved against the
	// predictor's direction.
	BranchMispredicts int64 `json:"branch_mispredicts"`
	// FrontendStallCycles accumulates cycles the frontend was refilling:
	// ROB-full backpressure, mispredict redirects and taken-branch fetch
	// bubbles.
	FrontendStallCycles int64 `json:"frontend_stall_cycles"`
	// InterruptStallCycles accumulates cycles stolen by simulated timer
	// interrupts (§4.7 noise); zero whenever interrupts are disabled.
	InterruptStallCycles int64 `json:"interrupt_stall_cycles"`
	// CoreCycles is the summed core-cycle cost of the measured kernel
	// invocations (the CPI denominator's partner).
	CoreCycles int64 `json:"core_cycles"`
}

// Add accumulates another snapshot into c.
func (c *Counters) Add(o Counters) {
	c.Mem = c.Mem.Add(o.Mem)
	c.RetiredInsts += o.RetiredInsts
	c.Branches += o.Branches
	c.BranchMispredicts += o.BranchMispredicts
	c.FrontendStallCycles += o.FrontendStallCycles
	c.InterruptStallCycles += o.InterruptStallCycles
	c.CoreCycles += o.CoreCycles
}

// Sub returns the delta c − o (capture-around-the-measured-region
// arithmetic).
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Mem:                  c.Mem.Sub(o.Mem),
		RetiredInsts:         c.RetiredInsts - o.RetiredInsts,
		Branches:             c.Branches - o.Branches,
		BranchMispredicts:    c.BranchMispredicts - o.BranchMispredicts,
		FrontendStallCycles:  c.FrontendStallCycles - o.FrontendStallCycles,
		InterruptStallCycles: c.InterruptStallCycles - o.InterruptStallCycles,
		CoreCycles:           c.CoreCycles - o.CoreCycles,
	}
}

// ratio is the NaN-free division used by every derived metric: 0 when the
// denominator is 0.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// CPI is cycles per retired instruction.
func (c Counters) CPI() float64 {
	return ratio(float64(c.CoreCycles), float64(c.RetiredInsts))
}

// IPC is retired instructions per cycle.
func (c Counters) IPC() float64 {
	return ratio(float64(c.RetiredInsts), float64(c.CoreCycles))
}

// L1HitRate is L1 hits over L1 lookups.
func (c Counters) L1HitRate() float64 {
	return ratio(float64(c.Mem.L1Hits), float64(c.Mem.L1Hits+c.Mem.L1Misses))
}

// mpki is misses per kilo-instruction.
func (c Counters) mpki(misses int64) float64 {
	return ratio(1000*float64(misses), float64(c.RetiredInsts))
}

// L1MPKI is L1 misses per kilo-instruction.
func (c Counters) L1MPKI() float64 { return c.mpki(c.Mem.L1Misses) }

// L2MPKI is L2 misses per kilo-instruction.
func (c Counters) L2MPKI() float64 { return c.mpki(c.Mem.L2Misses) }

// L3MPKI is L3 misses per kilo-instruction.
func (c Counters) L3MPKI() float64 { return c.mpki(c.Mem.L3Misses) }

// MispredictRate is mispredicted branches over retired branches.
func (c Counters) MispredictRate() float64 {
	return ratio(float64(c.BranchMispredicts), float64(c.Branches))
}

// CheckInvariants verifies the structural identities the memory hierarchy
// guarantees for any counter snapshot captured as a measured-region delta
// (every identity below is maintained within a single access, so deltas
// taken between accesses inherit them):
//
//	L1 hits + L1 misses = loads + stores + line splits
//	L2 demand lookups   = L1 misses − MSHR merges
//	L3 lookups          = L2 misses + prefetches
//	memory accesses     = L3 misses
//	bytes from memory   = memory accesses × line size
//
// lineSize is the hierarchy's cache-line size in bytes. Pipeline counters
// are checked for basic sanity (mispredicts bounded by branches, branches
// bounded by retired instructions, nothing negative).
func (c Counters) CheckInvariants(lineSize int64) error {
	m := c.Mem
	if got, want := m.L1Hits+m.L1Misses, m.Loads+m.Stores+m.LineSplits; got != want {
		return fmt.Errorf("obs: L1 lookups %d != accesses %d (loads %d + stores %d + splits %d)",
			got, want, m.Loads, m.Stores, m.LineSplits)
	}
	if got, want := m.L2Hits+m.L2Misses, m.L1Misses-m.MSHRMerges; got != want {
		return fmt.Errorf("obs: L2 lookups %d != L1 misses %d - MSHR merges %d",
			got, m.L1Misses, m.MSHRMerges)
	}
	if got, want := m.L3Hits+m.L3Misses, m.L2Misses+m.Prefetches; got != want {
		return fmt.Errorf("obs: L3 lookups %d != L2 misses %d + prefetches %d",
			got, m.L2Misses, m.Prefetches)
	}
	if m.MemAccesses != m.L3Misses {
		return fmt.Errorf("obs: memory accesses %d != L3 misses %d", m.MemAccesses, m.L3Misses)
	}
	if lineSize > 0 && m.BytesFromMemory != m.MemAccesses*lineSize {
		return fmt.Errorf("obs: bytes from memory %d != accesses %d x line %d",
			m.BytesFromMemory, m.MemAccesses, lineSize)
	}
	for _, v := range []struct {
		name string
		v    int64
	}{
		{"loads", m.Loads}, {"stores", m.Stores},
		{"l1_hits", m.L1Hits}, {"l1_misses", m.L1Misses},
		{"l2_hits", m.L2Hits}, {"l2_misses", m.L2Misses},
		{"l3_hits", m.L3Hits}, {"l3_misses", m.L3Misses},
		{"mshr_merges", m.MSHRMerges}, {"prefetches", m.Prefetches},
		{"row_misses", m.RowMisses}, {"retired_insts", c.RetiredInsts},
		{"branches", c.Branches}, {"branch_mispredicts", c.BranchMispredicts},
		{"frontend_stall_cycles", c.FrontendStallCycles},
		{"interrupt_stall_cycles", c.InterruptStallCycles},
		{"core_cycles", c.CoreCycles},
	} {
		if v.v < 0 {
			return fmt.Errorf("obs: negative counter %s = %d", v.name, v.v)
		}
	}
	if c.BranchMispredicts > c.Branches {
		return fmt.Errorf("obs: mispredicts %d exceed branches %d", c.BranchMispredicts, c.Branches)
	}
	if c.Branches > c.RetiredInsts {
		return fmt.Errorf("obs: branches %d exceed retired instructions %d", c.Branches, c.RetiredInsts)
	}
	return nil
}
