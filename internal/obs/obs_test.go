package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"microtools/internal/memsim"
)

// TestNoopTracer: a nil tracer and the zero Span accept the full API
// without recording or panicking.
func TestNoopTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root")
	if sp.Active() {
		t.Fatal("nil tracer produced an active span")
	}
	child := sp.Child("child").Str("k", "v").Int("n", 1).Float("f", 2.5).Cycles(0, 10)
	child.End()
	sp.End()
	if recs := tr.Records(); recs != nil {
		t.Fatalf("nil tracer recorded %d spans", len(recs))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracer wrote JSONL: %q", buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer chrome output not JSON: %v", err)
	}
}

// TestNoopSpanAllocs: the disabled tracing path must not allocate — the
// launcher hot loops call these on every repetition.
func TestNoopSpanAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("launch")
		c := sp.Child("rep").Int("rep", 3).Float("value", 1.5)
		c.Cycles(0, 100)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op tracing allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestSpanHierarchy: parent links and attributes land in the records.
func TestSpanHierarchy(t *testing.T) {
	tr := New()
	root := tr.Start("launch").Str("kernel", "k0")
	warm := root.Child("warmup")
	warm.Cycles(0, 500).End()
	meas := root.Child("measure")
	rep := meas.Child("rep").Int("rep", 0)
	rep.End()
	meas.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["warmup"].ParentID != byName["launch"].ID {
		t.Errorf("warmup parent = %d, want launch %d", byName["warmup"].ParentID, byName["launch"].ID)
	}
	if byName["rep"].ParentID != byName["measure"].ID {
		t.Errorf("rep parent = %d, want measure %d", byName["rep"].ParentID, byName["measure"].ID)
	}
	if !byName["warmup"].HasCycles || byName["warmup"].CycleEnd != 500 {
		t.Errorf("warmup cycles not recorded: %+v", byName["warmup"])
	}
	if byName["launch"].Attrs[0].Key != "kernel" || byName["launch"].Attrs[0].Value.Str != "k0" {
		t.Errorf("launch attrs = %+v", byName["launch"].Attrs)
	}
	if byName["launch"].End.Before(byName["launch"].Start) {
		t.Error("span end before start")
	}
}

// TestConcurrentTracer: parallel goroutines share a tracer (campaign
// launches do) without loss; run with -race.
func TestConcurrentTracer(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const n, per = 8, 50
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Start("launch").Int("i", int64(i))
				sp.Child("rep").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Records()); got != n*per*2 {
		t.Fatalf("recorded %d spans, want %d", got, n*per*2)
	}
}

// TestWriteJSONL: one parseable object per line carrying the span fields.
func TestWriteJSONL(t *testing.T) {
	tr := New()
	root := tr.Start("generate")
	root.Child("xmlspec.parse").Int("kernels", 2).End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0]["name"] != "generate" || lines[1]["name"] != "xmlspec.parse" {
		t.Errorf("names = %v, %v", lines[0]["name"], lines[1]["name"])
	}
	if lines[1]["parent"] != float64(1) {
		t.Errorf("child parent = %v, want 1", lines[1]["parent"])
	}
}

// TestWriteChromeTrace: the export is a valid trace_event document with
// complete events and nesting-compatible timestamps.
func TestWriteChromeTrace(t *testing.T) {
	tr := New()
	root := tr.Start("launch")
	w := root.Child("warmup")
	w.End()
	m := root.Child("measure").Cycles(100, 900)
	m.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	var rootEv, measEv *struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "X" {
			t.Errorf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
		switch ev.Name {
		case "launch":
			rootEv = ev
		case "measure":
			measEv = ev
		}
	}
	if rootEv == nil || measEv == nil {
		t.Fatal("missing launch/measure events")
	}
	if measEv.Tid != rootEv.Tid {
		t.Errorf("child tid %d != root tid %d (must share a track to nest)", measEv.Tid, rootEv.Tid)
	}
	if measEv.Ts < rootEv.Ts || measEv.Ts+measEv.Dur > rootEv.Ts+rootEv.Dur+1e-3 {
		t.Errorf("child [%f,%f] not contained in parent [%f,%f]",
			measEv.Ts, measEv.Ts+measEv.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
	}
	if measEv.Args["cycle_start"] != float64(100) || measEv.Args["cycle_end"] != float64(900) {
		t.Errorf("measure args = %v", measEv.Args)
	}
}

// TestWriteFileFormat dispatches on the .jsonl suffix.
func TestWriteFileFormat(t *testing.T) {
	tr := New()
	tr.Start("x").End()
	var a, b bytes.Buffer
	if err := tr.WriteFileFormat(&a, "trace.jsonl"); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFileFormat(&b, "trace.json"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(a.String()), `{"id":1`) {
		t.Errorf("jsonl output = %q", a.String())
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Errorf("chrome output = %q", b.String())
	}
}

// TestCountersArithmetic: Add/Sub round-trip and the derived metrics.
func TestCountersArithmetic(t *testing.T) {
	a := Counters{
		Mem:                 memsim.Stats{Loads: 1000, L1Hits: 990, L1Misses: 10, L2Hits: 8, L2Misses: 2},
		RetiredInsts:        4000,
		Branches:            500,
		BranchMispredicts:   5,
		FrontendStallCycles: 40,
		CoreCycles:          2000,
	}
	b := a
	b.Add(a)
	if b.RetiredInsts != 8000 || b.Mem.Loads != 2000 {
		t.Fatalf("Add: %+v", b)
	}
	d := b.Sub(a)
	if d != a {
		t.Fatalf("Sub round-trip: %+v != %+v", d, a)
	}
	if got := a.CPI(); got != 0.5 {
		t.Errorf("CPI = %f, want 0.5", got)
	}
	if got := a.IPC(); got != 2 {
		t.Errorf("IPC = %f, want 2", got)
	}
	if got := a.L1HitRate(); got != 0.99 {
		t.Errorf("L1HitRate = %f, want 0.99", got)
	}
	if got := a.L1MPKI(); got != 2.5 {
		t.Errorf("L1MPKI = %f, want 2.5", got)
	}
	if got := a.MispredictRate(); got != 0.01 {
		t.Errorf("MispredictRate = %f, want 0.01", got)
	}
	var zero Counters
	for name, v := range map[string]float64{
		"CPI": zero.CPI(), "IPC": zero.IPC(), "L1HitRate": zero.L1HitRate(),
		"L1MPKI": zero.L1MPKI(), "MispredictRate": zero.MispredictRate(),
	} {
		if v != 0 {
			t.Errorf("zero counters %s = %f, want 0 (never NaN)", name, v)
		}
	}
}

// TestCheckInvariants: a consistent snapshot passes, a corrupted one is
// rejected with a description of the broken identity.
func TestCheckInvariants(t *testing.T) {
	good := Counters{
		Mem: memsim.Stats{
			Loads: 100, Stores: 20, LineSplits: 2,
			L1Hits: 100, L1Misses: 22,
			MSHRMerges: 2,
			L2Hits:     12, L2Misses: 8,
			Prefetches: 4,
			L3Hits:     10, L3Misses: 2,
			MemAccesses: 2, BytesFromMemory: 128,
		},
		RetiredInsts: 400, Branches: 50, BranchMispredicts: 3, CoreCycles: 900,
	}
	if err := good.CheckInvariants(64); err != nil {
		t.Fatalf("consistent snapshot rejected: %v", err)
	}
	bad := good
	bad.Mem.L1Hits++
	if err := bad.CheckInvariants(64); err == nil {
		t.Fatal("corrupted L1 counters accepted")
	}
	bad = good
	bad.Mem.MemAccesses++
	if err := bad.CheckInvariants(64); err == nil {
		t.Fatal("corrupted memory-access counter accepted")
	}
	bad = good
	bad.BranchMispredicts = bad.Branches + 1
	if err := bad.CheckInvariants(64); err == nil {
		t.Fatal("mispredicts > branches accepted")
	}
}
