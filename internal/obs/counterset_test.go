package obs

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	s := NewCounterSet()
	s.Inc("campaign.variants")
	s.Add("campaign.variants", 2)
	s.Add("campaign.launches", 5)
	if got := s.Get("campaign.variants"); got != 3 {
		t.Errorf("variants = %d, want 3", got)
	}
	if got := s.Get("campaign.launches"); got != 5 {
		t.Errorf("launches = %d, want 5", got)
	}
	if got := s.Get("never.touched"); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap["campaign.variants"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
	// The snapshot is a copy: mutating it must not touch the set.
	snap["campaign.variants"] = 99
	if got := s.Get("campaign.variants"); got != 3 {
		t.Errorf("snapshot aliases the live map (got %d)", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "campaign.launches" || names[1] != "campaign.variants" {
		t.Errorf("names = %v, want sorted pair", names)
	}
}

func TestCounterSetNilIsNoOp(t *testing.T) {
	var s *CounterSet
	s.Inc("x")
	s.Add("x", 7)
	if got := s.Get("x"); got != 0 {
		t.Errorf("nil set returned %d", got)
	}
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Errorf("nil snapshot = %v", snap)
	}
	if names := s.Names(); len(names) != 0 {
		t.Errorf("nil names = %v", names)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := s.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}
