package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// jsonlSpan is the JSONL wire form of one span.
type jsonlSpan struct {
	ID         int     `json:"id"`
	Parent     int     `json:"parent,omitempty"`
	Name       string  `json:"name"`
	StartUs    float64 `json:"start_us"`
	DurUs      float64 `json:"dur_us"`
	CycleStart *int64  `json:"cycle_start,omitempty"`
	CycleEnd   *int64  `json:"cycle_end,omitempty"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

func microsSince(epoch, t time.Time) float64 {
	return float64(t.Sub(epoch)) / float64(time.Microsecond)
}

// spanDur returns the span duration in microseconds (0 for unclosed spans).
func spanDur(r *Record) float64 {
	if r.End.IsZero() {
		return 0
	}
	return float64(r.End.Sub(r.Start)) / float64(time.Microsecond)
}

// WriteJSONL writes every recorded span as one JSON object per line, in
// span-open order. Timestamps are microseconds since the tracer epoch.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	epoch := t.Epoch()
	for _, r := range t.Records() {
		js := jsonlSpan{
			ID:      r.ID,
			Parent:  r.ParentID,
			Name:    r.Name,
			StartUs: microsSince(epoch, r.Start),
			DurUs:   spanDur(&r),
			Attrs:   r.Attrs,
		}
		if r.HasCycles {
			cs, ce := r.CycleStart, r.CycleEnd
			js.CycleStart, js.CycleEnd = &cs, &ce
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event "complete" (ph=X) event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope form of the trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans in the Chrome trace_event
// format (chrome://tracing, Perfetto). Each span becomes a "complete"
// event; spans sharing a root ancestor share a tid, so concurrent
// campaign launches render as parallel tracks while the spans within one
// launch nest by time containment.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`+"\n")
		return err
	}
	recs := t.Records()
	epoch := t.Epoch()

	// Map each span to its root ancestor for track (tid) assignment.
	parent := make(map[int]int, len(recs))
	for _, r := range recs {
		parent[r.ID] = r.ParentID
	}
	rootOf := func(id int) int {
		for parent[id] != 0 {
			id = parent[id]
		}
		return id
	}

	// Unclosed spans (e.g. a trace dumped mid-failure) extend to the last
	// recorded event so they stay visible.
	var last time.Time
	for _, r := range recs {
		if r.End.After(last) {
			last = r.End
		}
		if r.Start.After(last) {
			last = r.Start
		}
	}

	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(recs)), DisplayTimeUnit: "ns"}
	for _, r := range recs {
		end := r.End
		if end.IsZero() {
			end = last
		}
		ev := chromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   microsSince(epoch, r.Start),
			Dur:  microsSince(r.Start, end),
			Pid:  1,
			Tid:  rootOf(r.ID),
		}
		if len(r.Attrs) > 0 || r.HasCycles {
			ev.Args = make(map[string]any, len(r.Attrs)+2)
			for _, a := range r.Attrs {
				switch a.Value.Kind {
				case "s":
					ev.Args[a.Key] = a.Value.Str
				case "i":
					ev.Args[a.Key] = a.Value.Int
				case "f":
					ev.Args[a.Key] = a.Value.Float
				}
			}
			if r.HasCycles {
				ev.Args["cycle_start"] = r.CycleStart
				ev.Args["cycle_end"] = r.CycleEnd
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	// Stable ordering: by start time, then id (Records is open-order, which
	// is already start-ordered per goroutine; sorting makes it global).
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		if out.TraceEvents[i].Ts != out.TraceEvents[j].Ts {
			return out.TraceEvents[i].Ts < out.TraceEvents[j].Ts
		}
		return false
	})
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFileFormat dispatches on the file name: names ending in ".jsonl"
// get the JSONL sink, everything else the Chrome trace_event format.
func (t *Tracer) WriteFileFormat(w io.Writer, name string) error {
	if strings.HasSuffix(name, ".jsonl") {
		return t.WriteJSONL(w)
	}
	return t.WriteChromeTrace(w)
}

// FindAll returns the recorded spans with the given name (test helper and
// programmatic trace inspection).
func (t *Tracer) FindAll(name string) []Record {
	var out []Record
	for _, r := range t.Records() {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Find returns the first span with the given name, or an error.
func (t *Tracer) Find(name string) (Record, error) {
	for _, r := range t.Records() {
		if r.Name == name {
			return r, nil
		}
	}
	return Record{}, fmt.Errorf("obs: no span named %q", name)
}
