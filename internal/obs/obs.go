// Package obs is the observability layer of the MicroTools reproduction:
// hierarchical span tracing over the creator→launcher→simulator pipeline
// and a simulated-PMU counter surface pairing every measurement with the
// micro-architectural event counts behind it (the simulated analogue of
// nanoBench-style hardware counter reads around the measured region).
//
// Tracing is opt-in and designed so that the disabled path costs nothing:
// a nil *Tracer is the no-op default, every Span method nil-checks its
// tracer and returns immediately, and no attribute or timestamp storage
// is touched unless a live tracer is attached. Finished traces export as
// JSONL (one span per line) or as the Chrome trace_event format, so a full
// run opens directly in chrome://tracing or Perfetto.
package obs

import (
	"sync"
	"time"
)

// AttrValue is one span attribute value (string, integer or float).
type AttrValue struct {
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	// Kind discriminates which field is set: "s", "i" or "f".
	Kind string `json:"kind"`
}

// Attr is one key/value span attribute.
type Attr struct {
	Key   string    `json:"key"`
	Value AttrValue `json:"value"`
}

// Record is one finished (or still-open) span as stored by the tracer.
type Record struct {
	// ID is 1-based; ParentID 0 means a root span.
	ID       int
	ParentID int
	Name     string
	Attrs    []Attr
	// Start/End are wall-clock bounds; End is zero while the span is open.
	Start, End time.Time
	// CycleStart/CycleEnd are simulated machine-cycle bounds; valid only
	// when HasCycles is set (spans outside the simulator have none).
	CycleStart, CycleEnd int64
	HasCycles            bool
}

// Tracer collects spans. The zero value is NOT ready for use — construct
// with New. A nil *Tracer is the canonical disabled tracer: Start on it
// returns an inert Span and every downstream operation is a nil-check.
// Tracers are safe for concurrent use (parallel campaign launches share
// one tracer).
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Record
}

// New returns an empty, enabled tracer.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Epoch is the tracer's creation time; exported timestamps are relative
// to it.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// Records returns a snapshot copy of all spans recorded so far.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.spans))
	copy(out, t.spans)
	return out
}

// Span is a lightweight handle on one tracer record. The zero Span is the
// no-op span: all methods on it return immediately. Spans are values; copy
// freely.
type Span struct {
	t  *Tracer
	id int // 1-based index into t.spans
}

// Active reports whether the span records anywhere (false for the no-op
// span).
func (s Span) Active() bool { return s.t != nil }

// Start opens a root span. On a nil tracer it returns the no-op span
// without allocating.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.open(name, 0)
}

func (t *Tracer) open(name string, parent int) Span {
	t.mu.Lock()
	id := len(t.spans) + 1
	t.spans = append(t.spans, Record{
		ID:       id,
		ParentID: parent,
		Name:     name,
		Start:    time.Now(),
	})
	t.mu.Unlock()
	return Span{t: t, id: id}
}

// Child opens a sub-span of s.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.open(name, s.id)
}

// Str attaches a string attribute and returns the span for chaining.
func (s Span) Str(key, val string) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	r.Attrs = append(r.Attrs, Attr{Key: key, Value: AttrValue{Kind: "s", Str: val}})
	s.t.mu.Unlock()
	return s
}

// Int attaches an integer attribute and returns the span for chaining.
func (s Span) Int(key string, val int64) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	r.Attrs = append(r.Attrs, Attr{Key: key, Value: AttrValue{Kind: "i", Int: val}})
	s.t.mu.Unlock()
	return s
}

// Float attaches a float attribute and returns the span for chaining.
func (s Span) Float(key string, val float64) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	r.Attrs = append(r.Attrs, Attr{Key: key, Value: AttrValue{Kind: "f", Float: val}})
	s.t.mu.Unlock()
	return s
}

// Cycles records the span's simulated machine-cycle bounds.
func (s Span) Cycles(start, end int64) Span {
	if s.t == nil {
		return s
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	r.CycleStart, r.CycleEnd, r.HasCycles = start, end, true
	s.t.mu.Unlock()
	return s
}

// End closes the span at the current wall-clock time. Ending an already
// ended span is a no-op (the first End wins).
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	r := &s.t.spans[s.id-1]
	if r.End.IsZero() {
		r.End = time.Now()
	}
	s.t.mu.Unlock()
}
