package cliutil

import (
	"io"

	"microtools/internal/verify"
)

// WriteDiagnostics is the one encoder behind every command that prints
// verifier findings (`microtools vet`, `microtools analyze`, microcreator
// -verify/-verify-json): an indented JSON array when jsonOut is set, one
// line per finding otherwise. Routing all commands through it keeps their
// outputs byte-identical, so downstream tooling can parse either command's
// report with the same reader.
func WriteDiagnostics(w io.Writer, ds verify.Diagnostics, jsonOut bool) error {
	if jsonOut {
		return ds.WriteJSON(w)
	}
	return ds.WriteText(w)
}

// DiagnosticsExitCode maps findings to the shared process exit status:
// 1 when any error-severity finding is present, 0 for clean or
// warnings/infos only.
func DiagnosticsExitCode(ds verify.Diagnostics) int {
	if ds.HasErrors() {
		return 1
	}
	return 0
}
