// Package cliutil factors the flag plumbing the microtools commands
// share: span-trace output (-trace), simulated-PMU counter collection
// (-counters), report encoding (-report) and the campaign knobs
// (-workers, -cache, -fail-fast, plus the resilience budget flags).
//
// Each helper is a tiny struct: Register installs its flags on a FlagSet
// (the global flag.CommandLine or a subcommand's own set), and the
// accessor methods turn the parsed values into the library objects the
// command threads into options. Commands keep full control of their
// usage strings and error handling; cliutil only removes the copy-pasted
// create/validate/flush boilerplate.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"time"

	"microtools/internal/campaign"
	"microtools/internal/faults"
	"microtools/internal/launcher"
	"microtools/internal/obs"
	"microtools/internal/telemetry"
)

// Trace wires the shared -trace flag: an optional span-trace output file
// whose extension selects the encoding.
type Trace struct {
	// Path is the parsed -trace value ("" = tracing off).
	Path   string
	tracer *obs.Tracer
}

// Register installs -trace on fs. what names the traced activity in the
// flag's help text (e.g. "the launch protocol").
func (t *Trace) Register(fs *flag.FlagSet, what string) {
	fs.StringVar(&t.Path, "trace", "",
		"write a span trace of "+what+" to this file (.json = Chrome trace_event for chrome://tracing, .jsonl = one span per line)")
}

// Tracer returns the tracer to thread through options — created on first
// call — or nil when -trace is unset (the zero-overhead off state).
func (t *Trace) Tracer() *obs.Tracer {
	if t.Path != "" && t.tracer == nil {
		t.tracer = obs.New()
	}
	return t.tracer
}

// Flush writes the collected spans to the -trace file and returns the
// span count; it is a no-op returning 0 when tracing is off.
func (t *Trace) Flush() (int, error) {
	if t.tracer == nil {
		return 0, nil
	}
	f, err := os.Create(t.Path)
	if err != nil {
		return 0, err
	}
	if err := t.tracer.WriteFileFormat(f, t.Path); err != nil {
		f.Close()
		return 0, fmt.Errorf("cliutil: writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return len(t.tracer.Records()), nil
}

// Counters wires the shared -counters flag.
type Counters struct {
	// Enabled is the parsed -counters value.
	Enabled bool
}

// Register installs -counters on fs. what completes the help sentence
// (e.g. "for every -study measurement").
func (c *Counters) Register(fs *flag.FlagSet, what string) {
	fs.BoolVar(&c.Enabled, "counters", false,
		"collect simulated-PMU counters "+what)
}

// Report wires the shared -report flag selecting the measurement-table
// encoding.
type Report struct {
	// Name is the parsed -report value.
	Name string
}

// Register installs -report on fs. what completes the help sentence.
func (r *Report) Register(fs *flag.FlagSet, what string) {
	fs.StringVar(&r.Name, "report", "csv", what+": csv|json")
}

// Format parses the selected encoding.
func (r *Report) Format() (launcher.ReportFormat, error) {
	return launcher.ParseReportFormat(r.Name)
}

// Campaign wires the campaign-engine flags shared by commands that run
// measurement sweeps: -workers, -cache, -fail-fast and the resilience
// budgets (-retries, -retry-backoff, -deadline, -quarantine, plus the
// chaos seed knobs consumed by `microtools chaos`).
type Campaign struct {
	// Workers is the parsed -workers value.
	Workers int
	// CachePath is the parsed -cache value ("" = no cache).
	CachePath string
	// FailFast is the parsed -fail-fast value.
	FailFast bool
	// Retries, Backoff, Deadline and Quarantine are the parsed resilience
	// budgets (see campaign.Options).
	Retries    int
	Backoff    time.Duration
	Deadline   time.Duration
	Quarantine int
	// RetrySeed drives the deterministic backoff jitter.
	RetrySeed int64
	// Adaptive arms the μOpTime-style adaptive repetition planner; the
	// remaining fields are the parsed plan knobs (see launcher.Plan).
	Adaptive       bool
	AdaptiveRCIW   float64
	AdaptiveMin    int
	AdaptiveMax    int
	AdaptiveStable int
}

// Register installs -workers, -cache and -fail-fast on fs. what names the
// sweep in the help text (e.g. "-study").
func (c *Campaign) Register(fs *flag.FlagSet, what string) {
	c.RegisterWorkers(fs, what)
	fs.StringVar(&c.CachePath, "cache", "",
		"content-addressed measurement cache (JSONL) for "+what+": hits skip the launch, so an interrupted sweep resumes where it stopped")
	fs.BoolVar(&c.FailFast, "fail-fast", false,
		"stop the "+what+" campaign on the first variant failure instead of isolating it")
}

// RegisterWorkers installs only -workers on fs, for commands that fan out
// launches without the rest of the campaign surface.
func (c *Campaign) RegisterWorkers(fs *flag.FlagSet, what string) {
	fs.IntVar(&c.Workers, "workers", 0,
		"launch pool size for "+what+" (0 = GOMAXPROCS); results are bit-identical to a serial run")
}

// RegisterAdaptive installs the adaptive measurement-planner flags on fs.
// what names the sweep in the help text (e.g. "-study").
func (c *Campaign) RegisterAdaptive(fs *flag.FlagSet, what string) {
	fs.BoolVar(&c.Adaptive, "adaptive", false,
		"adaptively size the outer-rep budget per variant in "+what+": stop early once the statistic is stable, then top up unstable variants from the saved budget")
	fs.Float64Var(&c.AdaptiveRCIW, "adaptive-rciw", 0.05,
		"adaptive stop target: relative 95% confidence-interval width of the mean (mean/median statistics)")
	fs.IntVar(&c.AdaptiveMin, "adaptive-min", 2,
		"adaptive floor: never stop before this many outer reps (clamped to >= 2)")
	fs.IntVar(&c.AdaptiveMax, "adaptive-max", 0,
		"adaptive ceiling on outer reps per variant (0 = the fixed -outer budget)")
	fs.IntVar(&c.AdaptiveStable, "adaptive-stable", 1,
		"adaptive stop for min/max statistics: reps without improvement before the value counts as stable")
}

// AdaptivePlan returns the plan described by the adaptive flags, or nil
// when -adaptive is unset (the fixed-budget protocol, byte-identical to
// builds without the planner).
func (c *Campaign) AdaptivePlan() *launcher.Plan {
	if !c.Adaptive {
		return nil
	}
	return &launcher.Plan{
		MinReps:    c.AdaptiveMin,
		MaxReps:    c.AdaptiveMax,
		TargetRCIW: c.AdaptiveRCIW,
		StableRuns: c.AdaptiveStable,
	}
}

// RegisterResilience installs the retry/deadline/quarantine budget flags
// on fs.
func (c *Campaign) RegisterResilience(fs *flag.FlagSet) {
	fs.IntVar(&c.Retries, "retries", 0,
		"re-attempt a variant up to N extra times when its failure is transient (deterministic seeded backoff; 0 = single attempt)")
	fs.DurationVar(&c.Backoff, "retry-backoff", 0,
		"base delay before the first retry, doubling per attempt with deterministic jitter (0 = retry immediately)")
	fs.DurationVar(&c.Deadline, "deadline", 0,
		"per-variant wall-clock budget covering all attempts (0 = unbounded); an expired deadline fails the variant, not the campaign")
	fs.IntVar(&c.Quarantine, "quarantine", 0,
		"withdraw a variant after N consecutive failed attempts even with retry budget left (0 = off)")
	fs.Int64Var(&c.RetrySeed, "retry-seed", 0, "seed for the deterministic retry backoff jitter")
}

// OpenCache opens the -cache store, or returns nil when the flag is
// unset. The caller owns the returned cache and must Close it.
func (c *Campaign) OpenCache() (*campaign.Cache, error) {
	if c.CachePath == "" {
		return nil, nil
	}
	return campaign.OpenCache(c.CachePath)
}

// Options assembles a campaign.Options from the parsed flags through the
// functional constructor; extra setters (launch configuration, cache,
// progress, telemetry handles) are applied after the flag-derived ones,
// so callers can override anything.
func (c *Campaign) Options(extra ...campaign.Option) campaign.Options {
	setters := []campaign.Option{
		campaign.WithWorkers(c.Workers),
		campaign.WithFailFast(c.FailFast),
		campaign.WithVariantDeadline(c.Deadline),
		campaign.WithQuarantine(c.Quarantine),
		campaign.WithRetryPolicy(campaign.RetryPolicy{
			MaxAttempts: c.Retries + 1,
			Backoff:     c.Backoff,
			Seed:        c.RetrySeed,
		}),
	}
	if p := c.AdaptivePlan(); p != nil {
		setters = append(setters, campaign.WithAdaptive(*p))
	}
	return campaign.NewOptions(append(setters, extra...)...)
}

// Telemetry wires the live-telemetry flags shared by every command:
// -telemetry-addr starts the embedded HTTP server (/metrics,
// /debug/campaigns, /events) and -pprof additionally mounts
// net/http/pprof on the same listener. The accessor methods hand out the
// registry-backed handles to thread into options; all of them return nil
// when -telemetry-addr is unset, which downstream code treats as
// telemetry-off.
type Telemetry struct {
	// Addr is the parsed -telemetry-addr value ("" = telemetry off).
	Addr string
	// Pprof is the parsed -pprof value.
	Pprof bool

	registry *telemetry.Registry
	metrics  *telemetry.Metrics
	tracker  *telemetry.Tracker
	server   *telemetry.Server
}

// Register installs -telemetry-addr and -pprof on fs. what names the
// instrumented activity in the help text (e.g. "the -study sweep").
func (t *Telemetry) Register(fs *flag.FlagSet, what string) {
	fs.StringVar(&t.Addr, "telemetry-addr", "",
		"serve live telemetry for "+what+" on this address (host:port; :0 picks a free port): /metrics (Prometheus text), /debug/campaigns (JSON), /events (SSE)")
	fs.BoolVar(&t.Pprof, "pprof", false,
		"also mount net/http/pprof on the -telemetry-addr listener (off by default)")
}

// Enabled reports whether -telemetry-addr was set.
func (t *Telemetry) Enabled() bool { return t.Addr != "" }

// ensure lazily builds the registry, metrics and tracker once enabled.
func (t *Telemetry) ensure() {
	if !t.Enabled() || t.registry != nil {
		return
	}
	t.registry = telemetry.NewRegistry()
	t.metrics = telemetry.NewMetrics(t.registry)
	t.tracker = telemetry.NewTracker()
}

// Registry returns the live registry, or nil when telemetry is off.
func (t *Telemetry) Registry() *telemetry.Registry {
	t.ensure()
	return t.registry
}

// Metrics returns the instrument handles to thread into launcher and
// campaign options, or nil when telemetry is off.
func (t *Telemetry) Metrics() *telemetry.Metrics {
	t.ensure()
	return t.metrics
}

// Tracker returns the campaign progress tracker, or nil when telemetry
// is off.
func (t *Telemetry) Tracker() *telemetry.Tracker {
	t.ensure()
	return t.tracker
}

// Start brings the HTTP server up on -telemetry-addr and returns the
// bound address (useful with :0). When telemetry is off it returns ""
// and does nothing.
func (t *Telemetry) Start() (string, error) {
	if !t.Enabled() {
		return "", nil
	}
	t.ensure()
	t.server = telemetry.NewServer(telemetry.ServerOptions{
		Registry:    t.registry,
		Tracker:     t.tracker,
		EnablePprof: t.Pprof,
	})
	addr, err := t.server.Start(t.Addr)
	if err != nil {
		t.server = nil
		return "", err
	}
	return addr, nil
}

// Close stops the server (no-op when never started).
func (t *Telemetry) Close() error {
	if t.server == nil {
		return nil
	}
	err := t.server.Close()
	t.server = nil
	return err
}

// Chaos wires the fault-plan flags of `microtools chaos`: seed, per-point
// rates, burst and class.
type Chaos struct {
	// Seed drives the deterministic fault plan.
	Seed int64
	// Rate is the fault probability armed at every built-in point.
	Rate float64
	// Burst is how many consecutive checks of a transient faulty site
	// fail before it heals.
	Burst int
	// Permanent selects permanent (never-healing) faults.
	Permanent bool
}

// Register installs the chaos flags on fs.
func (c *Chaos) Register(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "fault-seed", 1, "seed of the deterministic fault plan (same seed ⇒ same injected-fault set)")
	fs.Float64Var(&c.Rate, "fault-rate", 0.2, "fault probability in [0,1] armed at every injection point")
	fs.IntVar(&c.Burst, "fault-burst", 1, "consecutive failures a transient faulty site injects before healing")
	fs.BoolVar(&c.Permanent, "fault-permanent", false, "inject permanent (never-healing) faults instead of transient ones")
}

// Injector builds the armed fault injector described by the flags.
func (c *Chaos) Injector() *faults.Injector {
	in := faults.New(c.Seed).SetRate("*", c.Rate).SetBurst(c.Burst)
	if c.Permanent {
		in.SetClass(faults.ClassPermanent)
	}
	return in
}
