package memsim

import "math/rand"

// cache is one set-associative cache instance with LRU replacement.
// Lines are identified by their line address (address with offset bits
// cleared); tag 0 marks an invalid way.
type cache struct {
	cfg      CacheConfig
	sets     int64
	lineMask uint64
	setMask  uint64 // used when sets is a power of two; otherwise modulo
	pow2Sets bool
	shift    uint

	// ways[set*assoc + way] holds the line address (0 = invalid).
	ways []uint64
	// stamp[set*assoc + way] is the LRU timestamp.
	stamp []int64
	dirty []bool
	tick  int64
}

func newCache(cfg CacheConfig) *cache {
	sets := cfg.Size / (cfg.LineSize * int64(cfg.Assoc))
	c := &cache{
		cfg:      cfg,
		sets:     sets,
		lineMask: ^uint64(cfg.LineSize - 1),
		setMask:  uint64(sets - 1),
		pow2Sets: sets&(sets-1) == 0,
		ways:     make([]uint64, sets*int64(cfg.Assoc)),
		stamp:    make([]int64, sets*int64(cfg.Assoc)),
		dirty:    make([]bool, sets*int64(cfg.Assoc)),
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	c.shift = shift
	return c
}

func (c *cache) lineOf(addr uint64) uint64 { return addr & c.lineMask }

func (c *cache) setOf(line uint64) int64 {
	if c.pow2Sets {
		return int64((line >> c.shift) & c.setMask)
	}
	// Non-power-of-two set counts (e.g. 12MB/16-way Nehalem L3) index by
	// modulo, standing in for the hash the real part uses.
	return int64((line >> c.shift) % uint64(c.sets))
}

// lookup probes for the line; on hit it refreshes LRU state (and optionally
// marks the line dirty) and returns true.
func (c *cache) lookup(line uint64, markDirty bool) bool {
	base := c.setOf(line) * int64(c.cfg.Assoc)
	for w := int64(0); w < int64(c.cfg.Assoc); w++ {
		if c.ways[base+w] == line {
			c.tick++
			c.stamp[base+w] = c.tick
			if markDirty {
				c.dirty[base+w] = true
			}
			return true
		}
	}
	return false
}

// contains probes without touching LRU state.
func (c *cache) contains(line uint64) bool {
	base := c.setOf(line) * int64(c.cfg.Assoc)
	for w := int64(0); w < int64(c.cfg.Assoc); w++ {
		if c.ways[base+w] == line {
			return true
		}
	}
	return false
}

// insert places a line, evicting the LRU way if needed. It returns the
// evicted line and whether it was dirty (victim == 0 means no eviction).
func (c *cache) insert(line uint64, dirty bool) (victim uint64, victimDirty bool) {
	base := c.setOf(line) * int64(c.cfg.Assoc)
	// Already present (e.g. racing prefetch): refresh.
	for w := int64(0); w < int64(c.cfg.Assoc); w++ {
		if c.ways[base+w] == line {
			c.tick++
			c.stamp[base+w] = c.tick
			if dirty {
				c.dirty[base+w] = true
			}
			return 0, false
		}
	}
	// Free way?
	for w := int64(0); w < int64(c.cfg.Assoc); w++ {
		if c.ways[base+w] == 0 {
			c.fill(base+w, line, dirty)
			return 0, false
		}
	}
	// Evict LRU.
	lru := base
	for w := base + 1; w < base+int64(c.cfg.Assoc); w++ {
		if c.stamp[w] < c.stamp[lru] {
			lru = w
		}
	}
	victim, victimDirty = c.ways[lru], c.dirty[lru]
	c.fill(lru, line, dirty)
	return victim, victimDirty
}

func (c *cache) fill(slot int64, line uint64, dirty bool) {
	c.tick++
	c.ways[slot] = line
	c.stamp[slot] = c.tick
	c.dirty[slot] = dirty
}

// invalidate drops the line if present, returning whether it was dirty.
func (c *cache) invalidate(line uint64) (present, wasDirty bool) {
	base := c.setOf(line) * int64(c.cfg.Assoc)
	for w := int64(0); w < int64(c.cfg.Assoc); w++ {
		if c.ways[base+w] == line {
			present, wasDirty = true, c.dirty[base+w]
			c.ways[base+w] = 0
			c.dirty[base+w] = false
			return
		}
	}
	return false, false
}

// flush invalidates everything (cold-cache noise, core migration).
func (c *cache) flush() {
	for i := range c.ways {
		c.ways[i] = 0
		c.dirty[i] = false
		c.stamp[i] = 0
	}
}

// invalidateFraction drops approximately frac of all lines, using the seeded
// rng (interrupt-noise model: an interrupt handler evicts part of the
// cache).
func (c *cache) invalidateFraction(rng *rand.Rand, frac float64) {
	for i := range c.ways {
		if c.ways[i] != 0 && rng.Float64() < frac {
			c.ways[i] = 0
			c.dirty[i] = false
		}
	}
}

// footprint counts valid lines (for tests).
func (c *cache) footprint() int {
	n := 0
	for _, w := range c.ways {
		if w != 0 {
			n++
		}
	}
	return n
}
