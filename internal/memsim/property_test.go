package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyAccessOrderingInvariants: for random access sequences, every
// access completes no earlier than issue plus the L1 hit latency, hit/miss
// counters are consistent, and the system stays deterministic.
func TestPropertyAccessOrderingInvariants(t *testing.T) {
	cfg := testConfig()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSystem(cfg, 2)
		if err != nil {
			return false
		}
		s2, err := NewSystem(cfg, 2)
		if err != nil {
			return false
		}
		issue := int64(1)
		for i := 0; i < int(n)+1; i++ {
			core := rng.Intn(2)
			addr := uint64(0x100000 + rng.Intn(1<<20))
			size := []int{4, 8, 16}[rng.Intn(3)]
			write := rng.Intn(3) == 0
			var r1, r2 int64
			if write {
				r1 = s.Store(core, addr, size, issue)
				r2 = s2.Store(core, addr, size, issue)
			} else {
				r1 = s.Load(core, addr, size, issue)
				r2 = s2.Load(core, addr, size, issue)
			}
			// Determinism across identical systems.
			if r1 != r2 {
				return false
			}
			// Completion never precedes issue + hit latency.
			if r1 < issue+int64(cfg.L1.Latency) {
				return false
			}
			issue += int64(rng.Intn(8))
		}
		st := s.Stats()
		if st.Loads+st.Stores != int64(n)+1 {
			return false
		}
		// Every L2 access comes from an L1 miss or a prefetch.
		if st.L2Hits+st.L2Misses < st.L1Misses-st.MSHRMerges {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCacheInclusionOfCounts: hits+misses at each level equals the
// demand presented to it for a linear sweep with prefetch off.
func TestPropertyCacheInclusionOfCounts(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = false
	s, err := NewSystem(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	issue := int64(1)
	const n = 4096
	for i := 0; i < n; i++ {
		issue = s.Load(0, uint64(0x200000+i*8), 8, issue)
	}
	st := s.Stats()
	if st.L1Hits+st.L1Misses != n {
		t.Errorf("L1 hits+misses = %d, want %d", st.L1Hits+st.L1Misses, n)
	}
	if st.L2Hits+st.L2Misses != st.L1Misses {
		t.Errorf("L2 demand %d != L1 misses %d", st.L2Hits+st.L2Misses, st.L1Misses)
	}
	if st.L3Hits+st.L3Misses != st.L2Misses {
		t.Errorf("L3 demand %d != L2 misses %d", st.L3Hits+st.L3Misses, st.L2Misses)
	}
	if st.MemAccesses != st.L3Misses {
		t.Errorf("memory accesses %d != L3 misses %d", st.MemAccesses, st.L3Misses)
	}
	// A linear 8-byte sweep touches one line per 8 accesses.
	if st.MemAccesses != n/8 {
		t.Errorf("memory lines %d, want %d", st.MemAccesses, n/8)
	}
}

// TestPropertyRowBufferStreamingVsStrided: a strided walk pays more row
// misses than a sequential one over the same number of lines.
func TestPropertyRowBufferStreamingVsStrided(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = false
	cfg.Mem.RowBytes = 16 << 10
	cfg.Mem.RowMissCycles = 22
	rowMisses := func(stride int64) int64 {
		s, err := NewSystem(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		issue := int64(1)
		for i := int64(0); i < 512; i++ {
			issue = s.Load(0, uint64(0x400000+i*stride), 8, issue)
		}
		return s.Stats().RowMisses
	}
	seq := rowMisses(64)
	strided := rowMisses(4096)
	if strided <= seq {
		t.Errorf("strided row misses (%d) not above sequential (%d)", strided, seq)
	}
}

// TestPropertyTimestampsMonotoneUnderLoad: channel queues only push
// completions forward, never backwards, for concurrent demand.
func TestPropertyTimestampsMonotoneUnderLoad(t *testing.T) {
	cfg := testConfig()
	s, err := NewSystem(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var last [4]int64
	for i := 0; i < 2000; i++ {
		core := i % 4
		addr := uint64(0x800000 + core*(1<<22) + (i/4)*64)
		r := s.Load(core, addr, 8, int64(i))
		if r < last[core] && false {
			// Different lines may complete out of order (channel
			// scheduling); per-line FIFO is not required. Document the
			// weaker invariant instead:
			t.Fatalf("impossible")
		}
		if r < int64(i) {
			t.Fatalf("completion %d before issue %d", r, i)
		}
		last[core] = r
	}
}
