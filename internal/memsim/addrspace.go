package memsim

import "fmt"

// PageSize is the simulated page size.
const PageSize = 4096

// AddressSpace is the simulated process address space from which
// MicroLauncher allocates kernel data arrays. It is a simple bump allocator
// with page-granular placement plus the per-array alignment offsets the
// launcher's alignment studies sweep (§4, §5.2.2).
type AddressSpace struct {
	next uint64
}

// NewAddressSpace starts the heap at a fixed, page-aligned base so runs are
// reproducible.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: 0x10000000}
}

// Alloc reserves size bytes. The returned base address is congruent to
// offset modulo align (align must be a power of two; offset < align).
// A fresh page gap separates allocations so arrays never share lines by
// accident — exactly what a real launcher's mmap-per-array placement gives.
func (a *AddressSpace) Alloc(size int64, align int64, offset int64) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memsim: allocation size must be positive, got %d", size)
	}
	if align <= 0 {
		align = PageSize
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("memsim: alignment %d not a power of two", align)
	}
	if offset < 0 || offset >= align {
		return 0, fmt.Errorf("memsim: offset %d outside [0,%d)", offset, align)
	}
	// Round up to the next page, then to alignment, then add the offset.
	base := (a.next + PageSize - 1) &^ uint64(PageSize-1)
	if r := base % uint64(align); r != 0 {
		base += uint64(align) - r
	}
	base += uint64(offset)
	a.next = base + uint64(size) + PageSize // guard page
	return base, nil
}
