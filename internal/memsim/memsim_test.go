package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testConfig is a small, fast hierarchy: 4KB L1, 32KB L2, 256KB L3.
func testConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: CacheConfig{Name: "L1", Size: 4 << 10, LineSize: 64, Assoc: 8,
			Latency: 4, ThroughputCycles: 1, MSHRs: 10, Banks: 8},
		L2: CacheConfig{Name: "L2", Size: 32 << 10, LineSize: 64, Assoc: 8,
			Latency: 10, ThroughputCycles: 2},
		L3: CacheConfig{Name: "L3", Size: 256 << 10, LineSize: 64, Assoc: 16,
			Latency: 30, ThroughputCycles: 2},
		Mem:              MemConfig{Latency: 150, Channels: 3, ChannelBytesPerCycle: 4},
		CoresPerSocket:   4,
		CoreClockRatio:   1.0,
		NextLinePrefetch: false,
		AliasPenalty:     5,
		AliasWindow:      30,
		SplitPenalty:     3,
	}
}

func newTestSystem(t *testing.T, cores int) *System {
	t.Helper()
	s, err := NewSystem(testConfig(), cores)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.L1.Size = 3000 // not a power-of-two set count
	if _, err := NewSystem(bad, 1); err == nil {
		t.Error("invalid L1 geometry accepted")
	}
	bad2 := testConfig()
	bad2.CoresPerSocket = 0
	if _, err := NewSystem(bad2, 1); err == nil {
		t.Error("CoresPerSocket=0 accepted")
	}
	bad3 := testConfig()
	bad3.Mem.Channels = 0
	if _, err := NewSystem(bad3, 1); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := NewSystem(testConfig(), 0); err == nil {
		t.Error("0 cores accepted")
	}
}

// TestHierarchyLatencyOrdering checks the fundamental property behind
// Figs. 3, 11 and 12: first touch costs RAM, second touch costs L1, and a
// footprint exceeding a level falls to the next one.
func TestHierarchyLatencyOrdering(t *testing.T) {
	s := newTestSystem(t, 1)
	cold := s.Load(0, 0x10000, 8, 1000) - 1000
	warm := s.Load(0, 0x10000, 8, 2000) - 2000
	if warm != int64(s.cfg.L1.Latency) {
		t.Errorf("warm L1 load latency = %d, want %d", warm, s.cfg.L1.Latency)
	}
	if cold <= int64(s.cfg.L2.Latency)+int64(s.cfg.L3.Latency) {
		t.Errorf("cold load latency %d suspiciously low", cold)
	}
	st := s.Stats()
	if st.L1Hits != 1 || st.L1Misses != 1 || st.MemAccesses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// streamOnce walks an array once with 8-byte loads and returns average
// cycles per load (steady-state, second pass).
func streamOnce(s *System, core int, base uint64, size int64) float64 {
	cycle := int64(1)
	// pass 1: warm
	for off := int64(0); off < size; off += 8 {
		r := s.Load(core, base+uint64(off), 8, cycle)
		cycle = r
	}
	// pass 2: measure
	start := cycle
	n := 0
	for off := int64(0); off < size; off += 8 {
		r := s.Load(core, base+uint64(off), 8, cycle)
		cycle = r
		n++
	}
	return float64(cycle-start) / float64(n)
}

// TestWorkingSetPlateaus reproduces the §5.1 protocol: an array half the L1
// size re-streams faster than one twice the L1 size, which in turn beats
// one twice the L2 size, which beats twice the L3 size.
func TestWorkingSetPlateaus(t *testing.T) {
	cfg := testConfig()
	var lat [4]float64
	sizes := []int64{cfg.L1.Size / 2, cfg.L1.Size * 2, cfg.L2.Size * 2, cfg.L3.Size * 2}
	for i, size := range sizes {
		s := newTestSystem(t, 1)
		lat[i] = streamOnce(s, 0, 0x1000000, size)
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Errorf("level %d latency %.2f not greater than level %d latency %.2f",
				i, lat[i], i-1, lat[i-1])
		}
	}
}

// TestMSHRMergeSameLine: consecutive accesses to one line in flight merge
// rather than issuing new fills.
func TestMSHRMergeSameLine(t *testing.T) {
	s := newTestSystem(t, 1)
	r1 := s.Load(0, 0x40000, 4, 100)
	r2 := s.Load(0, 0x40004, 4, 101) // same line, still in flight
	if r2 > r1 {
		t.Errorf("merged access ready %d after fill %d", r2, r1)
	}
	if got := s.Stats().MemAccesses; got != 1 {
		t.Errorf("mem accesses = %d, want 1 (merge)", got)
	}
}

// TestPrefetcherImprovesStreaming: with next-line prefetch, a long
// sequential stream has lower cycles per load.
func TestPrefetcherImprovesStreaming(t *testing.T) {
	cfg := testConfig()
	size := cfg.L3.Size * 4 // RAM-resident
	s1, _ := NewSystem(cfg, 1)
	base := uint64(0x2000000)
	noPf := streamOnce(s1, 0, base, size)
	cfg.NextLinePrefetch = true
	s2, _ := NewSystem(cfg, 1)
	pf := streamOnce(s2, 0, base, size)
	if pf >= noPf {
		t.Errorf("prefetch did not help: %.2f (pf) vs %.2f (no pf)", pf, noPf)
	}
	if s2.Stats().Prefetches == 0 {
		t.Error("no prefetches issued")
	}
}

// TestBandwidthSaturation reproduces the Fig. 14 mechanism: per-core
// streaming latency from RAM grows once aggregate demand exceeds the
// socket's channels.
func TestBandwidthSaturation(t *testing.T) {
	cfg := testConfig()
	cfg.CoresPerSocket = 8
	perCore := func(n int) float64 {
		s, err := NewSystem(cfg, 8)
		if err != nil {
			t.Fatal(err)
		}
		size := cfg.L3.Size * 2
		// n forked processes stream independent arrays, each keeping
		// several misses in flight (the unrolled 8-load kernels of §5.2):
		// issue one line every 8 cycles per core and accumulate observed
		// latency.
		bases := make([]uint64, n)
		for c := 0; c < n; c++ {
			bases[c] = uint64(0x4000000 + int64(c)*size*2)
		}
		var total int64
		var count int64
		issue := int64(1)
		for off := int64(0); off < size; off += 64 {
			for c := 0; c < n; c++ {
				r := s.Load(c, bases[c]+uint64(off), 8, issue)
				total += r - issue
				count++
			}
			issue += 8
		}
		return float64(total) / float64(count)
	}
	one := perCore(1)
	eight := perCore(8)
	if eight < one*1.5 {
		t.Errorf("8-core streaming latency %.1f not visibly above 1-core %.1f", eight, one)
	}
}

// TestBankConflictsDependOnAlignment: two interleaved streams whose bases
// collide in the same bank conflict more than offset streams.
func TestBankConflictsDependOnAlignment(t *testing.T) {
	run := func(offB uint64) int64 {
		s := newTestSystem(t, 1)
		baseA := uint64(0x100000)
		baseB := uint64(0x200000) + offB
		cycle := int64(1)
		// Warm both arrays.
		for off := uint64(0); off < 2048; off += 4 {
			cycle = s.Load(0, baseA+off, 4, cycle)
			cycle = s.Load(0, baseB+off, 4, cycle)
		}
		s.ResetStats()
		// Issue pairs at the same cycle (what a dual-issue core does).
		for off := uint64(0); off < 2048; off += 4 {
			t0 := cycle
			s.Load(0, baseA+off, 4, t0)
			r2 := s.Load(0, baseB+off, 4, t0)
			cycle = r2
		}
		return s.Stats().BankConflicts
	}
	same := run(0)  // same bank alignment
	diff := run(32) // different bank
	if same <= diff {
		t.Errorf("bank conflicts: same-bank %d <= offset %d", same, diff)
	}
}

// Test4KAliasing: a load 4096 bytes from a recent store pays a penalty.
func Test4KAliasing(t *testing.T) {
	s := newTestSystem(t, 1)
	// Warm both lines.
	s.Load(0, 0x10000, 4, 1)
	s.Load(0, 0x11000, 4, 1000)
	s.Store(0, 0x10000, 4, 2000)
	r := s.Load(0, 0x11000, 4, 2004) // same page offset, different line
	base := int64(2004 + s.cfg.L1.Latency)
	if r < base+int64(s.cfg.AliasPenalty) {
		t.Errorf("aliasing load ready at %d, want >= %d", r, base+int64(s.cfg.AliasPenalty))
	}
	if s.Stats().AliasStalls == 0 {
		t.Error("no alias stall recorded")
	}
}

// TestLineSplitPenalty: an access crossing a line boundary costs more.
func TestLineSplitPenalty(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Load(0, 0x10000, 16, 1)
	s.Load(0, 0x10040, 16, 1) // warm both lines
	aligned := s.Load(0, 0x10000, 16, 1000) - 1000
	split := s.Load(0, 0x10038, 16, 2000) - 2000
	if split <= aligned {
		t.Errorf("split access %d not slower than aligned %d", split, aligned)
	}
	if s.Stats().LineSplits != 1 {
		t.Errorf("line splits = %d, want 1", s.Stats().LineSplits)
	}
}

// TestClockRatioAffectsUncoreOnly: raising the core/uncore ratio (higher
// core frequency) increases RAM latency in core cycles but leaves L1 hits
// unchanged — the Fig. 13 mechanism.
func TestClockRatioAffectsUncoreOnly(t *testing.T) {
	cfg := testConfig()
	cfg.CoreClockRatio = 1.0
	s1, _ := NewSystem(cfg, 1)
	cfg.CoreClockRatio = 2.0
	s2, _ := NewSystem(cfg, 1)

	cold1 := s1.Load(0, 0x50000, 8, 100) - 100
	cold2 := s2.Load(0, 0x50000, 8, 100) - 100
	if cold2 <= cold1 {
		t.Errorf("RAM latency at 2x core clock (%d) not above 1x (%d)", cold2, cold1)
	}
	warm1 := s1.Load(0, 0x50000, 8, 10000) - 10000
	warm2 := s2.Load(0, 0x50000, 8, 10000) - 10000
	if warm1 != warm2 {
		t.Errorf("L1 hit latency changed with clock ratio: %d vs %d", warm1, warm2)
	}
}

func TestFlushAndDisturb(t *testing.T) {
	s := newTestSystem(t, 1)
	for off := uint64(0); off < 2048; off += 64 {
		s.Load(0, 0x60000+off, 8, 1)
	}
	if s.L1Footprint(0) == 0 {
		t.Fatal("no lines cached")
	}
	before := s.L1Footprint(0)
	s.DisturbCore(0, rand.New(rand.NewSource(1)), 0.5)
	if s.L1Footprint(0) >= before {
		t.Error("disturb did not evict anything")
	}
	s.FlushCore(0)
	if s.L1Footprint(0) != 0 {
		t.Error("flush left lines behind")
	}
}

func TestSocketSeparation(t *testing.T) {
	cfg := testConfig()
	cfg.CoresPerSocket = 2
	s, err := NewSystem(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 warms a line into socket 0's L3.
	s.Load(0, 0x70000, 8, 1)
	// Core 1 (same socket) gets an L3 hit; core 2 (other socket) misses
	// to memory.
	s.ResetStats()
	s.Load(1, 0x70000, 8, 100000)
	sameSock := s.Stats().L3Hits
	s.Load(2, 0x70000, 8, 100000)
	if sameSock != 1 {
		t.Errorf("same-socket L3 hits = %d, want 1", sameSock)
	}
	if s.Stats().MemAccesses != 1 {
		t.Errorf("cross-socket access should go to memory: %+v", s.Stats())
	}
}

func TestAddressSpaceAlignment(t *testing.T) {
	a := NewAddressSpace()
	for _, c := range []struct{ align, off int64 }{
		{4096, 0}, {4096, 16}, {4096, 61}, {64, 32}, {1 << 20, 12345},
	} {
		base, err := a.Alloc(10000, c.align, c.off)
		if err != nil {
			t.Fatalf("Alloc(%d,%d): %v", c.align, c.off, err)
		}
		if int64(base%uint64(c.align)) != c.off {
			t.Errorf("base %#x mod %d = %d, want %d", base, c.align, base%uint64(c.align), c.off)
		}
	}
	if _, err := a.Alloc(0, 64, 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := a.Alloc(8, 63, 0); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := a.Alloc(8, 64, 64); err == nil {
		t.Error("offset >= align accepted")
	}
}

// Property: allocations never overlap.
func TestPropertyAllocationsDisjoint(t *testing.T) {
	type alloc struct{ base, end uint64 }
	f := func(sizes []uint16, offsets []uint8) bool {
		a := NewAddressSpace()
		var got []alloc
		for i, sz := range sizes {
			size := int64(sz) + 1
			off := int64(0)
			if i < len(offsets) {
				off = int64(offsets[i]) % 64
			}
			base, err := a.Alloc(size, 64, off)
			if err != nil {
				return false
			}
			for _, g := range got {
				if base < g.end && g.base < base+uint64(size) {
					return false
				}
			}
			got = append(got, alloc{base, base + uint64(size)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cache lookup after insert always hits until evicted; inserting
// N distinct lines into one set beyond associativity evicts the LRU.
func TestCacheLRUEviction(t *testing.T) {
	cfg := CacheConfig{Name: "t", Size: 8 * 64, LineSize: 64, Assoc: 8, Latency: 1}
	c := newCache(cfg) // 1 set, 8 ways
	for i := uint64(0); i < 8; i++ {
		c.insert(0x1000+(i<<6), false)
	}
	if !c.lookup(0x1000, false) {
		t.Fatal("first line evicted too early")
	}
	// lookup refreshed 0x1000; inserting a 9th line must evict the LRU,
	// which is now 0x1040.
	victim, _ := c.insert(0x1000+(8<<6), false)
	if victim != 0x1040 {
		t.Errorf("victim = %#x, want 0x1040", victim)
	}
	if c.lookup(0x1040, false) {
		t.Error("evicted line still present")
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Load(0, 0x90000, 8, 1)
	s.Store(0, 0x90100, 8, 50)
	st := s.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

// TestStoreWriteAllocate: a store miss brings the line in (write-allocate),
// and the dirty line is written back on eviction.
func TestStoreWriteAllocate(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Store(0, 0xA0000, 8, 1)
	if s.Stats().MemAccesses != 1 {
		t.Errorf("store miss did not fetch line: %+v", s.Stats())
	}
	// Evict it by filling the set: addresses with identical set index.
	setStride := uint64(s.cfg.L1.Size) / uint64(s.cfg.L1.Assoc)
	for i := uint64(1); i <= uint64(s.cfg.L1.Assoc); i++ {
		s.Load(0, 0xA0000+i*setStride, 8, int64(1000*i))
	}
	if s.Stats().Writebacks == 0 {
		t.Error("dirty eviction produced no writeback")
	}
}
