// Package memsim is the memory-system substrate of the MicroTools
// reproduction: a deterministic timing model of the cache hierarchy and
// memory controllers of the paper's Table 1 machines.
//
// It models, structurally rather than statistically:
//
//   - private set-associative L1/L2 per core and a shared L3 per socket,
//     LRU replacement, write-allocate/write-back;
//   - limited miss parallelism (line-fill buffers / MSHRs) with same-line
//     merge, which makes streaming bandwidth-bound rather than
//     latency-bound;
//   - L1 bank conflicts and 4K store-load aliasing, the mechanisms behind
//     the alignment sensitivity of Figs. 4, 15 and 16;
//   - a next-line prefetcher;
//   - per-socket memory controllers with a finite number of channels and
//     finite per-channel bandwidth — queueing there produces the multi-core
//     saturation knee of Fig. 14;
//   - split core/uncore clock domains (L1/L2 in core cycles, L3/memory in
//     uncore cycles), which produce Fig. 13's frequency behaviour.
//
// All timing flows in *core* clock cycles; uncore latencies are converted
// through the configured clock ratio. The model is single-goroutine
// deterministic: the machine simulator steps cores in bounded quanta and
// feeds accesses in approximately global time order.
package memsim

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	Size     int64 // capacity in bytes
	LineSize int64 // bytes per line
	Assoc    int   // ways per set
	// Latency is the hit latency, in this level's clock domain cycles
	// (core cycles for L1/L2, uncore cycles for L3).
	Latency int
	// ThroughputCycles is the port occupancy per access (1 = one access
	// per cycle).
	ThroughputCycles int
	// MSHRs bounds outstanding misses (L1 only; 0 disables the limit).
	MSHRs int
	// Banks is the number of L1 data banks (0 disables bank modelling).
	Banks int
}

// Validate checks the geometry.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("memsim: %s: invalid geometry (size=%d line=%d assoc=%d)", c.Name, c.Size, c.LineSize, c.Assoc)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("memsim: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	sets := c.Size / (c.LineSize * int64(c.Assoc))
	if sets <= 0 {
		return fmt.Errorf("memsim: %s: set count %d not positive", c.Name, sets)
	}
	if c.Size%(c.LineSize*int64(c.Assoc)) != 0 {
		return fmt.Errorf("memsim: %s: size %d not a whole number of sets", c.Name, c.Size)
	}
	if c.Latency <= 0 {
		return fmt.Errorf("memsim: %s: latency must be positive", c.Name)
	}
	return nil
}

// MemConfig describes one socket's memory controller.
type MemConfig struct {
	// Latency is the idle (unloaded) access latency in uncore cycles,
	// controller arrival to first data.
	Latency int
	// Channels is the number of independent memory channels.
	Channels int
	// ChannelBytesPerCycle is per-channel transfer bandwidth in bytes per
	// uncore cycle.
	ChannelBytesPerCycle float64
	// RowBytes is the DRAM row-buffer reach per bank; accesses within
	// the open row are fast, a row change pays RowMissCycles (uncore).
	// 0 disables row modelling. Streaming kernels hit the open row;
	// large-stride walks (the §2 matmul column) miss on every line —
	// the mechanism behind the Fig. 3 cutting point's depth.
	RowBytes      int64
	RowMissCycles int
	// BanksPerChannel is the number of DRAM banks (row buffers) per
	// channel (default 1). Concurrent streams whose rows land in the
	// same bank thrash each other's open row; relative array alignments
	// shift when streams overlap in a bank — one of the §5.2.2
	// alignment mechanisms.
	BanksPerChannel int
}

// Validate checks the controller parameters.
func (m MemConfig) Validate() error {
	if m.Latency <= 0 || m.Channels <= 0 || m.ChannelBytesPerCycle <= 0 {
		return fmt.Errorf("memsim: invalid memory config %+v", m)
	}
	return nil
}

// HierarchyConfig assembles a machine's memory system.
type HierarchyConfig struct {
	L1, L2 CacheConfig // private, per core
	L3     CacheConfig // shared, per socket
	Mem    MemConfig   // per socket

	// CoresPerSocket maps cores to sockets (core / CoresPerSocket).
	CoresPerSocket int

	// CoreClockRatio is core cycles per uncore cycle (fCore / fUncore).
	// 1.0 means a unified clock.
	CoreClockRatio float64

	// NextLinePrefetch enables the streaming prefetcher.
	NextLinePrefetch bool
	// PrefetchOutstanding bounds the streamer's in-flight line fills per
	// core. Streaming bandwidth is then outstanding/round-trip — fast
	// from the L3, slower from memory — and, because the round trip is
	// uncore-latency bound, single-core memory bandwidth does not scale
	// with the core clock (cf. Fig. 13). The bound is also what keeps one
	// core from saturating every memory channel by itself (Fig. 14's
	// knee). 0 = unbounded.
	PrefetchOutstanding int

	// AliasPenalty is the extra core-cycle cost of a load that 4K-aliases
	// a recent store (0 disables the check).
	AliasPenalty int
	// AliasWindow is how many core cycles back a store can alias.
	AliasWindow int64

	// SplitPenalty is the extra cost of an access crossing a cache line.
	SplitPenalty int
}

// Validate checks the configuration.
func (h HierarchyConfig) Validate() error {
	for _, c := range []CacheConfig{h.L1, h.L2, h.L3} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if err := h.Mem.Validate(); err != nil {
		return err
	}
	if h.CoresPerSocket <= 0 {
		return fmt.Errorf("memsim: CoresPerSocket must be positive")
	}
	if h.CoreClockRatio <= 0 {
		return fmt.Errorf("memsim: CoreClockRatio must be positive")
	}
	return nil
}

// Stats aggregates event counts across the system's lifetime.
type Stats struct {
	Loads           int64 `json:"loads"`
	Stores          int64 `json:"stores"`
	L1Hits          int64 `json:"l1_hits"`
	L1Misses        int64 `json:"l1_misses"`
	L2Hits          int64 `json:"l2_hits"`
	L2Misses        int64 `json:"l2_misses"`
	L3Hits          int64 `json:"l3_hits"`
	L3Misses        int64 `json:"l3_misses"`
	MemAccesses     int64 `json:"mem_accesses"`
	Writebacks      int64 `json:"writebacks"`
	BankConflicts   int64 `json:"bank_conflicts"`
	AliasStalls     int64 `json:"alias_stalls"`
	LineSplits      int64 `json:"line_splits"`
	Prefetches      int64 `json:"prefetches"`
	PrefetchHits    int64 `json:"prefetch_hits"`
	MSHRMerges      int64 `json:"mshr_merges"`
	MSHRFullWaits   int64 `json:"mshr_full_waits"`
	RowMisses       int64 `json:"row_misses"`
	BytesFromMemory int64 `json:"bytes_from_memory"`
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Loads:           s.Loads + o.Loads,
		Stores:          s.Stores + o.Stores,
		L1Hits:          s.L1Hits + o.L1Hits,
		L1Misses:        s.L1Misses + o.L1Misses,
		L2Hits:          s.L2Hits + o.L2Hits,
		L2Misses:        s.L2Misses + o.L2Misses,
		L3Hits:          s.L3Hits + o.L3Hits,
		L3Misses:        s.L3Misses + o.L3Misses,
		MemAccesses:     s.MemAccesses + o.MemAccesses,
		Writebacks:      s.Writebacks + o.Writebacks,
		BankConflicts:   s.BankConflicts + o.BankConflicts,
		AliasStalls:     s.AliasStalls + o.AliasStalls,
		LineSplits:      s.LineSplits + o.LineSplits,
		Prefetches:      s.Prefetches + o.Prefetches,
		PrefetchHits:    s.PrefetchHits + o.PrefetchHits,
		MSHRMerges:      s.MSHRMerges + o.MSHRMerges,
		MSHRFullWaits:   s.MSHRFullWaits + o.MSHRFullWaits,
		RowMisses:       s.RowMisses + o.RowMisses,
		BytesFromMemory: s.BytesFromMemory + o.BytesFromMemory,
	}
}

// Sub returns the field-wise delta s − o: the event counts accumulated
// between two snapshots. Capturing Stats() before and after a measured
// region and subtracting yields counters unpolluted by warm-up or
// calibration traffic, without clobbering the system's cumulative totals
// the way ResetStats does.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Loads:           s.Loads - o.Loads,
		Stores:          s.Stores - o.Stores,
		L1Hits:          s.L1Hits - o.L1Hits,
		L1Misses:        s.L1Misses - o.L1Misses,
		L2Hits:          s.L2Hits - o.L2Hits,
		L2Misses:        s.L2Misses - o.L2Misses,
		L3Hits:          s.L3Hits - o.L3Hits,
		L3Misses:        s.L3Misses - o.L3Misses,
		MemAccesses:     s.MemAccesses - o.MemAccesses,
		Writebacks:      s.Writebacks - o.Writebacks,
		BankConflicts:   s.BankConflicts - o.BankConflicts,
		AliasStalls:     s.AliasStalls - o.AliasStalls,
		LineSplits:      s.LineSplits - o.LineSplits,
		Prefetches:      s.Prefetches - o.Prefetches,
		PrefetchHits:    s.PrefetchHits - o.PrefetchHits,
		MSHRMerges:      s.MSHRMerges - o.MSHRMerges,
		MSHRFullWaits:   s.MSHRFullWaits - o.MSHRFullWaits,
		RowMisses:       s.RowMisses - o.RowMisses,
		BytesFromMemory: s.BytesFromMemory - o.BytesFromMemory,
	}
}
