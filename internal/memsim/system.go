package memsim

import (
	"fmt"
	"math"
	"math/rand"
)

// inflight tracks one outstanding L1 miss (an allocated line-fill buffer).
type inflight struct {
	line  uint64
	ready int64 // core cycle at which the fill completes
}

// storeRec remembers a recent store for 4K-aliasing detection.
type storeRec struct {
	addr  uint64
	cycle int64
}

const storeWindowSize = 16

// coreState is the per-core private memory machinery.
type coreState struct {
	l1 *cache
	l2 *cache

	mshr []inflight

	// bankFree[b] is the next core cycle L1 bank b is free.
	bankFree []int64
	// l2Free is the L2 port next-free cycle. (L1 issue bandwidth is
	// governed by the CPU model's load/store ports, not here.)
	l2Free int64

	stores [storeWindowSize]storeRec
	storeI int

	// streams is the prefetch trainer: an 8-entry table of ascending
	// stream trackers (real Nehalem-class prefetchers follow many
	// concurrent streams; a single-stream trainer cannot drive kernels
	// that interleave several arrays, like the §5.2.2 traversals).
	// last is the most recent line of the stream, head the prefetch
	// frontier already requested.
	streams [8]stream
	streamI int

	// l2fill tracks lines the streamer is pulling into L2, so demand
	// accesses arriving before the fill completes wait for it.
	l2fill [16]inflight
	l2i    int

	// pfInflight is a ring of the streamer's in-flight fill completion
	// times, bounding outstanding requests.
	pfInflight []int64
	pfIdx      int
	// replayFree serializes 4K-alias replays: an aliased load re-runs
	// through the load pipeline, consuming issue bandwidth.
	replayFree int64
}

// stream is one tracked ascending access stream.
type stream struct {
	last uint64
	head uint64
}

// socketState is the shared per-socket machinery.
type socketState struct {
	l3 *cache
	// l3Free is the shared L3 port next-free core cycle.
	l3Free int64
	// chanFree[c] is channel c's next-free core cycle.
	chanFree []int64
	// openRow[c*banks+b] is the DRAM row currently open in bank b of
	// channel c.
	openRow []uint64
	banks   int
}

// System is one machine's memory system.
type System struct {
	cfg    HierarchyConfig
	nCores int
	cores  []coreState
	socks  []socketState

	// Derived core-cycle latencies.
	l3Lat      int64
	memLat     int64
	lineMemSvc int64 // channel occupancy per line, core cycles
	lineL3Svc  int64 // L3 port occupancy per line fill
	rowMiss    int64 // row-buffer miss penalty, core cycles

	stats Stats
}

// NewSystem builds the memory system for nCores cores.
func NewSystem(cfg HierarchyConfig, nCores int) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nCores <= 0 {
		return nil, fmt.Errorf("memsim: need at least one core")
	}
	nSocks := (nCores + cfg.CoresPerSocket - 1) / cfg.CoresPerSocket
	s := &System{cfg: cfg, nCores: nCores}
	s.cores = make([]coreState, nCores)
	for i := range s.cores {
		c := &s.cores[i]
		c.l1 = newCache(cfg.L1)
		c.l2 = newCache(cfg.L2)
		mshrs := cfg.L1.MSHRs
		if mshrs <= 0 {
			mshrs = 10
		}
		c.mshr = make([]inflight, mshrs)
		if cfg.PrefetchOutstanding > 0 {
			c.pfInflight = make([]int64, cfg.PrefetchOutstanding)
		}
		banks := cfg.L1.Banks
		if banks <= 0 {
			banks = 1
		}
		c.bankFree = make([]int64, banks)
	}
	s.socks = make([]socketState, nSocks)
	for i := range s.socks {
		s.socks[i].l3 = newCache(cfg.L3)
		s.socks[i].chanFree = make([]int64, cfg.Mem.Channels)
		banks := cfg.Mem.BanksPerChannel
		if banks < 1 {
			banks = 1
		}
		s.socks[i].banks = banks
		s.socks[i].openRow = make([]uint64, cfg.Mem.Channels*banks)
		for c := range s.socks[i].openRow {
			s.socks[i].openRow[c] = ^uint64(0)
		}
	}
	s.recomputeClocks()
	return s, nil
}

// recomputeClocks derives core-cycle latencies from the uncore-domain
// parameters and the configured clock ratio.
func (s *System) recomputeClocks() {
	r := s.cfg.CoreClockRatio
	s.l3Lat = int64(math.Ceil(float64(s.cfg.L3.Latency) * r))
	s.memLat = int64(math.Ceil(float64(s.cfg.Mem.Latency) * r))
	svcUncore := float64(s.cfg.L1.LineSize) / s.cfg.Mem.ChannelBytesPerCycle
	s.lineMemSvc = int64(math.Ceil(svcUncore * r))
	if s.lineMemSvc < 1 {
		s.lineMemSvc = 1
	}
	tp := s.cfg.L3.ThroughputCycles
	if tp <= 0 {
		tp = 1
	}
	s.lineL3Svc = int64(math.Ceil(float64(tp) * r))
	s.rowMiss = int64(math.Ceil(float64(s.cfg.Mem.RowMissCycles) * r))
}

// SetCoreClockRatio re-derives the uncore latencies for a new core/uncore
// frequency ratio (the Fig. 13 frequency sweep).
func (s *System) SetCoreClockRatio(ratio float64) error {
	if ratio <= 0 {
		return fmt.Errorf("memsim: clock ratio must be positive")
	}
	s.cfg.CoreClockRatio = ratio
	s.recomputeClocks()
	return nil
}

// Config returns the active configuration.
func (s *System) Config() HierarchyConfig { return s.cfg }

// Stats returns a snapshot of accumulated event counts.
func (s *System) Stats() Stats { return s.stats }

// ResetStats clears the counters (typically between warm-up and
// measurement).
func (s *System) ResetStats() { s.stats = Stats{} }

// NumCores returns the number of cores the system was built for.
func (s *System) NumCores() int { return s.nCores }

func (s *System) socketOf(core int) *socketState {
	return &s.socks[core/s.cfg.CoresPerSocket]
}

// Load performs a read of size bytes at addr by core, issued at the given
// core cycle, and returns the cycle at which the data is available.
func (s *System) Load(core int, addr uint64, size int, issue int64) int64 {
	s.stats.Loads++
	return s.access(core, addr, size, false, issue)
}

// Store performs a write and returns the cycle at which the store has
// committed to the L1 (store-buffer drain point).
func (s *System) Store(core int, addr uint64, size int, issue int64) int64 {
	s.stats.Stores++
	c := &s.cores[core]
	done := s.access(core, addr, size, true, issue)
	rec := &c.stores[c.storeI]
	rec.addr = addr
	rec.cycle = issue
	c.storeI = (c.storeI + 1) % storeWindowSize
	return done
}

// access is the common load/store path.
func (s *System) access(core int, addr uint64, size int, isWrite bool, issue int64) int64 {
	c := &s.cores[core]
	line := c.l1.lineOf(addr)
	lastLine := c.l1.lineOf(addr + uint64(size) - 1)

	// Bank conflicts: the access occupies its bank for one cycle; a
	// same-cycle access to a busy bank slips.
	if nb := len(c.bankFree); nb > 1 {
		bank := int(addr>>3) % nb
		if c.bankFree[bank] > issue {
			s.stats.BankConflicts++
			issue = c.bankFree[bank]
		}
		c.bankFree[bank] = issue + 1
	}

	// 4K aliasing: a load whose page offset falls within a line of a
	// recent store's page offset looks like a dependence to the
	// disambiguation hardware (it compares only the low address bits) and
	// pays a reissue penalty — the classic "(dst-src) mod 4096 < 64"
	// hazard between streams.
	if !isWrite && s.cfg.AliasPenalty > 0 {
		for i := range c.stores {
			st := &c.stores[i]
			if st.cycle == 0 && st.addr == 0 {
				continue
			}
			if issue-st.cycle > s.cfg.AliasWindow {
				continue
			}
			d := (addr - st.addr) & 4095
			if d < uint64(s.cfg.L1.LineSize) && c.l1.lineOf(st.addr) != line {
				s.stats.AliasStalls++
				// The replay re-runs the load through the pipeline: it
				// both delays this load and serializes against other
				// replays, consuming issue bandwidth.
				if issue < c.replayFree {
					issue = c.replayFree
				}
				issue += int64(s.cfg.AliasPenalty)
				c.replayFree = issue
				break
			}
		}
	}

	if s.cfg.NextLinePrefetch {
		s.train(core, line, issue)
	}
	ready := s.accessLine(core, line, isWrite, issue)
	if lastLine != line {
		// Line-split access (unaligned movups crossing a boundary).
		s.stats.LineSplits++
		r2 := s.accessLine(core, lastLine, isWrite, issue+1)
		r2 += int64(s.cfg.SplitPenalty)
		if r2 > ready {
			ready = r2
		}
	}
	return ready
}

// accessLine resolves a single-line access against the hierarchy.
func (s *System) accessLine(core int, line uint64, isWrite bool, issue int64) int64 {
	c := &s.cores[core]
	l1Lat := int64(s.cfg.L1.Latency)
	if c.l1.lookup(line, isWrite) {
		s.stats.L1Hits++
		ready := issue + l1Lat
		// The line may still be in flight (filled speculatively at miss
		// initiation): serve no earlier than the fill completes.
		for i := range c.mshr {
			if c.mshr[i].line == line && c.mshr[i].ready > ready {
				ready = c.mshr[i].ready
			}
		}
		return ready
	}
	s.stats.L1Misses++

	// Merge with an outstanding fill of the same line.
	for i := range c.mshr {
		m := &c.mshr[i]
		if m.line == line && m.ready > issue {
			s.stats.MSHRMerges++
			return m.ready
		}
	}

	// Allocate an MSHR: wait for the earliest-free one if all are busy.
	slot := 0
	for i := range c.mshr {
		if c.mshr[i].ready <= issue {
			slot = i
			goto allocated
		}
		if c.mshr[i].ready < c.mshr[slot].ready {
			slot = i
		}
	}
	s.stats.MSHRFullWaits++
	issue = c.mshr[slot].ready
allocated:

	fill := s.fetchFromL2(core, line, issue)
	c.mshr[slot] = inflight{line: line, ready: fill}
	s.insertL1(core, line, isWrite)

	return fill
}

// prefetchDistance is how many lines ahead of the demand stream the
// streamer keeps the L2 (Nehalem-class streamers run up to ~20 lines
// ahead; scaled to the simulator's shorter latencies).
const prefetchDistance = 8

// train advances the stream prefetcher on a demand access: a line that
// continues a tracked ascending stream extends the L2 prefetch frontier up
// to prefetchDistance lines ahead (whether the access itself hits or
// misses — prefetched lines must keep the stream alive); a line matching
// no tracker claims a slot.
func (s *System) train(core int, line uint64, issue int64) {
	c := &s.cores[core]
	ls := uint64(s.cfg.L1.LineSize)
	for i := range c.streams {
		st := &c.streams[i]
		if line == st.last {
			return // still on the tracked line
		}
		if line == st.last+ls {
			st.last = line
			target := line + prefetchDistance*ls
			cand := st.head + ls
			if cand <= line {
				cand = line + ls
			}
			for ; cand <= target; cand += ls {
				s.prefetchToL2(core, cand, issue)
			}
			st.head = target
			return
		}
	}
	c.streams[c.streamI] = stream{last: line, head: line}
	c.streamI = (c.streamI + 1) % len(c.streams)
}

// prefetchToL2 pulls a line into the L2 through the streamer's own path
// (no L1 fill buffer involved), charging the shared L3/memory bandwidth.
func (s *System) prefetchToL2(core int, line uint64, issue int64) {
	c := &s.cores[core]
	if c.l1.contains(line) || c.l2.contains(line) {
		return
	}
	s.stats.Prefetches++
	// Bounded outstanding requests: the next request waits for the
	// oldest in-flight fill in the window to complete.
	start := issue
	if len(c.pfInflight) > 0 {
		if oldest := c.pfInflight[c.pfIdx]; oldest > start {
			start = oldest
		}
	}
	fill := s.fetchFromL3(core, line, start)
	if len(c.pfInflight) > 0 {
		c.pfInflight[c.pfIdx] = fill
		c.pfIdx = (c.pfIdx + 1) % len(c.pfInflight)
	}
	c.l2fill[c.l2i] = inflight{line: line, ready: fill}
	c.l2i = (c.l2i + 1) % len(c.l2fill)
	victim, vDirty := c.l2.insert(line, false)
	if victim != 0 && vDirty {
		s.writebackToL3(core, victim)
	}
}

// insertL1 fills a line into L1, spilling dirty victims to L2.
func (s *System) insertL1(core int, line uint64, dirty bool) {
	c := &s.cores[core]
	victim, vDirty := c.l1.insert(line, dirty)
	if victim != 0 && vDirty {
		s.stats.Writebacks++
		// Write back into L2; charge its port.
		c.l2Free += int64(s.cfg.L2.ThroughputCycles)
		vv, vvDirty := c.l2.insert(victim, true)
		if vv != 0 && vvDirty {
			s.writebackToL3(core, vv)
		}
	}
}

// fetchFromL2 returns the core cycle at which the line arrives from L2 or
// beyond.
func (s *System) fetchFromL2(core int, line uint64, issue int64) int64 {
	c := &s.cores[core]
	tp := int64(s.cfg.L2.ThroughputCycles)
	if tp < 1 {
		tp = 1
	}
	start := issue
	if start < c.l2Free {
		start = c.l2Free
	}
	c.l2Free = start + tp
	if c.l2.lookup(line, false) {
		s.stats.L2Hits++
		ready := start + int64(s.cfg.L2.Latency)
		// The line may still be in flight from the streamer.
		for i := range c.l2fill {
			if c.l2fill[i].line == line && c.l2fill[i].ready > ready {
				ready = c.l2fill[i].ready
			}
		}
		return ready
	}
	s.stats.L2Misses++
	fill := s.fetchFromL3(core, line, start+int64(s.cfg.L2.Latency))
	victim, vDirty := c.l2.insert(line, false)
	if victim != 0 && vDirty {
		s.writebackToL3(core, victim)
	}
	return fill
}

// fetchFromL3 resolves a line at the shared L3 / memory level.
func (s *System) fetchFromL3(core int, line uint64, issue int64) int64 {
	sk := s.socketOf(core)
	start := issue
	if start < sk.l3Free {
		start = sk.l3Free
	}
	sk.l3Free = start + s.lineL3Svc
	if sk.l3.lookup(line, false) {
		s.stats.L3Hits++
		return start + s.l3Lat
	}
	s.stats.L3Misses++
	fill := s.fetchFromMemory(sk, line, start+s.l3Lat)
	victim, vDirty := sk.l3.insert(line, false)
	if victim != 0 && vDirty {
		s.chargeChannel(sk, victim, issue)
		s.stats.Writebacks++
	}
	return fill
}

// writebackToL3 spills a dirty L2 victim into the socket's L3.
func (s *System) writebackToL3(core int, line uint64) {
	sk := s.socketOf(core)
	s.stats.Writebacks++
	sk.l3Free += s.lineL3Svc
	victim, vDirty := sk.l3.insert(line, true)
	if victim != 0 && vDirty {
		s.chargeChannel(sk, victim, sk.l3Free)
		s.stats.Writebacks++
	}
}

// channelOf maps a line to its memory channel (address-interleaved at line
// granularity, as real controllers do — which is also why relative array
// alignments shift channel balance under load, one of the Fig. 15/16
// mechanisms).
func (s *System) channelOf(sk *socketState, line uint64) int {
	return int((line / uint64(s.cfg.L1.LineSize)) % uint64(len(sk.chanFree)))
}

// fetchFromMemory queues the line on its address-interleaved channel.
// Under aggregate demand beyond the channels' bandwidth, start times queue
// up and effective latency grows — the saturation mechanism of Fig. 14.
func (s *System) fetchFromMemory(sk *socketState, line uint64, issue int64) int64 {
	s.stats.MemAccesses++
	s.stats.BytesFromMemory += s.cfg.L1.LineSize
	ch := s.channelOf(sk, line)
	start := issue
	if start < sk.chanFree[ch] {
		start = sk.chanFree[ch]
	}
	svc := s.lineMemSvc
	if s.cfg.Mem.RowBytes > 0 {
		row := line / uint64(s.cfg.Mem.RowBytes)
		bank := int(row % uint64(sk.banks))
		slot := ch*sk.banks + bank
		if row != sk.openRow[slot] {
			// Precharge + activate before the transfer.
			svc += s.rowMiss
			sk.openRow[slot] = row
			s.stats.RowMisses++
		}
	}
	sk.chanFree[ch] = start + svc
	return start + s.memLat + svc
}

// chargeChannel consumes one line's worth of bandwidth on the line's
// channel (writeback traffic).
func (s *System) chargeChannel(sk *socketState, line uint64, at int64) {
	ch := s.channelOf(sk, line)
	if sk.chanFree[ch] < at {
		sk.chanFree[ch] = at
	}
	sk.chanFree[ch] += s.lineMemSvc
}

// FlushCore empties a core's private caches (migration noise, or explicit
// cold-cache runs).
func (s *System) FlushCore(core int) {
	s.cores[core].l1.flush()
	s.cores[core].l2.flush()
	for i := range s.cores[core].mshr {
		s.cores[core].mshr[i] = inflight{}
	}
	for i := range s.cores[core].streams {
		s.cores[core].streams[i] = stream{}
	}
	for i := range s.cores[core].l2fill {
		s.cores[core].l2fill[i] = inflight{}
	}
	for i := range s.cores[core].pfInflight {
		s.cores[core].pfInflight[i] = 0
	}
}

// FlushAll empties every cache in the system.
func (s *System) FlushAll() {
	for i := range s.cores {
		s.FlushCore(i)
	}
	for i := range s.socks {
		s.socks[i].l3.flush()
	}
}

// DisturbCore models an interrupt on the core: a fraction of its private
// cache lines are evicted (deterministically via rng).
func (s *System) DisturbCore(core int, rng *rand.Rand, frac float64) {
	s.cores[core].l1.invalidateFraction(rng, frac)
	s.cores[core].l2.invalidateFraction(rng, frac)
}

// L1Footprint returns the number of valid L1 lines on a core (tests).
func (s *System) L1Footprint(core int) int { return s.cores[core].l1.footprint() }
