package isa

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DecodedProgram is the immutable product of validating and µop-decoding a
// Program once for one microarchitectural decode signature. The simulator's
// hot path (cpu.Core.Reset, once per launcher repetition) consumes it
// instead of re-validating and re-decoding the program, which makes repeat
// launches of the same kernel allocation-free.
//
// Instances are shared across cores and goroutines: every field must be
// treated as read-only.
type DecodedProgram struct {
	// Prog is the program this decode was produced from.
	Prog *Program
	// Uops holds each instruction's µop decomposition, indexed like
	// Prog.Insts. The inner slices alias one shared backing array.
	Uops [][]Uop
	// Info holds each instruction's static scheduling facts, indexed like
	// Prog.Insts.
	Info []InstInfo
	// PredInit is the initial 2-bit branch predictor counter per static
	// instruction (backward branches start predicted-taken, forward
	// branches predicted-not-taken); cores copy it into their private
	// predictor state on Reset.
	PredInit []uint8

	// derived memoizes analysis results computed from this decode (see
	// Derived); like the decode cache it is copy-on-write and first-wins.
	derived derivedCache
}

// maxDerived bounds the per-decode derived-result memo, mirroring
// maxDecodedArchs: real campaigns derive one bounds result per decode (the
// issue width rarely varies for one decode signature).
const maxDerived = 4

type derivedEntry struct {
	key uint64
	val any
}

// derivedCache memoizes values derived from one DecodedProgram: a
// copy-on-write entry list read lock-free on the hot path, with writers
// serialized by mu. The zero value is ready to use.
type derivedCache struct {
	mu      sync.Mutex
	entries atomic.Pointer[[]derivedEntry]
}

// Derived returns the value memoized under key, calling compute and
// publishing its result on the first request. If two goroutines race on the
// same key the first published value wins and every caller shares it, so
// compute must be pure and its result treated as immutable. Keys are
// namespaced by consumer: the high 32 bits identify the computing package,
// the low 32 its parameter (internal/dataflow keys its bounds by issue
// width — the one scheduling parameter outside the decode signature).
func (d *DecodedProgram) Derived(key uint64, compute func() any) any {
	if es := d.derived.entries.Load(); es != nil {
		for i := range *es {
			if (*es)[i].key == key {
				return (*es)[i].val
			}
		}
	}
	v := compute()
	d.derived.mu.Lock()
	defer d.derived.mu.Unlock()
	var old []derivedEntry
	if es := d.derived.entries.Load(); es != nil {
		old = *es
	}
	for i := range old {
		if old[i].key == key {
			return old[i].val
		}
	}
	if len(old) >= maxDerived {
		old = old[1:] // evict the oldest result
	}
	next := make([]derivedEntry, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, derivedEntry{key: key, val: v})
	d.derived.entries.Store(&next)
	return v
}

// InstClass buckets an instruction for the dynamic-mix counters.
type InstClass uint8

const (
	// ClassOther covers RET, NOP and SSE moves — instructions outside the
	// mix counters.
	ClassOther InstClass = iota
	// ClassBranch is any branch.
	ClassBranch
	// ClassSSE is SSE arithmetic (not moves).
	ClassSSE
	// ClassALU is non-SSE integer work.
	ClassALU
)

// InstInfo caches the static per-instruction facts the core's scheduler
// needs every dynamic execution: memory-operand shape, source and
// destination registers, flag traffic and classification. It answers, once
// per decode, the questions stepInst used to re-derive from the Inst on
// every dynamic instruction.
type InstInfo struct {
	// Mem is the memory operand; valid only when HasMem.
	Mem MemRef
	// AddrRegs are the address-generation sources (base, index); NoReg
	// entries are padding.
	AddrRegs [2]Reg
	// SrcRegs[:NSrc] are the non-address register sources (including a
	// read-modify destination, excluding a pure move's destination).
	SrcRegs [3]Reg
	NSrc    int
	// DstReg is the register destination, or NoReg.
	DstReg Reg
	// StoreDataReg is the register whose value a store writes, or NoReg.
	StoreDataReg Reg
	// MemWidth is the access width in bytes; valid only when HasMem.
	MemWidth int
	HasMem   bool
	// Load/Store classify the memory access (at most one is set).
	Load  bool
	Store bool

	ReadsFlags  bool
	WritesFlags bool
	Branch      bool
	CondBranch  bool
	Class       InstClass
}

// infoOf derives the static scheduling facts of one instruction.
func infoOf(in *Inst) InstInfo {
	info := InstInfo{
		AddrRegs:     [2]Reg{NoReg, NoReg},
		DstReg:       NoReg,
		StoreDataReg: NoReg,
		ReadsFlags:   in.Op.ReadsFlags(),
		WritesFlags:  in.Op.WritesFlags(),
		Branch:       in.Op.IsBranch(),
		CondBranch:   in.Op.IsCondBranch(),
	}
	if mem, st, ok := in.MemOperand(); ok {
		info.Mem = mem
		info.HasMem = true
		info.Store = st
		info.Load = !st
		info.MemWidth = in.Op.MemWidth()
		info.AddrRegs[0] = mem.Base
		info.AddrRegs[1] = mem.Index
	}
	for i := 0; i < in.NOps; i++ {
		o := in.Operand(i)
		if o.Kind != RegOperand {
			continue
		}
		// The destination register of a pure move is write-only; for
		// read-modify ops (add, mulsd, ...) it is also a source.
		if i == in.NOps-1 && in.Op.IsMove() {
			continue
		}
		info.SrcRegs[info.NSrc] = o.Reg
		info.NSrc++
	}
	if in.NOps > 0 {
		if d := in.Dst(); d.Kind == RegOperand {
			info.DstReg = d.Reg
		}
	}
	if in.A.Kind == RegOperand {
		info.StoreDataReg = in.A.Reg
	}
	switch {
	case info.Branch:
		info.Class = ClassBranch
	case in.Op.IsSSE() && !in.Op.IsMove():
		info.Class = ClassSSE
	case !in.Op.IsSSE() && in.Op != RET && in.Op != NOP:
		info.Class = ClassALU
	}
	return info
}

// decodeKey is the value identity of an Arch's decode behaviour: two Arch
// instances with equal keys decode every instruction identically, so their
// DecodedPrograms are interchangeable. Keying by value rather than by *Arch
// lets fresh machine.ByName descriptors (a new Arch per launch) share one
// cached decode per program — the campaign retry path relies on this.
type decodeKey struct {
	twoLoadPorts bool
	fpAddLat     int
	fpMulLatSS   int
	fpMulLatSD   int
	iMulLat      int
}

func (a *Arch) decodeKey() decodeKey {
	return decodeKey{
		twoLoadPorts: a.TwoLoadPorts,
		fpAddLat:     a.FPAddLat,
		fpMulLatSS:   a.FPMulLatSS,
		fpMulLatSD:   a.FPMulLatSD,
		iMulLat:      a.IMulLat,
	}
}

// maxDecodedArchs bounds the per-program decode cache. Real sweeps touch
// one or two microarchitectures; the bound only guards against a pathological
// caller decoding one program against an endless stream of distinct Archs.
const maxDecodedArchs = 4

type decodedEntry struct {
	key decodeKey
	dp  *DecodedProgram
}

// decodeCache is the per-program decode memo: a copy-on-write entry list
// read lock-free on the hot path, with writers serialized by mu. The zero
// value is ready to use; Clone deliberately starts clones with a fresh one.
type decodeCache struct {
	mu      sync.Mutex
	entries atomic.Pointer[[]decodedEntry]
}

func (c *decodeCache) get(k decodeKey) *DecodedProgram {
	if es := c.entries.Load(); es != nil {
		for i := range *es {
			if (*es)[i].key == k {
				return (*es)[i].dp
			}
		}
	}
	return nil
}

// put publishes dp under k and returns the canonical entry: if another
// goroutine decoded the same signature first, the first decode wins so every
// caller shares one DecodedProgram.
func (c *decodeCache) put(k decodeKey, dp *DecodedProgram) *DecodedProgram {
	c.mu.Lock()
	defer c.mu.Unlock()
	var old []decodedEntry
	if es := c.entries.Load(); es != nil {
		old = *es
	}
	for i := range old {
		if old[i].key == k {
			return old[i].dp
		}
	}
	next := make([]decodedEntry, 0, len(old)+1)
	if len(old) >= maxDecodedArchs {
		old = old[1:] // evict the oldest signature
	}
	next = append(next, old...)
	next = append(next, decodedEntry{key: k, dp: dp})
	c.entries.Store(&next)
	return dp
}

// Decoded returns the program's µop decode for arch, validating and decoding
// it exactly once per decode signature and caching the result on the
// program. It is safe for concurrent use. The program must not be mutated
// after its first Decoded call; MicroCreator and the asm parser finalize
// programs (Resolve) before they reach the simulator, and Clone returns a
// program with an empty cache.
func (p *Program) Decoded(a *Arch) (*DecodedProgram, error) {
	k := a.decodeKey()
	if dp := p.dcache.get(k); dp != nil {
		return dp, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Decode into one flat backing array, then carve per-instruction
	// views: a program decodes to ~1-2 µops per instruction, so this is
	// two allocations instead of one per instruction.
	flat := make([]Uop, 0, 2*len(p.Insts))
	offs := make([]int, len(p.Insts)+1)
	for i := range p.Insts {
		var err error
		flat, err = a.Decode(&p.Insts[i], flat)
		if err != nil {
			return nil, fmt.Errorf("isa: decode %s at %d: %w", p.Insts[i].Op, i, err)
		}
		offs[i+1] = len(flat)
	}
	dp := &DecodedProgram{
		Prog:     p,
		Uops:     make([][]Uop, len(p.Insts)),
		Info:     make([]InstInfo, len(p.Insts)),
		PredInit: make([]uint8, len(p.Insts)),
	}
	for i := range p.Insts {
		dp.Uops[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
		in := &p.Insts[i]
		dp.Info[i] = infoOf(in)
		// Static prediction: backward taken (loops), forward not-taken.
		if in.Op.IsBranch() && in.Target >= 0 && in.Target <= i {
			dp.PredInit[i] = 2
		} else {
			dp.PredInit[i] = 1
		}
	}
	return p.dcache.put(k, dp), nil
}
