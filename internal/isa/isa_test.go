package isa

import (
	"testing"
	"testing/quick"
)

func TestParseReg(t *testing.T) {
	cases := []struct {
		in   string
		want Reg
	}{
		{"%rax", RAX}, {"rax", RAX}, {"%eax", RAX}, {"%RSI", RSI},
		{"%rdi", RDI}, {"%r8", R8}, {"%r8d", R8}, {"%r11", R11},
		{"%xmm0", XMM0}, {"%xmm15", XMM15}, {"xmm7", XMM7}, {"%rip", RIP},
	}
	for _, c := range cases {
		got, err := ParseReg(c.in)
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseReg(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseReg("%zmm0"); err == nil {
		t.Error("ParseReg of zmm0 should fail")
	}
	if _, err := ParseReg("%xmm16"); err == nil {
		t.Error("ParseReg of xmm16 should fail")
	}
}

func TestRegStringRoundTrip(t *testing.T) {
	for r := RAX; r <= XMM15; r++ {
		got, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("round trip %v: %v", r, err)
		}
		if got != r {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
}

func TestIs32BitName(t *testing.T) {
	if !Is32BitName("%eax") || !Is32BitName("r8d") {
		t.Error("expected 32-bit names recognized")
	}
	if Is32BitName("%rax") || Is32BitName("%xmm0") {
		t.Error("64-bit / xmm names must not be 32-bit")
	}
}

func TestParseOp(t *testing.T) {
	cases := []struct {
		in   string
		want Op
	}{
		{"movaps", MOVAPS}, {"movss", MOVSS}, {"movsd", MOVSD},
		{"addq", ADD}, {"subq", SUB}, {"cmpl", CMP}, {"movq", MOV},
		{"addsd", ADDSD}, {"mulsd", MULSD}, {"jge", JGE}, {"jg", JG},
		{"ret", RET}, {"leaq", LEA}, {"sall", SHL}, {"imulq", IMUL},
		{"incq", INC}, {"decl", DEC}, {"testq", TEST},
	}
	for _, c := range cases {
		got, err := ParseOp(c.in)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseOp(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseOp("vfmadd231pd"); err == nil {
		t.Error("AVX mnemonics are outside the subset and must fail")
	}
}

func TestOpProperties(t *testing.T) {
	if MOVAPS.MemWidth() != 16 || MOVSS.MemWidth() != 4 || MOVSD.MemWidth() != 8 {
		t.Error("bad SSE move widths")
	}
	if !MOVAPS.RequiresAlignment() || MOVUPS.RequiresAlignment() || MOVSS.RequiresAlignment() {
		t.Error("bad alignment requirements")
	}
	if !JGE.IsCondBranch() || JMP.IsCondBranch() || !JMP.IsBranch() {
		t.Error("bad branch classification")
	}
	if !SUB.WritesFlags() || MOV.WritesFlags() || !JG.ReadsFlags() {
		t.Error("bad flags classification")
	}
	if !MOVAPS.IsSSE() || ADD.IsSSE() {
		t.Error("bad SSE classification")
	}
}

func TestMemRefEffectiveAddress(t *testing.T) {
	var rf RegFile
	rf.Set(RDX, 0x1000)
	rf.Set(RAX, 3)
	m := MemRef{Base: RDX, Index: RAX, Scale: 8, Disp: 16}
	if got := m.EffectiveAddress(&rf); got != 0x1000+24+16 {
		t.Errorf("EA = %#x, want %#x", got, 0x1000+24+16)
	}
	m2 := MemRef{Base: RSI, Index: NoReg, Disp: -8}
	rf.Set(RSI, 100)
	if got := m2.EffectiveAddress(&rf); got != 92 {
		t.Errorf("EA = %d, want 92", got)
	}
}

func TestMemRefString(t *testing.T) {
	m := MemRef{Base: RDX, Index: RAX, Scale: 8, Disp: 16}
	if got := m.String(); got != "16(%rdx,%rax,8)" {
		t.Errorf("String = %q", got)
	}
	m2 := MemRef{Base: RSI, Index: NoReg}
	if got := m2.String(); got != "(%rsi)" {
		t.Errorf("String = %q", got)
	}
}

// buildLoop builds the paper's Fig. 8 kernel: three movaps (two stores, one
// load), induction updates, and a jge loop.
func buildLoop(t *testing.T) *Program {
	t.Helper()
	p := &Program{
		Name: "kernel",
		Insts: []Inst{
			{Op: MOVAPS, A: NewReg(XMM0), B: NewMem(MemRef{Base: RSI, Index: NoReg, Disp: 0}), NOps: 2},
			{Op: MOVAPS, A: NewMem(MemRef{Base: RSI, Index: NoReg, Disp: 16}), B: NewReg(XMM1), NOps: 2},
			{Op: MOVAPS, A: NewReg(XMM2), B: NewMem(MemRef{Base: RSI, Index: NoReg, Disp: 32}), NOps: 2},
			{Op: ADD, A: NewImm(48), B: NewReg(RSI), NOps: 2},
			{Op: SUB, A: NewImm(12), B: NewReg(RDI), NOps: 2},
			{Op: JGE, A: NewLabel(".L6"), NOps: 1},
			{Op: RET},
		},
		Labels: map[string]int{".L6": 0},
	}
	if err := p.Resolve(); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestProgramLoadStoreClassification(t *testing.T) {
	p := buildLoop(t)
	if !p.Insts[0].IsStore() || p.Insts[0].IsLoad() {
		t.Error("inst 0 must be a store")
	}
	if !p.Insts[1].IsLoad() || p.Insts[1].IsStore() {
		t.Error("inst 1 must be a load")
	}
	st := p.StaticStats()
	if st.Loads != 1 || st.Stores != 2 || st.Branches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProgramResolveErrors(t *testing.T) {
	p := &Program{Name: "bad", Insts: []Inst{{Op: JGE, A: NewLabel(".nope"), NOps: 1}}, Labels: map[string]int{}}
	if err := p.Resolve(); err == nil {
		t.Error("Resolve with undefined label must fail")
	}
}

func TestProgramValidateRejectsGPRLoad(t *testing.T) {
	p := &Program{
		Name: "bad",
		Insts: []Inst{
			{Op: MOV, A: NewMem(MemRef{Base: RSI, Index: NoReg}), B: NewReg(RAX), NOps: 2},
			{Op: RET},
		},
		Labels: map[string]int{},
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Error("Validate must reject GPR loads from memory")
	}
}

// TestExecLoopSemantics runs the Fig. 8 loop functionally and checks it
// executes the expected number of iterations.
func TestExecLoopSemantics(t *testing.T) {
	p := buildLoop(t)
	var rf RegFile
	rf.Set(RDI, 48) // 48 elements, 12 consumed per unrolled iteration
	rf.Set(RSI, 0x10000)
	pc := 0
	iters := 0
	for pc >= 0 && iters < 10000 {
		inst := &p.Insts[pc]
		next, taken, err := Exec(inst, pc, &rf)
		if err != nil {
			t.Fatalf("Exec %s: %v", inst, err)
		}
		if taken && inst.Op == JGE {
			iters++
		}
		pc = next
	}
	// rdi: 48 -> 36 -> 24 -> 12 -> 0 (jge taken at >=0) -> -12 exit.
	// Taken branches: at 36,24,12,0 => 4; plus the fall-through iteration = 5 total body runs.
	if iters != 4 {
		t.Errorf("taken iterations = %d, want 4", iters)
	}
	if got := rf.Get(RSI); got != 0x10000+5*48 {
		t.Errorf("rsi = %#x, want %#x", got, 0x10000+5*48)
	}
}

// TestExecMatmulInner checks the functional semantics of the paper's Fig. 2
// inner loop (cmpl %eax, %edi ; jg).
func TestExecMatmulInner(t *testing.T) {
	n := uint64(7)
	p := &Program{
		Name: "mm",
		Insts: []Inst{
			{Op: MOVSD, A: NewMem(MemRef{Base: RDX, Index: RAX, Scale: 8}), B: NewReg(XMM0), NOps: 2},
			{Op: ADD, A: NewImm(1), B: NewReg(RAX), NOps: 2},
			{Op: MULSD, A: NewMem(MemRef{Base: R8, Index: NoReg}), B: NewReg(XMM0), NOps: 2},
			{Op: ADD, A: NewReg(R11), B: NewReg(R8), NOps: 2},
			{Op: CMP, A: NewReg(RAX), B: NewReg(RDI), NOps: 2},
			{Op: ADDSD, A: NewReg(XMM0), B: NewReg(XMM1), NOps: 2},
			{Op: MOVSD, A: NewReg(XMM1), B: NewMem(MemRef{Base: R10, Index: R9, Scale: 1}), NOps: 2},
			{Op: JG, A: NewLabel(".L3"), NOps: 1},
			{Op: RET},
		},
		Labels: map[string]int{".L3": 0},
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var rf RegFile
	rf.Set(RDI, n)
	rf.Set(RDX, 0x2000)
	rf.Set(R8, 0x4000)
	rf.Set(R11, 8*n)
	body := 0
	pc := 0
	for pc >= 0 {
		inst := &p.Insts[pc]
		if pc == 0 {
			body++
		}
		var err error
		pc, _, err = Exec(inst, pc, &rf)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		if body > 1000 {
			t.Fatal("runaway loop")
		}
	}
	if body != int(n) {
		t.Errorf("body executed %d times, want %d", body, n)
	}
	if rf.Get(RAX) != n {
		t.Errorf("rax = %d, want %d", rf.Get(RAX), n)
	}
}

func TestExecLEAAndIMul(t *testing.T) {
	var rf RegFile
	rf.Set(RBX, 10)
	lea := Inst{Op: LEA, A: NewMem(MemRef{Base: RBX, Index: RBX, Scale: 4, Disp: 2}), B: NewReg(RCX), NOps: 2}
	if _, _, err := Exec(&lea, 0, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.Get(RCX) != 52 {
		t.Errorf("lea result = %d, want 52", rf.Get(RCX))
	}
	imul3 := Inst{Op: IMUL, A: NewImm(3), B: NewReg(RBX), C: NewReg(RDX), NOps: 3}
	if _, _, err := Exec(&imul3, 0, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.Get(RDX) != 30 {
		t.Errorf("imul3 result = %d, want 30", rf.Get(RDX))
	}
}

func TestCondTakenWithoutFlagsErrors(t *testing.T) {
	var rf RegFile
	if _, err := rf.CondTaken(JGE); err == nil {
		t.Error("CondTaken without prior flags must error")
	}
}

// Property: for any pair of int32 values, CMP + each conditional branch
// matches the Go comparison semantics.
func TestPropertyCmpBranches(t *testing.T) {
	f := func(a, b int32) bool {
		var rf RegFile
		rf.Set(RAX, uint64(int64(a)))
		rf.Set(RDI, uint64(int64(b)))
		cmp := Inst{Op: CMP, A: NewReg(RAX), B: NewReg(RDI), NOps: 2}
		if _, _, err := Exec(&cmp, 0, &rf); err != nil {
			return false
		}
		checks := []struct {
			op   Op
			want bool
		}{
			{JE, b == a}, {JNE, b != a}, {JL, b < a},
			{JLE, b <= a}, {JG, b > a}, {JGE, b >= a},
		}
		for _, c := range checks {
			got, err := rf.CondTaken(c.op)
			if err != nil || got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding any supported instruction yields between 1 and 2 µops,
// loads use load ports, stores use store ports.
func TestDecodeUopShapes(t *testing.T) {
	for _, arch := range []*Arch{Nehalem(), SandyBridge()} {
		p := buildLoop(t)
		for i := range p.Insts {
			uops, err := arch.Decode(&p.Insts[i], nil)
			if err != nil {
				t.Fatalf("%s: Decode(%s): %v", arch.Name, p.Insts[i].String(), err)
			}
			if len(uops) == 0 || len(uops) > 2 {
				t.Errorf("%s: %s decoded to %d uops", arch.Name, p.Insts[i].String(), len(uops))
			}
			if p.Insts[i].IsLoad() && uops[0].Role != RoleLoad {
				t.Errorf("%s: load instruction first uop role = %v", arch.Name, uops[0].Role)
			}
			if p.Insts[i].IsStore() {
				if uops[0].Role != RoleStoreAddr || uops[1].Role != RoleStoreData {
					t.Errorf("%s: store decomposition wrong: %+v", arch.Name, uops)
				}
			}
		}
	}
}

func TestSandyBridgeHasTwoLoadPorts(t *testing.T) {
	nhm, snb := Nehalem(), SandyBridge()
	load := Inst{Op: MOVAPS, A: NewMem(MemRef{Base: RSI, Index: NoReg}), B: NewReg(XMM0), NOps: 2}
	un, err := nhm.Decode(&load, nil)
	if err != nil {
		t.Fatal(err)
	}
	us, err := snb.Decode(&load, nil)
	if err != nil {
		t.Fatal(err)
	}
	if un[0].Ports.Count() != 1 {
		t.Errorf("nehalem load ports = %d, want 1", un[0].Ports.Count())
	}
	if us[0].Ports.Count() != 2 {
		t.Errorf("sandybridge load ports = %d, want 2", us[0].Ports.Count())
	}
}

func TestDecodeLoadOpFusion(t *testing.T) {
	arch := Nehalem()
	mulLoad := Inst{Op: MULSD, A: NewMem(MemRef{Base: R8, Index: NoReg}), B: NewReg(XMM0), NOps: 2}
	uops, err := arch.Decode(&mulLoad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(uops) != 2 || uops[0].Role != RoleLoad || uops[1].Role != RoleCompute || !uops[1].Fused {
		t.Errorf("mulsd (mem) decomposition wrong: %+v", uops)
	}
	if uops[1].Lat != arch.FPMulLatSD {
		t.Errorf("mulsd latency = %d, want %d", uops[1].Lat, arch.FPMulLatSD)
	}
}

func TestInstString(t *testing.T) {
	in := Inst{Op: MOVAPS, A: NewMem(MemRef{Base: RSI, Index: NoReg, Disp: 16}), B: NewReg(XMM1), NOps: 2}
	if got := in.String(); got != "movaps 16(%rsi), %xmm1" {
		t.Errorf("String = %q", got)
	}
}
