package isa

import "fmt"

// Port identifies an execution port of the out-of-order backend.
type Port uint8

// PortMask is a bit set of ports a µop may issue to.
type PortMask uint16

// Execution ports, named after the Intel convention used for Nehalem and
// Sandy Bridge (Table 1's machines).
const (
	P0 Port = iota // ALU + FP multiply (+ shifts)
	P1             // ALU + FP add (+ imul, lea)
	P2             // load (SNB: load/store-address)
	P3             // store address (SNB: load/store-address)
	P4             // store data
	P5             // ALU + branch
	NumPorts
)

// Mask returns the single-port mask for p.
func (p Port) Mask() PortMask { return 1 << p }

// Has reports whether the mask contains p.
func (m PortMask) Has(p Port) bool { return m&(1<<p) != 0 }

// Count returns the number of ports in the mask.
func (m PortMask) Count() int {
	n := 0
	for p := Port(0); p < NumPorts; p++ {
		if m.Has(p) {
			n++
		}
	}
	return n
}

// UopRole classifies a µop for the pipeline and memory models.
type UopRole uint8

const (
	RoleCompute UopRole = iota
	RoleLoad
	RoleStoreAddr
	RoleStoreData
	RoleBranch
)

// Uop is one micro-operation of a decoded instruction.
type Uop struct {
	Role UopRole
	// Ports the µop may execute on.
	Ports PortMask
	// Lat is the execution latency in core cycles. For loads this is the
	// address-generation part only; the memory hierarchy adds the access
	// latency (L1 hit latency and beyond).
	Lat int
	// Fused marks the second µop of a micro-fused pair (load+op); it does
	// not consume a frontend issue slot.
	Fused bool
}

// Arch describes the out-of-order core pipeline of a microarchitecture.
// Cache geometry and frequencies live in internal/machine; Arch covers only
// what the core timing model needs.
type Arch struct {
	Name string
	// IssueWidth is the number of (fused-domain) µops the frontend can
	// rename/issue per cycle.
	IssueWidth int
	// RetireWidth is the number of µops retired per cycle.
	RetireWidth int
	// ROBSize bounds in-flight µops.
	ROBSize int
	// LoadBuffers / StoreBuffers bound in-flight memory operations.
	LoadBuffers  int
	StoreBuffers int
	// BranchMissPenalty is the pipeline refill cost of a mispredicted
	// branch (paid once at loop exit under the loop predictor model).
	BranchMissPenalty int
	// TwoLoadPorts is true on Sandy Bridge: P2 and P3 both serve loads,
	// doubling L1 load bandwidth (one of the headline differences the
	// paper's Sandy Bridge figures 17-18 benefit from).
	TwoLoadPorts bool
	// TakenBranchBubble is the frontend bubble after a taken branch when
	// the loop does NOT fit the loop-stream detector: the issue group
	// ends and this many cycles are lost before fetch resumes. This is
	// the loop overhead that unrolling trades against code footprint
	// (Figs. 5, 11, 12). Sandy Bridge's µop cache hides the bubble.
	TakenBranchBubble int
	// LSDSize is the loop-stream detector capacity in fused-domain µops:
	// loops whose bodies fit are replayed without the fetch bubble.
	LSDSize int

	// FP latencies (per Agner Fog's tables, rounded).
	FPAddLat   int
	FPMulLatSS int // single precision multiply
	FPMulLatSD int // double precision multiply
	IMulLat    int
}

// Nehalem returns the core description of the Xeon X5650/X7550 class
// machines in Table 1.
func Nehalem() *Arch {
	return &Arch{
		Name:              "nehalem",
		IssueWidth:        4,
		RetireWidth:       4,
		ROBSize:           128,
		LoadBuffers:       48,
		StoreBuffers:      32,
		BranchMissPenalty: 17,
		TwoLoadPorts:      false,
		TakenBranchBubble: 1,
		LSDSize:           28,
		FPAddLat:          3,
		FPMulLatSS:        4,
		FPMulLatSD:        5,
		IMulLat:           3,
	}
}

// SandyBridge returns the core description of the Xeon E31240 in Table 1.
func SandyBridge() *Arch {
	return &Arch{
		Name:              "sandybridge",
		IssueWidth:        4,
		RetireWidth:       4,
		ROBSize:           168,
		LoadBuffers:       64,
		StoreBuffers:      36,
		BranchMissPenalty: 15,
		TwoLoadPorts:      true,
		TakenBranchBubble: 0,
		LSDSize:           28,
		FPAddLat:          3,
		FPMulLatSS:        5,
		FPMulLatSD:        5,
		IMulLat:           3,
	}
}

func (a *Arch) loadPorts() PortMask {
	if a.TwoLoadPorts {
		return P2.Mask() | P3.Mask()
	}
	return P2.Mask()
}

func (a *Arch) storeAddrPorts() PortMask {
	if a.TwoLoadPorts {
		return P2.Mask() | P3.Mask()
	}
	return P3.Mask()
}

func (a *Arch) aluPorts() PortMask { return P0.Mask() | P1.Mask() | P5.Mask() }

// computeUop returns the (ports, latency) of the computation part of op.
func (a *Arch) computeUop(op Op) (PortMask, int, error) {
	switch op {
	case ADDSS, ADDSD, ADDPS, ADDPD:
		return P1.Mask(), a.FPAddLat, nil
	case MULSS, MULPS:
		return P0.Mask(), a.FPMulLatSS, nil
	case MULSD, MULPD:
		return P0.Mask(), a.FPMulLatSD, nil
	case XORPS:
		return P0.Mask() | P1.Mask() | P5.Mask(), 1, nil
	case MOVSS, MOVSD, MOVAPS, MOVAPD, MOVUPS, MOVUPD:
		// Register-to-register SSE move.
		return P0.Mask() | P1.Mask() | P5.Mask(), 1, nil
	case MOV, ADD, SUB, INC, DEC, XOR, AND, CMP, TEST, NOP, RET:
		return a.aluPorts(), 1, nil
	case LEA:
		return P0.Mask() | P1.Mask(), 1, nil
	case SHL:
		return P0.Mask() | P5.Mask(), 1, nil
	case IMUL:
		return P1.Mask(), a.IMulLat, nil
	}
	return 0, 0, fmt.Errorf("isa: no compute µop spec for %s on %s", op, a.Name)
}

// Decode appends the µop decomposition of inst to buf and returns it.
// Shapes:
//   - load (mem source):   load µop (+ micro-fused compute µop for
//     arithmetic; pure moves are a single load µop)
//   - store (mem dest):    store-address µop + store-data µop
//   - register/immediate:  single compute µop
//   - conditional branch:  single branch µop on P5
func (a *Arch) Decode(inst *Inst, buf []Uop) ([]Uop, error) {
	op := inst.Op
	if op.IsBranch() {
		return append(buf, Uop{Role: RoleBranch, Ports: P5.Mask(), Lat: 1}), nil
	}
	mem, isStore, hasMem := inst.MemOperand()
	_ = mem
	switch {
	case hasMem && !isStore:
		buf = append(buf, Uop{Role: RoleLoad, Ports: a.loadPorts(), Lat: 0})
		if !op.IsMove() {
			ports, lat, err := a.computeUop(op)
			if err != nil {
				return nil, err
			}
			buf = append(buf, Uop{Role: RoleCompute, Ports: ports, Lat: lat, Fused: true})
		}
		return buf, nil
	case hasMem && isStore:
		buf = append(buf,
			Uop{Role: RoleStoreAddr, Ports: a.storeAddrPorts(), Lat: 1},
			Uop{Role: RoleStoreData, Ports: P4.Mask(), Lat: 1, Fused: true})
		return buf, nil
	default:
		ports, lat, err := a.computeUop(op)
		if err != nil {
			return nil, err
		}
		return append(buf, Uop{Role: RoleCompute, Ports: ports, Lat: lat}), nil
	}
}
