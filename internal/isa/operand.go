package isa

import (
	"fmt"
	"strings"
)

// OperandKind tags the variant held by an Operand.
type OperandKind uint8

const (
	NoOperand OperandKind = iota
	RegOperand
	ImmOperand
	MemOperand
	LabelOperand
)

// MemRef is an x86 memory reference disp(base, index, scale).
type MemRef struct {
	Base  Reg
	Index Reg
	Scale int64 // 1, 2, 4 or 8; 0 means no index
	Disp  int64
}

// EffectiveAddress computes the address of the reference given a register
// file view.
func (m MemRef) EffectiveAddress(regs *RegFile) uint64 {
	addr := uint64(int64(0))
	if m.Base != NoReg {
		addr = regs.Get(m.Base)
	}
	if m.Index != NoReg && m.Scale != 0 {
		addr += regs.Get(m.Index) * uint64(m.Scale)
	}
	return addr + uint64(m.Disp)
}

func (m MemRef) String() string {
	var b strings.Builder
	if m.Disp != 0 {
		fmt.Fprintf(&b, "%d", m.Disp)
	}
	b.WriteByte('(')
	if m.Base != NoReg {
		b.WriteString(m.Base.String())
	}
	if m.Index != NoReg {
		fmt.Fprintf(&b, ",%s,%d", m.Index, m.Scale)
	}
	b.WriteByte(')')
	return b.String()
}

// Operand is a tagged union of the operand forms in the subset.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Imm   int64
	Mem   MemRef
	Label string
}

// NewReg returns a register operand.
func NewReg(r Reg) Operand { return Operand{Kind: RegOperand, Reg: r} }

// NewImm returns an immediate operand.
func NewImm(v int64) Operand { return Operand{Kind: ImmOperand, Imm: v} }

// NewMem returns a memory operand.
func NewMem(m MemRef) Operand { return Operand{Kind: MemOperand, Mem: m} }

// NewLabel returns a label operand (branch target).
func NewLabel(l string) Operand { return Operand{Kind: LabelOperand, Label: l} }

// IsMem reports whether the operand is a memory reference.
func (o Operand) IsMem() bool { return o.Kind == MemOperand }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == RegOperand }

func (o Operand) String() string {
	switch o.Kind {
	case NoOperand:
		return ""
	case RegOperand:
		return o.Reg.String()
	case ImmOperand:
		return fmt.Sprintf("$%d", o.Imm)
	case MemOperand:
		return o.Mem.String()
	case LabelOperand:
		return o.Label
	}
	return fmt.Sprintf("operand(%d)", int(o.Kind))
}

// RegFile holds the 64-bit architectural register values used for functional
// execution (control flow and address generation). XMM registers carry no
// values; only integer state affects addresses and branches.
type RegFile struct {
	vals [NumRegs]uint64
	// Flags state from the last flag-writing instruction, kept as the
	// signed comparison residue dst-src (for CMP/SUB) or the plain result
	// (ADD/INC/DEC/logic ops): enough to evaluate the conditional jumps in
	// the subset.
	flagResult int64
	flagValid  bool
}

// Get returns the value of r (0 for NoReg).
func (rf *RegFile) Get(r Reg) uint64 {
	if r >= NumRegs {
		return 0
	}
	return rf.vals[r]
}

// Set assigns the value of r.
func (rf *RegFile) Set(r Reg, v uint64) {
	if r < NumRegs {
		rf.vals[r] = v
	}
}

// SetFlags records the signed residue used to evaluate conditional branches.
func (rf *RegFile) SetFlags(result int64) {
	rf.flagResult = result
	rf.flagValid = true
}

// CondTaken evaluates whether the conditional branch op would be taken given
// the current flags.
func (rf *RegFile) CondTaken(op Op) (bool, error) {
	if !rf.flagValid {
		return false, fmt.Errorf("isa: conditional branch %s with no prior flag-setting instruction", op)
	}
	switch op {
	case JE:
		return rf.flagResult == 0, nil
	case JNE:
		return rf.flagResult != 0, nil
	case JL:
		return rf.flagResult < 0, nil
	case JLE:
		return rf.flagResult <= 0, nil
	case JG:
		return rf.flagResult > 0, nil
	case JGE:
		return rf.flagResult >= 0, nil
	}
	return false, fmt.Errorf("isa: %s is not a conditional branch", op)
}
