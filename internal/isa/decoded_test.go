package isa

import (
	"reflect"
	"sync"
	"testing"
)

func TestDecodedCachesPerSignature(t *testing.T) {
	p := buildLoop(t)
	nhm, snb := Nehalem(), SandyBridge()

	d1, err := p.Decoded(nhm)
	if err != nil {
		t.Fatal(err)
	}
	// A second Arch value with the same decode signature must hit the cache.
	d2, err := p.Decoded(Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("same decode signature did not share one DecodedProgram")
	}
	// A different signature gets its own decode.
	d3, err := p.Decoded(snb)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Error("distinct decode signatures shared one DecodedProgram")
	}
	if d1.Prog != p || d3.Prog != p {
		t.Error("DecodedProgram.Prog does not point back at the program")
	}
}

func TestDecodedMatchesDirectDecode(t *testing.T) {
	p := buildLoop(t)
	for _, arch := range []*Arch{Nehalem(), SandyBridge()} {
		dp, err := p.Decoded(arch)
		if err != nil {
			t.Fatal(err)
		}
		if len(dp.Uops) != len(p.Insts) || len(dp.PredInit) != len(p.Insts) {
			t.Fatalf("%s: decoded lengths %d/%d, want %d", arch.Name,
				len(dp.Uops), len(dp.PredInit), len(p.Insts))
		}
		for i := range p.Insts {
			want, err := arch.Decode(&p.Insts[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dp.Uops[i], want) {
				t.Errorf("%s: inst %d uops = %+v, want %+v", arch.Name, i, dp.Uops[i], want)
			}
		}
		// Static prediction: the loop's backward jge starts taken, and no
		// other instruction does.
		for i := range p.Insts {
			in := &p.Insts[i]
			want := uint8(1)
			if in.Op.IsBranch() && in.Target <= i {
				want = 2
			}
			if dp.PredInit[i] != want {
				t.Errorf("%s: PredInit[%d] = %d, want %d", arch.Name, i, dp.PredInit[i], want)
			}
		}
	}
}

func TestDecodedConcurrentCallsShareOneDecode(t *testing.T) {
	p := buildLoop(t)
	const workers = 16
	got := make([]*DecodedProgram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dp, err := p.Decoded(Nehalem())
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = dp
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("concurrent Decoded calls returned distinct instances")
		}
	}
}

func TestDecodedCacheEvictsOldestSignature(t *testing.T) {
	p := buildLoop(t)
	first, err := p.Decoded(Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the cache with maxDecodedArchs further signatures so the first
	// one falls out.
	for i := 0; i < maxDecodedArchs; i++ {
		a := Nehalem()
		a.FPAddLat = 50 + i
		if _, err := p.Decoded(a); err != nil {
			t.Fatal(err)
		}
	}
	again, err := p.Decoded(Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	if again == first {
		t.Error("evicted signature still served the old instance")
	}
	if len(again.Uops) != len(first.Uops) {
		t.Error("re-decode after eviction disagrees with the original")
	}
}

func TestDecodedErrorsNotCached(t *testing.T) {
	p := &Program{Name: "empty", Labels: map[string]int{}}
	if _, err := p.Decoded(Nehalem()); err == nil {
		t.Fatal("decoding an invalid program must fail")
	}
	// Fixing the program after a failed decode must succeed: errors are
	// never cached.
	p.Insts = []Inst{{Op: RET}}
	if _, err := p.Decoded(Nehalem()); err != nil {
		t.Fatalf("decode after fixing the program: %v", err)
	}
}

func TestCloneStartsWithEmptyDecodeCache(t *testing.T) {
	p := buildLoop(t)
	d1, err := p.Decoded(Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	d2, err := q.Decoded(Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Error("clone shared the original's cached decode")
	}
	if d2.Prog != q {
		t.Error("clone's decode points at the wrong program")
	}
}
