package isa

import (
	"fmt"
	"strings"
)

// Inst is one decoded instruction. Operands are stored in AT&T order
// (sources first, destination last) in A, B, C; NOps gives how many are
// valid. For branches, Target holds the resolved index of the destination
// instruction within the program (-1 if unresolved).
type Inst struct {
	Op      Op
	A, B, C Operand
	NOps    int
	Target  int
}

// Operand returns the i-th operand.
func (in *Inst) Operand(i int) Operand {
	switch i {
	case 0:
		return in.A
	case 1:
		return in.B
	case 2:
		return in.C
	}
	return Operand{}
}

// Dst returns the destination operand (the last one), or a NoOperand if the
// instruction has none.
func (in *Inst) Dst() Operand {
	if in.NOps == 0 {
		return Operand{}
	}
	return in.Operand(in.NOps - 1)
}

// MemOperand returns the memory operand of the instruction and whether the
// memory access is a store (memory is the destination). The subset has at
// most one memory operand per instruction, as real x86 SSE does.
func (in *Inst) MemOperand() (mem MemRef, isStore, ok bool) {
	for i := 0; i < in.NOps; i++ {
		op := in.Operand(i)
		if op.Kind == MemOperand {
			if in.Op == LEA {
				// LEA only computes the address; no access.
				return MemRef{}, false, false
			}
			return op.Mem, i == in.NOps-1, true
		}
	}
	return MemRef{}, false, false
}

// IsLoad reports whether the instruction reads memory.
func (in *Inst) IsLoad() bool {
	_, st, ok := in.MemOperand()
	return ok && !st
}

// IsStore reports whether the instruction writes memory.
func (in *Inst) IsStore() bool {
	_, st, ok := in.MemOperand()
	return ok && st
}

func (in *Inst) String() string {
	var ops []string
	for i := 0; i < in.NOps; i++ {
		ops = append(ops, in.Operand(i).String())
	}
	if len(ops) == 0 {
		return in.Op.String()
	}
	return in.Op.String() + " " + strings.Join(ops, ", ")
}

// Program is a decoded kernel: a named entry point plus a linear instruction
// stream with resolved branch targets. This is what MicroLauncher executes
// ("At execution time, the launcher compiles the kernel code ... loaded at
// run-time", §4.1 — here, compiled into this form by internal/asm).
type Program struct {
	Name   string
	Insts  []Inst
	Labels map[string]int

	// dcache memoizes the per-microarchitecture µop decode (see Decoded).
	// Lazily filled, safe for concurrent use; Clone starts empty.
	dcache decodeCache
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Insts: append([]Inst(nil), p.Insts...), Labels: map[string]int{}}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	return q
}

// Resolve fills in branch Target indices from label operands. It returns an
// error for a branch to an unknown label.
func (p *Program) Resolve() error {
	for i := range p.Insts {
		in := &p.Insts[i]
		in.Target = -1
		if !in.Op.IsBranch() {
			continue
		}
		if in.NOps != 1 || in.A.Kind != LabelOperand {
			return fmt.Errorf("isa: %s at %d: branch needs a single label operand", in.Op, i)
		}
		t, ok := p.Labels[in.A.Label]
		if !ok {
			return fmt.Errorf("isa: %s at %d: undefined label %q", in.Op, i, in.A.Label)
		}
		in.Target = t
	}
	return nil
}

// Validate checks structural invariants the rest of the system relies on:
// resolved branches, a RET-terminated stream, supported operand shapes, and
// no functional loads into general-purpose registers (the timing model
// tracks integer state in registers only; MicroCreator never emits such
// loads and the paper's kernels keep loop state in registers).
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	sawRet := false
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op == RET {
			sawRet = true
		}
		if in.Op.IsBranch() && in.Target < 0 {
			return fmt.Errorf("isa: program %q: unresolved branch at %d (%s)", p.Name, i, in)
		}
		if in.Op.IsBranch() && (in.Target < 0 || in.Target >= len(p.Insts)) {
			return fmt.Errorf("isa: program %q: branch target out of range at %d", p.Name, i)
		}
		if in.Op == MOV && in.NOps == 2 && in.A.IsMem() && in.B.IsReg() && in.B.Reg.IsGPR() {
			return fmt.Errorf("isa: program %q at %d: GPR load from memory is outside the subset (%s)", p.Name, i, in)
		}
		mem, _, hasMem := in.MemOperand()
		if hasMem {
			if mem.Base == NoReg && mem.Index == NoReg {
				return fmt.Errorf("isa: program %q at %d: absolute memory operand unsupported (%s)", p.Name, i, in)
			}
			if mem.Index != NoReg {
				switch mem.Scale {
				case 1, 2, 4, 8:
				default:
					return fmt.Errorf("isa: program %q at %d: bad scale %d", p.Name, i, mem.Scale)
				}
			}
		}
	}
	if !sawRet {
		return fmt.Errorf("isa: program %q has no ret", p.Name)
	}
	return nil
}

// Stats summarizes the static instruction mix of a program; used by tests
// and by the launcher's verbose mode.
type Stats struct {
	Total, Loads, Stores, SSEArith, IntALU, Branches int
}

// StaticStats counts the static instruction mix.
func (p *Program) StaticStats() Stats {
	var s Stats
	for i := range p.Insts {
		in := &p.Insts[i]
		s.Total++
		switch {
		case in.IsLoad():
			s.Loads++
		case in.IsStore():
			s.Stores++
		}
		switch {
		case in.Op.IsBranch():
			s.Branches++
		case in.Op.IsSSE() && !in.Op.IsMove():
			s.SSEArith++
		case !in.Op.IsSSE() && in.Op != RET && in.Op != NOP:
			s.IntALU++
		}
	}
	return s
}
