package isa

import (
	"fmt"
	"strings"
)

// Op is an opcode in the MicroTools x86-64 subset.
type Op uint8

const (
	NOP Op = iota

	// SSE data movement (the instructions the paper studies in §5.1).
	MOVSS  // scalar single, 4 bytes
	MOVSD  // scalar double, 8 bytes
	MOVAPS // packed single aligned, 16 bytes
	MOVAPD // packed double aligned, 16 bytes
	MOVUPS // packed single unaligned, 16 bytes
	MOVUPD // packed double unaligned, 16 bytes

	// SSE arithmetic (matmul kernel, arithmetic-hiding studies §3.5).
	ADDSS
	ADDSD
	ADDPS
	ADDPD
	MULSS
	MULSD
	MULPS
	MULPD
	XORPS // idiomatic XMM zeroing

	// Integer / control.
	MOV // GPR move (reg/imm/mem)
	LEA // address computation
	ADD // also "addq"
	SUB // also "subq"
	INC
	DEC
	IMUL
	SHL
	XOR
	AND
	CMP // also "cmpl"
	TEST

	// Branches.
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE

	RET

	numOps
)

var opNames = map[Op]string{
	NOP:   "nop",
	MOVSS: "movss", MOVSD: "movsd",
	MOVAPS: "movaps", MOVAPD: "movapd", MOVUPS: "movups", MOVUPD: "movupd",
	ADDSS: "addss", ADDSD: "addsd", ADDPS: "addps", ADDPD: "addpd",
	MULSS: "mulss", MULSD: "mulsd", MULPS: "mulps", MULPD: "mulpd",
	XORPS: "xorps",
	MOV:   "mov", LEA: "lea", ADD: "add", SUB: "sub", INC: "inc", DEC: "dec",
	IMUL: "imul", SHL: "shl", XOR: "xor", AND: "and", CMP: "cmp", TEST: "test",
	JMP: "jmp", JE: "je", JNE: "jne", JL: "jl", JLE: "jle", JG: "jg", JGE: "jge",
	RET: "ret",
}

// String returns the AT&T mnemonic (without size suffix).
func (op Op) String() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(op))
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// ParseOp parses a mnemonic, tolerating the AT&T size suffixes that GCC and
// the paper's listings use (addq, subq, cmpl, movq, sall, ...).
func ParseOp(mnemonic string) (Op, error) {
	n := strings.ToLower(strings.TrimSpace(mnemonic))
	if op, ok := opByName[n]; ok {
		return op, nil
	}
	// Strip a size suffix (b/w/l/q) and retry for integer mnemonics. SSE
	// mnemonics never carry suffixes, and all of them end in letters that
	// are also valid suffixes (movss ends in 's'... 's' is not a suffix,
	// but e.g. "movsd" must not become "movs"+d), so only retry when the
	// stripped form is a known integer op.
	if len(n) > 1 {
		switch n[len(n)-1] {
		case 'b', 'w', 'l', 'q':
			if op, ok := opByName[n[:len(n)-1]]; ok && !op.IsSSE() {
				return op, nil
			}
		}
	}
	if n == "sal" || n == "sall" || n == "salq" {
		return SHL, nil
	}
	return NOP, fmt.Errorf("isa: unknown mnemonic %q", mnemonic)
}

// IsSSE reports whether op operates on XMM registers.
func (op Op) IsSSE() bool {
	return op >= MOVSS && op <= XORPS
}

// IsBranch reports whether op is a control transfer (conditional or not).
func (op Op) IsBranch() bool { return op >= JMP && op <= JGE }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return op > JMP && op <= JGE }

// IsMove reports whether op is a pure data move (SSE or GPR).
func (op Op) IsMove() bool {
	switch op {
	case MOVSS, MOVSD, MOVAPS, MOVAPD, MOVUPS, MOVUPD, MOV:
		return true
	}
	return false
}

// MemWidth returns the number of bytes a memory operand of op touches.
func (op Op) MemWidth() int {
	switch op {
	case MOVSS, ADDSS, MULSS:
		return 4
	case MOVSD, ADDSD, MULSD:
		return 8
	case MOVAPS, MOVAPD, MOVUPS, MOVUPD,
		ADDPS, ADDPD, MULPS, MULPD, XORPS:
		return 16
	case MOV, ADD, SUB, CMP, LEA, IMUL, AND, XOR, TEST, INC, DEC, SHL:
		return 8
	}
	return 0
}

// RequiresAlignment reports whether a memory operand of op must be aligned
// to its width (the aligned packed moves fault on unaligned addresses;
// MicroLauncher's allocator honours this, and the alignment studies of
// §5.2.2 sweep only legal offsets for such kernels).
func (op Op) RequiresAlignment() bool {
	switch op {
	case MOVAPS, MOVAPD, ADDPS, ADDPD, MULPS, MULPD:
		return true
	}
	return false
}

// WritesFlags reports whether op updates RFLAGS.
func (op Op) WritesFlags() bool {
	switch op {
	case ADD, SUB, INC, DEC, IMUL, SHL, XOR, AND, CMP, TEST:
		return true
	}
	return false
}

// ReadsFlags reports whether op consumes RFLAGS.
func (op Op) ReadsFlags() bool { return op.IsCondBranch() }
