package isa

import (
	"fmt"
	"strings"
)

// Print renders a decoded program back to AT&T assembly text that
// internal/asm re-parses to an identical program — the inverse of the
// assembly front end, used for dumping kernels out of the launcher and for
// round-trip testing.
func (p *Program) Print() string {
	// Labels by target index (invert the map; multiple labels per index
	// are emitted in sorted order for determinism).
	labelsAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelsAt[idx] = append(labelsAt[idx], name)
	}
	for _, names := range labelsAt {
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "    .text\n    .globl %s\n%s:\n", p.Name, p.Name)
	for i := range p.Insts {
		for _, l := range labelsAt[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "    %s\n", p.Insts[i].String())
	}
	for _, l := range labelsAt[len(p.Insts)] {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}
