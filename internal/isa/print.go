package isa

import (
	"fmt"
	"strconv"
)

// Print renders a decoded program back to AT&T assembly text that
// internal/asm re-parses to an identical program — the inverse of the
// assembly front end, used for dumping kernels out of the launcher and for
// round-trip testing.
func (p *Program) Print() string {
	return string(p.AppendPrint(make([]byte, 0, 64+32*len(p.Insts))))
}

// AppendPrint appends the Print rendering of the program to dst and returns
// the extended slice. It is the allocation-free form of Print: the campaign
// engine streams the canonical rendering through its cache-key hash from a
// pooled buffer, so the bytes produced here are part of the on-disk cache
// contract and must never change for an unchanged program.
func (p *Program) AppendPrint(dst []byte) []byte {
	// Labels by target index; multiple labels per index are emitted in
	// sorted name order for determinism, indices outside [0, len(Insts)]
	// are dropped. The fixed-size backing array covers generated kernels
	// (one loop label) without allocating.
	type labelAt struct {
		idx  int
		name string
	}
	var stack [4]labelAt
	labels := stack[:0]
	for name, idx := range p.Labels {
		if idx < 0 || idx > len(p.Insts) {
			continue
		}
		labels = append(labels, labelAt{idx, name})
	}
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && (labels[j].idx < labels[j-1].idx ||
			(labels[j].idx == labels[j-1].idx && labels[j].name < labels[j-1].name)); j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
	dst = append(dst, "    .text\n    .globl "...)
	dst = append(dst, p.Name...)
	dst = append(dst, '\n')
	dst = append(dst, p.Name...)
	dst = append(dst, ":\n"...)
	li := 0
	for i := range p.Insts {
		for li < len(labels) && labels[li].idx == i {
			dst = append(dst, labels[li].name...)
			dst = append(dst, ":\n"...)
			li++
		}
		dst = append(dst, "    "...)
		dst = p.Insts[i].appendString(dst)
		dst = append(dst, '\n')
	}
	for ; li < len(labels); li++ {
		dst = append(dst, labels[li].name...)
		dst = append(dst, ":\n"...)
	}
	return dst
}

// appendString is Inst.String in append form; the two must render
// identically (String is defined in terms of the same operand renderings).
func (in *Inst) appendString(dst []byte) []byte {
	dst = append(dst, in.Op.String()...)
	for i := 0; i < in.NOps; i++ {
		if i == 0 {
			dst = append(dst, ' ')
		} else {
			dst = append(dst, ", "...)
		}
		dst = in.Operand(i).appendString(dst)
	}
	return dst
}

// appendString is Operand.String in append form.
func (o Operand) appendString(dst []byte) []byte {
	switch o.Kind {
	case NoOperand:
		return dst
	case RegOperand:
		return o.Reg.appendString(dst)
	case ImmOperand:
		dst = append(dst, '$')
		return strconv.AppendInt(dst, o.Imm, 10)
	case MemOperand:
		return o.Mem.appendString(dst)
	case LabelOperand:
		return append(dst, o.Label...)
	}
	return fmt.Appendf(dst, "operand(%d)", int(o.Kind))
}

// appendString is MemRef.String in append form.
func (m MemRef) appendString(dst []byte) []byte {
	if m.Disp != 0 {
		dst = strconv.AppendInt(dst, m.Disp, 10)
	}
	dst = append(dst, '(')
	if m.Base != NoReg {
		dst = m.Base.appendString(dst)
	}
	if m.Index != NoReg {
		dst = append(dst, ',')
		dst = m.Index.appendString(dst)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, m.Scale, 10)
	}
	return append(dst, ')')
}

// appendString is Reg.String in append form.
func (r Reg) appendString(dst []byte) []byte {
	switch {
	case r.IsGPR():
		dst = append(dst, '%')
		return append(dst, gprNames[r]...)
	case r.IsXMM():
		dst = append(dst, "%xmm"...)
		return strconv.AppendInt(dst, int64(r-XMM0), 10)
	case r == RIP:
		return append(dst, "%rip"...)
	case r == RFLAGS:
		return append(dst, "%rflags"...)
	case r == NoReg:
		return append(dst, "%none"...)
	}
	return fmt.Appendf(dst, "%%reg(%d)", int(r))
}
