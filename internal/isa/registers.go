// Package isa defines the x86-64 subset MicroTools generates and executes:
// architectural registers, opcodes, operands, decoded programs, and the
// per-microarchitecture instruction timing tables (µop decomposition, port
// sets, latencies) consumed by the CPU timing model.
//
// The subset covers everything MicroCreator emits (SSE moves and arithmetic,
// integer induction updates, compare-and-branch loops, Figs. 2, 6, 8, 9 of
// the paper) and everything the matrix-multiply motivation study needs.
package isa

import (
	"fmt"
	"strings"
)

// Reg identifies an architectural register. General-purpose registers come
// first, then the XMM vector registers, then the pseudo-registers used by the
// timing model (RIP and FLAGS).
type Reg uint8

// General-purpose registers (64-bit names; 32-bit forms alias onto them).
const (
	RAX Reg = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
	RIP
	RFLAGS
	// NumRegs is the total number of register slots tracked by the
	// dependence model.
	NumRegs
	// NoReg marks an absent register (e.g. a memory operand without an
	// index register).
	NoReg Reg = 255
)

// IsGPR reports whether r is one of the 16 general-purpose registers.
func (r Reg) IsGPR() bool { return r < XMM0 }

// IsXMM reports whether r is one of the 16 XMM vector registers.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

var gprNames = [...]string{
	"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// 32-bit aliases, indexed like gprNames.
var gpr32Names = [...]string{
	"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}

// String returns the AT&T syntax name of the register (with % prefix).
func (r Reg) String() string {
	switch {
	case r.IsGPR():
		return "%" + gprNames[r]
	case r.IsXMM():
		return fmt.Sprintf("%%xmm%d", int(r-XMM0))
	case r == RIP:
		return "%rip"
	case r == RFLAGS:
		return "%rflags"
	case r == NoReg:
		return "%none"
	}
	return fmt.Sprintf("%%reg(%d)", int(r))
}

// Name32 returns the 32-bit alias of a general-purpose register (e.g.
// "%eax" for RAX). For non-GPRs it falls back to String.
func (r Reg) Name32() string {
	if r.IsGPR() {
		return "%" + gpr32Names[r]
	}
	return r.String()
}

// ParseReg parses an AT&T register name, with or without the % prefix.
// Both 64-bit and 32-bit GPR names are accepted; 32-bit names alias their
// 64-bit register (the paper's Fig. 9 counts iterations in %eax, which the
// launcher reads back as the RAX slot).
func ParseReg(name string) (Reg, error) {
	n := strings.TrimPrefix(strings.TrimSpace(name), "%")
	if r, ok := regByName[n]; ok {
		return r, nil
	}
	// Slow path for unusual casing only; the table covers every lowercase
	// name, so one lookup resolves the common case without allocating.
	if r, ok := regByName[strings.ToLower(n)]; ok {
		return r, nil
	}
	return NoReg, fmt.Errorf("isa: unknown register %q", name)
}

// regByName maps every accepted lowercase register name (64-bit GPRs, 32-bit
// aliases, xmm0-15, rip) to its Reg. ParseReg is on the per-instruction hot
// path of the asm parser, which runs once per generated variant.
var regByName = func() map[string]Reg {
	m := make(map[string]Reg, 49)
	for i, g := range gprNames {
		m[g] = Reg(i)
	}
	for i, g := range gpr32Names {
		m[g] = Reg(i)
	}
	for i := 0; i < 16; i++ {
		m[fmt.Sprintf("xmm%d", i)] = XMM0 + Reg(i)
	}
	m["rip"] = RIP
	return m
}()

// Is32BitName reports whether the given textual register name (with or
// without %) is one of the 32-bit GPR aliases. MicroLauncher uses this to
// honour the paper's "the ABI determines the return value is stored in
// register %eax" convention when the spec names a 32-bit register.
func Is32BitName(name string) bool {
	n := strings.TrimPrefix(strings.ToLower(strings.TrimSpace(name)), "%")
	for _, g := range gpr32Names {
		if n == g {
			return true
		}
	}
	return false
}

// ArgRegs lists the System V AMD64 integer argument registers in order.
// MicroLauncher passes the trip count in ArgRegs[0] (%rdi) and the array
// base pointers in the following registers, matching the paper's kernel
// prototype int myFunction(int n [, void *...]).
var ArgRegs = [...]Reg{RDI, RSI, RDX, RCX, R8, R9}
