package isa

import "fmt"

// Exec functionally executes one instruction against the register file and
// returns the index of the next instruction to execute and whether a branch
// was taken. Only integer state is computed — SSE instructions affect timing
// but carry no values the control flow or address generation depend on.
//
// pc is the index of inst within its program; branches return inst.Target
// when taken.
func Exec(inst *Inst, pc int, regs *RegFile) (next int, taken bool, err error) {
	next = pc + 1
	op := inst.Op
	switch {
	case op == RET:
		return -1, false, nil
	case op == JMP:
		return inst.Target, true, nil
	case op.IsCondBranch():
		t, err := regs.CondTaken(op)
		if err != nil {
			return 0, false, err
		}
		if t {
			return inst.Target, true, nil
		}
		return next, false, nil
	case op.IsSSE():
		return next, false, nil
	case op == NOP:
		return next, false, nil
	}

	// Integer ALU forms: one or two source operands, destination last.
	srcVal := func(o Operand) (uint64, error) {
		switch o.Kind {
		case RegOperand:
			return regs.Get(o.Reg), nil
		case ImmOperand:
			return uint64(o.Imm), nil
		case MemOperand:
			if op == LEA {
				return o.Mem.EffectiveAddress(regs), nil
			}
			return 0, fmt.Errorf("isa: integer load from memory in %s", inst)
		}
		return 0, fmt.Errorf("isa: bad source operand in %s", inst)
	}

	switch op {
	case MOV:
		v, err := srcVal(inst.A)
		if err != nil {
			return 0, false, err
		}
		if dst := inst.Dst(); dst.IsReg() {
			regs.Set(dst.Reg, v)
		}
	case LEA:
		if inst.A.Kind != MemOperand || !inst.Dst().IsReg() {
			return 0, false, fmt.Errorf("isa: bad lea %s", inst)
		}
		regs.Set(inst.Dst().Reg, inst.A.Mem.EffectiveAddress(regs))
	case ADD, SUB, XOR, AND, IMUL, SHL:
		dst := inst.Dst()
		if !dst.IsReg() {
			return 0, false, fmt.Errorf("isa: %s needs register destination", inst)
		}
		var a uint64
		var err error
		if inst.NOps == 3 {
			// imul $imm, %src, %dst
			if op != IMUL {
				return 0, false, fmt.Errorf("isa: 3-operand form only for imul: %s", inst)
			}
			b, err2 := srcVal(inst.B)
			if err2 != nil {
				return 0, false, err2
			}
			a, err = srcVal(inst.A)
			if err != nil {
				return 0, false, err
			}
			regs.Set(dst.Reg, a*b)
			regs.SetFlags(int64(a * b))
			return next, false, nil
		}
		a, err = srcVal(inst.A)
		if err != nil {
			return 0, false, err
		}
		d := regs.Get(dst.Reg)
		var r uint64
		switch op {
		case ADD:
			r = d + a
		case SUB:
			r = d - a
		case XOR:
			r = d ^ a
		case AND:
			r = d & a
		case IMUL:
			r = d * a
		case SHL:
			r = d << (a & 63)
		}
		regs.Set(dst.Reg, r)
		regs.SetFlags(int64(r))
	case INC, DEC:
		dst := inst.Dst()
		if !dst.IsReg() {
			return 0, false, fmt.Errorf("isa: %s needs register destination", inst)
		}
		d := regs.Get(dst.Reg)
		if op == INC {
			d++
		} else {
			d--
		}
		regs.Set(dst.Reg, d)
		regs.SetFlags(int64(d))
	case CMP:
		// AT&T: cmp src, dst sets flags from dst - src.
		a, err := srcVal(inst.A)
		if err != nil {
			return 0, false, err
		}
		b, err := srcVal(inst.B)
		if err != nil {
			return 0, false, err
		}
		regs.SetFlags(int64(b) - int64(a))
	case TEST:
		a, err := srcVal(inst.A)
		if err != nil {
			return 0, false, err
		}
		b, err := srcVal(inst.B)
		if err != nil {
			return 0, false, err
		}
		regs.SetFlags(int64(a & b))
	default:
		return 0, false, fmt.Errorf("isa: unhandled op %s", inst)
	}
	return next, false, nil
}
