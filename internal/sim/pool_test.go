package sim

import (
	"testing"
	"time"

	"microtools/internal/asm"
	"microtools/internal/isa"
)

func parseKernel(t *testing.T, u int, name string) *isa.Program {
	t.Helper()
	p, err := asm.ParseOne(loadKernel(u), name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func jobFor(p *isa.Program, core int, elems, base uint64) Job {
	var rf isa.RegFile
	rf.Set(isa.RDI, elems-1)
	rf.Set(isa.RSI, base)
	return Job{Core: core, Prog: p, Regs: rf}
}

// within fails the test if f does not finish inside d — the harness for the
// "scheduler spins without progressing" class of regressions, which hang
// rather than fail.
func within(t *testing.T, d time.Duration, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("timed out: scheduler spun without progress")
	}
}

func TestSetNoiseValidation(t *testing.T) {
	m := testMachine(t, "nehalem-dual/8")
	good := DefaultNoise(1)
	if err := m.SetNoise(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []NoiseConfig{
		{Enabled: true},                       // zero interval used to panic in rand.Int63n
		{Enabled: true, IntervalCycles: -100}, // negative interval
		{Enabled: true, IntervalCycles: 100, CostCycles: -1},
		{Enabled: true, IntervalCycles: 100, CacheDisturbFraction: -0.1},
		{Enabled: true, IntervalCycles: 100, CacheDisturbFraction: 1.5},
	}
	for i, cfg := range bad {
		if err := m.SetNoise(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
		if m.Noise() != good {
			t.Errorf("config %d: failed SetNoise clobbered the machine's noise state", i)
		}
	}
	// The previously-panicking shape must now run, not crash.
	if _, err := m.RunOne(job(t, 0, 4, 16*100, 0x100000)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetNoise(NoiseConfig{}); err != nil {
		t.Fatalf("disabling noise: %v", err)
	}
	if m.Noise().Enabled {
		t.Error("noise still enabled after disable")
	}
}

// TestCachedDecodeAndPooledCoresBitIdentical is the tentpole invariant: a
// machine that reuses one program (cached decode, pooled cores warm) must
// produce cycle-exact the same results as one decoding a fresh clone every
// repetition.
func TestCachedDecodeAndPooledCoresBitIdentical(t *testing.T) {
	shared := parseKernel(t, 4, "k")
	sequence := func(prog func() *isa.Program, noiseSeed int64) []JobResult {
		m := testMachine(t, "nehalem-dual/8")
		if noiseSeed != 0 {
			if err := m.SetNoise(DefaultNoise(noiseSeed)); err != nil {
				t.Fatal(err)
			}
		}
		var out []JobResult
		for rep := 0; rep < 3; rep++ {
			r, err := m.RunOne(jobFor(prog(), 0, 16*200, 0x100000))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
			rs, err := m.Run([]Job{
				jobFor(prog(), 0, 16*200, 0x100000),
				jobFor(prog(), 1, 16*200, 0x200000),
			})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rs...)
		}
		return out
	}
	for _, seed := range []int64{0, 7} {
		cached := sequence(func() *isa.Program { return shared }, seed)
		fresh := sequence(func() *isa.Program { return shared.Clone() }, seed)
		if len(cached) != len(fresh) {
			t.Fatalf("seed %d: result counts differ: %d vs %d", seed, len(cached), len(fresh))
		}
		for i := range cached {
			if cached[i] != fresh[i] {
				t.Errorf("seed %d: result %d differs: cached %+v, fresh %+v",
					seed, i, cached[i], fresh[i])
			}
		}
	}
}

// TestRunStreamFollowOnLargeStartCycle is the regression for the lock-step
// window crawl: a follow-on job far in the future made RunStream spin one
// empty 64-cycle quantum at a time (~10^10 rounds for this start) instead of
// jumping the window to the job's start.
func TestRunStreamFollowOnLargeStartCycle(t *testing.T) {
	m := testMachine(t, "nehalem-dual/8")
	prog := parseKernel(t, 4, "k")
	const farFuture = int64(1) << 40
	within(t, 30*time.Second, func() {
		issued := false
		res, err := m.RunStream([]Job{jobFor(prog, 0, 16*100, 0x100000)},
			func(slot int, r JobResult) *Job {
				if issued {
					return nil
				}
				issued = true
				j := jobFor(prog, 0, 16*100, 0x100000)
				j.StartCycle = farFuture
				return &j
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 2 {
			t.Fatalf("got %d results, want 2", len(res))
		}
		if res[1].EndCycle < farFuture {
			t.Errorf("follow-on finished at %d, before its start %d", res[1].EndCycle, farFuture)
		}
	})
}

// TestRunStaggeredJobFastForward is the same window-crawl regression for Run:
// a job batch whose second job starts far in the future must fast-forward to
// it, not spin empty quanta.
func TestRunStaggeredJobFastForward(t *testing.T) {
	m := testMachine(t, "nehalem-dual/8")
	prog := parseKernel(t, 4, "k")
	const farFuture = int64(1) << 40
	within(t, 30*time.Second, func() {
		late := jobFor(prog, 1, 16*100, 0x200000)
		late.StartCycle = farFuture
		rs, err := m.Run([]Job{jobFor(prog, 0, 16*100, 0x100000), late})
		if err != nil {
			t.Fatal(err)
		}
		if rs[1].EndCycle < farFuture {
			t.Errorf("late job finished at %d, before its start %d", rs[1].EndCycle, farFuture)
		}
	})
}

func TestPinValidation(t *testing.T) {
	m := testMachine(t, "nehalem-dual/8")
	prog := parseKernel(t, 4, "k")
	if _, err := m.RunOne(jobFor(prog, -1, 16*10, 0x100000)); err == nil {
		t.Error("negative core accepted")
	}
	if _, err := m.RunOne(jobFor(prog, m.Desc.Cores, 16*10, 0x100000)); err == nil {
		t.Error("out-of-range core accepted")
	}
	if _, err := m.Run([]Job{
		jobFor(prog, 0, 16*10, 0x100000),
		jobFor(prog, 0, 16*10, 0x200000),
	}); err == nil {
		t.Error("duplicate pin accepted by Run")
	}
	if _, err := m.RunStream([]Job{
		jobFor(prog, 0, 16*10, 0x100000),
		jobFor(prog, 0, 16*10, 0x200000),
	}, func(int, JobResult) *Job { return nil }); err == nil {
		t.Error("duplicate pin accepted by RunStream")
	}
	// The failed calls must not poison the pin scratch for later runs.
	if _, err := m.RunOne(jobFor(prog, 0, 16*10, 0x100000)); err != nil {
		t.Fatalf("machine unusable after pin errors: %v", err)
	}
}
