// Package sim ties the core pipeline model (internal/cpu) and the memory
// system (internal/memsim) into a whole simulated machine: multiple cores
// advancing in bounded lock-step quanta over shared L3s and memory
// controllers, DVFS frequency points with a constant-rate TSC, and the
// environmental noise sources (timer interrupts, cold caches) whose
// suppression is MicroLauncher's whole purpose (§4.7).
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"microtools/internal/cpu"
	"microtools/internal/faults"
	"microtools/internal/isa"
	"microtools/internal/machine"
	"microtools/internal/memsim"
	"microtools/internal/obs"
	"microtools/internal/telemetry"
)

// quantum is the lock-step window in core cycles. Cores never run further
// than this apart, bounding cross-core ordering error on the shared memory
// structures.
const quantum = 64

// NoiseConfig models the "system's global environmental issues" of §4.7:
// periodic timer interrupts that steal cycles and evict cache lines.
// MicroLauncher disables them ("disables interruptions") for measured runs.
type NoiseConfig struct {
	Enabled bool
	Seed    int64
	// IntervalCycles is the mean core-cycle distance between interrupts.
	IntervalCycles int64
	// CostCycles is the stall per interrupt.
	CostCycles int64
	// CacheDisturbFraction of the core's private cache lines are evicted
	// per interrupt.
	CacheDisturbFraction float64
}

// DefaultNoise returns a noise profile that visibly perturbs unprotected
// runs (scaled to the simulator's shortened experiment lengths).
func DefaultNoise(seed int64) NoiseConfig {
	return NoiseConfig{
		Enabled:              true,
		Seed:                 seed,
		IntervalCycles:       40000,
		CostCycles:           6000,
		CacheDisturbFraction: 0.3,
	}
}

// Machine is a live simulated machine instance.
type Machine struct {
	Desc *machine.Machine
	Sys  *memsim.System

	coreGHz float64
	noise   NoiseConfig
	rng     *rand.Rand

	// span is the tracing parent for Run/RunStream spans. The zero Span
	// is the no-op default: untraced machines pay a nil check per Run
	// call and nothing else.
	span obs.Span

	// injector, when non-nil, consults the deterministic fault plan at the
	// faults.PointSimStep boundary before each Run/RunStream batch;
	// faultKey scopes the injection sites to the owning launch.
	injector *faults.Injector
	faultKey string

	// now is the machine's monotonic core-cycle clock. Warm-up traffic and
	// successive runs all advance it, so shared memory-system timestamps
	// (MSHRs, channel queues) never sit in a job's future.
	now int64

	// Live-telemetry handles (SetMetrics) and their local accumulators.
	// The accumulators are plain fields — a Machine is single-goroutine —
	// bumped on the hot paths and flushed to the shared atomic counters
	// by SetMetrics, so the RunOne fast path pays an integer add, not an
	// atomic RMW, per event (and still allocates nothing).
	instsRetired *telemetry.Counter
	poolHits     *telemetry.Counter
	poolMisses   *telemetry.Counter
	mInsts       int64
	mPoolHits    int64
	mPoolMisses  int64

	// pool holds one reusable cpu.Core per hardware core id, created
	// lazily. Run/RunStream Reset pooled cores instead of allocating
	// fresh ones, so the per-repetition simulate path is allocation-free
	// after the first launch of a kernel (see DESIGN.md, Performance).
	// Reset reinitializes every piece of core state, so no timing or
	// architectural state leaks between launches.
	pool []*cpu.Core
	// seen is the duplicate-pin scratch, sized Desc.Cores.
	seen []bool
	// Scratch slices reused across Run/RunStream calls (a Machine is not
	// safe for concurrent use; its shared memory system never was).
	runIRQ    []int64
	runCores  []*cpu.Core
	runDone   []bool
	runActive []bool
	runPins   []int
}

// New instantiates the machine at its nominal frequency with noise off.
func New(desc *machine.Machine) (*Machine, error) {
	sys, err := desc.NewSystem()
	if err != nil {
		return nil, err
	}
	return &Machine{Desc: desc, Sys: sys, coreGHz: desc.CoreGHz}, nil
}

// SetNoise configures the environmental noise sources. An enabled
// configuration is validated — the interrupt interval must be positive (it
// seeds rand.Int63n inside Run/RunStream), the per-interrupt cost
// non-negative, and the cache disturb fraction within [0, 1] — so a
// malformed caller-constructed NoiseConfig fails here instead of panicking
// mid-measurement. On error the machine's previous noise state is kept.
func (m *Machine) SetNoise(cfg NoiseConfig) error {
	if cfg.Enabled {
		if cfg.IntervalCycles <= 0 {
			return fmt.Errorf("sim: noise interval must be positive (got %d)", cfg.IntervalCycles)
		}
		if cfg.CostCycles < 0 {
			return fmt.Errorf("sim: noise cost must be non-negative (got %d)", cfg.CostCycles)
		}
		if cfg.CacheDisturbFraction < 0 || cfg.CacheDisturbFraction > 1 {
			return fmt.Errorf("sim: cache disturb fraction %g outside [0, 1]", cfg.CacheDisturbFraction)
		}
		m.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		m.rng = nil
	}
	m.noise = cfg
	return nil
}

// Noise returns the current noise configuration.
func (m *Machine) Noise() NoiseConfig { return m.noise }

// SetFaults arms (or, with a nil injector, disarms) deterministic fault
// injection at the machine's stepping boundary: every Run/RunStream batch
// consults the plan at faults.PointSimStep with key "<key>/<program>", so
// a faulted calibration run is a distinct site from a faulted kernel run.
// The launcher threads its Options.Faults through here for the duration
// of one launch.
func (m *Machine) SetFaults(in *faults.Injector, key string) {
	m.injector = in
	m.faultKey = key
}

// checkFault consults the stepping-boundary fault plan for a job batch.
func (m *Machine) checkFault(prog *isa.Program) error {
	if m.injector == nil {
		return nil
	}
	key := prog.Name
	if m.faultKey != "" {
		key = m.faultKey + "/" + prog.Name
	}
	if err := m.injector.Check(faults.PointSimStep, key); err != nil {
		return fmt.Errorf("sim: stepping %s: %w", prog.Name, err)
	}
	return nil
}

// SetMetrics arms (or, with nil, disarms) live telemetry: instructions
// retired and core-pool hit/miss counts accumulate locally and are
// pushed to met's counters on the next SetMetrics call — the launcher
// arms a machine for the duration of one launch and disarms it (which
// flushes) when the launch ends. Accumulated counts from a period with
// no handles armed are discarded rather than attributed to a later
// owner.
func (m *Machine) SetMetrics(met *telemetry.Metrics) {
	m.flushMetrics()
	if met == nil {
		m.instsRetired, m.poolHits, m.poolMisses = nil, nil, nil
		return
	}
	m.instsRetired = met.SimInstsRetired
	m.poolHits = met.SimPoolHits
	m.poolMisses = met.SimPoolMisses
}

// flushMetrics pushes the local accumulators to the armed counters (a
// nil handle drops its count) and zeroes them.
func (m *Machine) flushMetrics() {
	m.instsRetired.Add(m.mInsts)
	m.poolHits.Add(m.mPoolHits)
	m.poolMisses.Add(m.mPoolMisses)
	m.mInsts, m.mPoolHits, m.mPoolMisses = 0, 0, 0
}

// SetTraceSpan parents subsequent Run/RunStream spans under sp. The
// launcher repoints this at each protocol phase (warm-up, calibration,
// each measurement repetition) so simulator spans nest correctly; pass
// the zero Span to stop tracing.
func (m *Machine) SetTraceSpan(sp obs.Span) { m.span = sp }

// SetCoreFrequency moves every core to the given DVFS point. The uncore
// (L3, memory) stays at its own frequency — the split behind Fig. 13.
func (m *Machine) SetCoreFrequency(ghz float64) error {
	if ghz <= 0 {
		return fmt.Errorf("sim: core frequency must be positive")
	}
	m.coreGHz = ghz
	return m.Sys.SetCoreClockRatio(ghz / m.Desc.UncoreGHz)
}

// CoreFrequency returns the active core frequency in GHz.
func (m *Machine) CoreFrequency() float64 { return m.coreGHz }

// TSCCycles converts core cycles to constant-rate TSC reference cycles at
// the active frequency (rdtsc "is independent on the frequency", §5.1).
func (m *Machine) TSCCycles(coreCycles int64) float64 {
	return float64(coreCycles) * m.Desc.RefGHz / m.coreGHz
}

// Seconds converts core cycles to wall-clock seconds at the active
// frequency.
func (m *Machine) Seconds(coreCycles int64) float64 {
	return float64(coreCycles) / (m.coreGHz * 1e9)
}

// Now returns the machine's monotonic clock in core cycles.
func (m *Machine) Now() int64 { return m.now }

// Touch streams the byte range through a core's caches without pipeline
// timing — MicroLauncher's warm-up step ("the instruction and data caches
// are filled with the kernel's data by calling the benchmark function
// once", §4.5).
func (m *Machine) Touch(core int, base uint64, size int64) {
	line := m.Desc.Hierarchy.L1.LineSize
	cycle := m.now
	for off := int64(0); off < size; off += line {
		cycle = m.Sys.Load(core, base+uint64(off), 8, cycle)
	}
	m.now = cycle
}

// Job is one kernel invocation pinned to a core.
type Job struct {
	// Core is the hardware core to run on.
	Core int
	Prog *isa.Program
	// Regs is the initial architectural state (trip count in %rdi, array
	// bases in the argument registers, per §4.4).
	Regs isa.RegFile
	// MaxInsts bounds dynamic instructions (0 = unlimited).
	MaxInsts int64
	// StartCycle delays the job (fork staggering); jobs synchronize on
	// the machine clock.
	StartCycle int64
}

// JobResult reports one finished invocation.
type JobResult struct {
	cpu.Result
	// EAX is the architectural %eax/%rax at exit — the executed iteration
	// count under the §4.4 protocol.
	EAX uint64
	// EndCycle is the machine cycle at which the job finished.
	EndCycle int64
}

// core returns the pooled cpu.Core for a hardware core id, creating it on
// first use. Pooled cores are fully reinitialized by Reset, so reuse across
// Run/RunStream calls cannot leak state between launches.
func (m *Machine) core(id int) *cpu.Core {
	if m.pool == nil {
		m.pool = make([]*cpu.Core, m.Desc.Cores)
	}
	c := m.pool[id]
	if c == nil {
		c = cpu.NewCore(id, m.Desc.Arch, m.Sys)
		m.pool[id] = c
		m.mPoolMisses++
	} else {
		m.mPoolHits++
	}
	return c
}

// claimPin marks a hardware core as taken for the current call and reports
// whether it was already claimed. The scratch is cleared by resetPins.
func (m *Machine) claimPin(core int) bool {
	if m.seen == nil {
		m.seen = make([]bool, m.Desc.Cores)
	}
	if m.seen[core] {
		return false
	}
	m.seen[core] = true
	return true
}

func (m *Machine) resetPins() {
	for i := range m.seen {
		m.seen[i] = false
	}
}

// Run executes the jobs concurrently in lock-step quanta and returns their
// results in job order. Jobs on the same core are rejected.
func (m *Machine) Run(jobs []Job) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sim: no jobs")
	}
	// Fast path: a single quiet job needs no lock-step windowing.
	if len(jobs) == 1 && !m.noise.Enabled {
		r, err := m.RunOne(jobs[0])
		if err != nil {
			return nil, err
		}
		return []JobResult{r}, nil
	}
	if err := m.checkFault(jobs[0].Prog); err != nil {
		return nil, err
	}
	if m.span.Active() {
		sp := m.span.Child("sim.run").Int("jobs", int64(len(jobs)))
		startCycle := m.now
		defer func() { sp.Cycles(startCycle, m.now).End() }()
	}
	m.resetPins()
	if cap(m.runCores) < len(jobs) {
		m.runCores = make([]*cpu.Core, len(jobs))
		m.runIRQ = make([]int64, len(jobs))
		m.runDone = make([]bool, len(jobs))
	}
	cores := m.runCores[:len(jobs)]
	nextIRQ := m.runIRQ[:len(jobs)]
	for i := range jobs {
		j := &jobs[i]
		if j.Core < 0 || j.Core >= m.Desc.Cores {
			return nil, fmt.Errorf("sim: job %d pinned to core %d of %d", i, j.Core, m.Desc.Cores)
		}
		if !m.claimPin(j.Core) {
			return nil, fmt.Errorf("sim: two jobs pinned to core %d", j.Core)
		}
		start := m.now + j.StartCycle
		cores[i] = m.core(j.Core)
		if err := cores[i].Reset(j.Prog, &j.Regs, start, j.MaxInsts); err != nil {
			return nil, err
		}
		if m.noise.Enabled {
			nextIRQ[i] = start + m.noise.IntervalCycles/2 +
				m.rng.Int63n(m.noise.IntervalCycles)
		}
	}

	results := make([]JobResult, len(jobs))
	finished := m.runDone[:len(jobs)]
	for i := range finished {
		finished[i] = false
	}
	remaining := len(jobs)
	limit := m.now + quantum
	for remaining > 0 {
		progressed := false
		minFront := int64(math.MaxInt64)
		for i, c := range cores {
			if finished[i] {
				continue
			}
			if m.noise.Enabled && c.Cycle() >= nextIRQ[i] {
				c.Stall(m.noise.CostCycles)
				m.Sys.DisturbCore(jobs[i].Core, m.rng, m.noise.CacheDisturbFraction)
				nextIRQ[i] = c.Cycle() + m.noise.IntervalCycles/2 +
					m.rng.Int63n(m.noise.IntervalCycles)
			}
			before := c.Cycle()
			done, err := c.Step(limit)
			if err != nil {
				return nil, fmt.Errorf("sim: job %d: %w", i, err)
			}
			if done {
				finished[i] = true
				remaining--
				results[i] = JobResult{
					Result:   c.Result(),
					EAX:      c.Reg(isa.RAX),
					EndCycle: c.Cycle(),
				}
				m.mInsts += results[i].Insts
				if c.Cycle() > m.now {
					m.now = c.Cycle()
				}
				progressed = true
				continue
			}
			if c.Cycle() != before {
				progressed = true
			}
			if c.Cycle() < minFront {
				minFront = c.Cycle()
			}
		}
		if !progressed {
			if minFront < limit || minFront == math.MaxInt64 {
				// A core was allowed to run below the window limit and
				// still neither advanced nor finished: stepping is stuck.
				return nil, fmt.Errorf("sim: scheduler made no progress")
			}
			// Every unfinished core is waiting for the window to catch up
			// (staggered starts): jump the limit instead of spinning one
			// empty quantum at a time. Bit-identical to incremental growth
			// — no core, noise or memory event can fire in the skipped
			// windows.
			limit = minFront
		}
		limit += quantum
		if limit < 0 {
			return nil, fmt.Errorf("sim: cycle counter overflow")
		}
	}
	return results, nil
}

// RunOne is Run for a single job. A quiet (noise-free) job runs on the
// machine's pooled core without any per-call allocation — this is the
// launcher's per-repetition unit of work (BenchmarkRunOne gates it at 0
// allocs/op).
func (m *Machine) RunOne(job Job) (JobResult, error) {
	if m.noise.Enabled {
		// Noisy runs need the lock-step IRQ windowing of the general path.
		res, err := m.Run([]Job{job})
		if err != nil {
			return JobResult{}, err
		}
		return res[0], nil
	}
	if err := m.checkFault(job.Prog); err != nil {
		return JobResult{}, err
	}
	if m.span.Active() {
		sp := m.span.Child("sim.run").Int("jobs", 1)
		startCycle := m.now
		defer func() { sp.Cycles(startCycle, m.now).End() }()
	}
	if job.Core < 0 || job.Core >= m.Desc.Cores {
		return JobResult{}, fmt.Errorf("sim: job 0 pinned to core %d of %d", job.Core, m.Desc.Cores)
	}
	c := m.core(job.Core)
	if err := c.Reset(job.Prog, &job.Regs, m.now+job.StartCycle, job.MaxInsts); err != nil {
		return JobResult{}, err
	}
	if _, err := c.Step(math.MaxInt64); err != nil {
		return JobResult{}, fmt.Errorf("sim: job 0: %w", err)
	}
	res := JobResult{Result: c.Result(), EAX: c.Reg(isa.RAX), EndCycle: c.Cycle()}
	m.mInsts += res.Insts
	if res.EndCycle > m.now {
		m.now = res.EndCycle
	}
	return res, nil
}

// MaxInt64 re-exported for callers building open-ended Steps.
const MaxInt64 = math.MaxInt64

// StreamResult is one completed job of a job stream.
type StreamResult struct {
	Slot int
	JobResult
}

// RunStream executes an open-ended stream of jobs: the initial jobs run
// concurrently (one per slot, each pinned to its core), and whenever a slot
// finishes, next(slot, result) may return a follow-on job for that slot
// (started at the finishing core's cycle plus the job's StartCycle) or nil
// to retire the slot. This is how work-queue runtimes (OpenMP
// schedule(dynamic)) are simulated without serializing the queue.
func (m *Machine) RunStream(initial []Job, next func(slot int, r JobResult) *Job) ([]StreamResult, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("sim: no initial jobs")
	}
	if err := m.checkFault(initial[0].Prog); err != nil {
		return nil, err
	}
	if m.span.Active() {
		sp := m.span.Child("sim.runstream").Int("slots", int64(len(initial)))
		startCycle := m.now
		defer func() { sp.Cycles(startCycle, m.now).End() }()
	}
	m.resetPins()
	if cap(m.runCores) < len(initial) {
		m.runCores = make([]*cpu.Core, len(initial))
		m.runIRQ = make([]int64, len(initial))
		m.runDone = make([]bool, len(initial))
	}
	if cap(m.runActive) < len(initial) {
		m.runActive = make([]bool, len(initial))
		m.runPins = make([]int, len(initial))
	}
	cores := m.runCores[:len(initial)]
	nextIRQ := m.runIRQ[:len(initial)]
	active := m.runActive[:len(initial)]
	pinned := m.runPins[:len(initial)]
	for i := range initial {
		j := initial[i]
		if j.Core < 0 || j.Core >= m.Desc.Cores {
			return nil, fmt.Errorf("sim: slot %d pinned to core %d of %d", i, j.Core, m.Desc.Cores)
		}
		if !m.claimPin(j.Core) {
			return nil, fmt.Errorf("sim: two slots pinned to core %d", j.Core)
		}
		pinned[i] = j.Core
		start := m.now + j.StartCycle
		cores[i] = m.core(j.Core)
		if err := cores[i].Reset(j.Prog, &j.Regs, start, j.MaxInsts); err != nil {
			return nil, err
		}
		active[i] = true
		if m.noise.Enabled {
			nextIRQ[i] = start + m.noise.IntervalCycles/2 + m.rng.Int63n(m.noise.IntervalCycles)
		}
	}

	var results []StreamResult
	remaining := len(initial)
	limit := m.now + quantum
	for remaining > 0 {
		progressed := false
		for i, c := range cores {
			if !active[i] {
				continue
			}
			if m.noise.Enabled && c.Cycle() >= nextIRQ[i] {
				c.Stall(m.noise.CostCycles)
				m.Sys.DisturbCore(pinned[i], m.rng, m.noise.CacheDisturbFraction)
				nextIRQ[i] = c.Cycle() + m.noise.IntervalCycles/2 + m.rng.Int63n(m.noise.IntervalCycles)
			}
			before := c.Cycle()
			done, err := c.Step(limit)
			if err != nil {
				return nil, fmt.Errorf("sim: slot %d: %w", i, err)
			}
			if !done {
				if c.Cycle() != before {
					progressed = true
				}
				continue
			}
			progressed = true
			res := JobResult{Result: c.Result(), EAX: c.Reg(isa.RAX), EndCycle: c.Cycle()}
			m.mInsts += res.Insts
			results = append(results, StreamResult{Slot: i, JobResult: res})
			if res.EndCycle > m.now {
				m.now = res.EndCycle
			}
			nj := next(i, res)
			if nj == nil {
				active[i] = false
				remaining--
				continue
			}
			if nj.Core != pinned[i] {
				return nil, fmt.Errorf("sim: slot %d follow-on job moved core %d -> %d", i, pinned[i], nj.Core)
			}
			start := res.EndCycle + nj.StartCycle
			if err := c.Reset(nj.Prog, &nj.Regs, start, nj.MaxInsts); err != nil {
				return nil, err
			}
		}
		if !progressed {
			// Same guard as Run: distinguish "every live slot is waiting for
			// the lock-step window to reach its frontier" (fast-forward the
			// window — bit-identical, since no slot steps or stalls in the
			// skipped quanta) from a genuinely stuck scheduler (error out
			// instead of spinning forever). A follow-on job with a large
			// StartCycle previously made this loop spin one empty quantum at
			// a time until the window crawled up to the job's start.
			minFront := int64(math.MaxInt64)
			for i, c := range cores {
				if active[i] && c.Cycle() < minFront {
					minFront = c.Cycle()
				}
			}
			if minFront < limit || minFront == math.MaxInt64 {
				return nil, fmt.Errorf("sim: scheduler made no progress")
			}
			limit = minFront
		}
		limit += quantum
		if limit < 0 {
			return nil, fmt.Errorf("sim: cycle counter overflow")
		}
	}
	return results, nil
}
