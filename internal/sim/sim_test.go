package sim

import (
	"fmt"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/isa"
	"microtools/internal/machine"
)

func testMachine(t *testing.T, name string) *Machine {
	t.Helper()
	desc, err := machine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(desc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadKernel(u int) string {
	var b strings.Builder
	b.WriteString(".L0:\n")
	for c := 0; c < u; c++ {
		fmt.Fprintf(&b, "movaps %d(%%rsi), %%xmm%d\n", 16*c, c%8)
	}
	fmt.Fprintf(&b, "add $%d, %%rsi\n", 16*u)
	b.WriteString("add $1, %eax\n")
	fmt.Fprintf(&b, "sub $%d, %%rdi\n", 4*u)
	b.WriteString("jge .L0\nret\n")
	return b.String()
}

func job(t *testing.T, core int, u int, elems uint64, base uint64) Job {
	t.Helper()
	p, err := asm.ParseOne(loadKernel(u), fmt.Sprintf("k%d", core))
	if err != nil {
		t.Fatal(err)
	}
	var rf isa.RegFile
	rf.Set(isa.RDI, elems-1)
	rf.Set(isa.RSI, base)
	return Job{Core: core, Prog: p, Regs: rf}
}

func TestMachineByNameAndScaling(t *testing.T) {
	for _, n := range []string{"nehalem-dual", "nehalem-quad", "sandybridge"} {
		if _, err := machine.ByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if _, err := machine.ByName(n + "/8"); err != nil {
			t.Errorf("%s/8: %v", n, err)
		}
	}
	if _, err := machine.ByName("pentium4"); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := machine.ByName("sandybridge/3"); err == nil {
		t.Error("non-power-of-two scale accepted")
	}
	m, _ := machine.ByName("nehalem-dual/8")
	base, _ := machine.ByName("nehalem-dual")
	if m.Hierarchy.L1.Size*8 != base.Hierarchy.L1.Size {
		t.Error("scaling did not divide L1")
	}
	if m.Hierarchy.L1.Latency != base.Hierarchy.L1.Latency {
		t.Error("scaling changed latency")
	}
}

func TestSingleJobRuns(t *testing.T) {
	m := testMachine(t, "nehalem-dual/8")
	res, err := m.RunOne(job(t, 0, 8, 32*1000, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	if res.EAX != 1000 {
		t.Errorf("eax = %d, want 1000 iterations", res.EAX)
	}
	if res.Cycles <= 0 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() JobResult {
		m := testMachine(t, "nehalem-dual/8")
		res, err := m.RunOne(job(t, 0, 4, 16*500, 0x100000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestMultiCoreContention reproduces the Fig. 14 mechanism end to end: the
// same RAM-resident kernel on many cores is slower per core than alone.
func TestMultiCoreContention(t *testing.T) {
	desc, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		t.Fatal(err)
	}
	perCore := func(n int) float64 {
		m, err := New(desc)
		if err != nil {
			t.Fatal(err)
		}
		size := desc.Hierarchy.L3.Size * 2
		elems := uint64(size / 4)
		var jobs []Job
		for c := 0; c < n; c++ {
			base := uint64(0x10000000) + uint64(c)*uint64(size)*2
			m.Touch(c, base, size) // warm what fits
			jobs = append(jobs, job(t, c, 8, elems, base))
		}
		rs, err := m.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for _, r := range rs {
			cpi := float64(r.Cycles) / float64(r.EAX)
			if cpi > worst {
				worst = cpi
			}
		}
		return worst
	}
	one := perCore(1)
	twelve := perCore(12)
	if twelve < one*1.5 {
		t.Errorf("12-core cycles/iter %.1f not clearly above 1-core %.1f", twelve, one)
	}
}

// TestFrequencyDomains reproduces Fig. 13's mechanism: in TSC cycles, an
// L1-resident kernel slows down when the core clock drops, while a
// RAM-resident kernel stays roughly constant.
func TestFrequencyDomains(t *testing.T) {
	desc, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		t.Fatal(err)
	}
	tscPerIter := func(ghz float64, footprint int64) float64 {
		m, err := New(desc)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetCoreFrequency(ghz); err != nil {
			t.Fatal(err)
		}
		elems := uint64(footprint / 4)
		base := uint64(0x100000)
		m.Touch(0, base, footprint)
		res, err := m.RunOne(job(t, 0, 8, elems, base))
		if err != nil {
			t.Fatal(err)
		}
		return m.TSCCycles(res.Cycles) / float64(res.EAX)
	}
	l1 := desc.Hierarchy.L1.Size / 2
	ram := desc.Hierarchy.L3.Size * 4

	l1Fast := tscPerIter(2.67, l1)
	l1Slow := tscPerIter(1.60, l1)
	if l1Slow < l1Fast*1.3 {
		t.Errorf("L1 kernel TSC/iter at 1.6GHz (%.2f) not clearly above 2.67GHz (%.2f)", l1Slow, l1Fast)
	}
	ramFast := tscPerIter(2.67, ram)
	ramSlow := tscPerIter(1.60, ram)
	ratio := ramSlow / ramFast
	if ratio > 1.25 || ratio < 0.75 {
		t.Errorf("RAM kernel TSC/iter changed %.2fx across frequencies, want ~constant", ratio)
	}
}

// TestNoiseIncreasesVarianceAndProtocolSuppressesIt is the §4.7 stability
// claim: with noise on, repeated runs vary; with noise off (MicroLauncher's
// protocol), they are identical.
func TestNoiseIncreasesVarianceAndProtocolSuppressesIt(t *testing.T) {
	desc, err := machine.ByName("nehalem-dual/8")
	if err != nil {
		t.Fatal(err)
	}
	runs := func(noise bool, seed int64) []int64 {
		var out []int64
		for rep := 0; rep < 4; rep++ {
			m, err := New(desc)
			if err != nil {
				t.Fatal(err)
			}
			if noise {
				if err := m.SetNoise(DefaultNoise(seed + int64(rep))); err != nil {
					t.Fatal(err)
				}
			}
			res, err := m.RunOne(job(t, 0, 4, 16*4000, 0x100000))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Cycles)
		}
		return out
	}
	quiet := runs(false, 0)
	for _, c := range quiet[1:] {
		if c != quiet[0] {
			t.Errorf("quiet runs differ: %v", quiet)
		}
	}
	noisy := runs(true, 7)
	varies := false
	for _, c := range noisy[1:] {
		if c != noisy[0] {
			varies = true
		}
	}
	if !varies {
		t.Errorf("noisy runs identical: %v", noisy)
	}
	if noisy[0] <= quiet[0] {
		t.Errorf("noise did not cost cycles: noisy %d vs quiet %d", noisy[0], quiet[0])
	}
}

func TestRunRejectsBadPinning(t *testing.T) {
	m := testMachine(t, "sandybridge/8")
	j := job(t, 0, 1, 64, 0x100000)
	if _, err := m.Run([]Job{j, j}); err == nil {
		t.Error("two jobs on one core accepted")
	}
	j2 := job(t, 99, 1, 64, 0x100000)
	if _, err := m.Run([]Job{j2}); err == nil {
		t.Error("core 99 on a 4-core machine accepted")
	}
	if _, err := m.Run(nil); err == nil {
		t.Error("empty job list accepted")
	}
	if err := m.SetCoreFrequency(-1); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestTSCAndSecondsConversions(t *testing.T) {
	m := testMachine(t, "nehalem-dual")
	if err := m.SetCoreFrequency(1.335); err != nil { // half nominal
		t.Fatal(err)
	}
	if got := m.TSCCycles(1000); got != 2000 {
		t.Errorf("TSC cycles = %v, want 2000 (half frequency doubles reference count)", got)
	}
	sec := m.Seconds(1335)
	if sec < 0.99e-6 || sec > 1.01e-6 {
		t.Errorf("seconds = %v, want ~1µs", sec)
	}
}

// TestRunStreamChainsJobs: follow-on jobs run on the finishing core and
// their results accumulate in completion order.
func TestRunStreamChainsJobs(t *testing.T) {
	m := testMachine(t, "sandybridge/8")
	handed := 0
	initial := []Job{job(t, 0, 1, 256, 0x100000), job(t, 1, 1, 256, 0x200000)}
	rs, err := m.RunStream(initial, func(slot int, r JobResult) *Job {
		if handed >= 4 {
			return nil
		}
		handed++
		j := job(t, slot, 1, 256, uint64(0x300000+handed*0x10000))
		j.Core = initial[slot].Core
		return &j
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 initial + 4 follow-ons.
	if len(rs) != 6 {
		t.Fatalf("results = %d, want 6", len(rs))
	}
	var prev int64
	for _, r := range rs {
		if r.EndCycle < prev {
			t.Errorf("results not in completion order: %d after %d", r.EndCycle, prev)
		}
		prev = r.EndCycle
		if r.EAX == 0 {
			t.Error("job did not run")
		}
	}
}

// TestRunStreamRejectsCoreMigration: a follow-on job must stay on its slot's
// core.
func TestRunStreamRejectsCoreMigration(t *testing.T) {
	m := testMachine(t, "sandybridge/8")
	first := true
	_, err := m.RunStream([]Job{job(t, 0, 1, 128, 0x100000)}, func(slot int, r JobResult) *Job {
		if !first {
			return nil
		}
		first = false
		j := job(t, 2, 1, 128, 0x200000) // wrong core
		return &j
	})
	if err == nil {
		t.Error("core migration accepted")
	}
}

// TestRunStreamDeterminism: identical streams produce identical results.
func TestRunStreamDeterminism(t *testing.T) {
	run := func() []StreamResult {
		m := testMachine(t, "nehalem-dual/8")
		n := 0
		rs, err := m.RunStream(
			[]Job{job(t, 0, 2, 512, 0x100000), job(t, 1, 2, 512, 0x200000)},
			func(slot int, r JobResult) *Job {
				if n >= 3 {
					return nil
				}
				n++
				j := job(t, slot, 2, 512, uint64(0x400000+n*0x20000))
				j.Core = slot
				return &j
			})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
