// Package openmp models the OpenMP work-sharing runtime of §5.2.3: a
// parallel-for region that statically chunks a trip count across pinned
// threads, pays a fork cost to wake the team, runs the chunks concurrently
// on the simulated cores, and joins at a barrier.
//
// The model captures what the paper's Figs. 17-18 and Table 2 measure: the
// parallel setup overhead that swamps unrolling gains ("Unrolling achieves
// a significant performance gain for the sequential version. It is not true
// in the OpenMP setting due to the overhead of the parallel setup") and the
// array-size-dependent speedup (cache-resident chunks scale; RAM-resident
// chunks hit the shared memory bandwidth).
package openmp

import (
	"fmt"

	"microtools/internal/cpu"
	"microtools/internal/sim"
)

// Config parameterizes the runtime model. Costs are in core cycles.
type Config struct {
	Threads int
	// ForkCycles is the master's cost to wake the team (libgomp-style
	// team startup, roughly constant).
	ForkCycles int64
	// WakeupPerThread staggers thread starts: thread t begins
	// ForkCycles + t*WakeupPerThread after region entry.
	WakeupPerThread int64
	// JoinCycles is the barrier cost at region exit, paid once plus a
	// small per-thread term (tree barrier).
	JoinCycles    int64
	JoinPerThread int64
	// StaticChunking selects schedule(static) (the default, one
	// contiguous chunk per thread). When false, ParallelFor runs
	// schedule(dynamic): chunks of ChunkElements are handed to the
	// earliest-free thread, each paying DispatchCycles for the shared
	// work-queue access.
	StaticChunking bool
	ChunkElements  int64
	DispatchCycles int64
}

// DefaultConfig mirrors a libgomp static-schedule parallel-for on a busy
// system: tens of microseconds of region overhead.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:         threads,
		ForkCycles:      12000,
		WakeupPerThread: 2500,
		JoinCycles:      4000,
		JoinPerThread:   800,
		StaticChunking:  true,
		ChunkElements:   1024,
		DispatchCycles:  150,
	}
}

// MakeJob builds the simulation job for one thread's chunk:
// [chunkStart, chunkStart+chunkLen) in elements.
type MakeJob func(thread int, chunkStart, chunkLen int64) (sim.Job, error)

// Result reports one parallel region execution.
type Result struct {
	// RegionCycles is the wall time of the whole region (fork + slowest
	// thread + join), in core cycles.
	RegionCycles int64
	// ThreadCycles are the per-thread busy times.
	ThreadCycles []int64
	// Iterations is the summed loop-iteration count across threads (the
	// team-wide %eax total under the §4.4 protocol).
	Iterations uint64
	// Insts and Mix aggregate the team's dynamic instructions.
	Insts int64
	Mix   cpu.Mix
	// Cycles is the summed per-thread busy time (the CPI denominator for
	// simulated-PMU counter export; RegionCycles is wall time).
	Cycles int64
	// Mispredicts, FrontendStalls and IRQStalls aggregate the team's
	// pipeline counters (see cpu.Result).
	Mispredicts    int64
	FrontendStalls int64
	IRQStalls      int64
	// Truncated reports any thread hitting its instruction budget.
	Truncated bool
}

// addResult folds one thread invocation's pipeline counters into the
// region aggregate.
func (r *Result) addResult(jr cpu.Result) {
	r.Insts += jr.Insts
	r.Mix.Add(jr.Mix)
	r.Cycles += jr.Cycles
	r.Mispredicts += jr.Mispredicts
	r.FrontendStalls += jr.FrontendStalls
	r.IRQStalls += jr.IRQStalls
	if jr.Truncated {
		r.Truncated = true
	}
}

// ParallelFor executes one parallel-for region with the configured
// schedule.
func ParallelFor(m *sim.Machine, cfg Config, pins []int, trip int64, mk MakeJob) (*Result, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("openmp: need at least one thread")
	}
	if len(pins) < cfg.Threads {
		return nil, fmt.Errorf("openmp: %d threads but %d pinned cores", cfg.Threads, len(pins))
	}
	if trip <= 0 {
		return nil, fmt.Errorf("openmp: non-positive trip count %d", trip)
	}
	if !cfg.StaticChunking {
		return parallelForDynamic(m, cfg, pins, trip, mk)
	}
	t := int64(cfg.Threads)
	jobs := make([]sim.Job, 0, cfg.Threads)
	// Static chunking: floor(n/T) per thread, the first n%T threads get
	// one extra element.
	base := trip / t
	extra := trip % t
	start := int64(0)
	for i := 0; i < cfg.Threads; i++ {
		chunk := base
		if int64(i) < extra {
			chunk++
		}
		if chunk == 0 {
			continue
		}
		job, err := mk(i, start, chunk)
		if err != nil {
			return nil, err
		}
		job.StartCycle = cfg.ForkCycles + int64(i)*cfg.WakeupPerThread
		jobs = append(jobs, job)
		start += chunk
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("openmp: empty team")
	}
	entry := m.Now()
	rs, err := m.Run(jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{ThreadCycles: make([]int64, len(rs))}
	var maxEnd int64
	for i, r := range rs {
		res.ThreadCycles[i] = r.Cycles
		res.Iterations += r.EAX
		res.addResult(r.Result)
		if r.EndCycle > maxEnd {
			maxEnd = r.EndCycle
		}
	}
	// Region wall time: from region entry (machine clock at submission,
	// which the fork offsets are relative to) to the last thread's
	// completion, plus the join barrier.
	res.RegionCycles = (maxEnd - entry) + cfg.JoinCycles + int64(len(rs))*cfg.JoinPerThread
	return res, nil
}

// parallelForDynamic models schedule(dynamic): fixed-size chunks are handed
// out from a shared queue to whichever thread frees up first, each grab
// paying DispatchCycles. The simulation streams follow-on chunks onto
// finishing cores (sim.RunStream), so threads overlap and rebalance around
// perturbed peers — exactly what static scheduling cannot do.
func parallelForDynamic(m *sim.Machine, cfg Config, pins []int, trip int64, mk MakeJob) (*Result, error) {
	chunkSize := cfg.ChunkElements
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	dispatch := cfg.DispatchCycles
	res := &Result{ThreadCycles: make([]int64, cfg.Threads)}

	nextStart := int64(0)
	grab := func() (start, n int64, ok bool) {
		if nextStart >= trip {
			return 0, 0, false
		}
		start = nextStart
		n = chunkSize
		if start+n > trip {
			n = trip - start
		}
		nextStart += n
		return start, n, true
	}

	entry := m.Now()
	initial := make([]sim.Job, 0, cfg.Threads)
	slots := 0
	for t := 0; t < cfg.Threads; t++ {
		start, n, ok := grab()
		if !ok {
			break
		}
		job, err := mk(t, start, n)
		if err != nil {
			return nil, err
		}
		job.Core = pins[t]
		job.StartCycle = cfg.ForkCycles + int64(t)*cfg.WakeupPerThread + dispatch
		initial = append(initial, job)
		slots++
	}
	if slots == 0 {
		return nil, fmt.Errorf("openmp: empty team")
	}
	var nextErr error
	rs, err := m.RunStream(initial, func(slot int, r sim.JobResult) *sim.Job {
		start, n, ok := grab()
		if !ok || nextErr != nil {
			return nil
		}
		job, err := mk(slot, start, n)
		if err != nil {
			nextErr = err
			return nil
		}
		job.Core = pins[slot]
		job.StartCycle = dispatch
		return &job
	})
	if err != nil {
		return nil, err
	}
	if nextErr != nil {
		return nil, nextErr
	}
	var last int64
	for _, r := range rs {
		res.ThreadCycles[r.Slot] += r.Cycles
		res.Iterations += r.EAX
		res.addResult(r.Result)
		if r.EndCycle > last {
			last = r.EndCycle
		}
	}
	res.RegionCycles = (last - entry) + cfg.JoinCycles + int64(cfg.Threads)*cfg.JoinPerThread
	return res, nil
}
