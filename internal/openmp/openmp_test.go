package openmp

import (
	"fmt"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/isa"
	"microtools/internal/machine"
	"microtools/internal/sim"
)

func testMachine(t *testing.T) *sim.Machine {
	t.Helper()
	desc, err := machine.ByName("sandybridge/8")
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(desc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadKernel(t *testing.T) *isa.Program {
	t.Helper()
	src := `
.L0:
movss (%rsi), %xmm0
add $4, %rsi
add $1, %eax
sub $1, %rdi
jge .L0
ret`
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mkJob(t *testing.T, m *sim.Machine, prog *isa.Program, base uint64) MakeJob {
	t.Helper()
	return func(thread int, chunkStart, chunkLen int64) (sim.Job, error) {
		var rf isa.RegFile
		rf.Set(isa.RDI, uint64(chunkLen-1))
		rf.Set(isa.RSI, base+uint64(chunkStart*4))
		return sim.Job{Core: thread, Prog: prog, Regs: rf}, nil
	}
}

func TestChunkingCoversTrip(t *testing.T) {
	m := testMachine(t)
	prog := loadKernel(t)
	const trip = 4001 // deliberately not divisible by the team size
	res, err := ParallelFor(m, DefaultConfig(4), []int{0, 1, 2, 3}, trip, mkJob(t, m, prog, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != trip {
		t.Errorf("team iterations = %d, want %d", res.Iterations, trip)
	}
	if len(res.ThreadCycles) != 4 {
		t.Errorf("threads = %d", len(res.ThreadCycles))
	}
}

func TestRegionIncludesForkAndJoin(t *testing.T) {
	m := testMachine(t)
	prog := loadKernel(t)
	cfg := DefaultConfig(4)
	res, err := ParallelFor(m, cfg, []int{0, 1, 2, 3}, 4096, mkJob(t, m, prog, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	var maxThread int64
	for _, c := range res.ThreadCycles {
		if c > maxThread {
			maxThread = c
		}
	}
	minRegion := cfg.ForkCycles + maxThread + cfg.JoinCycles
	if res.RegionCycles < minRegion {
		t.Errorf("region %d below fork+slowest+join (%d)", res.RegionCycles, minRegion)
	}
}

func TestMoreThreadsShrinkRegionOnCacheResidentWork(t *testing.T) {
	prog := loadKernel(t)
	region := func(threads int) int64 {
		m := testMachine(t)
		pins := make([]int, threads)
		for i := range pins {
			pins[i] = i
		}
		// Warm the shared array on every participating core.
		for _, c := range pins {
			m.Touch(c, 0x100000, 256<<10)
		}
		cfg := DefaultConfig(threads)
		res, err := ParallelFor(m, cfg, pins, 65536, mkJob(t, m, prog, 0x100000))
		if err != nil {
			t.Fatal(err)
		}
		return res.RegionCycles
	}
	one := region(1)
	four := region(4)
	if four >= one {
		t.Errorf("4 threads (%d cycles) not faster than 1 (%d cycles)", four, one)
	}
}

func TestErrorCases(t *testing.T) {
	m := testMachine(t)
	prog := loadKernel(t)
	mk := mkJob(t, m, prog, 0x100000)
	if _, err := ParallelFor(m, Config{Threads: 0}, nil, 10, mk); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := ParallelFor(m, DefaultConfig(4), []int{0, 1}, 10, mk); err == nil {
		t.Error("fewer pins than threads accepted")
	}
	if _, err := ParallelFor(m, DefaultConfig(2), []int{0, 1}, 0, mk); err == nil {
		t.Error("zero trip accepted")
	}
	failing := func(int, int64, int64) (sim.Job, error) {
		return sim.Job{}, fmt.Errorf("nope")
	}
	if _, err := ParallelFor(m, DefaultConfig(2), []int{0, 1}, 10, failing); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Error("job construction error not propagated")
	}
}

func TestTripSmallerThanTeam(t *testing.T) {
	m := testMachine(t)
	prog := loadKernel(t)
	// Two iterations on a four-thread team: two threads idle.
	res, err := ParallelFor(m, DefaultConfig(4), []int{0, 1, 2, 3}, 2, mkJob(t, m, prog, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
	if len(res.ThreadCycles) != 2 {
		t.Errorf("active threads = %d, want 2", len(res.ThreadCycles))
	}
}

func TestStaggeredWakeup(t *testing.T) {
	m := testMachine(t)
	prog := loadKernel(t)
	cfg := DefaultConfig(4)
	cfg.WakeupPerThread = 50_000 // exaggerate the stagger
	res, err := ParallelFor(m, cfg, []int{0, 1, 2, 3}, 4096, mkJob(t, m, prog, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	// Thread 3 starts 150k cycles after thread 0: the region must reflect
	// the stagger.
	if res.RegionCycles < 3*cfg.WakeupPerThread {
		t.Errorf("region %d does not include the wakeup stagger", res.RegionCycles)
	}
}

// TestDynamicScheduleCoversTrip: schedule(dynamic) executes every iteration
// exactly once regardless of chunk size.
func TestDynamicScheduleCoversTrip(t *testing.T) {
	m := testMachine(t)
	prog := loadKernel(t)
	cfg := DefaultConfig(4)
	cfg.StaticChunking = false
	cfg.ChunkElements = 300 // does not divide the trip
	res, err := ParallelFor(m, cfg, []int{0, 1, 2, 3}, 4001, mkJob(t, m, prog, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 4001 {
		t.Errorf("iterations = %d, want 4001", res.Iterations)
	}
}

// TestDynamicComparableToStaticWhenBalanced: on a quiet machine with
// homogeneous chunks, dynamic pays only its dispatch overhead over static.
func TestDynamicComparableToStaticWhenBalanced(t *testing.T) {
	prog := loadKernel(t)
	run := func(static bool) int64 {
		m := testMachine(t)
		for c := 0; c < 4; c++ {
			m.Touch(c, 0x100000, 64<<10)
		}
		cfg := DefaultConfig(4)
		cfg.StaticChunking = static
		cfg.ChunkElements = 2048
		res, err := ParallelFor(m, cfg, []int{0, 1, 2, 3}, 16384, mkJob(t, m, prog, 0x100000))
		if err != nil {
			t.Fatal(err)
		}
		return res.RegionCycles
	}
	st := run(true)
	dy := run(false)
	if dy > st*2 {
		t.Errorf("dynamic (%d cycles) more than 2x static (%d cycles) on balanced work", dy, st)
	}
}

// TestDynamicRebalancesAroundNoise: rare, large stalls (a descheduled
// thread) create imbalance; schedule(static) waits for the unluckiest
// thread at the barrier, while schedule(dynamic) lets the other threads
// absorb the queue.
func TestDynamicRebalancesAroundNoise(t *testing.T) {
	prog := loadKernel(t)
	run := func(static bool, seed int64) int64 {
		desc, err := machine.ByName("sandybridge/8")
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(desc)
		if err != nil {
			t.Fatal(err)
		}
		noise := sim.DefaultNoise(seed)
		noise.IntervalCycles = 60_000 // rare...
		noise.CostCycles = 150_000    // ...but long stalls
		noise.CacheDisturbFraction = 0
		if err := m.SetNoise(noise); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(4)
		cfg.StaticChunking = static
		cfg.ChunkElements = 2048
		res, err := ParallelFor(m, cfg, []int{0, 1, 2, 3}, 128<<10, mkJob(t, m, prog, 0x100000))
		if err != nil {
			t.Fatal(err)
		}
		return res.RegionCycles
	}
	var stTotal, dyTotal int64
	for seed := int64(1); seed <= 6; seed++ {
		stTotal += run(true, seed)
		dyTotal += run(false, seed)
	}
	if dyTotal >= stTotal {
		t.Errorf("dynamic under noise (%d total cycles) not below static (%d)", dyTotal, stTotal)
	}
}
