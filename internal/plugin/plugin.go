// Package plugin is the Go rendition of MicroCreator's plugin system
// (§3.3), which in the paper resembles GCC's dynamic-library plugins: a
// user provides a library exporting pluginInit, through which they may
// "add, remove, or modify a pass without recompiling the system" and
// redefine any pass gate.
//
// Go programs cannot portably dlopen arbitrary shared objects offline, so
// plugins register through this package instead (at init time or
// programmatically) and are applied to a passes.Manager by name. The
// semantics — full access to the pass pipeline, no tool recompilation for
// embedders — are preserved; see DESIGN.md for the substitution note.
package plugin

import (
	"fmt"
	"sort"
	"sync"

	"microtools/internal/passes"
)

// Plugin modifies a pass manager. PluginInit is the entry point the paper
// requires of every plugin ("The user must provide an initialization
// function named pluginInit").
type Plugin interface {
	Name() string
	PluginInit(m *passes.Manager) error
}

// Func adapts a plain function to the Plugin interface.
type Func struct {
	PluginName string
	Init       func(m *passes.Manager) error
}

// Name implements Plugin.
func (f Func) Name() string { return f.PluginName }

// PluginInit implements Plugin.
func (f Func) PluginInit(m *passes.Manager) error { return f.Init(m) }

var (
	mu       sync.RWMutex
	registry = map[string]Plugin{}
)

// Register adds a plugin to the global registry. Registering a second
// plugin under an existing name is an error.
func Register(p Plugin) error {
	if p == nil || p.Name() == "" {
		return fmt.Errorf("plugin: plugin must have a name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := registry[p.Name()]; ok {
		return fmt.Errorf("plugin: %q already registered", p.Name())
	}
	registry[p.Name()] = p
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(p Plugin) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Unregister removes a plugin by name (primarily for tests).
func Unregister(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(registry, name)
}

// Lookup returns the registered plugin with the given name.
func Lookup(name string) (Plugin, bool) {
	mu.RLock()
	defer mu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names lists registered plugin names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Apply runs PluginInit of each named plugin against the manager, in order.
func Apply(m *passes.Manager, names ...string) error {
	for _, n := range names {
		p, ok := Lookup(n)
		if !ok {
			return fmt.Errorf("plugin: no plugin named %q (registered: %v)", n, Names())
		}
		if err := p.PluginInit(m); err != nil {
			return fmt.Errorf("plugin: %s: pluginInit: %w", n, err)
		}
	}
	return nil
}
