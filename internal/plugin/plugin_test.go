package plugin

import (
	"fmt"
	"testing"

	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/passes"
)

func cleanup(t *testing.T, names ...string) {
	t.Helper()
	t.Cleanup(func() {
		for _, n := range names {
			Unregister(n)
		}
	})
}

func TestRegisterAndApply(t *testing.T) {
	cleanup(t, "test-enable-schedule")
	p := Func{
		PluginName: "test-enable-schedule",
		Init: func(m *passes.Manager) error {
			return m.SetGate("schedule", passes.AlwaysGate)
		},
	}
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	m := passes.NewManager()
	if m.Lookup("schedule").Gate(&passes.Context{}) {
		t.Fatal("schedule gate should default off")
	}
	if err := Apply(m, "test-enable-schedule"); err != nil {
		t.Fatal(err)
	}
	if !m.Lookup("schedule").Gate(&passes.Context{}) {
		t.Error("plugin did not flip the gate")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	cleanup(t, "dup")
	a := Func{PluginName: "dup", Init: func(*passes.Manager) error { return nil }}
	if err := Register(a); err != nil {
		t.Fatal(err)
	}
	b := Func{PluginName: "dup", Init: func(*passes.Manager) error { return nil }}
	if err := Register(b); err == nil {
		t.Error("conflicting registration accepted")
	}
}

func TestApplyUnknownPlugin(t *testing.T) {
	if err := Apply(passes.NewManager(), "no-such-plugin"); err == nil {
		t.Error("unknown plugin accepted")
	}
}

func TestApplyPropagatesInitError(t *testing.T) {
	cleanup(t, "failing")
	MustRegister(Func{PluginName: "failing", Init: func(*passes.Manager) error {
		return fmt.Errorf("boom")
	}})
	if err := Apply(passes.NewManager(), "failing"); err == nil {
		t.Error("pluginInit error swallowed")
	}
}

func TestRegisterInvalid(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("nil plugin accepted")
	}
	if err := Register(Func{PluginName: ""}); err == nil {
		t.Error("unnamed plugin accepted")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on invalid plugin")
		}
	}()
	MustRegister(nil)
}

func TestNamesSorted(t *testing.T) {
	cleanup(t, "zzz", "aaa")
	MustRegister(Func{PluginName: "zzz", Init: func(*passes.Manager) error { return nil }})
	MustRegister(Func{PluginName: "aaa", Init: func(*passes.Manager) error { return nil }})
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}

// TestPluginAddsCustomPass demonstrates the paper's §3.3 capability: a
// plugin inserts a user pass (here: a variant-tagging pass) without touching
// MicroCreator's code.
func TestPluginAddsCustomPass(t *testing.T) {
	cleanup(t, "tagger")
	MustRegister(Func{PluginName: "tagger", Init: func(m *passes.Manager) error {
		return m.InsertAfter("unroll", &passes.Pass{
			Name: "tag-origin",
			Run: func(_ *passes.Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
				for _, k := range ks {
					k.Tag("origin", "plugin")
				}
				return ks, nil
			},
		})
	}})
	m := passes.NewManager()
	if err := Apply(m, "tagger"); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Passes()); got != 21 {
		t.Fatalf("pipeline has %d passes after plugin, want 21", got)
	}
	k := &ir.Kernel{
		BaseName: "k", Name: "k",
		Body: []ir.Instruction{{
			Op: "movss",
			Operands: []ir.Operand{
				{Kind: ir.MemOperand, Reg: &ir.Register{Logical: "r1", Phys: isa.NoReg}},
				{Kind: ir.RegOperand, Reg: &ir.Register{RotBase: "%xmm", RotRange: ir.Range{Min: 0, Max: 4}}},
			},
		}},
		Inductions: []ir.Induction{
			{Reg: &ir.Register{Logical: "r1", Phys: isa.NoReg}, Increment: 4, Offset: 4},
			{Reg: &ir.Register{Logical: "r0", Phys: isa.NoReg}, Increment: -1, Last: true},
		},
		Branch:      ir.Branch{Label: ".L0", Test: "jge"},
		UnrollRange: ir.Range{Min: 1, Max: 2},
		ElementSize: 4,
	}
	// Memory base register must be shared with the induction (as xmlspec
	// guarantees); wire it manually here.
	k.Inductions[0].Reg = k.Body[0].Operands[0].Reg
	out, err := m.Run(&passes.Context{EmitAssembly: true}, []*ir.Kernel{k})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v.Tags["origin"] != "plugin" {
			t.Errorf("variant %s missing plugin tag", v.Name)
		}
	}
}
