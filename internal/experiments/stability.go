package experiments

import (
	"context"
	"fmt"

	"microtools/internal/launcher"
	"microtools/internal/stats"
)

func init() {
	register(&Experiment{
		ID:      "stability",
		Title:   "§4.7 stability study: launcher protocol vs raw noisy runs",
		Paper:   "\"Executing the tool multiple times on the same architecture with the same kernel must give the same result\" — the full protocol (pinning, warm-up, interrupt masking, repetitions) collapses run-to-run variation that a naive timing loop exhibits",
		Machine: seqMachine,
		Run:     runStability,
	})
}

// runStability measures the coefficient of variation of cycles/iteration
// across independent launcher invocations under four protocol settings.
func runStability(ctx context.Context, cfg Config) (*stats.Table, error) {
	prog, err := loadOnlyKernel("movaps", 4)
	if err != nil {
		return nil, err
	}
	runs := 8
	if cfg.Quick {
		runs = 4
	}
	type setting struct {
		name              string
		warmup, quiet     bool
		outerReps         int
		statistic         stats.Statistic
		perRunNoiseSeed   bool
		disableCalibation bool
	}
	settings := []setting{
		{"full protocol", true, true, 4, stats.StatMin, false, false},
		{"no warmup", false, true, 4, stats.StatMin, false, false},
		{"noise, protocol", true, false, 4, stats.StatMin, true, false},
		{"noise, naive", false, false, 1, stats.StatMean, true, true},
	}
	t := &stats.Table{
		Title:  "Stability: run-to-run coefficient of variation by protocol setting",
		XLabel: "setting index",
		YLabel: "CV of cycles/iteration (%)",
	}
	for si, st := range settings {
		series := t.AddSeries(st.name)
		// The independent repeated runs fan out over cfg.Workers; values
		// land by run index, so the CV matches a serial sweep exactly.
		values := make([]float64, runs)
		st := st
		err := cfg.forEach(ctx, runs, func(r int) error {
			opts := launcher.DefaultOptions()
			opts.MachineName = seqMachine
			opts.ArrayBytes = 256 << 10
			opts.Warmup = st.warmup
			opts.DisableInterrupts = st.quiet
			opts.NoiseSeed = int64(1000*si + r + 1)
			opts.OuterReps = st.outerReps
			opts.InnerReps = 2
			opts.Statistic = st.statistic
			opts.Calibrate = !st.disableCalibation
			opts.MaxInstructions = 600_000
			if cfg.Quick {
				opts.MaxInstructions = 250_000
			}
			m, err := launcher.Launch(ctx, prog, opts)
			if err != nil {
				return fmt.Errorf("stability %q run %d: %w", st.name, r, err)
			}
			values[r] = m.Value
			return nil
		})
		if err != nil {
			return nil, err
		}
		sum := stats.Summarize(values)
		series.Add(float64(si), 100*sum.CV())
		cfg.logf("stability %-18s CV=%.3f%% (min=%.2f max=%.2f)", st.name, 100*sum.CV(), sum.Min, sum.Max)
	}
	return t, nil
}
