// Package experiments reproduces every evaluation figure and table of the
// paper (§2 and §5): each Experiment regenerates one plot/table as a
// stats.Table whose series mirror the paper's plot lines. DESIGN.md holds
// the experiment index; EXPERIMENTS.md records paper-vs-measured shapes.
//
// All experiments run on the Table 1 machines with cache capacities scaled
// down (machine.Scaled) so full sweeps complete in seconds; array sizes are
// scaled identically, so every residency boundary sits where the paper's
// protocol puts it ("L1 actually represents where the array is half the
// size of the architectures' first cache level", §5.1).
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"microtools/internal/stats"
)

// Config tunes experiment execution.
type Config struct {
	// Quick shrinks sweeps for bench/CI runs (fewer points, smaller
	// instruction budgets); the shapes remain.
	Quick bool
	// Verbose receives progress lines when non-nil.
	Verbose io.Writer
	// Workers fans independent launches inside a sweep out over a worker
	// pool (0 = GOMAXPROCS, 1 = serial). Every launch runs on its own
	// simulated machine and results are collected by sweep index, so
	// tables are bit-identical to a serial run.
	Workers int
}

// workers resolves the effective pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every sweep index over the configured worker
// pool, collecting errors per index; the first (lowest-index) error is
// returned, keeping failure reporting deterministic regardless of worker
// interleaving. Cancellation stops the sweep between points.
func (c Config) forEach(ctx context.Context, n int, fn func(i int) error) error {
	workers := c.workers()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if errs[i] = fn(i); errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx != nil && ctx.Err() != nil {
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctxDone(ctx):
			break feed
		}
	}
	close(next)
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ctxDone returns ctx's done channel, or nil (never ready) for a nil ctx.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

func (c Config) logf(format string, args ...any) {
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, format+"\n", args...)
	}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the figure/table identifier ("fig03" ... "tab02").
	ID    string
	Title string
	// Paper summarizes what the paper's version shows (the shape to
	// reproduce).
	Paper string
	// Machine names the Table 1 platform used (scaled variant).
	Machine string
	Run     func(context.Context, Config) (*stats.Table, error)
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns the experiments in paper order.
func All() []*Experiment {
	out := append([]*Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}

// Table re-exports stats.Table for experiment consumers.
type Table = stats.Table
