package experiments

import (
	"fmt"
	"strings"

	"microtools/internal/asm"
	"microtools/internal/codegen"
	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/passes"
	"microtools/internal/verify"
	"microtools/internal/xmlspec"
)

// parseVerified decodes a handwritten experiment kernel and fails fast on
// verifier errors, so a broken fixture aborts the campaign before any
// launches instead of skewing a whole figure.
func parseVerified(src, name string) (*isa.Program, error) {
	p, err := asm.ParseOne(src, name)
	if err != nil {
		return nil, err
	}
	if ds := verify.Program(p, name, verify.Options{}); ds.HasErrors() {
		return nil, fmt.Errorf("experiments: kernel %s failed verification: %w", name, ds.Err())
	}
	return p, nil
}

// decoded returns the launcher-ready form of a pipeline output program,
// reusing the decode populated by the emit pass when present.
func decoded(prog codegen.Program) (*isa.Program, error) {
	return prog.Lowered()
}

// opWidth returns the data width of the studied SSE moves.
func opWidth(op string) int64 {
	switch op {
	case "movss":
		return 4
	case "movsd":
		return 8
	default:
		return 16
	}
}

// loadStoreXML instantiates the paper's Fig. 6 (Load|Store)+ template for an
// instruction, producing the §5.1 variant family (510 programs at unroll
// 1..8 via swap_after_unroll) through the real MicroCreator pipeline.
func loadStoreXML(op string, maxUnroll int) string {
	w := opWidth(op)
	return fmt.Sprintf(`
<kernel name="%s_ls">
  <instruction>
    <operation>%s</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%%xmm</phyName><min>0</min><max>8</max></register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>%d</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>%d</increment>
    <offset>%d</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>.L6</label><test>jge</test></branch_information>
</kernel>`, op, op, maxUnroll, w, w)
}

// variantSet holds a generated family indexed by (unroll, pattern).
type variantSet struct {
	op       string
	programs map[string]*isa.Program // key: "u<u>_<pattern>"
}

// generateLoadStore runs the MicroCreator pipeline on the Fig. 6 template.
func generateLoadStore(op string, maxUnroll int) (*variantSet, error) {
	ks, err := xmlspec.ParseString(loadStoreXML(op, maxUnroll))
	if err != nil {
		return nil, err
	}
	ctx := &passes.Context{EmitAssembly: true}
	if _, err := passes.NewManager().Run(ctx, ks); err != nil {
		return nil, err
	}
	vs := &variantSet{op: op, programs: map[string]*isa.Program{}}
	for _, prog := range ctx.Programs {
		p, err := decoded(prog)
		if err != nil {
			return nil, fmt.Errorf("experiments: re-parsing %s: %w", prog.Name, err)
		}
		key := fmt.Sprintf("u%d_%s", prog.Kernel.Unroll, pattern(prog))
		vs.programs[key] = p
	}
	return vs, nil
}

// pattern renders the kernel's load/store signature ("LSL"...), mirroring
// the naming pass.
func pattern(prog codegen.Program) string {
	var b strings.Builder
	for _, in := range prog.Kernel.Body {
		if len(in.Operands) != 2 {
			continue
		}
		a, c := in.Operands[0].Kind, in.Operands[1].Kind
		switch {
		case a == ir.MemOperand && c == ir.RegOperand:
			b.WriteByte('L')
		case a == ir.RegOperand && c == ir.MemOperand:
			b.WriteByte('S')
		}
	}
	return b.String()
}

// get returns the variant for an unroll factor and pattern.
func (vs *variantSet) get(u int, pat string) (*isa.Program, error) {
	p, ok := vs.programs[fmt.Sprintf("u%d_%s", u, pat)]
	if !ok {
		return nil, fmt.Errorf("experiments: no %s variant u=%d pattern=%q", vs.op, u, pat)
	}
	return p, nil
}

// patterns returns the representative load/store patterns the figures use
// per unroll group: all loads, all stores, and alternating — the paper takes
// the minimum over the whole group ("For each unroll group, the minimum
// value was taken though the variance was minimal", §5.1), and the minimum
// is always among these.
func patterns(u int) []string {
	all := func(c byte) string { return strings.Repeat(string(c), u) }
	alt := make([]byte, u)
	for i := range alt {
		if i%2 == 0 {
			alt[i] = 'L'
		} else {
			alt[i] = 'S'
		}
	}
	out := []string{all('L')}
	if u > 1 {
		out = append(out, all('S'), string(alt))
	} else {
		out = append(out, all('S'))
	}
	return out
}

// loadOnlyKernel builds a pure-load unrolled kernel with the §4.4 protocol
// (for the frequency and fork studies, Figs. 13-14).
func loadOnlyKernel(op string, u int) (*isa.Program, error) {
	w := opWidth(op)
	var b strings.Builder
	b.WriteString(".L0:\n")
	for c := 0; c < u; c++ {
		fmt.Fprintf(&b, "%s %d(%%rsi), %%xmm%d\n", op, w*int64(c), c%8)
	}
	fmt.Fprintf(&b, "add $%d, %%rsi\n", w*int64(u))
	b.WriteString("add $1, %eax\n")
	fmt.Fprintf(&b, "sub $%d, %%rdi\n", (w/4)*int64(u))
	b.WriteString("jge .L0\nret\n")
	return parseVerified(b.String(), fmt.Sprintf("%s_load_u%d", op, u))
}

// fourArrayTraversal builds the §5.2.2 kernel: a single-strided movss
// traversal of four arrays (Figs. 15-16), reading two and writing two — the
// traversal shape whose performance depends on the relative array
// placements (store-to-load 4K aliasing across streams).
func fourArrayTraversal() (*isa.Program, error) {
	src := `
.L0:
movss (%rsi), %xmm0
movss (%rdx), %xmm1
movss %xmm0, (%rcx)
movss %xmm1, (%r8)
add $4, %rsi
add $4, %rdx
add $4, %rcx
add $4, %r8
add $1, %eax
sub $1, %rdi
jge .L0
ret`
	return parseVerified(src, "four_array_traversal")
}
