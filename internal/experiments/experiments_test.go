package experiments

import (
	"context"
	"strings"
	"testing"
)

func quickRun(t *testing.T, id string) (ex *Experiment, table *TableAlias) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), Config{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return e, tab
}

// TableAlias keeps the test helpers readable.
type TableAlias = statsTable

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext-arith", "ext-power", "ext-stride",
		"fig03", "fig04", "fig05", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "stability", "tab02"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Machine == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig03ShapeRisesAcrossHierarchy(t *testing.T) {
	_, tab := quickRun(t, "fig03")
	s := tab.Series[0]
	// The plateau must break upward once the C matrix leaves the last
	// cache level (the paper's cutting point near N=500; N≈313 scaled).
	// The step is bounded by the 8-column line reuse of the walk, so it
	// is a moderate rise, as in the paper.
	plateau := s.MinY()
	large := s.Points[len(s.Points)-1].Y
	if large <= plateau*1.25 {
		t.Errorf("fig03: cycles/iter at largest N (%.2f) not clearly above the plateau (%.2f)", large, plateau)
	}
}

func TestFig04AlignmentInsensitiveAtCacheResidentSize(t *testing.T) {
	_, tab := quickRun(t, "fig04")
	s := tab.Series[0]
	spread := (s.MaxY() - s.MinY()) / s.MinY()
	// Paper: <3%. Allow a little more on the scaled machine.
	if spread > 0.08 {
		t.Errorf("fig04: alignment spread %.1f%% too large for the cache-resident size", spread*100)
	}
}

func TestFig05MicrobenchTracksActual(t *testing.T) {
	_, tab := quickRun(t, "fig05")
	actual, micro := tab.Get("actual code"), tab.Get("microbenchmark")
	if actual == nil || micro == nil {
		t.Fatal("missing series")
	}
	a1, _ := actual.YAt(1)
	a8, _ := actual.YAt(8)
	m1, _ := micro.YAt(1)
	m8, _ := micro.YAt(8)
	if a8 >= a1 || m8 >= m1 {
		t.Errorf("fig05: unrolling did not help (actual %.2f->%.2f, micro %.2f->%.2f)", a1, a8, m1, m8)
	}
	gainA := (a1 - a8) / a1
	gainM := (m1 - m8) / m1
	if diff := gainA - gainM; diff < -0.35 || diff > 0.35 {
		t.Errorf("fig05: microbenchmark gain %.0f%% does not track actual %.0f%%", gainM*100, gainA*100)
	}
}

func TestFig11HierarchyOrdering(t *testing.T) {
	_, tab := quickRun(t, "fig11")
	if len(tab.Series) != 4 {
		t.Fatalf("fig11: %d series, want L1/L2/L3/RAM", len(tab.Series))
	}
	// At max unroll, deeper levels cost at least as much per instruction.
	for i := 1; i < 4; i++ {
		lo, _ := tab.Series[i-1].YAt(8)
		hi, _ := tab.Series[i].YAt(8)
		if hi < lo*0.95 {
			t.Errorf("fig11: %s (%.2f) cheaper than %s (%.2f) at u=8",
				tab.Series[i].Name, hi, tab.Series[i-1].Name, lo)
		}
	}
	// Unrolling advantageous in L1: best per-instruction cost at u=8 below u=1.
	l1 := tab.Get("L1")
	u1, _ := l1.YAt(1)
	u8, _ := l1.YAt(8)
	if u8 >= u1 {
		t.Errorf("fig11: L1 per-instruction cost did not improve with unroll (%.2f -> %.2f)", u1, u8)
	}
}

func TestFig12MovssCheaperThanMovapsInRAM(t *testing.T) {
	_, aps := quickRun(t, "fig11")
	_, ss := quickRun(t, "fig12")
	apsRAM, _ := aps.Get("RAM").YAt(8)
	ssRAM, _ := ss.Get("RAM").YAt(8)
	// movaps moves 4x the data per instruction: must cost more per
	// instruction out of RAM ("Accessing data from RAM with vectorized
	// instructions has a greater latency impact", §5.1).
	if apsRAM <= ssRAM {
		t.Errorf("fig11/12: movaps RAM %.2f not above movss RAM %.2f cycles/inst", apsRAM, ssRAM)
	}
}

func TestFig13CoreVsUncoreDomains(t *testing.T) {
	_, tab := quickRun(t, "fig13")
	l1 := tab.Get("L1")
	ram := tab.Get("RAM")
	if l1 == nil || ram == nil {
		t.Fatal("missing series")
	}
	// L1: TSC cycles/load shrink as the core speeds up.
	l1Slow := l1.Points[0].Y
	l1Fast := l1.Points[len(l1.Points)-1].Y
	if l1Fast >= l1Slow*0.8 {
		t.Errorf("fig13: L1 TSC cost did not scale with core frequency (%.2f -> %.2f)", l1Slow, l1Fast)
	}
	// RAM: roughly constant.
	ramSlow := ram.Points[0].Y
	ramFast := ram.Points[len(ram.Points)-1].Y
	ratio := ramFast / ramSlow
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("fig13: RAM TSC cost varied %.2fx with core frequency, want ~constant", ratio)
	}
}

func TestFig14SaturationKnee(t *testing.T) {
	_, tab := quickRun(t, "fig14")
	s := tab.Get("movaps")
	one, _ := s.YAt(1)
	twelve, _ := s.YAt(12)
	if twelve < one*1.5 {
		t.Errorf("fig14: 12-core latency %.1f not clearly above 1-core %.1f", twelve, one)
	}
	// Under the knee the growth is modest.
	four, _ := s.YAt(4)
	if four > one*1.6 {
		t.Errorf("fig14: latency grows too early (1 core %.1f -> 4 cores %.1f)", one, four)
	}
}

func TestFig15And16AlignmentVariation(t *testing.T) {
	_, f15 := quickRun(t, "fig15")
	_, f16 := quickRun(t, "fig16")
	s15, s16 := f15.Series[0], f16.Series[0]
	if spread := (s15.MaxY() - s15.MinY()) / s15.MinY(); spread < 0.02 {
		t.Errorf("fig15: alignment spread %.2f%% too small — alignment must matter under load", spread*100)
	}
	// 32-core run sits above the 8-core run (memory saturation).
	if s16.MinY() <= s15.MinY() {
		t.Errorf("fig16: 32-core band (min %.1f) not above 8-core band (min %.1f)", s16.MinY(), s15.MinY())
	}
}

func TestFig17OpenMPWinsAndFig18GainShrinks(t *testing.T) {
	_, f17 := quickRun(t, "fig17")
	_, f18 := quickRun(t, "fig18")
	gain := func(tab *TableAlias, u float64) float64 {
		s, _ := tab.Get("sequential").YAt(u)
		o, _ := tab.Get("openmp").YAt(u)
		return s / o
	}
	g17 := gain(f17, 8)
	g18 := gain(f18, 8)
	if g17 <= 1 {
		t.Errorf("fig17: OpenMP not faster (gain %.2fx)", g17)
	}
	if g18 >= g17 {
		t.Errorf("fig17/18: RAM-resident OpenMP gain (%.2fx) not below cache-resident gain (%.2fx)", g18, g17)
	}
}

func TestTab02SequentialImprovesOpenMPFlat(t *testing.T) {
	_, tab := quickRun(t, "tab02")
	seq := tab.Get("sequential (s)")
	omp := tab.Get("openmp (s)")
	s1, _ := seq.YAt(1)
	s8, _ := seq.YAt(8)
	o1, _ := omp.YAt(1)
	o8, _ := omp.YAt(8)
	if s8 >= s1 {
		t.Errorf("tab02: sequential did not improve with unroll (%.2fs -> %.2fs)", s1, s8)
	}
	if o1 <= 0 || o8 <= 0 {
		t.Fatalf("tab02: non-positive OpenMP times (%f, %f)", o1, o8)
	}
	// Sequential must improve systematically; OpenMP stays in a flat band
	// (the paper: 18.30s -> ~14.5s vs a flat ~9.3s).
	seqGain := (s1 - s8) / s1
	if seqGain < 0.04 {
		t.Errorf("tab02: sequential unroll gain %.1f%% too small", seqGain*100)
	}
	ompSpread := (o1 - o8) / o1
	if ompSpread < 0 {
		ompSpread = -ompSpread
	}
	if ompSpread > 0.2 {
		t.Errorf("tab02: OpenMP times not flat (spread %.0f%%)", ompSpread*100)
	}
	// OpenMP must win outright (paper: 9.3s vs 14.4-18.3s).
	if o1 >= s1 || o8 >= s8 {
		t.Errorf("tab02: OpenMP (%.2f/%.2f) not faster than sequential (%.2f/%.2f)", o1, o8, s1, s8)
	}
}

func TestStabilityProtocolSuppressesNoise(t *testing.T) {
	_, tab := quickRun(t, "stability")
	cv := func(name string) float64 {
		s := tab.Get(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		return s.Points[0].Y
	}
	full := cv("full protocol")
	naive := cv("noise, naive")
	if full > 0.5 {
		t.Errorf("stability: full protocol CV %.2f%% too high", full)
	}
	if naive <= full {
		t.Errorf("stability: naive CV (%.2f%%) not above protocol CV (%.2f%%)", naive, full)
	}
}

func TestCSVAndASCIIRender(t *testing.T) {
	_, tab := quickRun(t, "fig13")
	csv := tab.CSVString()
	if !strings.Contains(csv, "L1") || !strings.Contains(csv, "RAM") {
		t.Errorf("CSV missing series: %s", csv)
	}
	art := tab.ASCII(60, 12)
	if !strings.Contains(art, "Fig. 13") {
		t.Errorf("ASCII chart missing title:\n%s", art)
	}
}

// statsTable aliases stats.Table for the helpers above.
type statsTable = Table

func TestExtStrideCostRises(t *testing.T) {
	_, tab := quickRun(t, "ext-stride")
	s := tab.Series[0]
	small := s.Points[0].Y
	large := s.Points[len(s.Points)-1].Y
	if large <= small*1.5 {
		t.Errorf("ext-stride: stride-%v cost (%.2f) not clearly above stride-%v (%.2f)",
			s.Points[len(s.Points)-1].X, large, s.Points[0].X, small)
	}
}

func TestExtArithHiding(t *testing.T) {
	_, tab := quickRun(t, "ext-arith")
	s := tab.Series[0]
	// The first few arithmetic instructions ride under the memory
	// latency: cost at 2 addps stays within 25% of cost at 1.
	y1, err := s.YAt(1)
	if err != nil {
		t.Fatal(err)
	}
	y2, _ := s.YAt(2)
	if y2 > y1*1.25 {
		t.Errorf("ext-arith: 2nd addps not hidden (%.2f -> %.2f)", y1, y2)
	}
	// Eventually arithmetic becomes the bottleneck.
	last := s.Points[len(s.Points)-1]
	if last.Y <= y1*1.2 {
		t.Errorf("ext-arith: %v addps (%.2f) never dominated the memory cost (%.2f)", last.X, last.Y, y1)
	}
}

func TestExtPowerRegimes(t *testing.T) {
	_, tab := quickRun(t, "ext-power")
	l1 := tab.Get("L1-bound")
	ram := tab.Get("RAM-bound")
	if l1 == nil || ram == nil {
		t.Fatal("missing series")
	}
	// For the core-bound kernel, higher frequency shortens the run enough
	// that EDP improves (delay dominates); normalized EDP at max frequency
	// must be below 1.
	l1Last := l1.Points[len(l1.Points)-1].Y
	if l1Last >= 1 {
		t.Errorf("ext-power: L1-bound EDP did not improve with frequency (%.2f)", l1Last)
	}
	// For the RAM-bound kernel frequency buys much less: its EDP benefit
	// is smaller than the core-bound one's.
	ramLast := ram.Points[len(ram.Points)-1].Y
	if ramLast <= l1Last {
		t.Errorf("ext-power: RAM-bound EDP (%.2f) should benefit less than L1-bound (%.2f)", ramLast, l1Last)
	}
}
