package experiments

import (
	"context"
	"fmt"

	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/passes"
	"microtools/internal/stats"
	"microtools/internal/xmlspec"
)

// The ext-* experiments implement studies the paper names but does not
// evaluate: §3.5's "current uses" (stride effects, arithmetic hiding) and
// the §7 power-utilization direction.

func init() {
	register(&Experiment{
		ID:      "ext-stride",
		Title:   "Stride effects on a movss traversal (§3.5: \"detect the effect of strides\")",
		Paper:   "not evaluated in the paper; expectation: cost per access rises as the stride wastes more of each line and defeats the stream prefetcher, flattening once every access touches a fresh line",
		Machine: seqMachine,
		Run:     runExtStride,
	})
	register(&Experiment{
		ID:      "ext-arith",
		Title:   "Arithmetic hidden by a memory-bound kernel (§3.5)",
		Paper:   "not evaluated in the paper; expectation: several arithmetic instructions per load are free under a RAM-resident stream before compute becomes the bottleneck",
		Machine: seqMachine,
		Run:     runExtArith,
	})
	register(&Experiment{
		ID:      "ext-power",
		Title:   "Energy and energy-delay vs core frequency (§7 power utilization)",
		Paper:   "not evaluated in the paper; expectation: for a core-bound kernel the energy-optimal frequency sits below the performance-optimal one; for a RAM-bound kernel racing to idle loses",
		Machine: seqMachine,
		Run:     runExtPower,
	})
}

// strideSpec drives the real select-strides pass: one variant per stride
// choice.
func strideSpec(strides []int64) string {
	list := ""
	for _, s := range strides {
		list += fmt.Sprintf("<value>%d</value>", s)
	}
	return fmt.Sprintf(`
<kernel name="stride_study">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%%xmm0</phyName></register>
  </instruction>
  <induction>
    <register><name>r1</name></register>
    <stride>%s</stride>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`, list)
}

func runExtStride(ctx context.Context, cfg Config) (*stats.Table, error) {
	strides := []int64{4, 16, 64, 128, 256, 1024}
	if cfg.Quick {
		strides = []int64{4, 64, 256}
	}
	ks, err := xmlspec.ParseString(strideSpec(strides))
	if err != nil {
		return nil, err
	}
	pctx := &passes.Context{Ctx: ctx, EmitAssembly: true}
	if _, err := passes.NewManager().Run(pctx, ks); err != nil {
		return nil, err
	}
	if len(pctx.Programs) != len(strides) {
		return nil, fmt.Errorf("ext-stride: %d variants for %d strides", len(pctx.Programs), len(strides))
	}
	desc, err := machine.ByName(seqMachine)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "ext-stride: movss traversal cost vs stride (RAM-resident array)",
		XLabel: "stride (bytes)",
		YLabel: "cycles/access",
	}
	series := t.AddSeries("cycles/access")
	for i, prog := range pctx.Programs {
		p, err := decoded(prog)
		if err != nil {
			return nil, err
		}
		stride := strides[i]
		opts := launcher.DefaultOptions()
		opts.MachineName = seqMachine
		// Keep the touched footprint constant (RAM-resident) across
		// strides: trip = footprint / stride accesses.
		footprint := desc.Hierarchy.L3.Size * 2
		opts.ArrayBytes = footprint
		opts.TripElements = footprint / stride
		opts.InnerReps = 1
		opts.OuterReps = 2
		opts.MaxInstructions = 120_000
		if cfg.Quick {
			opts.OuterReps = 1
			opts.MaxInstructions = 40_000
		}
		m, err := launcher.Launch(ctx, p, opts)
		if err != nil {
			return nil, fmt.Errorf("ext-stride %d: %w", stride, err)
		}
		series.Add(float64(stride), m.Value)
		cfg.logf("ext-stride %d: %.3f cycles/access", stride, m.Value)
	}
	return t, nil
}

// arithSpec drives the real repeat-instructions pass: the addps instruction
// carries a repetition range, producing one variant per arithmetic count.
func arithSpec(maxArith int) string {
	return fmt.Sprintf(`
<kernel name="arith_study">
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%%xmm0</phyName></register>
  </instruction>
  <instruction>
    <operation>addps</operation>
    <register><phyName>%%xmm</phyName><min>1</min><max>8</max></register>
    <register><phyName>%%xmm</phyName><min>1</min><max>8</max></register>
    <repetition><min>1</min><max>%d</max></repetition>
  </instruction>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-4</increment>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`, maxArith)
}

func runExtArith(ctx context.Context, cfg Config) (*stats.Table, error) {
	maxArith := 12
	if cfg.Quick {
		maxArith = 8
	}
	ks, err := xmlspec.ParseString(arithSpec(maxArith))
	if err != nil {
		return nil, err
	}
	pctx := &passes.Context{Ctx: ctx, EmitAssembly: true}
	if _, err := passes.NewManager().Run(pctx, ks); err != nil {
		return nil, err
	}
	desc, err := machine.ByName(seqMachine)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "ext-arith: cycles/iteration vs arithmetic instructions per RAM-resident load",
		XLabel: "addps instructions per iteration",
		YLabel: "cycles/iteration",
	}
	series := t.AddSeries("RAM-resident")
	for _, prog := range pctx.Programs {
		p, err := decoded(prog)
		if err != nil {
			return nil, err
		}
		arith := p.StaticStats().SSEArith
		opts := launcher.DefaultOptions()
		opts.MachineName = seqMachine
		opts.ArrayBytes = desc.Hierarchy.L3.Size * 2
		opts.InnerReps = 1
		opts.OuterReps = 2
		opts.MaxInstructions = 120_000
		if cfg.Quick {
			opts.OuterReps = 1
			opts.MaxInstructions = 40_000
		}
		m, err := launcher.Launch(ctx, p, opts)
		if err != nil {
			return nil, fmt.Errorf("ext-arith %d: %w", arith, err)
		}
		series.Add(float64(arith), m.Value)
		cfg.logf("ext-arith %d addps: %.3f cycles/iter", arith, m.Value)
	}
	return t, nil
}

func runExtPower(ctx context.Context, cfg Config) (*stats.Table, error) {
	desc, err := machine.ByName(seqMachine)
	if err != nil {
		return nil, err
	}
	freqs := desc.FrequencyStepsGHz
	if cfg.Quick {
		freqs = []float64{freqs[0], freqs[len(freqs)/2], freqs[len(freqs)-1]}
	}
	prog, err := loadOnlyKernel("movaps", 8)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "ext-power: normalized energy-delay product vs core frequency",
		XLabel: "core frequency (GHz)",
		YLabel: "EDP (normalized to the lowest frequency)",
	}
	for _, level := range []struct {
		name  string
		bytes int64
	}{
		{"L1-bound", desc.Hierarchy.L1.Size / 2},
		{"RAM-bound", desc.Hierarchy.L3.Size * 2},
	} {
		series := t.AddSeries(level.name)
		base := 0.0
		for _, f := range freqs {
			opts := launcher.DefaultOptions()
			opts.MachineName = seqMachine
			opts.CoreFrequencyGHz = f
			opts.ArrayBytes = level.bytes
			opts.ReportEnergy = true
			opts.InnerReps = 2
			opts.OuterReps = 1
			opts.MaxInstructions = 120_000
			if cfg.Quick {
				opts.MaxInstructions = 60_000
			}
			m, err := launcher.Launch(ctx, prog, opts)
			if err != nil {
				return nil, fmt.Errorf("ext-power %s %.2f: %w", level.name, f, err)
			}
			if m.Energy == nil {
				return nil, fmt.Errorf("ext-power: no energy estimate")
			}
			edp := m.Energy.EnergyDelayProduct
			if base == 0 {
				base = edp
			}
			series.Add(f, edp/base)
			cfg.logf("ext-power %s %.2fGHz: EDP %.3g J·s (%.2fx)", level.name, f, edp, edp/base)
		}
	}
	return t, nil
}
