package experiments

import (
	"context"
	"fmt"

	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/stats"
)

func init() {
	register(&Experiment{
		ID:      "fig14",
		Title:   "Forked processes: cycles per iteration vs core count (RAM-resident 8-load kernel)",
		Paper:   "log-scale latency flat up to ~6 cores on the dual-socket Nehalem, then rising sharply as the memory controllers saturate",
		Machine: "nehalem-dual/8",
		Run:     runFig14,
	})
	register(&Experiment{
		ID:      "fig15",
		Title:   "Alignment sweep, 8 cores of the 32-core machine, 4-array movss traversal",
		Paper:   "cycles/iteration vary substantially (20-33 on the real machine) across alignment configurations",
		Machine: "nehalem-quad/8",
		Run: func(ctx context.Context, cfg Config) (*stats.Table, error) {
			return runAlignmentSweep(ctx, cfg, 8, "fig15")
		},
	})
	register(&Experiment{
		ID:      "fig16",
		Title:   "Alignment sweep, 32-core execution, 4-array movss traversal",
		Paper:   "with all 32 cores the variation band moves up (60-90 cycles/iteration on the real machine): memory saturation amplifies alignment effects",
		Machine: "nehalem-quad/8",
		Run: func(ctx context.Context, cfg Config) (*stats.Table, error) {
			return runAlignmentSweep(ctx, cfg, 32, "fig16")
		},
	})
}

func runFig14(ctx context.Context, cfg Config) (*stats.Table, error) {
	const machineName = "nehalem-dual/8"
	desc, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	coreCounts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if cfg.Quick {
		coreCounts = []int{1, 4, 6, 8, 12}
	}
	t := &stats.Table{
		Title:  "Fig. 14: forked RAM-resident 8-load kernel, cycles/iteration vs cores",
		XLabel: "cores",
		YLabel: "cycles/iteration",
		LogY:   true,
	}
	for _, op := range []string{"movss", "movaps"} {
		prog, err := loadOnlyKernel(op, 8)
		if err != nil {
			return nil, err
		}
		series := t.AddSeries(op)
		for _, n := range coreCounts {
			opts := launcher.DefaultOptions()
			opts.MachineName = machineName
			opts.Mode = launcher.Fork
			opts.Cores = n
			opts.ArrayBytes = desc.Hierarchy.L3.Size * 2
			opts.InnerReps = 1
			opts.OuterReps = 2
			opts.MaxInstructions = 200_000
			if cfg.Quick {
				opts.OuterReps = 1
				opts.MaxInstructions = 50_000
			}
			m, err := launcher.Launch(ctx, prog, opts)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s cores=%d: %w", op, n, err)
			}
			series.Add(float64(n), m.Value)
			cfg.logf("fig14 %s cores=%d: %.2f cycles/iter", op, n, m.Value)
		}
	}
	return t, nil
}

// runAlignmentSweep implements Figs. 15/16: each X point is one alignment
// configuration of the four arrays; Y is the average cycles/iteration of
// the forked traversal.
func runAlignmentSweep(ctx context.Context, cfg Config, cores int, id string) (*stats.Table, error) {
	const machineName = "nehalem-quad/8"
	desc, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	prog, err := fourArrayTraversal()
	if err != nil {
		return nil, err
	}
	nConfigs := 48
	if cfg.Quick {
		nConfigs = 8
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("%s: 4-array movss traversal on %d cores, alignment configurations", id, cores),
		XLabel: "alignment configuration",
		YLabel: "cycles/iteration",
	}
	series := t.AddSeries(fmt.Sprintf("%d cores", cores))
	// Deterministic configuration enumeration: a cross product of page
	// offsets per array (the paper sweeps "upwards of 2500" such
	// configurations). The product includes configurations where a store
	// stream lands on a load stream's page offset — the 4K-aliasing cases
	// that make alignment matter. Each configuration is an independent
	// launch on its own simulated machine, so the sweep fans out over
	// cfg.Workers; values are collected by index to keep the table
	// bit-identical to a serial run.
	offsets := []int64{0, 128, 1024, 2112}
	values := make([]float64, nConfigs)
	err = cfg.forEach(ctx, nConfigs, func(i int) error {
		align := []int64{
			offsets[i%4],
			offsets[(i/4)%4],
			offsets[(i/16)%4],
			offsets[(i/64)%4],
		}
		opts := launcher.DefaultOptions()
		opts.MachineName = machineName
		opts.Mode = launcher.Fork
		opts.Cores = cores
		opts.Alignments = align
		opts.ArrayBytes = desc.Hierarchy.L3.Size
		opts.InnerReps = 1
		opts.OuterReps = 1
		opts.MaxInstructions = 60_000
		if cfg.Quick {
			opts.MaxInstructions = 25_000
		}
		m, err := launcher.Launch(ctx, prog, opts)
		if err != nil {
			return fmt.Errorf("%s config %d: %w", id, i, err)
		}
		values[i] = m.Value
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range values {
		series.Add(float64(i), v)
	}
	cfg.logf("%s: %d cores, %.1f-%.1f cycles/iter across %d configs",
		id, cores, series.MinY(), series.MaxY(), nConfigs)
	return t, nil
}
