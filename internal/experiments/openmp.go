package experiments

import (
	"context"
	"fmt"

	"microtools/internal/launcher"
	"microtools/internal/stats"
)

// ompMachine is the Sandy Bridge of Figs. 17-18 / Table 2, caches scaled
// 1/8. The paper's 128k-element array (512KB of floats vs the real 8MB L3)
// scales to 16k elements (64KB vs the scaled 1MB L3); its 6M-element array
// (24MB, RAM) scales to 750k elements (3MB, still RAM).
const ompMachine = "sandybridge/8"

const (
	// smallElems (64KB of floats) is the paper's 128k-element (512KB)
	// array scaled 1/8: L3-resident, and each thread's chunk fits its
	// private L2 — which is what makes the cache-resident OpenMP gain the
	// larger one (§5.2.3).
	smallElems = 16 << 10
	// largeElems (3MB) is the 6M-element (24MB) array scaled 1/8:
	// RAM-resident on the scaled 1MB L3.
	largeElems = 750 << 10
	// largeElemsQuick keeps RAM residency (1.6MB vs 1MB L3) with full,
	// untruncated calls in quick mode.
	largeElemsQuick = 400 << 10
)

func init() {
	register(&Experiment{
		ID:      "fig17",
		Title:   "OpenMP vs sequential, movss loads, cache-resident array (128k elements scaled)",
		Paper:   "log scale; the OpenMP version is consistently faster; unrolling helps the sequential version but barely moves the OpenMP one (parallel setup overhead); the cache-resident array yields the bigger OpenMP gain",
		Machine: ompMachine,
		Run: func(ctx context.Context, cfg Config) (*stats.Table, error) {
			return runOpenMPFigure(ctx, cfg, "fig17", smallElems)
		},
	})
	register(&Experiment{
		ID:      "fig18",
		Title:   "OpenMP vs sequential, movss loads, RAM-resident array (6M elements scaled)",
		Paper:   "same protocol on the RAM-resident array: the OpenMP gain shrinks (shared memory bandwidth bounds the team)",
		Machine: ompMachine,
		Run: func(ctx context.Context, cfg Config) (*stats.Table, error) {
			elems := int64(largeElems)
			if cfg.Quick {
				elems = largeElemsQuick
			}
			return runOpenMPFigure(ctx, cfg, "fig18", elems)
		},
	})
	register(&Experiment{
		ID:      "tab02",
		Title:   "Table 2: OpenMP vs sequential execution time (seconds) per unroll factor",
		Paper:   "sequential time falls from 18.30s to ~14.5s across unroll 1..8; OpenMP time is flat (~9.3s) — bandwidth-bound team plus region overhead",
		Machine: ompMachine,
		Run:     runTab02,
	})
}

func ompBaseOptions(elems int64, quick bool) launcher.Options {
	opts := launcher.DefaultOptions()
	opts.MachineName = ompMachine
	opts.ArrayBytes = elems * 4
	opts.InnerReps = 1
	opts.OuterReps = 2
	opts.MaxInstructions = 400_000
	// The machine's caches (and with them the array sizes) are scaled
	// 1/8; scale the OpenMP region overheads identically so the
	// work-to-overhead ratio matches the paper's.
	opts.OMPOverheadScale = 1.0 / 8
	if quick {
		opts.OuterReps = 1
		opts.MaxInstructions = 80_000
	}
	return opts
}

func runOpenMPFigure(ctx context.Context, cfg Config, id string, elems int64) (*stats.Table, error) {
	unrolls := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		unrolls = []int{1, 2, 4, 8}
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("%s: movss loads, sequential vs OpenMP, %d elements", id, elems),
		XLabel: "unroll factor",
		YLabel: "cycles/element",
		LogY:   true,
	}
	seq := t.AddSeries("sequential")
	omp := t.AddSeries("openmp")
	for _, u := range unrolls {
		prog, err := loadOnlyKernel("movss", u)
		if err != nil {
			return nil, err
		}
		opts := ompBaseOptions(elems, cfg.Quick)
		// The launcher's inner repetitions run inside one parallel region
		// (§4.5 protocol + libgomp-style team reuse), amortizing the fork
		// cost as the paper's fixed-repetition runs do.
		opts.InnerReps = 16
		if cfg.Quick {
			opts.InnerReps = 8
		}
		if elems*4 > 1<<20 {
			// RAM-resident array: run whole calls (a truncated call
			// re-measures a cache-resident prefix) and fewer repetitions.
			opts.MaxInstructions = 0
			opts.InnerReps = 2
		}
		m, err := launcher.Launch(ctx, prog, opts)
		if err != nil {
			return nil, fmt.Errorf("%s seq u=%d: %w", id, u, err)
		}
		// One loop iteration consumes u elements; per-element cost is the
		// comparable quantity across unroll factors.
		seq.Add(float64(u), m.Value/float64(u))

		po := opts
		po.Mode = launcher.OpenMP
		po.Cores = 4
		// OpenMP runs split the trip across threads; do not truncate the
		// (already 4x shorter) chunks as aggressively.
		pm, err := launcher.Launch(ctx, prog, po)
		if err != nil {
			return nil, fmt.Errorf("%s omp u=%d: %w", id, u, err)
		}
		omp.Add(float64(u), pm.Value/float64(u))
		cfg.logf("%s u=%d: seq %.3f omp %.3f cycles/element",
			id, u, m.Value/float64(u), pm.Value/float64(u))
	}
	return t, nil
}

// tab02Calls is the fixed number of kernel invocations Table 2's wall-clock
// seconds are reported for; it plays the role of the paper's fixed
// repetition count that produced its 9-18s run times.
const tab02Calls = 4000

func runTab02(ctx context.Context, cfg Config) (*stats.Table, error) {
	unrolls := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		unrolls = []int{1, 4, 8}
	}
	t := &stats.Table{
		Title:  "Table 2: execution time of the OpenMP and sequential movss versions",
		XLabel: "unroll factor",
		YLabel: "seconds",
	}
	seq := t.AddSeries("sequential (s)")
	omp := t.AddSeries("openmp (s)")
	for _, u := range unrolls {
		prog, err := loadOnlyKernel("movss", u)
		if err != nil {
			return nil, err
		}
		opts := ompBaseOptions(largeElems, cfg.Quick)
		opts.TimeUnit = launcher.UnitSeconds
		opts.PerIteration = false
		opts.OuterReps = 1
		if !cfg.Quick {
			// Accurate mode runs whole calls so the OpenMP region
			// overhead amortizes exactly as it would in the paper's
			// fixed-repetition runs.
			opts.MaxInstructions = 0
		}

		// Truncated calls cover iterations*u elements; normalize the
		// measured whole-call seconds to the full array and the fixed
		// repetition count so unroll factors compare fairly.
		normalize := func(m *launcher.Measurement, coveredElems float64) float64 {
			if coveredElems <= 0 {
				return 0
			}
			return m.Value * float64(largeElems) / coveredElems * tab02Calls
		}

		m, err := launcher.Launch(ctx, prog, opts)
		if err != nil {
			return nil, fmt.Errorf("tab02 seq u=%d: %w", u, err)
		}
		seq.Add(float64(u), normalize(m, float64(m.Iterations)*float64(u)))

		po := opts
		po.Mode = launcher.OpenMP
		po.Cores = 4
		pm, err := launcher.Launch(ctx, prog, po)
		if err != nil {
			return nil, fmt.Errorf("tab02 omp u=%d: %w", u, err)
		}
		// OpenMP iterations are summed across the team; each covers u
		// elements, and the team advances in parallel, so the covered
		// element count is the team-wide total.
		omp.Add(float64(u), normalize(pm, float64(pm.Iterations)*float64(u)))
		cfg.logf("tab02 u=%d: seq %.2fs omp %.2fs",
			u, seq.Points[len(seq.Points)-1].Y, omp.Points[len(omp.Points)-1].Y)
	}
	return t, nil
}
