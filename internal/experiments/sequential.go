package experiments

import (
	"context"
	"fmt"

	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/stats"
)

// seqMachine is the dual-socket Nehalem of Figs. 11-13, caches scaled 1/8.
const seqMachine = "nehalem-dual/8"

// hierarchyLevels returns the §5.1 array sizes: "L1" is half the first
// cache level, every other level is twice the level below it ("achieved by
// using twice the underlying memory hierarchy size").
func hierarchyLevels(machineName string) ([]struct {
	Name  string
	Bytes int64
}, error) {
	desc, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	h := desc.Hierarchy
	return []struct {
		Name  string
		Bytes int64
	}{
		{"L1", h.L1.Size / 2},
		{"L2", h.L1.Size * 2},
		{"L3", h.L2.Size * 2},
		{"RAM", h.L3.Size * 2},
	}, nil
}

func init() {
	register(&Experiment{
		ID:      "fig11",
		Title:   "movaps loads/stores: cycles per instruction vs unroll factor per hierarchy level",
		Paper:   "510 generated variants; per unroll group the minimum is taken; higher hierarchy levels cost more per access; unrolling is advantageous; vectorized RAM accesses pay more per instruction than scalar ones",
		Machine: seqMachine,
		Run: func(ctx context.Context, cfg Config) (*stats.Table, error) {
			return runUnrollHierarchy(ctx, cfg, "movaps")
		},
	})
	register(&Experiment{
		ID:      "fig12",
		Title:   "movss loads/stores: cycles per instruction vs unroll factor per hierarchy level",
		Paper:   "same protocol with the 4-byte scalar move: per-instruction costs beyond L1 are lower than movaps because each instruction moves a quarter of the data",
		Machine: seqMachine,
		Run: func(ctx context.Context, cfg Config) (*stats.Table, error) {
			return runUnrollHierarchy(ctx, cfg, "movss")
		},
	})
	register(&Experiment{
		ID:      "fig13",
		Title:   "Frequency sweep: TSC cycles per load per hierarchy level",
		Paper:   "with the frequency-independent rdtsc clock, L1/L2 costs scale with the core frequency while L3/RAM stay constant (core vs uncore clock domains)",
		Machine: seqMachine,
		Run:     runFig13,
	})
}

// runUnrollHierarchy implements Figs. 11/12: unroll 1..8 × 4 levels, the
// minimum over the generated load/store patterns per group.
func runUnrollHierarchy(ctx context.Context, cfg Config, op string) (*stats.Table, error) {
	maxU := 8
	unrolls := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if cfg.Quick {
		unrolls = []int{1, 2, 4, 8}
	}
	vs, err := generateLoadStore(op, maxU)
	if err != nil {
		return nil, err
	}
	levels, err := hierarchyLevels(seqMachine)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  fmt.Sprintf("Figs. 11/12: %s cycles per instruction vs unroll, per hierarchy level", op),
		XLabel: "load/store instructions in the loop (unroll factor)",
		YLabel: "cycles/instruction",
	}
	for _, level := range levels {
		series := t.AddSeries(level.Name)
		for _, u := range unrolls {
			best := 0.0
			for _, pat := range patterns(u) {
				prog, err := vs.get(u, pat)
				if err != nil {
					return nil, err
				}
				opts := launcher.DefaultOptions()
				opts.MachineName = seqMachine
				opts.ArrayBytes = level.Bytes
				opts.InnerReps = 2
				opts.OuterReps = 2
				opts.MaxInstructions = 300_000
				if cfg.Quick {
					opts.InnerReps = 1
					opts.OuterReps = 1
					opts.MaxInstructions = 60_000
				}
				if level.Name == "RAM" {
					// A truncated call covers less than the array; a
					// second call would re-measure the now-cached
					// prefix. One cold truncated run IS the RAM
					// measurement.
					opts.InnerReps = 1
					opts.OuterReps = 1
				}
				m, err := launcher.Launch(ctx, prog, opts)
				if err != nil {
					return nil, fmt.Errorf("%s u=%d %s %s: %w", op, u, pat, level.Name, err)
				}
				perInst := m.Value / float64(u)
				if best == 0 || perInst < best {
					best = perInst
				}
			}
			cfg.logf("%s %s u=%d: min %.3f cycles/inst", op, level.Name, u, best)
			series.Add(float64(u), best)
		}
	}
	return t, nil
}

func runFig13(ctx context.Context, cfg Config) (*stats.Table, error) {
	desc, err := machine.ByName(seqMachine)
	if err != nil {
		return nil, err
	}
	levels, err := hierarchyLevels(seqMachine)
	if err != nil {
		return nil, err
	}
	freqs := desc.FrequencyStepsGHz
	if cfg.Quick {
		freqs = []float64{freqs[0], freqs[len(freqs)-1]}
	}
	prog, err := loadOnlyKernel("movaps", 8)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:  "Fig. 13: TSC cycles per load (8-load movaps) vs core frequency",
		XLabel: "core frequency (GHz)",
		YLabel: "TSC cycles/load",
	}
	for _, level := range levels {
		series := t.AddSeries(level.Name)
		for _, f := range freqs {
			opts := launcher.DefaultOptions()
			opts.MachineName = seqMachine
			opts.CoreFrequencyGHz = f
			opts.ArrayBytes = level.Bytes
			opts.InnerReps = 2
			opts.OuterReps = 2
			opts.MaxInstructions = 300_000
			if cfg.Quick {
				opts.InnerReps = 1
				opts.OuterReps = 1
				opts.MaxInstructions = 60_000
			}
			if level.Name == "RAM" {
				opts.InnerReps = 1
				opts.OuterReps = 1
			}
			m, err := launcher.Launch(ctx, prog, opts)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s %.2fGHz: %w", level.Name, f, err)
			}
			series.Add(f, m.Value/8)
			cfg.logf("fig13 %s %.2fGHz: %.3f TSC cycles/load", level.Name, f, m.Value/8)
		}
	}
	return t, nil
}
