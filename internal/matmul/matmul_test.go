package matmul

import (
	"math"
	"sort"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/cpu"
	"microtools/internal/isa"
	"microtools/internal/passes"
	"microtools/internal/xmlspec"
)

// traceMem records every access for functional-equivalence checks.
type traceMem struct {
	loads  []uint64
	stores []uint64
}

func (m *traceMem) Load(_ int, addr uint64, _ int, issue int64) int64 {
	m.loads = append(m.loads, addr)
	return issue + 4
}

func (m *traceMem) Store(_ int, addr uint64, _ int, issue int64) int64 {
	m.stores = append(m.stores, addr)
	return issue + 1
}

func runFull(t *testing.T, u int, n uint64) (*traceMem, cpu.Result, uint64) {
	t.Helper()
	p, err := Full(u)
	if err != nil {
		t.Fatal(err)
	}
	mem := &traceMem{}
	core := cpu.NewCore(0, isa.Nehalem(), mem)
	var rf isa.RegFile
	rf.Set(isa.RDI, n)
	rf.Set(isa.RSI, 0x100000) // A
	rf.Set(isa.RDX, 0x200000) // B
	rf.Set(isa.RCX, 0x300000) // C
	if err := core.Reset(p, &rf, 0, 0); err != nil {
		t.Fatal(err)
	}
	done, err := core.Step(math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("did not finish")
	}
	return mem, core.Result(), core.Reg(isa.RAX)
}

func TestFullMatmulAccessPattern(t *testing.T) {
	n := uint64(8)
	mem, _, eax := runFull(t, 1, n)
	// N^2 result stores.
	if got := len(mem.stores); got != int(n*n) {
		t.Errorf("stores = %d, want %d", got, n*n)
	}
	// 2 loads per inner iteration (B element + C element): 2*N^3.
	if got := len(mem.loads); got != int(2*n*n*n) {
		t.Errorf("loads = %d, want %d", got, 2*n*n*n)
	}
	// %eax counts multiply-adds: N^3.
	if eax != n*n*n {
		t.Errorf("eax = %d, want %d", eax, n*n*n)
	}
	// Stores walk A linearly.
	for i, s := range mem.stores {
		want := uint64(0x100000) + uint64(i)*8
		if s != want {
			t.Fatalf("store %d at %#x, want %#x", i, s, want)
		}
	}
}

// TestUnrolledMatmulEquivalent: every unroll factor touches exactly the
// same multiset of addresses and reports the same multiply-add count.
func TestUnrolledMatmulEquivalent(t *testing.T) {
	n := uint64(8)
	ref, _, refEax := runFull(t, 1, n)
	sort.Slice(ref.loads, func(i, j int) bool { return ref.loads[i] < ref.loads[j] })
	for _, u := range []int{2, 4, 8} {
		mem, _, eax := runFull(t, u, n)
		if eax != refEax {
			t.Errorf("u=%d: eax = %d, want %d", u, eax, refEax)
		}
		if len(mem.stores) != len(ref.stores) {
			t.Errorf("u=%d: stores = %d, want %d", u, len(mem.stores), len(ref.stores))
		}
		sort.Slice(mem.loads, func(i, j int) bool { return mem.loads[i] < mem.loads[j] })
		if len(mem.loads) != len(ref.loads) {
			t.Fatalf("u=%d: loads = %d, want %d", u, len(mem.loads), len(ref.loads))
		}
		for i := range mem.loads {
			if mem.loads[i] != ref.loads[i] {
				t.Fatalf("u=%d: load multiset diverges at %d: %#x vs %#x", u, i, mem.loads[i], ref.loads[i])
			}
		}
	}
}

// TestUnrollGainIsModest reproduces the Fig. 5 claim: the accumulator
// dependence bounds the inner loop, so unrolling 8x buys only a modest
// improvement (paper: ~9%, microbench estimate 8.2%).
func TestUnrollGainIsModest(t *testing.T) {
	n := uint64(32)
	_, r1, e1 := runFull(t, 1, n)
	_, r8, e8 := runFull(t, 8, n)
	c1 := float64(r1.Cycles) / float64(e1)
	c8 := float64(r8.Cycles) / float64(e8)
	gain := (c1 - c8) / c1
	if gain <= 0 {
		t.Errorf("unrolling made matmul slower: u1=%.2f u8=%.2f cycles/mul-add", c1, c8)
	}
	if gain > 0.5 {
		t.Errorf("unroll gain %.0f%% too large; accumulator chain should bound it (paper: ~9%%, model: ~40%%)", gain*100)
	}
}

func TestSourceRejectsBadUnroll(t *testing.T) {
	if _, err := Source(0); err == nil {
		t.Error("unroll 0 accepted")
	}
	if _, err := Source(9); err == nil {
		t.Error("unroll 9 accepted")
	}
}

// TestInnerSpecPipeline: the MicroCreator description of the inner loop
// generates one variant per unroll factor, each with consistent per-copy
// register rotation and the multiply-add counting protocol.
func TestInnerSpecPipeline(t *testing.T) {
	ks, err := xmlspec.ParseString(InnerSpec(8*64, 8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &passes.Context{EmitAssembly: true}
	out, err := passes.NewManager().Run(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("variants = %d, want 8", len(out))
	}
	// Execute the u=4 variant functionally: %eax must count 4 per loop
	// iteration.
	for _, prog := range ctx.Programs {
		if prog.Kernel.Unroll != 4 {
			continue
		}
		asmText, err := prog.Assembly()
		if err != nil {
			t.Fatalf("%s: render: %v", prog.Name, err)
		}
		p, err := parseProgram(asmText, prog.Name)
		if err != nil {
			t.Fatalf("%s: %v\n%s", prog.Name, err, asmText)
		}
		mem := &traceMem{}
		core := cpu.NewCore(0, isa.Nehalem(), mem)
		var rf isa.RegFile
		rf.Set(isa.RDI, 63) // 64 elements
		rf.Set(isa.RSI, 0x100000)
		rf.Set(isa.RDX, 0x200000)
		if err := core.Reset(p, &rf, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := core.Step(math.MaxInt64); err != nil {
			t.Fatal(err)
		}
		// 64 elements / 4 per iteration = 16 iterations; eax counts 4
		// per iteration = 64 multiply-adds.
		if got := core.Reg(isa.RAX); got != 64 {
			t.Errorf("%s: eax = %d, want 64 multiply-adds", prog.Name, got)
		}
		// Two loads per copy: 2*64.
		if len(mem.loads) != 128 {
			t.Errorf("%s: loads = %d, want 128", prog.Name, len(mem.loads))
		}
		return
	}
	t.Fatal("no u=4 variant emitted")
}

func parseProgram(src, name string) (*isa.Program, error) {
	return asm.ParseOne(src, name)
}
