// Package matmul builds the paper's §2 motivation workload: the naive
// matrix multiplication of Fig. 1, whose GCC -O3 inner loop is shown in
// Fig. 2. It provides
//
//   - Full(unroll): the complete triple-nested kernel in the MicroTools
//     assembly subset, with the inner (k) loop unrolled 1..8 — the "actual
//     code" side of Fig. 5;
//   - InnerSpec(stride): the MicroCreator XML description of the inner
//     loop's load-multiply-accumulate pattern — run through the pass
//     pipeline it yields the "micro-benchmark equivalent" side of Fig. 5.
//
// Calling convention (§4.4): %rdi = N (TripExact), %rsi = A (result),
// %rdx = B, %rcx = C, each an N×N row-major array of float64. %eax returns
// the executed inner-loop iteration count.
package matmul

import (
	"fmt"
	"strings"

	"microtools/internal/asm"
	"microtools/internal/isa"
)

// MaxUnroll is the largest supported inner-loop unroll factor.
const MaxUnroll = 8

// Source renders the triple-nested naive matmul with the inner loop
// unrolled u times. The inner loop body follows Fig. 2's instruction
// pattern (movsd load, mulsd with memory operand, addsd accumulate); the
// single-accumulator dependence is preserved across unroll copies, exactly
// as a naive source-level unroll keeps it — which is why the paper sees
// only a ~9% gain from unrolling (§2).
func Source(u int) (string, error) {
	if u < 1 || u > MaxUnroll {
		return "", fmt.Errorf("matmul: unroll %d outside [1,%d]", u, MaxUnroll)
	}
	var b strings.Builder
	name := Name(u)
	fmt.Fprintf(&b, "    .text\n    .globl %s\n    .type %s, @function\n%s:\n", name, name, name)
	b.WriteString(`    xor %eax, %eax
    mov %rdi, %r11
    shl $3, %r11            # row stride in bytes
    mov %rsi, %r12          # result walker (A)
    mov %rdx, %r13          # B row base
    xor %r10, %r10          # i = 0
.Li:
    xor %r9, %r9            # j = 0
.Lj:
    xorps %xmm1, %xmm1      # accumulator
    xor %rbx, %rbx          # k = 0
    lea (%rcx,%r9,8), %r8   # &C[0*N + j]
.Lk:
`)
	for c := 0; c < u; c++ {
		reg := fmt.Sprintf("%%xmm%d", 2+c%6)
		fmt.Fprintf(&b, "    movsd %d(%%r13,%%rbx,8), %s\n", 8*c, reg)
		fmt.Fprintf(&b, "    mulsd (%%r8), %s\n", reg)
		b.WriteString("    add %r11, %r8\n")
		fmt.Fprintf(&b, "    addsd %s, %%xmm1\n", reg)
	}
	fmt.Fprintf(&b, "    add $%d, %%eax\n", u)
	fmt.Fprintf(&b, "    add $%d, %%rbx\n", u)
	b.WriteString(`    cmp %rdi, %rbx
    jl .Lk
    movsd %xmm1, (%r12)
    add $8, %r12
    add $1, %r9
    cmp %rdi, %r9
    jl .Lj
    add %r11, %r13
    add $1, %r10
    cmp %rdi, %r10
    jl .Li
    ret
`)
	return b.String(), nil
}

// Name returns the kernel symbol for an unroll factor.
func Name(u int) string {
	if u == 1 {
		return "matmul_naive"
	}
	return fmt.Sprintf("matmul_u%d", u)
}

// Full parses the generated source into an executable program.
func Full(u int) (*isa.Program, error) {
	src, err := Source(u)
	if err != nil {
		return nil, err
	}
	return asm.ParseOne(src, Name(u))
}

// InnerSpec is the MicroCreator kernel description abstracting the Fig. 2
// inner loop: a movsd load from the streaming B row, a mulsd against the
// column-strided C walk, and an addsd into a pinned accumulator, with the
// unroll range of Fig. 5. rowStrideBytes is N*8, the C column step.
func InnerSpec(rowStrideBytes int64, maxUnroll int) string {
	return fmt.Sprintf(`
<kernel name="matmul_inner">
  <description>Fig. 2 inner loop as a MicroCreator template (Fig. 5)</description>
  <element_size>8</element_size>
  <instruction>
    <operation>movsd</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%%xmm</phyName><min>2</min><max>8</max></register>
  </instruction>
  <instruction>
    <operation>mulsd</operation>
    <memory><register><name>r2</name></register><offset>0</offset></memory>
    <register><phyName>%%xmm</phyName><min>2</min><max>8</max></register>
  </instruction>
  <instruction>
    <operation>addsd</operation>
    <register><phyName>%%xmm</phyName><min>2</min><max>8</max></register>
    <register><phyName>%%xmm1</phyName></register>
  </instruction>
  <unrolling><min>1</min><max>%d</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>8</increment>
    <offset>8</offset>
  </induction>
  <induction>
    <register><name>r2</name></register>
    <increment>%d</increment>
    <offset>%d</offset>
  </induction>
  <induction>
    <!-- plain (unroll-scaled) counter: +u per loop iteration, i.e. it
         counts multiply-adds, matching the full kernel's protocol -->
    <register><phyName>%%eax</phyName></register>
    <increment>1</increment>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <branch_information><label>.Lk</label><test>jge</test></branch_information>
</kernel>`, maxUnroll, rowStrideBytes, rowStrideBytes)
}
