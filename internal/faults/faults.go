// Package faults is a deterministic, seed-driven fault-injection registry:
// the chaos substrate behind the campaign engine's resilience policy.
//
// The paper's central claim for MicroLauncher is measurement in a stable,
// controlled environment (§4); nanoBench and μOpTime extend that claim to
// the runner itself — how a measurement campaign behaves under disturbance
// is part of the measurement contract, not an afterthought. This package
// makes failure paths exercisable on demand and, crucially, reproducible:
//
//   - named injection points thread through the execution stack (worker
//     launch, measurement-cache I/O, launcher repetition boundaries, sim
//     stepping — see the Point* constants);
//   - whether a given (point, key) site faults is a pure function of the
//     injector's seed, never of wall-clock time or goroutine scheduling,
//     so the injected-fault set of a campaign is bit-reproducible from the
//     seed alone regardless of worker count;
//   - faults carry a transient-vs-permanent taxonomy reachable through
//     errors.Is/As, which the campaign's retry policy keys off: transient
//     faults heal after Burst consecutive injections at a site, permanent
//     ones never do.
//
// The error surface composes with the standard errors package:
//
//	errors.Is(err, faults.ErrInjected)   // any injected fault
//	errors.Is(err, faults.ErrTransient)  // transient (retry may succeed)
//	errors.Is(err, faults.ErrPermanent)  // permanent (retry is futile)
//	var fe *faults.Error
//	errors.As(err, &fe)                  // fe.Point, fe.Key, fe.Class
//
// Transient and Permanent wrap real (non-injected) errors into the same
// taxonomy, so custom launchers and stores can classify their own failures
// and have the campaign retry policy treat them uniformly.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"microtools/internal/obs"
)

// Named injection points, in execution-stack order. An Injector accepts
// arbitrary point names (plugins may add their own); these constants cover
// the built-in instrumentation.
const (
	// PointCampaignLaunch fires in the campaign worker as a variant's
	// launch begins (key: the variant name).
	PointCampaignLaunch = "campaign.launch"
	// PointCacheGet fires inside Cache.Get (key: the cache key); an
	// injected fault degrades the lookup to a miss.
	PointCacheGet = "cache.get"
	// PointCachePut fires inside Cache.Put before the entry is stored
	// (key: the cache key); the measurement is reported uncacheable.
	PointCachePut = "cache.put"
	// PointCacheCheckpoint fires on the checkpoint append to the backing
	// file (key: the cache key): the entry lands in memory but the write
	// "fails", the torn-checkpoint scenario.
	PointCacheCheckpoint = "cache.checkpoint"
	// PointLauncherRep fires at every outer-repetition boundary of the
	// launch protocol (key: kernel name + "/rep" + index).
	PointLauncherRep = "launcher.rep"
	// PointSimStep fires as the simulator starts stepping a job batch
	// (key: the launch's fault key + the program name).
	PointSimStep = "sim.step"
)

// Points lists the built-in injection points in execution-stack order.
func Points() []string {
	return []string{
		PointCampaignLaunch,
		PointCacheGet,
		PointCachePut,
		PointCacheCheckpoint,
		PointLauncherRep,
		PointSimStep,
	}
}

// Class is a fault's retry semantics.
type Class int

const (
	// ClassTransient faults heal: a retry of the same site succeeds once
	// the site's Burst budget is consumed.
	ClassTransient Class = iota
	// ClassPermanent faults never heal; retrying is futile.
	ClassPermanent
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Sentinel errors for the errors.Is taxonomy. ErrInjected matches every
// injector-produced fault; ErrTransient/ErrPermanent match by class (and
// also match real errors wrapped via Transient/Permanent).
var (
	ErrInjected  = errors.New("faults: injected fault")
	ErrTransient = errors.New("faults: transient fault")
	ErrPermanent = errors.New("faults: permanent fault")
)

// Error is one classified fault: either injected by an Injector (Err wraps
// ErrInjected) or a real error wrapped into the taxonomy by Transient /
// Permanent.
type Error struct {
	// Point is the injection point that produced the fault ("" for
	// wrapped real errors).
	Point string
	// Key identifies the faulting site within the point ("" for wrapped
	// real errors).
	Key string
	// Class is the retry semantics.
	Class Class
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	if e.Point == "" {
		return fmt.Sprintf("%s fault: %v", e.Class, e.Err)
	}
	return fmt.Sprintf("%s fault at %s[%s]: %v", e.Class, e.Point, e.Key, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the class sentinels: a transient *Error is ErrTransient, a
// permanent one ErrPermanent (ErrInjected matches through Unwrap).
func (e *Error) Is(target error) bool {
	switch target {
	case ErrTransient:
		return e.Class == ClassTransient
	case ErrPermanent:
		return e.Class == ClassPermanent
	}
	return false
}

// Transient wraps a real error as a transient fault: errors.Is(..,
// ErrTransient) holds and the campaign retry policy will re-attempt it.
// A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: ClassTransient, Err: err}
}

// Permanent wraps a real error as a permanent fault: errors.Is(..,
// ErrPermanent) holds and retry is skipped. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: ClassPermanent, Err: err}
}

// IsTransient reports whether err is classified transient — the retry
// policy's gate. Unclassified errors are NOT transient: a plain launcher
// error (bad options, a malformed kernel) will not heal on retry.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsPermanent reports whether err is classified permanent.
func IsPermanent(err error) bool { return errors.Is(err, ErrPermanent) }

// Site is one faulting (point, key) pair an injector actually fired at.
type Site struct {
	Point string
	Key   string
	Class Class
	// Count is how many faults the site injected (capped at Burst for
	// transient sites).
	Count int
}

// Injector decides, deterministically from its seed, which (point, key)
// sites fault. The zero rate at every point means no faults; SetRate arms
// individual points (or "*" for all). Whether a site faults depends only
// on (seed, point, key) — never on time, ordering or concurrency — so two
// runs over the same variant set inject the identical fault set.
//
// Transient sites fault on their first Burst checks and then heal: the
// campaign's bounded retry of a faulted variant re-checks the same site
// and succeeds, which is what makes "same seed ⇒ clean-run-identical
// final results" provable. Permanent sites fault on every check.
//
// A nil *Injector is the disabled default: Check returns nil immediately,
// mirroring the nil-*Tracer and nil-*CounterSet conventions.
type Injector struct {
	seed  int64
	burst int
	class Class

	mu       sync.Mutex
	rates    map[string]float64
	hits     map[[2]string]int
	counters *obs.CounterSet
}

// New returns an injector with no armed points: every Check passes until
// SetRate arms a point.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		burst: 1,
		rates: map[string]float64{},
		hits:  map[[2]string]int{},
	}
}

// SetRate arms an injection point with a fault probability in [0, 1].
// The point "*" sets the default rate for every point without an explicit
// one. Returns the injector for chaining.
func (in *Injector) SetRate(point string, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rates[point] = rate
	return in
}

// SetBurst sets how many consecutive checks of a transient faulty site
// fail before it heals (default 1). Returns the injector for chaining.
func (in *Injector) SetBurst(n int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n > 0 {
		in.burst = n
	}
	return in
}

// SetClass selects the class of injected faults (default ClassTransient).
// Returns the injector for chaining.
func (in *Injector) SetClass(c Class) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.class = c
	return in
}

// SetCounters attaches an event-counter registry; every injection
// increments "faults.injected". Returns the injector for chaining.
func (in *Injector) SetCounters(cs *obs.CounterSet) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counters = cs
	return in
}

// faulty reports whether the site is in the seed's fault set: a pure
// function of (seed, point, key). Callers hold in.mu.
func (in *Injector) faulty(point, key string) bool {
	rate, ok := in.rates[point]
	if !ok {
		rate = in.rates["*"]
	}
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	var seedBytes [8]byte
	for i := range seedBytes {
		seedBytes[i] = byte(uint64(in.seed) >> (8 * i))
	}
	h.Write(seedBytes[:])
	h.Write([]byte(point))
	h.Write([]byte{0})
	h.Write([]byte(key))
	// 53 mantissa bits of the hash → uniform in [0, 1).
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return u < rate
}

// Check consults the fault plan at an injection point. It returns nil for
// healthy sites; for faulty ones it returns an *Error of the configured
// class. Transient sites return errors on their first Burst checks only —
// the (deterministic) model of a disturbance that passes: a retry of the
// same site succeeds. Permanent sites fail every check.
func (in *Injector) Check(point, key string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if !in.faulty(point, key) {
		in.mu.Unlock()
		return nil
	}
	site := [2]string{point, key}
	if in.class == ClassTransient && in.hits[site] >= in.burst {
		in.mu.Unlock()
		return nil // healed: the site's burst budget is spent
	}
	in.hits[site]++
	class := in.class
	counters := in.counters
	in.mu.Unlock()
	counters.Inc("faults.injected")
	return &Error{Point: point, Key: key, Class: class, Err: ErrInjected}
}

// Count returns the total number of faults injected so far.
func (in *Injector) Count() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, c := range in.hits {
		n += int64(c)
	}
	return n
}

// Injected returns every site that fired, sorted by (point, key) — the
// stable form the chaos harness compares across runs.
func (in *Injector) Injected() []Site {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Site, 0, len(in.hits))
	for site, n := range in.hits {
		out = append(out, Site{Point: site[0], Key: site[1], Class: in.class, Count: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Point != out[b].Point {
			return out[a].Point < out[b].Point
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Reset forgets every site's hit history (the fault plan itself — seed,
// rates, burst, class — is kept), so one injector can replay the same
// schedule over a fresh campaign.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits = map[[2]string]int{}
}
