package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"microtools/internal/obs"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.Check(PointCampaignLaunch, "k"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Count() != 0 || in.Injected() != nil {
		t.Fatal("nil injector reports activity")
	}
	in.Reset() // must not panic
}

func TestUnarmedPointsNeverFault(t *testing.T) {
	in := New(42)
	for _, p := range Points() {
		for i := 0; i < 100; i++ {
			if err := in.Check(p, fmt.Sprintf("key%d", i)); err != nil {
				t.Fatalf("unarmed point %s faulted: %v", p, err)
			}
		}
	}
}

func TestDecisionIsDeterministicInSeedPointKey(t *testing.T) {
	faultedBy := func(seed int64) map[string]bool {
		in := New(seed).SetRate("*", 0.5)
		out := map[string]bool{}
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("variant%d", i)
			out[key] = in.Check(PointCampaignLaunch, key) != nil
		}
		return out
	}
	a, b := faultedBy(7), faultedBy(7)
	nFaulted := 0
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same seed disagrees on %s", k)
		}
		if v {
			nFaulted++
		}
	}
	if nFaulted == 0 || nFaulted == len(a) {
		t.Fatalf("rate 0.5 faulted %d of %d sites: not probabilistic", nFaulted, len(a))
	}
	c := faultedBy(8)
	same := 0
	for k, v := range a {
		if c[k] == v {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the identical fault set")
	}
}

func TestDeterminismUnderConcurrency(t *testing.T) {
	// The fault set must not depend on check ordering: hammer one injector
	// from many goroutines and compare against a serial replay.
	in := New(99).SetRate("*", 0.4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 400; i += 8 {
				in.Check(PointLauncherRep, fmt.Sprintf("k%d", i))
			}
		}(w)
	}
	wg.Wait()
	serial := New(99).SetRate("*", 0.4)
	for i := 0; i < 400; i++ {
		serial.Check(PointLauncherRep, fmt.Sprintf("k%d", i))
	}
	got, want := in.Injected(), serial.Injected()
	if len(got) != len(want) {
		t.Fatalf("concurrent run injected %d sites, serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("site %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestTransientSitesHealAfterBurst(t *testing.T) {
	in := New(1).SetRate(PointCampaignLaunch, 1).SetBurst(2)
	key := "kernel_u4"
	for attempt := 0; attempt < 2; attempt++ {
		if err := in.Check(PointCampaignLaunch, key); err == nil {
			t.Fatalf("attempt %d: expected injected fault", attempt)
		}
	}
	if err := in.Check(PointCampaignLaunch, key); err != nil {
		t.Fatalf("site did not heal after burst: %v", err)
	}
	if got := in.Count(); got != 2 {
		t.Fatalf("injected %d faults, want 2", got)
	}
}

func TestPermanentSitesNeverHeal(t *testing.T) {
	in := New(1).SetRate("*", 1).SetClass(ClassPermanent)
	for i := 0; i < 5; i++ {
		err := in.Check(PointCachePut, "k")
		if err == nil {
			t.Fatalf("check %d: permanent site healed", i)
		}
		if !errors.Is(err, ErrPermanent) || errors.Is(err, ErrTransient) {
			t.Fatalf("check %d: wrong class: %v", i, err)
		}
	}
}

func TestErrorTaxonomy(t *testing.T) {
	in := New(3).SetRate("*", 1)
	err := in.Check(PointSimStep, "k/inner0")
	if err == nil {
		t.Fatal("rate 1 did not inject")
	}
	if !errors.Is(err, ErrInjected) {
		t.Error("injected fault does not match ErrInjected")
	}
	if !errors.Is(err, ErrTransient) {
		t.Error("transient fault does not match ErrTransient")
	}
	if errors.Is(err, ErrPermanent) {
		t.Error("transient fault matches ErrPermanent")
	}
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatal("injected fault is not a *faults.Error")
	}
	if fe.Point != PointSimStep || fe.Key != "k/inner0" || fe.Class != ClassTransient {
		t.Errorf("fault fields: %+v", fe)
	}
	if !IsTransient(err) || IsPermanent(err) {
		t.Error("IsTransient/IsPermanent disagree with the sentinels")
	}
}

func TestWrappedRealErrors(t *testing.T) {
	cause := errors.New("connection reset")
	terr := Transient(cause)
	if !IsTransient(terr) || !errors.Is(terr, cause) {
		t.Errorf("Transient wrap: transient=%v cause=%v", IsTransient(terr), errors.Is(terr, cause))
	}
	if errors.Is(terr, ErrInjected) {
		t.Error("wrapped real error must not claim to be injected")
	}
	perr := Permanent(cause)
	if !IsPermanent(perr) || IsTransient(perr) {
		t.Error("Permanent wrap misclassified")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("wrapping nil must return nil")
	}
}

func TestExactRateOverridesWildcard(t *testing.T) {
	in := New(5).SetRate("*", 1).SetRate(PointCacheGet, 0)
	if err := in.Check(PointCacheGet, "k"); err != nil {
		t.Errorf("exact rate 0 should win over wildcard: %v", err)
	}
	if err := in.Check(PointCachePut, "k"); err == nil {
		t.Error("wildcard rate 1 should fault unlisted points")
	}
}

func TestCountersAndInjectedList(t *testing.T) {
	cs := obs.NewCounterSet()
	in := New(11).SetRate("*", 1).SetCounters(cs)
	in.Check(PointCampaignLaunch, "b")
	in.Check(PointCampaignLaunch, "a")
	in.Check(PointCacheGet, "a")
	if got := cs.Get("faults.injected"); got != 3 {
		t.Errorf("faults.injected = %d, want 3", got)
	}
	sites := in.Injected()
	if len(sites) != 3 {
		t.Fatalf("%d sites, want 3", len(sites))
	}
	// Sorted by (point, key).
	if sites[0].Point != PointCacheGet || sites[1].Key != "a" || sites[2].Key != "b" {
		t.Errorf("sites not sorted: %+v", sites)
	}
	in.Reset()
	if in.Count() != 0 {
		t.Error("Reset did not clear hit history")
	}
	if err := in.Check(PointCampaignLaunch, "a"); err == nil {
		t.Error("Reset must keep the fault plan armed")
	}
}
