package dataflow_test

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/dataflow"
	"microtools/internal/isa"
	"microtools/internal/matmul"
)

func parse(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.ParseOne(src, "k")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// chainKernel has a single 3-cycle FP-add recurrence through %xmm1 and a
// counter that steps by one.
const chainKernel = `
k:
	xor %eax, %eax
.L0:
	addps %xmm1, %xmm1
	add $1, %eax
	sub $4, %rdi
	jge .L0
	ret
`

func TestChainKernelBounds(t *testing.T) {
	rep, err := dataflow.Analyze(parse(t, chainKernel), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoopStart != 1 || rep.LoopEnd != 4 {
		t.Errorf("loop = [%d,%d], want [1,4]", rep.LoopStart, rep.LoopEnd)
	}
	if rep.CounterStep != 1 {
		t.Errorf("counter step = %d, want 1", rep.CounterStep)
	}
	// The addps chain is the binding recurrence: FPAddLat = 3 on Nehalem.
	if rep.LatencyBound != 3 {
		t.Errorf("latency bound = %g, want 3", rep.LatencyBound)
	}
	if rep.CyclesLowerBound != 3 {
		t.Errorf("cycles lower bound = %g, want 3", rep.CyclesLowerBound)
	}
	// 4 µops, all unfused, issue width 4.
	if rep.Uops != 4 || rep.UnfusedUops != 4 {
		t.Errorf("uops = %d/%d, want 4/4", rep.Uops, rep.UnfusedUops)
	}
	if rep.FrontendBound != 1 {
		t.Errorf("frontend bound = %g, want 1", rep.FrontendBound)
	}
	if len(rep.CriticalPath) != 1 || rep.CriticalPath[0].Resource != "%xmm1" {
		t.Errorf("critical path = %+v, want the single addps step", rep.CriticalPath)
	}
	if len(rep.DeadWrites) != 0 {
		t.Errorf("unexpected dead writes: %+v", rep.DeadWrites)
	}
	found := false
	for _, c := range rep.LoopCarried {
		if c.Resource == "%xmm1" && c.Length == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("loop carried missing %%xmm1/3: %+v", rep.LoopCarried)
	}
}

// crossKernel chains through two registers: mulss feeds addss, and the
// addss result feeds next iteration's mulss. The recurrence spans two
// resources, so the naive "sum of distances" overestimates; the true cycle
// mean on Nehalem is (4+3)/1 = 7 for the 1-iteration cycle through both
// writes... the cycle is xmm0 -> xmm2 -> xmm0 over TWO iterations only if
// the reads split; here both happen inside one iteration, closing through
// xmm2's carried read, so the mean is (4+3)/1.
const crossKernel = `
k:
	xor %eax, %eax
.L0:
	mulss %xmm2, %xmm0
	addss %xmm0, %xmm2
	add $1, %eax
	sub $4, %rdi
	jge .L0
	ret
`

func TestCrossRegisterRecurrence(t *testing.T) {
	rep, err := dataflow.Analyze(parse(t, crossKernel), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	// xmm2's carried value feeds mulss (lat 4) then addss (lat 3) back
	// into xmm2 within one iteration: cycle mean 7. xmm0's self-cycle is
	// mulss alone: 4.
	if rep.LatencyBound != 7 {
		t.Errorf("latency bound = %g, want 7", rep.LatencyBound)
	}
}

// independentKernel breaks the chain each iteration: the xorps write of
// xmm1 does not read xmm1, so no FP recurrence survives and only the
// integer counter chains (latency 1).
const independentKernel = `
k:
	xor %eax, %eax
.L0:
	xorps %xmm1, %xmm1
	addps %xmm2, %xmm1
	add $1, %eax
	sub $4, %rdi
	jge .L0
	ret
`

func TestIndependentIterationsLatency(t *testing.T) {
	rep, err := dataflow.Analyze(parse(t, independentKernel), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	// xorps xmm1,xmm1 READS xmm1 in the ISA model (it is not special-cased
	// as a zeroing idiom), so the xmm1 chain is xorps(1)+addps(3) = 4.
	if rep.LatencyBound != 4 {
		t.Errorf("latency bound = %g, want 4", rep.LatencyBound)
	}
}

func TestDeadWriteAndSelfMove(t *testing.T) {
	src := `
k:
	xor %eax, %eax
.L0:
	mov $7, %rcx
	mov %rdx, %rdx
	movaps (%rsi), %xmm0
	add $1, %eax
	sub $4, %rdi
	jge .L0
	ret
`
	rep, err := dataflow.Analyze(parse(t, src), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	var dead []string
	hasMem := map[string]bool{}
	for _, d := range rep.DeadWrites {
		dead = append(dead, d.Resource)
		hasMem[d.Resource] = d.HasMem
	}
	// %rcx is never read; the load's %xmm0 is dead but flagged as a
	// memory access. The self-move of %rdx is NOT liveness-dead — it
	// keeps itself alive around the loop — which is why redundant self
	// moves are their own rule (V010) rather than a dead-write case.
	want := map[string]bool{"%rcx": false, "%xmm0": true}
	if len(dead) != len(want) {
		t.Fatalf("dead writes = %v, want %v", dead, want)
	}
	for r, mem := range want {
		if hasMem[r] != mem {
			t.Errorf("dead write %s: HasMem = %v, want %v", r, hasMem[r], mem)
		}
	}
	if len(rep.SelfMoves) != 1 {
		t.Errorf("self moves = %v, want one", rep.SelfMoves)
	}
}

func TestPortPressureBound(t *testing.T) {
	// Three FP adds (all P1-only on Nehalem) per iteration: the P1 class
	// alone forces 3 cycles even though latency chains are independent.
	src := `
k:
	xor %eax, %eax
.L0:
	addps %xmm4, %xmm1
	addps %xmm5, %xmm2
	addps %xmm6, %xmm3
	add $1, %eax
	sub $4, %rdi
	jge .L0
	ret
`
	rep, err := dataflow.Analyze(parse(t, src), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThroughputBound != 3 {
		t.Errorf("throughput bound = %g, want 3 (three P1-only adds)", rep.ThroughputBound)
	}
	if rep.PortPressure[0].Ports != "P1" {
		t.Errorf("top port class = %s, want P1", rep.PortPressure[0].Ports)
	}
}

func TestCarriedEdgesPresent(t *testing.T) {
	rep, err := dataflow.Analyze(parse(t, chainKernel), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	carriedRAW := false
	for _, e := range rep.Edges {
		if e.Kind == dataflow.RAW && e.Carried && e.Resource == "%xmm1" {
			carriedRAW = true
			if e.Weight != 3 {
				t.Errorf("carried RAW weight = %g, want 3", e.Weight)
			}
		}
	}
	if !carriedRAW {
		t.Errorf("no carried RAW edge on %%xmm1: %+v", rep.Edges)
	}
}

func TestStraightLineProgram(t *testing.T) {
	rep, err := dataflow.Analyze(parse(t, "k:\n\tmov $3, %rax\n\tret\n"), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyBound != 0 || len(rep.LoopCarried) != 0 {
		t.Errorf("straight-line program has a recurrence: %+v", rep)
	}
	if rep.CounterStep != 0 {
		t.Errorf("counter step = %d, want 0 (mov write)", rep.CounterStep)
	}
}

// TestGoldenMatmulReports pins the full static model of the matmul seed
// kernel (unroll 1) on both Table 1 microarchitectures. The inner loop is
//
//	movsd 8(%r13,%rbx,8), %xmm2   (load, lat 0)
//	mulsd (%r8), %xmm2            (load + mul)
//	add %r11, %r8
//	addsd %xmm2, %xmm1            (accumulate)
//	add $1, %eax
//	add $1, %rbx
//	cmp %rdi, %rbx
//	jl .Lk
//
// whose binding recurrence is the addsd accumulation into %xmm1.
func TestGoldenMatmulReports(t *testing.T) {
	prog, err := matmul.Full(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		arch        *isa.Arch
		latency     float64
		throughput  float64
		frontend    float64
		counterStep int64
		loadClass   string
		loadPress   float64
	}{
		// 9 µops/iteration (8 unfused): both arches pack 7 µops into the
		// P0+P1+P5 ALU class (7/3 pressure), and the addsd accumulation
		// (FPAddLat 3) binds overall. The machines differ in the load
		// class: Nehalem's single load port serves 2 loads per iteration
		// (pressure 2), Sandy Bridge splits them across P2+P3.
		{isa.Nehalem(), 3, 7.0 / 3, 2, 1, "P2", 2},
		{isa.SandyBridge(), 3, 7.0 / 3, 2, 1, "P2+P3", 1},
	} {
		rep, err := dataflow.Analyze(prog, tc.arch)
		if err != nil {
			t.Fatalf("%s: %v", tc.arch.Name, err)
		}
		if rep.LatencyBound != tc.latency {
			t.Errorf("%s: latency bound = %g, want %g", tc.arch.Name, rep.LatencyBound, tc.latency)
		}
		if rep.ThroughputBound != tc.throughput {
			t.Errorf("%s: throughput bound = %g, want %g\nclasses: %+v",
				tc.arch.Name, rep.ThroughputBound, tc.throughput, rep.PortPressure)
		}
		if rep.FrontendBound != tc.frontend {
			t.Errorf("%s: frontend bound = %g, want %g", tc.arch.Name, rep.FrontendBound, tc.frontend)
		}
		if rep.CounterStep != tc.counterStep {
			t.Errorf("%s: counter step = %d, want %d", tc.arch.Name, rep.CounterStep, tc.counterStep)
		}
		if rep.CyclesLowerBound != tc.latency {
			t.Errorf("%s: cycles lower bound = %g, want %g", tc.arch.Name, rep.CyclesLowerBound, tc.latency)
		}
		if len(rep.DeadWrites) != 0 {
			t.Errorf("%s: matmul has dead writes: %+v", tc.arch.Name, rep.DeadWrites)
		}
		foundLoad := false
		for _, c := range rep.PortPressure {
			if c.Ports == tc.loadClass {
				foundLoad = true
				if c.Pressure != tc.loadPress {
					t.Errorf("%s: load class %s pressure = %g, want %g",
						tc.arch.Name, c.Ports, c.Pressure, tc.loadPress)
				}
			}
		}
		if !foundLoad {
			t.Errorf("%s: no %s port class: %+v", tc.arch.Name, tc.loadClass, rep.PortPressure)
		}
		var crit []string
		for _, s := range rep.CriticalPath {
			crit = append(crit, s.Inst)
		}
		if len(crit) != 1 || !strings.HasPrefix(crit[0], "addsd") {
			t.Errorf("%s: critical path = %v, want the addsd accumulation", tc.arch.Name, crit)
		}
	}
}

func TestReportWriters(t *testing.T) {
	rep, err := dataflow.Analyze(parse(t, chainKernel), isa.Nehalem())
	if err != nil {
		t.Fatal(err)
	}
	var tbl, js strings.Builder
	if err := rep.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kernel", "bounds", "latency 3.00", "carried", "%xmm1"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, tbl.String())
		}
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"cycles_lower_bound": 3`) {
		t.Errorf("JSON output missing bound:\n%s", js.String())
	}
}

func TestBoundsAreFinite(t *testing.T) {
	for _, src := range []string{chainKernel, crossKernel, independentKernel} {
		rep, err := dataflow.Analyze(parse(t, src), isa.SandyBridge())
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{
			"latency":    rep.LatencyBound,
			"throughput": rep.ThroughputBound,
			"frontend":   rep.FrontendBound,
			"lower":      rep.CyclesLowerBound,
		} {
			if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
				t.Errorf("%s bound = %g, want finite non-negative", name, v)
			}
		}
	}
}

// TestBoundsAgreeWithAnalyze: KernelBounds is the memoized lean slice of
// Analyze, and AnalyzeLiveness the liveness-only slice; over a spread of
// kernels (recurrence chains, dead writes, straight-line code, both matmul
// microarchitectures) every shared field must agree exactly with the full
// analysis — they are computed by the same passes, and any drift would
// desynchronize the campaign oracle from `microtools analyze`.
func TestBoundsAgreeWithAnalyze(t *testing.T) {
	progs := map[string]*isa.Program{
		"chain":       parse(t, chainKernel),
		"cross":       parse(t, crossKernel),
		"independent": parse(t, independentKernel),
		"straight":    parse(t, "k:\n\tmov $3, %rax\n\tret\n"),
	}
	for _, u := range []int{1, 4} {
		mp, err := matmul.Full(u)
		if err != nil {
			t.Fatal(err)
		}
		progs[fmt.Sprintf("matmul_u%d", u)] = mp
	}
	for _, arch := range []*isa.Arch{isa.Nehalem(), isa.SandyBridge()} {
		for name, p := range progs {
			rep, err := dataflow.Analyze(p, arch)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, arch.Name, err)
			}
			b, err := dataflow.KernelBounds(p, arch)
			if err != nil {
				t.Fatalf("%s/%s: KernelBounds: %v", name, arch.Name, err)
			}
			if b.LatencyBound != rep.LatencyBound || b.ThroughputBound != rep.ThroughputBound ||
				b.FrontendBound != rep.FrontendBound || b.CyclesLowerBound != rep.CyclesLowerBound {
				t.Errorf("%s/%s: bounds %+v diverge from Analyze (%g/%g/%g/%g)", name, arch.Name, b,
					rep.LatencyBound, rep.ThroughputBound, rep.FrontendBound, rep.CyclesLowerBound)
			}
			if b.CounterStep != rep.CounterStep || b.Uops != rep.Uops || b.UnfusedUops != rep.UnfusedUops {
				t.Errorf("%s/%s: counters %+v diverge from Analyze (%d/%d/%d)", name, arch.Name, b,
					rep.CounterStep, rep.Uops, rep.UnfusedUops)
			}
			// Memoized: a second query returns the identical value.
			again, err := dataflow.KernelBounds(p, arch)
			if err != nil || again != b {
				t.Errorf("%s/%s: memoized bounds changed: %+v vs %+v (%v)", name, arch.Name, again, b, err)
			}

			lrep, err := dataflow.AnalyzeLiveness(p, arch)
			if err != nil {
				t.Fatalf("%s/%s: AnalyzeLiveness: %v", name, arch.Name, err)
			}
			var fullDead, leanDead []dataflow.DeadWrite
			for _, d := range rep.DeadWrites {
				if !d.HasMem {
					fullDead = append(fullDead, d)
				}
			}
			for _, d := range lrep.DeadWrites {
				if !d.HasMem {
					leanDead = append(leanDead, d)
				}
			}
			if !reflect.DeepEqual(fullDead, leanDead) {
				t.Errorf("%s/%s: reportable dead writes diverge: %+v vs %+v", name, arch.Name, fullDead, leanDead)
			}
			if !reflect.DeepEqual(lrep.SelfMoves, rep.SelfMoves) {
				t.Errorf("%s/%s: self moves diverge: %v vs %v", name, arch.Name, lrep.SelfMoves, rep.SelfMoves)
			}
		}
	}
}
