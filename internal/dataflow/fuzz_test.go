package dataflow_test

import (
	"math"
	"testing"

	"microtools/internal/dataflow"
	"microtools/internal/isa"
	"microtools/internal/verify"
)

// FuzzAnalyze asserts the analyzer's contract with verify: any source that
// parses and carries no error-severity findings must analyze on both Table 1
// microarchitectures without panicking, and every bound must come out
// finite and non-negative.
func FuzzAnalyze(f *testing.F) {
	f.Add(`
k:
	xor %eax, %eax
.L0:
	movaps (%rsi), %xmm0
	addps %xmm1, %xmm1
	add $16, %rsi
	add $1, %eax
	sub $4, %rdi
	jge .L0
	ret
`)
	f.Add(`
k:
.L0:
	mulss %xmm2, %xmm0
	addss %xmm0, %xmm2
	add $1, %eax
	sub $1, %rdi
	jge .L0
	ret
`)
	f.Add("k:\nret\n")
	f.Add("k:\n\tmov $1, %rax\n\tret\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, ds := verify.AsmProgram(src, "fuzz", verify.Options{})
		if prog == nil || ds.HasErrors() {
			return
		}
		for _, arch := range []*isa.Arch{isa.Nehalem(), isa.SandyBridge()} {
			rep, err := dataflow.Analyze(prog, arch)
			if err != nil {
				// The decoder's Validate is stricter than verify in a few
				// corners (e.g. GPR loads); a structured error is fine,
				// only a panic or a bad bound is a bug.
				continue
			}
			for name, v := range map[string]float64{
				"latency":    rep.LatencyBound,
				"throughput": rep.ThroughputBound,
				"frontend":   rep.FrontendBound,
				"lower":      rep.CyclesLowerBound,
			} {
				if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
					t.Fatalf("%s bound = %g on %s, want finite non-negative\nsrc:\n%s",
						name, v, arch.Name, src)
				}
			}
			if rep.CyclesLowerBound < rep.LatencyBound ||
				rep.CyclesLowerBound < rep.ThroughputBound ||
				rep.CyclesLowerBound < rep.FrontendBound {
				t.Fatalf("lower bound %g below a component bound on %s\nsrc:\n%s",
					rep.CyclesLowerBound, arch.Name, src)
			}
		}
	})
}
