// Package dataflow is MicroTools' static performance model: an SSA-lite
// analysis layer over verified kernels that derives, per microarchitecture,
// what the timing simulator should at minimum cost to run them.
//
// For one program and one isa.Arch it computes
//
//   - reaching definitions and liveness for registers and flags (a backward
//     bitset fixpoint over the control-flow graph),
//   - the RAW/WAR/WAW dependence DAG of the innermost loop body, including
//     the loop-carried edges across the back edge, and
//   - three per-iteration lower bounds on execution time: a critical-path
//     latency bound (the maximum cycle mean of the loop-carried dependence
//     graph, weighted with Arch.Decode µop latencies), a port-pressure
//     throughput bound (µops bound to a port class divided by the class
//     width, maximised over every union of the port masks present), and a
//     frontend bound (unfused µops over the issue width).
//
// The bounds are sound with respect to internal/cpu's scheduling model: each
// µop occupies exactly one port-cycle, at most IssueWidth unfused µops issue
// per cycle, and a value produced by an instruction is never ready earlier
// than its latest-ready source plus the compute µop's latency. The maximum
// of the three is Report.CyclesLowerBound, which internal/campaign asserts
// against measured cycles per iteration (the oracle invariant) and
// core.ScreenTopKStatic uses to rank variants before spending any launches.
package dataflow

import (
	"fmt"
	"math"
	"sort"

	"microtools/internal/isa"
)

// DepKind classifies a dependence edge.
type DepKind string

const (
	// RAW is a true (read-after-write) dependence; only these carry
	// latency weight.
	RAW DepKind = "RAW"
	// WAR is an anti dependence (write-after-read).
	WAR DepKind = "WAR"
	// WAW is an output dependence (write-after-write).
	WAW DepKind = "WAW"
)

// Edge is one dependence in the loop-body DAG. From and To are instruction
// indices into the program; a Carried edge crosses the loop back edge (From
// is in the previous iteration).
type Edge struct {
	Kind     DepKind `json:"kind"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Resource string  `json:"resource"`
	Carried  bool    `json:"carried,omitempty"`
	// Weight is the producer's µop latency in cycles (RAW edges only).
	Weight float64 `json:"weight,omitempty"`
}

// PathStep is one producer on the critical recurrence: instruction Index
// defines Resource, Latency cycles after its latest-ready input.
type PathStep struct {
	Index    int     `json:"index"`
	Inst     string  `json:"inst"`
	Resource string  `json:"resource"`
	Latency  float64 `json:"latency"`
}

// Recurrence is one loop-carried dependence cycle through a register (or
// the flags), with its cycle mean in cycles per iteration.
type Recurrence struct {
	Resource string `json:"resource"`
	// Length is the tightest bound this recurrence alone imposes: the
	// maximum over all dependence cycles through Resource of total
	// latency divided by the number of iterations the cycle spans.
	Length float64 `json:"length"`
}

// DeadWrite is a register write whose value no later instruction can read.
type DeadWrite struct {
	Index    int    `json:"index"`
	Inst     string `json:"inst"`
	Resource string `json:"resource"`
	// HasMem marks a memory-accessing instruction: the access itself is
	// usually the point of the kernel (a load-bandwidth probe), so the
	// dead destination is incidental and verify's V009 exempts it.
	HasMem bool `json:"has_mem,omitempty"`
}

// PortClass is the pressure of one port class: the µops per iteration that
// can only execute inside the class, divided by the class width.
type PortClass struct {
	Ports    string  `json:"ports"`
	Uops     int     `json:"uops"`
	Width    int     `json:"width"`
	Pressure float64 `json:"pressure"`
}

// Report is the static performance model of one kernel on one Arch. All
// bounds are cycles per loop-body execution; CounterStep relates a body
// execution to the launcher's counted iterations.
type Report struct {
	Kernel string `json:"kernel"`
	Arch   string `json:"arch"`
	// LoopStart/LoopEnd delimit the analysed innermost loop body
	// (inclusive instruction indices); both are -1 for straight-line
	// programs, in which case the whole program is the "body" and no
	// dependence is carried.
	LoopStart int `json:"loop_start"`
	LoopEnd   int `json:"loop_end"`
	// CounterStep is how much the iteration counter (%eax, which the
	// launcher reads back) advances per body execution, or 0 when the
	// body's updates are not recognisably constant.
	CounterStep int64 `json:"counter_step"`
	// Uops / UnfusedUops count the body's µops in the unfused and fused
	// domain respectively.
	Uops        int `json:"uops"`
	UnfusedUops int `json:"unfused_uops"`

	// LatencyBound is the maximum cycle mean of the loop-carried
	// dependence graph: no schedule can retire iterations faster than the
	// slowest recurrence advances.
	LatencyBound float64 `json:"latency_bound"`
	// ThroughputBound is the port-pressure bound: the most loaded port
	// class must serve its µops one per port-cycle.
	ThroughputBound float64 `json:"throughput_bound"`
	// FrontendBound is unfused µops over the issue width.
	FrontendBound float64 `json:"frontend_bound"`
	// CyclesLowerBound is the maximum of the three bounds.
	CyclesLowerBound float64 `json:"cycles_lower_bound"`

	// CriticalPath lists the producers around the binding recurrence, in
	// dependence order (empty when LatencyBound is 0).
	CriticalPath []PathStep `json:"critical_path,omitempty"`
	// LoopCarried lists every register (and the flags) whose value flows
	// across the back edge into a dependence cycle, tightest first.
	LoopCarried []Recurrence `json:"loop_carried,omitempty"`
	// DeadWrites lists register writes that can never be read, in program
	// order (flags writes are excluded: nearly every ALU op writes flags
	// nobody tests).
	DeadWrites []DeadWrite `json:"dead_writes,omitempty"`
	// SelfMoves lists register-to-register moves whose source and
	// destination coincide.
	SelfMoves []int `json:"self_moves,omitempty"`
	// PortPressure lists the port classes, most pressured first.
	PortPressure []PortClass `json:"port_pressure,omitempty"`
	// Edges is the loop-body dependence DAG.
	Edges []Edge `json:"edges,omitempty"`
}

var negInf = math.Inf(-1)

// exitLive is the liveness seed at RET: the launcher protocol reads the
// iteration count back from %eax, and the callee-owned stack registers stay
// meaningful to the caller. Everything else dies at the return.
var exitLive = bitset(1<<isa.RAX | 1<<isa.RSP | 1<<isa.RBP)

// bitset covers the isa.NumRegs (34) resource slots; RFLAGS is an ordinary
// slot, so flags need no special casing anywhere in the analysis.
type bitset uint64

func (b bitset) has(r isa.Reg) bool      { return b&(1<<r) != 0 }
func (b *bitset) add(r isa.Reg)          { *b |= 1 << r }
func (b *bitset) union(o bitset) bool    { old := *b; *b |= o; return *b != old }
func (b bitset) without(o bitset) bitset { return b &^ o }

// Analyze builds the static performance model of p on arch. The program
// must decode on arch (it is validated through isa's decoder); analysis
// itself cannot fail after that.
func Analyze(p *isa.Program, arch *isa.Arch) (*Report, error) {
	if p == nil || len(p.Insts) == 0 {
		return nil, fmt.Errorf("dataflow: empty program")
	}
	dp, err := p.Decoded(arch)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	a := &analysis{prog: p, dp: dp, arch: arch}
	a.scan()
	rep := &Report{
		Kernel:    p.Name,
		Arch:      arch.Name,
		LoopStart: a.start,
		LoopEnd:   a.end,
	}
	a.liveness(rep)
	a.dependences(rep)
	a.latency(rep)
	a.pressure(rep)
	rep.CounterStep = a.counterStep()
	rep.CyclesLowerBound = math.Max(rep.LatencyBound,
		math.Max(rep.ThroughputBound, rep.FrontendBound))
	return rep, nil
}

// AnalyzeLiveness runs only the liveness fixpoint and fills DeadWrites and
// SelfMoves — the microarchitecture-independent facts behind the verifier's
// V009/V010 rules. It skips the dependence DAG and every bound computation,
// so it is considerably cheaper than Analyze on the per-variant verify path;
// the entries it does produce are identical to Analyze's, except that dead
// writes with a memory operand carry no rendered Inst/Resource strings (no
// rule reports them, and the strings dominate the pass's allocations).
func AnalyzeLiveness(p *isa.Program, arch *isa.Arch) (*Report, error) {
	if p == nil || len(p.Insts) == 0 {
		return nil, fmt.Errorf("dataflow: empty program")
	}
	dp, err := p.Decoded(arch)
	if err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	a := &analysis{prog: p, dp: dp, arch: arch, lean: true}
	a.scan()
	rep := &Report{
		Kernel:    p.Name,
		Arch:      arch.Name,
		LoopStart: a.start,
		LoopEnd:   a.end,
	}
	a.liveness(rep)
	return rep, nil
}

// analysis carries the per-run scratch state.
type analysis struct {
	prog *isa.Program
	dp   *isa.DecodedProgram
	arch *isa.Arch

	start, end int // analysed body, inclusive
	hasLoop    bool
	lean       bool // liveness-only run: skip strings nothing will read

	reads  []bitset // per instruction (whole program)
	writes []bitset
}

// scan finds the innermost loop and precomputes each instruction's read and
// write sets. The innermost loop is the first backward conditional branch
// and its target: generated kernels have exactly one loop, and in nested
// kernels (matmul) the first backward branch closes the hot inner loop.
func (a *analysis) scan() {
	n := len(a.prog.Insts)
	a.start, a.end = 0, n-1
	for i := range a.prog.Insts {
		in := &a.prog.Insts[i]
		if in.Op.IsCondBranch() && in.Target >= 0 && in.Target <= i {
			a.start, a.end, a.hasLoop = in.Target, i, true
			break
		}
	}
	a.reads = make([]bitset, n)
	a.writes = make([]bitset, n)
	for i := range a.prog.Insts {
		info := &a.dp.Info[i]
		var rd, wr bitset
		for _, r := range info.AddrRegs {
			if r != isa.NoReg {
				rd.add(r)
			}
		}
		for _, r := range info.SrcRegs[:info.NSrc] {
			rd.add(r)
		}
		if info.ReadsFlags {
			rd.add(isa.RFLAGS)
		}
		if info.DstReg != isa.NoReg {
			wr.add(info.DstReg)
		}
		if info.WritesFlags {
			wr.add(isa.RFLAGS)
		}
		a.reads[i], a.writes[i] = rd, wr
	}
}

// defLat returns the latency a RAW consumer of instruction i's result must
// wait after the producer's latest-ready source: the compute µop's latency,
// or 0 for a pure load (the memory hierarchy adds its own latency on top,
// which keeps the static bound a lower bound without modelling caches).
func (a *analysis) defLat(i int) float64 {
	lat := 0
	for _, u := range a.dp.Uops[i] {
		if u.Role == isa.RoleCompute && u.Lat > lat {
			lat = u.Lat
		}
	}
	return float64(lat)
}

// succs appends the control-flow successors of instruction i to buf.
func (a *analysis) succs(i int, buf []int) []int {
	in := &a.prog.Insts[i]
	if in.Op == isa.RET {
		return buf
	}
	if in.Op.IsBranch() && in.Target >= 0 {
		buf = append(buf, in.Target)
		if !in.Op.IsCondBranch() {
			return buf
		}
	}
	if i+1 < len(a.prog.Insts) {
		buf = append(buf, i+1)
	}
	return buf
}

// liveness runs the backward dataflow fixpoint over the whole program and
// fills Report.DeadWrites and Report.SelfMoves.
func (a *analysis) liveness(rep *Report) {
	n := len(a.prog.Insts)
	liveIn := make([]bitset, n)
	liveOut := make([]bitset, n)
	var sbuf [2]int
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var out bitset
			if a.prog.Insts[i].Op == isa.RET {
				out = exitLive
			}
			for _, s := range a.succs(i, sbuf[:0]) {
				out |= liveIn[s]
			}
			in := a.reads[i] | out.without(a.writes[i])
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}
	for i := range a.prog.Insts {
		in := &a.prog.Insts[i]
		info := &a.dp.Info[i]
		if d := info.DstReg; d != isa.NoReg && !liveOut[i].has(d) {
			if a.lean && info.HasMem {
				// No rule reports a dead write that touches memory (the
				// access is the workload); skip the entry and its rendered
				// strings entirely on the liveness-only path.
			} else {
				dw := DeadWrite{Index: i, HasMem: info.HasMem}
				if !a.lean || !info.HasMem {
					dw.Inst = in.String()
					dw.Resource = d.String()
				}
				rep.DeadWrites = append(rep.DeadWrites, dw)
			}
		}
		if in.Op.IsMove() && in.NOps == 2 &&
			in.A.Kind == isa.RegOperand && in.B.Kind == isa.RegOperand &&
			in.A.Reg == in.B.Reg {
			rep.SelfMoves = append(rep.SelfMoves, i)
		}
	}
}

// dependences builds the loop-body dependence DAG, including the carried
// edges, and fills Report.Edges and Report.Uops counters.
func (a *analysis) dependences(rep *Report) {
	var lastDef [isa.NumRegs]int
	var lastReads [isa.NumRegs][]int
	var firstDef [isa.NumRegs]int
	var upwardUses [isa.NumRegs][]int
	for r := range lastDef {
		lastDef[r], firstDef[r] = -1, -1
	}
	addEdge := func(e Edge) { rep.Edges = append(rep.Edges, e) }
	forEach := func(b bitset, f func(r isa.Reg)) {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if b.has(r) {
				f(r)
			}
		}
	}
	for i := a.start; i <= a.end; i++ {
		forEach(a.reads[i], func(r isa.Reg) {
			if d := lastDef[r]; d >= 0 {
				addEdge(Edge{Kind: RAW, From: d, To: i, Resource: r.String(), Weight: a.defLat(d)})
			} else {
				upwardUses[r] = append(upwardUses[r], i)
			}
			lastReads[r] = append(lastReads[r], i)
		})
		forEach(a.writes[i], func(r isa.Reg) {
			if d := lastDef[r]; d >= 0 {
				addEdge(Edge{Kind: WAW, From: d, To: i, Resource: r.String()})
			}
			for _, u := range lastReads[r] {
				if u != i {
					addEdge(Edge{Kind: WAR, From: u, To: i, Resource: r.String()})
				}
			}
			if firstDef[r] < 0 {
				firstDef[r] = i
			}
			lastDef[r] = i
			lastReads[r] = lastReads[r][:0]
		})
		for _, u := range a.dp.Uops[i] {
			rep.Uops++
			if !u.Fused {
				rep.UnfusedUops++
			}
		}
	}
	if !a.hasLoop {
		return
	}
	// Carried edges: the back edge makes the body's final access of each
	// resource precede the next iteration's first access.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		d := lastDef[r]
		if d < 0 {
			continue
		}
		for _, u := range upwardUses[r] {
			addEdge(Edge{Kind: RAW, From: d, To: u, Resource: r.String(), Carried: true, Weight: a.defLat(d)})
		}
		if f := firstDef[r]; f >= 0 {
			if len(lastReads[r]) > 0 {
				// Reads after the final write wait on nothing next
				// iteration writes before them, so the WAR partner is
				// the first write.
				for _, u := range lastReads[r] {
					addEdge(Edge{Kind: WAR, From: u, To: f, Resource: r.String(), Carried: true})
				}
			}
			addEdge(Edge{Kind: WAW, From: d, To: f, Resource: r.String(), Carried: true})
		}
	}
}

// defEvent records one definition during a symbolic latency pass, with a
// backpointer to the definition that fed it (-1 = the carried seed).
type defEvent struct {
	instr int
	prev  int
}

// carriedPass propagates distance-from-s through one loop body execution:
// after the pass, dist[t] is the longest RAW latency path from the carried
// value of s to the body's final write of t (negInf when t's final write
// does not depend on s). events/cur support path reconstruction.
type carriedPass struct {
	dist   [isa.NumRegs]float64
	cur    [isa.NumRegs]int
	events []defEvent
}

func (a *analysis) runCarriedPass(s isa.Reg) *carriedPass {
	p := &carriedPass{}
	for r := range p.dist {
		p.dist[r] = negInf
		p.cur[r] = -1
	}
	p.dist[s] = 0
	p.events = append(p.events, defEvent{instr: -1, prev: -1})
	p.cur[s] = 0
	for i := a.start; i <= a.end; i++ {
		if a.writes[i] == 0 {
			continue
		}
		best, bestR := negInf, isa.NoReg
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if a.reads[i].has(r) && p.dist[r] > best {
				best, bestR = p.dist[r], r
			}
		}
		if best == negInf {
			// This definition is independent of s: it kills the chain.
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if a.writes[i].has(r) {
					p.dist[r], p.cur[r] = negInf, -1
				}
			}
			continue
		}
		d := best + a.defLat(i)
		ev := len(p.events)
		p.events = append(p.events, defEvent{instr: i, prev: p.cur[bestR]})
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if a.writes[i].has(r) {
				p.dist[r], p.cur[r] = d, ev
			}
		}
	}
	return p
}

// latency computes the maximum cycle mean of the loop-carried dependence
// graph (Report.LatencyBound), the per-resource recurrence lengths
// (Report.LoopCarried) and the binding critical path.
func (a *analysis) latency(rep *Report) {
	if !a.hasLoop {
		return
	}
	// Sources: resources whose value crosses the back edge into this
	// iteration (read before written) and which the body also writes —
	// only those can close a dependence cycle.
	var readBefore, written bitset
	var carried []isa.Reg
	for i := a.start; i <= a.end; i++ {
		readBefore |= a.reads[i].without(written)
		written |= a.writes[i]
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if readBefore.has(r) && written.has(r) {
			carried = append(carried, r)
		}
	}
	n := len(carried)
	if n == 0 {
		return
	}
	passes := make([]*carriedPass, n)
	w := make([][]float64, n) // w[u][v]: carried s=carried[u] -> final write of carried[v]
	for u, s := range carried {
		passes[u] = a.runCarriedPass(s)
		w[u] = make([]float64, n)
		for v, t := range carried {
			w[u][v] = passes[u].dist[t]
		}
	}
	// Maximum cycle mean via max-plus matrix powers: cycles of length k
	// in the resource graph span exactly k iterations, so the bound is
	// max over k <= n and u of pow_k[u][u]/k. choice[k][u][v] records the
	// penultimate hop for path reconstruction.
	pow := make([][]float64, n)
	for u := range pow {
		pow[u] = append([]float64(nil), w[u]...)
	}
	choice := make([][][]int, n+1)
	bestMean, bestK, bestU := 0.0, 0, -1
	for k := 1; k <= n; k++ {
		if k > 1 {
			next := make([][]float64, n)
			ch := make([][]int, n)
			for u := 0; u < n; u++ {
				next[u] = make([]float64, n)
				ch[u] = make([]int, n)
				for v := 0; v < n; v++ {
					next[u][v] = negInf
					ch[u][v] = -1
					for m := 0; m < n; m++ {
						if pow[u][m] == negInf || w[m][v] == negInf {
							continue
						}
						if d := pow[u][m] + w[m][v]; d > next[u][v] {
							next[u][v], ch[u][v] = d, m
						}
					}
				}
			}
			pow = next
			choice[k] = ch
		}
		for u := 0; u < n; u++ {
			if pow[u][u] == negInf {
				continue
			}
			mean := pow[u][u] / float64(k)
			if mean > bestMean {
				bestMean, bestK, bestU = mean, k, u
			}
			// Per-resource tightest cycle mean for Report.LoopCarried.
			found := false
			for ri := range rep.LoopCarried {
				if rep.LoopCarried[ri].Resource == carried[u].String() {
					found = true
					if mean > rep.LoopCarried[ri].Length {
						rep.LoopCarried[ri].Length = mean
					}
				}
			}
			if !found {
				rep.LoopCarried = append(rep.LoopCarried, Recurrence{
					Resource: carried[u].String(), Length: mean,
				})
			}
		}
	}
	sort.SliceStable(rep.LoopCarried, func(i, j int) bool {
		return rep.LoopCarried[i].Length > rep.LoopCarried[j].Length
	})
	rep.LatencyBound = bestMean
	if bestU < 0 {
		return
	}
	// Reconstruct the binding resource cycle u -> ... -> u (bestK hops),
	// then expand each hop into its instruction-level producer chain.
	hops := make([]int, 0, bestK+1)
	hops = append(hops, bestU)
	v := bestU
	for k := bestK; k > 1; k-- {
		m := choice[k][bestU][v]
		hops = append(hops, m)
		v = m
	}
	hops = append(hops, bestU)
	// hops is [end, ..., start]; walk it source-to-sink.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	for h := 0; h+1 < len(hops); h++ {
		src, dst := hops[h], hops[h+1]
		pass := passes[src]
		ev := pass.cur[carried[dst]]
		var steps []PathStep
		for ev > 0 {
			e := pass.events[ev]
			steps = append(steps, PathStep{
				Index:    e.instr,
				Inst:     a.prog.Insts[e.instr].String(),
				Resource: writtenName(a.writes[e.instr], carried[dst], len(steps) == 0),
				Latency:  a.defLat(e.instr),
			})
			ev = e.prev
		}
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
		rep.CriticalPath = append(rep.CriticalPath, steps...)
	}
}

// writtenName picks the display resource for a critical-path step: the hop's
// carried sink when this is the final write, otherwise the lowest register
// the instruction defines.
func writtenName(writes bitset, sink isa.Reg, isFinal bool) string {
	if isFinal && writes.has(sink) {
		return sink.String()
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if writes.has(r) && r != isa.RFLAGS {
			return r.String()
		}
	}
	if writes.has(isa.RFLAGS) {
		return isa.RFLAGS.String()
	}
	return "?"
}

// pressure computes the port-class throughput bound and the frontend bound.
// A class is any union of the distinct port masks present in the body: every
// µop whose mask is contained in the class can only execute there, so the
// class's ports must spend at least uops/width cycles per iteration.
func (a *analysis) pressure(rep *Report) {
	var masks []isa.PortMask
	var counts []int
	for i := a.start; i <= a.end; i++ {
		for _, u := range a.dp.Uops[i] {
			found := false
			for mi, m := range masks {
				if m == u.Ports {
					counts[mi]++
					found = true
					break
				}
			}
			if !found {
				masks = append(masks, u.Ports)
				counts = append(counts, 1)
			}
		}
	}
	if len(masks) == 0 {
		return
	}
	seen := map[isa.PortMask]bool{}
	var classes []PortClass
	for sub := 1; sub < 1<<len(masks); sub++ {
		var class isa.PortMask
		for mi := range masks {
			if sub&(1<<mi) != 0 {
				class |= masks[mi]
			}
		}
		if seen[class] {
			continue
		}
		seen[class] = true
		uops := 0
		for mi, m := range masks {
			if m&^class == 0 {
				uops += counts[mi]
			}
		}
		width := class.Count()
		classes = append(classes, PortClass{
			Ports:    portsName(class),
			Uops:     uops,
			Width:    width,
			Pressure: float64(uops) / float64(width),
		})
	}
	sort.SliceStable(classes, func(i, j int) bool {
		if classes[i].Pressure != classes[j].Pressure {
			return classes[i].Pressure > classes[j].Pressure
		}
		return classes[i].Width < classes[j].Width
	})
	if len(classes) > 8 {
		classes = classes[:8]
	}
	rep.PortPressure = classes
	rep.ThroughputBound = classes[0].Pressure
	rep.FrontendBound = float64(rep.UnfusedUops) / float64(a.arch.IssueWidth)
}

// portsName renders a port mask as "P0+P1+P5".
func portsName(m isa.PortMask) string {
	out := ""
	for p := isa.Port(0); p < isa.NumPorts; p++ {
		if m.Has(p) {
			if out != "" {
				out += "+"
			}
			out += fmt.Sprintf("P%d", int(p))
		}
	}
	return out
}

// counterStep sums the constant increments the body applies to the
// launcher's iteration counter (%eax / RAX). Any unrecognised write to the
// counter makes the relation unknown (0).
func (a *analysis) counterStep() int64 {
	var step int64
	for i := a.start; i <= a.end; i++ {
		in := &a.prog.Insts[i]
		if a.dp.Info[i].DstReg != isa.RAX {
			continue
		}
		switch {
		case in.Op == isa.ADD && in.NOps == 2 && in.A.Kind == isa.ImmOperand:
			step += in.A.Imm
		case in.Op == isa.SUB && in.NOps == 2 && in.A.Kind == isa.ImmOperand:
			step -= in.A.Imm
		case in.Op == isa.INC:
			step++
		case in.Op == isa.DEC:
			step--
		default:
			return 0
		}
	}
	return step
}
