package dataflow

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON writes the report as one indented JSON object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Line renders the report as one compact summary line, the per-variant
// format `microtools analyze` uses when a spec expands to many kernels.
func (r *Report) Line() string {
	var flags []string
	if n := len(r.Findings()); n > 0 {
		flags = append(flags, fmt.Sprintf("%d dead write(s)", n))
	}
	if len(r.SelfMoves) > 0 {
		flags = append(flags, fmt.Sprintf("%d self move(s)", len(r.SelfMoves)))
	}
	suffix := ""
	if len(flags) > 0 {
		suffix = "  !! " + strings.Join(flags, ", ")
	}
	return fmt.Sprintf("%-40s %3d uops  lat %6.2f  ports %6.2f  front %6.2f  => %7.2f cycles/iter%s",
		r.Kernel, r.Uops, r.LatencyBound, r.ThroughputBound, r.FrontendBound, r.CyclesLowerBound, suffix)
}

// Findings returns the dead writes that indicate a real kernel defect —
// the ones verify's V009 reports — excluding memory-access instructions
// whose register destination is incidental to the workload.
func (r *Report) Findings() []DeadWrite {
	var out []DeadWrite
	for _, d := range r.DeadWrites {
		if !d.HasMem {
			out = append(out, d)
		}
	}
	return out
}

// WriteTable renders the report as an aligned human-readable block, the
// `microtools analyze` default output.
func (r *Report) WriteTable(w io.Writer) error {
	var b strings.Builder
	row := func(k, format string, args ...any) {
		fmt.Fprintf(&b, "%-12s %s\n", k, fmt.Sprintf(format, args...))
	}
	row("kernel", "%s (%s)", r.Kernel, r.Arch)
	if r.LoopStart >= 0 && r.LoopEnd >= r.LoopStart {
		row("loop", "insts %d..%d, counter step %d", r.LoopStart, r.LoopEnd, r.CounterStep)
	} else {
		row("loop", "none (straight-line)")
	}
	row("uops", "%d per iteration (%d unfused)", r.Uops, r.UnfusedUops)
	row("bounds", "latency %.2f | ports %.2f | frontend %.2f => %.2f cycles/iter",
		r.LatencyBound, r.ThroughputBound, r.FrontendBound, r.CyclesLowerBound)
	for i, s := range r.CriticalPath {
		key := ""
		if i == 0 {
			key = "critical"
		}
		row(key, "#%-3d %-28s -> %s (+%g)", s.Index, s.Inst, s.Resource, s.Latency)
	}
	if len(r.LoopCarried) > 0 {
		parts := make([]string, len(r.LoopCarried))
		for i, c := range r.LoopCarried {
			parts[i] = fmt.Sprintf("%s %.2f", c.Resource, c.Length)
		}
		row("carried", "%s", strings.Join(parts, ", "))
	}
	for i, c := range r.PortPressure {
		key := ""
		if i == 0 {
			key = "ports"
		}
		row(key, "%-12s %2d uops / %d ports = %.2f", c.Ports, c.Uops, c.Width, c.Pressure)
	}
	for i, d := range r.DeadWrites {
		key := ""
		if i == 0 {
			key = "dead writes"
		}
		note := ""
		if d.HasMem {
			note = " (memory access; destination incidental)"
		}
		row(key, "#%-3d %s writes %s, never read%s", d.Index, d.Inst, d.Resource, note)
	}
	for i, m := range r.SelfMoves {
		key := ""
		if i == 0 {
			key = "self moves"
		}
		row(key, "#%-3d", m)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
