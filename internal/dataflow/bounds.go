package dataflow

import (
	"fmt"
	"math"

	"microtools/internal/isa"
)

// Bounds is the performance-bound slice of Report: everything the campaign
// oracle and the static screens consume, without the explanatory structures
// (edges, critical path, port-class lists) the full Analyze materializes.
// Every field is computed by the same code paths as its Report counterpart,
// so KernelBounds and Analyze agree bit for bit.
type Bounds struct {
	// LatencyBound, ThroughputBound, FrontendBound and CyclesLowerBound
	// mirror the Report fields of the same names.
	LatencyBound     float64
	ThroughputBound  float64
	FrontendBound    float64
	CyclesLowerBound float64
	// CounterStep mirrors Report.CounterStep.
	CounterStep int64
	// Uops / UnfusedUops mirror the Report µop counters.
	Uops        int
	UnfusedUops int
}

// derivedBoundsTag namespaces this package's entries in the DecodedProgram
// derived-result memo (high 32 bits = consumer, low 32 = issue width).
const derivedBoundsTag = uint64(1) << 32

// KernelBounds computes the static performance bounds of p on arch — the
// Bounds subset of Analyze's Report — memoized per (decode signature, issue
// width) on the program's canonical DecodedProgram, the same way Decoded
// memoizes the µop decode. Repeated bound queries for one kernel (cache
// hits, retries, screening plus measuring) cost one lookup instead of one
// analysis; a cold query skips the liveness fixpoint, the dependence-edge
// list and every reporting structure, which makes it an order of magnitude
// lighter than Analyze.
func KernelBounds(p *isa.Program, arch *isa.Arch) (Bounds, error) {
	if p == nil || len(p.Insts) == 0 {
		return Bounds{}, fmt.Errorf("dataflow: empty program")
	}
	dp, err := p.Decoded(arch)
	if err != nil {
		return Bounds{}, fmt.Errorf("dataflow: %w", err)
	}
	v := dp.Derived(derivedBoundsTag|uint64(uint32(arch.IssueWidth)), func() any {
		b := computeBounds(p, dp, arch)
		return &b
	})
	return *(v.(*Bounds)), nil
}

// computeBounds is the lean bound computation behind KernelBounds.
func computeBounds(p *isa.Program, dp *isa.DecodedProgram, arch *isa.Arch) Bounds {
	a := &analysis{prog: p, dp: dp, arch: arch}
	a.scan()
	var b Bounds
	for i := a.start; i <= a.end; i++ {
		for _, u := range dp.Uops[i] {
			b.Uops++
			if !u.Fused {
				b.UnfusedUops++
			}
		}
	}
	b.LatencyBound = a.latencyBound()
	// pressure() leaves both bounds zero for a µop-free body; keep that.
	if b.Uops > 0 {
		b.ThroughputBound = a.throughputBound()
		b.FrontendBound = float64(b.UnfusedUops) / float64(arch.IssueWidth)
	}
	b.CounterStep = a.counterStep()
	b.CyclesLowerBound = math.Max(b.LatencyBound,
		math.Max(b.ThroughputBound, b.FrontendBound))
	return b
}

// carriedDist is runCarriedPass without the event log: it propagates only
// the distances — enough for the cycle-mean bound, not for critical-path
// reconstruction — so one loop-body pass allocates nothing.
func (a *analysis) carriedDist(s isa.Reg, dist *[isa.NumRegs]float64) {
	for r := range dist {
		dist[r] = negInf
	}
	dist[s] = 0
	for i := a.start; i <= a.end; i++ {
		if a.writes[i] == 0 {
			continue
		}
		best := negInf
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if a.reads[i].has(r) && dist[r] > best {
				best = dist[r]
			}
		}
		if best == negInf {
			// This definition is independent of s: it kills the chain.
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if a.writes[i].has(r) {
					dist[r] = negInf
				}
			}
			continue
		}
		d := best + a.defLat(i)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if a.writes[i].has(r) {
				dist[r] = d
			}
		}
	}
}

// latencyBound is latency()'s maximum cycle mean without the LoopCarried
// accounting or path reconstruction: the same carried sources, the same
// per-source distance passes and the same max-plus matrix powers, on flat
// buffers.
func (a *analysis) latencyBound() float64 {
	if !a.hasLoop {
		return 0
	}
	var readBefore, written bitset
	var carriedBuf [isa.NumRegs]isa.Reg
	carried := carriedBuf[:0]
	for i := a.start; i <= a.end; i++ {
		readBefore |= a.reads[i].without(written)
		written |= a.writes[i]
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if readBefore.has(r) && written.has(r) {
			carried = append(carried, r)
		}
	}
	n := len(carried)
	if n == 0 {
		return 0
	}
	var dist [isa.NumRegs]float64
	w := make([]float64, n*n) // w[u*n+v]: carried[u] -> final write of carried[v]
	for u, s := range carried {
		a.carriedDist(s, &dist)
		for v, t := range carried {
			w[u*n+v] = dist[t]
		}
	}
	pow := append([]float64(nil), w...)
	next := make([]float64, n*n)
	best := 0.0
	for k := 1; k <= n; k++ {
		if k > 1 {
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					m := negInf
					for x := 0; x < n; x++ {
						if pow[u*n+x] == negInf || w[x*n+v] == negInf {
							continue
						}
						if d := pow[u*n+x] + w[x*n+v]; d > m {
							m = d
						}
					}
					next[u*n+v] = m
				}
			}
			pow, next = next, pow
		}
		for u := 0; u < n; u++ {
			if pow[u*n+u] == negInf {
				continue
			}
			if mean := pow[u*n+u] / float64(k); mean > best {
				best = mean
			}
		}
	}
	return best
}

// throughputBound is pressure()'s port-class maximum without building the
// class list: the most loaded union of the body's port masks. Duplicate
// unions repeat a value the max already holds, so the dedup set is dropped
// too.
func (a *analysis) throughputBound() float64 {
	var maskBuf [8]isa.PortMask
	var countBuf [8]int
	masks := maskBuf[:0]
	counts := countBuf[:0]
	for i := a.start; i <= a.end; i++ {
		for _, u := range a.dp.Uops[i] {
			found := false
			for mi, m := range masks {
				if m == u.Ports {
					counts[mi]++
					found = true
					break
				}
			}
			if !found {
				masks = append(masks, u.Ports)
				counts = append(counts, 1)
			}
		}
	}
	if len(masks) == 0 {
		return 0
	}
	best := 0.0
	for sub := 1; sub < 1<<len(masks); sub++ {
		var class isa.PortMask
		for mi := range masks {
			if sub&(1<<mi) != 0 {
				class |= masks[mi]
			}
		}
		uops := 0
		for mi, m := range masks {
			if m&^class == 0 {
				uops += counts[mi]
			}
		}
		if p := float64(uops) / float64(class.Count()); p > best {
			best = p
		}
	}
	return best
}
