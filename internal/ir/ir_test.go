package ir

import (
	"testing"
	"testing/quick"

	"microtools/internal/isa"
)

func validKernel() *Kernel {
	base := NewLogical("r1")
	return &Kernel{
		BaseName: "k",
		Body: []Instruction{{
			Op: "movss",
			Operands: []Operand{
				{Kind: MemOperand, Reg: base},
				{Kind: RegOperand, Reg: NewRotating("%xmm", Range{Min: 0, Max: 4})},
			},
		}},
		Inductions: []Induction{
			{Reg: base, Increment: 4, Offset: 4},
			{Reg: NewLogical("r0"), Increment: -1, Last: true},
		},
		Branch:      Branch{Label: ".L0", Test: "jge"},
		UnrollRange: Range{Min: 1, Max: 4},
		ElementSize: 4,
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Min: 2, Max: 5}
	if r.Singleton() || r.Count() != 4 {
		t.Errorf("range helpers wrong: %+v", r)
	}
	if !(Range{Min: 3, Max: 3}).Singleton() {
		t.Error("singleton not detected")
	}
	if (Range{Min: 5, Max: 2}).Count() != 0 {
		t.Error("inverted range count != 0")
	}
	if err := (Range{Min: 0, Max: 3}).Validate("x", 8); err == nil {
		t.Error("min 0 accepted")
	}
	if err := (Range{Min: 1, Max: 9}).Validate("x", 8); err == nil {
		t.Error("beyond limit accepted")
	}
	if err := (Range{Min: 1, Max: 8}).Validate("x", 8); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
}

func TestRegisterConstructorsAndResolution(t *testing.T) {
	l := NewLogical("r1")
	if _, err := l.Resolved(); err == nil {
		t.Error("unallocated logical register resolved")
	}
	l.Phys = isa.RSI
	if r, err := l.Resolved(); err != nil || r != isa.RSI {
		t.Errorf("resolved = %v, %v", r, err)
	}
	p := NewPinned(isa.RAX, true)
	if !p.Pinned || !p.Pinned32 {
		t.Error("pinned flags not set")
	}
	rot := NewRotating("%xmm", Range{Min: 2, Max: 8})
	rot.RotIdx = 5
	if r, err := rot.Resolved(); err != nil || r != isa.XMM5 {
		t.Errorf("rotating resolved = %v, %v", r, err)
	}
	bad := NewRotating("%zmm", Range{Min: 0, Max: 4})
	if _, err := bad.Resolved(); err == nil {
		t.Error("bad rotation base resolved")
	}
	var nilReg *Register
	if _, err := nilReg.Resolved(); err == nil {
		t.Error("nil register resolved")
	}
	if nilReg.String() != "<nil>" {
		t.Errorf("nil register String = %q", nilReg.String())
	}
}

func TestKernelValidate(t *testing.T) {
	if err := validKernel().Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Kernel)
	}{
		{"no name", func(k *Kernel) { k.BaseName = "" }},
		{"no body", func(k *Kernel) { k.Body = nil }},
		{"no operands", func(k *Kernel) { k.Body[0].Operands = nil }},
		{"bad opcode", func(k *Kernel) { k.Body[0].Op = "frob" }},
		{"neither op nor move", func(k *Kernel) { k.Body[0].Op = "" }},
		{"bad move bytes", func(k *Kernel) {
			k.Body[0].Op = ""
			k.Body[0].Move = &MoveSemantics{Bytes: 3}
		}},
		{"bad unroll", func(k *Kernel) { k.UnrollRange = Range{Min: 0, Max: 2} }},
		{"nil induction reg", func(k *Kernel) { k.Inductions[0].Reg = nil }},
		{"zero increment", func(k *Kernel) { k.Inductions[0].Increment = 0 }},
		{"two last markers", func(k *Kernel) { k.Inductions[0].Last = true }},
		{"no branch", func(k *Kernel) { k.Branch = Branch{} }},
		{"non-conditional branch", func(k *Kernel) { k.Branch.Test = "jmp" }},
	}
	for _, c := range cases {
		k := validKernel()
		c.mut(k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateDefaults(t *testing.T) {
	k := validKernel()
	k.ElementSize = 0
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.ElementSize != 4 {
		t.Errorf("element size default = %d", k.ElementSize)
	}
	if k.Body[0].Repeat != (Range{Min: 1, Max: 1}) {
		t.Errorf("repeat default = %+v", k.Body[0].Repeat)
	}
}

func TestTagsAndTagString(t *testing.T) {
	k := validKernel()
	if k.TagString() != "" {
		t.Error("empty tags must render empty")
	}
	k.Tag("b", "2").Tag("a", "1")
	if got := k.TagString(); got != "a=1,b=2" {
		t.Errorf("TagString = %q (must be sorted)", got)
	}
}

func TestRegistersEnumerationOrder(t *testing.T) {
	k := validKernel()
	regs := k.Registers()
	// r1 (mem base), xmm pool, r0.
	if len(regs) != 3 {
		t.Fatalf("registers = %d", len(regs))
	}
	if regs[0].Logical != "r1" {
		t.Errorf("first register = %v, want r1 (first use order)", regs[0])
	}
}

func TestInductionFor(t *testing.T) {
	k := validKernel()
	base := k.Body[0].Operands[0].Reg
	ind := k.InductionFor(base)
	if ind == nil || ind.Increment != 4 {
		t.Errorf("InductionFor = %+v", ind)
	}
	if k.InductionFor(NewLogical("zz")) != nil {
		t.Error("unknown register has an induction")
	}
}

// Property: Clone is always deep (mutating any register in the clone never
// affects the original) and preserves intra-kernel register sharing.
func TestPropertyCloneDeepAndSharing(t *testing.T) {
	f := func(inc int8, offset int8, unrollMax uint8) bool {
		k := validKernel()
		k.Inductions[0].Increment = int64(inc)
		if k.Inductions[0].Increment == 0 {
			k.Inductions[0].Increment = 1
		}
		k.Inductions[0].Offset = int64(offset)
		k.UnrollRange = Range{Min: 1, Max: int(unrollMax%8) + 1}
		c := k.Clone()
		// Sharing preserved.
		if c.Body[0].Operands[0].Reg != c.Inductions[0].Reg {
			return false
		}
		// Deepness.
		c.Inductions[0].Reg.Phys = isa.R15
		c.Inductions[0].Increment = 999
		return k.Inductions[0].Reg.Phys == isa.NoReg && k.Inductions[0].Increment != 999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOperandAndInstructionStrings(t *testing.T) {
	k := validKernel()
	s := k.Body[0].String()
	if s == "" {
		t.Error("instruction String empty")
	}
	mem := Operand{Kind: MemOperand, Reg: NewLogical("r1"), Offset: 8}
	if mem.String() != "8(r1)" {
		t.Errorf("mem operand String = %q", mem.String())
	}
	imm := Operand{Kind: ImmOperand, Imm: 5}
	if imm.String() != "$5" {
		t.Errorf("imm operand String = %q", imm.String())
	}
	choice := Operand{Kind: ImmOperand, ImmChoices: []int64{1, 2}}
	if choice.String() != "$choice[1 2]" {
		t.Errorf("choice operand String = %q", choice.String())
	}
	abstract := Instruction{Move: &MoveSemantics{Bytes: 16}, Operands: []Operand{imm}}
	if abstract.String() == "" {
		t.Error("abstract instruction String empty")
	}
}
