// Package ir defines MicroCreator's intermediate representation: the
// abstract kernel parsed from the XML description (§3.1) that the
// nineteen compiler passes (§3.2) progressively concretize into assembly.
//
// A kernel starts as a small set of abstract instructions — possibly with
// move semantics instead of concrete opcodes, logical registers instead of
// physical ones, and choice lists for strides and immediates — plus
// unrolling, induction and branch specifications. Each pass either rewrites
// kernels in place or multiplies the variant set (instruction selection,
// stride selection, operand swaps, unrolling ...).
package ir

import (
	"fmt"
	"strings"

	"microtools/internal/isa"
)

// Range is an inclusive integer range used by unrolling, repetition and
// register-rotation specifications (the paper's <min>/<max> nodes).
type Range struct {
	Min, Max int
}

// Singleton reports whether the range contains exactly one value.
func (r Range) Singleton() bool { return r.Min == r.Max }

// Count returns the number of values in the range (0 if empty).
func (r Range) Count() int {
	if r.Max < r.Min {
		return 0
	}
	return r.Max - r.Min + 1
}

// Validate checks that the range is well-formed and within limit.
func (r Range) Validate(what string, limit int) error {
	if r.Min < 1 || r.Max < r.Min {
		return fmt.Errorf("ir: bad %s range [%d,%d]", what, r.Min, r.Max)
	}
	if limit > 0 && r.Max > limit {
		return fmt.Errorf("ir: %s range max %d exceeds limit %d", what, r.Max, limit)
	}
	return nil
}

// Register is a register reference shared between instruction operands and
// induction specifications. It is deliberately a pointer-identity object:
// the register-allocation pass assigns Phys once and every operand holding
// the same *Register sees the assignment (matching the paper's "the hardware
// detection system associates r1 to a physical register such as %rsi").
type Register struct {
	// Logical is the spec-level name ("r0", "r1", ...). Empty when the
	// spec pinned a physical register directly (e.g. Fig. 9's %eax).
	Logical string
	// Phys is the allocated physical register; isa.NoReg until the
	// allocation pass runs (or forever, for rotation bases).
	Phys isa.Reg
	// Pinned records that the spec named a physical register directly
	// (phyName); Pinned32 additionally notes a 32-bit alias (e.g. %eax),
	// retained for faithful re-rendering and the launcher's
	// return-register logic.
	Pinned   bool
	Pinned32 bool

	// Rotation: when RotBase is non-empty (e.g. "%xmm") the register is a
	// rotating vector register class; the rotate-registers pass assigns
	// RotIdx per unroll copy within [RotRange.Min, RotRange.Max).
	RotBase  string
	RotRange Range
	RotIdx   int
}

// NewLogical returns an unallocated logical register.
func NewLogical(name string) *Register {
	return &Register{Logical: name, Phys: isa.NoReg}
}

// NewPinned returns a register pinned to a physical one by the spec.
func NewPinned(phys isa.Reg, is32 bool) *Register {
	return &Register{Phys: phys, Pinned: true, Pinned32: is32}
}

// NewRotating returns a rotating register class (e.g. base "%xmm",
// range [min,max)).
func NewRotating(base string, rot Range) *Register {
	return &Register{RotBase: base, RotRange: rot, RotIdx: rot.Min, Phys: isa.NoReg}
}

// IsRotating reports whether the register is a rotating class (XMM pool).
func (r *Register) IsRotating() bool { return r != nil && r.RotBase != "" }

// Resolved returns the physical register, resolving rotation.
func (r *Register) Resolved() (isa.Reg, error) {
	if r == nil {
		return isa.NoReg, fmt.Errorf("ir: nil register")
	}
	if r.IsRotating() {
		// Fast path for the ubiquitous "%xmm" pool: Resolved is called per
		// operand per variant by codegen and the verifier, and formatting a
		// name only to re-parse it dominates those loops.
		if (r.RotBase == "%xmm" || r.RotBase == "xmm") && r.RotIdx >= 0 && r.RotIdx < 16 {
			return isa.XMM0 + isa.Reg(r.RotIdx), nil
		}
		name := fmt.Sprintf("%s%d", r.RotBase, r.RotIdx)
		reg, err := isa.ParseReg(name)
		if err != nil {
			return isa.NoReg, fmt.Errorf("ir: rotating register %q: %w", name, err)
		}
		return reg, nil
	}
	if r.Phys == isa.NoReg {
		return isa.NoReg, fmt.Errorf("ir: register %q not allocated", r.Logical)
	}
	return r.Phys, nil
}

// String renders the register for diagnostics.
func (r *Register) String() string {
	switch {
	case r == nil:
		return "<nil>"
	case r.IsRotating():
		return fmt.Sprintf("%s[%d..%d]@%d", r.RotBase, r.RotRange.Min, r.RotRange.Max, r.RotIdx)
	case r.Phys != isa.NoReg:
		return r.Phys.String()
	default:
		return r.Logical
	}
}

// OperandKind tags IR operand variants.
type OperandKind uint8

const (
	RegOperand OperandKind = iota
	MemOperand
	ImmOperand
)

// Operand is an abstract instruction operand.
type Operand struct {
	Kind OperandKind
	// Reg holds the register for RegOperand, and the base register for
	// MemOperand.
	Reg *Register
	// Offset is the memory displacement for MemOperand (adjusted per
	// unroll copy by the unrolling pass).
	Offset int64
	// Imm is the immediate value; ImmChoices, when non-empty, is the
	// choice list the select-immediates pass expands.
	Imm        int64
	ImmChoices []int64
}

func (o Operand) String() string {
	switch o.Kind {
	case RegOperand:
		return o.Reg.String()
	case MemOperand:
		if o.Offset != 0 {
			return fmt.Sprintf("%d(%s)", o.Offset, o.Reg)
		}
		return fmt.Sprintf("(%s)", o.Reg)
	case ImmOperand:
		if len(o.ImmChoices) > 0 {
			return fmt.Sprintf("$choice%v", o.ImmChoices)
		}
		return fmt.Sprintf("$%d", o.Imm)
	}
	return "?"
}

// MoveSemantics is the abstract move description of §3.1: "MicroCreator
// also allows the user to provide move semantics, such as the number of
// bytes to be moved, without specifying exactly which instruction to use".
// The select-instructions pass expands it into concrete mnemonics.
type MoveSemantics struct {
	// Bytes moved per instruction: 4, 8 or 16.
	Bytes int
	// Precision: "single", "double" or "" (both where meaningful).
	Precision string
	// Aligned: "aligned", "unaligned" or "both" (16-byte moves only).
	Aligned string
}

// Instruction is one abstract kernel instruction.
type Instruction struct {
	// Op is the concrete mnemonic. Empty when Move semantics are given;
	// the select-instructions pass fills it in.
	Op string
	// Move is the abstract move description, if any.
	Move *MoveSemantics
	// Operands in AT&T order (sources first, destination last).
	Operands []Operand
	// SwapBeforeUnroll / SwapAfterUnroll request the two operand-swap
	// passes of §3.2 for this instruction.
	SwapBeforeUnroll bool
	SwapAfterUnroll  bool
	// Repeat is the instruction repetition range handled by the
	// repeat-instructions pass (default {1,1}).
	Repeat Range
	// Copy is the unroll copy index this instruction belongs to (set by
	// the unroll pass; registers rotate per copy).
	Copy int
}

func (in Instruction) String() string {
	op := in.Op
	if op == "" {
		op = fmt.Sprintf("move<%dB>", in.Move.Bytes)
	}
	var ops []string
	for _, o := range in.Operands {
		ops = append(ops, o.String())
	}
	return op + " " + strings.Join(ops, ", ")
}

// Induction describes one induction variable (§3.1's <induction> node).
type Induction struct {
	Reg *Register
	// Increment is the per-source-iteration increment; the unrolling and
	// link-inductions passes scale it. IncrementChoices, when set, is
	// expanded by the select-strides pass.
	Increment        int64
	IncrementChoices []int64
	// Offset is the per-unroll-copy memory displacement contributed by
	// this register (Fig. 6's <offset>16</offset>: copy c addresses
	// c*Offset(reg)).
	Offset int64
	// LinkedTo makes this induction's increment follow another register's
	// unrolled data movement (Fig. 6's r0 linked to r1; Fig. 8's
	// "sub $12, %rdi" for a 3× unrolled 16-byte move over 4-byte
	// elements).
	LinkedTo *Register
	// Last marks the loop counter whose sign the branch tests
	// (<last_induction/>).
	Last bool
	// NotAffectedUnroll pins the increment regardless of unrolling
	// (Fig. 9's iteration counter in %eax).
	NotAffectedUnroll bool
	// scaled records that induction scaling already ran (defensive
	// against double application of the link-inductions pass).
	Scaled bool
}

// Branch is the <branch_information> node.
type Branch struct {
	Label string
	Test  string // conditional jump mnemonic, e.g. "jge"
}

// Kernel is one (possibly still abstract) benchmark program variant.
type Kernel struct {
	// BaseName is the spec-level kernel name; Name is the variant name
	// (BaseName plus tag suffixes).
	BaseName string
	Name     string
	// Description is free-form documentation carried to the output.
	Description string

	Body       []Instruction
	Inductions []Induction
	Branch     Branch

	// UnrollRange is the requested range; Unroll is the factor chosen for
	// this variant (0 until the unroll pass runs).
	UnrollRange Range
	Unroll      int

	// RandomCount/RandomSeed configure the random-select pass (0 = off).
	RandomCount int
	RandomSeed  int64

	// ElementSize is the logical element size in bytes used for linked
	// induction scaling (default 4, matching Fig. 8's arithmetic).
	ElementSize int

	// MaxVariants caps the generated set ("The user can limit the number
	// of benchmark programs if it is superfluous", §3.2). 0 = unlimited.
	MaxVariants int

	// ZeroAtEntry lists registers the prologue must clear (e.g. the
	// Fig. 9 iteration counter).
	ZeroAtEntry []*Register

	// CodeAlign is the loop-top alignment directive in bytes (set by the
	// align-code pass; 0 emits none).
	CodeAlign int

	// Tags records the variant decisions (unroll factor, swap pattern,
	// chosen instruction, stride...) for naming and CSV reporting.
	Tags map[string]string
}

// Tag records a variant decision and returns the kernel for chaining.
func (k *Kernel) Tag(key, value string) *Kernel {
	if k.Tags == nil {
		k.Tags = map[string]string{}
	}
	k.Tags[key] = value
	return k
}

// TagString renders tags deterministically as key=value pairs sorted by key.
func (k *Kernel) TagString() string {
	if len(k.Tags) == 0 {
		return ""
	}
	keys := make([]string, 0, len(k.Tags))
	for key := range k.Tags {
		keys = append(keys, key)
	}
	// insertion sort; tag sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, key := range keys {
		parts[i] = key + "=" + k.Tags[key]
	}
	return strings.Join(parts, ",")
}

// Registers returns every distinct *Register referenced by the kernel, in
// first-use order (operands first, then inductions).
func (k *Kernel) Registers() []*Register {
	// Linear dedup: kernels reference a handful of distinct register
	// objects, so scanning the result beats a map — this runs per variant
	// in codegen and verification.
	out := make([]*Register, 0, 8)
	add := func(r *Register) {
		if r == nil {
			return
		}
		for _, s := range out {
			if s == r {
				return
			}
		}
		out = append(out, r)
	}
	for i := range k.Body {
		for j := range k.Body[i].Operands {
			add(k.Body[i].Operands[j].Reg)
		}
	}
	for i := range k.Inductions {
		add(k.Inductions[i].Reg)
		add(k.Inductions[i].LinkedTo)
	}
	for _, r := range k.ZeroAtEntry {
		add(r)
	}
	return out
}

// InductionFor returns the induction controlling reg, or nil.
func (k *Kernel) InductionFor(reg *Register) *Induction {
	for i := range k.Inductions {
		if k.Inductions[i].Reg == reg {
			return &k.Inductions[i]
		}
	}
	return nil
}

// Clone deep-copies the kernel, preserving register identity within the
// copy: operands and inductions that shared a *Register still share the
// corresponding clone.
func (k *Kernel) Clone() *Kernel {
	regMap := map[*Register]*Register{}
	cloneReg := func(r *Register) *Register {
		if r == nil {
			return nil
		}
		if c, ok := regMap[r]; ok {
			return c
		}
		c := &Register{}
		*c = *r
		regMap[r] = c
		return c
	}
	nk := &Kernel{
		BaseName:    k.BaseName,
		Name:        k.Name,
		Description: k.Description,
		UnrollRange: k.UnrollRange,
		Unroll:      k.Unroll,
		RandomCount: k.RandomCount,
		RandomSeed:  k.RandomSeed,
		ElementSize: k.ElementSize,
		MaxVariants: k.MaxVariants,
		Branch:      k.Branch,
		CodeAlign:   k.CodeAlign,
	}
	nk.Body = make([]Instruction, len(k.Body))
	for i, in := range k.Body {
		ni := in
		if in.Move != nil {
			mv := *in.Move
			ni.Move = &mv
		}
		ni.Operands = make([]Operand, len(in.Operands))
		for j, o := range in.Operands {
			no := o
			no.Reg = cloneReg(o.Reg)
			no.ImmChoices = append([]int64(nil), o.ImmChoices...)
			ni.Operands[j] = no
		}
		nk.Body[i] = ni
	}
	nk.Inductions = make([]Induction, len(k.Inductions))
	for i, ind := range k.Inductions {
		ni := ind
		ni.Reg = cloneReg(ind.Reg)
		ni.LinkedTo = cloneReg(ind.LinkedTo)
		ni.IncrementChoices = append([]int64(nil), ind.IncrementChoices...)
		nk.Inductions[i] = ni
	}
	nk.ZeroAtEntry = make([]*Register, len(k.ZeroAtEntry))
	for i, r := range k.ZeroAtEntry {
		nk.ZeroAtEntry[i] = cloneReg(r)
	}
	if k.Tags != nil {
		nk.Tags = make(map[string]string, len(k.Tags))
		for key, v := range k.Tags {
			nk.Tags[key] = v
		}
	}
	return nk
}

// Validate checks spec-level invariants before the pipeline runs.
func (k *Kernel) Validate() error {
	if k.BaseName == "" {
		return fmt.Errorf("ir: kernel without a name")
	}
	if len(k.Body) == 0 {
		return fmt.Errorf("ir: kernel %q has no instructions", k.BaseName)
	}
	if err := k.UnrollRange.Validate("unroll", 64); err != nil {
		return fmt.Errorf("kernel %q: %w", k.BaseName, err)
	}
	for i, in := range k.Body {
		if in.Op == "" && in.Move == nil {
			return fmt.Errorf("ir: kernel %q instruction %d has neither operation nor move semantics", k.BaseName, i)
		}
		if in.Op != "" {
			if _, err := isa.ParseOp(in.Op); err != nil {
				return fmt.Errorf("ir: kernel %q instruction %d: %w", k.BaseName, i, err)
			}
		}
		if in.Move != nil {
			switch in.Move.Bytes {
			case 4, 8, 16:
			default:
				return fmt.Errorf("ir: kernel %q instruction %d: move semantics of %d bytes unsupported", k.BaseName, i, in.Move.Bytes)
			}
		}
		if len(in.Operands) == 0 {
			return fmt.Errorf("ir: kernel %q instruction %d has no operands", k.BaseName, i)
		}
		if in.Repeat == (Range{}) {
			// Programmatically-built kernels may leave Repeat zero.
			k.Body[i].Repeat = Range{Min: 1, Max: 1}
		} else if err := in.Repeat.Validate("repeat", 64); err != nil {
			return fmt.Errorf("kernel %q instruction %d: %w", k.BaseName, i, err)
		}
	}
	lastCount := 0
	for i, ind := range k.Inductions {
		if ind.Reg == nil {
			return fmt.Errorf("ir: kernel %q induction %d has no register", k.BaseName, i)
		}
		if ind.Last {
			lastCount++
		}
		if ind.Increment == 0 && len(ind.IncrementChoices) == 0 && !ind.NotAffectedUnroll {
			return fmt.Errorf("ir: kernel %q induction %d (%s) has zero increment", k.BaseName, i, ind.Reg)
		}
	}
	if lastCount > 1 {
		return fmt.Errorf("ir: kernel %q has %d last_induction markers, want at most 1", k.BaseName, lastCount)
	}
	if k.Branch.Label == "" || k.Branch.Test == "" {
		return fmt.Errorf("ir: kernel %q missing branch information", k.BaseName)
	}
	op, err := isa.ParseOp(k.Branch.Test)
	if err != nil || !op.IsCondBranch() {
		return fmt.Errorf("ir: kernel %q branch test %q is not a conditional jump", k.BaseName, k.Branch.Test)
	}
	if k.ElementSize == 0 {
		k.ElementSize = 4
	}
	return nil
}
