package passes

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"microtools/internal/codegen"
	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/verify"
)

// expansionLimit bounds the total number of kernels a single fan-out pass
// may produce, as a runaway guard for adversarial specs.
const expansionLimit = 1 << 20

// defaultPasses builds the nineteen default passes of §3.2 in pipeline
// order.
func defaultPasses() []*Pass {
	mk := func(name, doc string, run RunFunc) *Pass {
		return &Pass{Name: name, Doc: doc, Gate: AlwaysGate, Run: run}
	}
	passes := []*Pass{
		mk("validate", "check spec-level kernel invariants", passValidate),
		mk("repeat-instructions", "expand per-instruction repetition ranges", passRepeat),
		mk("random-select", "seeded random instruction selection", passRandomSelect),
		mk("select-instructions", "expand move semantics into concrete opcodes", passSelectInstructions),
		mk("select-strides", "one variant per induction stride choice", passSelectStrides),
		mk("select-immediates", "one variant per immediate choice", passSelectImmediates),
		mk("swap-before-unroll", "load/store operand swap before unrolling", passSwapBeforeUnroll),
		mk("unroll", "unroll the kernel across the requested range", passUnroll),
		mk("swap-after-unroll", "per-copy load/store operand swap", passSwapAfterUnroll),
		mk("rotate-registers", "assign rotating vector registers per copy", passRotateRegisters),
		mk("allocate-registers", "map logical registers to physical ones", passAllocateRegisters),
		mk("link-inductions", "scale induction increments by unroll and width", passLinkInductions),
		mk("insert-inductions", "materialize induction updates in the body", passInsertInductions),
		mk("schedule", "interleave loads and stores (off by default)", passSchedule),
		mk("insert-branch", "finalize the loop label and branch", passInsertBranch),
		mk("prologue-epilogue", "finalize names, prologue zeroing, dedupe", passPrologue),
		mk("align-code", "request loop-top code alignment", passAlignCode),
		mk("verify", "post-pipeline invariant checks", passVerify),
		mk("emit", "render assembly and/or C programs", passEmit),
		{
			Name: "verify-variants",
			Doc:  "static verifier over IR kernels and emitted asm (internal/verify)",
			// Opt-out gate: Context.VerifyMode = verify.ModeOff skips it.
			Gate: func(ctx *Context) bool { return ctx.VerifyMode != verify.ModeOff },
			Run:  passVerifyVariants,
		},
	}
	// The schedule pass is present but gated off by default, mirroring the
	// paper's optional passes ("A user may modify it so as not to always
	// execute the pass", §3.3).
	passes[13].Gate = NeverGate
	return passes
}

// expandAll repeatedly applies f to kernels until it reports no further
// expansion (returns nil). Deterministic depth-first order.
func expandAll(ks []*ir.Kernel, f func(*ir.Kernel) ([]*ir.Kernel, error)) ([]*ir.Kernel, error) {
	var out []*ir.Kernel
	queue := append([]*ir.Kernel(nil), ks...)
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		vs, err := f(k)
		if err != nil {
			return nil, err
		}
		if vs == nil {
			out = append(out, k)
			if len(out) > expansionLimit {
				return nil, fmt.Errorf("variant explosion beyond %d kernels", expansionLimit)
			}
			continue
		}
		queue = append(append([]*ir.Kernel(nil), vs...), queue...)
		if len(queue) > expansionLimit {
			return nil, fmt.Errorf("variant explosion beyond %d kernels", expansionLimit)
		}
	}
	return out, nil
}

// cloneInstr deep-copies an instruction for duplication within the same
// kernel: rotating registers get fresh objects (each copy rotates
// independently); allocated/logical registers stay shared.
func cloneInstr(in ir.Instruction) ir.Instruction {
	ni := in
	if in.Move != nil {
		mv := *in.Move
		ni.Move = &mv
	}
	ni.Operands = make([]ir.Operand, len(in.Operands))
	for i, o := range in.Operands {
		no := o
		if o.Reg != nil && o.Reg.IsRotating() {
			r := *o.Reg
			no.Reg = &r
		}
		no.ImmChoices = append([]int64(nil), o.ImmChoices...)
		ni.Operands[i] = no
	}
	return ni
}

// ---- pass 1: validate -----------------------------------------------------

func passValidate(ctx *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			return nil, err
		}
	}
	// Record the statically-predicted variant count per kernel family while
	// the kernels are still spec-level; the verify-variants pass compares
	// the final count against it (rule V008, expansion accounting).
	if ctx != nil {
		ctx.expectedVariants = map[string]int64{}
		moveCount := func(mv *ir.MoveSemantics) (int, error) {
			cands, err := moveCandidates(mv)
			return len(cands), err
		}
		for _, k := range ks {
			if want, ok := verify.ExpectedVariants(k, moveCount); ok {
				ctx.expectedVariants[k.BaseName] = want
			}
		}
	}
	return ks, nil
}

// ---- pass 2: repeat-instructions ------------------------------------------

func passRepeat(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	return expandAll(ks, func(k *ir.Kernel) ([]*ir.Kernel, error) {
		for i := range k.Body {
			rep := k.Body[i].Repeat
			if rep.Singleton() && rep.Min == 1 {
				continue
			}
			var vs []*ir.Kernel
			for c := rep.Min; c <= rep.Max; c++ {
				v := k.Clone()
				inst := v.Body[i]
				inst.Repeat = ir.Range{Min: 1, Max: 1}
				expanded := make([]ir.Instruction, 0, len(v.Body)+c-1)
				expanded = append(expanded, v.Body[:i]...)
				for j := 0; j < c; j++ {
					ni := cloneInstr(inst)
					// Each repetition is its own copy for register
					// rotation, so repeated instructions draw distinct
					// rotating registers (independent chains).
					ni.Copy = j
					expanded = append(expanded, ni)
				}
				expanded = append(expanded, v.Body[i+1:]...)
				v.Body = expanded
				v.Tag(fmt.Sprintf("rep%d", i), fmt.Sprintf("%d", c))
				vs = append(vs, v)
			}
			return vs, nil
		}
		return nil, nil
	})
}

// ---- pass 3: random-select -------------------------------------------------

func passRandomSelect(ctx *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	var out []*ir.Kernel
	for _, k := range ks {
		if k.RandomCount <= 0 {
			out = append(out, k)
			continue
		}
		seed := k.RandomSeed
		if seed == 0 {
			seed = ctx.Seed
		}
		rng := rand.New(rand.NewSource(seed))
		for v := 0; v < k.RandomCount; v++ {
			nk := k.Clone()
			nk.RandomCount = 0
			body := make([]ir.Instruction, len(nk.Body))
			for i := range body {
				body[i] = cloneInstr(nk.Body[rng.Intn(len(nk.Body))])
			}
			nk.Body = body
			nk.Tag("rand", fmt.Sprintf("%d", v))
			out = append(out, nk)
		}
	}
	return out, nil
}

// ---- pass 4: select-instructions -------------------------------------------

// moveCandidates enumerates the concrete mnemonics matching the abstract
// move semantics (§3.1: "aligned versus non-aligned instructions or using
// vectorized or scalar instructions").
func moveCandidates(mv *ir.MoveSemantics) ([]string, error) {
	var precisions []string
	switch mv.Precision {
	case "single":
		precisions = []string{"single"}
	case "double":
		precisions = []string{"double"}
	case "":
		precisions = []string{"single", "double"}
	}
	var out []string
	for _, p := range precisions {
		switch mv.Bytes {
		case 4:
			if p == "single" {
				out = append(out, "movss")
			}
		case 8:
			if p == "double" {
				out = append(out, "movsd")
			}
		case 16:
			aligned, unaligned := "movaps", "movups"
			if p == "double" {
				aligned, unaligned = "movapd", "movupd"
			}
			switch mv.Aligned {
			case "aligned":
				out = append(out, aligned)
			case "unaligned":
				out = append(out, unaligned)
			case "both":
				out = append(out, aligned, unaligned)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("move semantics %+v match no instruction", *mv)
	}
	return out, nil
}

func passSelectInstructions(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	return expandAll(ks, func(k *ir.Kernel) ([]*ir.Kernel, error) {
		for i := range k.Body {
			if k.Body[i].Move == nil {
				continue
			}
			cands, err := moveCandidates(k.Body[i].Move)
			if err != nil {
				return nil, fmt.Errorf("kernel %q instruction %d: %w", k.BaseName, i, err)
			}
			var vs []*ir.Kernel
			for _, op := range cands {
				v := k.Clone()
				v.Body[i].Op = op
				v.Body[i].Move = nil
				v.Tag(fmt.Sprintf("i%d", i), op)
				vs = append(vs, v)
			}
			return vs, nil
		}
		return nil, nil
	})
}

// ---- pass 5: select-strides -------------------------------------------------

func passSelectStrides(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	return expandAll(ks, func(k *ir.Kernel) ([]*ir.Kernel, error) {
		for i := range k.Inductions {
			choices := k.Inductions[i].IncrementChoices
			if len(choices) == 0 {
				continue
			}
			var vs []*ir.Kernel
			for _, c := range choices {
				v := k.Clone()
				v.Inductions[i].Increment = c
				v.Inductions[i].IncrementChoices = nil
				v.Tag(fmt.Sprintf("stride%d", i), fmt.Sprintf("%d", c))
				vs = append(vs, v)
			}
			return vs, nil
		}
		return nil, nil
	})
}

// ---- pass 6: select-immediates ----------------------------------------------

func passSelectImmediates(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	return expandAll(ks, func(k *ir.Kernel) ([]*ir.Kernel, error) {
		for i := range k.Body {
			for j := range k.Body[i].Operands {
				o := &k.Body[i].Operands[j]
				if o.Kind != ir.ImmOperand || len(o.ImmChoices) == 0 {
					continue
				}
				var vs []*ir.Kernel
				for _, c := range o.ImmChoices {
					v := k.Clone()
					v.Body[i].Operands[j].Imm = c
					v.Body[i].Operands[j].ImmChoices = nil
					v.Tag(fmt.Sprintf("imm%d_%d", i, j), fmt.Sprintf("%d", c))
					vs = append(vs, v)
				}
				return vs, nil
			}
		}
		return nil, nil
	})
}

// ---- passes 7 & 9: operand swaps ---------------------------------------------

// swapInstr reverses a two-operand move between a memory reference and a
// register, turning a load into a store or vice versa.
func swapInstr(in *ir.Instruction) bool {
	if len(in.Operands) != 2 {
		return false
	}
	a, b := in.Operands[0].Kind, in.Operands[1].Kind
	if (a == ir.MemOperand && b == ir.RegOperand) || (a == ir.RegOperand && b == ir.MemOperand) {
		in.Operands[0], in.Operands[1] = in.Operands[1], in.Operands[0]
		return true
	}
	return false
}

func passSwapBeforeUnroll(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	return expandAll(ks, func(k *ir.Kernel) ([]*ir.Kernel, error) {
		for i := range k.Body {
			if !k.Body[i].SwapBeforeUnroll {
				continue
			}
			orig := k.Clone()
			orig.Body[i].SwapBeforeUnroll = false
			swapped := k.Clone()
			swapped.Body[i].SwapBeforeUnroll = false
			if !swapInstr(&swapped.Body[i]) {
				// Not swappable: keep only the original.
				return []*ir.Kernel{orig}, nil
			}
			return []*ir.Kernel{orig, swapped}, nil
		}
		return nil, nil
	})
}

func passSwapAfterUnroll(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	return expandAll(ks, func(k *ir.Kernel) ([]*ir.Kernel, error) {
		for i := range k.Body {
			if !k.Body[i].SwapAfterUnroll {
				continue
			}
			orig := k.Clone()
			orig.Body[i].SwapAfterUnroll = false
			swapped := k.Clone()
			swapped.Body[i].SwapAfterUnroll = false
			if !swapInstr(&swapped.Body[i]) {
				return []*ir.Kernel{orig}, nil
			}
			return []*ir.Kernel{orig, swapped}, nil
		}
		return nil, nil
	})
}

// ---- pass 8: unroll -----------------------------------------------------------

func passUnroll(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	var out []*ir.Kernel
	for _, k := range ks {
		if k.Unroll != 0 {
			return nil, fmt.Errorf("kernel %q already unrolled", k.Name)
		}
		// Pre-existing copy indices (from instruction repetition) compose
		// with the unroll index so every copy rotates distinctly.
		width := 1
		for i := range k.Body {
			if k.Body[i].Copy >= width {
				width = k.Body[i].Copy + 1
			}
		}
		for u := k.UnrollRange.Min; u <= k.UnrollRange.Max; u++ {
			v := k.Clone()
			v.Unroll = u
			body := make([]ir.Instruction, 0, len(v.Body)*u)
			for c := 0; c < u; c++ {
				for i := range v.Body {
					ni := cloneInstr(v.Body[i])
					ni.Copy = c*width + v.Body[i].Copy
					if c > 0 {
						for j := range ni.Operands {
							o := &ni.Operands[j]
							if o.Kind != ir.MemOperand {
								continue
							}
							if ind := v.InductionFor(o.Reg); ind != nil {
								o.Offset += int64(c) * ind.Offset
							}
						}
					}
					body = append(body, ni)
				}
			}
			v.Body = body
			v.Tag("u", fmt.Sprintf("%d", u))
			out = append(out, v)
		}
	}
	return out, nil
}

// ---- pass 10: rotate-registers ---------------------------------------------

// passRotateRegisters assigns rotating vector registers per unroll copy:
// every rotating operand of copy c gets index min + c mod (max-min), so a
// load/compute/store group within one copy shares its register while
// successive copies use different ones ("generate a different XMM register
// per unrolling iteration ... reduces register dependency", §3.1).
func passRotateRegisters(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		for i := range k.Body {
			for j := range k.Body[i].Operands {
				r := k.Body[i].Operands[j].Reg
				if r == nil || !r.IsRotating() {
					continue
				}
				n := r.RotRange.Max - r.RotRange.Min
				if n <= 0 {
					return nil, fmt.Errorf("kernel %q: empty rotation range on %s", k.Name, r)
				}
				r.RotIdx = r.RotRange.Min + k.Body[i].Copy%n
			}
		}
	}
	return ks, nil
}

// ---- pass 11: allocate-registers ---------------------------------------------

// passAllocateRegisters implements the "hardware detection system" of §3.1:
// the loop counter (last_induction) gets %rdi, where MicroLauncher passes
// the trip count; memory base registers get the remaining SysV argument
// registers in first-use order (so the launcher's allocated arrays land in
// them); other logical registers draw from a scratch pool.
func passAllocateRegisters(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		used := map[isa.Reg]bool{}
		for _, r := range k.Registers() {
			if !r.IsRotating() && r.Phys != isa.NoReg {
				used[r.Phys] = true
			}
		}
		take := func(pool []isa.Reg) (isa.Reg, bool) {
			for _, r := range pool {
				if !used[r] {
					used[r] = true
					return r, true
				}
			}
			return isa.NoReg, false
		}

		// 1. Loop counter.
		for i := range k.Inductions {
			ind := &k.Inductions[i]
			if ind.Last && ind.Reg.Phys == isa.NoReg && !ind.Reg.IsRotating() {
				if used[isa.RDI] {
					return nil, fmt.Errorf("kernel %q: %%rdi already taken; cannot place loop counter %s", k.Name, ind.Reg)
				}
				ind.Reg.Phys = isa.RDI
				used[isa.RDI] = true
			}
		}
		// 2. Memory bases, in first-use order.
		argPool := isa.ArgRegs[1:]
		for i := range k.Body {
			for j := range k.Body[i].Operands {
				o := &k.Body[i].Operands[j]
				if o.Kind != ir.MemOperand || o.Reg.IsRotating() || o.Reg.Phys != isa.NoReg {
					continue
				}
				r, ok := take(argPool[:])
				if !ok {
					return nil, fmt.Errorf("kernel %q: out of argument registers for memory base %s (max %d arrays)", k.Name, o.Reg, len(argPool))
				}
				o.Reg.Phys = r
			}
		}
		// 3. Everything else.
		scratch := []isa.Reg{isa.R10, isa.R11, isa.RBX, isa.R12, isa.R13, isa.R14, isa.R15}
		for _, r := range k.Registers() {
			if r.IsRotating() || r.Phys != isa.NoReg {
				continue
			}
			phys, ok := take(scratch)
			if !ok {
				return nil, fmt.Errorf("kernel %q: out of scratch registers for %s", k.Name, r)
			}
			r.Phys = phys
		}
	}
	return ks, nil
}

// ---- pass 12: link-inductions -------------------------------------------------

// instrWidthFor returns the memory width (bytes) of the first instruction
// addressing through reg.
func instrWidthFor(k *ir.Kernel, reg *ir.Register) (int, error) {
	for i := range k.Body {
		in := &k.Body[i]
		for _, o := range in.Operands {
			if o.Kind == ir.MemOperand && o.Reg == reg {
				op, err := isa.ParseOp(in.Op)
				if err != nil {
					return 0, err
				}
				return op.MemWidth(), nil
			}
		}
	}
	return 0, fmt.Errorf("no instruction addresses through %s", reg)
}

// passLinkInductions scales induction increments for the chosen unroll
// factor (§4.4 / Fig. 8): a plain induction scales by the unroll factor
// (add $48 for 3×16); a linked induction additionally scales by the data
// elements each copy of the linked instruction moves (sub $12 = 1 × 3 copies
// × 4 elements per 16-byte movaps at 4-byte element size); a
// not_affected_unroll induction is untouched (Fig. 9's iteration counter).
func passLinkInductions(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		u := k.Unroll
		if u == 0 {
			u = 1
		}
		es := k.ElementSize
		if es <= 0 {
			es = 4
		}
		for i := range k.Inductions {
			ind := &k.Inductions[i]
			if ind.Scaled {
				return nil, fmt.Errorf("kernel %q: induction %d scaled twice", k.Name, i)
			}
			ind.Scaled = true
			if ind.NotAffectedUnroll {
				continue
			}
			if ind.LinkedTo != nil {
				w, err := instrWidthFor(k, ind.LinkedTo)
				if err != nil {
					return nil, fmt.Errorf("kernel %q: linked induction %d: %w", k.Name, i, err)
				}
				elems := w / es
				if elems < 1 {
					elems = 1
				}
				ind.Increment *= int64(u) * int64(elems)
				continue
			}
			ind.Increment *= int64(u)
		}
	}
	return ks, nil
}

// ---- pass 13: insert-inductions -------------------------------------------------

// passInsertInductions materializes the induction updates. The
// last_induction is emitted last — immediately before the branch — because
// the conditional jump tests the flags its update sets; any other induction
// update (e.g. Fig. 9's iteration counter) would clobber them.
func passInsertInductions(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		order := make([]*ir.Induction, 0, len(k.Inductions))
		var last *ir.Induction
		for i := range k.Inductions {
			if k.Inductions[i].Last {
				last = &k.Inductions[i]
				continue
			}
			order = append(order, &k.Inductions[i])
		}
		if last != nil {
			order = append(order, last)
		}
		for _, ind := range order {
			if ind.Increment == 0 {
				continue
			}
			op, imm := "add", ind.Increment
			if imm < 0 {
				op, imm = "sub", -imm
			}
			k.Body = append(k.Body, ir.Instruction{
				Op: op,
				Operands: []ir.Operand{
					{Kind: ir.ImmOperand, Imm: imm},
					{Kind: ir.RegOperand, Reg: ind.Reg},
				},
				Repeat: ir.Range{Min: 1, Max: 1},
			})
		}
	}
	return ks, nil
}

// ---- pass 14: schedule (gated off by default) -----------------------------------

// passSchedule interleaves memory instructions with non-memory instructions
// round-robin, a simple list-scheduling strategy users can enable through
// the gate (§3.3) to study frontend/scheduler effects.
func passSchedule(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		var mem, other []ir.Instruction
		// Only the unrolled kernel body proper (before induction updates,
		// which must stay last) is reordered; induction updates were
		// appended by insert-inductions which runs earlier, so identify
		// them as trailing integer add/sub on induction registers.
		tail := 0
		for i := len(k.Body) - 1; i >= 0; i-- {
			in := k.Body[i]
			if (in.Op == "add" || in.Op == "sub") && len(in.Operands) == 2 &&
				in.Operands[0].Kind == ir.ImmOperand {
				tail++
				continue
			}
			break
		}
		bodyEnd := len(k.Body) - tail
		for _, in := range k.Body[:bodyEnd] {
			hasMem := false
			for _, o := range in.Operands {
				if o.Kind == ir.MemOperand {
					hasMem = true
				}
			}
			if hasMem {
				mem = append(mem, in)
			} else {
				other = append(other, in)
			}
		}
		if len(other) == 0 {
			continue
		}
		var mixed []ir.Instruction
		for i := 0; i < len(mem) || i < len(other); i++ {
			if i < len(mem) {
				mixed = append(mixed, mem[i])
			}
			if i < len(other) {
				mixed = append(mixed, other[i])
			}
		}
		k.Body = append(mixed, k.Body[bodyEnd:]...)
		k.Tag("sched", "interleave")
	}
	return ks, nil
}

// ---- pass 15: insert-branch --------------------------------------------------

func passInsertBranch(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		if k.Branch.Label == "" {
			k.Branch.Label = ".L0"
		}
		if !strings.HasPrefix(k.Branch.Label, ".") {
			// Label normalization happens once per kernel and only when the
			// spec omitted the conventional dot — not a per-variant rendering.
			k.Branch.Label = "." + k.Branch.Label //microlint:disable L011
		}
		op, err := isa.ParseOp(k.Branch.Test)
		if err != nil || !op.IsCondBranch() {
			return nil, fmt.Errorf("kernel %q: branch test %q is not a conditional jump", k.Name, k.Branch.Test)
		}
	}
	return ks, nil
}

// ---- pass 16: prologue-epilogue ------------------------------------------------

// loadStorePattern renders the per-copy load/store pattern of the body
// ("LSL" = load, store, load), the distinguishing signature the operand
// swap passes create.
func loadStorePattern(k *ir.Kernel) string {
	var b strings.Builder
	for _, in := range k.Body {
		if len(in.Operands) != 2 {
			continue
		}
		a, c := in.Operands[0].Kind, in.Operands[1].Kind
		switch {
		case a == ir.MemOperand && c == ir.RegOperand:
			b.WriteByte('L')
		case a == ir.RegOperand && c == ir.MemOperand:
			b.WriteByte('S')
		}
	}
	return b.String()
}

func sanitizeSymbol(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '-':
			b.WriteByte('m') // negative numbers in tag values
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func passPrologue(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	seen := map[string]bool{}
	var out []*ir.Kernel
	for _, k := range ks {
		// Prologue zeroing: pinned induction registers that are neither
		// the loop counter nor a data pointer (no memory operand uses
		// them as a base) are iteration counters the launcher reads back
		// (Fig. 9) and must start at zero.
		k.ZeroAtEntry = nil
		memBases := map[*ir.Register]bool{}
		for i := range k.Body {
			for _, o := range k.Body[i].Operands {
				if o.Kind == ir.MemOperand {
					memBases[o.Reg] = true
				}
			}
		}
		for i := range k.Inductions {
			ind := &k.Inductions[i]
			if !ind.Last && ind.Reg.Pinned && !memBases[ind.Reg] {
				k.ZeroAtEntry = append(k.ZeroAtEntry, ind.Reg)
			}
		}
		// Variant naming: base + unroll + load/store pattern + remaining
		// distinguishing tags (instruction selection, strides, ...).
		parts := []string{sanitizeSymbol(k.BaseName)}
		if k.Unroll > 0 {
			parts = append(parts, fmt.Sprintf("u%d", k.Unroll))
		}
		if pat := loadStorePattern(k); pat != "" {
			parts = append(parts, pat)
		}
		if len(k.Tags) > 0 {
			keys := make([]string, 0, len(k.Tags))
			for key := range k.Tags {
				if key == "u" {
					continue
				}
				keys = append(keys, key)
			}
			for i := 1; i < len(keys); i++ {
				for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
					keys[j], keys[j-1] = keys[j-1], keys[j]
				}
			}
			for _, key := range keys {
				parts = append(parts, sanitizeSymbol(key+k.Tags[key]))
			}
		}
		name := strings.Join(parts, "_")
		if seen[name] {
			// Content-identical variant (e.g. swap-before + swap-after
			// overlap, §3.2); drop it.
			continue
		}
		seen[name] = true
		k.Name = name
		out = append(out, k)
	}
	return out, nil
}

// ---- pass 17: align-code -------------------------------------------------------

func passAlignCode(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		if k.CodeAlign == 0 {
			k.CodeAlign = 16
		}
	}
	return ks, nil
}

// ---- pass 18: verify -----------------------------------------------------------

func passVerify(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		if k.Unroll < 1 {
			return nil, fmt.Errorf("kernel %q: not unrolled", k.Name)
		}
		hasLast := false
		for _, ind := range k.Inductions {
			if ind.Last {
				hasLast = true
			}
		}
		if !hasLast {
			return nil, fmt.Errorf("kernel %q: no last_induction loop counter", k.Name)
		}
		for i, in := range k.Body {
			if in.Op == "" {
				return nil, fmt.Errorf("kernel %q: instruction %d still abstract", k.Name, i)
			}
			if _, err := isa.ParseOp(in.Op); err != nil {
				return nil, fmt.Errorf("kernel %q: instruction %d: %w", k.Name, i, err)
			}
			if len(in.Operands) == 0 || len(in.Operands) > 3 {
				return nil, fmt.Errorf("kernel %q: instruction %d has %d operands", k.Name, i, len(in.Operands))
			}
			for j, o := range in.Operands {
				if o.Kind == ir.ImmOperand {
					if len(o.ImmChoices) > 0 {
						return nil, fmt.Errorf("kernel %q: instruction %d operand %d has unexpanded immediates", k.Name, i, j)
					}
					continue
				}
				if _, err := o.Reg.Resolved(); err != nil {
					return nil, fmt.Errorf("kernel %q: instruction %d operand %d: %w", k.Name, i, j, err)
				}
				if o.Reg.IsRotating() {
					if o.Reg.RotIdx < o.Reg.RotRange.Min || o.Reg.RotIdx >= o.Reg.RotRange.Max {
						return nil, fmt.Errorf("kernel %q: instruction %d operand %d rotation index %d outside [%d,%d)",
							k.Name, i, j, o.Reg.RotIdx, o.Reg.RotRange.Min, o.Reg.RotRange.Max)
					}
				}
			}
		}
	}
	return ks, nil
}

// ---- pass 20: verify-variants ---------------------------------------------------

// passVerifyVariants runs the static verifier (internal/verify) over every
// surviving kernel variant and every emitted program: IR-level rules
// (operand forms, def-before-use, register conflicts, alignment, induction
// consistency, register pressure), asm-level rules (forms, memory bases,
// loop structure, alignment), and expansion accounting against the counts
// the validate pass predicted. Findings accumulate in ctx.Diagnostics; in
// enforce mode (the default) any error-severity finding fails the pipeline.
// Parsed programs are cached on the codegen output so launchers can reuse
// the decode work. In streaming mode (Context.Sink) the per-program rules
// already ran at emit time and Programs is empty, so only the kernel-level
// rules and expansion accounting run here.
func passVerifyVariants(ctx *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	opt := verify.Options{Suppress: ctx.VerifySuppress}
	var diags verify.Diagnostics
	for _, k := range ks {
		diags = append(diags, verify.Kernel(k, opt)...)
	}
	for i := range ctx.Programs {
		p := &ctx.Programs[i]
		if !p.EmitAssembly {
			continue
		}
		// IR-first: the emit pass lowered the program, so the asm-level
		// rules run on the decoded form directly. Programs that refused to
		// lower fall back to the text round trip, which reproduces the
		// parse-error diagnostics (V000/V006) of the rendering pipeline.
		if p.Parsed != nil {
			diags = append(diags, verify.Program(p.Parsed, p.Name, opt)...)
			continue
		}
		asmText, err := p.Assembly()
		if err != nil || asmText == "" {
			continue
		}
		parsed, ds := verify.AsmProgram(asmText, p.Name, opt)
		diags = append(diags, ds...)
		if parsed != nil {
			p.Parsed = parsed
		}
	}
	// Expansion accounting only models the default pipeline; skip it when
	// plugins reshaped the pass list.
	if !ctx.pipelineModified && len(ctx.expectedVariants) > 0 {
		got := map[string]int{}
		for _, k := range ks {
			got[k.BaseName]++
		}
		bases := make([]string, 0, len(ctx.expectedVariants))
		for base := range ctx.expectedVariants {
			bases = append(bases, base)
		}
		sort.Strings(bases)
		for _, base := range bases {
			diags = append(diags, verify.Expansion(base, got[base], ctx.expectedVariants[base], opt)...)
		}
	}
	ctx.PassSpan().Int("diagnostics", int64(len(diags)))
	ctx.Diagnostics = append(ctx.Diagnostics, diags...)
	if ctx.VerifyMode == verify.ModeEnforce {
		if err := diags.Err(); err != nil {
			return nil, err
		}
	}
	return ks, nil
}

// ---- pass 19: emit -------------------------------------------------------------

func passEmit(ctx *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) {
	for _, k := range ks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sp := ctx.PassSpan().Child("codegen").Str("kernel", k.Name)
		prog := codegen.Program{
			Name: k.Name, Kernel: k,
			EmitAssembly: ctx.EmitAssembly, EmitC: ctx.EmitC,
		}
		// IR-first: lower the kernel straight to its decoded program and
		// render text only on demand (WritePrograms, CLI dumps). Kernels
		// that refuse to lower fall back to the text pipeline: the render
		// below reproduces its emit-time errors, and the verify paths fall
		// back to parsing the rendering, so diagnostics are unchanged.
		parsed, lowerErr := codegen.Lower(k)
		if lowerErr == nil {
			prog.Parsed = parsed
			sp.Int("insts", int64(len(parsed.Insts)))
		} else if ctx.EmitAssembly || ctx.EmitC {
			if _, err := codegen.Assembly(k); err != nil {
				sp.Str("error", err.Error()).End()
				return nil, err
			}
		}
		if ctx.Sink != nil {
			// Streaming mode: verify-then-emit per program, so downstream
			// consumers (the campaign engine) see only programs that passed
			// the per-program rules, without retaining the full set. The
			// kernel-level rules and expansion accounting still run in the
			// verify-variants pass after the stream drains.
			if ctx.VerifyMode != verify.ModeOff && ctx.EmitAssembly {
				var ds verify.Diagnostics
				opt := verify.Options{Suppress: ctx.VerifySuppress}
				if prog.Parsed != nil {
					ds = verify.Program(prog.Parsed, prog.Name, opt)
				} else {
					asmText, _ := prog.Assembly() // render errors handled above
					var parsed *isa.Program
					parsed, ds = verify.AsmProgram(asmText, prog.Name, opt)
					if parsed != nil {
						prog.Parsed = parsed
					}
				}
				ctx.Diagnostics = append(ctx.Diagnostics, ds...)
				if ctx.VerifyMode == verify.ModeEnforce {
					if err := ds.Err(); err != nil {
						sp.Str("error", err.Error()).End()
						return nil, err
					}
				}
			}
			if err := ctx.Sink(prog); err != nil {
				sp.Str("error", err.Error()).End()
				return nil, err
			}
			sp.End()
			continue
		}
		sp.End()
		ctx.Programs = append(ctx.Programs, prog)
	}
	return ks, nil
}
