package passes

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/cpu"
	"microtools/internal/isa"
	"microtools/internal/xmlspec"
)

// nullMem is a constant-latency memory for property executions.
type nullMem struct{}

func (nullMem) Load(_ int, _ uint64, _ int, issue int64) int64  { return issue + 4 }
func (nullMem) Store(_ int, _ uint64, _ int, issue int64) int64 { return issue + 1 }

// randomSpec builds a random but valid kernel description: 1-3 move
// instructions over 1-2 arrays with optional swaps/move-semantics/
// repetition, a random unroll range, optional stride choices, and the
// standard counter protocol.
func randomSpec(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString(`<kernel name="prop">`)
	nArrays := 1 + rng.Intn(2)
	nInsts := 1 + rng.Intn(3)
	ops := []string{"movss", "movsd", "movaps", "movapd", "movups"}
	widths := map[string]int{"movss": 4, "movsd": 8, "movaps": 16, "movapd": 16, "movups": 16}
	maxWidth := 4
	used := map[int]bool{}
	for i := 0; i < nInsts; i++ {
		// The first instruction always uses r1, which the loop counter is
		// linked to; later ones pick any array.
		arr := 1
		if i > 0 {
			arr = 1 + rng.Intn(nArrays)
		}
		used[arr] = true
		b.WriteString("<instruction>")
		var w int
		if rng.Intn(4) == 0 {
			// Abstract move semantics.
			bytes := []int{4, 8, 16}[rng.Intn(3)]
			w = bytes
			fmt.Fprintf(&b, "<move_semantics><bytes>%d</bytes>", bytes)
			if bytes == 16 {
				b.WriteString("<aligned>both</aligned>")
			}
			b.WriteString("</move_semantics>")
		} else {
			op := ops[rng.Intn(len(ops))]
			w = widths[op]
			fmt.Fprintf(&b, "<operation>%s</operation>", op)
		}
		if w > maxWidth {
			maxWidth = w
		}
		// Load shape: memory then register (a later swap may flip it).
		fmt.Fprintf(&b, `<memory><register><name>r%d</name></register><offset>0</offset></memory>`, arr)
		fmt.Fprintf(&b, `<register><phyName>%%xmm</phyName><min>0</min><max>8</max></register>`)
		if rng.Intn(3) == 0 {
			b.WriteString("<swap_before_unroll/>")
		}
		if rng.Intn(3) == 0 {
			b.WriteString("<swap_after_unroll/>")
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&b, "<repetition><min>1</min><max>%d</max></repetition>", 1+rng.Intn(2))
		}
		b.WriteString("</instruction>")
	}
	uMax := 1 + rng.Intn(4)
	fmt.Fprintf(&b, "<unrolling><min>1</min><max>%d</max></unrolling>", uMax)
	for a := 1; a <= nArrays; a++ {
		if !used[a] {
			continue
		}
		// All arrays stride by the widest instruction so addresses stay
		// within the footprint regardless of which instruction uses them.
		fmt.Fprintf(&b, `<induction><register><name>r%d</name></register><increment>%d</increment><offset>%d</offset></induction>`,
			a, maxWidth, maxWidth)
	}
	fmt.Fprintf(&b, `<induction><register><name>r0</name></register><increment>-1</increment><linked><register><name>r1</name></register></linked><last_induction/></induction>`)
	b.WriteString(`<induction><register><phyName>%eax</phyName></register><increment>1</increment><not_affected_unroll/></induction>`)
	b.WriteString(`<branch_information><label>.Lp</label><test>jge</test></branch_information>`)
	b.WriteString(`</kernel>`)
	return b.String()
}

// TestPropertyPipelineAlwaysExecutable: for many random specs, every
// generated variant re-parses, validates, executes to completion under the
// core model, and honours the %eax iteration protocol.
func TestPropertyPipelineAlwaysExecutable(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	arch := isa.Nehalem()
	for trial := 0; trial < 40; trial++ {
		spec := randomSpec(rng)
		ks, err := xmlspec.ParseString(spec)
		if err != nil {
			t.Fatalf("trial %d: spec invalid: %v\n%s", trial, err, spec)
		}
		ctx := &Context{EmitAssembly: true}
		if _, err := NewManager().Run(ctx, ks); err != nil {
			t.Fatalf("trial %d: pipeline failed: %v\n%s", trial, err, spec)
		}
		if len(ctx.Programs) == 0 {
			t.Fatalf("trial %d: no programs", trial)
		}
		// Execute a sample of variants (all if few).
		step := 1
		if len(ctx.Programs) > 8 {
			step = len(ctx.Programs) / 8
		}
		for i := 0; i < len(ctx.Programs); i += step {
			prog := ctx.Programs[i]
			asmText := mustAsm(t, prog)
			p, err := asm.ParseOne(asmText, prog.Name)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, prog.Name, err, asmText)
			}
			var rf isa.RegFile
			rf.Set(isa.RDI, 16*64-1)
			for r := 1; r <= 5; r++ {
				rf.Set(isa.ArgRegs[r], uint64(0x100000*r))
			}
			core := cpu.NewCore(0, arch, nullMem{})
			if err := core.Reset(p, &rf, 0, 200_000); err != nil {
				t.Fatalf("trial %d %s: %v", trial, prog.Name, err)
			}
			done, err := core.Step(math.MaxInt64)
			if err != nil {
				t.Fatalf("trial %d %s: exec: %v\n%s", trial, prog.Name, err, asmText)
			}
			if !done {
				t.Fatalf("trial %d %s: did not finish", trial, prog.Name)
			}
			res := core.Result()
			if res.Truncated {
				t.Fatalf("trial %d %s: runaway kernel (%d insts)", trial, prog.Name, res.Insts)
			}
			if core.Reg(isa.RAX) == 0 {
				t.Errorf("trial %d %s: %%eax protocol broken (0 iterations)", trial, prog.Name)
			}
		}
	}
}

// TestPropertySwapInvolution: swapping a load twice restores it.
func TestPropertySwapInvolution(t *testing.T) {
	spec := `
<kernel name="s">
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm0</phyName></register>
  </instruction>
  <induction><register><name>r1</name></register><increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`
	ks, err := xmlspec.ParseString(spec)
	if err != nil {
		t.Fatal(err)
	}
	in := &ks[0].Body[0]
	before := in.String()
	if !swapInstr(in) {
		t.Fatal("swap failed")
	}
	if in.String() == before {
		t.Fatal("swap did not change the instruction")
	}
	if !swapInstr(in) {
		t.Fatal("second swap failed")
	}
	if in.String() != before {
		t.Errorf("double swap is not identity: %q vs %q", in.String(), before)
	}
}

// TestPropertyVariantCountFormula: for a single swap-after-unroll load and
// unroll 1..U, the pipeline produces sum(2^u) variants, generalizing the
// paper's 510.
func TestPropertyVariantCountFormula(t *testing.T) {
	for _, uMax := range []int{1, 2, 3, 4, 5, 6} {
		spec := fmt.Sprintf(`
<kernel name="f">
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%%xmm</phyName><min>0</min><max>8</max></register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>%d</max></unrolling>
  <induction><register><name>r1</name></register><increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-4</increment><last_induction/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`, uMax)
		ks, err := xmlspec.ParseString(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{EmitAssembly: true}
		out, err := NewManager().Run(ctx, ks)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for u := 1; u <= uMax; u++ {
			want += 1 << u
		}
		if len(out) != want {
			t.Errorf("uMax=%d: %d variants, want %d", uMax, len(out), want)
		}
	}
}
