package passes

import (
	"fmt"
	"strings"
	"testing"

	"microtools/internal/asm"
	"microtools/internal/codegen"
	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/xmlspec"
)

// mustAsm renders a program's assembly on demand, failing the test on a
// render error.
func mustAsm(t *testing.T, p codegen.Program) string {
	t.Helper()
	s, err := p.Assembly()
	if err != nil {
		t.Fatalf("%s: render: %v", p.Name, err)
	}
	return s
}

// fig6XML reproduces the paper's Figure 6 (with the Figure 9 iteration
// counter): the (Load|Store)+ input that §5.1 says generates 510 benchmark
// program variations.
const fig6XML = `
<kernel name="loadstore">
  <instruction>
    <operation>movaps</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>.L6</label><test>jge</test></branch_information>
</kernel>`

func runPipeline(t *testing.T, xml string) (*Context, []*ir.Kernel) {
	t.Helper()
	ks, err := xmlspec.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{EmitAssembly: true}
	out, err := NewManager().Run(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, out
}

// TestFig6Produces510Variants checks the paper's headline generation count:
// "MicroCreator generated 510 benchmark program variations" — unroll factors
// 1..8 with a per-copy load/store swap: sum(2^u, u=1..8) = 510.
func TestFig6Produces510Variants(t *testing.T) {
	ctx, out := runPipeline(t, fig6XML)
	if len(out) != 510 {
		t.Fatalf("generated %d variants, want 510", len(out))
	}
	if len(ctx.Programs) != 510 {
		t.Fatalf("emitted %d programs, want 510", len(ctx.Programs))
	}
	// Per-unroll counts must be 2^u.
	perUnroll := map[int]int{}
	names := map[string]bool{}
	for _, k := range out {
		perUnroll[k.Unroll]++
		if names[k.Name] {
			t.Fatalf("duplicate variant name %q", k.Name)
		}
		names[k.Name] = true
	}
	for u := 1; u <= 8; u++ {
		if perUnroll[u] != 1<<u {
			t.Errorf("unroll %d: %d variants, want %d", u, perUnroll[u], 1<<u)
		}
	}
}

// TestFig8GoldenOutput finds the u=3 store/load/store variant and checks the
// generated assembly against the paper's Figure 8: offsets 0/16/32, add $48
// to the data pointer, sub $12 to the counter, jge loop.
func TestFig8GoldenOutput(t *testing.T) {
	ctx, _ := runPipeline(t, fig6XML)
	var asmText string
	for _, p := range ctx.Programs {
		if strings.Contains(p.Name, "u3_SLS") {
			asmText = mustAsm(t, p)
			break
		}
	}
	if asmText == "" {
		t.Fatal("no u3 SLS variant found")
	}
	for _, want := range []string{
		"movaps %xmm0, (%rsi)",
		"movaps 16(%rsi), %xmm1",
		"movaps %xmm2, 32(%rsi)",
		"add $48, %rsi",
		"add $1, %eax",
		"sub $12, %rdi",
		"jge .L6",
		"xor %eax, %eax",
		"ret",
	} {
		if !strings.Contains(asmText, want) {
			t.Errorf("assembly missing %q:\n%s", want, asmText)
		}
	}
	// The flag-setting last induction must be the final instruction before
	// the branch (the iteration counter would clobber the flags).
	lines := strings.Split(asmText, "\n")
	for i, line := range lines {
		if strings.Contains(line, "jge") {
			if !strings.Contains(lines[i-1], "sub $12, %rdi") {
				t.Errorf("instruction before jge is %q, want the sub", lines[i-1])
			}
		}
	}
}

// TestGeneratedProgramsParseAndRun feeds every generated variant through the
// assembly front end and executes it functionally, checking the
// MicroLauncher linking protocol: %eax returns the executed loop iterations.
func TestGeneratedProgramsParseAndRun(t *testing.T) {
	ctx, _ := runPipeline(t, fig6XML)
	for _, prog := range ctx.Programs {
		asmText := mustAsm(t, prog)
		p, err := asm.ParseOne(asmText, prog.Name)
		if err != nil {
			t.Fatalf("%s: %v\n%s", prog.Name, err, asmText)
		}
		u := prog.Kernel.Unroll
		n := uint64(16 * 4 * 8) // plenty of elements, multiple of all unrolls
		var rf isa.RegFile
		rf.Set(isa.RDI, n)
		rf.Set(isa.RSI, 0x100000)
		pc := p.Labels[prog.Name] // entry at function start = 0
		pc = 0
		steps := 0
		for pc >= 0 {
			inst := &p.Insts[pc]
			var err error
			pc, _, err = isa.Exec(inst, pc, &rf)
			if err != nil {
				t.Fatalf("%s: %v", prog.Name, err)
			}
			steps++
			if steps > 100000 {
				t.Fatalf("%s: runaway execution", prog.Name)
			}
		}
		iters := rf.Get(isa.RAX)
		// Loop runs while counter >= 0: floor(n/(4u)) + 1 iterations.
		want := n/uint64(4*u) + 1
		if iters != want {
			t.Errorf("%s: %%eax = %d loop iterations, want %d", prog.Name, iters, want)
		}
		// Data pointer advanced by 16 bytes per movaps per iteration.
		if got := rf.Get(isa.RSI); got != 0x100000+iters*uint64(16*u) {
			t.Errorf("%s: rsi advanced %d bytes, want %d", prog.Name, got-0x100000, iters*uint64(16*u))
		}
	}
}

// TestRegisterRotation checks that unrolled copies use distinct XMM
// registers within the rotation range ("Doing so reduces register
// dependency", §3.1).
func TestRegisterRotation(t *testing.T) {
	ctx, _ := runPipeline(t, fig6XML)
	for _, prog := range ctx.Programs {
		if prog.Kernel.Unroll != 8 {
			continue
		}
		asmText := mustAsm(t, prog)
		for c := 0; c < 8; c++ {
			want := fmt.Sprintf("%%xmm%d", c)
			if !strings.Contains(asmText, want) {
				t.Errorf("%s: missing rotated register %s\n%s", prog.Name, want, asmText)
			}
		}
		break
	}
}

const moveSemanticsXML = `
<kernel name="moves">
  <instruction>
    <move_semantics><bytes>16</bytes><aligned>both</aligned></move_semantics>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
  </instruction>
  <unrolling><min>1</min><max>1</max></unrolling>
  <induction><register><name>r1</name></register><increment>16</increment><offset>16</offset></induction>
  <induction><register><name>r0</name></register><increment>-4</increment><last_induction/></induction>
  <branch_information><label>.L1</label><test>jge</test></branch_information>
</kernel>`

// TestMoveSemanticsSelection checks §3.1's abstract moves: 16 bytes, both
// precisions, both alignments = movaps, movups, movapd, movupd.
func TestMoveSemanticsSelection(t *testing.T) {
	ctx, out := runPipeline(t, moveSemanticsXML)
	if len(out) != 4 {
		t.Fatalf("got %d variants, want 4", len(out))
	}
	got := map[string]bool{}
	for _, p := range ctx.Programs {
		asmText := mustAsm(t, p)
		for _, op := range []string{"movaps", "movups", "movapd", "movupd"} {
			if strings.Contains(asmText, op+" ") {
				got[op] = true
			}
		}
	}
	if len(got) != 4 {
		t.Errorf("instruction selection produced %v, want all four variants", got)
	}
}

const strideXML = `
<kernel name="strided">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm0</phyName></register>
  </instruction>
  <unrolling><min>1</min><max>2</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <stride><value>4</value><value>16</value><value>64</value></stride>
    <offset>4</offset>
  </induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L2</label><test>jge</test></branch_information>
</kernel>`

func TestStrideSelection(t *testing.T) {
	_, out := runPipeline(t, strideXML)
	// 3 strides x 2 unrolls.
	if len(out) != 6 {
		t.Fatalf("got %d variants, want 6", len(out))
	}
	strides := map[string]int{}
	for _, k := range out {
		strides[k.Tags["stride0"]]++
	}
	for _, s := range []string{"4", "16", "64"} {
		if strides[s] != 2 {
			t.Errorf("stride %s: %d variants, want 2", s, strides[s])
		}
	}
}

func TestImmediateSelection(t *testing.T) {
	src := `
<kernel name="imms">
  <instruction>
    <operation>add</operation>
    <immediate><value>1</value><value>2</value></immediate>
    <register><name>r2</name></register>
  </instruction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L3</label><test>jge</test></branch_information>
</kernel>`
	_, out := runPipeline(t, src)
	if len(out) != 2 {
		t.Fatalf("got %d variants, want 2", len(out))
	}
}

func TestRepetitionExpansion(t *testing.T) {
	src := `
<kernel name="reps">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    <repetition><min>1</min><max>3</max></repetition>
  </instruction>
  <induction><register><name>r1</name></register><increment>4</increment><offset>4</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L4</label><test>jge</test></branch_information>
</kernel>`
	_, out := runPipeline(t, src)
	if len(out) != 3 {
		t.Fatalf("got %d variants, want 3 (repetition 1..3)", len(out))
	}
	sizes := map[int]bool{}
	for _, k := range out {
		loads := 0
		for _, in := range k.Body {
			if in.Op == "movss" {
				loads++
			}
		}
		sizes[loads] = true
	}
	for c := 1; c <= 3; c++ {
		if !sizes[c] {
			t.Errorf("missing repetition count %d (got %v)", c, sizes)
		}
	}
}

func TestRandomSelectionDeterminism(t *testing.T) {
	src := `
<kernel name="rnd">
  <random_selection><count>5</count><seed>42</seed></random_selection>
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm0</phyName></register>
  </instruction>
  <instruction>
    <operation>movsd</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm1</phyName></register>
  </instruction>
  <induction><register><name>r1</name></register><increment>8</increment><offset>8</offset></induction>
  <induction><register><name>r0</name></register><increment>-1</increment><last_induction/></induction>
  <branch_information><label>.L5</label><test>jge</test></branch_information>
</kernel>`
	ctx1, out1 := runPipeline(t, src)
	ctx2, out2 := runPipeline(t, src)
	if len(out1) == 0 || len(out1) != len(out2) {
		t.Fatalf("variant counts differ: %d vs %d", len(out1), len(out2))
	}
	for i := range ctx1.Programs {
		if mustAsm(t, ctx1.Programs[i]) != mustAsm(t, ctx2.Programs[i]) {
			t.Errorf("random selection is not deterministic at program %d", i)
		}
	}
}

func TestMaxVariantsCap(t *testing.T) {
	capped := strings.Replace(fig6XML, `<kernel name="loadstore">`,
		`<kernel name="loadstore"><max_variants>100</max_variants>`, 1)
	_, out := runPipeline(t, capped)
	if len(out) > 100 {
		t.Errorf("cap violated: %d variants", len(out))
	}
}

func TestRegisterAllocationConvention(t *testing.T) {
	_, out := runPipeline(t, fig6XML)
	k := out[0]
	var counter, base *ir.Register
	for i := range k.Inductions {
		if k.Inductions[i].Last {
			counter = k.Inductions[i].Reg
		}
	}
	for _, in := range k.Body {
		for _, o := range in.Operands {
			if o.Kind == ir.MemOperand {
				base = o.Reg
			}
		}
	}
	if counter == nil || counter.Phys != isa.RDI {
		t.Errorf("loop counter register = %v, want %%rdi", counter)
	}
	if base == nil || base.Phys != isa.RSI {
		t.Errorf("first array base register = %v, want %%rsi", base)
	}
}

func TestLinkedInductionScaling(t *testing.T) {
	_, out := runPipeline(t, fig6XML)
	for _, k := range out {
		for _, ind := range k.Inductions {
			switch {
			case ind.Last: // linked to r1: -1 * u * (16/4)
				want := int64(-1) * int64(k.Unroll) * 4
				if ind.Increment != want {
					t.Errorf("u=%d: counter increment %d, want %d", k.Unroll, ind.Increment, want)
				}
			case ind.NotAffectedUnroll:
				if ind.Increment != 1 {
					t.Errorf("u=%d: iteration counter increment %d, want 1", k.Unroll, ind.Increment)
				}
			default: // r1: 16 * u
				want := int64(16) * int64(k.Unroll)
				if ind.Increment != want {
					t.Errorf("u=%d: data increment %d, want %d", k.Unroll, ind.Increment, want)
				}
			}
		}
	}
}

func TestManagerHas19Passes(t *testing.T) {
	m := NewManager()
	// The paper's nineteen passes (§3.2) plus the static verifier.
	if got := len(m.Passes()); got != 20 {
		t.Fatalf("default pipeline has %d passes, want 20 (§3.2 + verify-variants)", got)
	}
	// Paper-named passes must all be present.
	for _, name := range []string{
		"validate", "repeat-instructions", "random-select",
		"select-instructions", "select-strides", "select-immediates",
		"swap-before-unroll", "unroll", "swap-after-unroll",
		"rotate-registers", "allocate-registers", "link-inductions",
		"insert-inductions", "schedule", "insert-branch",
		"prologue-epilogue", "align-code", "verify", "emit",
		"verify-variants",
	} {
		if m.Lookup(name) == nil {
			t.Errorf("missing pass %q", name)
		}
	}
}

func TestManagerMutations(t *testing.T) {
	m := NewManager()
	custom := &Pass{Name: "custom", Run: func(_ *Context, ks []*ir.Kernel) ([]*ir.Kernel, error) { return ks, nil }}
	if err := m.InsertAfter("unroll", custom); err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	for i, n := range names {
		if n == "unroll" && names[i+1] != "custom" {
			t.Errorf("custom not after unroll: %v", names)
		}
	}
	if err := m.Remove("custom"); err != nil {
		t.Fatal(err)
	}
	if m.Lookup("custom") != nil {
		t.Error("custom still present after Remove")
	}
	if err := m.Remove("custom"); err == nil {
		t.Error("removing a missing pass must fail")
	}
	repl := &Pass{Name: "unroll2", Run: custom.Run}
	if err := m.Replace("unroll", repl); err != nil {
		t.Fatal(err)
	}
	if m.Lookup("unroll") != nil || m.Lookup("unroll2") == nil {
		t.Error("Replace did not swap the pass")
	}
	if err := m.InsertBefore("nonexistent", custom); err == nil {
		t.Error("InsertBefore missing pass must fail")
	}
	if err := m.Append(&Pass{}); err == nil {
		t.Error("Append of invalid pass must fail")
	}
}

// TestGateDisablesPass disables the unroll-dependent passes via gates and
// checks the pipeline degenerates gracefully (unroll off -> single variant
// per swap pattern).
func TestGateDisablesPass(t *testing.T) {
	ks, err := xmlspec.ParseString(fig6XML)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	if err := m.SetGate("swap-after-unroll", NeverGate); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{EmitAssembly: true}
	out, err := m.Run(ctx, ks)
	if err != nil {
		t.Fatal(err)
	}
	// Without the swap fan-out: exactly 8 variants (one per unroll).
	if len(out) != 8 {
		t.Errorf("got %d variants with swap gated off, want 8", len(out))
	}
}

func TestSchedulePassOffByDefault(t *testing.T) {
	m := NewManager()
	p := m.Lookup("schedule")
	if p == nil {
		t.Fatal("schedule pass missing")
	}
	if p.Gate(&Context{}) {
		t.Error("schedule gate must default to off")
	}
}

func TestVerifyCatchesAbstractInstruction(t *testing.T) {
	k := &ir.Kernel{
		BaseName: "bad", Name: "bad", Unroll: 1,
		Body:       []ir.Instruction{{Move: &ir.MoveSemantics{Bytes: 16}, Operands: []ir.Operand{{Kind: ir.ImmOperand, Imm: 1}}}},
		Inductions: []ir.Induction{{Reg: &ir.Register{Phys: isa.RDI}, Increment: -1, Last: true}},
		Branch:     ir.Branch{Label: ".L", Test: "jge"},
	}
	if _, err := passVerify(&Context{}, []*ir.Kernel{k}); err == nil {
		t.Error("verify must reject abstract instructions")
	}
}
