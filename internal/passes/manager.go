// Package passes implements MicroCreator's source-to-source compiler
// pipeline (§3.2): nineteen independent passes that progressively lower and
// multiply an abstract ir.Kernel into a set of concrete benchmark programs.
//
// Unlike general compiler passes, "the passes in MicroCreator are entirely
// independent" — each consumes and produces a flat variant set, and each has
// a gate function a plugin may override to disable, enable or re-sequence it
// (§3.3).
package passes

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"microtools/internal/codegen"
	"microtools/internal/ir"
	"microtools/internal/obs"
	"microtools/internal/verify"
)

// Context carries pipeline-wide state. A fresh Context is used per Run.
type Context struct {
	// Ctx carries the caller's cancellation/deadline context through the
	// pipeline; nil means not cancellable. Manager.Run checks it between
	// passes and the emit pass checks it between kernels, so a canceled
	// campaign stops the generator promptly.
	Ctx context.Context
	// Seed seeds the random-select pass (kernels may override with their
	// own <random_selection><seed>).
	Seed int64
	// EmitAssembly / EmitC select the output formats produced by the emit
	// pass. Assembly defaults to on.
	EmitAssembly bool
	EmitC        bool
	// Verbose, when non-nil, receives per-pass progress lines.
	Verbose io.Writer
	// Trace, when active, is the parent span the pipeline records its
	// per-pass spans under. The zero Span is the no-op default.
	Trace obs.Span
	// Programs receives the emit pass output (materialized mode).
	Programs []codegen.Program
	// Sink, when non-nil, switches the emit pass to streaming mode: each
	// program is verified inline (honouring VerifyMode) and handed to the
	// sink as soon as it is rendered, and Programs stays empty, so an
	// N-variant family never holds all rendered programs at once. A sink
	// error aborts the pipeline.
	Sink func(codegen.Program) error

	// VerifyMode selects how the final verify-variants pass treats its
	// findings: verify.ModeEnforce (the zero value) fails the pipeline on
	// error-severity diagnostics, verify.ModeCollect records them in
	// Diagnostics without failing, verify.ModeOff gates the pass off.
	VerifyMode verify.Mode
	// VerifySuppress lists rule IDs the verifier ignores (e.g. "V004").
	VerifySuppress []string
	// Diagnostics accumulates the verifier findings of the run.
	Diagnostics verify.Diagnostics

	rng *rand.Rand
	// pass is the span of the pass currently running (set by Manager.Run).
	pass obs.Span
	// expectedVariants records the statically-predicted variant count per
	// kernel family (set by the validate pass; consumed by verify-variants
	// for expansion accounting). Families with unpredictable counts are
	// absent.
	expectedVariants map[string]int64
	// pipelineModified notes that the pass list diverged from the default
	// nineteen-pass pipeline (plugin surgery); expansion accounting is
	// skipped because the prediction only models the default passes.
	pipelineModified bool
}

// PassSpan returns the span of the currently running pass, so pass bodies
// can record sub-spans (e.g. per-program code generation). Outside
// Manager.Run it is the zero, no-op Span.
func (c *Context) PassSpan() obs.Span { return c.pass }

// Err reports the pipeline context's cancellation state: nil while the
// run may continue, the context's error once it is canceled or past its
// deadline (and always nil when no context is attached).
func (c *Context) Err() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// RNG returns the context's seeded random source.
func (c *Context) RNG() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
	return c.rng
}

func (c *Context) logf(format string, args ...any) {
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, format+"\n", args...)
	}
}

// GateFunc decides whether a pass executes ("the function returning a
// boolean deciding whether or not to execute the pass", §3.3).
type GateFunc func(*Context) bool

// RunFunc transforms a variant set.
type RunFunc func(*Context, []*ir.Kernel) ([]*ir.Kernel, error)

// Pass is one pipeline stage.
type Pass struct {
	Name string
	// Doc is a one-line description shown by microcreator -list-passes.
	Doc  string
	Gate GateFunc
	Run  RunFunc
}

// AlwaysGate is the default gate: "Most internal passes are performed
// because their gates always return true" (§3.3).
func AlwaysGate(*Context) bool { return true }

// NeverGate disables a pass.
func NeverGate(*Context) bool { return false }

// Manager owns the ordered pass list. Plugins mutate it through the
// methods below — the Go equivalent of the paper's pluginInit API.
type Manager struct {
	passes []*Pass
	// modified records any surgery on the default pipeline (replace,
	// remove, insert, append, gate override); the verify-variants pass
	// skips expansion accounting on modified pipelines.
	modified bool
}

// NewManager returns a manager loaded with the nineteen default passes.
func NewManager() *Manager {
	m := &Manager{}
	for _, p := range defaultPasses() {
		m.passes = append(m.passes, p)
	}
	return m
}

// NewEmptyManager returns a manager with no passes (for plugins that build
// a custom pipeline from scratch).
func NewEmptyManager() *Manager { return &Manager{} }

// Passes returns the pass list in execution order.
func (m *Manager) Passes() []*Pass { return append([]*Pass(nil), m.passes...) }

// Names returns the pass names in execution order.
func (m *Manager) Names() []string {
	out := make([]string, len(m.passes))
	for i, p := range m.passes {
		out[i] = p.Name
	}
	return out
}

// Lookup returns the pass with the given name, or nil.
func (m *Manager) Lookup(name string) *Pass {
	for _, p := range m.passes {
		if p.Name == name {
			return p
		}
	}
	return nil
}

func (m *Manager) index(name string) int {
	for i, p := range m.passes {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Replace swaps the named pass for p, keeping its position ("A user may
// replace or rewrite any of the internal passes", §3.3).
func (m *Manager) Replace(name string, p *Pass) error {
	i := m.index(name)
	if i < 0 {
		return fmt.Errorf("passes: no pass named %q", name)
	}
	if err := checkPass(p); err != nil {
		return err
	}
	m.passes[i] = p
	m.modified = true
	return nil
}

// Remove deletes the named pass.
func (m *Manager) Remove(name string) error {
	i := m.index(name)
	if i < 0 {
		return fmt.Errorf("passes: no pass named %q", name)
	}
	m.passes = append(m.passes[:i], m.passes[i+1:]...)
	m.modified = true
	return nil
}

// InsertBefore inserts p before the named pass.
func (m *Manager) InsertBefore(name string, p *Pass) error {
	return m.insert(name, p, 0)
}

// InsertAfter inserts p after the named pass.
func (m *Manager) InsertAfter(name string, p *Pass) error {
	return m.insert(name, p, 1)
}

func (m *Manager) insert(name string, p *Pass, delta int) error {
	i := m.index(name)
	if i < 0 {
		return fmt.Errorf("passes: no pass named %q", name)
	}
	if err := checkPass(p); err != nil {
		return err
	}
	if m.index(p.Name) >= 0 {
		return fmt.Errorf("passes: pass %q already registered", p.Name)
	}
	i += delta
	m.passes = append(m.passes[:i], append([]*Pass{p}, m.passes[i:]...)...)
	m.modified = true
	return nil
}

// Append adds p at the end of the pipeline.
func (m *Manager) Append(p *Pass) error {
	if err := checkPass(p); err != nil {
		return err
	}
	if m.index(p.Name) >= 0 {
		return fmt.Errorf("passes: pass %q already registered", p.Name)
	}
	m.passes = append(m.passes, p)
	m.modified = true
	return nil
}

// SetGate overrides the gate of the named pass (§3.3: "MicroCreator also
// permits a redefinition of any pass gate").
func (m *Manager) SetGate(name string, gate GateFunc) error {
	p := m.Lookup(name)
	if p == nil {
		return fmt.Errorf("passes: no pass named %q", name)
	}
	if gate == nil {
		return fmt.Errorf("passes: nil gate for %q", name)
	}
	p.Gate = gate
	m.modified = true
	return nil
}

func checkPass(p *Pass) error {
	if p == nil || p.Name == "" || p.Run == nil {
		return fmt.Errorf("passes: pass must have a name and a run function")
	}
	if p.Gate == nil {
		p.Gate = AlwaysGate
	}
	return nil
}

// Run executes the pipeline over the initial kernel set and returns the
// final variant set. Emitted programs accumulate in ctx.Programs.
func (m *Manager) Run(ctx *Context, kernels []*ir.Kernel) ([]*ir.Kernel, error) {
	if ctx == nil {
		ctx = &Context{EmitAssembly: true}
	}
	ctx.pipelineModified = ctx.pipelineModified || m.modified
	ks := kernels
	pipeline := ctx.Trace.Child("passes").Int("kernels_in", int64(len(ks)))
	for _, p := range m.passes {
		if err := ctx.Err(); err != nil {
			pipeline.Str("error", err.Error()).End()
			return nil, err
		}
		if p.Gate != nil && !p.Gate(ctx) {
			ctx.logf("pass %-22s skipped (gate)", p.Name)
			continue
		}
		var err error
		before := len(ks)
		sp := pipeline.Child("pass."+p.Name).Int("kernels_in", int64(before))
		ctx.pass = sp
		ks, err = p.Run(ctx, ks)
		ctx.pass = obs.Span{}
		if err != nil {
			sp.Str("error", err.Error()).End()
			pipeline.End()
			return nil, fmt.Errorf("passes: %s: %w", p.Name, err)
		}
		ks = applyVariantCap(ks)
		sp.Int("kernels_out", int64(len(ks))).End()
		ctx.logf("pass %-22s %4d -> %4d kernels", p.Name, before, len(ks))
	}
	pipeline.Int("kernels_out", int64(len(ks))).End()
	return ks, nil
}

// applyVariantCap enforces each kernel family's MaxVariants budget ("The
// user can limit the number of benchmark programs if it is superfluous",
// §3.2). The cap applies per BaseName, keeping the earliest variants.
func applyVariantCap(ks []*ir.Kernel) []*ir.Kernel {
	counts := map[string]int{}
	out := ks[:0]
	for _, k := range ks {
		if k.MaxVariants > 0 && counts[k.BaseName] >= k.MaxVariants {
			continue
		}
		counts[k.BaseName]++
		out = append(out, k)
	}
	return out
}
