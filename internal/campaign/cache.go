package campaign

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"microtools/internal/faults"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/memsim"
)

// keyVersion is folded into every cache key so a future change to the key
// recipe or the Measurement encoding invalidates old entries instead of
// serving stale ones.
const keyVersion = "microtools-campaign-v1"

// Keyer derives content-addressed cache keys for one campaign's launch
// options. The key recipe is SHA-256 over (1) the canonical kernel assembly
// — the decoded program re-printed, so formatting-only differences in the
// input text hash identically; (2) every measurement-relevant launcher
// option (output writers and tracers excluded); and (3) the resolved
// machine model's parameters, so editing a machine description invalidates
// entries measured under the old model. The option and machine parts are
// variant-independent, so a Keyer marshals them once and per-variant key
// derivation streams the kernel rendering through the hash from a pooled
// buffer — no per-key JSON, no per-key assembly string.
type Keyer struct {
	// fixed is the variant-independent tail of the hashed bytes:
	// optJSON \0 machJSON \0.
	fixed []byte
}

// NewKeyer resolves and marshals the variant-independent key parts.
func NewKeyer(opts launcher.Options) (*Keyer, error) {
	scrub := opts
	scrub.Verbose = nil
	scrub.Tracer = nil
	scrub.Faults = nil  // the fault plan perturbs execution, not the key
	scrub.Metrics = nil // live instrumentation observes the run, it is not part of it
	optJSON, err := json.Marshal(scrub)
	if err != nil {
		return nil, fmt.Errorf("campaign: hashing options: %w", err)
	}
	desc, err := machine.ByName(opts.MachineName)
	if err != nil {
		return nil, err
	}
	// The machine model without its Arch pointer (the name identifies the
	// ISA/uarch tables; the measurable parameters are listed explicitly).
	machJSON, err := json.Marshal(struct {
		Name              string
		Cores             int
		Sockets           int
		CoreGHz           float64
		UncoreGHz         float64
		RefGHz            float64
		Hierarchy         memsim.HierarchyConfig
		FrequencyStepsGHz []float64
	}{desc.Name, desc.Cores, desc.Sockets, desc.CoreGHz, desc.UncoreGHz,
		desc.RefGHz, desc.Hierarchy, desc.FrequencyStepsGHz})
	if err != nil {
		return nil, fmt.Errorf("campaign: hashing machine model: %w", err)
	}
	fixed := make([]byte, 0, len(optJSON)+len(machJSON)+2)
	fixed = append(fixed, optJSON...)
	fixed = append(fixed, 0)
	fixed = append(fixed, machJSON...)
	fixed = append(fixed, 0)
	return &Keyer{fixed: fixed}, nil
}

// keyBufPool recycles the rendering buffers Keyer.Key hashes from.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Key derives the cache key for one kernel. The digest is identical to the
// package-level Key: SHA-256 over the NUL-separated parts, with the kernel
// rendering appended via AppendPrint instead of materialized as a string.
func (ky *Keyer) Key(kernel *isa.Program) (string, error) {
	if kernel == nil {
		return "", fmt.Errorf("campaign: nil kernel")
	}
	bp := keyBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, keyVersion...)
	buf = append(buf, 0)
	buf = kernel.AppendPrint(buf)
	buf = append(buf, 0)
	buf = append(buf, ky.fixed...)
	sum := sha256.Sum256(buf)
	*bp = buf
	keyBufPool.Put(bp)
	return hex.EncodeToString(sum[:]), nil
}

// Key derives the content-addressed cache key for measuring a kernel under
// the given options (see Keyer). One-shot form: campaigns reuse a Keyer.
func Key(kernel *isa.Program, opts launcher.Options) (string, error) {
	ky, err := NewKeyer(opts)
	if err != nil {
		return "", err
	}
	return ky.Key(kernel)
}

// cacheEntry is one JSONL line of the on-disk store.
type cacheEntry struct {
	Key         string          `json:"key"`
	Measurement json.RawMessage `json:"measurement"`
}

// Cache is a content-addressed measurement store: Key → Measurement,
// optionally backed by an append-only JSONL file. Completed measurements
// are flushed to disk as they land, so an interrupted campaign's cache is
// a valid checkpoint and re-running the campaign resumes from it, skipping
// every already-measured variant.
//
// Entries are held as raw JSON and decoded on every Get, so callers always
// receive a private copy — and a cache hit is bit-identical to the cold
// measurement, because Put canonicalizes the stored value through the same
// encoding (see Put). Corrupted lines in the backing file (a torn write
// from a killed process, stray garbage) are skipped at load time: a
// corrupt entry degrades to a cache miss, never to an error.
type Cache struct {
	mu      sync.Mutex
	entries map[string]json.RawMessage
	file    *os.File // nil for a memory-only cache
	// faults, when non-nil, injects deterministic failures at the store's
	// I/O boundaries (see SetFaults).
	faults *faults.Injector
}

// SetFaults arms the store's fault-injection points: cache.get (a lookup
// degrades to a miss), cache.put (the entry is rejected before storing)
// and cache.checkpoint (the entry lands in memory but the backing-file
// append fails — the torn-checkpoint scenario). Campaign.Run propagates
// its own injector here when the cache has none; the injector stays
// attached until replaced. A nil injector detaches.
func (c *Cache) SetFaults(in *faults.Injector) {
	c.mu.Lock()
	c.faults = in
	c.mu.Unlock()
}

// NewMemoryCache returns a cache with no backing file (useful for tests
// and single-process warm reruns).
func NewMemoryCache() *Cache {
	return &Cache{entries: map[string]json.RawMessage{}}
}

// OpenCache opens (creating if needed) a JSONL-backed cache at path and
// loads every well-formed entry. Malformed lines are tolerated and
// skipped.
func OpenCache(path string) (*Cache, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	c := &Cache{entries: map[string]json.RawMessage{}, file: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e cacheEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || len(e.Measurement) == 0 {
			continue // corrupt line: degrade to a miss
		}
		var m launcher.Measurement
		if err := json.Unmarshal(e.Measurement, &m); err != nil {
			continue
		}
		c.entries[e.Key] = append(json.RawMessage(nil), e.Measurement...)
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return nil, err
	}
	// Future writes append after whatever was readable.
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// Len reports the number of cached measurements.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the cached measurement for key, decoded into a fresh value
// the caller owns, or (nil, false) on a miss.
func (c *Cache) Get(key string) (*launcher.Measurement, bool) {
	c.mu.Lock()
	raw, ok := c.entries[key]
	inj := c.faults
	c.mu.Unlock()
	if err := inj.Check(faults.PointCacheGet, key); err != nil {
		return nil, false // an injected read fault degrades to a miss
	}
	if !ok {
		return nil, false
	}
	var m launcher.Measurement
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, false
	}
	return &m, true
}

// Put stores a measurement under key, appending it to the backing file
// when one is attached, and returns the canonicalized measurement — the
// value decoded back out of the stored encoding. Callers should adopt the
// returned value: it is what every future Get for this key yields, so cold
// and cache-warm campaign results stay bit-identical by construction. A
// measurement that does not survive the encoding (e.g. a NaN value) is
// reported as an error and simply not cached.
func (c *Cache) Put(key string, m *launcher.Measurement) (*launcher.Measurement, error) {
	c.mu.Lock()
	inj := c.faults
	c.mu.Unlock()
	if err := inj.Check(faults.PointCachePut, key); err != nil {
		return nil, fmt.Errorf("campaign: cache put: %w", err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("campaign: measurement not cacheable: %w", err)
	}
	var canon launcher.Measurement
	if err := json.Unmarshal(raw, &canon); err != nil {
		return nil, fmt.Errorf("campaign: measurement does not round-trip: %w", err)
	}
	line, err := json.Marshal(cacheEntry{Key: key, Measurement: raw})
	if err != nil {
		return nil, err
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = raw
	if err := inj.Check(faults.PointCacheCheckpoint, key); err != nil {
		// The entry is live in memory; only the checkpoint write "failed".
		return &canon, fmt.Errorf("campaign: cache append: %w", err)
	}
	if c.file != nil {
		if _, err := c.file.Write(line); err != nil {
			return &canon, fmt.Errorf("campaign: cache append: %w", err)
		}
	}
	return &canon, nil
}

// Close releases the backing file (a no-op for memory caches).
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.file == nil {
		return nil
	}
	err := c.file.Close()
	c.file = nil
	return err
}
