package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"microtools/internal/core"
	"microtools/internal/isa"
	"microtools/internal/obs"
)

// seedSpecs returns every seed spec shipped with the repository.
func seedSpecs(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.xml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no seed specs found: %v", err)
	}
	return paths
}

// TestBoundsOracleAcrossSeedSpecs is the differential sweep of the oracle
// invariant: every variant of every seed spec, measured on both machine
// models, must respect the static lower bound (the bound and the simulator
// schedule from the same decode tables, so a violation is an analysis bug,
// not noise).
func TestBoundsOracleAcrossSeedSpecs(t *testing.T) {
	for _, machineName := range []string{"nehalem-dual", "sandybridge"} {
		for _, path := range seedSpecs(t) {
			name := machineName + "/" + filepath.Base(path)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				launch := quickLaunch()
				launch.MachineName = machineName
				counters := obs.NewCounterSet()
				res, err := RunFile(context.Background(), path, core.GenerateOptions{},
					Options{Launch: launch, Workers: 8, CheckBounds: true, Counters: counters})
				if err != nil {
					t.Fatalf("campaign: %v", err)
				}
				bounded := 0
				for _, r := range res.Results {
					var bv *BoundViolationError
					if errors.As(r.Err, &bv) {
						t.Errorf("variant %s: %v", r.Name, bv)
					}
					if r.StaticBound > 0 {
						bounded++
						if r.Measurement != nil && r.Measurement.StaticBound != r.StaticBound {
							t.Errorf("variant %s: measurement bound %g != result bound %g",
								r.Name, r.Measurement.StaticBound, r.StaticBound)
						}
					}
				}
				if bounded == 0 {
					t.Errorf("no variant of %s received a static bound", filepath.Base(path))
				}
				if got := counters.Get("analysis.bound.violations"); got != 0 {
					t.Errorf("analysis.bound.violations = %d, want 0", got)
				}
			})
		}
	}
}

// TestBoundsOracleCatchesCorruptedTable proves the CheckBounds assertion has
// teeth: computing the bound from a deliberately corrupted µop table (frontend
// narrowed to one µop per cycle) must trip BoundViolationError on kernels the
// real four-wide frontend measures faster than that inflated floor.
func TestBoundsOracleCatchesCorruptedTable(t *testing.T) {
	corrupted := *isa.Nehalem()
	corrupted.Name = "nehalem-corrupted"
	corrupted.IssueWidth = 1

	launch := quickLaunch()
	launch.MachineName = "nehalem-dual"
	counters := obs.NewCounterSet()
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch:      launch,
		CheckBounds: true,
		Counters:    counters,
		boundArch:   &corrupted,
	})
	if err == nil {
		t.Fatal("corrupted latency table produced no campaign error")
	}

	violations := 0
	for _, r := range res.Results {
		var bv *BoundViolationError
		if !errors.As(r.Err, &bv) {
			continue
		}
		violations++
		if r.Measurement != nil {
			t.Errorf("variant %s: violation carries a measurement", r.Name)
		}
		if bv.Measured >= bv.Bound-bv.Tolerance {
			t.Errorf("variant %s: reported violation does not violate: %v", r.Name, bv)
		}
	}
	if violations == 0 {
		t.Fatal("corrupted latency table produced no BoundViolationError: the oracle has no teeth")
	}
	if got := counters.Get("analysis.bound.violations"); got != int64(violations) {
		t.Errorf("analysis.bound.violations = %d, want %d", got, violations)
	}
	if res.Failures != violations {
		t.Errorf("Failures = %d, want %d (one per violation)", res.Failures, violations)
	}
}

// TestBoundsRecordedOnCacheHits asserts the warm path backfills StaticBound
// from the (deterministic) analysis even when the cached measurement predates
// it, without mutating the cache's canonical copy.
func TestBoundsRecordedOnCacheHits(t *testing.T) {
	cache := NewMemoryCache()
	cold := runSweep(t, Options{Launch: quickLaunch(), Cache: cache})
	warm := runSweep(t, Options{Launch: quickLaunch(), Cache: cache, CheckBounds: true})
	if warm.Launches != 0 || warm.CacheHits != len(cold.Results) {
		t.Fatalf("warm run: %d launches, %d hits, want 0/%d", warm.Launches, warm.CacheHits, len(cold.Results))
	}
	for i, r := range warm.Results {
		if r.StaticBound <= 0 || r.Measurement == nil || r.Measurement.StaticBound != r.StaticBound {
			t.Errorf("warm variant %s: bound not backfilled (result %g)", r.Name, r.StaticBound)
		}
		if cold.Results[i].StaticBound != r.StaticBound {
			t.Errorf("variant %s: cold bound %g != warm bound %g",
				r.Name, cold.Results[i].StaticBound, r.StaticBound)
		}
	}
}
