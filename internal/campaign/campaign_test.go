package campaign

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"microtools/internal/core"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/memsim"
	"microtools/internal/obs"
)

// sweepSpec expands to four variants (unroll 1..4) of a simple streaming
// load kernel.
const sweepSpec = `
<kernel name="campaign_k">
  <instruction>
    <operation>movss</operation>
    <memory><register><name>r1</name></register><offset>0</offset></memory>
    <register><phyName>%xmm</phyName><min>0</min><max>4</max></register>
  </instruction>
  <unrolling><min>1</min><max>4</max></unrolling>
  <induction><register><name>r1</name></register><increment>4</increment><offset>4</offset></induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction><register><phyName>%eax</phyName></register><increment>1</increment><not_affected_unroll/></induction>
  <branch_information><label>.L0</label><test>jge</test></branch_information>
</kernel>`

func quickLaunch() launcher.Options {
	opts := launcher.DefaultOptions()
	opts.MachineName = "nehalem-dual/8"
	opts.ArrayBytes = 1 << 12
	opts.InnerReps = 1
	opts.OuterReps = 1
	opts.MaxInstructions = 5_000
	return opts
}

func runSweep(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, opts)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return res
}

func csvOf(t *testing.T, res *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := launcher.WriteCSV(&buf, res.Measurements()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunMeasuresEveryVariant(t *testing.T) {
	res := runSweep(t, Options{Launch: quickLaunch()})
	if res.Emitted != 4 {
		t.Fatalf("emitted %d variants, want 4", res.Emitted)
	}
	if len(res.Results) != 4 || res.Launches != 4 || res.Failures != 0 {
		t.Fatalf("results=%d launches=%d failures=%d, want 4/4/0",
			len(res.Results), res.Launches, res.Failures)
	}
	for i, r := range res.Results {
		if r.Index != i {
			t.Errorf("result %d has index %d: not in generation order", i, r.Index)
		}
		if r.Measurement == nil || r.CacheHit {
			t.Errorf("variant %s: measurement=%v cacheHit=%v", r.Name, r.Measurement, r.CacheHit)
		}
	}
}

func TestSerialParallelAndWarmRunsBitIdentical(t *testing.T) {
	cache := NewMemoryCache()
	serial := runSweep(t, Options{Launch: quickLaunch(), Workers: 1, Cache: cache})
	parallel := runSweep(t, Options{Launch: quickLaunch(), Workers: 8})
	warm := runSweep(t, Options{Launch: quickLaunch(), Workers: 8, Cache: cache})

	serialCSV := csvOf(t, serial)
	if parallelCSV := csvOf(t, parallel); parallelCSV != serialCSV {
		t.Errorf("parallel run differs from serial:\n%s\nvs\n%s", parallelCSV, serialCSV)
	}
	if warmCSV := csvOf(t, warm); warmCSV != serialCSV {
		t.Errorf("cache-warm run differs from serial:\n%s\nvs\n%s", warmCSV, serialCSV)
	}
	if warm.Launches != 0 || warm.CacheHits != 4 {
		t.Errorf("warm run: %d launches, %d hits, want 0/4", warm.Launches, warm.CacheHits)
	}
}

func TestWarmCachePerformsZeroLaunches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "measurements.jsonl")

	cold, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	coldCounters := obs.NewCounterSet()
	coldRes := runSweep(t, Options{Launch: quickLaunch(), Cache: cold, Counters: coldCounters})
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	if got := coldCounters.Get("campaign.launches"); got != 4 {
		t.Fatalf("cold run: %d launches, want 4", got)
	}
	if got := coldCounters.Get("campaign.cache.misses"); got != 4 {
		t.Fatalf("cold run: %d misses, want 4", got)
	}

	// Re-open the on-disk store: a fresh process resuming the campaign.
	warm, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.Len() != 4 {
		t.Fatalf("reloaded cache has %d entries, want 4", warm.Len())
	}
	warmCounters := obs.NewCounterSet()
	warmRes := runSweep(t, Options{Launch: quickLaunch(), Cache: warm, Counters: warmCounters})
	if got := warmCounters.Get("campaign.launches"); got != 0 {
		t.Errorf("warm run performed %d launches, want 0", got)
	}
	if got := warmCounters.Get("campaign.cache.hits"); got != 4 {
		t.Errorf("warm run: %d hits, want 4", got)
	}
	if warmCSV, coldCSV := csvOf(t, warmRes), csvOf(t, coldRes); warmCSV != coldCSV {
		t.Errorf("warm CSV differs from cold:\n%s\nvs\n%s", warmCSV, coldCSV)
	}
}

func TestCorruptedCacheDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "measurements.jsonl")

	cold, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	runSweep(t, Options{Launch: quickLaunch(), Cache: cold})
	cold.Close()

	// Corrupt the store: truncate mid-line and append garbage — the torn
	// write of a killed process.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data[:len(data)/2], []byte("{not json\nxx")...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := OpenCache(path)
	if err != nil {
		t.Fatalf("corrupted cache must open, got %v", err)
	}
	defer warm.Close()
	if warm.Len() >= 4 {
		t.Fatalf("corrupted cache kept %d entries, want fewer than 4", warm.Len())
	}
	counters := obs.NewCounterSet()
	res := runSweep(t, Options{Launch: quickLaunch(), Cache: warm, Counters: counters})
	if res.Failures != 0 || len(res.Results) != 4 {
		t.Fatalf("campaign over corrupted cache: %d results, %d failures", len(res.Results), res.Failures)
	}
	if hits, misses := counters.Get("campaign.cache.hits"), counters.Get("campaign.cache.misses"); hits+misses != 4 || misses == 0 {
		t.Errorf("hits=%d misses=%d: corrupt entries must degrade to misses", hits, misses)
	}
}

func TestCancellationReturnsPartialResultsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	res, err := Run(ctx, strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch:  quickLaunch(),
		Workers: 1,
		launch: func(lctx context.Context, prog *isa.Program, opts launcher.Options) (*launcher.Measurement, error) {
			// Cancel as the first variant finishes measuring: the campaign
			// must stop within one variant and keep the finished result.
			m, merr := launcher.Launch(lctx, prog, opts)
			if merr == nil && m != nil {
				cancel()
			}
			return m, merr
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled campaign must still return its partial results")
	}
	if len(res.Results) == 0 || len(res.Results) >= 4 {
		t.Errorf("canceled campaign completed %d of 4 variants, want partial", len(res.Results))
	}
	for _, r := range res.Results {
		if r.Err != nil {
			t.Errorf("variant %s recorded spurious error %v after cancellation", r.Name, r.Err)
		}
	}
}

func TestFaultIsolationAggregatesFailures(t *testing.T) {
	bang := errors.New("injected launch fault")
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch:  quickLaunch(),
		Workers: 2,
		launch: func(ctx context.Context, prog *isa.Program, opts launcher.Options) (*launcher.Measurement, error) {
			if strings.Contains(prog.Name, "_u2_") {
				return nil, bang
			}
			return launcher.Launch(ctx, prog, opts)
		},
	})
	if err == nil {
		t.Fatal("campaign with a failing variant must return an error")
	}
	var agg *Error
	if !errors.As(err, &agg) {
		t.Fatalf("err %T is not *campaign.Error: %v", err, err)
	}
	if len(agg.Failed) != 1 || agg.Total != 4 {
		t.Fatalf("aggregate lists %d/%d failures, want 1/4: %v", len(agg.Failed), agg.Total, err)
	}
	if !errors.Is(err, bang) {
		t.Error("aggregate error does not unwrap to the injected fault")
	}
	if !strings.Contains(err.Error(), agg.Failed[0].Name) {
		t.Errorf("aggregate error %q does not name the failed variant", err)
	}
	if got := len(res.Measurements()); got != 3 {
		t.Errorf("fault isolation: %d measurements, want the 3 healthy variants", got)
	}
}

func TestFailFastStopsEarly(t *testing.T) {
	bang := errors.New("injected launch fault")
	var mu sync.Mutex
	launched := 0
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch:   quickLaunch(),
		Workers:  1,
		FailFast: true,
		launch: func(ctx context.Context, prog *isa.Program, opts launcher.Options) (*launcher.Measurement, error) {
			mu.Lock()
			launched++
			mu.Unlock()
			return nil, bang
		},
	})
	if err == nil {
		t.Fatal("fail-fast campaign must surface the fault")
	}
	if res.Failures != 1 {
		t.Errorf("fail-fast recorded %d failures, want 1", res.Failures)
	}
	mu.Lock()
	defer mu.Unlock()
	if launched >= 4 {
		t.Errorf("fail-fast still launched all %d variants", launched)
	}
}

func TestKeyNormalizationAndSensitivity(t *testing.T) {
	opts := quickLaunch()
	prog, err := core.LoadKernel(kernelAsm("k", 1), "")
	if err != nil {
		t.Fatal(err)
	}
	// Formatting-only differences hash identically: the key is over the
	// canonical re-print of the decoded program.
	reparsed, err := core.LoadKernel(prog.Print(), "")
	if err != nil {
		t.Fatal(err)
	}
	k1, err := Key(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(reparsed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("canonicalized kernel hashes differently")
	}
	// A measurement-relevant option change must change the key.
	changed := opts
	changed.ArrayBytes *= 2
	if k3, _ := Key(prog, changed); k3 == k1 {
		t.Error("changing ArrayBytes did not change the key")
	}
	// The machine model is part of the key.
	other := opts
	other.MachineName = "sandybridge-dual/8"
	if k4, _ := Key(prog, other); k4 == k1 {
		t.Error("changing the machine did not change the key")
	}
	// Output plumbing must not be: a Verbose writer or tracer is not
	// measurement-relevant.
	noisy := opts
	noisy.Verbose = os.Stderr
	noisy.Tracer = obs.New()
	if k5, _ := Key(prog, noisy); k5 != k1 {
		t.Error("attaching Verbose/Tracer changed the key")
	}
	// A different kernel must miss.
	prog2, err := core.LoadKernel(kernelAsm("k", 2), "")
	if err != nil {
		t.Fatal(err)
	}
	if k6, _ := Key(prog2, opts); k6 == k1 {
		t.Error("different kernels share a key")
	}
}

// kernelAsm renders a minimal measurable kernel with `n` loads.
func kernelAsm(name string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".globl %s\n%s:\n.L0:\n", name, name)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tmovss %d(%%rdi), %%xmm0\n", 4*i)
	}
	b.WriteString("\taddl $1, %eax\n\tsubq $1, %rsi\n\tjge .L0\n\tret\n")
	return b.String()
}

func TestRunFileAndEmptySpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.xml")
	if err := os.WriteFile(path, []byte(sweepSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := RunFile(context.Background(), path, core.GenerateOptions{}, Options{Launch: quickLaunch()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 4 {
		t.Errorf("RunFile emitted %d variants, want 4", res.Emitted)
	}
	if _, err := RunFile(context.Background(), filepath.Join(dir, "missing.xml"), core.GenerateOptions{}, Options{}); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestTracerRecordsCampaignSpans(t *testing.T) {
	tr := obs.New()
	cache := NewMemoryCache()
	runSweep(t, Options{Launch: quickLaunch(), Cache: cache, Tracer: tr})
	runSweep(t, Options{Launch: quickLaunch(), Cache: cache, Tracer: tr})
	names := map[string]int{}
	for _, r := range tr.Records() {
		names[r.Name]++
	}
	if names["campaign"] != 2 {
		t.Errorf("%d campaign spans, want 2", names["campaign"])
	}
	if names["variant"] != 8 {
		t.Errorf("%d variant spans, want 8", names["variant"])
	}
	if names["cache.miss"] != 4 || names["cache.hit"] != 4 {
		t.Errorf("cache spans hit=%d miss=%d, want 4/4", names["cache.hit"], names["cache.miss"])
	}
}

// TestKeyerMatchesStreamedRecipe pins the Keyer's single-buffer digest to
// the original streamed recipe (hash each NUL-terminated part separately):
// a pre-refactor on-disk cache must stay warm, so the bytes under SHA-256
// cannot change. The recipe is reimplemented here verbatim as the oracle.
func TestKeyerMatchesStreamedRecipe(t *testing.T) {
	opts := quickLaunch()
	prog, err := core.LoadKernel(kernelAsm("k", 2), "")
	if err != nil {
		t.Fatal(err)
	}
	scrub := opts
	scrub.Verbose = nil
	scrub.Tracer = nil
	scrub.Faults = nil
	scrub.Metrics = nil
	optJSON, err := json.Marshal(scrub)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := machine.ByName(opts.MachineName)
	if err != nil {
		t.Fatal(err)
	}
	machJSON, err := json.Marshal(struct {
		Name              string
		Cores             int
		Sockets           int
		CoreGHz           float64
		UncoreGHz         float64
		RefGHz            float64
		Hierarchy         memsim.HierarchyConfig
		FrequencyStepsGHz []float64
	}{desc.Name, desc.Cores, desc.Sockets, desc.CoreGHz, desc.UncoreGHz,
		desc.RefGHz, desc.Hierarchy, desc.FrequencyStepsGHz})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, part := range [][]byte{[]byte(keyVersion), []byte(prog.Print()), optJSON, machJSON} {
		h.Write(part)
		h.Write([]byte{0})
	}
	want := hex.EncodeToString(h.Sum(nil))

	got, err := Key(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Keyer digest %s diverged from the streamed recipe %s: on-disk caches would go cold", got, want)
	}
	// And the reusable Keyer agrees with the one-shot form.
	ky, err := NewKeyer(opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ky.Key(prog)
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Fatalf("Keyer.Key %s diverged from the streamed recipe %s", again, want)
	}
}
