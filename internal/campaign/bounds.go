package campaign

import (
	"fmt"

	"microtools/internal/dataflow"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/machine"
)

// BoundViolationError reports a broken oracle invariant: a variant measured
// faster than internal/dataflow's static lower bound allows. Since the bound
// is derived from the same decode tables the simulator schedules with, a
// violation means the analysis, the timing model or the latency tables
// disagree — the campaign surfaces it as a structured variant failure
// (counted in telemetry as analysis.bound.violations).
type BoundViolationError struct {
	// Kernel and Machine identify the measurement.
	Kernel  string
	Machine string
	// Bound is the static lower bound in core cycles per counted
	// iteration; Measured is the fastest repetition converted to the same
	// basis; Tolerance is the calibration allowance the comparison used.
	Bound     float64
	Measured  float64
	Tolerance float64
}

func (e *BoundViolationError) Error() string {
	return fmt.Sprintf(
		"campaign: %s on %s measured %.4f core cycles/iteration, below the static lower bound %.4f (tolerance %.4f)",
		e.Kernel, e.Machine, e.Measured, e.Bound, e.Tolerance)
}

// staticBoundCore computes the dataflow lower bound for one kernel in core
// cycles per counted iteration, or 0 when the bound does not apply: the
// launch is not per-iteration, the kernel has no recognisable constant
// counter step, or analysis fails (the launch will surface the real error).
// Under OpenMP the threads split the trip count, so the per-counted-
// iteration floor shrinks by the core count.
func staticBoundCore(kernel *isa.Program, arch *isa.Arch, launch launcher.Options) float64 {
	if arch == nil || !launch.PerIteration {
		return 0
	}
	// KernelBounds computes exactly the Report fields consumed here and is
	// memoized on the kernel's decode, so recomputing the bound for cache
	// hits, retries and relaunches costs a lookup, not an analysis.
	rep, err := dataflow.KernelBounds(kernel, arch)
	if err != nil || rep.CounterStep <= 0 {
		return 0
	}
	b := rep.CyclesLowerBound / float64(rep.CounterStep)
	if launch.Mode == launcher.OpenMP && launch.Cores > 1 {
		b /= float64(launch.Cores)
	}
	return b
}

// boundInUnit converts a core-cycles-per-iteration bound into the launch
// options' reporting unit, so Measurement.StaticBound is directly
// comparable to Measurement.Value.
func boundInUnit(bound float64, desc *machine.Machine, launch launcher.Options) float64 {
	if bound == 0 || desc == nil {
		return bound
	}
	core := desc.CoreGHz
	if launch.CoreFrequencyGHz > 0 {
		core = launch.CoreFrequencyGHz
	}
	switch launch.TimeUnit {
	case launcher.UnitTSC:
		return bound * desc.RefGHz / core
	case launcher.UnitSeconds:
		return bound / (core * 1e9)
	}
	return bound
}

// measuredCoreCycles converts the fastest repetition of m back into core
// cycles per iteration (the bound's basis). Using the minimum makes the
// oracle assert the strongest form of the invariant: every repetition,
// not just the reported statistic, must respect the floor.
func measuredCoreCycles(m *launcher.Measurement, desc *machine.Machine, launch launcher.Options) float64 {
	v := m.Summary.Min
	if m.Summary.N == 0 {
		v = m.Value
	}
	core := desc.CoreGHz
	if launch.CoreFrequencyGHz > 0 {
		core = launch.CoreFrequencyGHz
	}
	switch launch.TimeUnit {
	case launcher.UnitTSC:
		return v * core / desc.RefGHz
	case launcher.UnitSeconds:
		return v * core * 1e9
	}
	return v
}

// boundTolerance is the calibration allowance of the oracle comparison.
// Three effects let an honest measurement land slightly under the bound:
// the calibrated per-call overhead subtraction can over-subtract by up to
// its own magnitude (±OverheadCycles spread across the call's iterations);
// a dependence cycle spanning k iterations only enforces its mean after the
// pipeline fills, leaving up to one full cycle length (bounded by
// isa.NumRegs·bound) of startup slack per call; and the float divisions add
// rounding noise (2% relative, generous next to a corrupted-table signal,
// which is a >2x shift).
func boundTolerance(bound float64, m *launcher.Measurement) float64 {
	iters := float64(m.Iterations)
	if iters <= 0 {
		iters = 1
	}
	return 0.02*bound + (m.OverheadCycles+float64(isa.NumRegs)*bound+16)/iters
}

// checkBound asserts the oracle invariant for one cache-miss measurement,
// returning the structured violation (nil when the invariant holds or the
// bound does not apply).
func checkBound(m *launcher.Measurement, bound float64, desc *machine.Machine, launch launcher.Options) *BoundViolationError {
	if bound <= 0 || desc == nil || m.Truncated || m.Iterations == 0 {
		return nil
	}
	measured := measuredCoreCycles(m, desc, launch)
	tol := boundTolerance(bound, m)
	if measured >= bound-tol {
		return nil
	}
	return &BoundViolationError{
		Kernel:    m.Kernel,
		Machine:   launch.MachineName,
		Bound:     bound,
		Measured:  measured,
		Tolerance: tol,
	}
}
