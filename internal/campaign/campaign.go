// Package campaign is the engine behind the paper's end-to-end workflow at
// sweep scale: MicroCreator expands one XML spec into hundreds or
// thousands of variants and MicroLauncher measures every one (§3–§4). At
// that scale the driver — not the simulator — is the bottleneck and the
// reliability risk, so the engine restructures generate→launch→analyze
// around four properties:
//
//   - streaming: variants flow from the pass pipeline through a bounded
//     buffer into the launch pool (core.GenerateStream), so a 10k-variant
//     family never materializes all rendered programs at once;
//   - cancellation: one context.Context threads end to end; canceling it
//     stops generation and measurement within one variant and returns the
//     partial result set with ctx.Err();
//   - fault isolation: a failing variant yields a structured per-variant
//     error in the result set instead of discarding the campaign; the
//     aggregate error lists every failure, and FailFast restores
//     stop-on-first-error semantics when wanted;
//   - caching: a content-addressed measurement cache (hash of canonical
//     kernel assembly + launcher options + machine model → Measurement,
//     backed by an append-only JSONL store) lets an identical or
//     overlapping re-run skip already-measured variants, which is also the
//     checkpoint/resume story for interrupted sweeps;
//   - resilience: a per-variant deadline and a bounded retry policy with
//     deterministic backoff re-attempt transient faults (faults.IsTransient)
//     instead of failing the variant outright; variants that keep failing
//     are quarantined, cache-write failures degrade to a counted miss, and
//     the whole failure surface is exercisable on demand through the
//     deterministic fault injector (internal/faults, Options.Faults).
//
// Results are deterministic and bit-identical across serial, parallel and
// cache-warm runs: every variant runs on its own simulated machine, and
// cache entries are canonicalized through the store encoding on the cold
// run (Cache.Put), so a hit replays exactly what the miss produced.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"microtools/internal/codegen"
	"microtools/internal/core"
	"microtools/internal/faults"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/machine"
	"microtools/internal/obs"
	"microtools/internal/stats"
	"microtools/internal/telemetry"
)

// VariantError re-exports the per-variant failure record shared with core.
type VariantError = core.VariantError

// Error aggregates every variant failure of a campaign.
type Error struct {
	// Failed lists the failed variants in generation order.
	Failed []*VariantError
	// Total is the number of variants the campaign emitted.
	Total int
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d of %d variants failed:", len(e.Failed), e.Total)
	for _, f := range e.Failed {
		fmt.Fprintf(&b, "\n  %s: %v", f.Name, f.Err)
	}
	return b.String()
}

// Unwrap exposes the per-variant errors to errors.Is/As.
func (e *Error) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}

// launchFunc measures one kernel; tests substitute it to inject faults.
type launchFunc func(context.Context, *isa.Program, launcher.Options) (*launcher.Measurement, error)

// Options configures a campaign run.
type Options struct {
	// Launch is the measurement configuration applied to every variant.
	Launch launcher.Options
	// Adaptive, when non-nil, arms μOpTime-style adaptive repetition for
	// every variant: the plan (resolved once against Launch.OuterReps) is
	// threaded into the launcher's per-rep stop rule, and after the main
	// pass the engine reallocates the saved repetition budget to variants
	// whose achieved RCIW missed the plan's target — a bounded second
	// "top-up" pass (see the adaptive accounting on Result). The resolved
	// plan is a cache-key dimension; fixed-budget runs (nil) keep their
	// exact pre-adaptive keys. See launcher.Plan.
	Adaptive *launcher.Plan
	// Workers sizes the launch pool (<= 0 means GOMAXPROCS). Every
	// variant runs on its own simulated machine, so results are
	// bit-identical to a serial run; only wall-clock time changes.
	Workers int
	// Buffer bounds the in-flight variant queue between the generator and
	// the launch pool (<= 0 means 2×Workers): generation stalls rather
	// than materializing an unbounded program backlog.
	Buffer int
	// FailFast cancels the campaign on the first variant failure instead
	// of isolating it and measuring the rest.
	FailFast bool
	// Cache, when non-nil, consults and fills the content-addressed
	// measurement cache; hits skip the launch entirely.
	Cache *Cache
	// Progress, when non-nil, receives a snapshot after every variant
	// completes (from whichever worker finished it).
	Progress func(Progress)
	// Tracer, when non-nil, records the campaign as a span tree:
	// "campaign" > per-variant "variant" spans with "cache.hit"/
	// "cache.miss" children (and the launcher's own spans for misses).
	Tracer *obs.Tracer
	// Counters, when non-nil, accumulates campaign-level event counters:
	// campaign.variants, campaign.launches, campaign.cache.hits,
	// campaign.cache.misses, campaign.failures, campaign.retry,
	// campaign.cache.put_errors, variant.quarantined (and, when Faults is
	// armed with the same set, faults.injected).
	Counters *obs.CounterSet

	// --- live telemetry ----------------------------------------------------

	// Name labels the run in live telemetry (/debug/campaigns, /events);
	// empty defaults to "campaign".
	Name string
	// Metrics, when non-nil, records live campaign metrics: the
	// per-variant duration histogram and queue-depth gauge directly, and
	// every Counters name via a tee into Metrics.Registry (Counters is
	// created on demand if nil). It is propagated into Launch.Metrics
	// (rep latency, calibration time, simulator counters) unless the
	// launch options already carry their own.
	Metrics *telemetry.Metrics
	// Tracker, when non-nil, registers the run for live progress: one
	// tracked campaign from Begin to End, updated after every variant.
	Tracker *telemetry.Tracker

	// --- resilience --------------------------------------------------------

	// VariantDeadline bounds each variant's total measurement time, every
	// attempt included (0 = unbounded). An expired deadline fails the
	// variant — it is a variant fault, not a campaign cancellation.
	VariantDeadline time.Duration
	// Retry re-attempts variants that failed with a transient fault; see
	// RetryPolicy. The zero value performs a single attempt.
	Retry RetryPolicy
	// Quarantine, when > 0, stops retrying a variant after that many
	// consecutive failed attempts — even with retry budget left — and
	// marks it quarantined in the result (counter: variant.quarantined).
	// 0 disables quarantine.
	Quarantine int
	// Faults, when non-nil, arms the deterministic fault-injection plan
	// at every built-in injection point: campaign worker launch, cache
	// Get/Put/checkpoint I/O, launcher repetition boundaries and sim
	// stepping (see internal/faults). It is propagated into Launch.Faults
	// and the Cache unless those already carry their own injector.
	Faults *faults.Injector

	// CheckBounds asserts the oracle invariant on every cache-miss
	// measurement: the static lower bound from internal/dataflow must not
	// exceed the measured core cycles per iteration (within the
	// calibration tolerance). Violations are structured
	// *BoundViolationError variant failures, counted in telemetry as
	// analysis.bound.violations. Cache hits are not re-checked — they
	// passed when first measured.
	CheckBounds bool

	// launch substitutes the launcher in tests (nil = launcher.Launch).
	launch launchFunc
	// boundArch overrides the microarchitecture the static bound is
	// computed from (tests corrupt its latency tables to prove the
	// CheckBounds assertion has teeth). nil = the launch machine's Arch.
	boundArch *isa.Arch
}

// Progress is one campaign progress snapshot.
type Progress struct {
	// Done counts completed variants (measured, cache-hit, or failed).
	Done int
	// Emitted counts variants the generator has produced so far; it is
	// the final total once Generating is false.
	Emitted int
	// Generating reports whether the generator is still emitting.
	Generating bool
	// CacheHits and Failed break down the completions so far.
	CacheHits int
	Failed    int
}

// VariantResult is one variant's outcome.
type VariantResult struct {
	// Index is the variant's position in generation order.
	Index int
	// Name is the variant's kernel name.
	Name string
	// Measurement is the result (nil when Err is set).
	Measurement *launcher.Measurement
	// CacheHit reports that the measurement was served from the cache.
	CacheHit bool
	// Attempts is how many launch attempts the variant consumed (0 for
	// cache hits; > 1 means transient faults were retried).
	Attempts int
	// Quarantined reports that the variant failed Options.Quarantine
	// consecutive attempts and was withdrawn from further retries.
	Quarantined bool
	// Stability carries the measurement's per-repetition confidence
	// signals (N, mean, CV, RCIW). It is filled for measured and
	// cache-hit variants alike — entries cached before the launcher
	// stored it are backfilled from their Summary, which reproduces the
	// same values bit for bit (stats.StabilityOf is pure).
	Stability stats.Stability
	// StaticBound is internal/dataflow's lower bound for the variant in
	// the measurement's unit and per-iteration basis (0 when the bound
	// does not apply). It is recorded for hits and misses alike — the
	// bound is a pure function of the kernel and the machine, so
	// backfilling keeps cached results bit-identical.
	StaticBound float64
	// Err is the variant's failure (nil on success).
	Err error
}

// Result is a campaign's outcome: every completed variant in generation
// order, plus the engine's own accounting.
type Result struct {
	// Results holds the completed variants in generation order. On a
	// canceled campaign it holds only the variants that finished before
	// the cancellation.
	Results []VariantResult
	// Emitted is the number of variants the generator produced.
	Emitted int
	// Launches counts actual launcher runs (cache misses); a warm-cache
	// re-run of an identical campaign performs zero.
	Launches int
	// CacheHits and Failures break down the completions.
	CacheHits int
	Failures  int
	// Retries counts launch re-attempts across all variants (0 on a
	// fault-free run).
	Retries int
	// Quarantined counts variants withdrawn after Options.Quarantine
	// consecutive failed attempts.
	Quarantined int
	// KeyErrors counts variants whose cache key could not be derived: those
	// variants were measured but neither consulted nor populated the cache,
	// so a warm re-run repeats their launches.
	KeyErrors int

	// --- adaptive accounting (zero unless Options.Adaptive) ---------------

	// RepsSaved is the repetition budget the main pass left unspent:
	// Σ max(0, plan.MaxReps − realized reps) over adaptive measurements.
	// It is the pool the top-up pass reallocates from.
	RepsSaved int
	// RepsTopUp is the additional repetitions the top-up pass actually
	// gained for variants whose RCIW missed the plan's target.
	RepsTopUp int
	// RepsExecuted counts the launcher repetitions completed by this
	// run's real launches (cache hits execute none; a topped-up variant
	// pays its re-run in full). Against Emitted × plan.MaxReps this is
	// the fixed-vs-adaptive savings figure.
	RepsExecuted int
	// TargetMisses counts variants whose achieved RCIW still exceeds the
	// plan's target after top-up (0 = every variant met target).
	TargetMisses int
}

// Measurements returns the successful measurements in generation order
// (failed or unfinished variants are skipped).
func (r *Result) Measurements() []*launcher.Measurement {
	out := make([]*launcher.Measurement, 0, len(r.Results))
	for i := range r.Results {
		if r.Results[i].Measurement != nil {
			out = append(out, r.Results[i].Measurement)
		}
	}
	return out
}

// Err returns the aggregated per-variant error of the run, or nil when
// every completed variant succeeded.
func (r *Result) Err() error {
	var agg Error
	for i := range r.Results {
		if err := r.Results[i].Err; err != nil {
			agg.Failed = append(agg.Failed, &VariantError{
				Index: r.Results[i].Index,
				Name:  r.Results[i].Name,
				Err:   err,
			})
		}
	}
	if len(agg.Failed) == 0 {
		return nil
	}
	agg.Total = r.Emitted
	return &agg
}

// Run executes a full campaign over the XML kernel description: stream the
// generated variants into a bounded queue, measure each over a worker pool
// (consulting the cache first), and collect per-variant results in
// generation order.
//
// The returned Result is always non-nil. The error is, in precedence
// order: ctx.Err() when the caller canceled (partial results included);
// a *SetupError when the generation pipeline failed; the aggregated
// *Error when variants failed (with FailFast, the remainder was skipped);
// ErrNoVariants when the description emitted nothing; nil on full
// success.
func Run(ctx context.Context, xml io.Reader, gen core.GenerateOptions, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 2 * workers
	}
	launch := opts.launch
	if launch == nil {
		launch = launcher.Launch
	}
	// Resolve the adaptive plan once against the fixed budget so every
	// variant — and the cache key — sees the same effective plan. A plan
	// set directly on the launch options (struct-literal callers) is
	// promoted so the top-up pass covers it too.
	var plan *launcher.Plan
	if opts.Adaptive == nil {
		opts.Adaptive = opts.Launch.Adaptive
	}
	if opts.Adaptive != nil {
		p := opts.Adaptive.Resolve(opts.Launch.OuterReps)
		plan = &p
		opts.Launch.Adaptive = plan
	}
	if opts.Tracer != nil && opts.Launch.Tracer == nil {
		opts.Launch.Tracer = opts.Tracer
	}
	// Thread the fault plan down the stack: the launcher checks its
	// repetition boundaries and sim stepping, the cache its I/O points.
	if opts.Faults != nil {
		if opts.Launch.Faults == nil {
			opts.Launch.Faults = opts.Faults
		}
		if opts.Cache != nil {
			opts.Cache.mu.Lock()
			if opts.Cache.faults == nil {
				opts.Cache.faults = opts.Faults
			}
			opts.Cache.mu.Unlock()
		}
	}

	// Live telemetry: the counter set (created on demand) tees into the
	// registry, so every campaign.* counter is visible on /metrics while
	// the run is still going; the launch options inherit the metrics
	// handle so rep latency and simulator counters flow too.
	var variantHist *telemetry.Histogram
	var queueDepth *telemetry.Gauge
	if opts.Metrics != nil {
		if opts.Counters == nil {
			opts.Counters = obs.NewCounterSet()
		}
		opts.Counters.Tee(opts.Metrics.Registry)
		if opts.Launch.Metrics == nil {
			opts.Launch.Metrics = opts.Metrics
		}
		variantHist = opts.Metrics.VariantSeconds
		queueDepth = opts.Metrics.QueueDepth
	}
	liveName := opts.Name
	if liveName == "" {
		liveName = "campaign"
	}
	live := opts.Tracker.Begin(liveName)

	root := opts.Tracer.Start("campaign").
		Str("machine", opts.Launch.MachineName).
		Int("workers", int64(workers))
	defer root.End()

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		index int
		prog  codegen.Program
	}
	jobs := make(chan job, buffer)

	// topupCand is one variant whose achieved RCIW missed the adaptive
	// target in the main pass — a candidate for budget reallocation.
	type topupCand struct {
		index  int
		name   string
		kernel *isa.Program
		reps   int
	}

	var (
		mu           sync.Mutex
		results      []VariantResult
		emitted      int
		generating   = true
		hits         int
		failed       int
		launches     int
		retries      int
		quarantined  int
		keyErrors    int
		executedReps int
		topups       []topupCand
	)
	report := func() {
		if opts.Progress == nil {
			return
		}
		opts.Progress(Progress{
			Done:       len(results),
			Emitted:    emitted,
			Generating: generating,
			CacheHits:  hits,
			Failed:     failed,
		})
	}

	// Producer: stream programs out of the pass pipeline into the bounded
	// queue. A full queue applies backpressure to generation; campaign
	// cancellation (user or fail-fast) aborts the pipeline via cctx.
	var genErr error
	var producerWG sync.WaitGroup
	producerWG.Add(1)
	go func() {
		defer producerWG.Done()
		defer close(jobs)
		index := 0
		_, err := core.GenerateStream(cctx, xml, gen, func(p codegen.Program) error {
			j := job{index: index, prog: p}
			index++
			mu.Lock()
			emitted = index
			mu.Unlock()
			select {
			case jobs <- j:
				return nil
			case <-cctx.Done():
				return cctx.Err()
			}
		})
		mu.Lock()
		genErr = err
		generating = false
		mu.Unlock()
	}()

	record := func(r VariantResult) {
		mu.Lock()
		results = append(results, r)
		if r.CacheHit {
			hits++
		}
		if r.Err != nil {
			failed++
		}
		if r.Quarantined {
			quarantined++
		}
		report()
		upd := telemetry.CampaignUpdate{
			Done:        len(results),
			Emitted:     emitted,
			Generating:  generating,
			CacheHits:   hits,
			Failed:      failed,
			Launches:    launches,
			Retries:     retries,
			Quarantined: quarantined,
			KeyErrors:   keyErrors,
		}
		mu.Unlock()
		live.Update(upd)
		if r.Err != nil {
			opts.Counters.Inc("campaign.failures")
			if opts.FailFast {
				cancel()
			}
		}
	}

	// Resolve the launch machine's decode signature once: pre-decoding each
	// variant against it (below, in measure) warms the program's µop cache
	// so every launch attempt — first try, cache-miss relaunch, or retry —
	// shares one decode instead of redoing it per attempt. A resolution
	// error is left for the launch itself to surface.
	var decodeArch *isa.Arch
	var launchDesc *machine.Machine
	if desc, err := machine.ByName(opts.Launch.MachineName); err == nil {
		decodeArch = desc.Arch
		launchDesc = desc
	}
	// The static-bound arch defaults to the launch machine's; tests
	// substitute a corrupted table through the seam.
	boundArch := opts.boundArch
	if boundArch == nil {
		boundArch = decodeArch
	}
	// Derive the variant-independent cache-key parts once per campaign. A
	// keyer error (unresolvable machine, unmarshalable options) would have
	// failed every per-variant Key call identically, so it is carried into
	// the loop and surfaces as a counted key error on each variant.
	var keyer *Keyer
	var keyerErr error
	if opts.Cache != nil {
		keyer, keyerErr = NewKeyer(opts.Launch)
	}

	// attempt runs one launch try, consulting the worker-launch injection
	// point first; an injected fault there models the worker dying before
	// the launcher even starts.
	attempt := func(ctx context.Context, name string, kernel *isa.Program, lopts launcher.Options) (*launcher.Measurement, error) {
		if err := opts.Faults.Check(faults.PointCampaignLaunch, name); err != nil {
			return nil, err
		}
		opts.Counters.Inc("campaign.launches")
		mu.Lock()
		launches++
		mu.Unlock()
		return launch(ctx, kernel, lopts)
	}

	// launchWithRetries is the full per-variant attempt loop — transient
	// retries with deterministic backoff, quarantine — shared by the main
	// pass and the adaptive top-up pass so both behave identically under
	// fault injection. A cancellation error propagates for the caller to
	// discard; every other error is final for this variant.
	launchWithRetries := func(vctx context.Context, sp obs.Span, name string, kernel *isa.Program, lopts launcher.Options) (m *launcher.Measurement, attempts int, isQuarantined bool, err error) {
		budget := opts.Retry.attempts()
		for {
			m, err = attempt(vctx, name, kernel, lopts)
			attempts++
			if err == nil {
				mu.Lock()
				executedReps += m.Summary.N
				mu.Unlock()
				return
			}
			if cctx.Err() != nil && errors.Is(err, cctx.Err()) {
				return
			}
			if opts.Quarantine > 0 && attempts >= opts.Quarantine {
				isQuarantined = true
				opts.Counters.Inc("variant.quarantined")
				sp.Int("quarantined_after", int64(attempts))
				return
			}
			if attempts >= budget || vctx.Err() != nil || !faults.IsTransient(err) {
				return
			}
			opts.Counters.Inc("campaign.retry")
			mu.Lock()
			retries++
			mu.Unlock()
			rsp := sp.Child("retry").
				Int("attempt", int64(attempts)).
				Str("error", err.Error())
			opts.Retry.pause(vctx, name, attempts)
			rsp.End()
		}
	}

	// noteTopup remembers a successful adaptive variant whose achieved
	// RCIW (including the +Inf "no confidence" sentinel) missed target.
	noteTopup := func(index int, name string, kernel *isa.Program, m *launcher.Measurement) {
		if plan == nil || m.Adaptive == nil || !(m.Adaptive.RCIW > plan.TargetRCIW) {
			return
		}
		mu.Lock()
		topups = append(topups, topupCand{index: index, name: name, kernel: kernel, reps: m.Adaptive.Reps})
		mu.Unlock()
	}

	measure := func(j job) {
		vt := variantHist.Start()
		defer vt.Stop()
		sp := root.Child("variant").Str("kernel", j.prog.Name).Int("index", int64(j.index))
		defer sp.End()
		opts.Counters.Inc("campaign.variants")
		// Every pipeline path populates Parsed at emit time; Lowered only
		// lowers the kernel itself for hand-built programs, so no variant
		// re-parses assembly text here.
		kernel, err := j.prog.Lowered()
		if err != nil {
			sp.Str("error", err.Error())
			record(VariantResult{Index: j.index, Name: j.prog.Name, Err: err})
			return
		}
		// The static bound is a pure function of the kernel and the
		// machine, so it is computed for hits and misses alike (cache
		// entries predating the field backfill identically).
		coreBound := staticBoundCore(kernel, boundArch, opts.Launch)
		unitBound := boundInUnit(coreBound, launchDesc, opts.Launch)
		var key string
		if opts.Cache != nil {
			var k string
			err := keyerErr
			if keyer != nil {
				k, err = keyer.Key(kernel)
			}
			if err == nil {
				key = k
				if m, ok := opts.Cache.Get(key); ok {
					sp.Child("cache.hit").End()
					opts.Counters.Inc("campaign.cache.hits")
					if unitBound > 0 && m.StaticBound != unitBound {
						// Copy before annotating: the cache's canonical
						// measurement is shared across workers.
						mc := *m
						mc.StaticBound = unitBound
						m = &mc
					}
					record(VariantResult{
						Index: j.index, Name: j.prog.Name,
						Measurement: m, CacheHit: true, Stability: stabilityFor(m, opts.Counters),
						StaticBound: unitBound,
					})
					noteTopup(j.index, j.prog.Name, kernel, m)
					return
				}
				sp.Child("cache.miss").End()
				opts.Counters.Inc("campaign.cache.misses")
			} else {
				// A variant without a key is measured but bypasses the
				// cache entirely; count it so warm-rerun regressions are
				// visible instead of silently re-launching.
				opts.Counters.Inc("campaign.cache.key_errors")
				mu.Lock()
				keyErrors++
				mu.Unlock()
				sp.Str("cache_key_error", err.Error())
			}
		}

		// Warm the kernel's µop decode cache before the first attempt.
		// Best-effort: a decode error is not cached, so a broken kernel
		// still fails inside the launch with its usual error path.
		if decodeArch != nil {
			_, _ = kernel.Decoded(decodeArch)
		}

		// The variant's deadline covers every attempt, retries and backoff
		// included; an expired deadline is a variant fault (recorded), not
		// a campaign cancellation (skipped).
		vctx := cctx
		if opts.VariantDeadline > 0 {
			var vcancel context.CancelFunc
			vctx, vcancel = context.WithTimeout(cctx, opts.VariantDeadline)
			defer vcancel()
		}

		m, attempts, isQuarantined, err := launchWithRetries(vctx, sp, j.prog.Name, kernel, opts.Launch)
		if err != nil {
			// The campaign itself was canceled (user or fail-fast): the
			// variant was not measured and records no fault of its own.
			if cctx.Err() != nil && errors.Is(err, cctx.Err()) {
				return
			}
			sp.Str("error", err.Error())
			record(VariantResult{
				Index: j.index, Name: j.prog.Name,
				Attempts: attempts, Quarantined: isQuarantined, Err: err,
			})
			return
		}
		m.StaticBound = unitBound
		if opts.Cache != nil && key != "" {
			canon, perr := opts.Cache.Put(key, m)
			if perr != nil {
				// A failed cache write degrades to a future miss; the sweep
				// itself keeps its measurement and keeps going.
				opts.Counters.Inc("campaign.cache.put_errors")
				sp.Str("cache_put_error", perr.Error())
			}
			if canon != nil {
				m = canon // adopt the store's canonical encoding (bit-identical warm hits)
			}
		}
		if opts.CheckBounds {
			if v := checkBound(m, coreBound, launchDesc, opts.Launch); v != nil {
				opts.Counters.Inc("analysis.bound.violations")
				sp.Str("bound_violation", v.Error())
				record(VariantResult{
					Index: j.index, Name: j.prog.Name,
					Attempts: attempts, StaticBound: unitBound, Err: v,
				})
				return
			}
		}
		record(VariantResult{
			Index: j.index, Name: j.prog.Name,
			Measurement: m, Attempts: attempts, Stability: stabilityFor(m, opts.Counters),
			StaticBound: unitBound,
		})
		noteTopup(j.index, j.prog.Name, kernel, m)
	}

	var poolWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		poolWG.Add(1)
		go func() {
			defer poolWG.Done()
			for j := range jobs {
				queueDepth.Set(int64(len(jobs)))
				if cctx.Err() != nil {
					continue // drain without measuring after cancellation
				}
				measure(j)
			}
		}()
	}
	poolWG.Wait()
	producerWG.Wait()
	queueDepth.Set(0)

	// Adaptive top-up pass: the repetition budget the main pass saved is
	// granted — split evenly, deterministically, in generation order — to
	// the variants whose achieved RCIW missed target. Each top-up re-runs
	// the variant under a derived plan (MinReps one past the prior stop,
	// MaxReps = prior reps + grant) with its own cache key, so a warm
	// adaptive re-run replays the whole two-pass schedule without a single
	// launch. The base measurement stands if a top-up fails.
	var repsSaved, repsTopup int
	if plan != nil {
		mu.Lock()
		for i := range results {
			if m := results[i].Measurement; m != nil && m.Adaptive != nil {
				if d := plan.MaxReps - m.Adaptive.Reps; d > 0 {
					repsSaved += d
				}
			}
		}
		cands := topups
		pos := make(map[int]int, len(results))
		for i := range results {
			pos[results[i].Index] = i
		}
		mu.Unlock()
		opts.Counters.Add("campaign.reps.saved", int64(repsSaved))
		sort.Slice(cands, func(a, b int) bool { return cands[a].index < cands[b].index })
		extra := 0
		if len(cands) > 0 {
			extra = repsSaved / len(cands)
		}
		if extra > 0 && cctx.Err() == nil {
			topUp := func(c topupCand) {
				sp := root.Child("topup").Str("kernel", c.name).Int("index", int64(c.index))
				defer sp.End()
				slot, ok := func() (int, bool) {
					mu.Lock()
					defer mu.Unlock()
					i, ok := pos[c.index]
					return i, ok
				}()
				if !ok {
					return
				}
				tplan := *plan
				tplan.MinReps = c.reps + 1
				tplan.MaxReps = c.reps + extra
				topts := opts.Launch
				topts.Adaptive = &tplan
				var key string
				var m *launcher.Measurement
				if opts.Cache != nil {
					if k, kerr := Key(c.kernel, topts); kerr == nil {
						key = k
						if cm, ok := opts.Cache.Get(key); ok {
							sp.Child("cache.hit").End()
							opts.Counters.Inc("campaign.cache.hits")
							m = cm
						} else {
							sp.Child("cache.miss").End()
							opts.Counters.Inc("campaign.cache.misses")
						}
					} else {
						opts.Counters.Inc("campaign.cache.key_errors")
						mu.Lock()
						keyErrors++
						mu.Unlock()
						sp.Str("cache_key_error", kerr.Error())
					}
				}
				attempts := 0
				if m == nil {
					vctx := cctx
					if opts.VariantDeadline > 0 {
						var vcancel context.CancelFunc
						vctx, vcancel = context.WithTimeout(cctx, opts.VariantDeadline)
						defer vcancel()
					}
					var err error
					m, attempts, _, err = launchWithRetries(vctx, sp, c.name, c.kernel, topts)
					if err != nil {
						// The extra confidence is forfeited, not the
						// variant: its main-pass measurement stands.
						opts.Counters.Inc("campaign.topup.failures")
						sp.Str("error", err.Error())
						return
					}
					mu.Lock()
					m.StaticBound = results[slot].StaticBound
					mu.Unlock()
					if key != "" {
						canon, perr := opts.Cache.Put(key, m)
						if perr != nil {
							opts.Counters.Inc("campaign.cache.put_errors")
							sp.Str("cache_put_error", perr.Error())
						}
						if canon != nil {
							m = canon
						}
					}
				}
				gained := 0
				if m.Adaptive != nil && m.Adaptive.Reps > c.reps {
					gained = m.Adaptive.Reps - c.reps
				}
				opts.Counters.Add("campaign.reps.topup", int64(gained))
				sp.Int("reps_gained", int64(gained))
				mu.Lock()
				results[slot].Measurement = m
				results[slot].Stability = stabilityFor(m, opts.Counters)
				results[slot].Attempts += attempts
				repsTopup += gained
				mu.Unlock()
			}
			tjobs := make(chan topupCand, len(cands))
			for _, c := range cands {
				tjobs <- c
			}
			close(tjobs)
			tw := workers
			if tw > len(cands) {
				tw = len(cands)
			}
			var topWG sync.WaitGroup
			for w := 0; w < tw; w++ {
				topWG.Add(1)
				go func() {
					defer topWG.Done()
					for c := range tjobs {
						if cctx.Err() != nil {
							continue
						}
						topUp(c)
					}
				}()
			}
			topWG.Wait()
		}
	}

	mu.Lock()
	res := &Result{
		Results:      results,
		Emitted:      emitted,
		Launches:     launches,
		CacheHits:    hits,
		Failures:     failed,
		Retries:      retries,
		Quarantined:  quarantined,
		KeyErrors:    keyErrors,
		RepsSaved:    repsSaved,
		RepsTopUp:    repsTopup,
		RepsExecuted: executedReps,
	}
	if plan != nil {
		for i := range results {
			if m := results[i].Measurement; m != nil && m.Adaptive != nil && m.Adaptive.RCIW > plan.TargetRCIW {
				res.TargetMisses++
			}
		}
	}
	gerr := genErr
	mu.Unlock()
	sort.Slice(res.Results, func(a, b int) bool { return res.Results[a].Index < res.Results[b].Index })
	root.Int("variants", int64(res.Emitted)).
		Int("launches", int64(res.Launches)).
		Int("cache_hits", int64(res.CacheHits)).
		Int("failures", int64(res.Failures)).
		Int("retries", int64(res.Retries)).
		Int("quarantined", int64(res.Quarantined)).
		Int("key_errors", int64(res.KeyErrors))
	if plan != nil {
		root.Int("reps_saved", int64(res.RepsSaved)).
			Int("reps_topup", int64(res.RepsTopUp)).
			Int("reps_executed", int64(res.RepsExecuted)).
			Int("target_misses", int64(res.TargetMisses))
	}

	// Close the live-tracked campaign on every exit path: one final
	// progress update carrying the run's aggregate accounting, then the
	// "end" event with the campaign's error (nil on success) — so the
	// /events stream and /debug/campaigns agree with the returned Result
	// to the bit.
	finish := func(err error) (*Result, error) {
		live.Update(telemetry.CampaignUpdate{
			Done:        len(res.Results),
			Emitted:     res.Emitted,
			CacheHits:   res.CacheHits,
			Failed:      res.Failures,
			Launches:    res.Launches,
			Retries:     res.Retries,
			Quarantined: res.Quarantined,
			KeyErrors:   res.KeyErrors,
		})
		live.End(err)
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return finish(err)
	}
	if gerr != nil && !errors.Is(gerr, context.Canceled) {
		return finish(&SetupError{Stage: "generate", Err: gerr})
	}
	if err := res.Err(); err != nil {
		return finish(err)
	}
	if res.Emitted == 0 {
		return finish(ErrNoVariants)
	}
	return finish(nil)
}

// stabilityFor returns a measurement's stored stability statistics,
// backfilling them from the summary for cache entries written before the
// launcher recorded the field. The backfill is versioned: entries that
// predate the field also predate the small-sample statistics fix
// (sample stddev, Student-t), so they are recomputed with BOTH formula
// generations and the legacy values are preferred — the contract in force
// when those entries were written — which keeps warm caches bit-stable
// instead of silently flipping RCIWs under their consumers. Each backfill
// is counted (campaign.stability.backfilled) so cache-age drift is
// observable; when the two generations agree exactly, the shared value is
// returned.
func stabilityFor(m *launcher.Measurement, counters *obs.CounterSet) stats.Stability {
	if m.Stability.N != 0 {
		return m.Stability
	}
	counters.Inc("campaign.stability.backfilled")
	legacy := stats.LegacyStabilityOf(m.Summary)
	if current := stats.StabilityOf(m.Summary); current == legacy {
		return current
	}
	return legacy
}

// RunFile is Run over an XML file on disk. Like Run, the returned Result
// is always non-nil; an unreadable spec file surfaces as a *SetupError
// (Stage "open") whose cause stays reachable through errors.Is, e.g.
// errors.Is(err, fs.ErrNotExist).
func RunFile(ctx context.Context, path string, gen core.GenerateOptions, opts Options) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return &Result{}, &SetupError{Stage: "open", Path: path, Err: err}
	}
	defer f.Close()
	return Run(ctx, f, gen, opts)
}
