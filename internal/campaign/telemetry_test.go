package campaign

import (
	"context"
	"strings"
	"testing"

	"microtools/internal/core"
	"microtools/internal/stats"
	"microtools/internal/telemetry"
)

// TestTelemetryAgreesWithResult is the live-vs-final consistency gate: the
// registry counters a scraper would see must equal the campaign's own
// Result accounting, and the tracker's final snapshot must match both.
func TestTelemetryAgreesWithResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracker()
	cache := NewMemoryCache()

	cold := runSweep(t, Options{
		Launch: quickLaunch(), Workers: 4, Cache: cache,
		Name: "cold", Metrics: telemetry.NewMetrics(reg), Tracker: tr,
	})
	s := reg.Snapshot()
	if got := s.Counters["campaign.launches"]; got != int64(cold.Launches) {
		t.Errorf("campaign.launches = %d, Result.Launches = %d", got, cold.Launches)
	}
	if got := s.Counters["campaign.variants"]; got != int64(len(cold.Results)) {
		t.Errorf("campaign.variants = %d, len(Results) = %d", got, len(cold.Results))
	}
	if got := s.Counters["campaign.cache.misses"]; got != int64(cold.Launches) {
		t.Errorf("campaign.cache.misses = %d, want %d", got, cold.Launches)
	}
	if got := reg.Histogram(telemetry.MetricVariantSeconds, nil).Count(); got != int64(len(cold.Results)) {
		t.Errorf("variant histogram count = %d, want one observation per variant (%d)", got, len(cold.Results))
	}
	// The launcher instruments through the propagated Metrics too.
	if got := s.Counters[telemetry.MetricSimInstsRetired]; got == 0 {
		t.Error("sim.insts.retired = 0: launcher metrics not propagated")
	}
	if got := reg.Histogram(telemetry.MetricRepSeconds, nil).Count(); got == 0 {
		t.Error("launcher.rep.seconds empty: rep latency not recorded")
	}

	// Warm re-run on the same registry: hits add up, launches don't.
	warm := runSweep(t, Options{
		Launch: quickLaunch(), Workers: 4, Cache: cache,
		Name: "warm", Metrics: telemetry.NewMetrics(reg), Tracker: tr,
	})
	if warm.Launches != 0 || warm.CacheHits != 4 {
		t.Fatalf("warm run: launches=%d hits=%d, want 0/4", warm.Launches, warm.CacheHits)
	}
	s = reg.Snapshot()
	if got := s.Counters["campaign.cache.hits"]; got != 4 {
		t.Errorf("campaign.cache.hits = %d, want 4", got)
	}
	if got := s.Counters["campaign.launches"]; got != int64(cold.Launches) {
		t.Errorf("campaign.launches moved on a warm run: %d", got)
	}

	// The tracker retained both runs; final snapshots mirror the Results.
	snaps := tr.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("tracker retained %d campaigns, want 2", len(snaps))
	}
	for i, res := range []*Result{cold, warm} {
		snap := snaps[i]
		if !snap.Finished || snap.Err != "" {
			t.Errorf("campaign %q not cleanly finished: %+v", snap.Name, snap)
		}
		if snap.Done != len(res.Results) || snap.Emitted != res.Emitted ||
			snap.CacheHits != res.CacheHits || snap.Launches != res.Launches ||
			snap.Failed != res.Failures {
			t.Errorf("campaign %q snapshot %+v disagrees with result (done=%d emitted=%d hits=%d launches=%d failed=%d)",
				snap.Name, snap, len(res.Results), res.Emitted, res.CacheHits, res.Launches, res.Failures)
		}
	}
}

// TestStabilityDeterministic pins the per-variant stability statistics:
// two cold runs and a warm (cache-served) run must agree bit for bit, and
// each must reproduce stats.StabilityOf over the stored summary.
func TestStabilityDeterministic(t *testing.T) {
	launch := quickLaunch()
	launch.OuterReps = 3 // give CV/RCIW something to measure

	cache := NewMemoryCache()
	a := runSweep(t, Options{Launch: launch, Cache: cache})
	b := runSweep(t, Options{Launch: launch})
	warm := runSweep(t, Options{Launch: launch, Cache: cache})
	if warm.Launches != 0 {
		t.Fatalf("warm run launched %d variants, want 0", warm.Launches)
	}

	for i := range a.Results {
		sa, sb, sw := a.Results[i].Stability, b.Results[i].Stability, warm.Results[i].Stability
		if sa.N == 0 {
			t.Fatalf("variant %d: stability not recorded", i)
		}
		if sa != sb {
			t.Errorf("variant %d: cold runs disagree: %+v vs %+v", i, sa, sb)
		}
		if sa != sw {
			t.Errorf("variant %d: warm run disagrees: %+v vs %+v", i, sa, sw)
		}
		if want := stats.StabilityOf(a.Results[i].Measurement.Summary); sa != want {
			t.Errorf("variant %d: stability %+v != StabilityOf(Summary) %+v", i, sa, want)
		}
	}
}

// TestEventOrderingUnderCancellation cancels the campaign from its own
// Progress callback and checks the event stream still arrives in order and
// terminates with a single "end" event carrying the cancellation error.
func TestEventOrderingUnderCancellation(t *testing.T) {
	tr := telemetry.NewTracker()
	ch, cancelSub := tr.Subscribe(256)
	defer cancelSub()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		Launch: quickLaunch(), Workers: 1, Tracker: tr, Name: "canceled-sweep",
		Progress: func(p Progress) {
			if p.Done >= 2 {
				cancel()
			}
		},
	}
	_, err := Run(ctx, strings.NewReader(sweepSpec), core.GenerateOptions{}, opts)
	if err == nil {
		t.Fatal("canceled campaign returned nil error")
	}
	cancelSub()

	var types []string
	lastSeq := int64(0)
	for ev := range ch {
		if ev.Seq <= lastSeq {
			t.Errorf("seq %d after %d: not strictly increasing", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types = append(types, ev.Type)
		if ev.Type == "end" {
			if !ev.Campaign.Finished {
				t.Error("end event snapshot not marked finished")
			}
			if ev.Campaign.Err == "" {
				t.Error("end event carries no error for a canceled campaign")
			}
		}
	}
	if len(types) < 2 || types[0] != "begin" || types[len(types)-1] != "end" {
		t.Fatalf("event types = %v, want begin ... end", types)
	}
	for _, typ := range types[1 : len(types)-1] {
		if typ != "progress" {
			t.Errorf("interior event type %q, want progress (all types: %v)", typ, types)
		}
	}
}
