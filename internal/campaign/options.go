package campaign

import (
	"time"

	"microtools/internal/faults"
	"microtools/internal/launcher"
	"microtools/internal/obs"
	"microtools/internal/telemetry"
)

// Option is a functional setter for Options, applied by NewOptions — the
// campaign counterpart of launcher.Option. The setters below are grouped
// exactly like the Options struct sections, so a call site reads in the
// same order as the documentation.
type Option func(*Options)

// NewOptions builds an Options value by applying functional setters on top
// of the zero value (which is the campaign default: GOMAXPROCS workers,
// 2×workers buffering, no cache, single attempt per variant). It is the
// recommended constructor: call sites name only what they change instead
// of leaking Options literals field by field.
//
//	opts := campaign.NewOptions(
//	    campaign.WithLaunch(launch),
//	    campaign.WithWorkers(8),
//	    campaign.WithCache(cache),
//	)
//
// Nil setters are skipped, so options can be assembled conditionally. The
// Options struct stays exported; both styles remain supported.
func NewOptions(setters ...Option) Options {
	var o Options
	for _, set := range setters {
		if set != nil {
			set(&o)
		}
	}
	return o
}

// --- execution ---------------------------------------------------------------

// WithLaunch sets the measurement configuration applied to every variant.
func WithLaunch(l launcher.Options) Option { return func(o *Options) { o.Launch = l } }

// WithAdaptive arms μOpTime-style adaptive repetition with the given plan
// (see launcher.Plan); the engine early-stops stable variants and tops up
// the ones whose RCIW missed the plan's target from the saved budget.
func WithAdaptive(p launcher.Plan) Option {
	return func(o *Options) {
		pp := p
		o.Adaptive = &pp
	}
}

// WithAdaptiveTarget arms adaptive repetition with the given RCIW stop
// threshold and plan defaults for everything else.
func WithAdaptiveTarget(rciw float64) Option {
	return func(o *Options) { o.Adaptive = &launcher.Plan{TargetRCIW: rciw} }
}

// WithWorkers sizes the launch pool (<= 0 means GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithBuffer bounds the in-flight variant queue between the generator and
// the launch pool (<= 0 means 2×Workers).
func WithBuffer(n int) Option { return func(o *Options) { o.Buffer = n } }

// WithFailFast cancels the campaign on the first variant failure instead
// of isolating it.
func WithFailFast(on bool) Option { return func(o *Options) { o.FailFast = on } }

// WithCache consults and fills the content-addressed measurement cache;
// hits skip the launch entirely.
func WithCache(c *Cache) Option { return func(o *Options) { o.Cache = c } }

// WithProgress receives a snapshot after every variant completes.
func WithProgress(fn func(Progress)) Option { return func(o *Options) { o.Progress = fn } }

// WithTracer records the campaign as a span tree.
func WithTracer(t *obs.Tracer) Option { return func(o *Options) { o.Tracer = t } }

// WithCounters accumulates campaign-level event counters.
func WithCounters(c *obs.CounterSet) Option { return func(o *Options) { o.Counters = c } }

// --- live telemetry ----------------------------------------------------------

// WithName labels the run in live telemetry (/debug/campaigns, /events).
func WithName(name string) Option { return func(o *Options) { o.Name = name } }

// WithMetrics records live campaign metrics into the instrument set.
func WithMetrics(m *telemetry.Metrics) Option { return func(o *Options) { o.Metrics = m } }

// WithTracker registers the run for live progress tracking.
func WithTracker(t *telemetry.Tracker) Option { return func(o *Options) { o.Tracker = t } }

// --- resilience --------------------------------------------------------------

// WithVariantDeadline bounds each variant's total measurement time, every
// attempt included (0 = unbounded).
func WithVariantDeadline(d time.Duration) Option {
	return func(o *Options) { o.VariantDeadline = d }
}

// WithRetryPolicy re-attempts variants that failed with a transient fault.
func WithRetryPolicy(p RetryPolicy) Option { return func(o *Options) { o.Retry = p } }

// WithQuarantine stops retrying a variant after n consecutive failed
// attempts (0 = off).
func WithQuarantine(n int) Option { return func(o *Options) { o.Quarantine = n } }

// WithFaults arms the deterministic fault-injection plan at every built-in
// injection point.
func WithFaults(in *faults.Injector) Option { return func(o *Options) { o.Faults = in } }

// WithCheckBounds asserts the static-bound oracle invariant on every
// cache-miss measurement.
func WithCheckBounds(on bool) Option { return func(o *Options) { o.CheckBounds = on } }
