package campaign

// The adaptive suite asserts the μOpTime planner contract end to end:
// same-seed adaptive sweeps are bit-identical across worker counts, the
// saved repetition budget is re-granted deterministically to the variants
// whose RCIW missed target, warm adaptive re-runs replay the whole
// two-pass schedule without a single launch, and the fixed-budget path
// (nil plan) is untouched — cache keys included.

import (
	"encoding/json"
	"testing"

	"microtools/internal/core"
	"microtools/internal/faults"
	"microtools/internal/launcher"
	"microtools/internal/obs"
	"microtools/internal/stats"
)

// adaptiveLaunch is quickLaunch with a real outer budget for the planner
// to save from.
func adaptiveLaunch() launcher.Options {
	opts := quickLaunch()
	opts.OuterReps = 4
	return opts
}

// noisyLaunch enables the simulated interrupt noise so repetitions differ
// and the RCIW stays finite nonzero — the regime the top-up pass exists
// for.
func noisyLaunch(seed int64) launcher.Options {
	opts := adaptiveLaunch()
	opts.OuterReps = 6
	opts.DisableInterrupts = false
	opts.NoiseSeed = seed
	// Long enough runs for the interrupt model (one every ~40k cycles) to
	// actually land inside the measured region: big cold arrays, no
	// warmup, no instruction cap.
	opts.ArrayBytes = 1 << 16
	opts.InnerReps = 2
	opts.MaxInstructions = 0
	opts.Warmup = false
	return opts
}

func TestAdaptiveSweepSavesRepsDeterministically(t *testing.T) {
	counters := obs.NewCounterSet()
	res := runSweep(t, Options{
		Launch:   adaptiveLaunch(),
		Adaptive: &launcher.Plan{},
		Counters: counters,
	})
	if res.Emitted != 4 || res.Failures != 0 {
		t.Fatalf("emitted=%d failures=%d", res.Emitted, res.Failures)
	}
	// Deterministic sim, min statistic: every variant stops at the floor
	// of 2 reps out of 4 — half the budget saved, no variant missing the
	// (trivially met) RCIW target of an identical-sample run.
	for _, r := range res.Results {
		a := r.Measurement.Adaptive
		if a == nil {
			t.Fatalf("variant %s has no adaptive outcome", r.Name)
		}
		if a.Reps != 2 || a.StopReason != launcher.StopStable {
			t.Errorf("variant %s: reps=%d stop=%q, want 2/stable", r.Name, a.Reps, a.StopReason)
		}
	}
	if res.RepsSaved != 8 || res.RepsExecuted != 8 || res.RepsTopUp != 0 || res.TargetMisses != 0 {
		t.Errorf("accounting saved=%d executed=%d topup=%d misses=%d, want 8/8/0/0",
			res.RepsSaved, res.RepsExecuted, res.RepsTopUp, res.TargetMisses)
	}
	if got := counters.Get("campaign.reps.saved"); got != 8 {
		t.Errorf("campaign.reps.saved = %d, want 8", got)
	}
	// The ISSUE acceptance bar: >= 25% of the fixed budget saved.
	budget := res.Emitted * 4
	if res.RepsExecuted*4 > budget*3 {
		t.Errorf("adaptive executed %d of %d budgeted reps: saved under 25%%", res.RepsExecuted, budget)
	}

	// The adaptive value equals the fixed-budget value: early stopping
	// trades repetitions, never the reported statistic.
	fixed := runSweep(t, Options{Launch: adaptiveLaunch()})
	for i := range res.Results {
		if res.Results[i].Measurement.Value != fixed.Results[i].Measurement.Value {
			t.Errorf("variant %s: adaptive value %v != fixed %v", res.Results[i].Name,
				res.Results[i].Measurement.Value, fixed.Results[i].Measurement.Value)
		}
	}
	if fixed.RepsSaved != 0 || fixed.Results[0].Measurement.Adaptive != nil {
		t.Error("fixed-budget run grew adaptive state")
	}
}

func TestAdaptiveBitIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Result {
		return runSweep(t, Options{
			Launch:   noisyLaunch(11),
			Adaptive: &launcher.Plan{TargetRCIW: 1e-9},
			Workers:  workers,
		})
	}
	base := run(1)
	baseCSV := csvOf(t, base)
	if base.RepsSaved == 0 {
		t.Fatal("noisy adaptive sweep saved nothing; the top-up path went unexercised")
	}
	if base.RepsTopUp == 0 {
		t.Fatal("no top-up reps granted despite every variant missing the 1e-9 target")
	}
	for _, workers := range []int{2, 4, 8} {
		res := run(workers)
		if csv := csvOf(t, res); csv != baseCSV {
			t.Errorf("workers=%d diverged from serial:\n%s\nvs\n%s", workers, csv, baseCSV)
		}
		if res.RepsSaved != base.RepsSaved || res.RepsTopUp != base.RepsTopUp || res.TargetMisses != base.TargetMisses {
			t.Errorf("workers=%d accounting (%d,%d,%d) != serial (%d,%d,%d)", workers,
				res.RepsSaved, res.RepsTopUp, res.TargetMisses,
				base.RepsSaved, base.RepsTopUp, base.TargetMisses)
		}
	}
}

func TestAdaptiveTopUpGrantsSavedBudget(t *testing.T) {
	counters := obs.NewCounterSet()
	res := runSweep(t, Options{
		Launch:   noisyLaunch(5),
		Adaptive: &launcher.Plan{TargetRCIW: 1e-9},
		Counters: counters,
	})
	if res.Failures != 0 {
		t.Fatalf("failures: %v", res.Err())
	}
	if res.RepsSaved == 0 || res.RepsTopUp == 0 {
		t.Fatalf("saved=%d topup=%d: want both positive", res.RepsSaved, res.RepsTopUp)
	}
	if got := counters.Get("campaign.reps.saved"); got != int64(res.RepsSaved) {
		t.Errorf("campaign.reps.saved = %d, Result.RepsSaved = %d", got, res.RepsSaved)
	}
	if got := counters.Get("campaign.reps.topup"); got != int64(res.RepsTopUp) {
		t.Errorf("campaign.reps.topup = %d, Result.RepsTopUp = %d", got, res.RepsTopUp)
	}
	// The grant is the even split of the saved budget, and a topped-up
	// variant's realized reps never exceed its derived ceiling.
	extra := res.RepsSaved / res.Emitted
	for _, r := range res.Results {
		a := r.Measurement.Adaptive
		if a == nil {
			t.Fatalf("variant %s lost its adaptive outcome in the top-up", r.Name)
		}
		if a.Reps > 6+extra {
			t.Errorf("variant %s ran %d reps, above the derived ceiling", r.Name, a.Reps)
		}
		if r.Stability != stabilityFor(r.Measurement, obs.NewCounterSet()) {
			t.Errorf("variant %s stability not refreshed after top-up", r.Name)
		}
	}
	// An unreachable target keeps every variant in the miss column even
	// after the grant — the report must say so rather than overclaim.
	if res.TargetMisses != res.Emitted {
		t.Errorf("TargetMisses = %d, want all %d under a 1e-9 target", res.TargetMisses, res.Emitted)
	}
}

func TestAdaptiveWarmRerunPerformsZeroLaunches(t *testing.T) {
	for _, tc := range []struct {
		name   string
		launch launcher.Options
	}{
		{"deterministic", adaptiveLaunch()},
		{"noisy with top-up", noisyLaunch(23)},
	} {
		cache := NewMemoryCache()
		plan := &launcher.Plan{TargetRCIW: 0.05}
		if tc.name != "deterministic" {
			plan.TargetRCIW = 1e-9
		}
		cold := runSweep(t, Options{Launch: tc.launch, Adaptive: plan, Cache: cache})
		warmCounters := obs.NewCounterSet()
		warm := runSweep(t, Options{Launch: tc.launch, Adaptive: plan, Cache: cache, Counters: warmCounters})
		if got := warmCounters.Get("campaign.launches"); got != 0 {
			t.Errorf("%s: warm adaptive rerun performed %d launches, want 0", tc.name, got)
		}
		if warm.RepsExecuted != 0 {
			t.Errorf("%s: warm rerun reports %d executed reps, want 0", tc.name, warm.RepsExecuted)
		}
		if coldCSV, warmCSV := csvOf(t, cold), csvOf(t, warm); coldCSV != warmCSV {
			t.Errorf("%s: warm adaptive rerun diverged:\n%s\nvs\n%s", tc.name, warmCSV, coldCSV)
		}
		for i := range warm.Results {
			if warm.Results[i].Stability != cold.Results[i].Stability {
				t.Errorf("%s: variant %s stability flipped on the warm path", tc.name, warm.Results[i].Name)
			}
		}
	}
}

// TestAdaptiveCacheKeyDimension pins the cache-key policy: a nil plan
// keeps the historical key (TestKeyerMatchesStreamedRecipe pins the exact
// bytes), a resolved plan is a key dimension, and different plans key
// differently.
func TestAdaptiveCacheKeyDimension(t *testing.T) {
	prog, err := core.LoadKernel(kernelAsm("k", 2), "")
	if err != nil {
		t.Fatal(err)
	}
	fixed := adaptiveLaunch()
	kFixed, err := Key(prog, fixed)
	if err != nil {
		t.Fatal(err)
	}
	planned := fixed
	p1 := launcher.Plan{}.Resolve(fixed.OuterReps)
	planned.Adaptive = &p1
	kPlanned, err := Key(prog, planned)
	if err != nil {
		t.Fatal(err)
	}
	if kPlanned == kFixed {
		t.Error("armed plan did not change the cache key")
	}
	other := fixed
	p2 := launcher.Plan{TargetRCIW: 0.01}.Resolve(fixed.OuterReps)
	other.Adaptive = &p2
	if kOther, _ := Key(prog, other); kOther == kPlanned {
		t.Error("different plans share a cache key")
	}
	// The realized repetition count is NOT a key dimension: only the plan
	// is marshaled into the option JSON.
	raw, err := json.Marshal(planned)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["Adaptive"]; !ok {
		t.Error("armed plan absent from the option JSON")
	}
	rawNil, err := json.Marshal(fixed)
	if err != nil {
		t.Fatal(err)
	}
	var decodedNil map[string]any
	if err := json.Unmarshal(rawNil, &decodedNil); err != nil {
		t.Fatal(err)
	}
	if _, ok := decodedNil["Adaptive"]; ok {
		t.Error("nil plan leaks into the option JSON: pre-adaptive caches would go cold")
	}
}

// TestStabilityBackfillIsVersioned simulates a cache written before the
// launcher stored the Stability field: the warm run must backfill with the
// LEGACY formula generation (the contract those entries were written
// under), count every backfill, and never flip a stored RCIW to the new
// formula's value.
func TestStabilityBackfillIsVersioned(t *testing.T) {
	cache := NewMemoryCache()
	cold := runSweep(t, Options{Launch: quickLaunch(), Cache: cache})

	// Strip the Stability field from every stored entry, recreating the
	// pre-field on-disk shape.
	cache.mu.Lock()
	for key, raw := range cache.entries {
		var entry map[string]json.RawMessage
		if err := json.Unmarshal(raw, &entry); err != nil {
			cache.mu.Unlock()
			t.Fatal(err)
		}
		delete(entry, "Stability")
		stripped, err := json.Marshal(entry)
		if err != nil {
			cache.mu.Unlock()
			t.Fatal(err)
		}
		cache.entries[key] = stripped
	}
	cache.mu.Unlock()

	counters := obs.NewCounterSet()
	warm := runSweep(t, Options{Launch: quickLaunch(), Cache: cache, Counters: counters})
	if got := counters.Get("campaign.launches"); got != 0 {
		t.Fatalf("stripped entries missed the cache: %d launches", got)
	}
	if got := counters.Get("campaign.stability.backfilled"); got != 4 {
		t.Errorf("campaign.stability.backfilled = %d, want 4", got)
	}
	for i, r := range warm.Results {
		want := stats.LegacyStabilityOf(r.Measurement.Summary)
		if r.Stability != want {
			t.Errorf("variant %s backfilled %+v, want the legacy generation %+v", r.Name, r.Stability, want)
		}
		// OuterReps is 1 here: the legacy generation reports 0, the current
		// one +Inf — the backfill must keep what those readers always saw.
		if r.Stability.RCIW != 0 {
			t.Errorf("variant %s: backfilled RCIW = %v, want the legacy 0", r.Name, r.Stability.RCIW)
		}
		// The cold run (which stored the field) is the other generation.
		if cold.Results[i].Stability.N != 1 {
			t.Errorf("cold variant %s stored stability n=%d", cold.Results[i].Name, cold.Results[i].Stability.N)
		}
	}
}

// TestChaosAdaptiveRecoversBitIdentical extends the resilience contract to
// the planner: under transient faults with a healing retry budget, an
// adaptive campaign reproduces the fault-free adaptive run bit-identically
// — stop decisions, top-ups and all.
func TestChaosAdaptiveRecoversBitIdentical(t *testing.T) {
	opts := func() Options {
		return Options{
			Launch:   noisyLaunch(17),
			Adaptive: &launcher.Plan{TargetRCIW: 1e-9},
		}
	}
	clean := runSweep(t, opts())
	cleanCSV := csvOf(t, clean)

	injector := faults.New(7).SetRate("*", 0.3).SetBurst(1)
	chaotic := opts()
	chaotic.Faults = injector
	chaotic.Retry = RetryPolicy{MaxAttempts: 40, Seed: 42}
	res := runSweep(t, chaotic)
	if injector.Count() == 0 {
		t.Fatal("no faults injected; the chaos run tested nothing")
	}
	if res.Failures != 0 {
		t.Fatalf("%d variants failed despite a healing retry budget: %v", res.Failures, res.Err())
	}
	if got := csvOf(t, res); got != cleanCSV {
		t.Errorf("chaotic adaptive run diverged:\n%s\nvs\n%s", got, cleanCSV)
	}
	if res.RepsSaved != clean.RepsSaved || res.RepsTopUp != clean.RepsTopUp {
		t.Errorf("chaotic accounting (%d,%d) != clean (%d,%d)",
			res.RepsSaved, res.RepsTopUp, clean.RepsSaved, clean.RepsTopUp)
	}
}
