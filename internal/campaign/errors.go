package campaign

import (
	"errors"
	"fmt"
)

// ErrNoVariants reports a campaign whose description parsed and generated
// cleanly but emitted zero variants — usually an empty or over-filtered
// sweep. Detect it with errors.Is(err, campaign.ErrNoVariants).
var ErrNoVariants = errors.New("campaign: the description generated no variants")

// SetupError reports a failure before any variant was measured: the spec
// file could not be opened, or the generation pipeline itself failed. It
// is distinct from *Error, which aggregates per-variant measurement
// failures after the pipeline started producing work. Both Run and
// RunFile wrap setup failures in this type, so callers get one shape for
// "the campaign never ran" across the reader- and path-based entry
// points:
//
//	var se *campaign.SetupError
//	if errors.As(err, &se) { ... }          // any setup failure
//	if errors.Is(err, fs.ErrNotExist) { ... } // spec file missing
type SetupError struct {
	// Stage is the setup phase that failed: "open" (spec file access,
	// RunFile only) or "generate" (the variant pipeline).
	Stage string
	// Path is the spec file path for Stage "open"; empty for reader-based
	// entry points.
	Path string
	// Err is the underlying cause, reachable through errors.Is/As.
	Err error
}

func (e *SetupError) Error() string {
	if e.Stage == "open" && e.Path != "" {
		return fmt.Sprintf("campaign: open %s: %v", e.Path, e.Err)
	}
	return fmt.Sprintf("campaign: %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SetupError) Unwrap() error { return e.Err }
