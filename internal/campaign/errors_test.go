package campaign

import (
	"context"
	"errors"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"microtools/internal/core"
	"microtools/internal/ir"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/passes"
)

// dropAllVariants is a Customize hook that inserts a pass discarding every
// kernel, so generation succeeds but emits nothing.
func dropAllVariants(m *passes.Manager) error {
	drop := &passes.Pass{Name: "drop-all", Gate: passes.AlwaysGate,
		Run: func(_ *passes.Context, _ []*ir.Kernel) ([]*ir.Kernel, error) { return nil, nil }}
	return m.InsertAfter("unroll", drop)
}

// TestErrorTaxonomy pins the exported error shape of every failure class
// across Run and RunFile: setup failures (spec open, generation) surface
// as *SetupError with the cause reachable through errors.Is/As, an empty
// sweep is the ErrNoVariants sentinel, measurement failures aggregate
// into *Error/*VariantError, and cancellation is the caller's ctx error.
// Both entry points always return a non-nil Result.
func TestErrorTaxonomy(t *testing.T) {
	errBoom := errors.New("boom")
	cases := []struct {
		name string
		run  func(t *testing.T) (*Result, error)
		pin  func(t *testing.T, err error)
	}{
		{
			name: "open failure is a SetupError wrapping fs.ErrNotExist",
			run: func(t *testing.T) (*Result, error) {
				return RunFile(context.Background(), filepath.Join(t.TempDir(), "missing.xml"),
					core.GenerateOptions{}, NewOptions(WithLaunch(quickLaunch())))
			},
			pin: func(t *testing.T, err error) {
				var se *SetupError
				if !errors.As(err, &se) || se.Stage != "open" {
					t.Fatalf("want *SetupError stage open, got %v", err)
				}
				if se.Path == "" {
					t.Error("open SetupError lacks the spec path")
				}
				if !errors.Is(err, fs.ErrNotExist) {
					t.Errorf("fs.ErrNotExist not reachable through %v", err)
				}
			},
		},
		{
			name: "malformed spec is a SetupError at the generate stage",
			run: func(t *testing.T) (*Result, error) {
				return Run(context.Background(), strings.NewReader("<notes/>"),
					core.GenerateOptions{}, NewOptions(WithLaunch(quickLaunch())))
			},
			pin: func(t *testing.T, err error) {
				var se *SetupError
				if !errors.As(err, &se) || se.Stage != "generate" {
					t.Fatalf("want *SetupError stage generate, got %v", err)
				}
			},
		},
		{
			name: "customize failure keeps its cause through the SetupError",
			run: func(t *testing.T) (*Result, error) {
				gen := core.GenerateOptions{Customize: func(*passes.Manager) error { return errBoom }}
				return Run(context.Background(), strings.NewReader(sweepSpec), gen,
					NewOptions(WithLaunch(quickLaunch())))
			},
			pin: func(t *testing.T, err error) {
				var se *SetupError
				if !errors.As(err, &se) {
					t.Fatalf("want *SetupError, got %v", err)
				}
				if !errors.Is(err, errBoom) {
					t.Errorf("cause not reachable through %v", err)
				}
			},
		},
		{
			name: "empty sweep is the ErrNoVariants sentinel",
			run: func(t *testing.T) (*Result, error) {
				gen := core.GenerateOptions{Customize: dropAllVariants}
				return Run(context.Background(), strings.NewReader(sweepSpec), gen,
					NewOptions(WithLaunch(quickLaunch())))
			},
			pin: func(t *testing.T, err error) {
				if !errors.Is(err, ErrNoVariants) {
					t.Fatalf("want ErrNoVariants, got %v", err)
				}
				var se *SetupError
				if errors.As(err, &se) {
					t.Errorf("empty sweep misclassified as a setup failure: %v", err)
				}
			},
		},
		{
			name: "variant failures aggregate into Error and VariantError",
			run: func(t *testing.T) (*Result, error) {
				opts := NewOptions(WithLaunch(quickLaunch()))
				opts.launch = func(context.Context, *isa.Program, launcher.Options) (*launcher.Measurement, error) {
					return nil, errBoom
				}
				return Run(context.Background(), strings.NewReader(sweepSpec),
					core.GenerateOptions{}, opts)
			},
			pin: func(t *testing.T, err error) {
				var ce *Error
				if !errors.As(err, &ce) || len(ce.Failed) != 4 {
					t.Fatalf("want *Error with 4 failures, got %v", err)
				}
				var ve *VariantError
				if !errors.As(err, &ve) {
					t.Errorf("per-variant error not reachable through %v", err)
				}
				if !errors.Is(err, errBoom) {
					t.Errorf("launch cause not reachable through %v", err)
				}
			},
		},
		{
			name: "cancellation surfaces the caller's ctx error",
			run: func(t *testing.T) (*Result, error) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return Run(ctx, strings.NewReader(sweepSpec),
					core.GenerateOptions{}, NewOptions(WithLaunch(quickLaunch())))
			},
			pin: func(t *testing.T, err error) {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run(t)
			if res == nil {
				t.Fatal("Result is nil: both entry points must return a usable Result")
			}
			if err == nil {
				t.Fatal("expected an error")
			}
			tc.pin(t, err)
		})
	}
}

// TestNewOptionsSetters proves the functional constructor reaches every
// public field and that nil setters are tolerated.
func TestNewOptionsSetters(t *testing.T) {
	cache := NewMemoryCache()
	progress := func(Progress) {}
	opts := NewOptions(
		nil,
		WithLaunch(quickLaunch()),
		WithWorkers(3),
		WithBuffer(9),
		WithFailFast(true),
		WithCache(cache),
		WithProgress(progress),
		WithName("suite/run"),
		WithVariantDeadline(42),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 5}),
		WithQuarantine(2),
		WithCheckBounds(true),
	)
	if opts.Workers != 3 || opts.Buffer != 9 || !opts.FailFast || opts.Cache != cache {
		t.Errorf("execution setters not applied: %+v", opts)
	}
	if opts.Name != "suite/run" || opts.Progress == nil {
		t.Errorf("telemetry setters not applied: %+v", opts)
	}
	if opts.VariantDeadline != 42 || opts.Retry.MaxAttempts != 5 || opts.Quarantine != 2 || !opts.CheckBounds {
		t.Errorf("resilience setters not applied: %+v", opts)
	}
	if opts.Launch.MachineName != quickLaunch().MachineName {
		t.Errorf("launch setter not applied: %+v", opts.Launch)
	}
}

// TestNewOptionsRuns is the end-to-end smoke: a campaign configured only
// through the constructor behaves exactly like an Options literal.
func TestNewOptionsRuns(t *testing.T) {
	cache := NewMemoryCache()
	res := runSweep(t, NewOptions(WithLaunch(quickLaunch()), WithCache(cache), WithWorkers(2)))
	if res.Emitted != 4 || res.Launches != 4 {
		t.Fatalf("emitted=%d launches=%d, want 4/4", res.Emitted, res.Launches)
	}
	warm := runSweep(t, NewOptions(WithLaunch(quickLaunch()), WithCache(cache)))
	if warm.CacheHits != 4 || warm.Launches != 0 {
		t.Fatalf("warm run hits=%d launches=%d, want 4/0", warm.CacheHits, warm.Launches)
	}
}
