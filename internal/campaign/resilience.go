package campaign

import (
	"context"
	"hash/fnv"
	"time"
)

// RetryPolicy bounds how a campaign re-attempts a variant whose launch
// failed with a transient fault (faults.IsTransient). Permanent and
// unclassified errors are never retried: a malformed kernel or a bad
// option set will not heal, and re-measuring it would only burn the
// sweep's time budget.
//
// Backoff is deterministic: the delay before attempt k is
// Backoff·2^(k-1) plus a jitter drawn purely from (Seed, variant name,
// attempt) — no wall-clock randomness — so two runs of the same campaign
// pause for identical durations in identical places. The zero policy
// means one attempt and no retries.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per variant, first try
	// included (<= 0 means 1: no retries).
	MaxAttempts int
	// Backoff is the base delay before the first retry; retry k waits
	// Backoff·2^(k-1) plus deterministic jitter in [0, Backoff). Zero
	// retries immediately.
	Backoff time.Duration
	// BackoffMax caps the grown delay (0 = 16×Backoff).
	BackoffMax time.Duration
	// Seed drives the deterministic jitter.
	Seed int64

	// sleep substitutes the pause in tests (nil = real timer).
	sleep func(time.Duration)
}

// attempts returns the effective per-variant attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the deterministic backoff before retry attempt k
// (1-based: the retry after the k-th failure).
func (p RetryPolicy) delay(key string, attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < attempt && d < 1<<40; i++ {
		d *= 2
	}
	// Jitter in [0, Backoff) from (seed, key, attempt) only: reproducible
	// across runs, decorrelated across variants.
	h := fnv.New64a()
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(p.Seed) >> (8 * i))
		b[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	d += time.Duration(h.Sum64() % uint64(p.Backoff))
	max := p.BackoffMax
	if max <= 0 {
		max = 16 * p.Backoff
	}
	if d > max {
		d = max
	}
	return d
}

// pause waits out the backoff before retry `attempt` of the named
// variant, returning early if ctx is canceled (the campaign was stopped
// or the variant's deadline expired — no point finishing the wait).
func (p RetryPolicy) pause(ctx context.Context, key string, attempt int) {
	d := p.delay(key, attempt)
	if d <= 0 {
		return
	}
	if p.sleep != nil {
		p.sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
