package campaign

// The chaos suite asserts the resilience contract end to end: under a
// deterministic, seed-driven fault schedule (internal/faults), a campaign
// with a sufficient retry budget produces final results bit-identical to a
// fault-free run — same seed ⇒ same injected-fault set ⇒ same retry counts
// ⇒ same measurements, regardless of worker count. It runs under -race in
// make ci, so the injector's concurrency determinism is exercised too.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"microtools/internal/core"
	"microtools/internal/faults"
	"microtools/internal/isa"
	"microtools/internal/launcher"
	"microtools/internal/obs"
)

// chaosBudget is a retry budget that provably heals every transient fault
// of the sweepSpec campaign: a variant's launch path crosses at most five
// distinct injection sites (campaign.launch, cache.get, launcher.rep for
// the single outer rep, sim.step for calibration and for the kernel), each
// injecting `burst` failures before healing, and every failed attempt
// consumes exactly one of those failures.
func chaosBudget(burst int) RetryPolicy {
	return RetryPolicy{MaxAttempts: 5*burst + 1, Seed: 42}
}

func TestChaosTransientFaultsRecoverBitIdentical(t *testing.T) {
	clean := runSweep(t, Options{Launch: quickLaunch()})
	cleanCSV := csvOf(t, clean)

	const burst = 2
	injector := faults.New(7).SetRate("*", 0.5).SetBurst(burst)
	counters := obs.NewCounterSet()
	injector.SetCounters(counters)
	chaotic := runSweep(t, Options{
		Launch:   quickLaunch(),
		Faults:   injector,
		Retry:    chaosBudget(burst),
		Counters: counters,
	})

	if injector.Count() == 0 {
		t.Fatal("rate 0.5 injected no faults; the chaos run tested nothing")
	}
	if chaotic.Failures != 0 {
		t.Fatalf("%d variants failed despite transient faults and a healing retry budget: %v",
			chaotic.Failures, chaotic.Err())
	}
	// Every injected fault fails exactly one attempt, and every failed
	// attempt is retried: the counts must agree.
	if int64(chaotic.Retries) != injector.Count() {
		t.Errorf("retries = %d, injected faults = %d; want them equal", chaotic.Retries, injector.Count())
	}
	if got := counters.Get("campaign.retry"); got != int64(chaotic.Retries) {
		t.Errorf("campaign.retry counter = %d, Result.Retries = %d", got, chaotic.Retries)
	}
	if got := counters.Get("faults.injected"); got != injector.Count() {
		t.Errorf("faults.injected counter = %d, injector.Count() = %d", got, injector.Count())
	}
	for _, r := range chaotic.Results {
		if r.Attempts < 1 {
			t.Errorf("variant %s: attempts = %d, want >= 1", r.Name, r.Attempts)
		}
	}
	if chaoticCSV := csvOf(t, chaotic); chaoticCSV != cleanCSV {
		t.Errorf("chaotic run diverged from the fault-free run:\n%s\nvs\n%s", chaoticCSV, cleanCSV)
	}
}

func TestChaosSameSeedSameScheduleAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) (*Result, []faults.Site) {
		injector := faults.New(99).SetRate("*", 0.5).SetBurst(1)
		res := runSweep(t, Options{
			Launch:  quickLaunch(),
			Workers: workers,
			Faults:  injector,
			Retry:   chaosBudget(1),
		})
		return res, injector.Injected()
	}
	serial, serialSites := run(1)
	parallel, parallelSites := run(8)

	if len(serialSites) == 0 {
		t.Fatal("no faults injected; the determinism check tested nothing")
	}
	if len(serialSites) != len(parallelSites) {
		t.Fatalf("fault sets differ: %d sites serial, %d parallel", len(serialSites), len(parallelSites))
	}
	for i := range serialSites {
		if serialSites[i] != parallelSites[i] {
			t.Errorf("site %d differs: %+v vs %+v", i, serialSites[i], parallelSites[i])
		}
	}
	if serial.Retries != parallel.Retries {
		t.Errorf("retry counts differ: %d serial, %d parallel", serial.Retries, parallel.Retries)
	}
	if csvOf(t, serial) != csvOf(t, parallel) {
		t.Error("same fault seed produced different measurements across worker counts")
	}

	// A different seed must not replay the same schedule.
	other := faults.New(100).SetRate("*", 0.5).SetBurst(1)
	runSweep(t, Options{Launch: quickLaunch(), Faults: other, Retry: chaosBudget(1)})
	otherSites := other.Injected()
	same := len(otherSites) == len(serialSites)
	if same {
		for i := range otherSites {
			if otherSites[i] != serialSites[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced the identical fault schedule")
	}
}

func TestChaosPermanentFaultsAreNotRetried(t *testing.T) {
	injector := faults.New(3).SetRate(faults.PointCampaignLaunch, 1).SetClass(faults.ClassPermanent)
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch: quickLaunch(),
		Faults: injector,
		Retry:  RetryPolicy{MaxAttempts: 10, Seed: 1},
	})
	if err == nil {
		t.Fatal("permanently faulted campaign must return an error")
	}
	if !errors.Is(err, faults.ErrPermanent) || !errors.Is(err, faults.ErrInjected) {
		t.Errorf("aggregate error does not expose the fault taxonomy: %v", err)
	}
	var fe *faults.Error
	if !errors.As(err, &fe) || fe.Point != faults.PointCampaignLaunch {
		t.Errorf("errors.As lost the fault record: %+v", fe)
	}
	if res.Failures != res.Emitted || res.Emitted == 0 {
		t.Fatalf("failures = %d of %d emitted, want all", res.Failures, res.Emitted)
	}
	if res.Retries != 0 {
		t.Errorf("permanent faults were retried %d times; retry is futile by contract", res.Retries)
	}
	for _, r := range res.Results {
		if r.Attempts != 1 {
			t.Errorf("variant %s: %d attempts on a permanent fault, want 1", r.Name, r.Attempts)
		}
	}
}

func TestChaosQuarantineWithdrawsRepeatOffenders(t *testing.T) {
	// Transient faults with a burst deeper than the quarantine threshold:
	// the variant would eventually heal, but quarantine withdraws it first.
	injector := faults.New(5).SetRate(faults.PointCampaignLaunch, 1).SetBurst(100)
	counters := obs.NewCounterSet()
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch:     quickLaunch(),
		Faults:     injector,
		Retry:      RetryPolicy{MaxAttempts: 50, Seed: 1},
		Quarantine: 3,
		Counters:   counters,
	})
	if err == nil {
		t.Fatal("quarantined campaign must surface the failures")
	}
	if res.Quarantined != res.Emitted || res.Emitted == 0 {
		t.Fatalf("quarantined = %d of %d emitted, want all", res.Quarantined, res.Emitted)
	}
	if got := counters.Get("variant.quarantined"); got != int64(res.Quarantined) {
		t.Errorf("variant.quarantined counter = %d, Result.Quarantined = %d", got, res.Quarantined)
	}
	for _, r := range res.Results {
		if !r.Quarantined || r.Attempts != 3 {
			t.Errorf("variant %s: quarantined=%v after %d attempts, want true after 3",
				r.Name, r.Quarantined, r.Attempts)
		}
	}
}

func TestChaosVariantDeadlineBoundsAttempts(t *testing.T) {
	res, err := Run(context.Background(), strings.NewReader(sweepSpec), core.GenerateOptions{}, Options{
		Launch:          quickLaunch(),
		Workers:         1,
		VariantDeadline: 20 * time.Millisecond,
		Retry:           RetryPolicy{MaxAttempts: 1000, Seed: 1},
		launch: func(ctx context.Context, prog *isa.Program, opts launcher.Options) (*launcher.Measurement, error) {
			// A launch that never completes: only the variant deadline can
			// end it.
			<-ctx.Done()
			return nil, faults.Transient(ctx.Err())
		},
	})
	if err == nil {
		t.Fatal("deadline-bound campaign must surface the failures")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("aggregate error does not unwrap to the deadline: %v", err)
	}
	if res.Failures != res.Emitted || res.Emitted == 0 {
		t.Fatalf("failures = %d of %d emitted, want all (deadline is per-variant)", res.Failures, res.Emitted)
	}
	for _, r := range res.Results {
		// The deadline expired during attempt 1 and the retry loop must
		// not schedule further attempts against a dead context.
		if r.Attempts != 1 {
			t.Errorf("variant %s: %d attempts against an expired deadline, want 1", r.Name, r.Attempts)
		}
	}
}

func TestChaosCacheFaultsDegradeNeverCorrupt(t *testing.T) {
	// Checkpoint faults: the measurement survives, the put error is
	// counted, and the campaign output matches the clean run.
	clean := runSweep(t, Options{Launch: quickLaunch()})
	cleanCSV := csvOf(t, clean)

	injector := faults.New(11).SetRate(faults.PointCacheCheckpoint, 1).SetClass(faults.ClassPermanent)
	counters := obs.NewCounterSet()
	cache := NewMemoryCache()
	res := runSweep(t, Options{
		Launch:   quickLaunch(),
		Cache:    cache,
		Faults:   injector,
		Counters: counters,
	})
	if res.Failures != 0 {
		t.Fatalf("checkpoint faults failed %d variants; they must degrade, not fail: %v",
			res.Failures, res.Err())
	}
	if got := counters.Get("campaign.cache.put_errors"); got != int64(res.Emitted) {
		t.Errorf("campaign.cache.put_errors = %d, want %d (one per variant)", got, res.Emitted)
	}
	if csvOf(t, res) != cleanCSV {
		t.Error("checkpoint faults changed the campaign output")
	}

	// Get faults: a warm cache degrades to misses (variants re-measure)
	// and the results stay bit-identical. Run only installs opts.Faults on
	// a cache that has none yet, so re-arm this one explicitly.
	getInjector := faults.New(12).SetRate(faults.PointCacheGet, 1).SetClass(faults.ClassPermanent)
	cache.SetFaults(getInjector)
	warm := runSweep(t, Options{Launch: quickLaunch(), Cache: cache, Faults: getInjector})
	if warm.CacheHits != 0 || warm.Launches != warm.Emitted {
		t.Errorf("get faults: %d hits, %d launches of %d variants; want 0 hits, all launched",
			warm.CacheHits, warm.Launches, warm.Emitted)
	}
	if csvOf(t, warm) != cleanCSV {
		t.Error("get-faulted warm run diverged from the clean run")
	}
}

func TestRetryBackoffIsDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond, BackoffMax: 10 * time.Millisecond, Seed: 9}
	for attempt := 1; attempt <= 3; attempt++ {
		a := p.delay("kernel_u2", attempt)
		b := p.delay("kernel_u2", attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, a, b)
		}
		if a < 0 || a > 10*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [0, BackoffMax]", attempt, a)
		}
	}
	if p.delay("kernel_u2", 1) == p.delay("kernel_u3", 1) &&
		p.delay("kernel_u2", 2) == p.delay("kernel_u3", 2) &&
		p.delay("kernel_u2", 3) == p.delay("kernel_u3", 3) {
		t.Error("backoff jitter is not decorrelated across variants")
	}
	if (RetryPolicy{}).delay("k", 1) != 0 {
		t.Error("zero policy must not wait")
	}
	if got := (RetryPolicy{MaxAttempts: 0}).attempts(); got != 1 {
		t.Errorf("zero policy attempts = %d, want 1", got)
	}
}
